package reghd

import (
	"io"

	"reghd/internal/rl"
)

// The rl types implement the paper's stated extension: HD-based
// reinforcement learning, with RegHD regression models as the Q-function
// approximators ("regression is the main building block to enable accurate
// reinforcement learning").

// RLEnvironment is an episodic control task with continuous states and
// discrete actions.
type RLEnvironment = rl.Environment

// CartPole is the classic pole-balancing control task.
type CartPole = rl.CartPole

// Chase is a dense-reward 1-D tracking task.
type Chase = rl.Chase

// QAgent is a Q-learning agent with one RegHD model per action.
type QAgent = rl.Agent

// QAgentConfig holds the Q-learning hyper-parameters.
type QAgentConfig = rl.AgentConfig

// RLTrainResult summarizes an agent training run.
type RLTrainResult = rl.TrainResult

// NewQAgent builds a Q-learning agent for the environment.
func NewQAgent(env RLEnvironment, cfg QAgentConfig) (*QAgent, error) {
	return rl.NewAgent(env, cfg)
}

// DefaultQAgentConfig returns hyper-parameters that learn the bundled
// environments.
func DefaultQAgentConfig() QAgentConfig { return rl.DefaultAgentConfig() }

// LoadQAgent restores an agent previously written with QAgent.Save,
// attached to a fresh environment of the same shape.
func LoadQAgent(env RLEnvironment, r io.Reader) (*QAgent, error) {
	return rl.LoadAgent(env, r)
}
