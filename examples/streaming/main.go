// Streaming: single-pass online regression on an IoT-style sensor stream.
// Samples arrive one at a time; the model learns with PartialFit (the
// paper's single-pass mode, §2.3), periodically refreshes its quantized
// shadows, and is finally saved to disk and restored — the full lifecycle
// of an embedded deployment.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"reghd"
)

// sensor simulates a drifting industrial process: the reading depends
// nonlinearly on two measured inputs.
func sensor(rng *rand.Rand) (x []float64, y float64) {
	a := rng.Float64()*4 - 2
	b := rng.NormFloat64()
	y = 40 + 12*math.Sin(2*a) + 5*b + 0.3*rng.NormFloat64()
	return []float64{a, b}, y
}

func main() {
	rng := rand.New(rand.NewSource(1))

	enc, err := reghd.NewEncoderBandwidth(2, 4000, 1.2, 42)
	if err != nil {
		log.Fatal(err)
	}
	cfg := reghd.DefaultConfig()
	cfg.Models = 4
	cfg.ClusterMode = reghd.ClusterBinary     // Hamming similarity search
	cfg.PredictMode = reghd.PredictBinaryBoth // XOR+popcount deployment
	model, err := reghd.NewModel(enc, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Stream 5000 samples; report prequential error per 1000-sample window
	// and refresh the quantized shadows between windows.
	const windows, perWindow = 5, 1000
	var recentX [][]float64
	var recentY []float64
	for w := 0; w < windows; w++ {
		var seen int
		var sqErr float64
		for i := 0; i < perWindow; i++ {
			x, y := sensor(rng)
			if model.Trained() {
				if pred, err := model.Predict(x); err == nil {
					sqErr += (pred - y) * (pred - y)
					seen++
				}
			}
			if err := model.PartialFit(x, y); err != nil {
				log.Fatal(err)
			}
			recentX = append(recentX, x)
			recentY = append(recentY, y)
			if len(recentX) > 256 {
				recentX = recentX[1:]
				recentY = recentY[1:]
			}
		}
		if err := model.RefreshShadows(recentX, recentY); err != nil {
			log.Fatal(err)
		}
		if seen > 0 {
			fmt.Printf("window %d: prequential MSE %8.3f over %d predictions\n",
				w+1, sqErr/float64(seen), seen)
		}
	}

	// Persist the deployed model and prove the restored copy agrees.
	dir, err := os.MkdirTemp("", "reghd-stream")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.gob")
	if err := model.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	restored, err := reghd.LoadModelFile(path)
	if err != nil {
		log.Fatal(err)
	}
	x, y := sensor(rng)
	a, _ := model.Predict(x)
	b, _ := restored.Predict(x)
	fmt.Printf("\nsaved+restored: f(%v) = %.2f / %.2f (actual %.2f)\n", x, a, b, y)
	//lint:ignore floatcmp the serialization round-trip is bit-exact by contract; the demo asserts it
	if a != b {
		log.Fatal("restored model disagrees with original")
	}
	fmt.Println("restored model predicts identically ✓")
}
