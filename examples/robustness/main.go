// Robustness: demonstrate the holographic fault tolerance of
// hyperdimensional models (Section 3 of the paper). A RegHD model deployed
// with a fully binary prediction path is subjected to increasing rates of
// random bit flips — modeling memory faults on an unreliable embedded
// device — and its regression quality degrades gracefully because no
// single component is more responsible for the stored information than any
// other.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"reghd"
)

func main() {
	ds, err := reghd.SyntheticDataset("airfoil", 1)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	train, test, err := ds.Split(rng, 0.25)
	if err != nil {
		log.Fatal(err)
	}

	fractions := []float64{0.001, 0.005, 0.01, 0.05, 0.10, 0.20}
	fmt.Printf("%-12s %12s %12s\n", "bit flips", "test MSE", "vs clean")
	var clean float64
	for i, frac := range fractions {
		// A fresh model per fault level so corruption does not accumulate.
		enc, err := reghd.NewEncoderBandwidth(ds.Features(), 4000, 1.4, 7)
		if err != nil {
			log.Fatal(err)
		}
		cfg := reghd.DefaultConfig()
		cfg.Models = 8
		cfg.Epochs = 25
		cfg.ClusterMode = reghd.ClusterBinary
		cfg.PredictMode = reghd.PredictBinaryBoth
		model, err := reghd.NewModel(enc, cfg)
		if err != nil {
			log.Fatal(err)
		}
		pipe := reghd.NewPipeline(model)
		if _, err := pipe.Fit(train); err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			clean, err = pipe.Evaluate(test)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %12.3f %11.1f%%\n", "none", clean, 0.0)
		}
		if err := model.FlipModelBits(rand.New(rand.NewSource(99)), frac); err != nil {
			log.Fatal(err)
		}
		mse, err := pipe.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.1f%% %11.3f %11.1f%%\n", frac*100, mse, (mse/clean-1)*100)
	}
	fmt.Println("\nhypervector redundancy keeps degradation gradual — no cliff")
}
