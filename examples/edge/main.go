// Edge: deploy RegHD on an embedded target with the Section 3 quantization
// framework. Trains the full-precision model and the quantized
// configurations on an airfoil-noise workload, then uses the hardware cost
// model to compare estimated inference latency and energy on an FPGA and an
// ARM Cortex-A53 — the paper's Fig. 7/Fig. 9 trade-off in one program.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"reghd"
)

type config struct {
	name string
	cm   reghd.ClusterMode
	pm   reghd.PredictMode
}

func main() {
	ds, err := reghd.SyntheticDataset("airfoil", 1)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	train, test, err := ds.Split(rng, 0.25)
	if err != nil {
		log.Fatal(err)
	}

	configs := []config{
		{"full precision", reghd.ClusterInteger, reghd.PredictFull},
		{"binary cluster", reghd.ClusterBinary, reghd.PredictFull},
		{"binary query", reghd.ClusterBinary, reghd.PredictBinaryQuery},
		{"binary model", reghd.ClusterBinary, reghd.PredictBinaryModel},
		{"fully binary", reghd.ClusterBinary, reghd.PredictBinaryBoth},
	}

	fpga := reghd.FPGAProfile()
	arm := reghd.ARMProfile()
	fmt.Printf("%-16s %10s %14s %14s %14s\n",
		"configuration", "test MSE", "fpga latency", "fpga energy", "arm latency")
	for _, c := range configs {
		enc, err := reghd.NewEncoderBandwidth(ds.Features(), 2000, 1.4, 7)
		if err != nil {
			log.Fatal(err)
		}
		cfg := reghd.DefaultConfig()
		cfg.Models = 8
		cfg.Epochs = 25
		cfg.ClusterMode = c.cm
		cfg.PredictMode = c.pm
		model, err := reghd.NewModel(enc, cfg)
		if err != nil {
			log.Fatal(err)
		}
		pipe := reghd.NewPipeline(model)
		if _, err := pipe.Fit(train); err != nil {
			log.Fatal(err)
		}
		mse, err := pipe.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}

		// Record the operation mix of 100 queries and cost them out.
		model.InferCounter = &reghd.OpCounter{}
		if _, err := pipe.PredictBatch(test.X[:100]); err != nil {
			log.Fatal(err)
		}
		fpgaCost, err := reghd.EstimateCost(model.InferCounter, fpga)
		if err != nil {
			log.Fatal(err)
		}
		armCost, err := reghd.EstimateCost(model.InferCounter, arm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %10.3f %11.2f µs %11.2f µJ %11.2f µs\n",
			c.name, mse,
			fpgaCost.Seconds/100*1e6, fpgaCost.Joules/100*1e6,
			armCost.Seconds/100*1e6)
	}
	fmt.Println("\n(latency/energy are modeled per-query costs; see DESIGN.md §3)")
}
