// Classify: hyperdimensional classification with the companion classifier
// of the RegHD regressor — an activity-recognition-style demo (the EMG /
// biosignal use case of the paper's HD references [19, 20]). Synthetic
// "sensor signatures" for four activities are learned by bundling +
// adaptive retraining, then evaluated with both full-precision and
// quantized (Hamming) inference.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"reghd"
)

var activities = []string{"rest", "walk", "run", "climb"}

// sample draws a 6-axis IMU-style feature vector for an activity: each
// activity has a characteristic mean intensity and oscillation pattern.
func sample(rng *rand.Rand, activity int) []float64 {
	base := float64(activity)
	x := make([]float64, 6)
	for j := range x {
		phase := float64(j) * math.Pi / 3
		x[j] = base*math.Cos(phase+base) + 0.4*rng.NormFloat64()
	}
	return x
}

func main() {
	rng := rand.New(rand.NewSource(1))
	var trainX, testX [][]float64
	var trainY, testY []int
	for i := 0; i < 1200; i++ {
		a := rng.Intn(len(activities))
		x := sample(rng, a)
		if i%4 == 0 {
			testX = append(testX, x)
			testY = append(testY, a)
		} else {
			trainX = append(trainX, x)
			trainY = append(trainY, a)
		}
	}

	for _, quantized := range []bool{false, true} {
		enc, err := reghd.NewEncoderBandwidth(6, 4000, 2.0, 7)
		if err != nil {
			log.Fatal(err)
		}
		clf, err := reghd.NewClassifier(enc, reghd.ClassifierConfig{
			Classes:   len(activities),
			Epochs:    15,
			Seed:      2,
			Quantized: quantized,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := clf.Fit(trainX, trainY); err != nil {
			log.Fatal(err)
		}
		acc, err := clf.Accuracy(testX, testY)
		if err != nil {
			log.Fatal(err)
		}
		mode := "full-precision (cosine)"
		if quantized {
			mode = "quantized (Hamming)   "
		}
		fmt.Printf("%s accuracy: %.1f%% over %d held-out samples\n", mode, acc*100, len(testX))
	}

	// Classify one fresh reading.
	enc, _ := reghd.NewEncoderBandwidth(6, 4000, 2.0, 7)
	clf, _ := reghd.NewClassifier(enc, reghd.ClassifierConfig{Classes: 4, Epochs: 15, Seed: 2})
	if err := clf.Fit(trainX, trainY); err != nil {
		log.Fatal(err)
	}
	x := sample(rng, 2)
	pred, err := clf.Predict(x)
	if err != nil {
		log.Fatal(err)
	}
	scores, _ := clf.Scores(x)
	fmt.Printf("\nnew reading → %q (similarities:", activities[pred])
	for i, s := range scores {
		fmt.Printf(" %s=%.2f", activities[i], s)
	}
	fmt.Println(")")
}
