// RL control: the paper's stated extension — hyperdimensional
// reinforcement learning. A Q-learning agent whose action-value functions
// are RegHD regression models learns to balance the classic cart-pole from
// scratch, reporting the learning curve and the final greedy policy
// against a random baseline.
package main

import (
	"fmt"
	"log"

	"reghd"
)

func main() {
	env := &reghd.CartPole{MaxSteps: 200}
	cfg := reghd.DefaultQAgentConfig()
	cfg.Dim = 1000
	cfg.Bandwidth = 0.3
	cfg.Gamma = 0.95
	cfg.Seed = 5

	agent, err := reghd.NewQAgent(env, cfg)
	if err != nil {
		log.Fatal(err)
	}

	random, err := agent.RandomBaseline(30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random policy:  %.1f steps balanced on average\n\n", random)

	const episodes = 600
	res, err := agent.Train(episodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("learning curve (mean return per 100-episode window):")
	for w := 0; w+100 <= episodes; w += 100 {
		var s float64
		for _, r := range res.Returns[w : w+100] {
			s += r
		}
		fmt.Printf("  episodes %3d-%3d: %6.1f\n", w+1, w+100, s/100)
	}

	trained, err := agent.Evaluate(30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngreedy policy:  %.1f steps balanced on average (%.1fx random)\n",
		trained, trained/random)
}
