// Quickstart: train a RegHD model on a small nonlinear regression problem
// and predict. This is the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"reghd"
)

func main() {
	// 1. Build a dataset: y = sin(2a) + b² with a little noise.
	rng := rand.New(rand.NewSource(1))
	data := &reghd.Dataset{Name: "quickstart"}
	for i := 0; i < 1000; i++ {
		a := rng.Float64()*4 - 2
		b := rng.NormFloat64()
		y := math.Sin(2*a) + b*b + 0.02*rng.NormFloat64()
		data.X = append(data.X, []float64{a, b})
		data.Y = append(data.Y, y)
	}
	train, test, err := data.Split(rng, 0.2)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the encoder (features → hyperspace) and the model. The
	// bandwidth sets the similarity length-scale; sin(2a) needs a finer
	// kernel than the default.
	enc, err := reghd.NewEncoderBandwidth(2, 4000, 1.2, 42)
	if err != nil {
		log.Fatal(err)
	}
	cfg := reghd.DefaultConfig()
	cfg.Models = 4 // four cluster/regression hypervector pairs
	model, err := reghd.NewModel(enc, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The pipeline standardizes features/target around the model.
	pipe := reghd.NewPipeline(model)
	res, err := pipe.Fit(train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %d epochs (converged=%v)\n", res.Epochs, res.Converged)

	// 4. Evaluate and predict.
	mse, err := pipe.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test MSE: %.4f (target variance ≈ 1.4)\n", mse)

	x := []float64{0.5, 1.0}
	y, err := pipe.Predict(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("f(%.1f, %.1f) = %.3f (true %.3f)\n", x[0], x[1], y, math.Sin(2*x[0])+x[1]*x[1])
}
