// Serving: concurrent inference while training never stops. A RegHD engine
// publishes immutable model snapshots through an atomic pointer: reader
// goroutines serve predictions lock-free from the published snapshot while
// a writer streams PartialFit updates into the live model and republishes
// every few samples. This is the production shape of the paper's
// single-pass streaming story — adaptation and serving proceed
// simultaneously, and every reader always sees a consistent frozen model.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"reghd"
)

// process simulates a drifting industrial process: the target surface
// shifts with phase over time, so a model that stops learning goes stale.
func process(rng *rand.Rand, phase float64) (x []float64, y float64) {
	a := rng.Float64()*4 - 2
	b := rng.NormFloat64()
	y = 40 + 12*math.Sin(2*a+phase) + 5*b + 0.3*rng.NormFloat64()
	return []float64{a, b}, y
}

func main() {
	rng := rand.New(rand.NewSource(1))

	enc, err := reghd.NewEncoderBandwidth(2, 2000, 1.2, 42)
	if err != nil {
		log.Fatal(err)
	}
	cfg := reghd.DefaultConfig()
	cfg.Models = 4
	cfg.ClusterMode = reghd.ClusterBinary
	cfg.PredictMode = reghd.PredictBinaryBoth
	model, err := reghd.NewModel(enc, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Warm-start on the initial process regime (keeping a recent window to
	// calibrate the quantized readout), then hand the model to the serving
	// engine: from here on, the engine owns all mutation.
	var warmX [][]float64
	var warmY []float64
	for i := 0; i < 1500; i++ {
		x, y := process(rng, 0)
		if err := model.PartialFit(x, y); err != nil {
			log.Fatal(err)
		}
		if i >= 1500-256 {
			warmX = append(warmX, x)
			warmY = append(warmY, y)
		}
	}
	if err := model.RefreshShadows(warmX, warmY); err != nil {
		log.Fatal(err)
	}
	engine, err := reghd.NewEngine(model)
	if err != nil {
		log.Fatal(err)
	}
	engine.SetPublishEvery(100)
	ops := engine.EnableOpCounting()
	engine.EnableMetrics()

	// Pin the pre-drift snapshot: it stays frozen and serviceable forever,
	// and at the end shows what serving would look like without
	// republication.
	stale := engine.Snapshot()

	// Writer: stream 4000 samples whose target surface drifts, adapting
	// the live model while readers keep serving.
	const streamLen = 4000
	var progress atomic.Int64 // writer position, read by the reader load
	var served atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		wrng := rand.New(rand.NewSource(2))
		for i := 0; i < streamLen; i++ {
			phase := math.Pi * float64(i) / streamLen
			x, y := process(wrng, phase)
			if err := engine.PartialFit(x, y); err != nil {
				log.Fatal(err)
			}
			progress.Store(int64(i))
		}
	}()

	// Readers: hammer the published snapshot until the writer finishes,
	// tracking the error of the *served* predictions against the drifting
	// truth — the number a live endpoint's user experiences.
	const readers = 4
	errCh := make(chan float64, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(100 + int64(r)))
			var sqErr float64
			var n int
			for {
				select {
				case <-stop:
					errCh <- sqErr / math.Max(float64(n), 1)
					return
				default:
				}
				phase := math.Pi * float64(progress.Load()) / streamLen
				x, y := process(rrng, phase)
				pred, err := engine.Predict(x)
				if err != nil {
					log.Fatal(err)
				}
				sqErr += (pred - y) * (pred - y)
				n++
				served.Add(1)
			}
		}(r)
	}
	wg.Wait()

	var servedMSE float64
	for r := 0; r < readers; r++ {
		servedMSE += <-errCh / readers
	}
	fmt.Printf("served %d predictions from %d readers while streaming %d updates\n",
		served.Load(), readers, streamLen)
	fmt.Printf("mean served MSE under drift: %.3f\n", servedMSE)
	fmt.Printf("inference ops (atomic aggregation): %v\n", ops.Counter())

	// The engine's own view of the run (see docs/OBSERVABILITY.md): latency
	// quantiles, stage breakdown, and how far behind the published snapshot
	// ended up.
	m := engine.Metrics()
	fmt.Printf("metrics: p50 %s p99 %s (%.0f predictions/s), %d publishes, %d updates unpublished\n",
		time.Duration(m.Predict.P50NS), time.Duration(m.Predict.P99NS),
		m.Predict.RatePerSec, m.Snapshot.Publishes, m.Snapshot.UpdatesSincePublish)
	fmt.Printf("stage means: encode %s, similarity %s, readout %s\n",
		time.Duration(m.Stages.Encode.MeanNS),
		time.Duration(m.Stages.Similarity.MeanNS),
		time.Duration(m.Stages.Readout.MeanNS))
	fmt.Printf("encode throughput: %.0f rows/s (see docs/PERFORMANCE.md for the kernels behind it)\n",
		m.EncodeRowsPerSec)

	// The payoff of republication: on the fully drifted regime, the final
	// published snapshot stays accurate while the pinned pre-drift snapshot
	// has gone stale.
	final := engine.Snapshot()
	probe := rand.New(rand.NewSource(3))
	var staleSq, freshSq float64
	const probes = 500
	for i := 0; i < probes; i++ {
		x, y := process(probe, math.Pi)
		sy, err := stale.Predict(x)
		if err != nil {
			log.Fatal(err)
		}
		fy, err := final.Predict(x)
		if err != nil {
			log.Fatal(err)
		}
		staleSq += (sy - y) * (sy - y)
		freshSq += (fy - y) * (fy - y)
	}
	fmt.Printf("drifted-regime MSE: %.3f with republication vs %.3f frozen pre-drift\n",
		freshSq/probes, staleSq/probes)
	if freshSq >= staleSq {
		log.Fatal("republication should track the drift better than the frozen snapshot")
	}
	fmt.Println("snapshot republication tracks the drift ✓")
}
