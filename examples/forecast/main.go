// Forecast: one-step-ahead time-series prediction with the sequence
// encoder — the IoT forecasting workload the paper's introduction
// motivates. A sliding window of sensor readings is encoded order-
// sensitively (per-step encodings rotated by lag, then bundled) and a
// multi-model RegHD regressor predicts the next reading.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"reghd"
)

func main() {
	// A quasi-periodic "sensor" with two interacting rhythms plus noise.
	rng := rand.New(rand.NewSource(1))
	const n = 1500
	signal := make([]float64, n)
	for i := range signal {
		t := float64(i)
		signal[i] = math.Sin(0.2*t) + 0.5*math.Sin(0.05*t) + 0.02*rng.NormFloat64()
	}

	// Window the series: predict signal[t] from the previous 8 readings.
	const window = 8
	ds := &reghd.Dataset{Name: "sensor"}
	for i := window; i < n; i++ {
		ds.X = append(ds.X, signal[i-window:i])
		ds.Y = append(ds.Y, signal[i])
	}
	split := ds.Len() * 3 / 4
	train := ds.Subset(seq(0, split))
	test := ds.Subset(seq(split, ds.Len()))

	// Per-step encoder (1 feature per step) wrapped into a window encoder.
	base, err := reghd.NewEncoderBandwidth(1, 2000, 0.7, 2)
	if err != nil {
		log.Fatal(err)
	}
	enc, err := reghd.NewSequenceEncoder(base, window)
	if err != nil {
		log.Fatal(err)
	}
	cfg := reghd.DefaultConfig()
	cfg.Models = 4
	cfg.Epochs = 20
	cfg.PredictMode = reghd.PredictBinaryQuery
	model, err := reghd.NewModel(enc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := model.Fit(train); err != nil {
		log.Fatal(err)
	}

	mse, err := model.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}
	// Persistence (predict the previous value) is the baseline any
	// forecaster must beat.
	var persist float64
	for i := range test.Y {
		d := test.X[i][window-1] - test.Y[i]
		persist += d * d
	}
	persist /= float64(test.Len())
	fmt.Printf("one-step-ahead forecast over %d held-out steps\n", test.Len())
	fmt.Printf("persistence baseline MSE: %.5f\n", persist)
	fmt.Printf("RegHD forecast MSE:       %.5f (%.1fx better)\n", mse, persist/mse)

	// Show a few forecasts.
	fmt.Println("\n  t      actual   forecast")
	for i := 0; i < 5; i++ {
		y, err := model.Predict(test.X[i])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d   %8.4f   %8.4f\n", split+window+i, test.Y[i], y)
	}
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
