// Powerplant: predict the electrical output of a combined-cycle power plant
// (the paper's CCPP workload) and show how the number of models and the
// retraining iterations affect quality — the paper's Fig. 3 story on a
// realistic workload.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"reghd"
)

func main() {
	// The CCPP stand-in: 9568 samples, 4 ambient-condition features,
	// output in MW around 420–496. Real CSVs drop in via reghd.LoadCSV.
	full, err := reghd.SyntheticDataset("ccpp", 1)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// Subsample to keep the demo quick.
	perm := rng.Perm(full.Len())[:3000]
	ds := full.Subset(perm)
	train, test, err := ds.Split(rng, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CCPP: %d train / %d test samples, %d features\n\n",
		train.Len(), test.Len(), train.Features())

	// Single-model vs multi-model regression (Fig. 3b).
	for _, k := range []int{1, 2, 8, 32} {
		// The CCPP stand-in is a clustered mixture; a finer kernel bandwidth
		// than the default resolves its within-cluster structure, and a
		// capacity-limited D exposes the value of more models (Fig. 3b).
		enc, err := reghd.NewEncoderBandwidth(ds.Features(), 512, 1.2, 7)
		if err != nil {
			log.Fatal(err)
		}
		cfg := reghd.DefaultConfig()
		cfg.Models = k
		cfg.Epochs = 25
		model, err := reghd.NewModel(enc, cfg)
		if err != nil {
			log.Fatal(err)
		}
		pipe := reghd.NewPipeline(model)
		res, err := pipe.Fit(train)
		if err != nil {
			log.Fatal(err)
		}
		mse, err := pipe.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}
		preds, err := pipe.PredictBatch(test.X)
		if err != nil {
			log.Fatal(err)
		}
		r2, _ := reghd.R2(preds, test.Y)
		fmt.Printf("RegHD-%d: test MSE %7.2f (MW²), R² %.3f, %d epochs\n",
			k, mse, r2, res.Epochs)
	}

	// A sample prediction in engineering units.
	enc, _ := reghd.NewEncoderBandwidth(ds.Features(), 512, 1.2, 7)
	cfg := reghd.DefaultConfig()
	cfg.Models = 8
	cfg.Epochs = 25
	model, _ := reghd.NewModel(enc, cfg)
	pipe := reghd.NewPipeline(model)
	if _, err := pipe.Fit(train); err != nil {
		log.Fatal(err)
	}
	x := test.X[0]
	y, err := pipe.Predict(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample: conditions %v → predicted %.1f MW (actual %.1f MW)\n",
		x, y, test.Y[0])
}
