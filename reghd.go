// Package reghd is a pure-Go implementation of RegHD (DAC 2021), regression
// in hyperdimensional computing: inputs are mapped into a high-dimensional
// space by a similarity-preserving nonlinear encoder, clustered at run time
// against k cluster hypervectors, and regressed by k model hypervectors
// whose outputs are blended by softmax confidence. A quantization framework
// replaces the expensive cosine similarity with Hamming distance on binary
// cluster shadows, and can binarize queries and/or models for multiply-free
// prediction on embedded hardware.
//
// Quick start:
//
//	enc, _ := reghd.NewEncoder(nFeatures, 4000, 1)
//	model, _ := reghd.NewModel(enc, reghd.DefaultConfig())
//	pipe := reghd.NewPipeline(model)
//	_ = pipe.Fit(trainingData)                 // *reghd.Dataset
//	y, _ := pipe.Predict([]float64{ /* ... */ })
//
// The Pipeline standardizes features and target around the model, which is
// how every experiment in the paper's evaluation is run; use Model directly
// for pre-standardized data or streaming updates. For concurrent serving —
// lock-free prediction while a writer streams PartialFit updates — wrap the
// model (or fitted pipeline) in an Engine, which publishes immutable
// Snapshots through an atomic pointer.
//
// The serving stack is observable: Engine.EnableMetrics adds latency
// histograms, per-stage timing, and snapshot-staleness gauges read back
// with Engine.Metrics (see docs/OBSERVABILITY.md for the metric reference,
// and cmd/reghd-serve for an instrumented demo server).
package reghd

import (
	"io"
	"math/rand"

	"reghd/internal/core"
	"reghd/internal/encoding"
	"reghd/internal/hdc"
)

// Config holds the RegHD hyper-parameters. See DefaultConfig for the
// evaluation defaults.
type Config = core.Config

// Model is a RegHD regressor.
type Model = core.Model

// TrainResult summarizes an iterative training run.
type TrainResult = core.TrainResult

// UpdateRule selects how the multi-model error update distributes the
// prediction error across the k regression models.
type UpdateRule = core.UpdateRule

// ClusterMode selects the cluster-similarity implementation.
type ClusterMode = core.ClusterMode

// PredictMode selects the query/model quantization of the prediction dot
// product.
type PredictMode = core.PredictMode

// OpCounter accumulates primitive-operation counts for the hardware cost
// model; attach one to Model.TrainCounter or Model.InferCounter. It is a
// plain (single-threaded) accumulator; for concurrent serving use
// AtomicOpCounter via Snapshot.SetCounter or Engine.EnableOpCounting.
type OpCounter = hdc.Counter

// Re-exported mode constants.
const (
	// UpdateWeighted updates every model scaled by its softmax confidence.
	UpdateWeighted = core.UpdateWeighted
	// UpdateHardMax updates only the most-similar model.
	UpdateHardMax = core.UpdateHardMax

	// ClusterInteger keeps full-precision clusters with cosine similarity.
	ClusterInteger = core.ClusterInteger
	// ClusterBinary uses binary cluster shadows with Hamming similarity
	// (the paper's quantized clustering framework).
	ClusterBinary = core.ClusterBinary
	// ClusterNaiveBinary binarizes clusters once and never updates them.
	ClusterNaiveBinary = core.ClusterNaiveBinary

	// PredictFull uses the raw query against the integer model.
	PredictFull = core.PredictFull
	// PredictBinaryQuery uses the bipolar query against the integer model.
	PredictBinaryQuery = core.PredictBinaryQuery
	// PredictBinaryModel uses the raw query against the binarized model.
	PredictBinaryModel = core.PredictBinaryModel
	// PredictBinaryBoth uses the bipolar query against the binarized model
	// (pure XOR+popcount prediction).
	PredictBinaryBoth = core.PredictBinaryBoth
)

// ErrNotTrained is returned by prediction before training.
var ErrNotTrained = core.ErrNotTrained

// DefaultConfig returns the hyper-parameters used throughout the paper's
// evaluation.
func DefaultConfig() Config { return core.DefaultConfig() }

// Encoder is the similarity-preserving map from feature vectors into
// hyperdimensional space.
type Encoder = encoding.Encoder

// NewEncoder builds the paper's Eq. 1 nonlinear encoder for nFeatures-
// dimensional inputs into dim-dimensional hyperspace, seeded
// deterministically. The kernel bandwidth defaults to 2√nFeatures,
// appropriate for standardized features.
func NewEncoder(nFeatures, dim int, seed int64) (Encoder, error) {
	return encoding.NewNonlinear(rand.New(rand.NewSource(seed)), nFeatures, dim)
}

// NewEncoderBandwidth builds the Eq. 1 encoder with an explicit kernel
// bandwidth: the induced similarity between inputs decays as
// exp(−2‖Δx‖²/bandwidth²), so smaller bandwidths resolve finer target
// structure at the cost of generalization.
func NewEncoderBandwidth(nFeatures, dim int, bandwidth float64, seed int64) (Encoder, error) {
	return encoding.NewNonlinearBandwidth(rand.New(rand.NewSource(seed)), nFeatures, dim, bandwidth)
}

// NewIDLevelEncoder builds the record-based ID-level encoder (random
// per-feature ID hypervectors bound to quantized level hypervectors), an
// alternative for sensor-style data; levels quantize values over [lo, hi].
func NewIDLevelEncoder(nFeatures, dim, levels int, lo, hi float64, seed int64) (Encoder, error) {
	return encoding.NewIDLevel(rand.New(rand.NewSource(seed)), nFeatures, dim, levels, lo, hi)
}

// NewSequenceEncoder wraps a per-step encoder into a sliding-window
// encoder for time-series forecasting: each of the window's steps is
// encoded with base, rotated by its position, and bundled, so the result
// is order-sensitive while staying similar for windows that mostly agree.
// The returned encoder expects window·base.Features() flattened inputs.
func NewSequenceEncoder(base Encoder, window int) (Encoder, error) {
	return encoding.NewSequence(base, window)
}

// NewModel constructs an untrained RegHD model over the encoder.
func NewModel(enc Encoder, cfg Config) (*Model, error) {
	return core.New(enc, cfg)
}

// LoadModel restores a model previously written with Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// LoadModelFile restores a model from a file written with Model.SaveFile.
func LoadModelFile(path string) (*Model, error) { return core.LoadFile(path) }
