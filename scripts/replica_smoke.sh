#!/bin/sh
# Replica fleet smoke test (`make replica-smoke`): end-to-end exercise of
# the delta-sync replication path from docs/REPLICATION.md. Starts three
# reghd-replica processes exchanging deltas over HTTP, every outbound link
# wrapped in the seeded chaos injector at 10% drop, with replica 1
# additionally severing its outbound links for 2s at the second round's
# seal (a real partition window the fleet must stall through and heal
# from). Drives 3 sync rounds and asserts every replica folded all rounds
# with a Float64bits-identical state fingerprint.
set -eu

DIR=$(mktemp -d)
BIN="$DIR/reghd-replica"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$DIR"' EXIT

echo "replica-smoke: building reghd-replica..."
go build -o "$BIN" ./cmd/reghd-replica

PORT0=18471
PORT1=18472
PORT2=18473
PEERS="0=http://127.0.0.1:$PORT0,1=http://127.0.0.1:$PORT1,2=http://127.0.0.1:$PORT2"
ROUNDS=3

echo "replica-smoke: starting 3 replicas (10% chaos drop, 2s partition on replica 1)..."
i=0
for PORT in $PORT0 $PORT1 $PORT2; do
    PARTITION=0s
    [ "$i" -eq 1 ] && PARTITION=2s
    "$BIN" \
        -id "$i" -members 3 -peers "$PEERS" -addr "127.0.0.1:$PORT" \
        -synth ccpp -dim 256 -max-samples 900 -seed 1 -rounds "$ROUNDS" \
        -chaos-drop 0.10 -chaos-seed 7 -chaos-partition "$PARTITION" \
        >"$DIR/replica$i.log" 2>&1 &
    PIDS="$PIDS $!"
    i=$((i + 1))
done

# Wait for every replica to fold the final round, reading the driver log
# (each fold line carries the merged-state fingerprint).
fingerprint() {
    sed -n "s/.*round $ROUNDS folded: fingerprint=\([0-9a-f]*\).*/\1/p" "$1" | head -n1
}
TRIES=0
while :; do
    DONE=1
    for i in 0 1 2; do
        [ -n "$(fingerprint "$DIR/replica$i.log")" ] || DONE=0
    done
    [ "$DONE" -eq 1 ] && break
    for p in $PIDS; do
        kill -0 "$p" 2>/dev/null || {
            echo "replica-smoke: FAIL — a replica died:"
            tail -n 20 "$DIR"/replica*.log
            exit 1
        }
    done
    TRIES=$((TRIES + 1))
    if [ "$TRIES" -ge 240 ]; then
        echo "replica-smoke: FAIL — fleet did not fold round $ROUNDS within 120s:"
        tail -n 20 "$DIR"/replica*.log
        exit 1
    fi
    sleep 0.5
done

FP0=$(fingerprint "$DIR/replica0.log")
FP1=$(fingerprint "$DIR/replica1.log")
FP2=$(fingerprint "$DIR/replica2.log")
if [ "$FP0" != "$FP1" ] || [ "$FP0" != "$FP2" ]; then
    echo "replica-smoke: FAIL — fleet diverged: $FP0 $FP1 $FP2"
    exit 1
fi
grep -q "partitioned outbound links" "$DIR/replica1.log" || {
    echo "replica-smoke: FAIL — the 2s partition window never opened"
    exit 1
}
echo "replica-smoke: fleet converged bit-identically (fingerprint $FP0)"

# When an HTTP client is around, also assert the serving surface: /healthz
# reports ok and /replstatus agrees on the round.
if command -v curl >/dev/null 2>&1; then
    FETCH="curl -s"
elif command -v wget >/dev/null 2>&1; then
    FETCH="wget -qO-"
else
    echo "replica-smoke: ok (no curl/wget; skipping endpoint assertions)"
    exit 0
fi
for PORT in $PORT0 $PORT1 $PORT2; do
    HEALTH=$($FETCH "http://127.0.0.1:$PORT/healthz")
    [ "$HEALTH" = "ok" ] || {
        echo "replica-smoke: FAIL — :$PORT /healthz = '$HEALTH'"
        exit 1
    }
    ROUND=$($FETCH "http://127.0.0.1:$PORT/replstatus" | sed -n 's/.*"round":\([0-9]*\).*/\1/p')
    [ "$ROUND" = "$ROUNDS" ] || {
        echo "replica-smoke: FAIL — :$PORT /replstatus round = '$ROUND', want $ROUNDS"
        exit 1
    }
done
echo "replica-smoke: ok (3 replicas, round $ROUNDS, healthz + replstatus verified)"
