#!/bin/sh
# Fleet smoke test (`make fleet-smoke`): end-to-end exercise of the
# multi-tenant serving path from docs/SERVING.md. Seeds 8 small tenant
# models, serves them on an ephemeral port under a resident budget of 4
# (so the zipfian mix forces LRU evictions mid-traffic), drives a short
# closed-loop reghd-loadgen run with a generous SLO, and fails on SLO
# violation or any request error. Asserts afterwards that evictions
# actually happened, so the eviction path is exercised, not just present.
set -eu

DIR=$(mktemp -d)
LOG="$DIR/serve.log"
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

echo "fleet-smoke: seeding and serving 8 tenants (resident budget 4)..."
go run ./cmd/reghd-serve \
    -addr localhost:0 \
    -models-dir "$DIR/fleet" \
    -seed-models 8 -synth airfoil -dim 256 -models 2 -epochs 1 \
    -max-resident 4 \
    >"$LOG" 2>&1 &
SERVE_PID=$!

# Wait for the server to log its ephemeral address.
ADDR=""
for _ in $(seq 1 120); do
    ADDR=$(sed -n 's/.*serving on http:\/\/\([^ ]*\).*/\1/p' "$LOG" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "fleet-smoke: server died:"; cat "$LOG"; exit 1; }
    sleep 0.5
done
if [ -z "$ADDR" ]; then
    echo "fleet-smoke: server never reported its address:"
    cat "$LOG"
    exit 1
fi
echo "fleet-smoke: fleet up on $ADDR"

go run ./cmd/reghd-loadgen \
    -addr "http://$ADDR" \
    -duration 5s -concurrency 8 -zipf-s 1.2 \
    -slo-ms 2000 -slo-quantile 0.99 -max-error-rate 0 \
    -json "$DIR/report.json"

# The budget (4) is under the tenant count (8), so the zipfian mix must
# have forced LRU evictions — assert they are observable in /metrics.
if command -v curl >/dev/null 2>&1; then
    FETCH="curl -s"
elif command -v wget >/dev/null 2>&1; then
    FETCH="wget -qO-"
else
    echo "fleet-smoke: ok (no curl/wget; skipping eviction-metric assertion)"
    exit 0
fi
EVICTIONS=$($FETCH "http://$ADDR/metrics" \
    | tr ',{' '\n\n' | sed -n 's/.*"evictions": *\([0-9][0-9]*\).*/\1/p' | head -n1)
if [ -z "$EVICTIONS" ] || [ "$EVICTIONS" -eq 0 ]; then
    echo "fleet-smoke: FAIL — no LRU evictions observed in /metrics (got '${EVICTIONS:-}')"
    exit 1
fi
echo "fleet-smoke: ok ($EVICTIONS evictions observed in /metrics)"
