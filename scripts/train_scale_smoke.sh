#!/bin/sh
# Train-scale smoke test (`make train-smoke`): end-to-end check that
# sharded parallel training (docs/TRAINING.md) preserves model quality.
# Trains reghd-train on the synthetic airfoil task twice — sequentially
# (-workers 1) and sharded across 4 workers — on the same seed and split,
# then asserts the parallel test MSE is within TOLERANCE of the
# sequential one. The bundling merge is an approximation of the
# sequential update order, so exact equality is not expected; a blown
# tolerance means the merge math regressed. Wall-clock is deliberately
# NOT asserted: on a 1-core runner the workers time-slice and parallel
# speedup cannot manifest (docs/TRAINING.md covers the scaling caveat).
set -eu

TOLERANCE="${TOLERANCE:-1.15}"
DIM="${DIM:-512}"
EPOCHS="${EPOCHS:-10}"

run_mse() {
    out=$(go run ./cmd/reghd-train -synth airfoil -dim "$DIM" -epochs "$EPOCHS" -workers "$1")
    echo "$out" | sed 's/^/  /' >&2
    echo "$out" | awk '/^test  MSE:/ { print $3 }'
}

echo "train-smoke: sequential baseline (-workers 1)..."
SEQ=$(run_mse 1)
echo "train-smoke: sharded run (-workers 4)..."
PAR=$(run_mse 4)

if [ -z "$SEQ" ] || [ -z "$PAR" ]; then
    echo "train-smoke: FAIL — could not parse test MSE (seq='$SEQ' par='$PAR')"
    exit 1
fi

# ratio = parallel / sequential; must stay <= TOLERANCE.
OK=$(awk -v s="$SEQ" -v p="$PAR" -v tol="$TOLERANCE" \
    'BEGIN { r = p / s; printf "%.4f ", r; print (r <= tol) ? "ok" : "fail" }')
RATIO=${OK% *}
VERDICT=${OK#* }
if [ "$VERDICT" != "ok" ]; then
    echo "train-smoke: FAIL — parallel MSE $PAR is ${RATIO}x sequential $SEQ (tolerance ${TOLERANCE}x)"
    exit 1
fi
echo "train-smoke: ok (sequential MSE $SEQ, 4-worker MSE $PAR, ratio ${RATIO}x <= ${TOLERANCE}x)"
