package reghd

import "reghd/internal/hdclass"

// Classifier is a general hyperdimensional classifier (single-pass
// bundling + adaptive retraining), the classification companion of the
// RegHD regressor.
type Classifier = hdclass.Classifier

// ClassifierConfig holds the classifier hyper-parameters.
type ClassifierConfig = hdclass.Config

// NewClassifier builds an untrained HD classifier over the encoder.
func NewClassifier(enc Encoder, cfg ClassifierConfig) (*Classifier, error) {
	return hdclass.New(enc, cfg)
}
