package reghd

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func makeData(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: "facade", X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		d.X[i] = []float64{a, b}
		d.Y[i] = 100 + 20*(a+math.Sin(2*b)) + 0.5*rng.NormFloat64()
	}
	return d
}

func TestPipelineEndToEnd(t *testing.T) {
	all := makeData(1, 800)
	train := all.Subset(seq(0, 600))
	test := all.Subset(seq(600, 800))
	enc, err := NewEncoder(2, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 30
	m, err := NewModel(enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline(m)
	res, err := pipe.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 {
		t.Fatal("no epochs recorded")
	}
	mse, err := pipe.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	// Target std is ≈ 28 in original units; a fitted model must be far
	// below the variance (≈ 800).
	if mse > 80 {
		t.Fatalf("pipeline test MSE %v too high", mse)
	}
	if pipe.Model() != m {
		t.Fatal("Model accessor wrong")
	}
}

func TestPipelinePredictBeforeFit(t *testing.T) {
	enc, _ := NewEncoder(2, 128, 1)
	m, _ := NewModel(enc, DefaultConfig())
	pipe := NewPipeline(m)
	if _, err := pipe.Predict([]float64{1, 2}); err == nil {
		t.Fatal("unfitted pipeline accepted Predict")
	}
}

func TestPipelineOriginalUnits(t *testing.T) {
	// The pipeline must return predictions near the original target scale
	// (here ≈100), not standardized values near 0.
	all := makeData(2, 500)
	enc, _ := NewEncoder(2, 1000, 3)
	cfg := DefaultConfig()
	cfg.Epochs = 15
	m, _ := NewModel(enc, cfg)
	pipe := NewPipeline(m)
	if _, err := pipe.Fit(all); err != nil {
		t.Fatal(err)
	}
	var mean float64
	preds, err := pipe.PredictBatch(all.X[:100])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		mean += p
	}
	mean /= float64(len(preds))
	if mean < 50 || mean > 150 {
		t.Fatalf("predictions not in original units: mean %v", mean)
	}
}

func TestEncoderConstructors(t *testing.T) {
	if _, err := NewEncoder(0, 100, 1); err == nil {
		t.Fatal("invalid encoder accepted")
	}
	e, err := NewEncoderBandwidth(3, 100, 0.5, 1)
	if err != nil || e.Dim() != 100 {
		t.Fatalf("bandwidth encoder: %v", err)
	}
	idl, err := NewIDLevelEncoder(3, 100, 8, 0, 1, 1)
	if err != nil || idl.Features() != 3 {
		t.Fatalf("id-level encoder: %v", err)
	}
	m, err := NewModel(idl, DefaultConfig())
	if err != nil || m.Dim() != 100 {
		t.Fatalf("model over id-level encoder: %v", err)
	}
}

func TestSyntheticDatasets(t *testing.T) {
	names := SyntheticNames()
	if len(names) != 7 {
		t.Fatalf("expected 7 synthetic datasets, got %v", names)
	}
	d, err := SyntheticDataset("boston", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 506 || d.Features() != 13 {
		t.Fatalf("boston shape %dx%d", d.Len(), d.Features())
	}
	if _, err := SyntheticDataset("nope", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestCSVRoundTripFacade(t *testing.T) {
	d, _ := SyntheticDataset("diabetes", 1)
	path := filepath.Join(t.TempDir(), "d.csv")
	if err := SaveCSV(path, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path, "diabetes", true)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatal("round trip changed size")
	}
}

func TestMetricsFacade(t *testing.T) {
	mse, err := MSE([]float64{1, 2}, []float64{1, 4})
	if err != nil || mse != 2 {
		t.Fatalf("MSE = %v, %v", mse, err)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("RMSE length mismatch accepted")
	}
	mae, _ := MAE([]float64{0}, []float64{3})
	if mae != 3 {
		t.Fatalf("MAE = %v", mae)
	}
	r2, _ := R2([]float64{1, 2, 3}, []float64{1, 2, 3})
	if r2 != 1 {
		t.Fatalf("R2 = %v", r2)
	}
}

func TestHardwareFacade(t *testing.T) {
	enc, _ := NewEncoder(2, 256, 1)
	cfg := DefaultConfig()
	cfg.Epochs = 2
	m, _ := NewModel(enc, cfg)
	m.TrainCounter = &OpCounter{}
	all := makeData(3, 100)
	sc, _ := FitScaler(all, true)
	allS, _ := sc.Transform(all)
	if _, err := m.Fit(allS); err != nil {
		t.Fatal(err)
	}
	cost, err := EstimateCost(m.TrainCounter, FPGAProfile())
	if err != nil {
		t.Fatal(err)
	}
	if cost.Seconds <= 0 || cost.Joules <= 0 {
		t.Fatalf("degenerate cost %+v", cost)
	}
	armCost, err := EstimateCost(m.TrainCounter, ARMProfile())
	if err != nil {
		t.Fatal(err)
	}
	if armCost.Seconds <= cost.Seconds {
		t.Fatal("ARM should be slower than the FPGA for this workload")
	}
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
