// Command reghd-train trains a RegHD model on a CSV dataset (last column is
// the target) and reports held-out quality, so the genuine UCI datasets can
// be evaluated by dropping in their CSV files.
//
// Usage:
//
//	reghd-train -data housing.csv -header -models 8 -dim 4000
//	reghd-train -synth ccpp -models 8
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"reghd"
	"reghd/internal/dtree"
	"reghd/internal/learner"
	"reghd/internal/linreg"
	"reghd/internal/mlp"
	"reghd/internal/svr"
	"reghd/internal/tune"
)

func run() error {
	var (
		dataPath  = flag.String("data", "", "CSV dataset path (last column = target)")
		header    = flag.Bool("header", false, "CSV has a header row")
		synthName = flag.String("synth", "", "built-in synthetic dataset name (alternative to -data)")
		models    = flag.Int("models", 8, "number of cluster/model pairs k")
		dim       = flag.Int("dim", 4000, "hypervector dimensionality D")
		epochs    = flag.Int("epochs", 40, "maximum training epochs")
		alpha     = flag.Float64("lr", 0.1, "learning rate")
		testFrac  = flag.Float64("test", 0.25, "held-out test fraction")
		seed      = flag.Int64("seed", 1, "random seed")
		binCl     = flag.Bool("binary-cluster", false, "use quantized (Hamming) clustering")
		predict   = flag.String("predict", "bquery-imodel", "prediction kernel: full | bquery-imodel | iquery-bmodel | bquery-bmodel")
		saveTo    = flag.String("save", "", "write the fitted pipeline (model + scaler) to this file (gob)")
		sparsity  = flag.Float64("sparsify", 0, "after training, zero this fraction of the lowest-magnitude model components")
		grid      = flag.Bool("grid", false, "grid-search k and the learning rate with 4-fold CV before training")
		compare   = flag.Bool("compare", false, "also evaluate the DNN/ridge/tree/SVR baselines on the same split")
		workers   = flag.Int("workers", 1, "sharded training workers (1 = sequential Fit; see docs/TRAINING.md)")
	)
	flag.Parse()

	var (
		ds  *reghd.Dataset
		err error
	)
	switch {
	case *dataPath != "":
		ds, err = reghd.LoadCSV(*dataPath, *dataPath, *header)
	case *synthName != "":
		ds, err = reghd.SyntheticDataset(*synthName, *seed)
	default:
		return fmt.Errorf("one of -data or -synth is required")
	}
	if err != nil {
		return err
	}

	pm := map[string]reghd.PredictMode{
		"full":          reghd.PredictFull,
		"bquery-imodel": reghd.PredictBinaryQuery,
		"iquery-bmodel": reghd.PredictBinaryModel,
		"bquery-bmodel": reghd.PredictBinaryBoth,
	}
	mode, ok := pm[*predict]
	if !ok {
		return fmt.Errorf("unknown -predict %q", *predict)
	}

	rng := rand.New(rand.NewSource(*seed))
	train, test, err := ds.Split(rng, *testFrac)
	if err != nil {
		return err
	}

	if *grid {
		best, err := gridSearch(train, *dim, *epochs, *seed, mode)
		if err != nil {
			return err
		}
		*models = best.k
		*alpha = best.lr
		fmt.Printf("grid picked: k=%d lr=%g\n", best.k, best.lr)
	}

	enc, err := reghd.NewEncoder(ds.Features(), *dim, *seed+7)
	if err != nil {
		return err
	}
	cfg := reghd.DefaultConfig()
	cfg.Models = *models
	cfg.Epochs = *epochs
	cfg.LearningRate = *alpha
	cfg.Seed = *seed + 13
	cfg.PredictMode = mode
	if *binCl {
		cfg.ClusterMode = reghd.ClusterBinary
	}
	model, err := reghd.NewModel(enc, cfg)
	if err != nil {
		return err
	}
	pipe := reghd.NewPipeline(model)
	var res *reghd.TrainResult
	var pres *reghd.ParallelTrainResult
	if *workers > 1 {
		pres, err = pipe.FitParallel(train, *workers)
		if err != nil {
			return err
		}
		res = &pres.TrainResult
	} else {
		res, err = pipe.Fit(train)
		if err != nil {
			return err
		}
	}
	if *sparsity > 0 {
		if err := model.Sparsify(*sparsity); err != nil {
			return err
		}
	}
	if *saveTo != "" {
		if err := pipe.SaveFile(*saveTo); err != nil {
			return err
		}
	}
	trainMSE, err := pipe.Evaluate(train)
	if err != nil {
		return err
	}
	testMSE, err := pipe.Evaluate(test)
	if err != nil {
		return err
	}
	preds, err := pipe.PredictBatch(test.X)
	if err != nil {
		return err
	}
	r2, err := reghd.R2(preds, test.Y)
	if err != nil {
		return err
	}

	fmt.Printf("dataset:    %s (%d samples, %d features)\n", ds.Name, ds.Len(), ds.Features())
	fmt.Printf("model:      k=%d D=%d %s/%s\n", *models, *dim, cfg.ClusterMode, cfg.PredictMode)
	fmt.Printf("training:   %d epochs (converged=%v)\n", res.Epochs, res.Converged)
	if pres != nil {
		fmt.Printf("parallel:   %d workers, %d merges (%.2fms merge time), %.0f rows/s\n",
			pres.Workers, pres.Merges, float64(pres.MergeNS)/1e6, pres.RowsPerSec)
	}
	fmt.Printf("train MSE:  %.4f\n", trainMSE)
	fmt.Printf("test  MSE:  %.4f\n", testMSE)
	fmt.Printf("test  R2:   %.4f\n", r2)
	if *compare {
		if err := compareBaselines(train, test, *seed); err != nil {
			return err
		}
	}
	if *sparsity > 0 {
		fmt.Printf("sparsity:   %.1f%% of model components zeroed\n", model.ModelSparsity()*100)
	}
	if *saveTo != "" {
		fmt.Printf("saved:      %s\n", *saveTo)
	}
	return nil
}

// compareBaselines evaluates the classical baselines on the same split,
// with the experiment pipeline's standardization, and prints a mini
// Table 1 for the user's dataset.
func compareBaselines(train, test *reghd.Dataset, seed int64) error {
	sc, err := reghd.FitScaler(train, true)
	if err != nil {
		return err
	}
	trainS, err := sc.Transform(train)
	if err != nil {
		return err
	}
	testS, err := sc.Transform(test)
	if err != nil {
		return err
	}
	baselines := []struct {
		name string
		mk   func() (learner.Regressor, error)
	}{
		{"dnn", func() (learner.Regressor, error) {
			cfg := mlp.DefaultConfig()
			cfg.Seed = seed
			return mlp.New(train.Features(), cfg)
		}},
		{"linreg", func() (learner.Regressor, error) { return linreg.New(linreg.Config{Lambda: 1}) }},
		{"dtree", func() (learner.Regressor, error) { return dtree.New(dtree.DefaultConfig()) }},
		{"svr", func() (learner.Regressor, error) {
			cfg := svr.DefaultConfig()
			cfg.Seed = seed
			return svr.New(cfg)
		}},
	}
	fmt.Println("baselines on the same split:")
	for _, b := range baselines {
		r, err := b.mk()
		if err != nil {
			return err
		}
		if err := r.Fit(trainS); err != nil {
			return fmt.Errorf("fitting %s: %w", b.name, err)
		}
		preds, err := learner.PredictBatch(r, testS.X)
		if err != nil {
			return err
		}
		for i := range preds {
			preds[i] = sc.InverseY(preds[i])
		}
		mse, err := reghd.MSE(preds, test.Y)
		if err != nil {
			return err
		}
		fmt.Printf("  %-8s test MSE: %.4f\n", b.name, mse)
	}
	return nil
}

// gridChoice is a grid-search winner.
type gridChoice struct {
	k  int
	lr float64
}

// gridSearch cross-validates RegHD over model counts and learning rates
// (the paper's grid-search protocol) and returns the best combination.
func gridSearch(train *reghd.Dataset, dim, epochs int, seed int64, mode reghd.PredictMode) (gridChoice, error) {
	var candidates []tune.Candidate
	choices := map[string]gridChoice{}
	for _, k := range []int{1, 4, 8, 16} {
		for _, lr := range []float64{0.05, 0.1, 0.3} {
			k, lr := k, lr
			name := fmt.Sprintf("k=%d lr=%g", k, lr)
			choices[name] = gridChoice{k: k, lr: lr}
			candidates = append(candidates, tune.Candidate{
				Name: name,
				Make: func() (learner.Regressor, error) {
					enc, err := reghd.NewEncoder(train.Features(), dim, seed+7)
					if err != nil {
						return nil, err
					}
					cfg := reghd.DefaultConfig()
					cfg.Models = k
					cfg.LearningRate = lr
					cfg.Epochs = epochs
					cfg.Seed = seed + 13
					cfg.PredictMode = mode
					m, err := reghd.NewModel(enc, cfg)
					if err != nil {
						return nil, err
					}
					return &gridLearner{m: m}, nil
				},
			})
		}
	}
	res, err := tune.GridSearch(train, 4, seed+31, candidates)
	if err != nil {
		return gridChoice{}, err
	}
	fmt.Print(res.Render())
	return choices[res.Best], nil
}

// gridLearner adapts a reghd.Model to the tuner's learner contract.
type gridLearner struct{ m *reghd.Model }

func (g *gridLearner) Name() string { return "reghd" }
func (g *gridLearner) Fit(d *reghd.Dataset) error {
	_, err := g.m.Fit(d)
	return err
}
func (g *gridLearner) Predict(x []float64) (float64, error) { return g.m.Predict(x) }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reghd-train:", err)
		os.Exit(1)
	}
}
