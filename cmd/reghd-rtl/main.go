// Command reghd-rtl generates synthesizable Verilog for the RegHD
// quantized inference datapath, plus a self-checking testbench with
// bit-true stimulus from the Go reference implementation.
//
// Usage:
//
//	reghd-rtl -dim 2048 -models 8 -out rtl/
//	cd rtl && iverilog -g2012 -o sim *.v && vvp sim   # expect "PASS"
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"reghd"
	"reghd/internal/hwgen"
)

func run() error {
	var (
		dim       = flag.Int("dim", 2048, "hypervector dimensionality (multiple of 64)")
		models    = flag.Int("models", 8, "number of cluster/model pairs")
		out       = flag.String("out", "rtl", "output directory")
		queries   = flag.Int("queries", 50, "testbench query count")
		seed      = flag.Int64("seed", 1, "stimulus seed")
		modelPath = flag.String("model", "", "deploy a trained pipeline (from reghd-train -save) instead of random memories")
		dataPath  = flag.String("data", "", "CSV of query rows for -model deployment (last column ignored as target)")
		header    = flag.Bool("header", false, "query CSV has a header row")
	)
	flag.Parse()

	if *modelPath != "" {
		// Deploy a trained model: its binary shadows become the memories
		// and the CSV rows (standardized by the pipeline's scaler) become
		// the stimulus.
		pipe, err := reghd.LoadPipelineFile(*modelPath)
		if err != nil {
			return err
		}
		if *dataPath == "" {
			return fmt.Errorf("-model requires -data with query rows")
		}
		ds, err := reghd.LoadCSV(*dataPath, *dataPath, *header)
		if err != nil {
			return err
		}
		n := ds.Len()
		if n > *queries {
			n = *queries
		}
		rows := make([][]float64, n)
		for i := 0; i < n; i++ {
			row := append([]float64(nil), ds.X[i]...)
			if err := pipe.Scaler().TransformRow(row); err != nil {
				return err
			}
			rows[i] = row
		}
		m := pipe.Model()
		if err := hwgen.ExportTrained(m, rows, *out); err != nil {
			return err
		}
		fmt.Printf("wrote trained deployment (D=%d K=%d, %d queries) to %s/\n", m.Dim(), m.Models(), n, *out)
		fmt.Println("simulate with: iverilog -g2012 -o sim *.v && vvp sim")
		return nil
	}

	cfg := hwgen.Config{Dim: *dim, Models: *models}
	if err := hwgen.WriteDir(cfg, *out); err != nil {
		return err
	}
	tv, err := hwgen.GenerateTestVectors(cfg, rand.New(rand.NewSource(*seed)), *queries)
	if err != nil {
		return err
	}
	if err := hwgen.WriteTestbench(cfg, tv, *out); err != nil {
		return err
	}
	fmt.Printf("wrote RTL + testbench for D=%d K=%d (%d queries) to %s/\n", *dim, *models, *queries, *out)
	fmt.Println("simulate with: iverilog -g2012 -o sim *.v && vvp sim")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reghd-rtl:", err)
		os.Exit(1)
	}
}
