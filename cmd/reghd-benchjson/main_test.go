package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: reghd
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEncodeBatch/serial-256rows-n32-D4096         	       4	  51558680 ns/op	 8395220 B/op	     260 allocs/op
BenchmarkEncodeBatch/parallel-256rows-n32-D4096       	       5	  42687944 ns/op	 8395164 B/op	       3 allocs/op
BenchmarkSimilarityK/hamming-naive-k8-D4096           	  418390	       509.9 ns/op
BenchmarkSimilarityK/hamming-fused-k8-D4096           	  565898	       600.0 ns/op
BenchmarkEnginePredictCoalesce/direct-8callers-n32-D4096    	    1059	    223170 ns/op
BenchmarkEnginePredictCoalesce/coalesced-8callers-n32-D4096 	    1030	    221961 ns/op
PASS
`

func parseString(t *testing.T, s string) *Report {
	t.Helper()
	rep, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func pairFor(t *testing.T, rep *Report, baseline string) Pair {
	t.Helper()
	for _, p := range rep.Pairs {
		if strings.Contains(p.Baseline, baseline) {
			return p
		}
	}
	t.Fatalf("no pair with baseline %q in %+v", baseline, rep.Pairs)
	return Pair{}
}

func TestParsePairsAndRegressionFlag(t *testing.T) {
	rep := parseString(t, sample)
	if len(rep.Pairs) != 3 {
		t.Fatalf("got %d pairs, want 3: %+v", len(rep.Pairs), rep.Pairs)
	}

	enc := pairFor(t, rep, "serial")
	if enc.Regression || enc.Speedup < 1.2 {
		t.Fatalf("serial→parallel pair misclassified: %+v", enc)
	}
	coal := pairFor(t, rep, "direct")
	if coal.Regression {
		t.Fatalf("direct→coalesced pair misclassified: %+v", coal)
	}
	// The sample's fused hamming lane is deliberately slower than naive.
	ham := pairFor(t, rep, "hamming-naive")
	if !ham.Regression || ham.Speedup >= 1.0 {
		t.Fatalf("regressed pair not flagged: %+v", ham)
	}
	if warnRegressions(rep) != 1 {
		t.Fatalf("warnRegressions counted %d, want 1", warnRegressions(rep))
	}
}

func TestParseFoldsCountRunsToFastest(t *testing.T) {
	rep := parseString(t, `BenchmarkX/naive-lane    10   300 ns/op
BenchmarkX/naive-lane    12   200 ns/op
BenchmarkX/fused-lane    50   100 ns/op
`)
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	naive := rep.Results[0]
	if naive.Runs != 2 || naive.NsPerOp != 200 || naive.Iterations != 12 {
		t.Fatalf("fold wrong: %+v", naive)
	}
	p := pairFor(t, rep, "naive")
	if p.Speedup != 2.0 || p.Regression {
		t.Fatalf("pair wrong: %+v", p)
	}
}
