package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: reghd
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEncodeBatch/serial-256rows-n32-D4096         	       4	  51558680 ns/op	 8395220 B/op	     260 allocs/op
BenchmarkEncodeBatch/parallel-256rows-n32-D4096       	       5	  42687944 ns/op	 8395164 B/op	       3 allocs/op
BenchmarkSimilarityK/hamming-naive-k8-D4096           	  418390	       509.9 ns/op
BenchmarkSimilarityK/hamming-fused-k8-D4096           	  565898	       600.0 ns/op
BenchmarkEnginePredictCoalesce/direct-8callers-n32-D4096    	    1059	    223170 ns/op
BenchmarkEnginePredictCoalesce/coalesced-8callers-n32-D4096 	    1030	    221961 ns/op
PASS
`

func parseString(t *testing.T, s string) *Report {
	t.Helper()
	rep, err := parse(bufio.NewScanner(strings.NewReader(s)), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func pairFor(t *testing.T, rep *Report, baseline string) Pair {
	t.Helper()
	for _, p := range rep.Pairs {
		if strings.Contains(p.Baseline, baseline) {
			return p
		}
	}
	t.Fatalf("no pair with baseline %q in %+v", baseline, rep.Pairs)
	return Pair{}
}

func TestParsePairsAndRegressionFlag(t *testing.T) {
	rep := parseString(t, sample)
	if len(rep.Pairs) != 3 {
		t.Fatalf("got %d pairs, want 3: %+v", len(rep.Pairs), rep.Pairs)
	}

	enc := pairFor(t, rep, "serial")
	if enc.Regression || enc.Speedup < 1.2 {
		t.Fatalf("serial→parallel pair misclassified: %+v", enc)
	}
	coal := pairFor(t, rep, "direct")
	if coal.Regression {
		t.Fatalf("direct→coalesced pair misclassified: %+v", coal)
	}
	// The sample's fused hamming lane is deliberately slower than naive.
	ham := pairFor(t, rep, "hamming-naive")
	if !ham.Regression || ham.Speedup >= 1.0 {
		t.Fatalf("regressed pair not flagged: %+v", ham)
	}
	if warnRegressions(rep) != 1 {
		t.Fatalf("warnRegressions counted %d, want 1", warnRegressions(rep))
	}
}

func TestParseFoldsCountRunsToFastest(t *testing.T) {
	rep := parseString(t, `BenchmarkX/naive-lane    10   300 ns/op
BenchmarkX/naive-lane    12   200 ns/op
BenchmarkX/fused-lane    50   100 ns/op
`)
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	naive := rep.Results[0]
	if naive.Runs != 2 || naive.NsPerOp != 200 || naive.Iterations != 12 {
		t.Fatalf("fold wrong: %+v", naive)
	}
	p := pairFor(t, rep, "naive")
	if p.Speedup != 2.0 || p.Regression {
		t.Fatalf("pair wrong: %+v", p)
	}
}

// TestParseRecordsGOMAXPROCS pins the context capture: the -N suffix go
// test stamps on benchmark names lands in the context block, so
// BENCH_train.json records how many cores the scaling lanes actually had.
func TestParseRecordsGOMAXPROCS(t *testing.T) {
	rep := parseString(t, sample)
	if rep.Context["gomaxprocs"] != "" {
		t.Fatalf("sample has no -N suffixes, got gomaxprocs=%q", rep.Context["gomaxprocs"])
	}
	rep = parseString(t, `BenchmarkFitParallel/serial_w1-4    10   300 ns/op
BenchmarkFitParallel/parallel_w1-4  10   305 ns/op
`)
	if rep.Context["gomaxprocs"] != "4" {
		t.Fatalf("gomaxprocs = %q, want 4", rep.Context["gomaxprocs"])
	}
}

// TestParseTolerance pins the -tolerance threshold: a 0.98x near-parity
// pair regresses at the default 1.0 but passes at 0.95 — the gate the
// 1-worker FitParallel parity lane uses on 1-core runners.
func TestParseTolerance(t *testing.T) {
	const parity = `BenchmarkFitParallel/serial_w1    10   1000000 ns/op
BenchmarkFitParallel/parallel_w1  10   1020000 ns/op
`
	strict := parseString(t, parity)
	if p := pairFor(t, strict, "serial_w1"); !p.Regression {
		t.Fatalf("0.98x pair should regress at tolerance 1.0: %+v", p)
	}
	loose, err := parse(bufio.NewScanner(strings.NewReader(parity)), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if p := pairFor(t, loose, "serial_w1"); p.Regression {
		t.Fatalf("0.98x pair should pass at tolerance 0.95: %+v", p)
	}
}
