// Command reghd-benchjson turns `go test -bench` output into a JSON record
// of the kernel-layer benchmarks, pairing each baseline lane with its
// optimized counterpart and computing the speedup. `make bench-json` pipes
// the kernel benchmarks through it to produce BENCH_kernels.json — the
// before/after evidence docs/PERFORMANCE.md tracks.
//
// Pairing is by name: within one benchmark, a sub-benchmark whose name
// contains a baseline token (dense, naive, serial) is matched to the lane
// with the corresponding optimized token (packed, fused, parallel) and an
// otherwise identical name. Lanes without a counterpart are still recorded
// as plain results.
//
// With -count=N the N lines per benchmark collapse to the fastest run:
// on a shared machine the minimum is the least-interfered measurement,
// while means/medians fold scheduler noise into the recorded speedups.
//
// Usage:
//
//	go test -run xxx -bench 'Project|Encode|SimilarityK|EnginePredict' . | reghd-benchjson -o BENCH_kernels.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the full benchmark name with the -N GOMAXPROCS suffix removed.
	Name string `json:"name"`
	// Iterations is the measured b.N of the fastest run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the fastest time per operation across -count runs.
	NsPerOp float64 `json:"ns_per_op"`
	// Runs is how many -count repetitions were folded into this result.
	Runs int `json:"runs"`
}

// Pair is a baseline lane matched with its optimized counterpart.
type Pair struct {
	Baseline  string `json:"baseline"`
	Optimized string `json:"optimized"`
	// BaselineNs and OptimizedNs repeat the paired lanes' ns/op.
	BaselineNs  float64 `json:"baseline_ns_per_op"`
	OptimizedNs float64 `json:"optimized_ns_per_op"`
	// Speedup is baseline ns/op divided by optimized ns/op (>1 is faster).
	Speedup float64 `json:"speedup"`
	// Regression marks pairs whose "optimized" lane is slower than its
	// baseline (speedup < 1.0) — the exact failure mode this tool exists to
	// catch. Regressed pairs are warned to stderr and, under
	// -fail-on-regression, fail the run.
	Regression bool `json:"regression,omitempty"`
}

// Report is the BENCH_kernels.json document.
type Report struct {
	// Context lines from the bench output (goos/goarch/pkg/cpu).
	Context map[string]string `json:"context"`
	Results []Result          `json:"results"`
	Pairs   []Pair            `json:"pairs"`
}

// benchLine matches "BenchmarkName-8   1234   56789 ns/op ..."; the -N
// suffix is go test's GOMAXPROCS stamp, recorded in the context block.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op`)

// swaps maps each baseline token to the optimized tokens it may pair with.
var swaps = map[string][]string{
	"dense":  {"packed"},
	"naive":  {"packed", "fused"},
	"serial": {"parallel"},
	"direct": {"coalesced"},
}

// parse reads `go test -bench` output and pairs lanes; tolerance is the
// regression threshold — a pair regresses when speedup < tolerance (1.0
// means "optimized may not be slower at all"; near-parity pairs such as the
// 1-worker FitParallel lane gate at 0.95).
func parse(r *bufio.Scanner, tolerance float64) (*Report, error) {
	rep := &Report{Context: map[string]string{}}
	byName := map[string]int{}
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if m := benchLine.FindStringSubmatch(line); m != nil {
			if m[2] != "" {
				rep.Context["gomaxprocs"] = m[2]
			}
			iters, err := strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
			}
			ns, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
			}
			if idx, ok := byName[m[1]]; ok {
				prev := &rep.Results[idx]
				prev.Runs++
				if ns < prev.NsPerOp {
					prev.NsPerOp = ns
					prev.Iterations = iters
				}
			} else {
				byName[m[1]] = len(rep.Results)
				rep.Results = append(rep.Results, Result{Name: m[1], Iterations: iters, NsPerOp: ns, Runs: 1})
			}
			continue
		}
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				rep.Context[key] = strings.TrimSpace(v)
			}
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	for _, res := range rep.Results {
		for base, opts := range swaps {
			if !strings.Contains(res.Name, base) {
				continue
			}
			for _, opt := range opts {
				idx, ok := byName[strings.Replace(res.Name, base, opt, 1)]
				if !ok {
					continue
				}
				counter := rep.Results[idx]
				//lint:ignore floatcmp exact-zero NsPerOp is the missing-benchmark sentinel
				if counter.NsPerOp == 0 {
					continue
				}
				speedup := res.NsPerOp / counter.NsPerOp
				rep.Pairs = append(rep.Pairs, Pair{
					Baseline:    res.Name,
					Optimized:   counter.Name,
					BaselineNs:  res.NsPerOp,
					OptimizedNs: counter.NsPerOp,
					Speedup:     speedup,
					Regression:  speedup < tolerance,
				})
			}
		}
	}
	return rep, nil
}

// warnRegressions reports every regressed pair to stderr and returns how
// many there were.
func warnRegressions(rep *Report) int {
	n := 0
	for _, p := range rep.Pairs {
		if p.Regression {
			n++
			fmt.Fprintf(os.Stderr, "reghd-benchjson: REGRESSION %s is %.2fx vs %s (optimized lane is slower)\n",
				p.Optimized, p.Speedup, p.Baseline)
		}
	}
	return n
}

func main() {
	out := flag.String("o", "BENCH_kernels.json", "output file (- for stdout)")
	failOnRegression := flag.Bool("fail-on-regression", false,
		"exit nonzero when any optimized lane is slower than its baseline")
	tolerance := flag.Float64("tolerance", 1.0,
		"regression threshold: a pair regresses when speedup < tolerance (use 0.95 for near-parity pairs on 1-core runners)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rep, err := parse(sc, *tolerance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reghd-benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "reghd-benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "reghd-benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		if warnRegressions(rep) > 0 && *failOnRegression {
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "reghd-benchjson:", err)
		os.Exit(1)
	}
	for _, p := range rep.Pairs {
		fmt.Printf("%-55s %8.0f -> %8.0f ns/op  %.2fx\n", p.Baseline, p.BaselineNs, p.OptimizedNs, p.Speedup)
	}
	fmt.Printf("wrote %s (%d results, %d pairs)\n", *out, len(rep.Results), len(rep.Pairs))
	if n := warnRegressions(rep); n > 0 && *failOnRegression {
		fmt.Fprintf(os.Stderr, "reghd-benchjson: %d regressed pair(s), failing (-fail-on-regression)\n", n)
		os.Exit(1)
	}
}
