// Command reghd-lint runs the repo's static-analysis suite (internal/lint):
// nine analyzers that mechanically enforce the concurrency, pooling,
// op-accounting, determinism, context-propagation, goroutine-lifecycle, and
// error-handling invariants the serving stack and the reproduced hardware
// numbers depend on. It is built purely on the standard library's go/parser,
// go/ast, and go/types.
//
// Usage:
//
//	reghd-lint [-analyzers a,b] [-format text|sarif] [-audit-ignores] [-list] [packages...]
//
// Package patterns are directories; a trailing /... walks recursively
// (testdata and hidden directories are skipped). With no patterns it lints
// ./... relative to the current directory.
//
// -format sarif emits one SARIF 2.1.0 log on stdout (for GitHub code
// scanning) instead of path:line text. -audit-ignores reports stale
// suppression directives — //lint:ignore / //lint:nondeterm comments that
// no longer suppress any diagnostic, and //lint:nocount annotations
// countercharge would not enforce anyway — instead of findings; it always
// runs the full suite, so it cannot be combined with -analyzers.
//
// Exit status, identical across formats and modes: 0 clean, 1 findings,
// 2 load or usage errors. See docs/STATIC_ANALYSIS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"reghd/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reghd-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	format := fs.String("format", "text", "output format: text or sarif")
	audit := fs.Bool("audit-ignores", false, "report stale //lint: suppressions instead of findings (always runs the full suite)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: reghd-lint [-analyzers a,b] [-format text|sarif] [-audit-ignores] [-list] [packages...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(stderr, "reghd-lint: unknown format %q (text or sarif)\n", *format)
		return 2
	}
	if *audit && *only != "" {
		// A stale ignore for an unselected analyzer is indistinguishable from
		// a live one, so the audit is only meaningful over the full suite.
		fmt.Fprintln(stderr, "reghd-lint: -audit-ignores always runs the full suite; drop -analyzers")
		return 2
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "reghd-lint:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "reghd-lint:", err)
		return 2
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "reghd-lint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "reghd-lint:", err)
		return 2
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "reghd-lint:", err)
		return 2
	}
	exit := 0
	var diags []lint.Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(stderr, "reghd-lint:", err)
			exit = 2
			continue
		}
		if *audit {
			diags = append(diags, lint.AuditIgnores(pkg, analyzers)...)
		} else {
			diags = append(diags, lint.RunAnalyzers(pkg, analyzers)...)
		}
	}
	if len(diags) > 0 && exit == 0 {
		exit = 1
	}
	if *format == "sarif" {
		// One log for the whole run; load errors above still force exit 2,
		// but the packages that did load keep their results so code scanning
		// sees as much as possible.
		encoded, err := lint.BuildSARIF(analyzers, diags, cwd).Encode()
		if err != nil {
			fmt.Fprintln(stderr, "reghd-lint:", err)
			return 2
		}
		if _, err := stdout.Write(encoded); err != nil {
			fmt.Fprintln(stderr, "reghd-lint:", err)
			return 2
		}
		return exit
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, relDiag(cwd, d))
	}
	return exit
}

// selectAnalyzers resolves the -analyzers flag against the suite.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expandPatterns turns package patterns into package directories. A pattern
// ending in /... walks that root recursively, keeping directories that hold
// at least one non-test .go file and skipping testdata, hidden, and
// underscore-prefixed directories (the go tool's convention).
func expandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		root = filepath.Clean(strings.TrimSuffix(root, "/"))
		if root == "" {
			root = "."
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("walking %s: %w", pat, err)
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// relDiag renders a diagnostic with its file path relative to cwd when that
// is shorter, keeping output clickable and stable across machines.
func relDiag(cwd string, d lint.Diagnostic) string {
	if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}
