package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"reghd/internal/lint"
)

const (
	cleanFixture    = "../../internal/lint/testdata/src/clean"
	dirtyFixture    = "../../internal/lint/testdata/src/floatfix"
	auditFixture    = "../../internal/lint/testdata/src/auditfix"
	brokenNoSuchDir = "../../internal/lint/testdata/no-such-dir"
)

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunList(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, name := range []string{"snapshotmut", "poolescape", "countercharge", "atomicmix", "floatcmp", "detorder", "ctxflow", "goroleak", "errwrap"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestRunCleanFixture(t *testing.T) {
	code, out, errb := runLint(t, cleanFixture)
	if code != 0 || out != "" {
		t.Fatalf("clean fixture: exit=%d stdout=%q stderr=%q", code, out, errb)
	}
}

func TestRunFindingsExitOne(t *testing.T) {
	code, out, _ := runLint(t, dirtyFixture)
	if code != 1 {
		t.Fatalf("dirty fixture: exit = %d, want 1", code)
	}
	if !strings.Contains(out, "floatcmp") {
		t.Errorf("output should name the analyzer:\n%s", out)
	}
	if !strings.Contains(out, "floatfix.go:") {
		t.Errorf("output should carry path:line positions:\n%s", out)
	}
}

func TestRunAnalyzerSubset(t *testing.T) {
	// The dirty fixture only violates floatcmp; restricting the run to
	// another analyzer must come back clean.
	code, out, _ := runLint(t, "-analyzers", "snapshotmut", dirtyFixture)
	if code != 0 || out != "" {
		t.Fatalf("subset run: exit=%d stdout=%q", code, out)
	}
}

func TestRunBadDirExitTwo(t *testing.T) {
	code, _, errb := runLint(t, brokenNoSuchDir)
	if code != 2 {
		t.Fatalf("missing dir: exit = %d, want 2 (stderr=%q)", code, errb)
	}
}

func TestRunUnknownAnalyzerExitTwo(t *testing.T) {
	code, _, errb := runLint(t, "-analyzers", "nosuch")
	if code != 2 || !strings.Contains(errb, "unknown analyzer") {
		t.Fatalf("unknown analyzer: exit=%d stderr=%q", code, errb)
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	root := t.TempDir()
	mk := func(rel, file string) {
		dir := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if file != "" {
			if err := os.WriteFile(filepath.Join(dir, file), []byte("package x\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	mk("a", "a.go")
	mk("a/b", "b.go")
	mk("a/testdata", "fixture.go")
	mk("a/.hidden", "h.go")
	mk("a/_skip", "s.go")
	mk("a/onlytests", "x_test.go")
	mk("a/empty", "")

	dirs, err := expandPatterns([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		filepath.Join(root, "a"):      true,
		filepath.Join(root, "a", "b"): true,
	}
	if len(dirs) != len(want) {
		t.Fatalf("want %d dirs, got %v", len(want), dirs)
	}
	for _, d := range dirs {
		if !want[d] {
			t.Errorf("unexpected dir %s", d)
		}
	}
}

func TestRunSARIFFindings(t *testing.T) {
	code, out, errb := runLint(t, "-format", "sarif", dirtyFixture)
	if code != 1 {
		t.Fatalf("sarif dirty fixture: exit=%d, want 1 (stderr=%q)", code, errb)
	}
	var log lint.SarifLog
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("stdout is not valid SARIF JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("log version=%q runs=%d, want 2.1.0 with one run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if len(run.Results) == 0 {
		t.Fatal("sarif run has no results for a dirty fixture")
	}
	sawFloatcmp := false
	for _, r := range run.Results {
		if r.RuleID == "floatcmp" {
			sawFloatcmp = true
			// The fixture lives outside this test's working directory, so the
			// URI keeps the full path; it must still be slash-normalized and
			// point at the fixture (relativization is pinned in
			// internal/lint's sarif tests, where baseDir contains the file).
			uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
			if !strings.HasSuffix(uri, "floatfix/floatfix.go") || strings.Contains(uri, "\\") {
				t.Errorf("artifact uri %q should be a slash path ending in floatfix/floatfix.go", uri)
			}
		}
	}
	if !sawFloatcmp {
		t.Errorf("no floatcmp result in sarif output:\n%s", out)
	}
}

func TestRunSARIFClean(t *testing.T) {
	code, out, _ := runLint(t, "-format", "sarif", cleanFixture)
	if code != 0 {
		t.Fatalf("sarif clean fixture: exit = %d, want 0", code)
	}
	var log lint.SarifLog
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("clean run must still emit a valid SARIF log: %v", err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != 0 {
		t.Fatalf("clean run: want one run with zero results, got %+v", log.Runs)
	}
}

func TestRunBadFormatExitTwo(t *testing.T) {
	code, _, errb := runLint(t, "-format", "yaml", cleanFixture)
	if code != 2 || !strings.Contains(errb, "unknown format") {
		t.Fatalf("bad format: exit=%d stderr=%q", code, errb)
	}
}

func TestRunAuditFindsStaleDirectives(t *testing.T) {
	code, out, _ := runLint(t, "-audit-ignores", auditFixture)
	if code != 1 {
		t.Fatalf("audit fixture: exit = %d, want 1\n%s", code, out)
	}
	for _, needle := range []string{"stale //lint:ignore", "stale //lint:nondeterm", "stale //lint:nocount"} {
		if !strings.Contains(out, needle) {
			t.Errorf("audit output missing %q:\n%s", needle, out)
		}
	}
	if strings.Contains(out, "floatcmp diagnostic on this line") && strings.Count(out, "stale //lint:ignore") != 1 {
		t.Errorf("audit should report exactly the rotted ignore:\n%s", out)
	}
}

func TestRunAuditCleanExitZero(t *testing.T) {
	code, out, _ := runLint(t, "-audit-ignores", cleanFixture)
	if code != 0 || out != "" {
		t.Fatalf("audit on clean fixture: exit=%d stdout=%q", code, out)
	}
}

func TestRunAuditRejectsAnalyzerSubset(t *testing.T) {
	code, _, errb := runLint(t, "-audit-ignores", "-analyzers", "floatcmp", auditFixture)
	if code != 2 || !strings.Contains(errb, "full suite") {
		t.Fatalf("audit+subset: exit=%d stderr=%q, want usage error", code, errb)
	}
}

// TestBinaryExitsNonzero is the end-to-end regression test: the built binary
// must exit 1 on a fixture with a known violation, so a CI wiring mistake
// that swallows findings cannot go unnoticed.
func TestBinaryExitsNonzero(t *testing.T) {
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "reghd-lint")
	build := exec.Command(gobin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building reghd-lint: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, dirtyFixture)
	out, err := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("binary exit = %d (err=%v), want 1\n%s", code, err, out)
	}
	if !strings.Contains(string(out), "floatcmp") {
		t.Errorf("binary output should name the analyzer:\n%s", out)
	}
}

// TestBinarySARIFExitContract pins the exit-code contract across formats in
// a real subprocess: -format sarif must exit 1 on findings (while emitting a
// parseable log on stdout) and 0 on a clean tree — CI's upload step depends
// on both halves.
func TestBinarySARIFExitContract(t *testing.T) {
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "reghd-lint")
	build := exec.Command(gobin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building reghd-lint: %v\n%s", err, out)
	}

	dirty := exec.Command(bin, "-format", "sarif", dirtyFixture)
	var stdout, stderr bytes.Buffer
	dirty.Stdout, dirty.Stderr = &stdout, &stderr
	_ = dirty.Run()
	if code := dirty.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("sarif dirty: exit = %d, want 1 (stderr=%q)", code, stderr.String())
	}
	var log lint.SarifLog
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("sarif dirty: stdout is not valid SARIF: %v\n%s", err, stdout.String())
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Fatalf("sarif dirty: want one run with results, got %+v", log.Runs)
	}

	clean := exec.Command(bin, "-format", "sarif", cleanFixture)
	out, err := clean.Output()
	if code := clean.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("sarif clean: exit = %d (err=%v), want 0", code, err)
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("sarif clean: stdout is not valid SARIF: %v", err)
	}
}
