package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const (
	cleanFixture    = "../../internal/lint/testdata/src/clean"
	dirtyFixture    = "../../internal/lint/testdata/src/floatfix"
	brokenNoSuchDir = "../../internal/lint/testdata/no-such-dir"
)

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunList(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, name := range []string{"snapshotmut", "poolescape", "countercharge", "atomicmix", "floatcmp"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestRunCleanFixture(t *testing.T) {
	code, out, errb := runLint(t, cleanFixture)
	if code != 0 || out != "" {
		t.Fatalf("clean fixture: exit=%d stdout=%q stderr=%q", code, out, errb)
	}
}

func TestRunFindingsExitOne(t *testing.T) {
	code, out, _ := runLint(t, dirtyFixture)
	if code != 1 {
		t.Fatalf("dirty fixture: exit = %d, want 1", code)
	}
	if !strings.Contains(out, "floatcmp") {
		t.Errorf("output should name the analyzer:\n%s", out)
	}
	if !strings.Contains(out, "floatfix.go:") {
		t.Errorf("output should carry path:line positions:\n%s", out)
	}
}

func TestRunAnalyzerSubset(t *testing.T) {
	// The dirty fixture only violates floatcmp; restricting the run to
	// another analyzer must come back clean.
	code, out, _ := runLint(t, "-analyzers", "snapshotmut", dirtyFixture)
	if code != 0 || out != "" {
		t.Fatalf("subset run: exit=%d stdout=%q", code, out)
	}
}

func TestRunBadDirExitTwo(t *testing.T) {
	code, _, errb := runLint(t, brokenNoSuchDir)
	if code != 2 {
		t.Fatalf("missing dir: exit = %d, want 2 (stderr=%q)", code, errb)
	}
}

func TestRunUnknownAnalyzerExitTwo(t *testing.T) {
	code, _, errb := runLint(t, "-analyzers", "nosuch")
	if code != 2 || !strings.Contains(errb, "unknown analyzer") {
		t.Fatalf("unknown analyzer: exit=%d stderr=%q", code, errb)
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	root := t.TempDir()
	mk := func(rel, file string) {
		dir := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if file != "" {
			if err := os.WriteFile(filepath.Join(dir, file), []byte("package x\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	mk("a", "a.go")
	mk("a/b", "b.go")
	mk("a/testdata", "fixture.go")
	mk("a/.hidden", "h.go")
	mk("a/_skip", "s.go")
	mk("a/onlytests", "x_test.go")
	mk("a/empty", "")

	dirs, err := expandPatterns([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		filepath.Join(root, "a"):      true,
		filepath.Join(root, "a", "b"): true,
	}
	if len(dirs) != len(want) {
		t.Fatalf("want %d dirs, got %v", len(want), dirs)
	}
	for _, d := range dirs {
		if !want[d] {
			t.Errorf("unexpected dir %s", d)
		}
	}
}

// TestBinaryExitsNonzero is the end-to-end regression test: the built binary
// must exit 1 on a fixture with a known violation, so a CI wiring mistake
// that swallows findings cannot go unnoticed.
func TestBinaryExitsNonzero(t *testing.T) {
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "reghd-lint")
	build := exec.Command(gobin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building reghd-lint: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, dirtyFixture)
	out, err := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("binary exit = %d (err=%v), want 1\n%s", code, err, out)
	}
	if !strings.Contains(string(out), "floatcmp") {
		t.Errorf("binary output should name the analyzer:\n%s", out)
	}
}
