// Command reghd-bench regenerates the paper's tables and figures on the
// synthetic dataset stand-ins and the hardware cost model.
//
// Usage:
//
//	reghd-bench -list
//	reghd-bench -exp table1
//	reghd-bench -exp all [-quick] [-seed 1] [-dim 2000]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"reghd/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id to run, or \"all\"")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		quick  = flag.Bool("quick", false, "tiny smoke-test settings")
		seed   = flag.Int64("seed", 1, "random seed")
		dim    = flag.Int("dim", 0, "hypervector dimensionality (0 = default)")
		reps   = flag.Int("replicates", 0, "seed replicates for Table 1 (0 = default)")
		format = flag.String("format", "text", "output format: text | csv")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Dim: *dim, Quick: *quick, Replicates: *reps}
	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		var out string
		var err error
		if *format == "csv" {
			out, err = experiments.RunCSV(id, opts)
		} else {
			out, err = experiments.Run(id, opts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "reghd-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", id, time.Since(start).Seconds(), out)
	}
}
