// Command reghd-datagen writes the synthetic evaluation datasets as CSV
// files, so other tools (or the genuine scikit-learn baselines) can consume
// identical data.
//
// Usage:
//
//	reghd-datagen -out ./data            # all seven datasets
//	reghd-datagen -out ./data -name ccpp # one dataset
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"reghd"
)

func run() error {
	var (
		out  = flag.String("out", ".", "output directory")
		name = flag.String("name", "", "dataset name (empty = all)")
		seed = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	names := reghd.SyntheticNames()
	if *name != "" {
		names = []string{*name}
	}
	for _, n := range names {
		ds, err := reghd.SyntheticDataset(n, *seed)
		if err != nil {
			return err
		}
		path := filepath.Join(*out, n+".csv")
		if err := reghd.SaveCSV(path, ds); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d samples, %d features)\n", path, ds.Len(), ds.Features())
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reghd-datagen:", err)
		os.Exit(1)
	}
}
