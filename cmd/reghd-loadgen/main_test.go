package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"
)

// fakeDo is an in-process transport for driveFunc: it validates the request
// body like the server would, optionally sleeps to simulate latency, and
// optionally fails.
func fakeDo(delay time.Duration, fail func(tenant string) bool) func(*http.Client, string, []byte) error {
	return func(_ *http.Client, tenant string, body []byte) error {
		var req struct {
			X []float64 `json:"x"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return err
		}
		if len(req.X) == 0 {
			return errors.New("empty row")
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		if fail != nil && fail(tenant) {
			return errors.New("injected failure")
		}
		return nil
	}
}

func TestDriveZipfMixAndReport(t *testing.T) {
	models := []string{"a", "b", "c", "d"}
	do := fakeDo(0, nil)
	rep := driveFunc(models, 3, 4, 150*time.Millisecond, 1.2, 1, 0, 0.99, 0, do)
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.SLOViolated {
		t.Fatal("violated with no SLO set")
	}
	if rep.Concurrency != 4 {
		t.Fatalf("concurrency = %d", rep.Concurrency)
	}
	var total uint64
	for _, n := range rep.Tenants {
		total += n
	}
	if total != rep.Requests {
		t.Fatalf("tenant mix sums to %d, requests %d", total, rep.Requests)
	}
	if len(rep.Tenants) < 2 {
		t.Fatalf("zipf mix drove only %d tenants", len(rep.Tenants))
	}
	if rep.RatePerSec <= 0 || rep.P50NS <= 0 || rep.MaxNS < rep.P50NS {
		t.Fatalf("latency digest inconsistent: %+v", rep)
	}
}

func TestDriveSLOViolationOnLatency(t *testing.T) {
	do := fakeDo(5*time.Millisecond, nil)
	// Every request takes ~5ms; a 1ms SLO at p50 must be violated.
	rep := driveFunc([]string{"a"}, 2, 1, 100*time.Millisecond, 1.2, 1, 1.0, 0.50, 0, do)
	if !rep.SLOViolated {
		t.Fatalf("5ms requests met a 1ms p50 SLO: %+v", rep)
	}
}

func TestDriveSLOViolationOnErrors(t *testing.T) {
	do := fakeDo(0, func(string) bool { return true })
	rep := driveFunc([]string{"a"}, 2, 2, 50*time.Millisecond, 1.2, 1, 1000, 0.99, 0.5, do)
	if rep.Errors != rep.Requests {
		t.Fatalf("errors %d != requests %d", rep.Errors, rep.Requests)
	}
	if !rep.SLOViolated {
		t.Fatal("100% errors under a 50% error budget not flagged")
	}
}

func TestDriveUniformFallback(t *testing.T) {
	// zipf-s <= 1 is invalid for rand.NewZipf; the driver must fall back to
	// a uniform mix instead of panicking.
	do := fakeDo(0, nil)
	rep := driveFunc([]string{"a", "b"}, 2, 2, 50*time.Millisecond, 1.0, 1, 0, 0.99, 0, do)
	if rep.Requests == 0 || len(rep.Tenants) != 2 {
		t.Fatalf("uniform fallback: %+v", rep)
	}
}

func TestQuantileNSSelection(t *testing.T) {
	do := fakeDo(0, nil)
	rep := driveFunc([]string{"a"}, 1, 1, 30*time.Millisecond, 1.2, 1, 0, 0.99, 0, do)
	if got := quantileNS(rep, 0.5); got != rep.P50NS {
		t.Fatalf("q=0.5 -> %d, want p50 %d", got, rep.P50NS)
	}
	if got := quantileNS(rep, 0.99); got != rep.P99NS {
		t.Fatalf("q=0.99 -> %d, want p99 %d", got, rep.P99NS)
	}
	if got := quantileNS(rep, 0.999); got != rep.P999NS {
		t.Fatalf("q=0.999 -> %d, want p999 %d", got, rep.P999NS)
	}
}

func TestPrintReport(t *testing.T) {
	do := fakeDo(0, nil)
	rep := driveFunc([]string{"a", "b"}, 2, 2, 30*time.Millisecond, 1.2, 1, 250, 0.99, 0, do)
	var sb strings.Builder
	printReport(&sb, rep)
	out := sb.String()
	for _, want := range []string{"requests:", "errors:", "latency:", "slo:", "tenant mix:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
