// Command reghd-loadgen is a closed-loop load generator for the multi-model
// serving fleet (reghd-serve -models-dir): it drives a tenant mix with
// zipfian tenant popularity over -concurrency workers, each issuing its
// next /predict/{model} request as soon as the previous response arrives,
// and reports the end-to-end latency digest — p50/p99/p999, mean, max,
// achieved throughput, and the realized per-tenant mix — against an -slo-ms
// target. The exit code is the benchmark verdict: nonzero when the SLO
// quantile exceeds the target or the error rate exceeds -max-error-rate, so
// fleet-level changes are gated in CI (`make fleet-smoke`) rather than
// guessed.
//
//	reghd-serve -models-dir /tmp/fleet -seed-models 8 -max-resident 4 &
//	reghd-loadgen -addr http://localhost:8080 -duration 10s -slo-ms 250
//
// Tenants are discovered from GET /models unless -models names them
// explicitly; feature arity comes from the catalog's resident entries
// unless -features overrides it. Requests are random finite feature
// vectors: the fleet validates arity and finiteness, and a pipeline-backed
// tenant standardizes whatever scale it is given, so random inputs exercise
// the full serving path. The report's metric names (reghd.loadgen.*, also
// emitted as JSON with -json) are documented in docs/OBSERVABILITY.md.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"reghd/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "http://localhost:8080", "base URL of a multi-model reghd-serve")
		modelsFlag   = flag.String("models", "", "comma-separated tenant keys to drive; empty discovers them from GET /models")
		features     = flag.Int("features", 0, "feature arity of generated requests; 0 discovers it from the /models catalog")
		concurrency  = flag.Int("concurrency", 8, "closed-loop workers (in-flight requests)")
		duration     = flag.Duration("duration", 10*time.Second, "how long to drive load")
		zipfS        = flag.Float64("zipf-s", 1.2, "zipf exponent of tenant popularity (> 1; larger = more skew)")
		sloMS        = flag.Float64("slo-ms", 0, "latency SLO in milliseconds; > 0 enables the nonzero-exit gate")
		sloQuantile  = flag.Float64("slo-quantile", 0.99, "quantile the SLO is evaluated at")
		maxErrorRate = flag.Float64("max-error-rate", 0, "error-rate budget (errors/requests) before the run is a violation")
		jsonOut      = flag.String("json", "", "write the report as JSON to this file ('-' = stdout)")
		seed         = flag.Int64("seed", 1, "RNG seed for the tenant mix and request vectors")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("reghd-loadgen: ")

	base := strings.TrimRight(*addr, "/")
	models, arity, err := resolveTargets(base, *modelsFlag, *features)
	if err != nil {
		log.Print(err)
		return 2
	}
	log.Printf("driving %d tenants (zipf s=%.2f) on %s: %d workers, %v, %d features",
		len(models), *zipfS, base, *concurrency, *duration, arity)

	rep := drive(base, models, arity, *concurrency, *duration, *zipfS, *seed,
		*sloMS, *sloQuantile, *maxErrorRate)

	printReport(os.Stdout, rep)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, rep); err != nil {
			log.Print(err)
			return 2
		}
	}
	if rep.SLOViolated {
		log.Printf("SLO VIOLATED: p%g %.3fms > %.3fms target (or errors %d over budget)",
			*sloQuantile*100, float64(quantileNS(rep, *sloQuantile))/1e6, *sloMS, rep.Errors)
		return 1
	}
	return 0
}

// resolveTargets determines the tenant list and feature arity, consulting
// GET /models for whatever was not given explicitly.
func resolveTargets(base, modelsFlag string, features int) ([]string, int, error) {
	var models []string
	if modelsFlag != "" {
		for _, m := range strings.Split(modelsFlag, ",") {
			if m = strings.TrimSpace(m); m != "" {
				models = append(models, m)
			}
		}
	}
	if len(models) > 0 && features > 0 {
		return models, features, nil
	}
	catalog, catFeatures, err := discover(base)
	if err != nil {
		return nil, 0, fmt.Errorf("discovering tenants from %s/models: %w", base, err)
	}
	if len(models) == 0 {
		models = catalog
	}
	if len(models) == 0 {
		return nil, 0, fmt.Errorf("no tenants: %s/models is empty and -models not given", base)
	}
	if features <= 0 {
		features = catFeatures
	}
	if features <= 0 {
		// Nothing resident yet and no -features: load one tenant by probing
		// it with an empty row; the 400 response costs nothing and makes
		// the catalog report its arity.
		probe(base, models[0])
		if _, catFeatures, err = discover(base); err == nil {
			features = catFeatures
		}
	}
	if features <= 0 {
		return nil, 0, fmt.Errorf("feature arity unknown: pass -features (catalog reports it only for resident tenants)")
	}
	return models, features, nil
}

// discover fetches the /models catalog, returning tenant names and the
// first known feature arity (resident tenants report theirs; -1 otherwise).
func discover(base string) ([]string, int, error) {
	resp, err := http.Get(base + "/models")
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("status %s", resp.Status)
	}
	var body struct {
		Models []struct {
			Name     string `json:"name"`
			Features int    `json:"features"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, 0, err
	}
	var names []string
	arity := 0
	for _, m := range body.Models {
		names = append(names, m.Name)
		if arity <= 0 && m.Features > 0 {
			arity = m.Features
		}
	}
	return names, arity, nil
}

// probe issues one throwaway request so the server hot-loads the tenant.
func probe(base, tenant string) {
	resp, err := http.Post(base+"/predict/"+tenant, "application/json",
		strings.NewReader(`{"x":[]}`))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// drive runs the closed loop and digests the result. Each worker owns its
// RNG (seeded distinctly) and zipf source over a worker-local shuffle of
// the tenant list, so "which tenant is hot" varies by worker while the
// overall popularity distribution stays zipfian.
func drive(base string, models []string, arity, concurrency int, duration time.Duration,
	zipfS float64, seed int64, sloMS, sloQuantile, maxErrorRate float64) obs.LoadgenReport {
	return driveFunc(models, arity, concurrency, duration, zipfS, seed,
		sloMS, sloQuantile, maxErrorRate,
		func(client *http.Client, tenant string, body []byte) error {
			resp, err := client.Post(base+"/predict/"+tenant, "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %s", resp.Status)
			}
			return nil
		})
}

// driveFunc is drive with the transport injected, so tests can run the
// closed loop against an in-process handler.
func driveFunc(models []string, arity, concurrency int, duration time.Duration,
	zipfS float64, seed int64, sloMS, sloQuantile, maxErrorRate float64,
	do func(client *http.Client, tenant string, body []byte) error) obs.LoadgenReport {

	var (
		hist     obs.Histogram
		errCount atomic.Uint64
		mu       sync.Mutex
		byTenant = make(map[string]uint64, len(models))
		wg       sync.WaitGroup
		stop     = make(chan struct{})
	)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			// Worker-local tenant order: zipf rank r maps to a different
			// tenant per worker, keeping aggregate popularity zipfian
			// without every worker hammering the same hottest tenant.
			order := rng.Perm(len(models))
			// rand.NewZipf needs s > 1; anything else means uniform.
			var zipf *rand.Zipf
			if zipfS > 1 {
				zipf = rand.NewZipf(rng, zipfS, 1, uint64(len(models)-1))
			}
			pick := func() string {
				if zipf != nil {
					return models[order[zipf.Uint64()]]
				}
				return models[order[rng.Intn(len(models))]]
			}
			client := &http.Client{}
			local := make(map[string]uint64, len(models))
			for {
				select {
				case <-stop:
					mu.Lock()
					for t, n := range local {
						byTenant[t] += n
					}
					mu.Unlock()
					return
				default:
				}
				tenant := pick()
				x := make([]float64, arity)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				body, _ := json.Marshal(map[string][]float64{"x": x})
				t0 := time.Now()
				err := do(client, tenant, body)
				hist.Record(time.Since(t0))
				if err != nil {
					errCount.Add(1)
				}
				local[tenant]++
			}
		}(w)
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	return obs.NewLoadgenReport(&hist, time.Since(start), concurrency,
		errCount.Load(), byTenant, sloMS, sloQuantile, maxErrorRate)
}

// quantileNS re-reads the SLO quantile off the report's fixed quantiles for
// the violation message (nearest of the reported ones).
func quantileNS(rep obs.LoadgenReport, q float64) int64 {
	switch {
	case q >= 0.999:
		return rep.P999NS
	case q >= 0.99:
		return rep.P99NS
	default:
		return rep.P50NS
	}
}

// printReport renders the human-readable result block.
func printReport(w io.Writer, rep obs.LoadgenReport) {
	fmt.Fprintf(w, "requests:    %d (%.1f/s, %d workers, %.2fs)\n",
		rep.Requests, rep.RatePerSec, rep.Concurrency, rep.DurationSeconds)
	fmt.Fprintf(w, "errors:      %d\n", rep.Errors)
	fmt.Fprintf(w, "latency:     p50 %s  p99 %s  p999 %s  mean %s  max %s\n",
		time.Duration(rep.P50NS), time.Duration(rep.P99NS), time.Duration(rep.P999NS),
		time.Duration(rep.MeanNS), time.Duration(rep.MaxNS))
	if rep.SLOMillis > 0 {
		verdict := "met"
		if rep.SLOViolated {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(w, "slo:         p%g <= %.3fms — %s\n", rep.SLOQuantile*100, rep.SLOMillis, verdict)
	}
	tenants := make([]string, 0, len(rep.Tenants))
	for t := range rep.Tenants {
		tenants = append(tenants, t)
	}
	sort.Slice(tenants, func(i, j int) bool {
		if rep.Tenants[tenants[i]] != rep.Tenants[tenants[j]] {
			return rep.Tenants[tenants[i]] > rep.Tenants[tenants[j]]
		}
		return tenants[i] < tenants[j]
	})
	fmt.Fprintf(w, "tenant mix:  ")
	for i, t := range tenants {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%s:%d", t, rep.Tenants[t])
	}
	fmt.Fprintln(w)
}

// writeJSON writes the report to path ('-' = stdout).
func writeJSON(path string, rep obs.LoadgenReport) error {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
