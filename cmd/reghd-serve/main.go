// Command reghd-serve is the serving server. It runs in one of two modes:
//
// Single-model (default): trains a RegHD pipeline on a synthetic evaluation
// dataset, wraps it in a concurrent serving engine with full
// instrumentation, and exposes the serving stack over HTTP so an operator
// can watch (and profile) it live:
//
//	GET  /metrics       expvar JSON: latency histograms, throughput,
//	                    snapshot staleness, per-stage timing, and live
//	                    hardware cost estimates (reghd.engine / reghd.hw)
//	GET  /debug/pprof/  net/http/pprof profiles of the running server
//	GET  /debug/vars    stdlib expvar endpoint (same JSON as /metrics)
//	POST /predict       {"x":[...]} -> {"y":...} one prediction
//	                    400 on invalid input, 429 when shed by the
//	                    admission gate, 504 on deadline expiry
//	GET  /healthz       liveness probe; reports "degraded" (still 200,
//	                    last known-good snapshot keeps serving) when a
//	                    writer failure put the engine in degraded mode
//
// By default it also generates its own traffic — reader goroutines issuing
// predictions and a writer streaming PartialFit updates through concept
// drift — so /metrics shows a serving system under load the moment the
// process is up. Disable with -traffic=false to drive it externally.
// docs/OBSERVABILITY.md walks through a curl + go tool pprof session
// against this server.
//
// Multi-model (-models-dir): serves a whole directory of tenant
// checkpoints through a reghd.Registry — lazy hot-loads on first request,
// LRU eviction under -max-resident / -max-resident-bytes, per-tenant
// admission gates, /predict/{model} routing, a /models catalog, per-tenant
// /healthz/{model}, and the reghd.registry.* fleet metrics on /metrics
// (see fleet.go and docs/SERVING.md). -seed-models N trains N small tenant
// models into the directory first, which is how `make fleet-smoke` and
// cmd/reghd-loadgen get a fleet to drive.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os/signal"
	"syscall"
	"time"

	"reghd"
	"reghd/internal/obs"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8080", "listen address (host:0 picks an ephemeral port, printed at startup)")
		synthName    = flag.String("synth", "ccpp", "synthetic training dataset")
		dim          = flag.Int("dim", 2000, "hypervector dimensionality D")
		models       = flag.Int("models", 8, "number of cluster/model pairs k")
		epochs       = flag.Int("epochs", 5, "training epochs before serving")
		publishEvery = flag.Int("publish-every", 64, "PartialFit updates between snapshot publications")
		traffic      = flag.Bool("traffic", true, "generate synthetic reader/writer load")
		maxInFlight  = flag.Int("max-inflight", 256, "bounded in-flight prediction limit, 0 = unlimited")
		reqTimeout   = flag.Duration("request-timeout", 2*time.Second, "per-request prediction deadline, 0 = none")

		coalesce      = flag.Bool("coalesce", false, "micro-batch concurrent single-row predictions (request coalescing)")
		coalesceBatch = flag.Int("coalesce-batch", reghd.DefaultCoalesceMaxBatch, "max rows per coalesced batch")
		coalesceWait  = flag.Duration("coalesce-wait", reghd.DefaultCoalesceMaxWait, "max window hold time; negative batches only what is already queued")

		modelsDir        = flag.String("models-dir", "", "multi-model mode: serve every *.gob tenant checkpoint in this directory via /predict/{model}")
		maxResident      = flag.Int("max-resident", 0, "multi-model: LRU budget on resident tenant engines, 0 = unlimited")
		maxResidentBytes = flag.Int64("max-resident-bytes", 0, "multi-model: LRU budget on summed resident model deployment bytes, 0 = unlimited")
		seedModels       = flag.Int("seed-models", 0, "multi-model: train this many small tenant models into -models-dir before serving (no-op for tenants already present)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("reghd-serve: ")

	if *modelsDir != "" {
		if err := runFleet(fleetOptions{
			addr:             *addr,
			dir:              *modelsDir,
			maxResident:      *maxResident,
			maxResidentBytes: *maxResidentBytes,
			maxInFlight:      *maxInFlight,
			publishEvery:     *publishEvery,
			reqTimeout:       *reqTimeout,
			seedModels:       *seedModels,
			seedSynth:        *synthName,
			seedDim:          *dim,
			seedK:            *models,
			seedEpochs:       *epochs,
			coalesce:         *coalesce,
			coalesceBatch:    *coalesceBatch,
			coalesceWait:     *coalesceWait,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	data, err := reghd.SyntheticDataset(*synthName, 1)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	train, test, err := data.Split(rng, 0.25)
	if err != nil {
		log.Fatal(err)
	}

	enc, err := reghd.NewEncoder(data.Features(), *dim, 42)
	if err != nil {
		log.Fatal(err)
	}
	cfg := reghd.DefaultConfig()
	cfg.Models = *models
	cfg.Epochs = *epochs
	model, err := reghd.NewModel(enc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	pipe := reghd.NewPipeline(model)
	log.Printf("training on %s (%d samples, %d features, D=%d, k=%d)...",
		*synthName, train.Len(), data.Features(), *dim, *models)
	t0 := time.Now()
	if _, err := pipe.Fit(train); err != nil {
		log.Fatal(err)
	}
	mse, err := pipe.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("trained in %v, test MSE %.4f", time.Since(t0).Round(time.Millisecond), mse)

	engine, err := reghd.NewPipelineEngine(pipe)
	if err != nil {
		log.Fatal(err)
	}
	engine.SetPublishEvery(*publishEvery)
	engine.SetMaxInFlight(*maxInFlight)
	engine.EnableMetrics()
	if *coalesce {
		engine.EnableCoalescing(reghd.CoalesceConfig{
			MaxBatch: *coalesceBatch,
			MaxWait:  *coalesceWait,
		})
		log.Printf("request coalescing on (batch<=%d, wait<=%v); watch reghd.engine.coalesce in /metrics",
			*coalesceBatch, *coalesceWait)
	}
	ops := engine.EnableOpCounting()

	// Live hardware view: the op counts of the actually-served traffic,
	// priced on the paper's two targets, amortized per served prediction.
	bridge, err := obs.NewHWBridge(ops, reghd.FPGAProfile(), reghd.ARMProfile())
	if err != nil {
		log.Fatal(err)
	}
	bridge.SetQueries(func() uint64 {
		m := engine.Metrics()
		return m.Predict.Count + m.PredictBatchRows
	})

	obs.Publish(obs.EngineVar, func() any { return engine.Metrics() })
	obs.Publish(obs.HWVar, func() any {
		r, err := bridge.Report()
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return r
	})

	stopTraffic := make(chan struct{})
	if *traffic {
		startTraffic(engine, test, stopTraffic)
		log.Printf("synthetic traffic on (readers + PartialFit writer); disable with -traffic=false")
	}

	http.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Degraded mode still serves (last known-good snapshot), so the
		// probe stays 200; the body and the degraded_mode gauge carry the
		// signal for alerting.
		if engine.Degraded() {
			fmt.Fprintln(w, "degraded")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	http.Handle("/metrics", obs.Handler())
	http.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			X []float64 `json:"x"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ctx := r.Context()
		if *reqTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *reqTimeout)
			defer cancel()
		}
		y, err := engine.PredictCtx(ctx, req.X)
		if err != nil {
			http.Error(w, err.Error(), predictStatus(err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]float64{"y": y})
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	served := ln.Addr().String()
	log.Printf("serving on http://%s — try:", served)
	log.Printf("  curl -s http://%s/metrics | head", served)
	log.Printf(`  curl -s -d '{"x":[14.96,41.76,1024.07,73.17]}' http://%s/predict`, served)
	log.Printf("  go tool pprof http://%s/debug/pprof/profile?seconds=10", served)

	// Serve until SIGINT/SIGTERM, then stop the traffic goroutines and
	// drain in-flight requests — the demo load shares the server's
	// lifetime instead of leaking past it.
	srv := &http.Server{Handler: http.DefaultServeMux}
	sigCtx, stopSig := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSig()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-sigCtx.Done()
		log.Printf("shutting down")
		close(stopTraffic)
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	err = srv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-shutdownDone
}

// fleetOptions carries the multi-model mode's flag values.
type fleetOptions struct {
	addr             string
	dir              string
	maxResident      int
	maxResidentBytes int64
	maxInFlight      int
	publishEvery     int
	reqTimeout       time.Duration
	seedModels       int
	seedSynth        string
	seedDim          int
	seedK            int
	seedEpochs       int
	coalesce         bool
	coalesceBatch    int
	coalesceWait     time.Duration
}

// runFleet is the multi-model serving path: optional fleet seeding, then a
// registry-routed HTTP server (see fleet.go).
func runFleet(opt fleetOptions) error {
	if opt.seedModels > 0 {
		if _, err := seedFleet(opt.dir, opt.seedSynth, opt.seedModels, opt.seedDim, opt.seedK, opt.seedEpochs); err != nil {
			return err
		}
	}
	cfg := reghd.RegistryConfig{
		Dir:              opt.dir,
		MaxResident:      opt.maxResident,
		MaxResidentBytes: opt.maxResidentBytes,
		MaxInFlight:      opt.maxInFlight,
		PublishEvery:     opt.publishEvery,
	}
	if opt.coalesce {
		cfg.Coalesce = &reghd.CoalesceConfig{MaxBatch: opt.coalesceBatch, MaxWait: opt.coalesceWait}
	}
	reg, err := reghd.NewRegistry(cfg)
	if err != nil {
		return err
	}
	tenants, err := reg.Tenants()
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	served := ln.Addr().String()
	log.Printf("fleet mode: %d tenants in %s (resident budget %d models / %d bytes)",
		len(tenants), opt.dir, opt.maxResident, opt.maxResidentBytes)
	log.Printf("serving on http://%s — try:", served)
	log.Printf("  curl -s http://%s/models", served)
	if len(tenants) > 0 {
		log.Printf(`  curl -s -d '{"x":[...]}' http://%s/predict/%s`, served, tenants[0])
	}
	log.Printf("  go run ./cmd/reghd-loadgen -addr http://%s -duration 5s", served)
	return http.Serve(ln, fleetMux(reg, opt.reqTimeout))
}

// predictStatus maps the serving stack's typed errors onto HTTP status
// codes — the engine's request errors plus the registry's routing errors.
func predictStatus(err error) int {
	var pe *reghd.PanicError
	switch {
	case errors.Is(err, reghd.ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, reghd.ErrModelLoad):
		return http.StatusServiceUnavailable
	case errors.Is(err, reghd.ErrInvalidInput):
		return http.StatusBadRequest
	case errors.Is(err, reghd.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

// startTraffic launches the synthetic load: two reader goroutines issuing
// single predictions, one issuing small batches, and a writer streaming
// PartialFit updates drawn from a fresh synthetic stream — enough activity
// that every metric (latency quantiles, throughput, snapshot age, publish
// counts, hardware estimates) is non-trivial within a second of startup.
// Every goroutine exits when stop closes (server shutdown).
func startTraffic(engine *reghd.Engine, test *reghd.Dataset, stop <-chan struct{}) {
	for r := 0; r < 2; r++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			t := time.NewTicker(2 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
				}
				if _, err := engine.Predict(test.X[rng.Intn(len(test.X))]); err != nil {
					log.Printf("reader: %v", err)
				}
			}
		}(100 + int64(r))
	}
	go func() {
		rng := rand.New(rand.NewSource(200))
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			lo := rng.Intn(len(test.X) - 16)
			if _, err := engine.PredictBatch(test.X[lo : lo+16]); err != nil {
				log.Printf("batch reader: %v", err)
			}
		}
	}()
	go func() {
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			if err := engine.PartialFit(test.X[i%len(test.X)], test.Y[i%len(test.Y)]); err != nil {
				log.Printf("writer: %v", err)
			}
		}
	}()
}
