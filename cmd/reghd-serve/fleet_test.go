package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"reghd"
)

// testFleet seeds a two-tenant fleet plus one corrupt checkpoint into a temp
// dir and serves it through fleetMux, returning the server, the registry,
// and a direct reference engine for tenant-00.
func testFleet(t *testing.T) (*httptest.Server, *reghd.Registry, *reghd.Engine) {
	t.Helper()
	dir := t.TempDir()
	names, err := seedFleet(dir, "airfoil", 2, 128, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "corrupt"+reghd.ModelExt), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	pipe, err := reghd.LoadPipelineFile(filepath.Join(dir, names[0]+reghd.ModelExt))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := reghd.NewPipelineEngine(pipe)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := reghd.NewRegistry(reghd.RegistryConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fleetMux(reg, 0))
	t.Cleanup(srv.Close)
	return srv, reg, direct
}

func postPredict(t *testing.T, url, tenant string, x []float64) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(map[string][]float64{"x": x})
	resp, err := http.Post(url+"/predict/"+tenant, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestFleetPredictBitIdentical(t *testing.T) {
	srv, _, direct := testFleet(t)
	x := []float64{0.5, -1.0, 0.25, 1.5, -0.75}
	want, err := direct.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postPredict(t, srv.URL, "tenant-00", x)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Y float64 `json:"y"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(out.Y) != math.Float64bits(want) {
		t.Fatalf("fleet %v != direct %v", out.Y, want)
	}
}

func TestFleetPredictStatuses(t *testing.T) {
	srv, _, _ := testFleet(t)
	x := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		tenant string
		x      []float64
		status int
	}{
		{"tenant-00", x, http.StatusOK},
		{"no-such-tenant", x, http.StatusNotFound},
		{"corrupt", x, http.StatusServiceUnavailable},
		{"tenant-00", []float64{1}, http.StatusBadRequest},                      // wrong arity
		{"tenant-00", []float64{1, 2, math.NaN(), 4, 5}, http.StatusBadRequest}, // non-finite
	}
	for _, c := range cases {
		resp, body := postPredict(t, srv.URL, c.tenant, c.x)
		if resp.StatusCode != c.status {
			t.Errorf("%s %v: status %d, want %d (%s)", c.tenant, c.x, resp.StatusCode, c.status, body)
		}
	}
}

func TestFleetModelsCatalog(t *testing.T) {
	srv, _, _ := testFleet(t)
	get := func() (infos []struct {
		Name     string `json:"name"`
		Resident bool   `json:"resident"`
		Features int    `json:"features"`
	}) {
		resp, err := http.Get(srv.URL + "/models")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Models []struct {
				Name     string `json:"name"`
				Resident bool   `json:"resident"`
				Features int    `json:"features"`
			} `json:"models"`
			Metrics reghd.RegistryMetrics `json:"metrics"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Models
	}
	infos := get()
	if len(infos) != 3 { // tenant-00, tenant-01, corrupt
		t.Fatalf("catalog: %+v", infos)
	}
	for _, m := range infos {
		if m.Resident || m.Features != -1 {
			t.Fatalf("cold catalog forced a load: %+v", m)
		}
	}
	postPredict(t, srv.URL, "tenant-00", []float64{1, 2, 3, 4, 5})
	for _, m := range get() {
		if m.Name == "tenant-00" && (!m.Resident || m.Features != 5) {
			t.Fatalf("after predict: %+v", m)
		}
	}
}

func TestFleetHealthz(t *testing.T) {
	srv, reg, _ := testFleet(t)
	check := func(path string, status int, want string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != status {
			t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, status)
		}
		if want != "" && buf.String() != want+"\n" {
			t.Fatalf("%s: body %q, want %q", path, buf.String(), want)
		}
	}
	check("/healthz", http.StatusOK, "ok")
	check("/healthz/tenant-00", http.StatusOK, "idle")
	check("/healthz/no-such-tenant", http.StatusNotFound, "")
	if _, err := reg.Predict("tenant-00", []float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	check("/healthz/tenant-00", http.StatusOK, "ok")
}

func TestFleetMetricsEndpoint(t *testing.T) {
	srv, _, _ := testFleet(t)
	postPredict(t, srv.URL, "tenant-00", []float64{1, 2, 3, 4, 5})
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	raw, ok := vars["reghd.registry"]
	if !ok {
		t.Fatalf("reghd.registry missing from /metrics (have %d vars)", len(vars))
	}
	var m reghd.RegistryMetrics
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Loads < 1 || m.Routed < 1 {
		t.Fatalf("registry metrics not live: %+v", m)
	}
}

func TestSeedFleetIdempotent(t *testing.T) {
	dir := t.TempDir()
	if _, err := seedFleet(dir, "airfoil", 2, 128, 2, 1); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(filepath.Join(dir, "tenant-00"+reghd.ModelExt))
	if err != nil {
		t.Fatal(err)
	}
	names, err := seedFleet(dir, "airfoil", 2, 128, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
	after, err := os.Stat(filepath.Join(dir, "tenant-00"+reghd.ModelExt))
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatal("re-seeding rewrote an existing tenant checkpoint")
	}
	// Distinct encoder seeds: sibling tenants disagree on the same input.
	var ys [2]float64
	for i := range ys {
		pipe, err := reghd.LoadPipelineFile(filepath.Join(dir, fmt.Sprintf("tenant-%02d%s", i, reghd.ModelExt)))
		if err != nil {
			t.Fatal(err)
		}
		if ys[i], err = pipe.Predict([]float64{1, 2, 3, 4, 5}); err != nil {
			t.Fatal(err)
		}
	}
	if math.Float64bits(ys[0]) == math.Float64bits(ys[1]) {
		t.Fatal("seeded tenants are identical models")
	}
}
