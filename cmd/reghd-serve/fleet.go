package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"reghd"
	"reghd/internal/obs"
)

// This file is reghd-serve's multi-model (fleet) mode: a reghd.Registry
// routing /predict/{model} requests across a directory of tenant
// checkpoints, with lazy loads, LRU eviction under -max-resident /
// -max-resident-bytes, per-tenant health, and the reghd.registry.* fleet
// metrics on /metrics. docs/SERVING.md documents the architecture;
// cmd/reghd-loadgen drives it.

// fleetMux builds the multi-model HTTP surface over a registry:
//
//	POST /predict/{model}   {"x":[...]} -> {"y":...}; 404 unknown tenant,
//	                        503 model load failure, plus the single-model
//	                        mappings (400/429/504)
//	GET  /models            JSON tenant catalog with residency and arity
//	GET  /healthz           fleet liveness (always "ok" once serving)
//	GET  /healthz/{model}   per-tenant: "ok" | "degraded" | "idle" (not
//	                        resident; 200 — idle tenants are servable), or
//	                        404 for unknown tenants
//	GET  /metrics           expvar JSON incl. reghd.registry.* and, for
//	                        resident engines, reghd.engine.* of the last
//	                        published engine var
func fleetMux(reg *reghd.Registry, reqTimeout time.Duration) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /predict/{model}", func(w http.ResponseWriter, r *http.Request) {
		tenant := r.PathValue("model")
		var req struct {
			X []float64 `json:"x"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ctx := r.Context()
		if reqTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, reqTimeout)
			defer cancel()
		}
		y, err := reg.PredictCtx(ctx, tenant, req.X)
		if err != nil {
			http.Error(w, err.Error(), predictStatus(err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]float64{"y": y})
	})

	type modelInfo struct {
		Name     string `json:"name"`
		Resident bool   `json:"resident"`
		// Features is the model's input arity; -1 until the model has been
		// loaded (the catalog never forces a load).
		Features int `json:"features"`
	}
	mux.HandleFunc("GET /models", func(w http.ResponseWriter, r *http.Request) {
		names, err := reg.Tenants()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		infos := make([]modelInfo, 0, len(names))
		for _, n := range names {
			_, resident := reg.Resident(n)
			infos = append(infos, modelInfo{Name: n, Resident: resident, Features: reg.Features(n)})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"models":  infos,
			"metrics": reg.Metrics(),
		})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /healthz/{model}", func(w http.ResponseWriter, r *http.Request) {
		tenant := r.PathValue("model")
		if !reg.Known(tenant) {
			http.Error(w, "unknown tenant", http.StatusNotFound)
			return
		}
		eng, resident := reg.Resident(tenant)
		switch {
		case !resident:
			// Not resident is healthy: the next request hot-loads it.
			fmt.Fprintln(w, "idle")
		case eng.Degraded():
			// Degraded still serves (last known-good snapshot), so the
			// probe stays 200; the body carries the alerting signal.
			fmt.Fprintln(w, "degraded")
		default:
			fmt.Fprintln(w, "ok")
		}
	})

	mux.Handle("GET /metrics", obs.Handler())
	// net/http/pprof registers on the default mux (imported by main.go).
	mux.Handle("/debug/", http.DefaultServeMux)
	return mux
}

// seedFleet trains count tenant models into dir (tenant-00.gob ...),
// each with a distinct encoder seed so the tenants are genuinely different
// models of the same task. Existing files are kept, so re-seeding an
// already-seeded directory is a no-op. Returns the tenant names.
func seedFleet(dir, synth string, count, dim, models, epochs int) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names := make([]string, 0, count)
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("tenant-%02d", i)
		names = append(names, name)
		path := filepath.Join(dir, name+reghd.ModelExt)
		if _, err := os.Stat(path); err == nil {
			continue
		}
		data, err := reghd.SyntheticDataset(synth, int64(1000+i))
		if err != nil {
			return nil, err
		}
		enc, err := reghd.NewEncoder(data.Features(), dim, int64(42+i))
		if err != nil {
			return nil, err
		}
		cfg := reghd.DefaultConfig()
		cfg.Models = models
		cfg.Epochs = epochs
		model, err := reghd.NewModel(enc, cfg)
		if err != nil {
			return nil, err
		}
		pipe := reghd.NewPipeline(model)
		if _, err := pipe.Fit(data); err != nil {
			return nil, fmt.Errorf("seed %s: %w", name, err)
		}
		if err := pipe.SaveFile(path); err != nil {
			return nil, err
		}
		log.Printf("seeded %s (%s, n=%d, D=%d, k=%d)", path, synth, data.Features(), dim, models)
	}
	return names, nil
}
