// Command reghd-replica is one member of a fault-tolerant delta-sync
// serving fleet (internal/repl, docs/REPLICATION.md). Each process owns a
// full RegHD model, trains on its shard of the workload, and exchanges
// compact binary deltas with its peers over HTTP — no coordinator. The
// fleet folds a sync round once every member's delta has arrived; the
// merged state is Float64bits-identical on every replica regardless of
// delivery order, which is what the smoke script asserts.
//
//	POST /repl/delta  peer delta exchange (internal/repl wire frames)
//	POST /predict     {"x":[...]} -> {"y":...} against the merged snapshot
//	GET  /healthz     liveness; "syncing" until the first fold, then "ok"
//	GET  /replstatus  repl.Status JSON: round, fingerprint, peer health
//	GET  /metrics     expvar JSON including the reghd.repl.* counters
//
// Chaos flags wrap the outbound transport in the seeded fault injector
// (drop/duplicate/reorder plus one timed partition window), so a
// three-process fleet under `make replica-smoke` converges through real
// message loss.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"reghd"
	"reghd/internal/fault"
	"reghd/internal/obs"
	"reghd/internal/repl"
)

func main() {
	var (
		id      = flag.Int("id", 0, "this replica's fleet ID (0..members-1)")
		members = flag.Int("members", 3, "fixed fleet size")
		peers   = flag.String("peers", "", `peer base URLs as "id=url,id=url" (self entry ignored)`)
		addr    = flag.String("addr", "localhost:8081", "listen address (host:0 picks an ephemeral port)")

		synthName  = flag.String("synth", "ccpp", "synthetic training dataset")
		dim        = flag.Int("dim", 256, "hypervector dimensionality D")
		models     = flag.Int("models", 8, "number of cluster/model pairs k")
		maxSamples = flag.Int("max-samples", 900, "cap on training rows (sharded across the fleet)")
		seed       = flag.Int64("seed", 1, "model + dataset seed; must match across the fleet")
		rounds     = flag.Int("rounds", 3, "sync rounds to drive (each round feeds this replica's full shard); 0 serves without self-training")

		sendTimeout = flag.Duration("send-timeout", 2*time.Second, "per-delivery-attempt timeout")
		retries     = flag.Int("retries", 5, "retry budget per delivery cycle")

		chaosDrop      = flag.Float64("chaos-drop", 0, "outbound random drop rate [0,1)")
		chaosDup       = flag.Float64("chaos-dup", 0, "outbound duplication rate [0,1)")
		chaosReorder   = flag.Float64("chaos-reorder", 0, "outbound reorder rate [0,1)")
		chaosSeed      = flag.Int64("chaos-seed", 1, "fault injector seed")
		chaosPartition = flag.Duration("chaos-partition", 0, "sever this replica's outbound links for this long at the second round's seal (0 = off)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix(fmt.Sprintf("reghd-replica[%d]: ", *id))

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, options{
		id: *id, members: *members, peers: *peers, addr: *addr,
		synth: *synthName, dim: *dim, models: *models,
		maxSamples: *maxSamples, seed: *seed, rounds: *rounds,
		sendTimeout: *sendTimeout, retries: *retries,
		chaosDrop: *chaosDrop, chaosDup: *chaosDup, chaosReorder: *chaosReorder,
		chaosSeed: *chaosSeed, chaosPartition: *chaosPartition,
	}); err != nil {
		log.Fatal(err)
	}
}

type options struct {
	id, members             int
	peers, addr, synth      string
	dim, models, maxSamples int
	seed                    int64
	rounds, retries         int
	sendTimeout             time.Duration
	chaosDrop, chaosDup     float64
	chaosReorder            float64
	chaosSeed               int64
	chaosPartition          time.Duration
}

// parsePeers turns "0=http://a,1=http://b" into a peer map without the
// self entry.
func parsePeers(spec string, self, members int) (map[int]string, error) {
	m := map[int]string{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		idStr, url, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer entry %q is not id=url", part)
		}
		pid, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil || pid < 0 || pid >= members {
			return nil, fmt.Errorf("peer entry %q: bad id (fleet is 0..%d)", part, members-1)
		}
		if pid != self {
			m[pid] = strings.TrimSpace(url)
		}
	}
	for pid := 0; pid < members; pid++ {
		if pid != self {
			if _, ok := m[pid]; !ok {
				return nil, fmt.Errorf("-peers is missing replica %d", pid)
			}
		}
	}
	return m, nil
}

// buildModel constructs the fleet's shared starting model and this
// replica's training shard (rows id, id+members, ... of the standardized
// dataset). Every replica derives both from the same seeds, so the fleet
// starts bit-identical — the precondition repl.New documents.
func buildModel(o options) (*reghd.Model, *reghd.Dataset, error) {
	data, err := reghd.SyntheticDataset(o.synth, o.seed)
	if err != nil {
		return nil, nil, err
	}
	if data.Len() > o.maxSamples {
		idx := make([]int, o.maxSamples)
		for i := range idx {
			idx[i] = i
		}
		data = data.Subset(idx)
	}
	sc, err := reghd.FitScaler(data, true)
	if err != nil {
		return nil, nil, err
	}
	scaled, err := sc.Transform(data)
	if err != nil {
		return nil, nil, err
	}
	var shard []int
	for i := o.id; i < scaled.Len(); i += o.members {
		shard = append(shard, i)
	}
	enc, err := reghd.NewEncoder(data.Features(), o.dim, o.seed+42)
	if err != nil {
		return nil, nil, err
	}
	cfg := reghd.DefaultConfig()
	cfg.Models = o.models
	cfg.Seed = o.seed + 13
	model, err := reghd.NewModel(enc, cfg)
	if err != nil {
		return nil, nil, err
	}
	return model, scaled.Subset(shard), nil
}

func run(ctx context.Context, o options) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	peerURLs, err := parsePeers(o.peers, o.id, o.members)
	if err != nil {
		return err
	}
	model, shard, err := buildModel(o)
	if err != nil {
		return err
	}

	var tr repl.Transport = repl.NewHTTPTransport(peerURLs)
	var chaos *repl.Chaos
	if o.chaosDrop > 0 || o.chaosDup > 0 || o.chaosReorder > 0 || o.chaosPartition > 0 {
		faults, err := fault.NewNetFaults(fault.NetConfig{
			Drop:      o.chaosDrop,
			Duplicate: o.chaosDup,
			Reorder:   o.chaosReorder,
			Seed:      o.chaosSeed,
		})
		if err != nil {
			return err
		}
		chaos = repl.NewChaos(tr, faults)
		tr = chaos
		log.Printf("chaos transport on: drop=%.2f dup=%.2f reorder=%.2f seed=%d partition=%v",
			o.chaosDrop, o.chaosDup, o.chaosReorder, o.chaosSeed, o.chaosPartition)
	}

	replica, err := repl.New(model, repl.Config{
		ID:          o.id,
		Members:     o.members,
		SendTimeout: o.sendTimeout,
		RetryBudget: o.retries,
		JitterSeed:  o.seed + int64(o.id),
	}, tr)
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.Handle(repl.DeltaPath, repl.DeltaHandler(replica))
	mux.HandleFunc("/replstatus", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(replica.Status())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if replica.Round() == 0 {
			fmt.Fprintln(w, "syncing")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", obs.Handler())
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			X []float64 `json:"x"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		y, err := replica.Predict(req.X)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]float64{"y": y})
	})

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}
	log.Printf("serving on http://%s (fleet of %d, shard %d rows)", ln.Addr(), o.members, shard.Len())

	driverDone := make(chan error, 1)
	go func() {
		driverDone <- drive(ctx, replica, chaos, shard, o)
	}()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Printf("shutting down")
		gracefulShutdown(srv)
	}()

	err = srv.Serve(ln) // blocks until Shutdown (or a listener fault)
	cancel()            // listener-fault path: unblock the driver and the shutdown waiter
	<-shutdownDone
	if derr := <-driverDone; derr != nil && ctx.Err() == nil {
		log.Printf("training driver failed: %v", derr)
	}
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// gracefulShutdown drains the server with a fresh detached deadline — the
// caller's ctx is already canceled by the time shutdown starts.
func gracefulShutdown(srv *http.Server) {
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}

// drive feeds the replica's shard through o.rounds sync rounds: each round
// trains the full shard, seals, then pumps Flush (and the chaos reorder
// stash) until the fleet folds. With -chaos-partition set, the replica
// severs its own outbound links at the second round's seal and heals after
// the window — peers stall on the round barrier, keep serving their last
// merged snapshot, and converge once healed.
func drive(ctx context.Context, r *repl.Replica, chaos *repl.Chaos, shard *reghd.Dataset, o options) error {
	if o.rounds == 0 {
		return nil
	}
	// Deterministic per-replica shuffle so rounds are epochs, not replays
	// of one fixed order.
	rng := rand.New(rand.NewSource(o.seed + int64(o.id)*101))
	order := rng.Perm(shard.Len())
	for round := 1; round <= o.rounds; round++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		for _, i := range order {
			if err := r.PartialFit(shard.X[i], shard.Y[i]); err != nil {
				return fmt.Errorf("round %d: %w", round, err)
			}
		}
		if chaos != nil && o.chaosPartition > 0 && round == 2 {
			chaos.Faults().Isolate(o.id)
			log.Printf("round %d: partitioned outbound links for %v", round, o.chaosPartition)
			healTimer := time.AfterFunc(o.chaosPartition, func() {
				chaos.Faults().HealAll()
				log.Printf("partition healed")
			})
			defer healTimer.Stop()
		}
		if err := r.Seal(ctx); err != nil {
			log.Printf("round %d seal: %v (retrying via flush)", round, err)
		}
		for r.Round() < uint64(round) {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(100 * time.Millisecond):
			}
			if err := r.Flush(ctx); err != nil {
				log.Printf("round %d flush: %v", round, err)
			}
			if chaos != nil {
				if err := chaos.Drain(ctx); err != nil {
					log.Printf("round %d drain: %v", round, err)
				}
			}
		}
		log.Printf("round %d folded: fingerprint=%016x samples=%d", round, r.Fingerprint(), r.Samples())
	}
	log.Printf("training complete after %d rounds; serving merged snapshot", o.rounds)
	return nil
}
