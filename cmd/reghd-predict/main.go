// Command reghd-predict loads a pipeline saved by reghd-train and predicts
// on a CSV of feature rows, completing the train → save → deploy loop.
//
// Usage:
//
//	reghd-train -synth ccpp -save model.gob
//	reghd-predict -model model.gob -data queries.csv [-header] [-labeled]
//
// With -labeled the last CSV column is treated as the true target and
// quality metrics are reported alongside the predictions.
package main

import (
	"flag"
	"fmt"
	"os"

	"reghd"
)

func run() error {
	var (
		modelPath = flag.String("model", "", "pipeline file written by reghd-train -save")
		dataPath  = flag.String("data", "", "CSV of feature rows (with -labeled, last column is the target)")
		header    = flag.Bool("header", false, "CSV has a header row")
		labeled   = flag.Bool("labeled", false, "last column is the true target; report metrics")
	)
	flag.Parse()
	if *modelPath == "" || *dataPath == "" {
		return fmt.Errorf("-model and -data are required")
	}
	pipe, err := reghd.LoadPipelineFile(*modelPath)
	if err != nil {
		return err
	}

	var xs [][]float64
	var ys []float64
	if *labeled {
		ds, err := reghd.LoadCSV(*dataPath, *dataPath, *header)
		if err != nil {
			return err
		}
		xs, ys = ds.X, ds.Y
	} else {
		// Unlabeled: every column is a feature. Reuse the CSV reader by
		// noting it treats the last column as a target, then re-append it.
		ds, err := reghd.LoadCSV(*dataPath, *dataPath, *header)
		if err != nil {
			return err
		}
		xs = make([][]float64, ds.Len())
		for i, row := range ds.X {
			xs[i] = append(append([]float64(nil), row...), ds.Y[i])
		}
	}

	preds, err := pipe.PredictBatch(xs)
	if err != nil {
		return err
	}
	for _, p := range preds {
		fmt.Println(p)
	}
	if *labeled {
		mse, err := reghd.MSE(preds, ys)
		if err != nil {
			return err
		}
		r2, err := reghd.R2(preds, ys)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "MSE: %.4f  R2: %.4f over %d rows\n", mse, r2, len(preds))
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reghd-predict:", err)
		os.Exit(1)
	}
}
