// Package assoc implements the hyperdimensional associative item memory —
// the "cleanup memory" of classic HD architectures and the structure the
// paper's related work accelerates in hardware ([16] "Exploring
// hyperdimensional associative memory", [17], [43]). Items are stored as
// hypervectors under string keys; a noisy or composite query is cleaned up
// to the nearest stored item by similarity search, with the same
// integer-vs-binary trade-off RegHD makes: cosine search over dense items
// or Hamming search over bit-packed shadows.
package assoc

import (
	"errors"
	"fmt"
	"math/rand"

	"reghd/internal/hdc"
)

// Memory is an associative store of named hypervectors.
type Memory struct {
	dim    int
	names  []string
	items  []hdc.Vector
	packed []*hdc.Binary
	index  map[string]int
}

// NewMemory creates an empty memory for hypervectors of dimension dim.
func NewMemory(dim int) (*Memory, error) {
	if dim < 1 {
		return nil, fmt.Errorf("assoc: dimension must be positive, got %d", dim)
	}
	return &Memory{dim: dim, index: make(map[string]int)}, nil
}

// Dim returns the hypervector dimensionality.
func (m *Memory) Dim() int { return m.dim }

// Len returns the number of stored items.
func (m *Memory) Len() int { return len(m.items) }

// Names returns the stored keys in insertion order.
func (m *Memory) Names() []string { return append([]string(nil), m.names...) }

// Store inserts or replaces the item under the key. The vector is copied.
func (m *Memory) Store(name string, v hdc.Vector) error {
	if name == "" {
		return errors.New("assoc: empty item name")
	}
	if len(v) != m.dim {
		return fmt.Errorf("assoc: item %q has dim %d, memory expects %d", name, len(v), m.dim)
	}
	cp := v.Clone()
	pk := hdc.Pack(nil, cp)
	if i, ok := m.index[name]; ok {
		m.items[i] = cp
		m.packed[i] = pk
		return nil
	}
	m.index[name] = len(m.items)
	m.names = append(m.names, name)
	m.items = append(m.items, cp)
	m.packed = append(m.packed, pk)
	return nil
}

// StoreRandom draws a random bipolar item, stores it, and returns it —
// the usual way symbols get their hypervectors.
func (m *Memory) StoreRandom(rng *rand.Rand, name string) (hdc.Vector, error) {
	v := hdc.RandomBipolar(rng, m.dim)
	if err := m.Store(name, v); err != nil {
		return nil, err
	}
	return v, nil
}

// Get returns a copy of the stored item.
func (m *Memory) Get(name string) (hdc.Vector, error) {
	i, ok := m.index[name]
	if !ok {
		return nil, fmt.Errorf("assoc: no item %q", name)
	}
	return m.items[i].Clone(), nil
}

// ErrEmpty is returned by cleanup on an empty memory.
var ErrEmpty = errors.New("assoc: memory is empty")

// Cleanup returns the stored item most similar to the query under cosine
// similarity, with the similarity value.
func (m *Memory) Cleanup(q hdc.Vector) (name string, similarity float64, err error) {
	if m.Len() == 0 {
		return "", 0, ErrEmpty
	}
	if len(q) != m.dim {
		return "", 0, fmt.Errorf("assoc: query has dim %d, memory expects %d", len(q), m.dim)
	}
	best, bestSim := 0, hdc.Cosine(nil, q, m.items[0])
	for i := 1; i < m.Len(); i++ {
		if sim := hdc.Cosine(nil, q, m.items[i]); sim > bestSim {
			best, bestSim = i, sim
		}
	}
	return m.names[best], bestSim, nil
}

// CleanupBinary is Cleanup with the Hamming kernel over bit-packed
// shadows — the hardware-friendly search of the paper's Section 3.
func (m *Memory) CleanupBinary(q *hdc.Binary) (name string, similarity float64, err error) {
	if m.Len() == 0 {
		return "", 0, ErrEmpty
	}
	if q.Dim != m.dim {
		return "", 0, fmt.Errorf("assoc: query has dim %d, memory expects %d", q.Dim, m.dim)
	}
	best, bestSim := 0, hdc.HammingSimilarity(nil, q, m.packed[0])
	for i := 1; i < m.Len(); i++ {
		if sim := hdc.HammingSimilarity(nil, q, m.packed[i]); sim > bestSim {
			best, bestSim = i, sim
		}
	}
	return m.names[best], bestSim, nil
}
