package assoc

import (
	"fmt"
	"math/rand"
	"testing"

	"reghd/internal/hdc"
)

func TestNewMemoryValidation(t *testing.T) {
	if _, err := NewMemory(0); err == nil {
		t.Fatal("zero dim accepted")
	}
	m, err := NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 64 || m.Len() != 0 {
		t.Fatal("fresh memory wrong shape")
	}
}

func TestStoreGetReplace(t *testing.T) {
	m, _ := NewMemory(32)
	rng := rand.New(rand.NewSource(1))
	v, err := m.StoreRandom(rng, "a")
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatal("Get returned different vector")
		}
	}
	// Mutating the returned copy must not affect the store.
	got[0] = 99
	again, _ := m.Get("a")
	if again[0] == 99 {
		t.Fatal("Get returned shared storage")
	}
	// Replacement keeps Len stable.
	if _, err := m.StoreRandom(rng, "a"); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("replace grew the memory to %d", m.Len())
	}
	if _, err := m.Get("missing"); err == nil {
		t.Fatal("missing key accepted")
	}
	if err := m.Store("", hdc.NewVector(32)); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := m.Store("b", hdc.NewVector(31)); err == nil {
		t.Fatal("wrong dim accepted")
	}
}

func TestCleanupEmptyAndDims(t *testing.T) {
	m, _ := NewMemory(32)
	if _, _, err := m.Cleanup(hdc.NewVector(32)); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	if _, _, err := m.CleanupBinary(hdc.NewBinary(32)); err != ErrEmpty {
		t.Fatalf("binary err = %v, want ErrEmpty", err)
	}
	rng := rand.New(rand.NewSource(2))
	if _, err := m.StoreRandom(rng, "x"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Cleanup(hdc.NewVector(31)); err == nil {
		t.Fatal("wrong query dim accepted")
	}
	if _, _, err := m.CleanupBinary(hdc.NewBinary(31)); err == nil {
		t.Fatal("wrong binary query dim accepted")
	}
}

func TestCleanupRecallsNoisyItems(t *testing.T) {
	const dim = 4096
	m, _ := NewMemory(dim)
	rng := rand.New(rand.NewSource(3))
	stored := map[string]hdc.Vector{}
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("item-%d", i)
		v, err := m.StoreRandom(rng, name)
		if err != nil {
			t.Fatal(err)
		}
		stored[name] = v
	}
	// Flip 30% of components: cleanup must still recall the right item
	// (the hypervector robustness the paper's §3 leans on).
	for name, v := range stored {
		noisy := v.Clone()
		for _, j := range rng.Perm(dim)[:dim*3/10] {
			noisy[j] = -noisy[j]
		}
		got, sim, err := m.Cleanup(noisy)
		if err != nil {
			t.Fatal(err)
		}
		if got != name {
			t.Fatalf("noisy %s recalled as %s", name, got)
		}
		if sim < 0.3 || sim > 0.5 {
			t.Fatalf("similarity %v, expected ≈0.4 after 30%% flips", sim)
		}
	}
}

func TestCleanupBinaryMatchesDense(t *testing.T) {
	const dim = 2048
	m, _ := NewMemory(dim)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		if _, err := m.StoreRandom(rng, fmt.Sprintf("i%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 10; trial++ {
		v, _ := m.Get(fmt.Sprintf("i%d", rng.Intn(20)))
		for _, j := range rng.Perm(dim)[:dim/5] {
			v[j] = -v[j]
		}
		dense, _, err := m.Cleanup(v)
		if err != nil {
			t.Fatal(err)
		}
		binary, _, err := m.CleanupBinary(hdc.Pack(nil, v))
		if err != nil {
			t.Fatal(err)
		}
		if dense != binary {
			t.Fatalf("dense cleanup %s != binary cleanup %s", dense, binary)
		}
	}
}

func TestCleanupCompositeQuery(t *testing.T) {
	// A bundle of two stored items must clean up to one of them, not a
	// third — the superposition-recall property behind HD data structures.
	const dim = 8000
	m, _ := NewMemory(dim)
	rng := rand.New(rand.NewSource(5))
	a, _ := m.StoreRandom(rng, "a")
	b, _ := m.StoreRandom(rng, "b")
	for i := 0; i < 20; i++ {
		if _, err := m.StoreRandom(rng, fmt.Sprintf("other-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	composite := hdc.Bundle(nil, a, b)
	got, sim, err := m.Cleanup(composite)
	if err != nil {
		t.Fatal(err)
	}
	if got != "a" && got != "b" {
		t.Fatalf("composite cleaned up to %s", got)
	}
	if sim < 0.5 {
		t.Fatalf("composite similarity %v, expected ≈0.7", sim)
	}
}

func TestNamesOrder(t *testing.T) {
	m, _ := NewMemory(16)
	rng := rand.New(rand.NewSource(6))
	for _, n := range []string{"c", "a", "b"} {
		if _, err := m.StoreRandom(rng, n); err != nil {
			t.Fatal(err)
		}
	}
	names := m.Names()
	if names[0] != "c" || names[1] != "a" || names[2] != "b" {
		t.Fatalf("Names = %v, want insertion order", names)
	}
	names[0] = "mutated"
	if m.Names()[0] != "c" {
		t.Fatal("Names returned shared storage")
	}
}
