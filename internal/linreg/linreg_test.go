package linreg

import (
	"math"
	"math/rand"
	"testing"

	"reghd/internal/dataset"
	"reghd/internal/learner"
)

var _ learner.Regressor = (*Model)(nil)

func makeLinear(rng *rand.Rand, n, feats int, noise float64) (*dataset.Dataset, []float64, float64) {
	w := make([]float64, feats)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	b := 1.5
	d := &dataset.Dataset{Name: "lin", X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, feats)
		y := b
		for j := range x {
			x[j] = rng.NormFloat64()
			y += w[j] * x[j]
		}
		d.X[i] = x
		d.Y[i] = y + noise*rng.NormFloat64()
	}
	return d, w, b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Lambda: -1}); err == nil {
		t.Fatal("negative lambda accepted")
	}
}

func TestRecoversExactCoefficients(t *testing.T) {
	d, w, b := makeLinear(rand.New(rand.NewSource(1)), 500, 5, 0)
	m, _ := New(Config{})
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	got := m.Weights()
	for j := range w {
		if math.Abs(got[j]-w[j]) > 1e-6 {
			t.Fatalf("weight %d = %v, want %v", j, got[j], w[j])
		}
	}
	if math.Abs(m.Intercept()-b) > 1e-6 {
		t.Fatalf("intercept %v, want %v", m.Intercept(), b)
	}
}

func TestNoisyFitGeneralizes(t *testing.T) {
	all, _, _ := makeLinear(rand.New(rand.NewSource(2)), 600, 8, 0.1)
	train := all.Subset(seq(0, 450))
	test := all.Subset(seq(450, 600))
	m, _ := New(Config{Lambda: 0.1})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	mse, err := learner.MSE(m, test)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.02 {
		t.Fatalf("test MSE %v too high (noise floor 0.01)", mse)
	}
}

func TestRidgeShrinks(t *testing.T) {
	d, _, _ := makeLinear(rand.New(rand.NewSource(3)), 100, 4, 0.1)
	small, _ := New(Config{Lambda: 0.001})
	large, _ := New(Config{Lambda: 1000})
	if err := small.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := large.Fit(d); err != nil {
		t.Fatal(err)
	}
	n2 := func(w []float64) float64 {
		var s float64
		for _, v := range w {
			s += v * v
		}
		return s
	}
	if n2(large.Weights()) >= n2(small.Weights()) {
		t.Fatal("large ridge penalty did not shrink weights")
	}
}

func TestPredictBeforeFit(t *testing.T) {
	m, _ := New(Config{})
	if _, err := m.Predict([]float64{1}); err != ErrNotTrained {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
}

func TestPredictChecksLength(t *testing.T) {
	d, _, _ := makeLinear(rand.New(rand.NewSource(4)), 50, 3, 0.1)
	m, _ := New(Config{})
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Fatal("wrong input length accepted")
	}
}

func TestFitRejectsBadData(t *testing.T) {
	m, _ := New(Config{})
	if err := m.Fit(&dataset.Dataset{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestCollinearFeaturesHandled(t *testing.T) {
	// Duplicate column: OLS normal equations are singular, the jitter and
	// ridge keep the solve stable.
	rng := rand.New(rand.NewSource(5))
	d := &dataset.Dataset{X: make([][]float64, 80), Y: make([]float64, 80)}
	for i := range d.X {
		v := rng.NormFloat64()
		d.X[i] = []float64{v, v}
		d.Y[i] = 3 * v
	}
	m, _ := New(Config{Lambda: 0.01})
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	y, err := m.Predict([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-3) > 0.05 {
		t.Fatalf("collinear prediction %v, want ≈3", y)
	}
}

func TestName(t *testing.T) {
	m, _ := New(Config{})
	if m.Name() != "linreg" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
