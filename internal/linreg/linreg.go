// Package linreg implements the linear-model baseline of the paper's Table 1
// (listed there as "Logistic Regression"; for scalar targets the sklearn
// family member actually applicable is the linear/ridge regressor): ordinary
// least squares with an L2 (ridge) penalty, solved exactly through the
// normal equations with a Cholesky factorization.
package linreg

import (
	"errors"
	"fmt"

	"reghd/internal/dataset"
	"reghd/internal/matrix"
)

// Config holds the ridge hyper-parameters.
type Config struct {
	// Lambda is the L2 penalty; 0 gives ordinary least squares (the
	// solver still adds a vanishing jitter for numerical safety).
	Lambda float64
}

// Model is the trained ridge regressor: ŷ = w·x + b.
type Model struct {
	cfg     Config
	w       []float64
	b       float64
	trained bool
}

// New constructs an untrained ridge regressor.
func New(cfg Config) (*Model, error) {
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("linreg: Lambda must be non-negative, got %v", cfg.Lambda)
	}
	return &Model{cfg: cfg}, nil
}

// Name implements learner.Regressor.
func (m *Model) Name() string { return "linreg" }

// Weights returns a copy of the trained weight vector.
func (m *Model) Weights() []float64 { return append([]float64(nil), m.w...) }

// Intercept returns the trained intercept.
func (m *Model) Intercept() float64 { return m.b }

// Fit solves (XᵀX + λI)w = Xᵀy on the bias-augmented design matrix.
func (m *Model) Fit(train *dataset.Dataset) error {
	if err := train.Validate(); err != nil {
		return err
	}
	n := train.Len()
	f := train.Features()
	// Augment with a constant column for the intercept.
	x := matrix.New(n, f+1)
	for i, row := range train.X {
		copy(x.Row(i)[:f], row)
		x.Row(i)[f] = 1
	}
	gram := matrix.Gram(x)
	lambda := m.cfg.Lambda
	//lint:ignore floatcmp zero value selects the default jitter
	if lambda == 0 {
		lambda = 1e-10 // jitter keeps the factorization positive definite
	}
	gram.AddDiagonal(lambda)
	// The intercept is conventionally unpenalized; undo its ridge term.
	gram.Data[f*gram.Cols+f] -= lambda - 1e-10
	xty := make([]float64, f+1)
	for i, row := range train.X {
		y := train.Y[i]
		for j, v := range row {
			xty[j] += v * y
		}
		xty[f] += y
	}
	sol, err := matrix.CholeskySolve(gram, xty)
	if err != nil {
		return fmt.Errorf("linreg: solving normal equations: %w", err)
	}
	m.w = sol[:f]
	m.b = sol[f]
	m.trained = true
	return nil
}

// ErrNotTrained is returned by Predict before Fit.
var ErrNotTrained = errors.New("linreg: model has not been trained")

// Predict returns w·x + b.
func (m *Model) Predict(x []float64) (float64, error) {
	if !m.trained {
		return 0, ErrNotTrained
	}
	if len(x) != len(m.w) {
		return 0, fmt.Errorf("linreg: input has %d features, model expects %d", len(x), len(m.w))
	}
	y := m.b
	for j, v := range x {
		y += m.w[j] * v
	}
	return y, nil
}
