package hwgen

import (
	"fmt"
	"strings"
	"unicode"
)

// CheckVerilog performs structural validation of generated Verilog source:
// balanced module/endmodule, begin/end, case/endcase, generate/endgenerate
// pairs, and every identifier used in an expression declared somewhere in
// the file (ports, nets, variables, parameters, genvars, or module names).
// It is a template-regression guard, not a full parser: generated code is
// restricted to the constructs the checker understands.
func CheckVerilog(src string) error {
	tokens := tokenize(src)
	if err := checkBalance(tokens); err != nil {
		return err
	}
	return checkDeclarations(tokens)
}

// token is a Verilog word or symbol with position information.
type token struct {
	text string
	line int
}

// tokenize splits the source into identifier/keyword/number tokens,
// stripping comments and strings.
func tokenize(src string) []token {
	var tokens []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			i += 2
		case c == '"':
			i++
			for i < len(src) && src[i] != '"' {
				i++
			}
			i++
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			tokens = append(tokens, token{text: src[i:j], line: line})
			i = j
		case c == '[' || c == ']':
			tokens = append(tokens, token{text: string(c), line: line})
			i++
		case unicode.IsDigit(rune(c)):
			// Numbers (including 16'd0 style) — consume digits, base
			// markers, and hex digits.
			j := i
			for j < len(src) && (isIdentPart(rune(src[j])) || src[j] == '\'') {
				j++
			}
			tokens = append(tokens, token{text: src[i:j], line: line})
			i = j
		default:
			i++
		}
	}
	return tokens
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '$' || r == '`'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$'
}

// pairs of block keywords that must balance.
var blockPairs = [][2]string{
	{"module", "endmodule"},
	{"begin", "end"},
	{"case", "endcase"},
	{"generate", "endgenerate"},
	{"function", "endfunction"},
	{"task", "endtask"},
}

// checkBalance verifies every open/close keyword pair balances and never
// goes negative.
func checkBalance(tokens []token) error {
	for _, pair := range blockPairs {
		depth := 0
		for _, t := range tokens {
			switch t.text {
			case pair[0]:
				depth++
			case pair[1]:
				depth--
				if depth < 0 {
					return fmt.Errorf("line %d: %q without matching %q", t.line, pair[1], pair[0])
				}
			}
		}
		if depth != 0 {
			return fmt.Errorf("%d unclosed %q block(s)", depth, pair[0])
		}
	}
	return nil
}

// verilogKeywords are tokens that never need declarations.
var verilogKeywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "reg": true, "integer": true,
	"parameter": true, "localparam": true, "assign": true, "always": true,
	"initial": true, "begin": true, "end": true, "if": true, "else": true,
	"for": true, "while": true, "repeat": true, "wait": true, "case": true,
	"endcase": true, "default": true, "posedge": true, "negedge": true,
	"generate": true, "endgenerate": true, "genvar": true, "signed": true,
	"unsigned": true, "function": true, "endfunction": true, "task": true,
	"endtask": true, "forever": true, "disable": true,
}

// declKeywords introduce the identifier(s) that follow.
var declKeywords = map[string]bool{
	"wire": true, "reg": true, "integer": true, "parameter": true,
	"localparam": true, "genvar": true, "input": true, "output": true,
	"inout": true, "module": true,
}

// checkDeclarations collects declared identifiers, then verifies every
// other identifier token is declared. System tasks ($display, …), numbers,
// and keywords are exempt.
func checkDeclarations(tokens []token) error {
	declared := map[string]bool{}
	// Pass 1: collect declarations. A declaration keyword may be followed
	// by qualifiers (signed, ranges are stripped by the tokenizer into
	// separate tokens) and a comma-separated identifier list; we accept
	// every identifier up to a token that clearly ends the list. To stay
	// conservative, collect every identifier that directly follows a
	// declaration keyword, a comma inside a declaration statement, or a
	// module/instance header.
	qualifiers := map[string]bool{
		"wire": true, "reg": true, "signed": true, "unsigned": true,
		"integer": true,
	}
	for i := 0; i < len(tokens); i++ {
		t := tokens[i]
		if !declKeywords[t.text] {
			continue
		}
		// Collect the first identifier after the declaration keyword,
		// skipping type qualifiers (input wire signed [..] name) and any
		// bracketed range expressions.
		depth := 0
		for j := i + 1; j < len(tokens); j++ {
			nt := tokens[j].text
			if nt == "[" {
				depth++
				continue
			}
			if nt == "]" {
				depth--
				continue
			}
			if depth > 0 {
				continue
			}
			if qualifiers[nt] {
				continue
			}
			if verilogKeywords[nt] || declKeywords[nt] {
				break
			}
			if isIdentifier(nt) && !isNumberToken(nt) {
				declared[nt] = true
				break
			}
		}
	}
	// Instance names and block labels: an identifier following another
	// identifier (module name) or following "begin :" — approximate by
	// accepting identifiers starting with "u_" or "g_" as declarations.
	for _, t := range tokens {
		if strings.HasPrefix(t.text, "u_") || strings.HasPrefix(t.text, "g_") {
			declared[t.text] = true
		}
	}
	// Pass 2: verify usage.
	for _, t := range tokens {
		txt := t.text
		if verilogKeywords[txt] || declared[txt] {
			continue
		}
		if strings.HasPrefix(txt, "$") || strings.HasPrefix(txt, "`") {
			continue // system task or directive
		}
		if isNumberToken(txt) {
			continue
		}
		if !isIdentifier(txt) {
			continue
		}
		return fmt.Errorf("line %d: identifier %q used but never declared", t.line, txt)
	}
	return nil
}

// isNumberToken reports whether the token is a numeric literal (possibly
// based, like 16'd0 or 1'b0).
func isNumberToken(s string) bool {
	if s == "" {
		return false
	}
	return unicode.IsDigit(rune(s[0]))
}

// isIdentifier reports whether the token looks like a plain identifier.
func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	return isIdentStart(rune(s[0])) && !strings.HasPrefix(s, "$") && !strings.HasPrefix(s, "`")
}
