package hwgen

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reghd/internal/core"
	"reghd/internal/dataset"
	"reghd/internal/encoding"
	"reghd/internal/hdc"
)

// trainModel fits a small fully-binary RegHD model for export tests.
func trainModel(t *testing.T, dim, k int) (*core.Model, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	d := &dataset.Dataset{Name: "x", X: make([][]float64, 200), Y: make([]float64, 200)}
	for i := range d.X {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		d.X[i] = []float64{a, b}
		d.Y[i] = a - 2*b
	}
	enc, err := encoding.NewNonlinear(rand.New(rand.NewSource(2)), 2, dim)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Models: k, Epochs: 5, Seed: 3, ClusterMode: core.ClusterBinary, PredictMode: core.PredictBinaryBoth}
	if k == 1 {
		cfg.ClusterMode = core.ClusterInteger
	}
	m, err := core.New(enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestExportTrainedWritesDeployment(t *testing.T) {
	m, d := trainModel(t, 512, 4)
	dir := t.TempDir()
	if err := ExportTrained(m, d.X[:10], dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"reghd_top.v", "hamming_unit.v", "argmin_unit.v", "popcount64.v",
		"queries.hex", "clusters.hex", "models.hex", "expected.txt", "reghd_top_tb.v",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
	// The exported memories must be the model's real shadows, not random.
	want, err := m.BinaryModelSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "models.hex"))
	first := strings.SplitN(string(data), "\n", 2)[0]
	if first != hexWords(want) {
		t.Fatal("exported model memory does not match the trained shadow")
	}
}

// TestExportedDeploymentEmulates runs the exported trained deployment
// through the cycle-accurate RTL emulation and checks it reproduces the
// recorded expectations — the end-to-end train→deploy validation.
func TestExportedDeploymentEmulates(t *testing.T) {
	m, d := trainModel(t, 512, 4)
	cfg := Config{Dim: 512, Models: 4}
	clusters := make([]*hdc.Binary, 4)
	models := make([]*hdc.Binary, 4)
	for i := 0; i < 4; i++ {
		var err error
		if clusters[i], err = m.BinaryClusterSnapshot(i); err != nil {
			t.Fatal(err)
		}
		if models[i], err = m.BinaryModelSnapshot(i); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 15; r++ {
		q, err := m.EncodeBinary(d.X[r])
		if err != nil {
			t.Fatal(err)
		}
		wantSel, bestDist := 0, hdc.Hamming(nil, q, clusters[0])
		for i := 1; i < 4; i++ {
			if dd := hdc.Hamming(nil, q, clusters[i]); dd < bestDist {
				wantSel, bestDist = i, dd
			}
		}
		wantScore := hdc.DotBinary(nil, q, models[wantSel])
		got, err := EmulateTop(cfg, clusters, models, q)
		if err != nil {
			t.Fatal(err)
		}
		if got.ClusterSel != wantSel || got.Score != wantScore {
			t.Fatalf("row %d: emulated (%d,%d) != reference (%d,%d)",
				r, got.ClusterSel, got.Score, wantSel, wantScore)
		}
	}
}

func TestExportTrainedValidation(t *testing.T) {
	if err := ExportTrained(nil, [][]float64{{1, 2}}, t.TempDir()); err == nil {
		t.Fatal("nil model accepted")
	}
	m, d := trainModel(t, 512, 4)
	if err := ExportTrained(m, nil, t.TempDir()); err == nil {
		t.Fatal("no queries accepted")
	}
	// Untrained model rejected.
	enc, _ := encoding.NewNonlinear(rand.New(rand.NewSource(9)), 2, 512)
	fresh, _ := core.New(enc, core.Config{Models: 2, Epochs: 1, Seed: 1})
	if err := ExportTrained(fresh, d.X[:1], t.TempDir()); err == nil {
		t.Fatal("untrained model accepted")
	}
	// Dimensionality must be a word multiple.
	enc100, _ := encoding.NewNonlinear(rand.New(rand.NewSource(10)), 2, 100)
	m100, _ := core.New(enc100, core.Config{Models: 2, Epochs: 1, Seed: 1})
	if _, err := m100.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := ExportTrained(m100, d.X[:1], t.TempDir()); err == nil {
		t.Fatal("non-word-multiple dim accepted")
	}
}

func TestExportTrainedSingleModel(t *testing.T) {
	m, d := trainModel(t, 256, 1)
	dir := t.TempDir()
	if err := ExportTrained(m, d.X[:5], dir); err != nil {
		t.Fatal(err)
	}
	exp, err := os.ReadFile(filepath.Join(dir, "expected.txt"))
	if err != nil {
		t.Fatal(err)
	}
	// Single model: every selection must be cluster 0.
	for _, line := range strings.Split(strings.TrimSpace(string(exp)), "\n") {
		if !strings.HasPrefix(line, "0 ") {
			t.Fatalf("single-model selection not 0: %q", line)
		}
	}
}
