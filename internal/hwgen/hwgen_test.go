package hwgen

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reghd/internal/hdc"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Dim: 0, Models: 8},
		{Dim: 100, Models: 8}, // not a multiple of 64
		{Dim: 1024, Models: 0},
		{Dim: 1024, Models: 1000},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, c)
		}
	}
	good := Config{Dim: 2048, Models: 8}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Words() != 32 {
		t.Fatalf("Words = %d, want 32", good.Words())
	}
}

func TestGenerateProducesAllModules(t *testing.T) {
	files, err := Generate(Config{Dim: 1024, Models: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"popcount64.v", "hamming_unit.v", "argmin_unit.v", "reghd_top.v"} {
		src, ok := files[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if !strings.Contains(src, "module ") || !strings.Contains(src, "endmodule") {
			t.Fatalf("%s is not a Verilog module", name)
		}
	}
	// Parameterization must flow into the RTL.
	if !strings.Contains(files["reghd_top.v"], "parameter D     = 1024") {
		t.Fatal("dimension parameter not emitted")
	}
	if !strings.Contains(files["reghd_top.v"], "parameter K     = 4") {
		t.Fatal("model-count parameter not emitted")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Dim: 63, Models: 1}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestWriteDir(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDir(Config{Dim: 512, Models: 2}, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("wrote %d files, want 4", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "reghd_top.v"))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckVerilog(string(data) + "\nmodule hamming_unit; endmodule module argmin_unit; endmodule module popcount64; endmodule"); err == nil {
		// The concatenated form is what Generate validates; reading back a
		// single file should at least be non-empty.
		_ = data
	}
	if len(data) == 0 {
		t.Fatal("empty RTL file")
	}
}

func TestPopcountTreeStructure(t *testing.T) {
	src := popcount64()
	// 32+16+8+4+2+1 = 63 partial-sum adders.
	if got := strings.Count(src, "} + {"); got != 63 {
		t.Fatalf("popcount tree has %d adders, want 63", got)
	}
	if err := CheckVerilog(src); err != nil {
		t.Fatal(err)
	}
}

func TestCheckVerilogCatchesImbalance(t *testing.T) {
	cases := []string{
		"module m;\n", // unclosed module
		"endmodule\n", // close without open
		"module m; always @(*) begin endmodule\n",   // unclosed begin
		"module m; initial begin end end endmodule", // extra end
	}
	for i, src := range cases {
		if err := CheckVerilog(src); err == nil {
			t.Fatalf("case %d accepted:\n%s", i, src)
		}
	}
}

func TestCheckVerilogCatchesUndeclared(t *testing.T) {
	src := `module m (input wire a, output wire b);
    assign b = a & mystery_net;
endmodule
`
	err := CheckVerilog(src)
	if err == nil {
		t.Fatal("undeclared identifier accepted")
	}
	if !strings.Contains(err.Error(), "mystery_net") {
		t.Fatalf("error does not name the identifier: %v", err)
	}
}

func TestCheckVerilogAcceptsValid(t *testing.T) {
	src := `// comment
module m (input wire clk, input wire [3:0] a, output reg [3:0] q);
    wire [3:0] twice = {a[2:0], 1'b0};
    always @(posedge clk) begin
        q <= twice + 4'd1;
    end
endmodule
`
	if err := CheckVerilog(src); err != nil {
		t.Fatal(err)
	}
}

func TestTestVectorsBitTrue(t *testing.T) {
	cfg := Config{Dim: 512, Models: 4}
	rng := rand.New(rand.NewSource(1))
	tv, err := GenerateTestVectors(cfg, rng, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tv.QueryHex) != 20 || len(tv.ClusterHex) != 4 || len(tv.ModelHex) != 4 {
		t.Fatalf("vector counts wrong: %d/%d/%d", len(tv.QueryHex), len(tv.ClusterHex), len(tv.ModelHex))
	}
	// Re-derive expectations from the hex encodings themselves: parse a
	// query back and recompute against the parsed clusters/models, proving
	// the serialized stimulus matches the recorded expectations.
	parse := func(h string) *hdc.Binary {
		b := hdc.NewBinary(cfg.Dim)
		words := cfg.Words()
		for w := 0; w < words; w++ {
			// MSW first: word (words-1-w) occupies chars [w*16, w*16+16).
			var v uint64
			for _, ch := range h[w*16 : w*16+16] {
				v <<= 4
				switch {
				case ch >= '0' && ch <= '9':
					v |= uint64(ch - '0')
				case ch >= 'a' && ch <= 'f':
					v |= uint64(ch-'a') + 10
				default:
					t.Fatalf("bad hex char %q", ch)
				}
			}
			b.Words[words-1-w] = v
		}
		return b
	}
	clusters := make([]*hdc.Binary, cfg.Models)
	models := make([]*hdc.Binary, cfg.Models)
	for i := range clusters {
		clusters[i] = parse(tv.ClusterHex[i])
		models[i] = parse(tv.ModelHex[i])
	}
	for q, qh := range tv.QueryHex {
		query := parse(qh)
		best, bestDist := 0, hdc.Hamming(nil, query, clusters[0])
		for i := 1; i < cfg.Models; i++ {
			if d := hdc.Hamming(nil, query, clusters[i]); d < bestDist {
				best, bestDist = i, d
			}
		}
		if best != tv.ExpectedSel[q] {
			t.Fatalf("query %d: re-derived sel %d != recorded %d", q, best, tv.ExpectedSel[q])
		}
		if score := hdc.DotBinary(nil, query, models[best]); score != tv.ExpectedScore[q] {
			t.Fatalf("query %d: re-derived score %d != recorded %d", q, score, tv.ExpectedScore[q])
		}
	}
}

func TestGenerateTestVectorsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := GenerateTestVectors(Config{Dim: 63, Models: 1}, rng, 5); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := GenerateTestVectors(Config{Dim: 64, Models: 1}, rng, 0); err == nil {
		t.Fatal("zero queries accepted")
	}
}

func TestWriteTestbench(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dim: 256, Models: 2}
	rng := rand.New(rand.NewSource(3))
	tv, err := GenerateTestVectors(cfg, rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDir(cfg, dir); err != nil {
		t.Fatal(err)
	}
	if err := WriteTestbench(cfg, tv, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"queries.hex", "clusters.hex", "models.hex", "expected.txt", "reghd_top_tb.v"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
	tb, _ := os.ReadFile(filepath.Join(dir, "reghd_top_tb.v"))
	if !strings.Contains(string(tb), "$readmemh") || !strings.Contains(string(tb), "PASS") {
		t.Fatal("testbench not self-checking")
	}
	// The stimulus line widths must match the RTL's word count.
	q, _ := os.ReadFile(filepath.Join(dir, "queries.hex"))
	first := strings.SplitN(string(q), "\n", 2)[0]
	if len(first) != cfg.Words()*16 {
		t.Fatalf("query hex width %d, want %d", len(first), cfg.Words()*16)
	}
}

func TestGeneratedRTLAcrossConfigs(t *testing.T) {
	for _, cfg := range []Config{
		{Dim: 64, Models: 1},
		{Dim: 512, Models: 2},
		{Dim: 4096, Models: 32},
	} {
		if _, err := Generate(cfg); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
	}
}
