package hwgen

import (
	"math/rand"
	"testing"

	"reghd/internal/hdc"
)

// TestEmulationMatchesReference is the golden-model co-simulation: the
// cycle-accurate emulation of the generated RTL must reproduce the
// bit-true expected outputs for every test vector, across configurations.
func TestEmulationMatchesReference(t *testing.T) {
	for _, cfg := range []Config{
		{Dim: 64, Models: 1},
		{Dim: 256, Models: 2},
		{Dim: 512, Models: 4},
		{Dim: 2048, Models: 16},
	} {
		rng := rand.New(rand.NewSource(7))
		clusters := make([]*hdc.Binary, cfg.Models)
		models := make([]*hdc.Binary, cfg.Models)
		for i := range clusters {
			clusters[i] = hdc.RandomBipolarBinary(rng, cfg.Dim)
			models[i] = hdc.RandomBipolarBinary(rng, cfg.Dim)
		}
		for q := 0; q < 25; q++ {
			query := hdc.RandomBipolarBinary(rng, cfg.Dim)
			// Reference outputs from the Go kernels.
			wantSel, bestDist := 0, hdc.Hamming(nil, query, clusters[0])
			for i := 1; i < cfg.Models; i++ {
				if d := hdc.Hamming(nil, query, clusters[i]); d < bestDist {
					wantSel, bestDist = i, d
				}
			}
			wantScore := hdc.DotBinary(nil, query, models[wantSel])

			got, err := EmulateTop(cfg, clusters, models, query)
			if err != nil {
				t.Fatal(err)
			}
			if got.ClusterSel != wantSel {
				t.Fatalf("%+v q%d: emulated sel %d, reference %d", cfg, q, got.ClusterSel, wantSel)
			}
			if got.Score != wantScore {
				t.Fatalf("%+v q%d: emulated score %d, reference %d", cfg, q, got.Score, wantScore)
			}
			// The word-serial engines need exactly WORDS+1 cycles (start
			// pulse + one accumulate per word).
			if got.Cycles != cfg.Words()+1 {
				t.Fatalf("%+v: %d cycles, want %d", cfg, got.Cycles, cfg.Words()+1)
			}
		}
	}
}

// TestEmulationAgainstTestVectors replays the exact stimulus written for
// the Verilog testbench through the emulation.
func TestEmulationAgainstTestVectors(t *testing.T) {
	cfg := Config{Dim: 512, Models: 4}
	rng := rand.New(rand.NewSource(11))
	tv, err := GenerateTestVectors(cfg, rng, 30)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(h string) *hdc.Binary {
		b := hdc.NewBinary(cfg.Dim)
		words := cfg.Words()
		for w := 0; w < words; w++ {
			var v uint64
			for _, ch := range h[w*16 : w*16+16] {
				v <<= 4
				switch {
				case ch >= '0' && ch <= '9':
					v |= uint64(ch - '0')
				default:
					v |= uint64(ch-'a') + 10
				}
			}
			b.Words[words-1-w] = v
		}
		return b
	}
	clusters := make([]*hdc.Binary, cfg.Models)
	models := make([]*hdc.Binary, cfg.Models)
	for i := range clusters {
		clusters[i] = parse(tv.ClusterHex[i])
		models[i] = parse(tv.ModelHex[i])
	}
	for q, qh := range tv.QueryHex {
		got, err := EmulateTop(cfg, clusters, models, parse(qh))
		if err != nil {
			t.Fatal(err)
		}
		if got.ClusterSel != tv.ExpectedSel[q] || got.Score != tv.ExpectedScore[q] {
			t.Fatalf("query %d: emulation (%d, %d) != expected (%d, %d)",
				q, got.ClusterSel, got.Score, tv.ExpectedSel[q], tv.ExpectedScore[q])
		}
	}
}

func TestEmulateTopValidation(t *testing.T) {
	cfg := Config{Dim: 64, Models: 2}
	rng := rand.New(rand.NewSource(1))
	ok := []*hdc.Binary{hdc.RandomBipolarBinary(rng, 64), hdc.RandomBipolarBinary(rng, 64)}
	q := hdc.RandomBipolarBinary(rng, 64)
	if _, err := EmulateTop(Config{Dim: 63, Models: 2}, ok, ok, q); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := EmulateTop(cfg, ok[:1], ok, q); err == nil {
		t.Fatal("wrong cluster count accepted")
	}
	if _, err := EmulateTop(cfg, ok, ok, hdc.RandomBipolarBinary(rng, 128)); err == nil {
		t.Fatal("wrong query dim accepted")
	}
	bad := []*hdc.Binary{hdc.RandomBipolarBinary(rng, 128), hdc.RandomBipolarBinary(rng, 128)}
	if _, err := EmulateTop(cfg, bad, ok, q); err == nil {
		t.Fatal("wrong memory dim accepted")
	}
}
