package hwgen

import (
	"fmt"

	"reghd/internal/core"
	"reghd/internal/hdc"
)

// ExportTrained writes the full FPGA deployment package for a *trained*
// RegHD model into dir: the parameterized RTL, the model's binary cluster
// and model shadows as memory-initialization hex files, the provided
// feature rows encoded into query stimulus, and a self-checking testbench
// whose expected outputs follow the RTL's hard-select semantics (argmin
// Hamming over the cluster shadows, then the selected model's bipolar dot).
// This closes the paper's loop: train in software, deploy the quantized
// model to hardware.
//
// The model's dimensionality must be a multiple of 64. The deployed
// hard-select datapath approximates the software model's softmax-weighted
// prediction; use the fully binary PredictMode during training so the
// software quality numbers reflect the deployed kernel.
func ExportTrained(m *core.Model, xs [][]float64, dir string) error {
	if m == nil {
		return fmt.Errorf("hwgen: nil model")
	}
	if !m.Trained() {
		return fmt.Errorf("hwgen: model has not been trained")
	}
	if len(xs) == 0 {
		return fmt.Errorf("hwgen: no query rows")
	}
	cfg := Config{Dim: m.Dim(), Models: m.Models()}
	if err := cfg.Validate(); err != nil {
		return err
	}

	clusters := make([]*hdc.Binary, cfg.Models)
	models := make([]*hdc.Binary, cfg.Models)
	tv := &TestVectors{}
	for i := 0; i < cfg.Models; i++ {
		mb, err := m.BinaryModelSnapshot(i)
		if err != nil {
			return err
		}
		models[i] = mb
		tv.ModelHex = append(tv.ModelHex, hexWords(mb))
		if cfg.Models > 1 {
			cb, err := m.BinaryClusterSnapshot(i)
			if err != nil {
				return err
			}
			clusters[i] = cb
		} else {
			// Single-model designs have no clusters; feed a constant
			// all-clear memory so the (absent) similarity path is benign.
			clusters[i] = hdc.NewBinary(cfg.Dim)
		}
		tv.ClusterHex = append(tv.ClusterHex, hexWords(clusters[i]))
	}
	for r, x := range xs {
		q, err := m.EncodeBinary(x)
		if err != nil {
			return fmt.Errorf("hwgen: encoding query row %d: %w", r, err)
		}
		tv.QueryHex = append(tv.QueryHex, hexWords(q))
		best, bestDist := 0, hdc.Hamming(nil, q, clusters[0])
		for i := 1; i < cfg.Models; i++ {
			if d := hdc.Hamming(nil, q, clusters[i]); d < bestDist {
				best, bestDist = i, d
			}
		}
		tv.ExpectedSel = append(tv.ExpectedSel, best)
		tv.ExpectedScore = append(tv.ExpectedScore, hdc.DotBinary(nil, q, models[best]))
	}

	if err := WriteDir(cfg, dir); err != nil {
		return err
	}
	return WriteTestbench(cfg, tv, dir)
}
