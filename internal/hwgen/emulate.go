package hwgen

import (
	"fmt"
	"math/bits"

	"reghd/internal/hdc"
)

// This file is a cycle-accurate Go emulation of the generated RTL's
// register-transfer semantics — the golden-model co-simulation that stands
// in for a Verilog simulator in this repository: each emu* struct
// transliterates its module's always-block, so if the emulation reproduces
// the bit-true expected outputs for every test vector, the template logic
// is validated. (The textual RTL is additionally covered by CheckVerilog;
// users with iverilog can run the generated self-checking testbench.)

// emuHamming mirrors hamming_unit.v: a word-serial XOR+popcount
// accumulator with start/done handshaking.
type emuHamming struct {
	distance uint16
	wordIdx  int
	running  bool
	done     bool
}

// step advances one clock edge. qWord and cWord are the combinational
// memory reads for the CURRENT wordIdx (exactly as the testbench feeds the
// DUT); words is the WORDS parameter.
func (e *emuHamming) step(rst, start bool, qWord, cWord uint64, words int) {
	switch {
	case rst:
		e.distance = 0
		e.wordIdx = 0
		e.done = false
		e.running = false
	case start:
		e.distance = 0
		e.wordIdx = 0
		e.done = false
		e.running = true
	case e.running:
		e.distance += uint16(bits.OnesCount64(qWord ^ cWord))
		if e.wordIdx == words-1 {
			e.running = false
			e.done = true
		} else {
			e.wordIdx++
		}
	default:
		e.done = false
	}
}

// emuArgmin mirrors argmin_unit.v (combinational).
func emuArgmin(distances []uint16) (sel int, best uint16) {
	best = distances[0]
	for i := 1; i < len(distances); i++ {
		if distances[i] < best {
			best = distances[i]
			sel = i
		}
	}
	return sel, best
}

// EmulationResult is the outcome of one emulated query.
type EmulationResult struct {
	// ClusterSel is the selected cluster index.
	ClusterSel int
	// Score is the selected model's bipolar dot product.
	Score int
	// Cycles is the clock count from start pulse to done.
	Cycles int
}

// EmulateTop runs one query through the emulated reghd_top datapath.
func EmulateTop(c Config, clusters, models []*hdc.Binary, query *hdc.Binary) (EmulationResult, error) {
	if err := c.Validate(); err != nil {
		return EmulationResult{}, err
	}
	if len(clusters) != c.Models || len(models) != c.Models {
		return EmulationResult{}, fmt.Errorf("hwgen: %d clusters / %d models, want %d", len(clusters), len(models), c.Models)
	}
	if query.Dim != c.Dim {
		return EmulationResult{}, fmt.Errorf("hwgen: query dim %d, want %d", query.Dim, c.Dim)
	}
	for i := 0; i < c.Models; i++ {
		if clusters[i].Dim != c.Dim || models[i].Dim != c.Dim {
			return EmulationResult{}, fmt.Errorf("hwgen: memory %d has wrong dimension", i)
		}
	}
	words := c.Words()
	cEng := make([]emuHamming, c.Models)
	mEng := make([]emuHamming, c.Models)

	// Reset for two cycles, like the testbench.
	for i := 0; i < 2; i++ {
		for g := 0; g < c.Models; g++ {
			cEng[g].step(true, false, 0, 0, words)
			mEng[g].step(true, false, 0, 0, words)
		}
	}
	// Start pulse, then run until every engine reports done. The word feed
	// is combinational from engine 0's word index (all engines advance in
	// lockstep, mirroring `assign word_idx = c_idx[0 +: IDXW]`).
	start := true
	cycles := 0
	for {
		cycles++
		if cycles > 4*(words+4) {
			return EmulationResult{}, fmt.Errorf("hwgen: emulation did not finish (datapath bug)")
		}
		idx := cEng[0].wordIdx
		q := query.Words[idx]
		for g := 0; g < c.Models; g++ {
			cEng[g].step(false, start, q, clusters[g].Words[idx], words)
			mEng[g].step(false, start, q, models[g].Words[idx], words)
		}
		start = false
		allDone := true
		for g := 0; g < c.Models; g++ {
			if !cEng[g].done || !mEng[g].done {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
	}
	dists := make([]uint16, c.Models)
	for g := 0; g < c.Models; g++ {
		dists[g] = cEng[g].distance
	}
	sel, _ := emuArgmin(dists)
	score := c.Dim - 2*int(mEng[sel].distance)
	return EmulationResult{ClusterSel: sel, Score: score, Cycles: cycles}, nil
}
