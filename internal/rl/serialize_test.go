package rl

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestAgentSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultAgentConfig()
	cfg.Dim = 512
	cfg.Gamma = 0.9
	cfg.Seed = 1
	agent, err := NewAgent(&Chase{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(100); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := agent.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadAgent(&Chase{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// The greedy policy must agree on arbitrary states.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		state := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		a1, v1, err := agent.Greedy(state)
		if err != nil {
			t.Fatal(err)
		}
		a2, v2, err := restored.Greedy(state)
		if err != nil {
			t.Fatal(err)
		}
		if a1 != a2 || v1 != v2 {
			t.Fatalf("state %v: policies diverge (%d,%v) vs (%d,%v)", state, a1, v1, a2, v2)
		}
	}
}

func TestLoadAgentValidation(t *testing.T) {
	cfg := DefaultAgentConfig()
	cfg.Dim = 128
	agent, err := NewAgent(&Chase{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := agent.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	if _, err := LoadAgent(nil, bytes.NewReader(saved)); err == nil {
		t.Fatal("nil environment accepted")
	}
	// Chase has 3 actions; CartPole has 2 — arity mismatch must fail.
	if _, err := LoadAgent(&CartPole{}, bytes.NewReader(saved)); err == nil {
		t.Fatal("action-count mismatch accepted")
	}
	if _, err := LoadAgent(&Chase{}, strings.NewReader("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}
