package rl

import (
	"fmt"
	"math/rand"

	"reghd/internal/core"
	"reghd/internal/encoding"
)

// AgentConfig holds the Q-learning hyper-parameters.
type AgentConfig struct {
	// Dim is the hypervector dimensionality of each action-value model.
	Dim int
	// Bandwidth is the encoder kernel bandwidth over the state vector.
	Bandwidth float64
	// Gamma is the discount factor.
	Gamma float64
	// LearningRate is the RegHD update rate α used for the TD update.
	LearningRate float64
	// EpsilonStart/EpsilonEnd define the linear exploration schedule over
	// the training episodes.
	EpsilonStart, EpsilonEnd float64
	// Models is the number of RegHD cluster/model pairs per action (1 is
	// the usual choice for smooth value functions).
	Models int
	// Seed drives the encoder, models, and exploration.
	Seed int64
}

// DefaultAgentConfig returns a configuration that learns both bundled
// environments.
func DefaultAgentConfig() AgentConfig {
	return AgentConfig{
		Dim:          2000,
		Bandwidth:    1.0,
		Gamma:        0.99,
		LearningRate: 0.1,
		EpsilonStart: 1.0,
		EpsilonEnd:   0.05,
		Models:       1,
		Seed:         1,
	}
}

// Validate fills defaults and rejects invalid settings.
func (c *AgentConfig) Validate() error {
	if c.Dim == 0 {
		c.Dim = 2000
	}
	//lint:ignore floatcmp zero value selects the documented default
	if c.Bandwidth == 0 {
		c.Bandwidth = 1
	}
	//lint:ignore floatcmp zero value selects the documented default
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	//lint:ignore floatcmp zero value selects the documented default
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	//lint:ignore floatcmp zero value selects the documented default
	if c.EpsilonStart == 0 {
		c.EpsilonStart = 1
	}
	if c.Models == 0 {
		c.Models = 1
	}
	switch {
	case c.Dim < 0:
		return fmt.Errorf("rl: negative Dim")
	case c.Bandwidth < 0:
		return fmt.Errorf("rl: negative Bandwidth")
	case c.Gamma < 0 || c.Gamma >= 1:
		return fmt.Errorf("rl: Gamma must be in [0,1), got %v", c.Gamma)
	case c.LearningRate <= 0 || c.LearningRate >= 1:
		return fmt.Errorf("rl: LearningRate must be in (0,1), got %v", c.LearningRate)
	case c.EpsilonStart < 0 || c.EpsilonStart > 1 || c.EpsilonEnd < 0 || c.EpsilonEnd > c.EpsilonStart:
		return fmt.Errorf("rl: epsilon schedule must satisfy 0 <= end <= start <= 1")
	case c.Models < 0:
		return fmt.Errorf("rl: negative Models")
	}
	return nil
}

// Agent is a Q-learning agent whose action-value function Q(s, a) is one
// RegHD regression model per action over a shared state encoder: the
// paper's regression primitive applied exactly where its introduction says
// it matters ("regression is the main building block to enable accurate
// reinforcement learning").
type Agent struct {
	cfg AgentConfig
	env Environment
	q   []*core.Model // one per action
	rng *rand.Rand
}

// NewAgent builds an agent for the environment.
func NewAgent(env Environment, cfg AgentConfig) (*Agent, error) {
	if err := validateEnv(env); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Agent{cfg: cfg, env: env, rng: rand.New(rand.NewSource(cfg.Seed))}
	for act := 0; act < env.NumActions(); act++ {
		enc, err := encoding.NewNonlinearBandwidth(
			rand.New(rand.NewSource(cfg.Seed+int64(act)*911)),
			env.StateDim(), cfg.Dim, cfg.Bandwidth)
		if err != nil {
			return nil, err
		}
		m, err := core.New(enc, core.Config{
			Models:       cfg.Models,
			LearningRate: cfg.LearningRate,
			Epochs:       1,
			Seed:         cfg.Seed + int64(act),
		})
		if err != nil {
			return nil, err
		}
		a.q = append(a.q, m)
	}
	return a, nil
}

// qValue returns Q(s, a), treating an untrained model as 0.
func (a *Agent) qValue(state []float64, action int) (float64, error) {
	m := a.q[action]
	if !m.Trained() {
		return 0, nil
	}
	return m.Predict(state)
}

// Greedy returns the greedy action and its value for a state.
func (a *Agent) Greedy(state []float64) (int, float64, error) {
	best, bestV := 0, 0.0
	for act := range a.q {
		v, err := a.qValue(state, act)
		if err != nil {
			return 0, 0, err
		}
		if act == 0 || v > bestV {
			best, bestV = act, v
		}
	}
	return best, bestV, nil
}

// TrainResult summarizes a training run.
type TrainResult struct {
	// Episodes is the number of episodes played.
	Episodes int
	// Returns holds the (undiscounted) return of each episode.
	Returns []float64
	// Steps holds the length of each episode.
	Steps []int
}

// MeanReturn averages the returns of the last n episodes (all when n <= 0
// or larger than the run).
func (r *TrainResult) MeanReturn(n int) float64 {
	if len(r.Returns) == 0 {
		return 0
	}
	if n <= 0 || n > len(r.Returns) {
		n = len(r.Returns)
	}
	var s float64
	for _, v := range r.Returns[len(r.Returns)-n:] {
		s += v
	}
	return s / float64(n)
}

// Train runs episodic ε-greedy Q-learning: after each transition the model
// of the taken action receives one RegHD update toward the TD target
// r + γ·max_a' Q(s', a').
func (a *Agent) Train(episodes int) (*TrainResult, error) {
	if episodes <= 0 {
		return nil, fmt.Errorf("rl: episodes must be positive, got %d", episodes)
	}
	res := &TrainResult{Episodes: episodes}
	for ep := 0; ep < episodes; ep++ {
		eps := a.cfg.EpsilonStart
		if episodes > 1 {
			frac := float64(ep) / float64(episodes-1)
			eps = a.cfg.EpsilonStart + (a.cfg.EpsilonEnd-a.cfg.EpsilonStart)*frac
		}
		state := a.env.Reset(a.rng)
		var ret float64
		var steps int
		for {
			var action int
			if a.rng.Float64() < eps {
				action = a.rng.Intn(a.env.NumActions())
			} else {
				var err error
				action, _, err = a.Greedy(state)
				if err != nil {
					return nil, err
				}
			}
			next, reward, done := a.env.Step(action)
			ret += reward
			steps++
			target := reward
			if !done {
				_, nextV, err := a.Greedy(next)
				if err != nil {
					return nil, err
				}
				target += a.cfg.Gamma * nextV
			}
			if err := a.q[action].PartialFit(state, target); err != nil {
				return nil, err
			}
			state = next
			if done {
				break
			}
		}
		res.Returns = append(res.Returns, ret)
		res.Steps = append(res.Steps, steps)
	}
	return res, nil
}

// Evaluate plays greedy episodes without learning and returns the mean
// undiscounted return.
func (a *Agent) Evaluate(episodes int) (float64, error) {
	if episodes <= 0 {
		return 0, fmt.Errorf("rl: episodes must be positive, got %d", episodes)
	}
	var total float64
	for ep := 0; ep < episodes; ep++ {
		state := a.env.Reset(a.rng)
		for {
			action, _, err := a.Greedy(state)
			if err != nil {
				return 0, err
			}
			next, reward, done := a.env.Step(action)
			total += reward
			state = next
			if done {
				break
			}
		}
	}
	return total / float64(episodes), nil
}

// RandomBaseline plays uniformly random episodes and returns the mean
// return, the reference the trained agent must beat.
func (a *Agent) RandomBaseline(episodes int) (float64, error) {
	if episodes <= 0 {
		return 0, fmt.Errorf("rl: episodes must be positive, got %d", episodes)
	}
	var total float64
	for ep := 0; ep < episodes; ep++ {
		a.env.Reset(a.rng)
		for {
			_, reward, done := a.env.Step(a.rng.Intn(a.env.NumActions()))
			total += reward
			if done {
				break
			}
		}
	}
	return total / float64(episodes), nil
}
