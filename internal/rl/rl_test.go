package rl

import (
	"math"
	"math/rand"
	"testing"
)

func TestCartPolePhysics(t *testing.T) {
	env := &CartPole{}
	rng := rand.New(rand.NewSource(1))
	s := env.Reset(rng)
	if len(s) != env.StateDim() || env.StateDim() != 4 || env.NumActions() != 2 {
		t.Fatalf("cartpole shape wrong")
	}
	for _, v := range s {
		if math.Abs(v) > 0.05 {
			t.Fatalf("initial state %v outside ±0.05", s)
		}
	}
	// Constantly pushing one way must topple the pole well before the cap.
	steps := 0
	for {
		_, r, done := env.Step(1)
		if r != 1 {
			t.Fatalf("cartpole reward %v, want 1", r)
		}
		steps++
		if done {
			break
		}
		if steps > 500 {
			t.Fatal("episode never ended")
		}
	}
	if steps >= 500 {
		t.Fatalf("one-sided policy survived %d steps", steps)
	}
}

func TestCartPoleMaxStepsCap(t *testing.T) {
	env := &CartPole{MaxSteps: 7}
	rng := rand.New(rand.NewSource(2))
	env.Reset(rng)
	for i := 0; i < 6; i++ {
		alt := i % 2
		if _, _, done := env.Step(alt); done {
			return // early physical failure is fine
		}
	}
	if _, _, done := env.Step(0); !done {
		t.Fatal("MaxSteps cap not applied")
	}
}

func TestChaseDynamics(t *testing.T) {
	env := &Chase{}
	rng := rand.New(rand.NewSource(3))
	s := env.Reset(rng)
	if len(s) != 2 || env.NumActions() != 3 {
		t.Fatal("chase shape wrong")
	}
	// Re-roll until the target is far enough that two steps toward it
	// cannot overshoot, then moving toward it must increase the reward.
	for math.Abs(s[1]-s[0]) < 0.3 {
		s = env.Reset(rng)
	}
	dir := 2
	if s[1] < s[0] {
		dir = 0
	}
	_, r1, _ := env.Step(dir)
	_, r2, done := env.Step(dir)
	if !done && r2 < r1 {
		t.Fatalf("moving toward target decreased reward: %v then %v", r1, r2)
	}
	// Position clamps at the boundary.
	env2 := &Chase{}
	env2.Reset(rng)
	for i := 0; i < 50; i++ {
		st, _, done := env2.Step(2)
		if st[0] > 1+1e-12 {
			t.Fatalf("position %v beyond +1", st[0])
		}
		if done {
			break
		}
	}
}

func TestAgentConfigValidation(t *testing.T) {
	env := &Chase{}
	bad := []AgentConfig{
		{Dim: -1},
		{Bandwidth: -1},
		{Gamma: 1.5},
		{LearningRate: -0.1},
		{EpsilonStart: 0.1, EpsilonEnd: 0.5},
		{Models: -1},
	}
	for i, cfg := range bad {
		if _, err := NewAgent(env, cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if _, err := NewAgent(nil, DefaultAgentConfig()); err == nil {
		t.Fatal("nil environment accepted")
	}
	var c AgentConfig
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Dim == 0 || c.Gamma == 0 || c.LearningRate == 0 {
		t.Fatal("defaults not filled")
	}
}

func TestAgentLearnsChase(t *testing.T) {
	cfg := DefaultAgentConfig()
	cfg.Dim = 1000
	cfg.Gamma = 0.9
	cfg.Seed = 4
	agent, err := NewAgent(&Chase{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	random, err := agent.RandomBaseline(50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := agent.Train(300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes != 300 || len(res.Returns) != 300 || len(res.Steps) != 300 {
		t.Fatalf("malformed result: %+v", res)
	}
	trained, err := agent.Evaluate(50)
	if err != nil {
		t.Fatal(err)
	}
	// Chase returns are negative distances summed; the trained agent must
	// clearly beat a random walker.
	if trained < random*0.6 {
		t.Fatalf("trained return %v not clearly better than random %v", trained, random)
	}
	// Learning curve: late returns better than early returns.
	if res.MeanReturn(50) <= mean(res.Returns[:50]) {
		t.Fatalf("no improvement: early %v late %v", mean(res.Returns[:50]), res.MeanReturn(50))
	}
}

func TestAgentImprovesCartPole(t *testing.T) {
	cfg := DefaultAgentConfig()
	cfg.Dim = 1000
	cfg.Bandwidth = 0.3
	cfg.Gamma = 0.95
	cfg.Seed = 5
	env := &CartPole{MaxSteps: 200}
	agent, err := NewAgent(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	random, err := agent.RandomBaseline(30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(600); err != nil {
		t.Fatal(err)
	}
	trained, err := agent.Evaluate(30)
	if err != nil {
		t.Fatal(err)
	}
	// Random balances ~20-30 steps; the trained agent must clearly beat it
	// (Q-learning with function approximation is noisy, so the threshold
	// leaves margin below the typical ~3x result).
	if trained < random*1.8 {
		t.Fatalf("trained return %v not clearly better than random %v", trained, random)
	}
}

func TestTrainValidation(t *testing.T) {
	agent, err := NewAgent(&Chase{}, DefaultAgentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(0); err == nil {
		t.Fatal("zero episodes accepted")
	}
	if _, err := agent.Evaluate(-1); err == nil {
		t.Fatal("negative evaluate accepted")
	}
	if _, err := agent.RandomBaseline(0); err == nil {
		t.Fatal("zero baseline accepted")
	}
}

func TestMeanReturn(t *testing.T) {
	r := &TrainResult{Returns: []float64{1, 2, 3, 4}}
	if r.MeanReturn(2) != 3.5 {
		t.Fatalf("MeanReturn(2) = %v", r.MeanReturn(2))
	}
	if r.MeanReturn(0) != 2.5 || r.MeanReturn(99) != 2.5 {
		t.Fatal("MeanReturn bounds wrong")
	}
	empty := &TrainResult{}
	if empty.MeanReturn(3) != 0 {
		t.Fatal("empty MeanReturn should be 0")
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
