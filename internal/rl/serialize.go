package rl

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"reghd/internal/core"
)

// agentState is the wire form of a trained agent: the configuration plus
// each action's serialized RegHD model.
type agentState struct {
	Cfg    AgentConfig
	Models [][]byte
}

// Save serializes the agent's action-value models, so a trained policy can
// be deployed without retraining.
func (a *Agent) Save(w io.Writer) error {
	st := agentState{Cfg: a.cfg}
	for _, m := range a.q {
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			return fmt.Errorf("rl: saving action model: %w", err)
		}
		st.Models = append(st.Models, buf.Bytes())
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("rl: saving agent: %w", err)
	}
	return nil
}

// LoadAgent restores an agent previously written with Save, attached to the
// given environment (environments carry physics, not learned state, so they
// are provided fresh). The environment's action and state arity must match
// the saved models.
func LoadAgent(env Environment, r io.Reader) (*Agent, error) {
	if err := validateEnv(env); err != nil {
		return nil, err
	}
	var st agentState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("rl: loading agent: %w", err)
	}
	if err := st.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("rl: loaded agent config: %w", err)
	}
	if len(st.Models) != env.NumActions() {
		return nil, fmt.Errorf("rl: saved agent has %d actions, environment has %d", len(st.Models), env.NumActions())
	}
	a := &Agent{cfg: st.Cfg, env: env, rng: rand.New(rand.NewSource(st.Cfg.Seed))}
	for i, raw := range st.Models {
		m, err := core.Load(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("rl: loading action %d model: %w", i, err)
		}
		if m.Encoder().Features() != env.StateDim() {
			return nil, fmt.Errorf("rl: action %d model expects %d state features, environment has %d",
				i, m.Encoder().Features(), env.StateDim())
		}
		a.q = append(a.q, m)
	}
	return a, nil
}
