// Package rl implements the paper's stated extension ("regression is the
// main building block to enable accurate reinforcement learning", and the
// conclusion's "first HD-based reinforcement learning"): semi-gradient
// Q-learning with RegHD regression models as the action-value
// approximators, plus two classic continuous-state control environments to
// exercise it.
package rl

import (
	"fmt"
	"math"
	"math/rand"
)

// Environment is an episodic control task with a continuous state vector
// and a discrete action set.
type Environment interface {
	// Name identifies the environment.
	Name() string
	// StateDim returns the state vector length.
	StateDim() int
	// NumActions returns the number of discrete actions.
	NumActions() int
	// Reset starts a new episode and returns the initial state.
	Reset(rng *rand.Rand) []float64
	// Step applies an action and returns the next state, the reward, and
	// whether the episode ended.
	Step(action int) (state []float64, reward float64, done bool)
}

// CartPole is the classic pole-balancing task (Barto, Sutton & Anderson
// 1983): a cart on a track balances a pole by accelerating left or right.
// Reward is +1 per step; the episode ends when the pole falls past 12° or
// the cart leaves ±2.4, or after MaxSteps.
type CartPole struct {
	// MaxSteps caps episode length (default 500).
	MaxSteps int

	x, xDot, theta, thetaDot float64
	steps                    int
}

// cartpole physics constants (the canonical values).
const (
	cpGravity   = 9.8
	cpMassCart  = 1.0
	cpMassPole  = 0.1
	cpLength    = 0.5 // half pole length
	cpForce     = 10.0
	cpTau       = 0.02 // integration step, seconds
	cpThetaFail = 12 * math.Pi / 180
	cpXFail     = 2.4
)

// Name implements Environment.
func (c *CartPole) Name() string { return "cartpole" }

// StateDim implements Environment.
func (c *CartPole) StateDim() int { return 4 }

// NumActions implements Environment (push left, push right).
func (c *CartPole) NumActions() int { return 2 }

// Reset implements Environment.
func (c *CartPole) Reset(rng *rand.Rand) []float64 {
	c.x = (rng.Float64()*2 - 1) * 0.05
	c.xDot = (rng.Float64()*2 - 1) * 0.05
	c.theta = (rng.Float64()*2 - 1) * 0.05
	c.thetaDot = (rng.Float64()*2 - 1) * 0.05
	c.steps = 0
	return c.state()
}

func (c *CartPole) state() []float64 {
	return []float64{c.x, c.xDot, c.theta, c.thetaDot}
}

// Step implements Environment.
func (c *CartPole) Step(action int) ([]float64, float64, bool) {
	force := cpForce
	if action == 0 {
		force = -cpForce
	}
	cosT, sinT := math.Cos(c.theta), math.Sin(c.theta)
	totalMass := cpMassCart + cpMassPole
	poleMassLength := cpMassPole * cpLength
	temp := (force + poleMassLength*c.thetaDot*c.thetaDot*sinT) / totalMass
	thetaAcc := (cpGravity*sinT - cosT*temp) /
		(cpLength * (4.0/3.0 - cpMassPole*cosT*cosT/totalMass))
	xAcc := temp - poleMassLength*thetaAcc*cosT/totalMass

	c.x += cpTau * c.xDot
	c.xDot += cpTau * xAcc
	c.theta += cpTau * c.thetaDot
	c.thetaDot += cpTau * thetaAcc
	c.steps++

	maxSteps := c.MaxSteps
	if maxSteps == 0 {
		maxSteps = 500
	}
	done := math.Abs(c.x) > cpXFail || math.Abs(c.theta) > cpThetaFail || c.steps >= maxSteps
	return c.state(), 1, done
}

// Chase is a dense-reward 1-D tracking task: the agent moves a point along
// [−1, 1] toward a randomly placed target. Reward is the negative distance
// to the target each step; the episode ends after MaxSteps or on capture
// (distance < 0.05). Its value function is smooth, making it the
// reliable convergence benchmark for the Q-learner's tests.
type Chase struct {
	// MaxSteps caps episode length (default 60).
	MaxSteps int

	pos, target float64
	steps       int
}

// Name implements Environment.
func (c *Chase) Name() string { return "chase" }

// StateDim implements Environment (agent position and target position).
func (c *Chase) StateDim() int { return 2 }

// NumActions implements Environment (move left, stay, move right).
func (c *Chase) NumActions() int { return 3 }

// Reset implements Environment.
func (c *Chase) Reset(rng *rand.Rand) []float64 {
	c.pos = rng.Float64()*2 - 1
	c.target = rng.Float64()*2 - 1
	c.steps = 0
	return []float64{c.pos, c.target}
}

// Step implements Environment.
func (c *Chase) Step(action int) ([]float64, float64, bool) {
	const speed = 0.1
	switch action {
	case 0:
		c.pos -= speed
	case 2:
		c.pos += speed
	}
	if c.pos > 1 {
		c.pos = 1
	}
	if c.pos < -1 {
		c.pos = -1
	}
	c.steps++
	dist := math.Abs(c.pos - c.target)
	maxSteps := c.MaxSteps
	if maxSteps == 0 {
		maxSteps = 60
	}
	done := dist < 0.05 || c.steps >= maxSteps
	return []float64{c.pos, c.target}, -dist, done
}

// validateEnv sanity-checks an Environment implementation for the agent.
func validateEnv(env Environment) error {
	if env == nil {
		return fmt.Errorf("rl: nil environment")
	}
	if env.StateDim() <= 0 {
		return fmt.Errorf("rl: %s has non-positive state dimension", env.Name())
	}
	if env.NumActions() < 2 {
		return fmt.Errorf("rl: %s needs at least 2 actions", env.Name())
	}
	return nil
}
