package learner

import (
	"errors"
	"testing"

	"reghd/internal/dataset"
)

// constant is a trivial Regressor for testing the helpers.
type constant struct {
	v    float64
	fail bool
}

func (c constant) Name() string               { return "const" }
func (c constant) Fit(*dataset.Dataset) error { return nil }
func (c constant) Predict([]float64) (float64, error) {
	if c.fail {
		return 0, errors.New("boom")
	}
	return c.v, nil
}

func TestPredictBatch(t *testing.T) {
	out, err := PredictBatch(constant{v: 3}, [][]float64{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != 3 || out[1] != 3 {
		t.Fatalf("PredictBatch = %v", out)
	}
}

func TestPredictBatchError(t *testing.T) {
	if _, err := PredictBatch(constant{fail: true}, [][]float64{{1}}); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestMSEHelper(t *testing.T) {
	d := &dataset.Dataset{X: [][]float64{{1}, {2}}, Y: []float64{3, 5}}
	mse, err := MSE(constant{v: 4}, d)
	if err != nil {
		t.Fatal(err)
	}
	if mse != 1 {
		t.Fatalf("MSE = %v, want 1", mse)
	}
}
