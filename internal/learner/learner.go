// Package learner defines the minimal contract shared by every regression
// baseline in the evaluation, plus evaluation helpers. It lets the
// experiment harness treat RegHD, the DNN, and the classical baselines
// uniformly when regenerating Table 1.
package learner

import (
	"fmt"

	"reghd/internal/dataset"
)

// Regressor is a supervised scalar regressor.
type Regressor interface {
	// Name identifies the learner in reports.
	Name() string
	// Fit trains on the dataset, replacing any previous state.
	Fit(train *dataset.Dataset) error
	// Predict returns the regression output for one feature vector.
	Predict(x []float64) (float64, error)
}

// PredictBatch runs r.Predict over every row of xs.
func PredictBatch(r Regressor, xs [][]float64) ([]float64, error) {
	out := make([]float64, len(xs))
	for i, x := range xs {
		y, err := r.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("learner %s: row %d: %w", r.Name(), i, err)
		}
		out[i] = y
	}
	return out, nil
}

// MSE evaluates r on d and returns the mean squared error.
func MSE(r Regressor, d *dataset.Dataset) (float64, error) {
	pred, err := PredictBatch(r, d.X)
	if err != nil {
		return 0, err
	}
	return dataset.MSE(pred, d.Y)
}
