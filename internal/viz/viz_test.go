package viz

import (
	"math"
	"strings"
	"testing"
)

func TestBarBasics(t *testing.T) {
	out := Bar([]string{"a", "bb"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	// The max value fills the width; the half value fills half.
	if !strings.Contains(lines[1], strings.Repeat("█", 10)) {
		t.Fatalf("max bar not full:\n%s", out)
	}
	if !strings.Contains(lines[0], strings.Repeat("█", 5)) {
		t.Fatalf("half bar wrong:\n%s", out)
	}
	// Labels aligned.
	if !strings.HasPrefix(lines[0], "a ") || !strings.HasPrefix(lines[1], "bb") {
		t.Fatalf("labels misaligned:\n%s", out)
	}
}

func TestBarEdgeCases(t *testing.T) {
	if Bar(nil, nil, 10) != "" {
		t.Fatal("empty input should render nothing")
	}
	if Bar([]string{"a"}, []float64{1, 2}, 10) != "" {
		t.Fatal("mismatched lengths should render nothing")
	}
	if Bar([]string{"a"}, []float64{-1}, 10) != "" {
		t.Fatal("negative value should render nothing")
	}
	if Bar([]string{"a"}, []float64{math.NaN()}, 10) != "" {
		t.Fatal("NaN should render nothing")
	}
	// All-zero values must not divide by zero.
	out := Bar([]string{"a"}, []float64{0}, 10)
	if out == "" || strings.Contains(out, "█") {
		t.Fatalf("zero bar wrong: %q", out)
	}
}

func TestLineBasics(t *testing.T) {
	ys := []float64{10, 8, 6, 4, 2, 0}
	out := Line(ys, 20, 5)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d rows", len(lines))
	}
	// Monotone decreasing series: the first column's mark is in the top
	// row, the last column's in the bottom row.
	if !strings.Contains(lines[0], "*") || lines[0][9] != '*' {
		t.Fatalf("top-left mark missing:\n%s", out)
	}
	last := lines[len(lines)-1]
	if last[len(last)-1] != '*' {
		t.Fatalf("bottom-right mark missing:\n%s", out)
	}
	// Axis labels carry the extremes.
	if !strings.Contains(lines[0], "10") || !strings.Contains(last, "0") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
}

func TestLineEdgeCases(t *testing.T) {
	if Line([]float64{1}, 10, 5) != "" {
		t.Fatal("single point should render nothing")
	}
	if Line([]float64{1, math.Inf(1)}, 10, 5) != "" {
		t.Fatal("infinite value should render nothing")
	}
	// Constant series must not divide by zero.
	out := Line([]float64{3, 3, 3}, 10, 4)
	if out == "" || !strings.Contains(out, "*") {
		t.Fatalf("constant series wrong: %q", out)
	}
}

func TestBarDeterministic(t *testing.T) {
	a := Bar([]string{"x", "y"}, []float64{3, 7}, 15)
	b := Bar([]string{"x", "y"}, []float64{3, 7}, 15)
	if a != b {
		t.Fatal("Bar not deterministic")
	}
}
