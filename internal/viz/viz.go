// Package viz renders terminal charts for the experiment harness, so the
// paper's *figures* come back as figures: horizontal bar charts for the
// comparison plots (Figs. 6–9) and line plots for the curves (Fig. 3a).
// Pure text, deterministic, no dependencies.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Bar renders a horizontal bar chart: one row per label, bars scaled to
// width characters against the maximum value. Values must be non-negative.
func Bar(labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(labels) == 0 || width < 1 {
		return ""
	}
	maxLabel, maxVal := 0, 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if values[i] < 0 || math.IsNaN(values[i]) || math.IsInf(values[i], 0) {
			return ""
		}
		if values[i] > maxVal {
			maxVal = values[i]
		}
	}
	//lint:ignore floatcmp degenerate all-zero range guard for the plot scale
	if maxVal == 0 {
		maxVal = 1
	}
	var b strings.Builder
	for i, l := range labels {
		n := int(math.Round(values[i] / maxVal * float64(width)))
		fmt.Fprintf(&b, "%-*s |%s%s %.3g\n", maxLabel, l,
			strings.Repeat("█", n), strings.Repeat(" ", width-n), values[i])
	}
	return b.String()
}

// Line renders a y-vs-index line plot on a width×height character canvas
// with a left axis carrying the min/max values.
func Line(ys []float64, width, height int) string {
	if len(ys) < 2 || width < 2 || height < 2 {
		return ""
	}
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			return ""
		}
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	//lint:ignore floatcmp degenerate flat-range guard for the plot scale
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c := 0; c < width; c++ {
		// Sample the series at this column.
		pos := float64(c) / float64(width-1) * float64(len(ys)-1)
		i := int(pos)
		frac := pos - float64(i)
		y := ys[i]
		if i+1 < len(ys) {
			y = ys[i]*(1-frac) + ys[i+1]*frac
		}
		row := int(math.Round((hi - y) / (hi - lo) * float64(height-1)))
		grid[row][c] = '*'
	}
	var b strings.Builder
	for r, row := range grid {
		prefix := "        "
		switch r {
		case 0:
			prefix = fmt.Sprintf("%7.3g ", hi)
		case height - 1:
			prefix = fmt.Sprintf("%7.3g ", lo)
		}
		fmt.Fprintf(&b, "%s|%s\n", prefix, string(row))
	}
	return b.String()
}
