package hwsim

import (
	"fmt"

	"reghd/internal/core"
)

// Resources allocates hardware units to the accelerator: how many parallel
// lanes each pipeline stage receives. On an FPGA these correspond to DSP
// slices (MACs), BRAM ports (trig lookup tables), LUT comparators
// (quantization), popcount trees, and adder trees.
type Resources struct {
	// MACLanes is the number of multiply-accumulate lanes for the feature
	// projection (n·D MACs per query).
	MACLanes int
	// TrigLUTs is the number of parallel trig-lookup ports (D lookups).
	TrigLUTs int
	// PackLanes is the number of comparators for sign quantization and
	// bit packing (D comparisons).
	PackLanes int
	// SimUnits is the number of similarity engines working on different
	// clusters concurrently.
	SimUnits int
	// PopcountTrees is the number of 64-bit popcount trees inside each
	// similarity/dot engine (Hamming kernels).
	PopcountTrees int
	// DotLanes is the number of adder lanes inside each dot-product engine
	// (dense kernels).
	DotLanes int
	// SoftmaxCycles is the fixed latency of the normalization block.
	SoftmaxCycles int
}

// DefaultResources is a mid-sized FPGA allocation.
func DefaultResources() Resources {
	return Resources{
		MACLanes:      128,
		TrigLUTs:      64,
		PackLanes:     256,
		SimUnits:      4,
		PopcountTrees: 8,
		DotLanes:      128,
		SoftmaxCycles: 16,
	}
}

// Validate rejects non-positive allocations.
func (r Resources) Validate() error {
	if r.MACLanes < 1 || r.TrigLUTs < 1 || r.PackLanes < 1 || r.SimUnits < 1 ||
		r.PopcountTrees < 1 || r.DotLanes < 1 || r.SoftmaxCycles < 1 {
		return fmt.Errorf("hwsim: all resource allocations must be positive: %+v", r)
	}
	return nil
}

// Design is the RegHD configuration the accelerator implements.
type Design struct {
	// Dim, Models, Features shape the model.
	Dim, Models, Features int
	// ClusterMode and PredictMode select the similarity and prediction
	// kernels.
	ClusterMode core.ClusterMode
	PredictMode core.PredictMode
}

// Validate rejects malformed designs.
func (d Design) Validate() error {
	if d.Dim < 1 || d.Models < 1 || d.Features < 1 {
		return fmt.Errorf("hwsim: design must have positive shape: %+v", d)
	}
	return nil
}

// ceilDiv returns ⌈a/b⌉ for positive b, minimum 1.
func ceilDiv(a, b int) int {
	if a <= 0 {
		return 1
	}
	c := (a + b - 1) / b
	if c < 1 {
		return 1
	}
	return c
}

// BuildInference assembles the inference pipeline for a design on the
// given resources. Stages:
//
//	project → trig → pack → similarity → softmax → dot → accumulate
//
// Single-model designs skip the similarity and softmax stages.
func BuildInference(d Design, r Resources) (*Pipeline, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	words := ceilDiv(d.Dim, 64)

	stages := []*Stage{
		{Name: "project", Cycles: ceilDiv(d.Features*d.Dim, r.MACLanes)},
		{Name: "trig", Cycles: ceilDiv(d.Dim, r.TrigLUTs)},
		{Name: "pack", Cycles: ceilDiv(d.Dim, r.PackLanes)},
	}
	if d.Models > 1 {
		// Similarity of one cluster, times the cluster batches per engine.
		var perCluster int
		if d.ClusterMode == core.ClusterInteger {
			perCluster = ceilDiv(3*d.Dim, r.DotLanes) // dot + two norms
		} else {
			perCluster = ceilDiv(words, r.PopcountTrees)
		}
		stages = append(stages,
			&Stage{Name: "similarity", Cycles: perCluster * ceilDiv(d.Models, r.SimUnits)},
			&Stage{Name: "softmax", Cycles: r.SoftmaxCycles},
		)
	}
	var perModel int
	switch d.PredictMode {
	case core.PredictBinaryBoth:
		perModel = ceilDiv(words, r.PopcountTrees)
	default: // dense dot (full precision or add-only)
		perModel = ceilDiv(d.Dim, r.DotLanes)
	}
	stages = append(stages,
		&Stage{Name: "dot", Cycles: perModel * ceilDiv(d.Models, r.SimUnits)},
		&Stage{Name: "accumulate", Cycles: ceilDiv(d.Models, r.DotLanes)},
	)
	return NewPipeline(stages...)
}

// SimulateInference builds the pipeline and streams the queries through it.
func SimulateInference(d Design, r Resources, queries int) (Trace, error) {
	p, err := BuildInference(d, r)
	if err != nil {
		return Trace{}, err
	}
	return p.Run(queries)
}

// BuildTraining assembles the training pipeline: the inference front end
// (the training prediction that produces the error) followed by the
// confidence-weighted model update and the cluster update, both of which
// run on the integer state and therefore on the dense adder lanes
// regardless of the deployment quantization (§3.2).
func BuildTraining(d Design, r Resources) (*Pipeline, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	words := ceilDiv(d.Dim, 64)
	stages := []*Stage{
		{Name: "project", Cycles: ceilDiv(d.Features*d.Dim, r.MACLanes)},
		{Name: "trig", Cycles: ceilDiv(d.Dim, r.TrigLUTs)},
		{Name: "pack", Cycles: ceilDiv(d.Dim, r.PackLanes)},
	}
	if d.Models > 1 {
		var perCluster int
		if d.ClusterMode == core.ClusterInteger {
			perCluster = ceilDiv(3*d.Dim, r.DotLanes)
		} else {
			perCluster = ceilDiv(words, r.PopcountTrees)
		}
		stages = append(stages,
			&Stage{Name: "similarity", Cycles: perCluster * ceilDiv(d.Models, r.SimUnits)},
			&Stage{Name: "softmax", Cycles: r.SoftmaxCycles},
		)
	}
	// Training prediction always reads the integer models (dense dot).
	stages = append(stages,
		&Stage{Name: "dot", Cycles: ceilDiv(d.Dim, r.DotLanes) * ceilDiv(d.Models, r.SimUnits)},
		// Weighted update: one dense AXPY per model.
		&Stage{Name: "update", Cycles: ceilDiv(d.Dim, r.DotLanes) * ceilDiv(d.Models, r.SimUnits)},
	)
	if d.Models > 1 {
		stages = append(stages, &Stage{Name: "clusterupd", Cycles: ceilDiv(d.Dim, r.DotLanes)})
	}
	return NewPipeline(stages...)
}

// SimulateTraining streams `samples` training samples through the training
// pipeline (one pipeline pass per sample; epochs multiply samples).
func SimulateTraining(d Design, r Resources, samples int) (Trace, error) {
	p, err := BuildTraining(d, r)
	if err != nil {
		return Trace{}, err
	}
	return p.Run(samples)
}
