// Package hwsim is a cycle-level simulator of a pipelined hyperdimensional
// inference accelerator, the kind of design the paper's FPGA evaluation
// implements and its related work ([16], [17], [26], [42]) accelerates.
//
// Where package hwmodel prices a workload analytically (Σ ops/issue-width),
// hwsim *executes* the datapath: queries stream through the accelerator's
// stages — feature projection, trigonometric lookup, quantization/packing,
// similarity search, confidence normalization, model dot products, and
// weighted accumulation — each stage a hardware unit with its own latency
// determined by the allocated resources. The simulation advances cycle by
// cycle with single-entry skid buffers between stages, reproducing real
// pipeline behaviour: fill latency, steady-state throughput set by the
// bottleneck stage, and back-pressure stalls upstream of it. The simulator
// cross-validates the analytic model (they must agree on steady-state
// throughput) and answers the design questions the analytic model cannot:
// which unit to widen next, and what utilization each unit sees.
package hwsim

import (
	"fmt"
	"strings"
)

// Stage is one hardware unit in the pipeline: it occupies a query for
// Cycles cycles and then hands it to the next stage when that stage's
// input buffer is free.
type Stage struct {
	// Name identifies the unit in traces.
	Name string
	// Cycles is the unit's occupancy per query (≥ 1).
	Cycles int

	// simulation state
	busy      int  // remaining cycles for the occupant
	occupied  bool // a query is in the unit
	done      bool // the occupant finished and waits for the next buffer
	busyTotal int  // cycles spent processing (for utilization)
}

// Pipeline is an in-order chain of stages.
type Pipeline struct {
	stages []*Stage
}

// NewPipeline validates and assembles the stages.
func NewPipeline(stages ...*Stage) (*Pipeline, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("hwsim: pipeline needs at least one stage")
	}
	for i, s := range stages {
		if s == nil {
			return nil, fmt.Errorf("hwsim: stage %d is nil", i)
		}
		if s.Name == "" {
			return nil, fmt.Errorf("hwsim: stage %d has no name", i)
		}
		if s.Cycles < 1 {
			return nil, fmt.Errorf("hwsim: stage %q has non-positive latency %d", s.Name, s.Cycles)
		}
	}
	return &Pipeline{stages: stages}, nil
}

// Stages returns the stage names in order.
func (p *Pipeline) Stages() []string {
	names := make([]string, len(p.stages))
	for i, s := range p.stages {
		names[i] = s.Name
	}
	return names
}

// Trace is the outcome of a simulation run.
type Trace struct {
	// Queries is the number of queries pushed through.
	Queries int
	// TotalCycles is the makespan.
	TotalCycles int
	// FirstOutCycle is the cycle at which the first query completed
	// (pipeline fill latency).
	FirstOutCycle int
	// StageOrder lists the stages in pipeline order.
	StageOrder []string
	// Utilization maps stage name to busy-fraction over the run.
	Utilization map[string]float64
	// Bottleneck is the stage with the largest per-query occupancy.
	Bottleneck string
	// BottleneckCycles is that stage's per-query occupancy.
	BottleneckCycles int
}

// ThroughputCyclesPerQuery is the steady-state cost per query.
func (t Trace) ThroughputCyclesPerQuery() float64 {
	if t.Queries == 0 {
		return 0
	}
	return float64(t.TotalCycles) / float64(t.Queries)
}

// Run streams the given number of queries through the pipeline and returns
// the trace. The model: each stage holds at most one query; a finished
// query advances as soon as the next stage is free (single-entry skid
// buffering); a new query enters stage 0 whenever it is free.
func (p *Pipeline) Run(queries int) (Trace, error) {
	if queries <= 0 {
		return Trace{}, fmt.Errorf("hwsim: queries must be positive, got %d", queries)
	}
	// Reset state.
	for _, s := range p.stages {
		s.busy = 0
		s.occupied = false
		s.done = false
		s.busyTotal = 0
	}
	injected, completed := 0, 0
	cycle := 0
	firstOut := 0
	// Guard against deadlock bugs: the run cannot legally exceed
	// queries × Σ latencies + fill.
	var worst int
	for _, s := range p.stages {
		worst += s.Cycles
	}
	limit := worst * (queries + len(p.stages) + 1)

	for completed < queries {
		if cycle > limit {
			return Trace{}, fmt.Errorf("hwsim: simulation exceeded %d cycles — pipeline deadlock", limit)
		}
		cycle++
		// Issue a fresh query at the cycle's start when the head is free;
		// it begins working this very cycle.
		if head := p.stages[0]; injected < queries && !head.occupied {
			head.occupied = true
			head.busy = head.Cycles
			head.done = false
			injected++
		}
		// Advance occupants (downstream first so handoffs land in stages
		// already visited this cycle, starting work next cycle — a
		// registered pipeline).
		for i := len(p.stages) - 1; i >= 0; i-- {
			s := p.stages[i]
			if s.occupied && !s.done {
				s.busy--
				s.busyTotal++
				if s.busy == 0 {
					s.done = true
				}
			}
			if s.occupied && s.done {
				if i == len(p.stages)-1 {
					s.occupied = false
					s.done = false
					completed++
					if completed == 1 {
						firstOut = cycle
					}
				} else if next := p.stages[i+1]; !next.occupied {
					s.occupied = false
					s.done = false
					next.occupied = true
					next.busy = next.Cycles
					next.done = false
				}
			}
		}
	}

	tr := Trace{
		Queries:       queries,
		TotalCycles:   cycle,
		FirstOutCycle: firstOut,
		StageOrder:    p.Stages(),
		Utilization:   make(map[string]float64, len(p.stages)),
	}
	for _, s := range p.stages {
		tr.Utilization[s.Name] = float64(s.busyTotal) / float64(cycle)
		if s.Cycles > tr.BottleneckCycles {
			tr.Bottleneck = s.Name
			tr.BottleneckCycles = s.Cycles
		}
	}
	return tr, nil
}

// Render prints the trace as a report.
func (t Trace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d queries in %d cycles (%.1f cycles/query steady-state, fill %d)\n",
		t.Queries, t.TotalCycles, t.ThroughputCyclesPerQuery(), t.FirstOutCycle)
	fmt.Fprintf(&b, "bottleneck: %s (%d cycles/query)\n", t.Bottleneck, t.BottleneckCycles)
	for _, name := range t.StageOrder {
		fmt.Fprintf(&b, "  %-12s %5.1f%% busy\n", name, t.Utilization[name]*100)
	}
	return b.String()
}
