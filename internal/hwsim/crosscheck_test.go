package hwsim

import (
	"testing"

	"reghd/internal/core"
	"reghd/internal/hwmodel"
)

// TestSimulatorMatchesAnalyticModel ties the cycle-level simulator to the
// analytical cost model: for the same design and comparable resource
// allocations, the analytic per-query cycle count (which serializes all
// operation classes) must bound the simulator's steady-state throughput
// from above, and the two must agree within the pipelining factor (the
// number of overlapping stages).
func TestSimulatorMatchesAnalyticModel(t *testing.T) {
	design := Design{
		Dim: 4096, Models: 8, Features: 10,
		ClusterMode: core.ClusterBinary, PredictMode: core.PredictBinaryQuery,
	}
	profile := hwmodel.FPGA()
	// Mirror the profile's issue widths into simulator resources.
	res := Resources{
		MACLanes:      128, // profile float-mul width
		TrigLUTs:      64,  // profile exp width
		PackLanes:     256, // profile cmp width
		SimUnits:      8,
		PopcountTrees: 32,
		DotLanes:      128, // profile float-add width
		SoftmaxCycles: 16,
	}

	w := hwmodel.RegHDWorkload{
		Dim: design.Dim, Models: design.Models, Features: design.Features,
		TrainSamples: 1, Epochs: 1,
		ClusterMode: design.ClusterMode, PredictMode: design.PredictMode,
	}
	const queries = 500
	counts, err := w.InferCounts(queries)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := hwmodel.Estimate(counts, profile)
	if err != nil {
		t.Fatal(err)
	}
	analyticCycles := cost.Seconds * profile.ClockHz / queries

	tr, err := SimulateInference(design, res, queries)
	if err != nil {
		t.Fatal(err)
	}
	simCycles := tr.ThroughputCyclesPerQuery()

	// The simulator overlaps stages, so it must not be slower than the
	// serialized analytic estimate by more than bookkeeping noise…
	if simCycles > analyticCycles*1.5 {
		t.Fatalf("simulator %v cycles/query much slower than analytic %v", simCycles, analyticCycles)
	}
	// …and cannot be faster than perfect overlap of the pipeline depth.
	depth := float64(len(tr.StageOrder))
	if simCycles < analyticCycles/depth/1.5 {
		t.Fatalf("simulator %v cycles/query implausibly faster than analytic %v / depth %v", simCycles, analyticCycles, depth)
	}
}
