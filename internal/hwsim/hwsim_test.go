package hwsim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"reghd/internal/core"
)

func TestNewPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	if _, err := NewPipeline(nil); err == nil {
		t.Fatal("nil stage accepted")
	}
	if _, err := NewPipeline(&Stage{Name: "", Cycles: 1}); err == nil {
		t.Fatal("unnamed stage accepted")
	}
	if _, err := NewPipeline(&Stage{Name: "x", Cycles: 0}); err == nil {
		t.Fatal("zero-latency stage accepted")
	}
}

func TestRunValidation(t *testing.T) {
	p, _ := NewPipeline(&Stage{Name: "a", Cycles: 1})
	if _, err := p.Run(0); err == nil {
		t.Fatal("zero queries accepted")
	}
}

func TestSingleStageLaw(t *testing.T) {
	p, _ := NewPipeline(&Stage{Name: "only", Cycles: 5})
	tr, err := p.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalCycles != 50 {
		t.Fatalf("10 queries × 5 cycles = %d, want 50", tr.TotalCycles)
	}
	if tr.FirstOutCycle != 5 {
		t.Fatalf("fill = %d, want 5", tr.FirstOutCycle)
	}
	if tr.Utilization["only"] != 1 {
		t.Fatalf("single stage utilization %v, want 1", tr.Utilization["only"])
	}
}

// TestPipelineMakespanLaw checks the classic law for in-order pipelines
// with single buffering: makespan = Σ latencies + (N−1)·max latency.
func TestPipelineMakespanLaw(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nStages := rng.Intn(5) + 1
		stages := make([]*Stage, nStages)
		sum, maxL := 0, 0
		for i := range stages {
			l := rng.Intn(9) + 1
			stages[i] = &Stage{Name: string(rune('a' + i)), Cycles: l}
			sum += l
			if l > maxL {
				maxL = l
			}
		}
		n := rng.Intn(20) + 1
		p, err := NewPipeline(stages...)
		if err != nil {
			return false
		}
		tr, err := p.Run(n)
		if err != nil {
			return false
		}
		return tr.TotalCycles == sum+(n-1)*maxL
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFillLatencyIsSumOfLatencies(t *testing.T) {
	p, _ := NewPipeline(
		&Stage{Name: "a", Cycles: 2},
		&Stage{Name: "b", Cycles: 7},
		&Stage{Name: "c", Cycles: 3},
	)
	tr, err := p.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if tr.FirstOutCycle != 12 {
		t.Fatalf("fill = %d, want 12", tr.FirstOutCycle)
	}
	if tr.Bottleneck != "b" || tr.BottleneckCycles != 7 {
		t.Fatalf("bottleneck = %s/%d, want b/7", tr.Bottleneck, tr.BottleneckCycles)
	}
}

func TestBottleneckUtilizationApproachesOne(t *testing.T) {
	p, _ := NewPipeline(
		&Stage{Name: "fast", Cycles: 1},
		&Stage{Name: "slow", Cycles: 10},
	)
	tr, err := p.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Utilization["slow"] < 0.99 {
		t.Fatalf("bottleneck utilization %v, want ≈1", tr.Utilization["slow"])
	}
	// The fast stage is rate-limited by back-pressure: ~1/10 busy.
	if u := tr.Utilization["fast"]; u < 0.05 || u > 0.2 {
		t.Fatalf("fast stage utilization %v, want ≈0.1", u)
	}
}

func TestRenderAndAccessors(t *testing.T) {
	p, _ := NewPipeline(&Stage{Name: "a", Cycles: 1}, &Stage{Name: "b", Cycles: 2})
	if got := p.Stages(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("Stages = %v", got)
	}
	tr, _ := p.Run(5)
	out := tr.Render()
	if !strings.Contains(out, "bottleneck: b") || !strings.Contains(out, "cycles/query") {
		t.Fatalf("render incomplete:\n%s", out)
	}
	if tr.ThroughputCyclesPerQuery() <= 0 {
		t.Fatal("throughput not positive")
	}
	if (Trace{}).ThroughputCyclesPerQuery() != 0 {
		t.Fatal("empty trace throughput should be 0")
	}
}

func TestResourcesDesignValidation(t *testing.T) {
	if err := (Resources{}).Validate(); err == nil {
		t.Fatal("zero resources accepted")
	}
	if err := DefaultResources().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Design{}).Validate(); err != nil {
		// zero design must be rejected
	} else {
		t.Fatal("zero design accepted")
	}
	if _, err := BuildInference(Design{}, DefaultResources()); err == nil {
		t.Fatal("bad design accepted")
	}
	if _, err := BuildInference(Design{Dim: 100, Models: 1, Features: 2}, Resources{}); err == nil {
		t.Fatal("bad resources accepted")
	}
}

func TestSingleModelSkipsSimilarity(t *testing.T) {
	d := Design{Dim: 1024, Models: 1, Features: 8}
	p, err := BuildInference(d, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Stages() {
		if s == "similarity" || s == "softmax" {
			t.Fatal("single-model pipeline should not search clusters")
		}
	}
	d.Models = 8
	p, _ = BuildInference(d, DefaultResources())
	found := false
	for _, s := range p.Stages() {
		if s == "similarity" {
			found = true
		}
	}
	if !found {
		t.Fatal("multi-model pipeline missing similarity stage")
	}
}

func TestQuantizedSimilarityFaster(t *testing.T) {
	res := DefaultResources()
	intD := Design{Dim: 4096, Models: 8, Features: 10, ClusterMode: core.ClusterInteger, PredictMode: core.PredictBinaryQuery}
	binD := intD
	binD.ClusterMode = core.ClusterBinary
	ti, err := SimulateInference(intD, res, 200)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := SimulateInference(binD, res, 200)
	if err != nil {
		t.Fatal(err)
	}
	if tb.TotalCycles >= ti.TotalCycles {
		t.Fatalf("Hamming similarity should be faster: %d vs %d cycles", tb.TotalCycles, ti.TotalCycles)
	}
}

func TestFullyBinaryFastestDot(t *testing.T) {
	res := DefaultResources()
	base := Design{Dim: 4096, Models: 8, Features: 10, ClusterMode: core.ClusterBinary, PredictMode: core.PredictBinaryQuery}
	bin := base
	bin.PredictMode = core.PredictBinaryBoth
	tDense, _ := SimulateInference(base, res, 200)
	tBin, _ := SimulateInference(bin, res, 200)
	if tBin.TotalCycles > tDense.TotalCycles {
		t.Fatalf("popcount dot should not be slower: %d vs %d", tBin.TotalCycles, tDense.TotalCycles)
	}
}

func TestWideningBottleneckHelps(t *testing.T) {
	d := Design{Dim: 4096, Models: 8, Features: 10, ClusterMode: core.ClusterBinary, PredictMode: core.PredictBinaryQuery}
	res := DefaultResources()
	base, err := SimulateInference(d, res, 200)
	if err != nil {
		t.Fatal(err)
	}
	// The projection stage (n·D MACs over 128 lanes = 320 cycles) is the
	// bottleneck at these defaults.
	if base.Bottleneck != "project" {
		t.Fatalf("expected projection bottleneck, got %s", base.Bottleneck)
	}
	wide := res
	wide.MACLanes *= 4
	faster, err := SimulateInference(d, wide, 200)
	if err != nil {
		t.Fatal(err)
	}
	if faster.TotalCycles >= base.TotalCycles {
		t.Fatal("widening the bottleneck did not improve the makespan")
	}
	// Widening a non-bottleneck unit must not change steady-state
	// throughput (it only trims fill latency at most).
	idle := res
	idle.PackLanes *= 4
	same, err := SimulateInference(d, idle, 200)
	if err != nil {
		t.Fatal(err)
	}
	if same.BottleneckCycles != base.BottleneckCycles {
		t.Fatal("widening a non-bottleneck changed the bottleneck latency")
	}
}

func TestDimScalesThroughput(t *testing.T) {
	res := DefaultResources()
	mk := func(dim int) float64 {
		d := Design{Dim: dim, Models: 8, Features: 10, ClusterMode: core.ClusterBinary, PredictMode: core.PredictBinaryQuery}
		tr, err := SimulateInference(d, res, 300)
		if err != nil {
			t.Fatal(err)
		}
		return tr.ThroughputCyclesPerQuery()
	}
	big, small := mk(4096), mk(1024)
	ratio := big / small
	if ratio < 3 || ratio > 5 {
		t.Fatalf("4k/1k cycles-per-query ratio %v, want ≈4 (Table 2's linear scaling)", ratio)
	}
}

func TestDeadlockGuard(t *testing.T) {
	// The guard cannot trigger with a well-formed pipeline; exercise the
	// limit arithmetic with a long run instead.
	p, _ := NewPipeline(&Stage{Name: "a", Cycles: 3}, &Stage{Name: "b", Cycles: 2})
	if _, err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
}

func TestTrainingPipeline(t *testing.T) {
	res := DefaultResources()
	d := Design{Dim: 4096, Models: 8, Features: 10, ClusterMode: core.ClusterBinary, PredictMode: core.PredictBinaryQuery}
	train, err := SimulateTraining(d, res, 200)
	if err != nil {
		t.Fatal(err)
	}
	infer, err := SimulateInference(d, res, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Training adds the update stages, so a sample cannot be cheaper than a
	// query in fill latency.
	if train.FirstOutCycle <= infer.FirstOutCycle {
		t.Fatalf("training fill %d not beyond inference fill %d", train.FirstOutCycle, infer.FirstOutCycle)
	}
	found := false
	for _, s := range train.StageOrder {
		if s == "update" {
			found = true
		}
	}
	if !found {
		t.Fatal("training pipeline missing update stage")
	}
	// Single-model training skips the cluster machinery.
	single := d
	single.Models = 1
	p, err := BuildTraining(single, res)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Stages() {
		if s == "similarity" || s == "clusterupd" {
			t.Fatal("single-model training should not have cluster stages")
		}
	}
	if _, err := SimulateTraining(Design{}, res, 10); err == nil {
		t.Fatal("bad design accepted")
	}
	if _, err := BuildTraining(d, Resources{}); err == nil {
		t.Fatal("bad resources accepted")
	}
}

func TestQuantizedClusteringSpeedsTraining(t *testing.T) {
	res := DefaultResources()
	intD := Design{Dim: 4096, Models: 8, Features: 10, ClusterMode: core.ClusterInteger, PredictMode: core.PredictBinaryQuery}
	binD := intD
	binD.ClusterMode = core.ClusterBinary
	ti, err := SimulateTraining(intD, res, 300)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := SimulateTraining(binD, res, 300)
	if err != nil {
		t.Fatal(err)
	}
	if tb.TotalCycles >= ti.TotalCycles {
		t.Fatalf("quantized clustering should speed training: %d vs %d", tb.TotalCycles, ti.TotalCycles)
	}
}
