package baselinehd

import (
	"math"
	"math/rand"
	"testing"

	"reghd/internal/dataset"
	"reghd/internal/encoding"
	"reghd/internal/hdc"
	"reghd/internal/learner"
)

var _ learner.Regressor = (*Model)(nil)

func makeSinusoid(rng *rand.Rand, n int, noise float64) *dataset.Dataset {
	d := &dataset.Dataset{Name: "sin", X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := rng.Float64()*4 - 2
		d.X[i] = []float64{x}
		d.Y[i] = math.Sin(2*x) + 0.5*x + noise*rng.NormFloat64()
	}
	return d
}

func newEnc(t *testing.T, feats, dim int) *encoding.Nonlinear {
	t.Helper()
	e, err := encoding.NewNonlinearBandwidth(rand.New(rand.NewSource(42)), feats, dim, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Fatal("nil encoder accepted")
	}
	e := newEnc(t, 1, 64)
	if _, err := New(e, Config{Bins: 1}); err == nil {
		t.Fatal("single bin accepted")
	}
	if _, err := New(e, Config{Epochs: -1}); err == nil {
		t.Fatal("negative epochs accepted")
	}
}

func TestPredictBeforeFit(t *testing.T) {
	m, _ := New(newEnc(t, 1, 64), DefaultConfig())
	if _, err := m.Predict([]float64{1}); err != ErrNotTrained {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
}

func TestFitRejectsBadData(t *testing.T) {
	m, _ := New(newEnc(t, 2, 64), DefaultConfig())
	if err := m.Fit(&dataset.Dataset{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if err := m.Fit(&dataset.Dataset{X: [][]float64{{1}}, Y: []float64{1}}); err == nil {
		t.Fatal("feature mismatch accepted")
	}
}

func TestLearnsCoarseStructure(t *testing.T) {
	all := makeSinusoid(rand.New(rand.NewSource(1)), 800, 0.02)
	train := all.Subset(seq(0, 600))
	test := all.Subset(seq(600, 800))
	m, _ := New(newEnc(t, 1, 2000), Config{Bins: 32, Epochs: 20, Seed: 2})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	mse, err := learner.MSE(m, test)
	if err != nil {
		t.Fatal(err)
	}
	// Target variance ≈ 0.9: the classifier must capture structure…
	if mse > 0.3 {
		t.Fatalf("baseline-hd MSE %v did not learn", mse)
	}
	// …but cannot beat the binning quantization floor (bin width ≈ 0.09,
	// floor ≈ width²/12 ≈ 7e-4). Check it stays above a native floor.
	if mse < 1e-4 {
		t.Fatalf("baseline-hd MSE %v below the quantization floor — suspicious", mse)
	}
}

func TestPredictionsAreBinCenters(t *testing.T) {
	all := makeSinusoid(rand.New(rand.NewSource(3)), 300, 0.02)
	m, _ := New(newEnc(t, 1, 1000), Config{Bins: 16, Epochs: 10, Seed: 4})
	if err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	centers := map[float64]bool{}
	for b := 0; b < 16; b++ {
		centers[m.binCenter(b)] = true
	}
	for i := 0; i < 50; i++ {
		y, err := m.Predict(all.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if !centers[y] {
			t.Fatalf("prediction %v is not a bin center", y)
		}
	}
}

func TestMoreBinsReduceQuantizationError(t *testing.T) {
	all := makeSinusoid(rand.New(rand.NewSource(5)), 900, 0.01)
	train := all.Subset(seq(0, 700))
	test := all.Subset(seq(700, 900))
	run := func(bins int) float64 {
		m, _ := New(newEnc(t, 1, 2000), Config{Bins: bins, Epochs: 15, Seed: 6})
		if err := m.Fit(train); err != nil {
			t.Fatal(err)
		}
		mse, _ := learner.MSE(m, test)
		return mse
	}
	coarse := run(4)
	fine := run(64)
	if fine >= coarse {
		t.Fatalf("64 bins (%v) should beat 4 bins (%v)", fine, coarse)
	}
}

func TestConstantTargetHandled(t *testing.T) {
	d := &dataset.Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []float64{5, 5, 5}}
	m, _ := New(newEnc(t, 1, 256), Config{Bins: 8, Epochs: 3, Seed: 7})
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	y, err := m.Predict([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-5) > 1 {
		t.Fatalf("constant-target prediction %v, want ≈5", y)
	}
}

func TestBinMapping(t *testing.T) {
	m, _ := New(newEnc(t, 1, 64), Config{Bins: 10, Epochs: 1, Seed: 8})
	m.lo, m.hi = 0, 10
	if m.bin(-5) != 0 || m.bin(99) != 9 {
		t.Fatal("out-of-range targets should clamp")
	}
	if m.bin(5.5) != 5 {
		t.Fatalf("bin(5.5) = %d, want 5", m.bin(5.5))
	}
	if c := m.binCenter(0); c != 0.5 {
		t.Fatalf("binCenter(0) = %v, want 0.5", c)
	}
}

func TestCountersRecordWork(t *testing.T) {
	all := makeSinusoid(rand.New(rand.NewSource(9)), 100, 0.02)
	m, _ := New(newEnc(t, 1, 256), Config{Bins: 8, Epochs: 2, Seed: 10})
	m.TrainCounter = &hdc.Counter{}
	m.InferCounter = &hdc.Counter{}
	if err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	if m.TrainCounter.Total() == 0 {
		t.Fatal("training counted nothing")
	}
	if _, err := m.Predict(all.X[0]); err != nil {
		t.Fatal(err)
	}
	if m.InferCounter.Total() == 0 {
		t.Fatal("inference counted nothing")
	}
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
