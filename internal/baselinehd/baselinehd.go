// Package baselinehd implements the paper's HD baseline (Table 1,
// "Baseline-HD", reference [18]): regression emulated by HD classification.
// The output range is quantized into bins, one class hypervector per bin; a
// query is answered with the center of the most similar bin. Because the
// output is inherently discrete, quality is poor on high-precision
// regression tasks — the motivation for native RegHD.
package baselinehd

import (
	"errors"
	"fmt"
	"math/rand"

	"reghd/internal/dataset"
	"reghd/internal/encoding"
	"reghd/internal/hdc"
)

// Config holds the classifier hyper-parameters.
type Config struct {
	// Bins is the number of output classes (class hypervectors).
	Bins int
	// Epochs caps the perceptron-style retraining passes.
	Epochs int
	// Seed drives the per-epoch shuffling.
	Seed int64
}

// DefaultConfig uses 64 bins, the count the paper describes as "hundreds of
// class hypervectors" scaled to the datasets' precision, with 20 retraining
// passes.
func DefaultConfig() Config {
	return Config{Bins: 64, Epochs: 20, Seed: 1}
}

// Validate fills defaults and rejects invalid settings.
func (c *Config) Validate() error {
	if c.Bins == 0 {
		c.Bins = 64
	}
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.Bins < 2 {
		return fmt.Errorf("baselinehd: need at least 2 bins, got %d", c.Bins)
	}
	if c.Epochs < 0 {
		return errors.New("baselinehd: negative epochs")
	}
	return nil
}

// Model is the trained bin classifier.
type Model struct {
	cfg     Config
	enc     encoding.Encoder
	classes []hdc.Vector // one accumulator hypervector per bin
	lo, hi  float64      // training target range
	rng     *rand.Rand
	trained bool

	// TrainCounter and InferCounter optionally record primitive operations
	// for the hardware cost model.
	TrainCounter *hdc.Counter
	InferCounter *hdc.Counter
}

// New constructs an untrained baseline classifier over the encoder.
func New(enc encoding.Encoder, cfg Config) (*Model, error) {
	if enc == nil {
		return nil, errors.New("baselinehd: nil encoder")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg, enc: enc, rng: rand.New(rand.NewSource(cfg.Seed))}
	m.classes = make([]hdc.Vector, cfg.Bins)
	for i := range m.classes {
		m.classes[i] = hdc.NewVector(enc.Dim())
	}
	return m, nil
}

// Name implements learner.Regressor.
func (m *Model) Name() string { return "baseline-hd" }

// Bins returns the number of output classes.
func (m *Model) Bins() int { return m.cfg.Bins }

// bin maps a target value to its class index, clamping to the range seen
// during training.
func (m *Model) bin(y float64) int {
	if y <= m.lo {
		return 0
	}
	if y >= m.hi {
		return m.cfg.Bins - 1
	}
	b := int(float64(m.cfg.Bins) * (y - m.lo) / (m.hi - m.lo))
	if b >= m.cfg.Bins {
		b = m.cfg.Bins - 1
	}
	return b
}

// binCenter returns the representative output value of class b.
func (m *Model) binCenter(b int) float64 {
	width := (m.hi - m.lo) / float64(m.cfg.Bins)
	return m.lo + (float64(b)+0.5)*width
}

// classify returns the bin whose hypervector is most similar to s.
func (m *Model) classify(ctr *hdc.Counter, s hdc.Vector) int {
	best, bestSim := 0, hdc.Cosine(ctr, s, m.classes[0])
	for i := 1; i < len(m.classes); i++ {
		if sim := hdc.Cosine(ctr, s, m.classes[i]); sim > bestSim {
			best, bestSim = i, sim
		}
	}
	ctr.Add(hdc.OpCmp, uint64(len(m.classes)-1))
	return best
}

// Fit performs single-pass bundling followed by perceptron-style
// retraining: a misclassified sample is added to its true class and
// subtracted from the wrongly predicted class.
func (m *Model) Fit(train *dataset.Dataset) error {
	if err := train.Validate(); err != nil {
		return err
	}
	if train.Features() != m.enc.Features() {
		return fmt.Errorf("baselinehd: dataset has %d features, encoder expects %d", train.Features(), m.enc.Features())
	}
	m.lo, m.hi = train.TargetRange()
	//lint:ignore floatcmp degenerate constant-target guard before the range division
	if m.lo == m.hi {
		m.hi = m.lo + 1 // degenerate constant target
	}
	encoded := make([]hdc.Vector, train.Len())
	for i, x := range train.X {
		s, err := m.enc.EncodeBipolar(m.TrainCounter, x)
		if err != nil {
			return fmt.Errorf("baselinehd: encoding row %d: %w", i, err)
		}
		encoded[i] = s
	}
	// Single-pass bundling.
	for i, s := range encoded {
		hdc.Add(m.TrainCounter, m.classes[m.bin(train.Y[i])], s)
	}
	// Iterative retraining.
	for ep := 0; ep < m.cfg.Epochs; ep++ {
		mistakes := 0
		for _, idx := range m.rng.Perm(len(encoded)) {
			s := encoded[idx]
			want := m.bin(train.Y[idx])
			got := m.classify(m.TrainCounter, s)
			if got != want {
				mistakes++
				hdc.AXPY(m.TrainCounter, m.classes[want], 1, s)
				hdc.AXPY(m.TrainCounter, m.classes[got], -1, s)
			}
		}
		if mistakes == 0 {
			break
		}
	}
	m.trained = true
	return nil
}

// ErrNotTrained is returned by Predict before Fit.
var ErrNotTrained = errors.New("baselinehd: model has not been trained")

// Predict encodes x, finds the most similar class hypervector, and returns
// that bin's center value.
func (m *Model) Predict(x []float64) (float64, error) {
	if !m.trained {
		return 0, ErrNotTrained
	}
	s, err := m.enc.EncodeBipolar(m.InferCounter, x)
	if err != nil {
		return 0, err
	}
	return m.binCenter(m.classify(m.InferCounter, s)), nil
}
