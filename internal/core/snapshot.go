package core

import (
	"context"
	"fmt"

	"reghd/internal/hdc"
)

// Snapshot is an immutable, frozen copy of a model's prediction state:
// clusters, regression models, binary shadows, per-model scales, and the
// output calibration. Every Snapshot method is safe to call from any number
// of goroutines, concurrently with further mutation of the source Model —
// the snapshot deep-copies all learned state, so a streaming writer can
// keep running PartialFit/RefreshShadows/Fit on the live model while
// readers serve from published snapshots (the serving pattern the reghd
// facade's Engine wraps behind an atomic pointer).
//
// The encoder is shared, not copied: encoders are read-only after
// construction (see internal/encoding).
type Snapshot struct {
	params
	trained bool
	scratch *scratchPool

	// counter, when non-nil, aggregates the primitive-operation counts of
	// every prediction served from this snapshot. Kernels count into
	// per-call scratch counters, merged atomically after each call, so
	// op-counting no longer forces single-threaded serving.
	counter *hdc.AtomicCounter

	// stages, when non-nil, accumulates per-stage wall time
	// (encode/similarity/readout) for every prediction served from this
	// snapshot; recording is atomic, so it is safe under unlimited
	// concurrent serving.
	stages *StageTimes
}

// Snapshot returns an immutable copy of the model's current prediction
// state. It must not be called concurrently with model mutation (it reads
// the live state like any prediction); call it from the writer between
// updates, then hand the snapshot to any number of reader goroutines.
func (m *Model) Snapshot() *Snapshot {
	s := &Snapshot{
		params:  m.params,
		trained: m.trained,
		scratch: newScratchPool(m.cfg.Models, m.dim, m.cfg.PredictMode.UsesRawQuery(), m.bufEnc != nil),
	}
	s.clusters = cloneVectors(m.clusters)
	s.clustersBin = cloneBinaries(m.clustersBin)
	s.models = cloneVectors(m.models)
	s.modelsBin = cloneBinaries(m.modelsBin)
	s.modelScale = append([]float64(nil), m.modelScale...)
	if s.clustersBin != nil {
		// Flatten the frozen binary clusters into one contiguous slab so the
		// k-way Hamming search can block clusters without chasing per-vector
		// allocations (see hdc.BinarySet). Only snapshots carry the slab: the
		// live model's clusters keep mutating under training, so it serves
		// through the per-*Binary fallback instead.
		s.clustersSet = hdc.NewBinarySet(s.clustersBin)
	}
	return s
}

func cloneVectors(vs []hdc.Vector) []hdc.Vector {
	if vs == nil {
		return nil
	}
	out := make([]hdc.Vector, len(vs))
	for i, v := range vs {
		out[i] = v.Clone()
	}
	return out
}

func cloneBinaries(bs []*hdc.Binary) []*hdc.Binary {
	if bs == nil {
		return nil
	}
	out := make([]*hdc.Binary, len(bs))
	for i, b := range bs {
		out[i] = b.Clone()
	}
	return out
}

// Trained reports whether the source model had completed training when the
// snapshot was taken.
func (s *Snapshot) Trained() bool { return s.trained }

// SetCounter installs an AtomicCounter that accumulates the primitive
// operations of every prediction served from this snapshot (nil disables
// counting). Install it before sharing the snapshot across goroutines; the
// counter itself may then be read concurrently with serving.
//
//lint:ignore snapshotmut pre-publication install hook: documented to run before the snapshot is shared with readers
func (s *Snapshot) SetCounter(ctr *hdc.AtomicCounter) { s.counter = ctr }

// Counter returns the installed AtomicCounter, or nil.
func (s *Snapshot) Counter() *hdc.AtomicCounter { return s.counter }

// SetStages installs a StageTimes accumulator that receives the per-stage
// wall time (encode / similarity / readout) of every prediction served from
// this snapshot (nil disables stage timing). Like SetCounter, install it
// before sharing the snapshot across goroutines; the accumulator itself may
// then be summarized concurrently with serving. Several snapshots may share
// one accumulator — the serving engine does exactly that across
// republications, so stage totals survive snapshot turnover.
//
//lint:ignore snapshotmut pre-publication install hook: documented to run before the snapshot is shared with readers
func (s *Snapshot) SetStages(st *StageTimes) { s.stages = st }

// Stages returns the installed StageTimes accumulator, or nil.
func (s *Snapshot) Stages() *StageTimes { return s.stages }

// Predict returns the snapshot's regression output for the feature vector
// x. Safe for unlimited concurrent use.
func (s *Snapshot) Predict(x []float64) (float64, error) {
	if !s.trained {
		return 0, ErrNotTrained
	}
	sc := s.scratch.get()
	defer s.scratch.put(sc)
	var ctr *hdc.Counter
	if s.counter != nil {
		sc.ctr.Reset()
		ctr = &sc.ctr
	}
	var y float64
	if st := s.stages; st != nil {
		e, err := s.encodeStaged(ctr, x, sc, st)
		if err != nil {
			return 0, err
		}
		y = s.predictStaged(ctr, e, sc.sims, sc.conf, st)
	} else {
		e, err := s.encodeScratch(ctr, x, sc)
		if err != nil {
			return 0, err
		}
		y = s.predictEncoded(ctr, e, sc.sims, sc.conf)
	}
	s.counter.AddCounter(ctr)
	return y, nil
}

// PredictBatch returns predictions for each row of xs, serially.
func (s *Snapshot) PredictBatch(xs [][]float64) ([]float64, error) {
	out := make([]float64, len(xs))
	for i, x := range xs {
		y, err := s.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("core: predicting row %d: %w", i, err)
		}
		out[i] = y
	}
	return out, nil
}

// PredictBatchParallel predicts every row of xs using the given number of
// worker goroutines (0 means GOMAXPROCS). On error it returns the failure
// with the lowest row index.
func (s *Snapshot) PredictBatchParallel(xs [][]float64, workers int) ([]float64, error) {
	return s.PredictBatchParallelCtx(context.Background(), xs, workers)
}

// PredictBatchParallelCtx is PredictBatchParallel with per-row
// cancellation: workers check ctx before every row, so a deadline or
// cancellation abandons the remaining rows instead of serving a doomed
// batch to completion. The returned error wraps ctx.Err() when the batch
// was cut short.
func (s *Snapshot) PredictBatchParallelCtx(ctx context.Context, xs [][]float64, workers int) ([]float64, error) {
	if !s.trained {
		return nil, ErrNotTrained
	}
	out := make([]float64, len(xs))
	err := forEachRowParallelCtx(ctx, len(xs), workers, func(i int) error {
		y, err := s.Predict(xs[i])
		if err != nil {
			return fmt.Errorf("core: predicting row %d: %w", i, err)
		}
		out[i] = y
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
