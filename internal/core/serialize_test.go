package core

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"single-full", Config{Models: 1, Epochs: 5, Seed: 1}},
		{"multi-binary", Config{Models: 4, Epochs: 5, Seed: 2, ClusterMode: ClusterBinary, PredictMode: PredictBinaryBoth}},
		{"multi-bquery", Config{Models: 3, Epochs: 5, Seed: 3, PredictMode: PredictBinaryQuery}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			all := makeLinear(rand.New(rand.NewSource(7)), 200, 3, 0.05)
			m := newModel(t, 3, 512, tc.cfg)
			if _, err := m.Fit(all); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				want, err := m.Predict(all.X[i])
				if err != nil {
					t.Fatal(err)
				}
				got, err := back.Predict(all.X[i])
				if err != nil {
					t.Fatal(err)
				}
				if want != got {
					t.Fatalf("prediction %d differs after round trip: %v vs %v", i, want, got)
				}
			}
			if back.Models() != m.Models() || back.Dim() != m.Dim() {
				t.Fatal("shape changed after round trip")
			}
		})
	}
}

func TestSaveLoadFile(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(8)), 100, 2, 0.05)
	m := newModel(t, 2, 256, Config{Models: 2, Epochs: 3, Seed: 4})
	if _, err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m.Predict(all.X[0])
	got, _ := back.Predict(all.X[0])
	if want != got {
		t.Fatal("file round trip changed predictions")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadedModelContinuesTraining(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(9)), 300, 3, 0.05)
	m := newModel(t, 3, 512, Config{Models: 1, Epochs: 3, Tol: 1e-12, Patience: 1000, Seed: 5})
	if _, err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	before, _ := m.Evaluate(all)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := back.Fit(all); err != nil {
		t.Fatal(err)
	}
	after, _ := back.Evaluate(all)
	if after >= before {
		t.Fatalf("continued training should improve training MSE: before %v after %v", before, after)
	}
}
