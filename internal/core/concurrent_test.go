package core

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"reghd/internal/hdc"
)

// trainSmall fits a small multi-model configuration for the concurrency
// tests: Models > 1 exercises the similarity/softmax scratch that the
// seed's shared-buffer Predict raced on.
func trainSmall(t *testing.T, cfg Config) (*Model, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	train := makePiecewise(rng, 200, 4, 0.05)
	m := newModel(t, 4, 256, cfg)
	if _, err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	return m, train.X
}

// TestPredictConcurrentScratch hammers Model.Predict from many goroutines
// with nil counters and asserts every result matches the serial answer
// exactly. Against the seed's shared m.sims/m.conf scratch this fails under
// -race (and intermittently corrupts the softmax blend even without it);
// with pooled per-call scratch the documented contract holds.
func TestPredictConcurrentScratch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 5
	m, xs := trainSmall(t, cfg)

	want := make([]float64, len(xs))
	for i, x := range xs {
		y, err := m.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = y
	}

	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w*rounds + r) % len(xs)
				y, err := m.Predict(xs[i])
				if err != nil {
					errCh <- err
					return
				}
				if y != want[i] {
					t.Errorf("concurrent Predict(row %d) = %v, serial = %v", i, y, want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestSnapshotServesDuringPartialFit is the serving stress test: reader
// goroutines predict against a frozen Snapshot while one writer streams
// PartialFit updates and periodically refreshes the binary shadows on the
// live model. Readers must observe finite predictions that are bit-exact
// against the frozen snapshot's pre-computed answers, no matter what the
// writer does.
func TestSnapshotServesDuringPartialFit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 5
	cfg.ClusterMode = ClusterBinary
	cfg.PredictMode = PredictBinaryBoth
	m, xs := trainSmall(t, cfg)

	snap := m.Snapshot()
	frozen, err := snap.PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}

	stream := makePiecewise(rand.New(rand.NewSource(7)), 400, 4, 0.05)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, x := range stream.X {
			if err := m.PartialFit(x, stream.Y[i]); err != nil {
				t.Error(err)
				return
			}
			if i%50 == 49 {
				if err := m.RefreshShadows(nil, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	const readers = 6
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 80; r++ {
				i := (w*80 + r) % len(xs)
				y, err := snap.Predict(xs[i])
				if err != nil {
					t.Error(err)
					return
				}
				if math.IsNaN(y) || math.IsInf(y, 0) {
					t.Errorf("snapshot prediction for row %d not finite: %v", i, y)
					return
				}
				if y != frozen[i] {
					t.Errorf("snapshot prediction for row %d drifted: %v != %v", i, y, frozen[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// A fresh snapshot after the stream picks up the writer's updates and
	// still predicts finite values.
	after, err := m.Snapshot().PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range after {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			t.Fatalf("post-stream prediction for row %d not finite: %v", i, y)
		}
	}
}

// TestSnapshotImmuneToModelMutation corrupts the source model after taking
// a snapshot and checks the snapshot's answers never move.
func TestSnapshotImmuneToModelMutation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 5
	m, xs := trainSmall(t, cfg)
	snap := m.Snapshot()
	before, err := snap.PredictBatch(xs[:20])
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CorruptModelComponents(rand.New(rand.NewSource(3)), 0.5); err != nil {
		t.Fatal(err)
	}
	for i := range xs[:20] {
		if err := m.PartialFit(xs[i], 100); err != nil {
			t.Fatal(err)
		}
	}
	after, err := snap.PredictBatch(xs[:20])
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("snapshot row %d moved after model mutation: %v != %v", i, before[i], after[i])
		}
	}
	// The live model, by contrast, must have moved.
	live, err := m.PredictBatch(xs[:20])
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for i := range live {
		if live[i] != before[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("model predictions unchanged by corruption + PartialFit; mutation test is vacuous")
	}
}

// TestSnapshotCountsOps verifies the atomic counting path: concurrent
// snapshot predictions with an installed AtomicCounter account the same
// total operations as the same predictions counted serially on the model.
func TestSnapshotCountsOps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 3
	m, xs := trainSmall(t, cfg)
	n := 32

	m.InferCounter = &hdc.Counter{}
	if _, err := m.PredictBatch(xs[:n]); err != nil {
		t.Fatal(err)
	}
	want := m.InferCounter.Snapshot()
	m.InferCounter = nil

	snap := m.Snapshot()
	ac := &hdc.AtomicCounter{}
	snap.SetCounter(ac)
	if _, err := snap.PredictBatchParallel(xs[:n], 4); err != nil {
		t.Fatal(err)
	}
	if got := ac.Snapshot(); got != want {
		t.Fatalf("atomic op counts diverge from serial: got %v want %v", got, want)
	}
}

// TestPredictBatchParallelErrorRow plants malformed rows in several worker
// chunks and checks the error reports the lowest failing row index, and
// that per-worker op counters are merged even on the failure path.
func TestPredictBatchParallelErrorRow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 3
	m, xs := trainSmall(t, cfg)

	rows := make([][]float64, 64)
	for i := range rows {
		rows[i] = xs[i%len(xs)]
	}
	bad := []float64{1, 2} // wrong feature count: encoder expects 4
	rows[21] = bad
	rows[55] = bad

	m.InferCounter = &hdc.Counter{}
	_, err := m.PredictBatchParallel(rows, 4)
	if err == nil {
		t.Fatal("malformed rows accepted")
	}
	if !strings.Contains(err.Error(), "row 21") {
		t.Fatalf("error should name the lowest failing row 21, got: %v", err)
	}
	if m.InferCounter.Total() == 0 {
		t.Fatal("partial op counts dropped on the error path")
	}
}

// TestSnapshotUntrained checks the not-trained guard survives the snapshot
// path.
func TestSnapshotUntrained(t *testing.T) {
	m := newModel(t, 4, 64, DefaultConfig())
	snap := m.Snapshot()
	if _, err := snap.Predict([]float64{1, 2, 3, 4}); err != ErrNotTrained {
		t.Fatalf("expected ErrNotTrained, got %v", err)
	}
	if _, err := snap.PredictBatchParallel([][]float64{{1, 2, 3, 4}}, 2); err != ErrNotTrained {
		t.Fatalf("expected ErrNotTrained, got %v", err)
	}
}
