package core

import (
	"math"
	"math/rand"
	"testing"

	"reghd/internal/dataset"
	"reghd/internal/encoding"
)

// TestTimeSeriesForecast is an integration test of the Sequence encoder
// with the RegHD model: predict the next value of a noisy quasi-periodic
// signal from a window of lags — the IoT forecasting workload of the
// paper's introduction.
func TestTimeSeriesForecast(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 1500
	signal := make([]float64, n)
	for i := range signal {
		tt := float64(i)
		signal[i] = math.Sin(0.2*tt) + 0.5*math.Sin(0.05*tt) + 0.02*rng.NormFloat64()
	}
	const window = 8
	ds := &dataset.Dataset{Name: "forecast"}
	for i := window; i < n; i++ {
		ds.X = append(ds.X, signal[i-window:i])
		ds.Y = append(ds.Y, signal[i])
	}
	split := ds.Len() * 3 / 4
	train := ds.Subset(seqInts(0, split))
	test := ds.Subset(seqInts(split, ds.Len()))

	base, err := encoding.NewNonlinearBandwidth(rand.New(rand.NewSource(2)), 1, 2000, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := encoding.NewSequence(base, window)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(seq, Config{Models: 4, Epochs: 20, Seed: 3, PredictMode: PredictBinaryQuery})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	mse, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	// Signal variance ≈ 0.6; one-step-ahead forecasting must capture most
	// of it (persistence baseline: MSE of y[t−1] as prediction ≈ 0.04).
	if mse > 0.05 {
		t.Fatalf("forecast test MSE %v too high", mse)
	}
}
