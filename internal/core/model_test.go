package core

import (
	"math"
	"math/rand"
	"testing"

	"reghd/internal/dataset"
	"reghd/internal/encoding"
	"reghd/internal/hdc"
)

// makeLinear builds a noisy linear dataset y = w·x + b + ε.
func makeLinear(rng *rand.Rand, n, feats int, noise float64) *dataset.Dataset {
	w := make([]float64, feats)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	d := &dataset.Dataset{Name: "lin", X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, feats)
		y := 0.3
		for j := range x {
			x[j] = rng.NormFloat64()
			y += w[j] * x[j]
		}
		d.X[i] = x
		d.Y[i] = y + noise*rng.NormFloat64()
	}
	return d
}

// makeSinusoid builds a clearly nonlinear single-feature dataset.
func makeSinusoid(rng *rand.Rand, n int, noise float64) *dataset.Dataset {
	d := &dataset.Dataset{Name: "sin", X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := rng.Float64()*4 - 2
		d.X[i] = []float64{x}
		d.Y[i] = math.Sin(2*x) + 0.5*x + noise*rng.NormFloat64()
	}
	return d
}

// makePiecewise builds a multi-modal dataset: two well-separated input
// clusters with opposite linear responses — the motivating case for
// multi-model regression. Features are standardized like the experiment
// pipeline does before encoding.
func makePiecewise(rng *rand.Rand, n, feats int, noise float64) *dataset.Dataset {
	d := &dataset.Dataset{Name: "pw", X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, feats)
		c := float64(1)
		off := 3.0
		if i%2 == 0 {
			c = -1
			off = -3.0
		}
		y := 0.0
		for j := range x {
			x[j] = off + rng.NormFloat64()
			y += c * x[j]
		}
		d.X[i] = x
		d.Y[i] = y + noise*rng.NormFloat64()
	}
	s, err := dataset.FitScaler(d, false)
	if err != nil {
		panic(err)
	}
	out, err := s.Transform(d)
	if err != nil {
		panic(err)
	}
	return out
}

func newModel(t *testing.T, feats, dim int, cfg Config) *Model {
	t.Helper()
	enc, err := encoding.NewNonlinear(rand.New(rand.NewSource(99)), feats, dim)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newModelBW builds a model with an explicit encoder bandwidth, for tasks
// whose target has finer structure than the default length-scale.
func newModelBW(t *testing.T, feats, dim int, bw float64, cfg Config) *Model {
	t.Helper()
	enc, err := encoding.NewNonlinearBandwidth(rand.New(rand.NewSource(99)), feats, dim, bw)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Fatal("nil encoder accepted")
	}
	enc, _ := encoding.NewNonlinear(rand.New(rand.NewSource(1)), 2, 64)
	if _, err := New(enc, Config{Models: -1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestAccessors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Models = 4
	m := newModel(t, 3, 128, cfg)
	if m.Dim() != 128 || m.Models() != 4 || m.Encoder() == nil {
		t.Fatalf("accessors wrong: dim=%d k=%d", m.Dim(), m.Models())
	}
	if m.Trained() {
		t.Fatal("fresh model claims trained")
	}
	if m.Config().Models != 4 {
		t.Fatal("Config not preserved")
	}
	if m.ModelVector(0) == nil || m.ClusterVector(0) == nil {
		t.Fatal("vector accessors nil")
	}
	single := newModel(t, 3, 128, Config{Models: 1})
	if single.ClusterVector(0) != nil {
		t.Fatal("single model should have no clusters")
	}
}

func TestPredictBeforeFit(t *testing.T) {
	m := newModel(t, 2, 64, DefaultConfig())
	if _, err := m.Predict([]float64{1, 2}); err != ErrNotTrained {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
	if _, err := m.Evaluate(&dataset.Dataset{X: [][]float64{{1, 2}}, Y: []float64{1}}); err != ErrNotTrained {
		t.Fatalf("Evaluate err = %v, want ErrNotTrained", err)
	}
}

func TestFitRejectsBadData(t *testing.T) {
	m := newModel(t, 2, 64, DefaultConfig())
	if _, err := m.Fit(&dataset.Dataset{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	wrong := &dataset.Dataset{X: [][]float64{{1, 2, 3}}, Y: []float64{1}}
	if _, err := m.Fit(wrong); err == nil {
		t.Fatal("feature mismatch accepted")
	}
}

func TestSingleModelLearnsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := makeLinear(rng, 400, 4, 0.05)
	test := makeLinear(rng, 200, 4, 0.05)
	// Same generator parameters require a single RNG stream; regenerate
	// jointly instead.
	all := makeLinear(rand.New(rand.NewSource(2)), 600, 4, 0.05)
	train = all.Subset(seqInts(0, 400))
	test = all.Subset(seqInts(400, 600))

	cfg := Config{Models: 1, Epochs: 40, Seed: 3}
	m := newModel(t, 4, 2000, cfg)
	res, err := m.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Trained() || res.Epochs == 0 {
		t.Fatal("model not trained")
	}
	mse, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	// Target variance is ≈ #feats = 4; a working model must be far below.
	if mse > 0.5 {
		t.Fatalf("single-model test MSE %v too high", mse)
	}
}

func TestSingleModelLearnsNonlinear(t *testing.T) {
	all := makeSinusoid(rand.New(rand.NewSource(4)), 600, 0.02)
	train := all.Subset(seqInts(0, 450))
	test := all.Subset(seqInts(450, 600))
	cfg := Config{Models: 1, Epochs: 60, Seed: 5}
	m := newModelBW(t, 1, 4000, 1.0, cfg)
	if _, err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	mse, _ := m.Evaluate(test)
	// Nonlinear encoding lets a linear HD update fit sin(2x)+x/2
	// (variance ≈ 0.9); require a clear fit.
	if mse > 0.15 {
		t.Fatalf("nonlinear test MSE %v too high", mse)
	}
}

func TestIterativeTrainingImproves(t *testing.T) {
	// Fig. 3a behaviour: more retraining iterations → lower error.
	all := makeSinusoid(rand.New(rand.NewSource(6)), 400, 0.02)
	cfg := Config{Models: 1, Epochs: 30, Tol: 1e-12, Patience: 1000, Seed: 7}
	m := newModelBW(t, 1, 2000, 1.0, cfg)
	res, err := m.Fit(all)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.History[0], res.History[len(res.History)-1]
	if last >= first {
		t.Fatalf("training MSE did not improve: first %v last %v", first, last)
	}
}

// makeMixture builds a hard multi-modal dataset: nClusters well-separated
// input clusters, each with its own random linear response. With a
// capacity-limited D (paper §2.3), one hypervector cannot hold all regional
// functions and multi-model routing wins — the Fig. 3b scenario.
func makeMixture(rng *rand.Rand, n, feats, nClusters int, noise float64) *dataset.Dataset {
	centers := make([][]float64, nClusters)
	weights := make([][]float64, nClusters)
	for c := range centers {
		centers[c] = make([]float64, feats)
		weights[c] = make([]float64, feats)
		for j := range centers[c] {
			centers[c][j] = 4 * rng.NormFloat64()
			weights[c][j] = rng.NormFloat64()
		}
	}
	d := &dataset.Dataset{Name: "mix", X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		c := rng.Intn(nClusters)
		x := make([]float64, feats)
		p := 0.0
		for j := range x {
			x[j] = centers[c][j] + 0.5*rng.NormFloat64()
			p += weights[c][j] * (x[j] - centers[c][j])
		}
		d.X[i] = x
		d.Y[i] = 3*math.Sin(2*p) + 2*float64(c%5) + noise*rng.NormFloat64()
	}
	s, err := dataset.FitScaler(d, false)
	if err != nil {
		panic(err)
	}
	out, err := s.Transform(d)
	if err != nil {
		panic(err)
	}
	return out
}

func TestMultiModelBeatsSingleOnMixture(t *testing.T) {
	// Fig. 3b behaviour: on a multi-modal task with capacity-limited D
	// (paper §2.3), multi-model RegHD clearly outperforms the single model.
	all := makeMixture(rand.New(rand.NewSource(8)), 2000, 5, 16, 0.05)
	train := all.Subset(seqInts(0, 1500))
	test := all.Subset(seqInts(1500, 2000))

	run := func(k int) float64 {
		cfg := Config{Models: k, Epochs: 50, Seed: 9}
		m := newModelBW(t, 5, 128, 0.8, cfg)
		if _, err := m.Fit(train); err != nil {
			t.Fatal(err)
		}
		mse, err := m.Evaluate(test)
		if err != nil {
			t.Fatal(err)
		}
		return mse
	}
	single := run(1)
	multi := run(8)
	if multi >= single*0.97 {
		t.Fatalf("multi-model (%v) not clearly better than single (%v) on mixture task", multi, single)
	}
}

func TestConvergenceStopsEarly(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(10)), 300, 3, 0.05)
	cfg := Config{Models: 1, Epochs: 200, Tol: 0.01, Patience: 3, Seed: 11}
	m := newModel(t, 3, 1000, cfg)
	res, err := m.Fit(all)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("expected convergence within 200 epochs")
	}
	if res.Epochs >= 200 {
		t.Fatalf("converged run used all %d epochs", res.Epochs)
	}
}

func TestFitCallbackStops(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(12)), 200, 3, 0.05)
	cfg := Config{Models: 1, Epochs: 50, Seed: 13, Tol: 1e-12, Patience: 1000}
	m := newModel(t, 3, 500, cfg)
	calls := 0
	res, err := m.FitCallback(all, func(ep int, mse float64) bool {
		calls++
		return ep < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 || res.Epochs != 5 {
		t.Fatalf("callback stop failed: calls %d epochs %d", calls, res.Epochs)
	}
	if res.Converged {
		t.Fatal("callback stop must not report convergence")
	}
}

func TestFitWithValidationMonitorsVal(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(14)), 400, 3, 0.05)
	train := all.Subset(seqInts(0, 300))
	val := all.Subset(seqInts(300, 400))
	cfg := Config{Models: 1, Epochs: 30, Seed: 15}
	m := newModel(t, 3, 1000, cfg)
	res, err := m.FitWithValidation(train, val)
	if err != nil {
		t.Fatal(err)
	}
	valMSE, _ := m.Evaluate(val)
	if math.Abs(res.FinalMSE-valMSE) > 1e-9 {
		t.Fatalf("FinalMSE %v does not match validation MSE %v", res.FinalMSE, valMSE)
	}
	if _, err := m.FitWithValidation(train, &dataset.Dataset{}); err == nil {
		t.Fatal("invalid validation set accepted")
	}
}

func TestDeterministicTraining(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(16)), 200, 3, 0.05)
	run := func() []float64 {
		cfg := Config{Models: 4, Epochs: 10, Tol: 1e-12, Patience: 100, Seed: 17}
		m := newModel(t, 3, 500, cfg)
		if _, err := m.Fit(all); err != nil {
			t.Fatal(err)
		}
		pred, err := m.PredictBatch(all.X[:10])
		if err != nil {
			t.Fatal(err)
		}
		return pred
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different predictions")
		}
	}
}

func TestPredictBatchErrorPropagates(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(18)), 100, 3, 0.05)
	cfg := Config{Models: 1, Epochs: 3, Seed: 19}
	m := newModel(t, 3, 200, cfg)
	if _, err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PredictBatch([][]float64{{1, 2}}); err == nil {
		t.Fatal("wrong feature count accepted in batch")
	}
}

func TestCountersRecordWork(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(20)), 50, 3, 0.05)
	cfg := Config{Models: 2, Epochs: 2, Tol: 1e-12, Patience: 100, Seed: 21}
	m := newModel(t, 3, 256, cfg)
	m.TrainCounter = &hdc.Counter{}
	m.InferCounter = &hdc.Counter{}
	if _, err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	if m.TrainCounter.Total() == 0 {
		t.Fatal("training counted no operations")
	}
	before := m.InferCounter.Total()
	if _, err := m.Predict(all.X[0]); err != nil {
		t.Fatal(err)
	}
	if m.InferCounter.Total() <= before {
		t.Fatal("inference counted no operations")
	}
}

func TestEvaluateMatchesManualMSE(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(22)), 120, 3, 0.05)
	cfg := Config{Models: 1, Epochs: 5, Seed: 23}
	m := newModel(t, 3, 300, cfg)
	if _, err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	pred, _ := m.PredictBatch(all.X)
	want, _ := dataset.MSE(pred, all.Y)
	got, err := m.Evaluate(all)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Evaluate %v != manual %v", got, want)
	}
}

func seqInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
