// Package core implements RegHD, the paper's primary contribution:
// regression in hyperdimensional space with run-time clustering of inputs,
// per-cluster regression models, confidence-weighted prediction, and the
// quantization framework of Section 3 (binary clusters with Hamming
// similarity; binary queries and/or binary models for multiply-free
// prediction).
package core

import (
	"errors"
	"fmt"
)

// UpdateRule selects how the multi-model error update (Eq. 7) distributes
// the prediction error across the k regression models.
type UpdateRule int

const (
	// UpdateWeighted updates every model scaled by its softmax confidence:
	// M_i ← M_i + α(y−ŷ)·δ'_i·S. This is the mixture-of-experts reading of
	// Eq. 7 and the default.
	UpdateWeighted UpdateRule = iota
	// UpdateHardMax updates only the most-similar model with the full
	// error, the "winner-take-all" reading.
	UpdateHardMax
)

// String names the update rule.
func (u UpdateRule) String() string {
	switch u {
	case UpdateWeighted:
		return "weighted"
	case UpdateHardMax:
		return "hardmax"
	default:
		return fmt.Sprintf("update(%d)", int(u))
	}
}

// ClusterMode selects the cluster-similarity implementation (Section 3.1).
type ClusterMode int

const (
	// ClusterInteger keeps full-precision cluster hypervectors and uses
	// cosine similarity — the baseline of Fig. 6.
	ClusterInteger ClusterMode = iota
	// ClusterBinary is the paper's quantization framework: a binary shadow
	// copy of each cluster answers Hamming-distance similarity queries,
	// while updates accumulate into the integer copy, which is re-quantized
	// after every epoch.
	ClusterBinary
	// ClusterNaiveBinary binarizes the clusters once and never updates them
	// (binary vectors cannot absorb Eq. 8's weighted update) — the "naive
	// binarization" strawman of Fig. 6.
	ClusterNaiveBinary
)

// String names the cluster mode.
func (c ClusterMode) String() string {
	switch c {
	case ClusterInteger:
		return "integer-cluster"
	case ClusterBinary:
		return "binary-cluster"
	case ClusterNaiveBinary:
		return "naive-binary-cluster"
	default:
		return fmt.Sprintf("cluster(%d)", int(c))
	}
}

// PredictMode selects the dot-product kernel between the encoded query and
// the regression models (Section 3.2).
type PredictMode int

const (
	// PredictFull uses the raw (real-valued) query against the integer
	// model: the full-precision baseline.
	PredictFull PredictMode = iota
	// PredictBinaryQuery uses the quantized bipolar query against the
	// integer model — multiply-free ("binary query, integer model").
	PredictBinaryQuery
	// PredictBinaryModel uses the raw query against the binarized model
	// ("integer query, binary model").
	PredictBinaryModel
	// PredictBinaryBoth uses the quantized query against the binarized
	// model; the dot product reduces to XOR+popcount ("binary query,
	// binary model").
	PredictBinaryBoth
)

// String names the prediction mode.
func (p PredictMode) String() string {
	switch p {
	case PredictFull:
		return "full"
	case PredictBinaryQuery:
		return "bquery-imodel"
	case PredictBinaryModel:
		return "iquery-bmodel"
	case PredictBinaryBoth:
		return "bquery-bmodel"
	default:
		return fmt.Sprintf("predict(%d)", int(p))
	}
}

// UsesBinaryModel reports whether the mode reads the binary model shadow.
func (p PredictMode) UsesBinaryModel() bool {
	return p == PredictBinaryModel || p == PredictBinaryBoth
}

// UsesRawQuery reports whether the mode reads the raw real-valued encoding
// (as opposed to the quantized bipolar one).
func (p PredictMode) UsesRawQuery() bool {
	return p == PredictFull || p == PredictBinaryModel
}

// Config holds the RegHD hyper-parameters. Zero values are replaced by the
// documented defaults in Validate, so Config{} is usable after validation;
// DefaultConfig returns the fully populated defaults.
type Config struct {
	// Models is the number k of cluster/regression hypervector pairs.
	// k = 1 degenerates to single-model regression (Eq. 2).
	Models int
	// LearningRate is α in Eqs. 2 and 7. With prediction normalized by the
	// dimension, stability requires α ∈ (0, 1).
	LearningRate float64
	// SoftmaxBeta is the inverse temperature applied to the cosine
	// similarities before the softmax normalization block. Cosine values
	// live in [−1,1], so β ≫ 1 is needed for confidences to separate.
	SoftmaxBeta float64
	// UpdateRule distributes the error update across models.
	UpdateRule UpdateRule
	// ClusterMode selects integer, framework-binary, or naive-binary
	// clustering.
	ClusterMode ClusterMode
	// PredictMode selects the query/model quantization of the prediction
	// dot product.
	PredictMode PredictMode
	// Epochs caps the number of iterative-training passes.
	Epochs int
	// Tol is the relative-improvement threshold of the convergence test:
	// training stops once the monitored MSE improves by less than Tol for
	// Patience consecutive epochs.
	Tol float64
	// Patience is the number of consecutive low-improvement epochs that
	// triggers convergence.
	Patience int
	// Seed drives cluster initialization and per-epoch shuffling.
	Seed int64
}

// DefaultConfig returns the hyper-parameters used throughout the paper's
// evaluation: 8 models, α=0.1, β=10, weighted updates, full precision,
// up to 60 epochs with 0.5% improvement tolerance and patience 3.
func DefaultConfig() Config {
	return Config{
		Models:       8,
		LearningRate: 0.1,
		SoftmaxBeta:  10,
		UpdateRule:   UpdateWeighted,
		ClusterMode:  ClusterInteger,
		PredictMode:  PredictFull,
		Epochs:       60,
		Tol:          0.005,
		Patience:     3,
		Seed:         1,
	}
}

// Validate fills defaulted fields and rejects out-of-range settings.
func (c *Config) Validate() error {
	if c.Models == 0 {
		c.Models = 8
	}
	//lint:ignore floatcmp zero value selects the documented default
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	//lint:ignore floatcmp zero value selects the documented default
	if c.SoftmaxBeta == 0 {
		c.SoftmaxBeta = 10
	}
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	//lint:ignore floatcmp zero value selects the documented default
	if c.Tol == 0 {
		c.Tol = 0.005
	}
	if c.Patience == 0 {
		c.Patience = 3
	}
	switch {
	case c.Models < 0:
		return fmt.Errorf("core: Models must be positive, got %d", c.Models)
	case c.LearningRate < 0 || c.LearningRate >= 1:
		return fmt.Errorf("core: LearningRate must be in (0,1), got %v", c.LearningRate)
	case c.SoftmaxBeta < 0:
		return fmt.Errorf("core: SoftmaxBeta must be positive, got %v", c.SoftmaxBeta)
	case c.Epochs < 0:
		return fmt.Errorf("core: Epochs must be positive, got %d", c.Epochs)
	case c.Tol < 0:
		return fmt.Errorf("core: Tol must be non-negative, got %v", c.Tol)
	case c.Patience < 0:
		return fmt.Errorf("core: Patience must be positive, got %d", c.Patience)
	}
	switch c.UpdateRule {
	case UpdateWeighted, UpdateHardMax:
	default:
		return fmt.Errorf("core: unknown UpdateRule %d", c.UpdateRule)
	}
	switch c.ClusterMode {
	case ClusterInteger, ClusterBinary, ClusterNaiveBinary:
	default:
		return fmt.Errorf("core: unknown ClusterMode %d", c.ClusterMode)
	}
	switch c.PredictMode {
	case PredictFull, PredictBinaryQuery, PredictBinaryModel, PredictBinaryBoth:
	default:
		return fmt.Errorf("core: unknown PredictMode %d", c.PredictMode)
	}
	return nil
}

// ErrNotTrained is returned by prediction before Fit has run.
var ErrNotTrained = errors.New("core: model has not been trained")
