package core

import (
	"fmt"
	"sort"
)

// Sparsify zeroes the lowest-magnitude fraction of every integer regression
// model's components — the SparseHD-style model sparsification the paper's
// related work ([40]) describes as compatible with RegHD. Sparse models
// skip the zeroed dimensions in hardware, trading accuracy for efficiency.
// Binary shadows and the output calibration are NOT refreshed (sparsity
// carries no information for sign quantization); sparsify integer-model
// deployments, then optionally fine-tune with further Fit passes.
func (m *Model) Sparsify(fraction float64) error {
	if !m.trained {
		return ErrNotTrained
	}
	if fraction < 0 || fraction >= 1 {
		return fmt.Errorf("core: sparsity fraction must be in [0,1), got %v", fraction)
	}
	nZero := int(fraction * float64(m.dim))
	if nZero == 0 {
		return nil
	}
	mags := make([]float64, m.dim)
	for _, mv := range m.models {
		for j, v := range mv {
			if v >= 0 {
				mags[j] = v
			} else {
				mags[j] = -v
			}
		}
		sorted := append([]float64(nil), mags...)
		sort.Float64s(sorted)
		threshold := sorted[nZero-1]
		zeroed := 0
		for j := range mv {
			if mags[j] <= threshold && zeroed < nZero {
				mv[j] = 0
				zeroed++
			}
		}
	}
	return nil
}

// ModelSparsity reports the fraction of exactly-zero components across all
// integer regression models.
func (m *Model) ModelSparsity() float64 {
	var zeros, total int
	for _, mv := range m.models {
		for _, v := range mv {
			//lint:ignore floatcmp sparsity is defined as exactly-zero components produced by hard thresholding
			if v == 0 {
				zeros++
			}
		}
		total += len(mv)
	}
	if total == 0 {
		return 0
	}
	return float64(zeros) / float64(total)
}
