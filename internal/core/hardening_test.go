package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// trainedSmall returns a small trained multi-model fixture.
func trainedSmall(t *testing.T, cfg Config) *Model {
	t.Helper()
	all := makeLinear(rand.New(rand.NewSource(7)), 150, 3, 0.05)
	m := newModel(t, 3, 256, cfg)
	if _, err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPartialFitRejectsInvalidSamples(t *testing.T) {
	m := trainedSmall(t, Config{Models: 4, Epochs: 3, Seed: 1})
	before, err := m.Predict([]float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		x    []float64
		y    float64
	}{
		{"nan-target", []float64{0.1, 0.2, 0.3}, math.NaN()},
		{"inf-target", []float64{0.1, 0.2, 0.3}, math.Inf(1)},
		{"nan-feature", []float64{0.1, math.NaN(), 0.3}, 1},
		{"inf-feature", []float64{math.Inf(-1), 0.2, 0.3}, 1},
		{"short-row", []float64{0.1, 0.2}, 1},
		{"long-row", []float64{0.1, 0.2, 0.3, 0.4}, 1},
		{"nil-row", nil, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := m.PartialFit(tc.x, tc.y)
			if !errors.Is(err, ErrInvalidInput) {
				t.Fatalf("want ErrInvalidInput, got %v", err)
			}
		})
	}
	// The rejected samples must not have touched any learned state.
	after, err := m.Predict([]float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("rejected samples changed the model: %v -> %v", before, after)
	}
}

func TestValidateRow(t *testing.T) {
	if err := ValidateRow([]float64{1, 2}, 2); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	if err := ValidateRow([]float64{1, 2}, 0); err != nil {
		t.Fatalf("length check not skipped for features=0: %v", err)
	}
	if err := ValidateRow([]float64{1, 2}, 3); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("want ErrInvalidInput for wrong arity, got %v", err)
	}
	if err := ValidateTarget(2.5); err != nil {
		t.Fatalf("valid target rejected: %v", err)
	}
}

func TestSaveFileAtomic(t *testing.T) {
	m := trainedSmall(t, Config{Models: 2, Epochs: 3, Seed: 2})
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")

	// First save creates the file; a second save must replace it atomically
	// and leave no temp litter behind.
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := m.PartialFit([]float64{0.1, 0.2, 0.3}, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m.Predict([]float64{0.1, 0.2, 0.3})
	got, err := back.Predict([]float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("reloaded checkpoint predicts differently: %v vs %v", want, got)
	}
}

func TestLoadCorruptFile(t *testing.T) {
	m := trainedSmall(t, Config{Models: 2, Epochs: 3, Seed: 3})
	dir := t.TempDir()
	good := filepath.Join(dir, "model.gob")
	if err := m.SaveFile(good); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name  string
		bytes []byte
	}{
		{"truncated", raw[:len(raw)/2]},
		{"empty", nil},
		{"garbage", []byte("not a gob model at all")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bad := filepath.Join(dir, tc.name)
			if err := os.WriteFile(bad, tc.bytes, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadFile(bad)
			if !errors.Is(err, ErrCorruptModel) {
				t.Fatalf("want ErrCorruptModel, got %v", err)
			}
		})
	}

	// A missing file is an I/O error, not a corrupt checkpoint.
	if _, err := LoadFile(filepath.Join(dir, "nope.gob")); errors.Is(err, ErrCorruptModel) {
		t.Fatal("missing file misreported as corrupt")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := trainedSmall(t, Config{Models: 4, Epochs: 3, Seed: 4, ClusterMode: ClusterBinary, PredictMode: PredictBinaryBoth})
	c := m.Clone()
	x := []float64{0.3, -0.2, 0.5}
	want, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("clone predicts differently: %v vs %v", want, got)
	}
	// Corrupting the clone's stores must not move the original.
	fv := c.FaultView()
	for _, mb := range fv.ModelsBin {
		mb.FlipBits([]int{0, 1, 2, 3, 4, 5, 6, 7})
	}
	for _, cv := range fv.Clusters {
		cv[0] += 1000
	}
	after, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if after != want {
		t.Fatalf("mutating the clone changed the original: %v -> %v", want, after)
	}
}

func TestPredictBatchParallelCtxCancellation(t *testing.T) {
	m := trainedSmall(t, Config{Models: 2, Epochs: 3, Seed: 5})
	s := m.Snapshot()
	xs := make([][]float64, 64)
	for i := range xs {
		xs[i] = []float64{0.1, 0.2, 0.3}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.PredictBatchParallelCtx(ctx, xs, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// And an unexpired context serves the whole batch.
	ys, err := s.PredictBatchParallelCtx(context.Background(), xs, 4)
	if err != nil || len(ys) != len(xs) {
		t.Fatalf("clean batch failed: %v (%d rows)", err, len(ys))
	}
}
