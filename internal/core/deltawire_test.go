package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"

	"reghd/internal/hdc"
)

// deltasEqual reports whether two deltas carry Float64bits-identical state —
// the equality DecodeDelta must reproduce for the merge math downstream of a
// wire hop to stay deterministic.
func deltasEqual(t *testing.T, a, b *Delta) bool {
	t.Helper()
	if a.Samples != b.Samples ||
		math.Float64bits(a.CalibA) != math.Float64bits(b.CalibA) ||
		math.Float64bits(a.CalibB) != math.Float64bits(b.CalibB) {
		return false
	}
	if len(a.Models) != len(b.Models) || len(a.Clusters) != len(b.Clusters) ||
		len(a.AssignN) != len(b.AssignN) || len(a.ModelsBin) != len(b.ModelsBin) ||
		len(a.ModelScale) != len(b.ModelScale) || len(a.ClustersBin) != len(b.ClustersBin) {
		return false
	}
	vecEq := func(x, y hdc.Vector) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return false
			}
		}
		return true
	}
	binEq := func(x, y *hdc.Binary) bool {
		if x.Dim != y.Dim || len(x.Words) != len(y.Words) {
			return false
		}
		for i := range x.Words {
			if x.Words[i] != y.Words[i] {
				return false
			}
		}
		return true
	}
	for i := range a.Models {
		if !vecEq(a.Models[i], b.Models[i]) {
			return false
		}
	}
	for i := range a.Clusters {
		if !vecEq(a.Clusters[i], b.Clusters[i]) {
			return false
		}
	}
	for i := range a.AssignN {
		if a.AssignN[i] != b.AssignN[i] {
			return false
		}
	}
	for i := range a.ModelsBin {
		if !binEq(a.ModelsBin[i], b.ModelsBin[i]) {
			return false
		}
	}
	for i := range a.ModelScale {
		if math.Float64bits(a.ModelScale[i]) != math.Float64bits(b.ModelScale[i]) {
			return false
		}
	}
	for i := range a.ClustersBin {
		if !binEq(a.ClustersBin[i], b.ClustersBin[i]) {
			return false
		}
	}
	return a.Ops.Snapshot() == b.Ops.Snapshot()
}

// TestDeltaWireRoundTrip pins the codec contract end to end: for both the
// quantized configuration (binary shadows, scales, calibration) and the
// full-precision one, Encode → DecodeDelta reproduces every field
// bit-for-bit, and merging the decoded deltas yields a model
// Float64bits-identical to merging the originals — a wire hop is invisible
// to the merge math.
func TestDeltaWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := makeLinear(rng, 160, 4, 0.05)
	for _, tc := range []struct {
		name      string
		cfg       Config
		quantized bool
	}{
		{"quantized", mergeBaseConfig(), true},
		{"full-precision", func() Config {
			cfg := mergeBaseConfig()
			cfg.ClusterMode = ClusterInteger
			cfg.PredictMode = PredictFull
			return cfg
		}(), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := newMergeModel(t, tc.cfg, 4, 256)
			if _, err := base.Fit(data); err != nil {
				t.Fatal(err)
			}
			deltas := trainWorkers(t, base, rowsOf{data.X, data.Y}, 3)
			decoded := make([]*Delta, len(deltas))
			for i, d := range deltas {
				payload, err := d.Encode()
				if err != nil {
					t.Fatal(err)
				}
				again, err := d.Encode()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(payload, again) {
					t.Fatal("Encode is not deterministic for an unchanged delta")
				}
				decoded[i], err = DecodeDelta(payload)
				if err != nil {
					t.Fatal(err)
				}
				if !deltasEqual(t, d, decoded[i]) {
					t.Fatalf("delta %d changed across the wire", i)
				}
			}
			orig, wired := base.Clone(), base.Clone()
			orig.TrainCounter = &hdc.Counter{}
			wired.TrainCounter = &hdc.Counter{}
			merge := func(m *Model, ds []*Delta) {
				var err error
				if tc.quantized {
					err = m.MergeQuantized(ds...)
				} else {
					err = m.Merge(ds...)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			merge(orig, deltas)
			merge(wired, decoded)
			if !statesEqual(t, orig, wired) {
				t.Fatal("merging decoded deltas diverged from merging originals")
			}
		})
	}
}

// TestDeltaWireEmpty pins that a zero-sample delta — what an idle replica
// seals to keep a sync round moving — survives the wire.
func TestDeltaWireEmpty(t *testing.T) {
	payload, err := (&Delta{}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeDelta(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !deltasEqual(t, &Delta{}, d) {
		t.Fatal("empty delta changed across the wire")
	}
}

// wirePayload builds one valid quantized encoding for the corruption tests.
func wirePayload(t testing.TB) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(22))
	data := makeLinear(rng, 80, 4, 0.05)
	base := newMergeModel(t, mergeBaseConfig(), 4, 256)
	if _, err := base.Fit(data); err != nil {
		t.Fatal(err)
	}
	d := trainWorkers(t, base, rowsOf{data.X, data.Y}, 1)[0]
	payload, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// reseal recomputes the trailing CRC so a deliberate header tamper is not
// masked by the checksum check — the structural validation must catch it.
func reseal(payload []byte) []byte {
	buf := append([]byte(nil), payload[:len(payload)-4]...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, deltaCRC))
}

// TestDeltaWireCorruption pins the failure contract: every damaged payload —
// truncated, bit-flipped, wrong magic or version, tampered counts, trailing
// garbage — returns an error wrapping ErrCorruptDelta, and none of them
// panic or return a delta.
func TestDeltaWireCorruption(t *testing.T) {
	payload := wirePayload(t)
	wantCorrupt := func(t *testing.T, name string, data []byte) {
		t.Helper()
		d, err := DecodeDelta(data)
		if !errors.Is(err, ErrCorruptDelta) {
			t.Fatalf("%s: got err=%v, want ErrCorruptDelta", name, err)
		}
		if d != nil {
			t.Fatalf("%s: corrupt payload returned a delta", name)
		}
	}

	t.Run("truncation", func(t *testing.T) {
		for _, n := range []int{0, 3, 8, 9, 33, 60, len(payload) / 2, len(payload) - 1} {
			wantCorrupt(t, "truncated", payload[:n])
		}
	})
	t.Run("bit-flips", func(t *testing.T) {
		// Flip one bit in every region of the frame: header, counts, each
		// payload section, and the CRC itself. CRC32 detects all of them.
		for off := 0; off < len(payload); off += 1 + off/7 {
			mut := append([]byte(nil), payload...)
			mut[off] ^= 1 << uint(off%8)
			wantCorrupt(t, "bit flip", mut)
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		mut := append([]byte(nil), payload...)
		copy(mut, "XXXX")
		wantCorrupt(t, "magic", mut)
	})
	t.Run("bad-version", func(t *testing.T) {
		mut := append([]byte(nil), payload...)
		mut[4] = deltaWireVersion + 1
		wantCorrupt(t, "version", reseal(mut))
	})
	t.Run("tampered-count", func(t *testing.T) {
		// Counts start after magic+version+dim+samples+calibration = 33
		// bytes. Inflating a section count makes the header-implied size
		// disagree with the payload even though the CRC is valid again.
		for _, off := range []int{33, 37, 41, 45, 49, 53, 57} {
			mut := append([]byte(nil), payload...)
			mut[off]++
			wantCorrupt(t, "count", reseal(mut))
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		wantCorrupt(t, "garbage", append(append([]byte(nil), payload...), 0xAB, 0xCD))
	})
	t.Run("shadow-tail-bits", func(t *testing.T) {
		// A dimensionality that is not a multiple of 64 leaves tail bits in
		// the last packed word; a payload setting them must be rejected
		// even with a valid CRC, or the Hamming kernels' zero-tail
		// invariant breaks downstream.
		d := &Delta{Samples: 1, ModelsBin: []*hdc.Binary{hdc.NewBinary(70)}, ModelScale: []float64{1}}
		enc, err := d.Encode()
		if err != nil {
			t.Fatal(err)
		}
		// Shadow words follow the 61-byte header and the op counters.
		off := 61 + 8*int(hdc.NumOps) + 8
		mut := append([]byte(nil), enc...)
		mut[off+7] |= 0x80
		wantCorrupt(t, "tail bits", reseal(mut))
	})
}

// FuzzDeltaWire hammers DecodeDelta with arbitrary bytes: it must never
// panic, and any payload it accepts must re-encode to a stable fixed point
// (encode → decode → encode is byte-identical from the first re-encoding
// on).
func FuzzDeltaWire(f *testing.F) {
	payload := wirePayload(f)
	f.Add(payload)
	empty, err := (&Delta{}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte(deltaWireMagic))
	f.Add(append([]byte(deltaWireMagic), deltaWireVersion, 0, 0, 0, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDelta(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptDelta) {
				t.Fatalf("decode error does not wrap ErrCorruptDelta: %v", err)
			}
			return
		}
		first, err := d.Encode()
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		d2, err := DecodeDelta(first)
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
		second, err := d2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatal("encode/decode/encode is not a fixed point")
		}
	})
}

// TestAdoptState pins the replication-side state handoff: adopting a
// same-shape model reproduces its learned state bit-for-bit, and adopting
// across configurations or shapes is rejected.
func TestAdoptState(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := makeLinear(rng, 120, 4, 0.05)
	src := newMergeModel(t, mergeBaseConfig(), 4, 256)
	if _, err := src.Fit(data); err != nil {
		t.Fatal(err)
	}
	dst := newMergeModel(t, mergeBaseConfig(), 4, 256)
	if err := dst.AdoptState(src); err != nil {
		t.Fatal(err)
	}
	if !statesEqual(t, src, dst) {
		t.Fatal("AdoptState did not reproduce the source state")
	}
	// The adoption is a copy, not aliasing: training the source afterwards
	// must leave the adopter untouched.
	snap := dst.Clone()
	if err := src.PartialFit(data.X[0], data.Y[0]); err != nil {
		t.Fatal(err)
	}
	if !statesEqual(t, snap, dst) {
		t.Fatal("AdoptState aliased the source's state")
	}

	if err := dst.AdoptState(nil); err == nil {
		t.Fatal("AdoptState(nil) succeeded")
	}
	other := newMergeModel(t, mergeBaseConfig(), 4, 512)
	if _, err := other.Fit(data); err != nil {
		t.Fatal(err)
	}
	if err := dst.AdoptState(other); err == nil {
		t.Fatal("AdoptState across dimensions succeeded")
	}
	intCfg := mergeBaseConfig()
	intCfg.ClusterMode = ClusterInteger
	intCfg.PredictMode = PredictFull
	intModel := newMergeModel(t, intCfg, 4, 256)
	if _, err := intModel.Fit(data); err != nil {
		t.Fatal(err)
	}
	if err := dst.AdoptState(intModel); err == nil {
		t.Fatal("AdoptState across configurations succeeded")
	}
}
