package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"reghd/internal/dataset"
	"reghd/internal/hdc"
)

// ParallelTrainResult extends TrainResult with the orchestration telemetry
// of a sharded run: how the data was split, how much time the merges cost,
// and the end-to-end training throughput.
type ParallelTrainResult struct {
	TrainResult
	// Workers is the number of shard workers actually used (capped at the
	// dataset size).
	Workers int
	// ShardSizes are the per-worker shard row counts.
	ShardSizes []int
	// Merges is the number of bundling merges performed (one per epoch on
	// the multi-worker path; zero when workers == 1).
	Merges int
	// MergeNS is the total wall time spent inside Merge/MergeQuantized, in
	// nanoseconds.
	MergeNS int64
	// WallNS is the end-to-end wall time of the call, in nanoseconds.
	WallNS int64
	// Rows is the total number of training updates applied (dataset rows ×
	// epochs performed).
	Rows uint64
	// RowsPerSec is Rows divided by the wall time.
	RowsPerSec float64
}

// shardWorker is one parallel trainer: a deep clone of the coordinator
// model, the shard rows it owns, a private shuffling stream, and reusable
// per-worker scratch (the sharded analogue of PR 3's pooled encode
// buffers — allocated once, reused every epoch).
type shardWorker struct {
	model      *Model
	shard      []int
	rng        *rand.Rand
	scratchS   hdc.Vector
	scratchRaw hdc.Vector
	sqErr      float64
	delta      *Delta
	err        error
}

// FitParallel trains the model on train with sharded data parallelism:
// the rows are split into `workers` balanced shards, each epoch every
// worker replays its shard on a private clone synchronized to the merged
// state, and the coordinator folds the worker deltas back in by
// sample-count-weighted bundling (Merge, or MergeQuantized for binary
// configurations). Convergence is monitored on the sample-weighted mean of
// the workers' prequential MSEs with the same Tol/Patience rule as Fit.
//
// workers == 1 runs exactly the sequential Fit loop (bit-identical history
// and state), so callers can use FitParallel unconditionally. The result
// is deterministic for a fixed (Config.Seed, workers) pair; different
// worker counts shard the data differently and therefore converge along
// different (comparably good) trajectories — see docs/TRAINING.md.
//
// FitParallel mutates the model, so the single-writer contract applies:
// the internal worker clones are private, and the coordinator model itself
// is never trained concurrently.
func (m *Model) FitParallel(train *dataset.Dataset, workers int) (*ParallelTrainResult, error) {
	if workers < 1 {
		return nil, fmt.Errorf("core: FitParallel needs at least 1 worker, got %d", workers)
	}
	//lint:nondeterm wall-clock telemetry: start only feeds WallNS/RowsPerSec, never merged state
	start := time.Now()
	cache, err := m.prepare(train)
	if err != nil {
		return nil, err
	}
	n := train.Len()
	if workers > n {
		workers = n
	}
	res := &ParallelTrainResult{Workers: workers}
	if workers == 1 {
		tr, err := m.fitCache(cache, nil, nil)
		if err != nil {
			return nil, err
		}
		res.TrainResult = *tr
		res.ShardSizes = []int{n}
		res.finish(start, n)
		return res, nil
	}

	// Shard assignment: one seeded shuffle of the row indices, cut into
	// contiguous balanced chunks. Sharding is random (so every shard sees
	// the full target distribution — the premise of divide-and-conquer
	// LMS) but fixed across epochs, which keeps the per-epoch merge
	// weights stable and the run deterministic.
	perm := m.rng.Perm(n)
	ws := make([]*shardWorker, workers)
	chunk := (n + workers - 1) / workers
	for w := range ws {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wk := &shardWorker{
			model: m.Clone(),
			shard: perm[lo:hi],
			// Distinct deterministic shuffle stream per worker; the clone's
			// own rng re-seeds from cfg.Seed and would march in lockstep
			// across workers.
			rng:      rand.New(rand.NewSource(m.cfg.Seed + int64(w)*1_000_003 + 7)),
			scratchS: hdc.NewVector(m.dim),
		}
		if cache.raw != nil {
			wk.scratchRaw = hdc.NewVector(m.dim)
		}
		if m.TrainCounter != nil {
			// Private counter per worker: MarkSync snapshots it, so each
			// delta carries exactly the ops its shard charged and the merge
			// keeps the coordinator's accounting exactly additive.
			wk.model.TrainCounter = &hdc.Counter{}
		}
		ws[w] = wk
		res.ShardSizes = append(res.ShardSizes, hi-lo)
	}

	quantized := m.cfg.PredictMode.UsesBinaryModel() || m.cfg.ClusterMode == ClusterBinary
	scratchS := hdc.NewVector(m.dim)
	var scratchRaw hdc.Vector
	if cache.raw != nil {
		scratchRaw = hdc.NewVector(m.dim)
	}
	prev := math.Inf(1)
	streak := 0
	var wg sync.WaitGroup
	for ep := 1; ep <= m.cfg.Epochs; ep++ {
		for _, wk := range ws {
			wg.Add(1)
			go func(wk *shardWorker) {
				defer wg.Done()
				wk.runEpoch(m, cache)
			}(wk)
		}
		wg.Wait()
		deltas := make([]*Delta, workers)
		for w, wk := range ws {
			if wk.err != nil {
				return nil, wk.err
			}
			deltas[w] = wk.delta
		}
		//lint:nondeterm wall-clock telemetry: t0 only times the merge for MergeNS
		t0 := time.Now()
		if quantized {
			err = m.MergeQuantized(deltas...)
		} else {
			err = m.Merge(deltas...)
		}
		if err != nil {
			return nil, err
		}
		//lint:nondeterm wall-clock telemetry: MergeNS is reporting only, never merged state
		res.MergeNS += time.Since(t0).Nanoseconds()
		res.Merges++
		// The coordinator holds the training cache, so it refits the output
		// calibration on the merged state instead of keeping the weighted
		// average of the workers' per-shard fits.
		m.calibrate(cache, scratchS, scratchRaw)
		var sqErr float64
		for _, wk := range ws {
			sqErr += wk.sqErr
		}
		mse := sqErr / float64(n)
		res.Epochs = ep
		res.History = append(res.History, mse)
		res.FinalMSE = mse
		if prev > 0 && (prev-mse)/math.Max(prev, 1e-12) < m.cfg.Tol {
			streak++
			if streak >= m.cfg.Patience {
				res.Converged = true
				break
			}
		} else {
			streak = 0
		}
		prev = mse
	}
	res.finish(start, n)
	return res, nil
}

// runEpoch synchronizes the worker clone to the coordinator's merged state,
// marks the sync point, replays the worker's shard in a freshly shuffled
// order, and extracts the resulting delta. It touches only worker-private
// state plus read-only coordinator state, so all workers run concurrently.
func (wk *shardWorker) runEpoch(coord *Model, cache *trainCache) {
	wk.model.copyStateFrom(coord)
	wk.model.MarkSync()
	wk.sqErr = 0
	for _, oi := range wk.rng.Perm(len(wk.shard)) {
		wk.sqErr += wk.model.trainOne(cache, wk.shard[oi], wk.scratchS, wk.scratchRaw)
	}
	wk.delta, wk.err = wk.model.Delta()
}

// copyStateFrom overwrites the model's learned state with src's, reusing
// the existing buffers: hypervectors, binary shadows, scales, calibration,
// and the sample/assignment census. The rng, counters, and scratch pool
// stay the model's own. Both models must come from the same configuration
// (FitParallel guarantees this by cloning).
func (m *Model) copyStateFrom(src *Model) {
	for i, v := range src.models {
		copy(m.models[i], v)
	}
	for i, v := range src.clusters {
		copy(m.clusters[i], v)
	}
	for i, b := range src.modelsBin {
		copy(m.modelsBin[i].Words, b.Words)
	}
	for i, b := range src.clustersBin {
		copy(m.clustersBin[i].Words, b.Words)
	}
	copy(m.modelScale, src.modelScale)
	copy(m.assignN, src.assignN)
	m.calibA, m.calibB = src.calibA, src.calibB
	m.samples = src.samples
	m.trained = src.trained
}

// finish stamps the wall-clock telemetry on the result.
func (r *ParallelTrainResult) finish(start time.Time, rows int) {
	//lint:nondeterm wall-clock telemetry: WallNS is reporting only, never merged state
	r.WallNS = time.Since(start).Nanoseconds()
	r.Rows = uint64(rows) * uint64(r.Epochs)
	if r.WallNS > 0 {
		r.RowsPerSec = float64(r.Rows) / (float64(r.WallNS) / 1e9)
	}
}
