package core

import (
	"fmt"

	"reghd/internal/hdc"
)

// AssignCluster returns the index of the most similar cluster hypervector
// for x along with all cluster similarities — the run-time clustering the
// paper pairs with regression, exposed for inspection. Single-model
// configurations always report cluster 0. It is part of the paper's
// interpretability story: the assignment explains *which* regression model
// answered a query.
func (m *Model) AssignCluster(x []float64) (cluster int, similarities []float64, err error) {
	if m.cfg.Models == 1 {
		return 0, []float64{1}, nil
	}
	e, err := m.encode(nil, x)
	if err != nil {
		return 0, nil, err
	}
	sims := make([]float64, m.cfg.Models)
	m.clusterSimilaritiesInto(nil, e, sims)
	return hdc.Argmax(nil, sims), sims, nil
}

// ClusterUsage counts how many of the rows each cluster attracts — a
// histogram of AssignCluster over xs, used to inspect whether the run-time
// clustering balances the input distribution or collapsed onto few centers.
func (m *Model) ClusterUsage(xs [][]float64) ([]int, error) {
	usage := make([]int, m.cfg.Models)
	for _, x := range xs {
		c, _, err := m.AssignCluster(x)
		if err != nil {
			return nil, err
		}
		usage[c]++
	}
	return usage, nil
}

// BinaryClusterSnapshot returns cluster i's bit-packed shadow: the live
// shadow for quantized cluster modes, or a fresh sign-quantization of the
// integer cluster otherwise. Single-model configurations have no clusters.
func (m *Model) BinaryClusterSnapshot(i int) (*hdc.Binary, error) {
	if m.clusters == nil {
		return nil, fmt.Errorf("core: single-model configuration has no clusters")
	}
	if i < 0 || i >= m.cfg.Models {
		return nil, fmt.Errorf("core: cluster index %d out of range [0,%d)", i, m.cfg.Models)
	}
	if m.clustersBin != nil {
		return m.clustersBin[i].Clone(), nil
	}
	return hdc.Pack(nil, m.clusters[i]), nil
}

// BinaryModelSnapshot returns model i's bit-packed shadow (live, or freshly
// quantized from the integer model for integer-model configurations).
func (m *Model) BinaryModelSnapshot(i int) (*hdc.Binary, error) {
	if i < 0 || i >= m.cfg.Models {
		return nil, fmt.Errorf("core: model index %d out of range [0,%d)", i, m.cfg.Models)
	}
	if m.modelsBin != nil {
		return m.modelsBin[i].Clone(), nil
	}
	return hdc.Pack(nil, m.models[i]), nil
}

// EncodeBinary returns the bit-packed bipolar encoding of x — the query
// representation a binary hardware deployment consumes.
func (m *Model) EncodeBinary(x []float64) (*hdc.Binary, error) {
	e, err := m.encode(nil, x)
	if err != nil {
		return nil, err
	}
	return e.packed, nil
}

// DeploymentBytes reports the storage the deployed predictor needs for its
// model state — the quantity the paper's embedded-device motivation cares
// about. Binary-model configurations store k·D bits plus one scale per
// model; integer configurations store k·D float64 words. Cluster state
// counts the same way (binary shadows for the quantized cluster modes,
// dense vectors otherwise; single-model configurations have none). The
// encoder's projection matrix is excluded: embedded HD implementations
// regenerate base hypervectors from a seed instead of storing them.
func (m *Model) DeploymentBytes() int {
	bits := func(n int) int { return ((n + 63) / 64) * 8 }
	var total int
	if m.cfg.PredictMode.UsesBinaryModel() {
		total += m.cfg.Models * (bits(m.dim) + 8) // sign bits + scale
		total += 16                               // output calibration (a, b)
	} else {
		total += m.cfg.Models * m.dim * 8
	}
	if m.cfg.Models > 1 {
		if m.cfg.ClusterMode == ClusterInteger {
			total += m.cfg.Models * m.dim * 8
		} else {
			total += m.cfg.Models * bits(m.dim)
		}
	}
	return total
}
