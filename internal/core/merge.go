package core

import (
	"fmt"
	"math"
	"sort"

	"reghd/internal/hdc"
)

// This file is the bundling-merge API that makes RegHD training compose:
// hypervector models are bundles (sums of weighted encodings), so a model
// trained on shard A and a model trained on shard B merge by weighted
// bundling of their vectors — no gradients, no synchronization. A worker
// records its reference state with MarkSync, trains locally, and emits the
// difference with Delta; the coordinator folds any number of deltas into
// its model with Merge (full precision) or MergeQuantized (the binarized
// bundling of Schmuck–Benini–Rahimi, arXiv 1807.08583, for binary
// configurations). FitParallel (fitparallel.go) drives this per epoch; a
// serving replica can drive it across the network by shipping Deltas.

// Delta is the additive difference of a model's learned state since its
// MarkSync baseline: the vector movements, the sample and per-cluster
// assignment counts that weight the merge, the primitive-operation charges
// accumulated (so op accounting stays exactly additive across workers),
// and — for quantized configurations — freshly re-quantized binary shadows
// with their scales, which is all a bits-only replica needs to ship.
type Delta struct {
	// Samples is the number of training updates absorbed since MarkSync;
	// it is this delta's weight in a merge. A zero-sample delta merges as
	// a no-op.
	Samples uint64
	// Models[i] is M_i − base(M_i).
	Models []hdc.Vector
	// Clusters[i] is C_i − base(C_i); nil for single-model configurations.
	Clusters []hdc.Vector
	// AssignN[i] counts the samples cluster i attracted since MarkSync;
	// nil for single-model configurations.
	AssignN []uint64
	// Ops holds the primitive-operation counts charged to the worker's
	// TrainCounter since MarkSync. Merge adds them into the coordinator's
	// TrainCounter, keeping the hardware cost accounting exactly additive.
	Ops hdc.Counter
	// ModelsBin/ClustersBin are fresh sign-quantizations of the worker's
	// current integer state (not the worker's possibly stale live shadows),
	// and ModelScale the matching ‖M_i‖₁/D magnitudes. They are populated
	// only for configurations whose prediction path reads them, and feed
	// the per-bit vote of MergeQuantized.
	ModelsBin   []*hdc.Binary
	ClustersBin []*hdc.Binary
	ModelScale  []float64
	// CalibA, CalibB are the worker's output calibration, fused by
	// sample-weighted averaging (coordinators that hold training data
	// usually refit calibration after merging instead).
	CalibA, CalibB float64
}

// syncBase is the state MarkSync records for Delta to diff against.
// Buffers are reused across repeated MarkSync calls on the same model.
type syncBase struct {
	samples  uint64
	models   []hdc.Vector
	clusters []hdc.Vector
	assignN  []uint64
	ops      [hdc.NumOps]uint64
}

// MarkSync records the model's current learned state as the baseline for a
// later Delta call. Workers call it right after syncing to the
// coordinator's state (FitParallel does both in one step); a streaming
// replica calls it after each successful delta shipment. Repeated calls
// reuse the baseline buffers.
func (m *Model) MarkSync() {
	if m.base == nil {
		m.base = &syncBase{
			models:   make([]hdc.Vector, len(m.models)),
			clusters: make([]hdc.Vector, len(m.clusters)),
		}
		for i := range m.base.models {
			m.base.models[i] = hdc.NewVector(m.dim)
		}
		for i := range m.base.clusters {
			m.base.clusters[i] = hdc.NewVector(m.dim)
		}
		if m.assignN != nil {
			m.base.assignN = make([]uint64, len(m.assignN))
		}
	}
	for i, v := range m.models {
		copy(m.base.models[i], v)
	}
	for i, v := range m.clusters {
		copy(m.base.clusters[i], v)
	}
	copy(m.base.assignN, m.assignN)
	m.base.samples = m.samples
	m.base.ops = m.TrainCounter.Snapshot()
}

// Delta returns the additive difference between the model's current learned
// state and its MarkSync baseline. The returned delta owns its memory: the
// model may keep training (or re-MarkSync) immediately.
func (m *Model) Delta() (*Delta, error) {
	if m.base == nil {
		return nil, fmt.Errorf("core: Delta before MarkSync")
	}
	d := &Delta{
		Samples: m.samples - m.base.samples,
		Models:  make([]hdc.Vector, len(m.models)),
		CalibA:  m.calibA,
		CalibB:  m.calibB,
	}
	for i, v := range m.models {
		dv := hdc.NewVector(m.dim)
		for j := range dv {
			dv[j] = v[j] - m.base.models[i][j]
		}
		d.Models[i] = dv
	}
	if m.clusters != nil {
		d.Clusters = make([]hdc.Vector, len(m.clusters))
		for i, v := range m.clusters {
			dv := hdc.NewVector(m.dim)
			for j := range dv {
				dv[j] = v[j] - m.base.clusters[i][j]
			}
			d.Clusters[i] = dv
		}
	}
	if m.assignN != nil {
		d.AssignN = make([]uint64, len(m.assignN))
		for i := range d.AssignN {
			d.AssignN[i] = m.assignN[i] - m.base.assignN[i]
		}
	}
	cur := m.TrainCounter.Snapshot()
	for op := hdc.Op(0); op < hdc.NumOps; op++ {
		d.Ops.Add(op, cur[op]-m.base.ops[op])
	}
	// Fresh shadows for the quantized merge: re-quantize from the current
	// integer state (the live shadows only refresh per epoch, so they may
	// still hold the baseline's bits). Charged to no counter — shipping a
	// delta is orchestration, not a modeled training kernel.
	if m.cfg.PredictMode.UsesBinaryModel() {
		d.ModelsBin = make([]*hdc.Binary, len(m.models))
		d.ModelScale = make([]float64, len(m.models))
		for i, v := range m.models {
			d.ModelsBin[i] = hdc.Pack(nil, v)
			d.ModelScale[i] = hdc.L1Norm(nil, v) / float64(m.dim)
		}
	}
	if m.cfg.ClusterMode == ClusterBinary {
		d.ClustersBin = make([]*hdc.Binary, len(m.clusters))
		for i, v := range m.clusters {
			d.ClustersBin[i] = hdc.Pack(nil, v)
		}
	}
	return d, nil
}

// checkDelta validates one delta's shape against the model.
func (m *Model) checkDelta(d *Delta) error {
	if d == nil {
		return fmt.Errorf("core: nil delta")
	}
	if len(d.Models) != len(m.models) {
		return fmt.Errorf("core: delta has %d model vectors, model has %d", len(d.Models), len(m.models))
	}
	if err := hdc.CheckDims(m.dim, d.Models...); err != nil {
		return fmt.Errorf("core: delta model vectors: %w", err)
	}
	if m.clusters != nil {
		if len(d.Clusters) != len(m.clusters) {
			return fmt.Errorf("core: delta has %d cluster vectors, model has %d", len(d.Clusters), len(m.clusters))
		}
		if err := hdc.CheckDims(m.dim, d.Clusters...); err != nil {
			return fmt.Errorf("core: delta cluster vectors: %w", err)
		}
	}
	if m.assignN != nil && len(d.AssignN) != len(m.assignN) {
		return fmt.Errorf("core: delta has %d assignment counts, model has %d", len(d.AssignN), len(m.assignN))
	}
	return nil
}

// sortDeltas returns the non-empty deltas in a canonical content-derived
// order, so every floating-point fold below visits contributions in the
// same sequence no matter how the caller ordered the shards — the merge is
// commutative not just to tolerance but, for any fixed delta multiset, to
// the bit.
func sortDeltas(deltas []*Delta) []*Delta {
	ds := make([]*Delta, 0, len(deltas))
	for _, d := range deltas {
		if d.Samples > 0 {
			ds = append(ds, d)
		}
	}
	sort.SliceStable(ds, func(a, b int) bool { return deltaLess(ds[a], ds[b]) })
	return ds
}

// deltaLess is a deterministic total order on delta contents: sample count,
// then lexicographic Float64bits of the model movements.
func deltaLess(a, b *Delta) bool {
	if a.Samples != b.Samples {
		return a.Samples < b.Samples
	}
	for i := range a.Models {
		av, bv := a.Models[i], b.Models[i]
		for j := range av {
			ab, bb := math.Float64bits(av[j]), math.Float64bits(bv[j])
			if ab != bb {
				return ab < bb
			}
		}
	}
	return false
}

// mergeCommon validates the deltas and folds everything except the binary
// shadows: the sample-count-weighted bundle of the integer vectors, the
// additive fusion of sample/assignment counts and op charges, and the
// weighted calibration. It returns the deltas in canonical order plus the
// total sample weight (0 means the merge was a no-op).
func (m *Model) mergeCommon(deltas []*Delta) ([]*Delta, uint64, error) {
	for _, d := range deltas {
		if err := m.checkDelta(d); err != nil {
			return nil, 0, err
		}
	}
	ds := sortDeltas(deltas)
	var total uint64
	for _, d := range ds {
		total += d.Samples
	}
	if total == 0 {
		return ds, 0, nil
	}
	// Sample-count-weighted bundling: the merged state is the
	// sample-weighted average of the workers' states (base + Σ wᵢ·Δᵢ with
	// Σ wᵢ = 1) — iterative parameter mixing, which for randomly sharded
	// least squares is the divide-and-conquer estimator. Summing the deltas
	// unweighted would instead apply every shard's correction of the shared
	// starting error N times over and overshoot. Merge arithmetic is
	// deliberately uncharged: it is coordination, not a modeled kernel, and
	// charging it would break the exact additivity of worker op counts.
	var calibA, calibB float64
	for _, d := range ds {
		w := float64(d.Samples) / float64(total)
		for i := range m.models {
			hdc.AXPY(nil, m.models[i], w, d.Models[i])
		}
		for i := range m.clusters {
			hdc.AXPY(nil, m.clusters[i], w, d.Clusters[i])
		}
		for i := range d.AssignN {
			m.assignN[i] += d.AssignN[i]
		}
		m.samples += d.Samples
		m.TrainCounter.AddCounter(&d.Ops)
		calibA += w * d.CalibA
		calibB += w * d.CalibB
	}
	if m.cfg.PredictMode.UsesBinaryModel() {
		m.calibA, m.calibB = calibA, calibB
	}
	m.trained = true
	return ds, total, nil
}

// Merge folds worker deltas into the model by sample-count-weighted
// bundling: each integer cluster/model hypervector moves by the weighted
// average of the deltas' movements (weights nᵢ/Σn), assignment counts,
// sample counts, and op charges fuse additively, and the output calibration
// becomes the sample-weighted average of the workers' calibrations. Binary
// shadows are NOT re-quantized here — call RefreshShadows (or let the
// training orchestrator's end-of-epoch step do it), or use MergeQuantized,
// whose per-bit vote replaces the refresh for binary configurations.
//
// The result is independent of the order deltas are passed in: deltas fold
// in a canonical content-derived order, so permuting the arguments
// reproduces the merged state bit for bit.
//
// Merge mutates the model, so the single-writer contract applies.
func (m *Model) Merge(deltas ...*Delta) error {
	_, _, err := m.mergeCommon(deltas)
	return err
}

// MergeQuantized is Merge plus the binarized-bundling shadow merge for
// quantized configurations (binary clusters and/or binary models): instead
// of re-quantizing shadows from the merged floating-point state, every bit
// of the merged shadow is decided by a sample-count-weighted majority vote
// over the deltas' freshly quantized shadows (ties keep the coordinator's
// current bit), and the per-model scales and calibration fuse by weighted
// averaging. The vote is pure integer arithmetic, which is what a replica
// fleet shipping bit-packed deltas (Dim bits per vector instead of 64·Dim)
// computes identically on every node regardless of arrival order.
func (m *Model) MergeQuantized(deltas ...*Delta) error {
	if !m.cfg.PredictMode.UsesBinaryModel() && m.cfg.ClusterMode != ClusterBinary {
		return fmt.Errorf("core: MergeQuantized requires a binary model or binary clusters, have %s/%s", m.cfg.ClusterMode, m.cfg.PredictMode)
	}
	for _, d := range deltas {
		if d == nil {
			return fmt.Errorf("core: nil delta")
		}
		if d.Samples == 0 {
			continue
		}
		if m.cfg.PredictMode.UsesBinaryModel() && (len(d.ModelsBin) != len(m.modelsBin) || len(d.ModelScale) != len(m.modelScale)) {
			return fmt.Errorf("core: delta carries no binary model shadows for the quantized merge")
		}
		if m.cfg.ClusterMode == ClusterBinary && len(d.ClustersBin) != len(m.clustersBin) {
			return fmt.Errorf("core: delta carries no binary cluster shadows for the quantized merge")
		}
	}
	ds, total, err := m.mergeCommon(deltas)
	if err != nil || total == 0 {
		return err
	}
	votes := make([]int64, m.dim)
	if m.cfg.PredictMode.UsesBinaryModel() {
		for i := range m.modelsBin {
			voteBits(m.modelsBin[i], votes, ds, func(d *Delta) *hdc.Binary { return d.ModelsBin[i] })
			scale := 0.0
			for _, d := range ds {
				scale += float64(d.Samples) / float64(total) * d.ModelScale[i]
			}
			m.modelScale[i] = scale
		}
	}
	if m.cfg.ClusterMode == ClusterBinary {
		for i := range m.clustersBin {
			voteBits(m.clustersBin[i], votes, ds, func(d *Delta) *hdc.Binary { return d.ClustersBin[i] })
		}
	}
	return nil
}

// AdoptState overwrites the model's learned state with src's — hypervector
// stores, binary shadows, scales, calibration, and the sample/assignment
// census — reusing the model's own buffers. The rng, counters, scratch
// pool, and any MarkSync baseline stay the model's own. This is the
// replication adoption step: a replica that folded a round of deltas into
// its merged base pushes that state into its serving model (or its local
// training model) with one call. Both models must come from the same
// configuration; anything else is rejected before any state is touched.
//
// AdoptState mutates the model, so the single-writer contract applies.
func (m *Model) AdoptState(src *Model) error {
	if src == nil {
		return fmt.Errorf("core: AdoptState from nil model")
	}
	if src.cfg != m.cfg || src.dim != m.dim {
		return fmt.Errorf("core: AdoptState across configurations (dim %d/%d)", src.dim, m.dim)
	}
	if len(src.models) != len(m.models) || len(src.clusters) != len(m.clusters) ||
		len(src.modelsBin) != len(m.modelsBin) || len(src.clustersBin) != len(m.clustersBin) {
		return fmt.Errorf("core: AdoptState across model shapes")
	}
	m.copyStateFrom(src)
	return nil
}

// StateFingerprint digests the learned state — sample census, calibration,
// integer hypervector stores, binary shadows, scales — into one 64-bit
// FNV-1a value over the exact Float64bits. Two models fingerprint equal iff
// their learned states are bit-identical, which is what the replication
// layer's convergence checks (internal/repl, scripts/replica_smoke.sh)
// compare across a healed fleet. The encoder, counters, and scratch state
// do not participate: replicas share those by construction.
func (m *Model) StateFingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(m.samples)
	mix(math.Float64bits(m.calibA))
	mix(math.Float64bits(m.calibB))
	for _, v := range m.models {
		for _, x := range v {
			mix(math.Float64bits(x))
		}
	}
	for _, v := range m.clusters {
		for _, x := range v {
			mix(math.Float64bits(x))
		}
	}
	for _, n := range m.assignN {
		mix(n)
	}
	for _, s := range m.modelScale {
		mix(math.Float64bits(s))
	}
	for _, b := range m.modelsBin {
		for _, w := range b.Words {
			mix(w)
		}
	}
	for _, b := range m.clustersBin {
		for _, w := range b.Words {
			mix(w)
		}
	}
	return h
}

// voteBits overwrites dst with the sample-weighted per-bit majority of the
// deltas' shadows, keeping dst's current bit on a tie. votes is caller
// scratch of dimension dst.Dim.
func voteBits(dst *hdc.Binary, votes []int64, ds []*Delta, bin func(*Delta) *hdc.Binary) {
	for j := range votes {
		votes[j] = 0
	}
	for _, d := range ds {
		w := int64(d.Samples)
		b := bin(d)
		for j := 0; j < dst.Dim; j++ {
			if b.Bit(j) {
				votes[j] += w
			} else {
				votes[j] -= w
			}
		}
	}
	for j := 0; j < dst.Dim; j++ {
		switch {
		case votes[j] > 0:
			dst.SetBit(j, true)
		case votes[j] < 0:
			dst.SetBit(j, false)
		}
	}
}
