package core

import (
	"sync/atomic"
	"time"
)

// Stage identifies one phase of the prediction pipeline for per-stage wall
// time accounting. The stages mirror the dataflow of the paper's Fig. 4:
// feature standardization (facade layer), the Eq. 1 nonlinear encoding, the
// Eq. 5 cluster similarity search plus softmax, and the Eq. 6
// confidence-weighted readout (including the output calibration of
// binary-model modes).
type Stage int

const (
	// StageStandardize is feature/target standardization. core never
	// records it — the reghd facade does, around its Scaler — but the slot
	// lives here so one accumulator covers the whole serving path.
	StageStandardize Stage = iota
	// StageEncode is the hyperdimensional encoding of the query (Eq. 1
	// projection plus bit-packing).
	StageEncode
	// StageSimilarity is the cluster similarity search and softmax
	// normalization (Eqs. 5); zero calls for single-model configurations.
	StageSimilarity
	// StageReadout is the per-model dot products, confidence-weighted
	// accumulation, and output calibration (Eq. 6).
	StageReadout

	// NumStages is the number of prediction stages.
	NumStages
)

var stageNames = [NumStages]string{"standardize", "encode", "similarity", "readout"}

// String returns the lower-case stage name used in metrics and reports.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "stage(?)"
	}
	return stageNames[s]
}

// StageTimes accumulates per-stage wall time and call counts with atomic
// adds, so any number of concurrent predictions may record into one
// accumulator while readers summarize it. The zero value is ready to use; a
// nil *StageTimes is valid everywhere and records nothing, mirroring the
// nil-Counter convention of the instrumented kernels.
//
// Timing costs two time.Now calls per recorded stage, so the prediction
// paths only take timestamps when a StageTimes is installed (Model.Stages,
// Snapshot.SetStages, Engine.EnableMetrics).
type StageTimes struct {
	ns    [NumStages]atomic.Int64
	calls [NumStages]atomic.Int64
}

// Observe records one execution of stage s that took d. Observe on a nil
// accumulator is a no-op.
func (t *StageTimes) Observe(s Stage, d time.Duration) {
	if t == nil || s < 0 || s >= NumStages {
		return
	}
	t.ns[s].Add(int64(d))
	t.calls[s].Add(1)
}

// StageStat is the accumulated cost of one prediction stage.
type StageStat struct {
	// Calls is how many times the stage executed.
	Calls int64 `json:"calls"`
	// TotalNS is the total wall time spent in the stage, in nanoseconds.
	TotalNS int64 `json:"total_ns"`
	// MeanNS is TotalNS/Calls (0 when the stage never ran).
	MeanNS int64 `json:"mean_ns"`
}

// StageSummary reports every stage's accumulated cost, JSON-ready for the
// /metrics endpoint.
type StageSummary struct {
	Standardize StageStat `json:"standardize"`
	Encode      StageStat `json:"encode"`
	Similarity  StageStat `json:"similarity"`
	Readout     StageStat `json:"readout"`
}

// Stat returns the accumulated cost of one stage. Counts and times are
// loaded independently, so a summary taken under concurrent recording is
// consistent per field, not across fields.
func (t *StageTimes) Stat(s Stage) StageStat {
	if t == nil || s < 0 || s >= NumStages {
		return StageStat{}
	}
	st := StageStat{Calls: t.calls[s].Load(), TotalNS: t.ns[s].Load()}
	if st.Calls > 0 {
		st.MeanNS = st.TotalNS / st.Calls
	}
	return st
}

// Summary returns every stage's accumulated cost.
func (t *StageTimes) Summary() StageSummary {
	return StageSummary{
		Standardize: t.Stat(StageStandardize),
		Encode:      t.Stat(StageEncode),
		Similarity:  t.Stat(StageSimilarity),
		Readout:     t.Stat(StageReadout),
	}
}

// Reset zeroes all stages. Concurrent Observes racing a Reset land either
// before or after it per field.
func (t *StageTimes) Reset() {
	if t == nil {
		return
	}
	for i := range t.ns {
		t.ns[i].Store(0)
		t.calls[i].Store(0)
	}
}
