package core

import (
	"strings"
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Models != 8 || cfg.LearningRate != 0.1 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

func TestValidateFillsDefaults(t *testing.T) {
	var cfg Config
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Models == 0 || cfg.LearningRate == 0 || cfg.SoftmaxBeta == 0 ||
		cfg.Epochs == 0 || cfg.Tol == 0 || cfg.Patience == 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Config{
		{Models: -1},
		{LearningRate: -0.5},
		{LearningRate: 1.5},
		{SoftmaxBeta: -1},
		{Epochs: -3},
		{Tol: -1},
		{Patience: -2},
		{UpdateRule: UpdateRule(9)},
		{ClusterMode: ClusterMode(9)},
		{PredictMode: PredictMode(9)},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, c)
		}
	}
}

func TestModeStrings(t *testing.T) {
	checks := []struct {
		got, want string
	}{
		{UpdateWeighted.String(), "weighted"},
		{UpdateHardMax.String(), "hardmax"},
		{ClusterInteger.String(), "integer-cluster"},
		{ClusterBinary.String(), "binary-cluster"},
		{ClusterNaiveBinary.String(), "naive-binary-cluster"},
		{PredictFull.String(), "full"},
		{PredictBinaryQuery.String(), "bquery-imodel"},
		{PredictBinaryModel.String(), "iquery-bmodel"},
		{PredictBinaryBoth.String(), "bquery-bmodel"},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Fatalf("String() = %q, want %q", c.got, c.want)
		}
	}
	for _, s := range []string{UpdateRule(7).String(), ClusterMode(7).String(), PredictMode(7).String()} {
		if !strings.Contains(s, "7") {
			t.Fatalf("out-of-range String %q should include the number", s)
		}
	}
}

func TestPredictModeHelpers(t *testing.T) {
	if PredictFull.UsesBinaryModel() || PredictBinaryQuery.UsesBinaryModel() {
		t.Fatal("integer-model modes claim binary model")
	}
	if !PredictBinaryModel.UsesBinaryModel() || !PredictBinaryBoth.UsesBinaryModel() {
		t.Fatal("binary-model modes deny binary model")
	}
	if !PredictFull.UsesRawQuery() || !PredictBinaryModel.UsesRawQuery() {
		t.Fatal("raw-query modes deny raw query")
	}
	if PredictBinaryQuery.UsesRawQuery() || PredictBinaryBoth.UsesRawQuery() {
		t.Fatal("binary-query modes claim raw query")
	}
}
