package core

import (
	"math/rand"
	"testing"
)

func TestSparsifyValidation(t *testing.T) {
	m := newModel(t, 3, 128, Config{Models: 1, Epochs: 1, Seed: 1})
	if err := m.Sparsify(0.5); err != ErrNotTrained {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
	all := makeLinear(rand.New(rand.NewSource(1)), 100, 3, 0.05)
	if _, err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	if err := m.Sparsify(-0.1); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if err := m.Sparsify(1); err == nil {
		t.Fatal("fraction 1 accepted")
	}
}

func TestSparsifyZeroesRequestedFraction(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(2)), 300, 3, 0.05)
	m := newModel(t, 3, 1000, Config{Models: 4, Epochs: 5, Seed: 3})
	if _, err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	if s := m.ModelSparsity(); s > 0.01 {
		t.Fatalf("fresh trained model already sparse: %v", s)
	}
	if err := m.Sparsify(0.5); err != nil {
		t.Fatal(err)
	}
	if s := m.ModelSparsity(); s < 0.49 || s > 0.52 {
		t.Fatalf("sparsity %v, want ≈0.5", s)
	}
}

func TestSparsifyNoOpAtZero(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(3)), 100, 3, 0.05)
	m := newModel(t, 3, 256, Config{Models: 1, Epochs: 3, Seed: 4})
	if _, err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	before, _ := m.Predict(all.X[0])
	if err := m.Sparsify(0); err != nil {
		t.Fatal(err)
	}
	after, _ := m.Predict(all.X[0])
	if before != after {
		t.Fatal("Sparsify(0) changed predictions")
	}
}

func TestSparsifyGracefulQualityLoss(t *testing.T) {
	// Dropping the lowest-magnitude half of the model must not destroy the
	// fit: the information is spread holographically, and the dropped
	// components are by construction the least informative.
	all := makeLinear(rand.New(rand.NewSource(4)), 800, 4, 0.05)
	train := all.Subset(seqInts(0, 600))
	test := all.Subset(seqInts(600, 800))
	m := newModel(t, 4, 2000, Config{Models: 1, Epochs: 20, Seed: 5, PredictMode: PredictBinaryQuery})
	if _, err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	clean, _ := m.Evaluate(test)
	if err := m.Sparsify(0.5); err != nil {
		t.Fatal(err)
	}
	sparse, _ := m.Evaluate(test)
	if sparse > clean*3+0.5 {
		t.Fatalf("50%% sparsity blew up MSE: clean %v sparse %v", clean, sparse)
	}
	// Extreme sparsity must hurt more than moderate sparsity.
	if err := m.Sparsify(0.95); err != nil {
		t.Fatal(err)
	}
	extreme, _ := m.Evaluate(test)
	if extreme < sparse {
		t.Fatalf("95%% sparsity (%v) should not beat 50%% (%v)", extreme, sparse)
	}
}

func TestSparsifyThenFineTuneRecovers(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(5)), 600, 4, 0.05)
	train := all.Subset(seqInts(0, 450))
	test := all.Subset(seqInts(450, 600))
	m := newModel(t, 4, 1000, Config{Models: 1, Epochs: 15, Seed: 6, PredictMode: PredictBinaryQuery})
	if _, err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := m.Sparsify(0.7); err != nil {
		t.Fatal(err)
	}
	sparseMSE, _ := m.Evaluate(test)
	if _, err := m.Fit(train); err != nil { // fine-tune densifies again
		t.Fatal(err)
	}
	tuned, _ := m.Evaluate(test)
	if tuned > sparseMSE {
		t.Fatalf("fine-tuning after sparsification should recover quality: %v -> %v", sparseMSE, tuned)
	}
}
