package core

import "reghd/internal/hdc"

// PartialFit performs one single-pass online update with the sample (x, y):
// encode, predict, and apply the Eq. 7/8 updates. It is the streaming
// entry point for IoT-style deployments where data arrives one sample at a
// time and no retraining passes are possible (the paper's "single-pass
// model" of §2.3).
//
// Binary shadows are NOT refreshed here (that costs a full re-quantization
// per model); call RefreshShadows periodically — e.g. every few hundred
// samples — when running a quantized configuration.
//
// PartialFit mutates the model, so it must not overlap with any other call
// on the same Model. To serve predictions concurrently with a PartialFit
// stream, publish Snapshots between updates (see Model.Snapshot and the
// reghd facade's Engine).
//
// The sample is validated before any state changes: a NaN/Inf target or a
// nil/wrong-length/non-finite feature vector returns an error wrapping
// ErrInvalidInput and leaves the model untouched. Without this gate one bad
// streaming sample would push non-finite values into the cluster and model
// hypervectors, permanently poisoning them.
func (m *Model) PartialFit(x []float64, y float64) error {
	if err := ValidateRow(x, m.enc.Features()); err != nil {
		return err
	}
	if err := ValidateTarget(y); err != nil {
		return err
	}
	e, err := m.encode(m.TrainCounter, x)
	if err != nil {
		return err
	}
	yhat := m.predictTraining(m.TrainCounter, e)
	m.update(m.TrainCounter, e, y, yhat)
	m.trained = true
	return nil
}

// RefreshShadows re-quantizes the binary cluster and model shadows from the
// integer state and, for binary-model configurations, refreshes the output
// calibration from the provided recent samples (pass nil to keep the
// current calibration). Streaming callers should invoke it periodically.
func (m *Model) RefreshShadows(xs [][]float64, ys []float64) error {
	m.refreshBinaryShadows(m.TrainCounter)
	if !m.cfg.PredictMode.UsesBinaryModel() || len(xs) == 0 {
		return nil
	}
	if len(xs) != len(ys) {
		return hdc.ErrDimensionMismatch
	}
	var sp, sy, spp, spy, cnt float64
	for i, x := range xs {
		e, err := m.encode(m.TrainCounter, x)
		if err != nil {
			return err
		}
		p := m.predictWith(m.TrainCounter, e, m.modelDot)
		sp += p
		sy += ys[i]
		spp += p * p
		spy += p * ys[i]
		cnt++
	}
	varP := spp/cnt - (sp/cnt)*(sp/cnt)
	if varP < 1e-12 {
		m.calibA, m.calibB = 1, sy/cnt
		return nil
	}
	m.calibA = (spy/cnt - sp/cnt*sy/cnt) / varP
	m.calibB = sy/cnt - m.calibA*sp/cnt
	return nil
}
