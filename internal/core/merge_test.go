package core

import (
	"math"
	"math/rand"
	"testing"

	"reghd/internal/encoding"
	"reghd/internal/hdc"
)

// newMergeModel builds a counted model for the merge tests.
func newMergeModel(t testing.TB, cfg Config, feats, dim int) *Model {
	t.Helper()
	enc, err := encoding.NewNonlinearProjection(rand.New(rand.NewSource(99)), feats, dim, 1.0, encoding.ProjBipolar)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.TrainCounter = &hdc.Counter{}
	return m
}

// trainWorkers clones the base model n times, streams disjoint shards into
// the clones via PartialFit, and returns the resulting deltas. Each clone
// gets a private counter so its delta carries exactly its own op charges.
func trainWorkers(t testing.TB, base *Model, d interface {
	Row(i int) ([]float64, float64)
	Len() int
}, n int) []*Delta {
	t.Helper()
	deltas := make([]*Delta, n)
	for w := 0; w < n; w++ {
		c := base.Clone()
		c.TrainCounter = &hdc.Counter{}
		c.MarkSync()
		for i := w; i < d.Len(); i += n {
			x, y := d.Row(i)
			if err := c.PartialFit(x, y); err != nil {
				t.Fatal(err)
			}
		}
		dl, err := c.Delta()
		if err != nil {
			t.Fatal(err)
		}
		deltas[w] = dl
	}
	return deltas
}

// rowsOf adapts a dataset to the Row/Len view trainWorkers wants.
type rowsOf struct {
	x [][]float64
	y []float64
}

func (r rowsOf) Row(i int) ([]float64, float64) { return r.x[i], r.y[i] }
func (r rowsOf) Len() int                       { return len(r.x) }

// mergeBaseConfig is a small quantized configuration exercising every store
// a merge touches: binary clusters, binary models, scales, calibration.
func mergeBaseConfig() Config {
	cfg := DefaultConfig()
	cfg.Models = 4
	cfg.Epochs = 3
	cfg.Seed = 11
	cfg.ClusterMode = ClusterBinary
	cfg.PredictMode = PredictBinaryBoth
	return cfg
}

// statesEqual reports whether the two models' learned states are
// Float64bits-identical (vectors, shadows, scales, calibration, census).
func statesEqual(t *testing.T, a, b *Model) bool {
	t.Helper()
	eqVec := func(u, v []hdc.Vector) bool {
		for i := range u {
			for j := range u[i] {
				if math.Float64bits(u[i][j]) != math.Float64bits(v[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if !eqVec(a.models, b.models) || !eqVec(a.clusters, b.clusters) {
		return false
	}
	for i := range a.modelsBin {
		for w := range a.modelsBin[i].Words {
			if a.modelsBin[i].Words[w] != b.modelsBin[i].Words[w] {
				return false
			}
		}
	}
	for i := range a.clustersBin {
		for w := range a.clustersBin[i].Words {
			if a.clustersBin[i].Words[w] != b.clustersBin[i].Words[w] {
				return false
			}
		}
	}
	for i := range a.modelScale {
		if math.Float64bits(a.modelScale[i]) != math.Float64bits(b.modelScale[i]) {
			return false
		}
	}
	if math.Float64bits(a.calibA) != math.Float64bits(b.calibA) ||
		math.Float64bits(a.calibB) != math.Float64bits(b.calibB) {
		return false
	}
	if a.samples != b.samples {
		return false
	}
	for i := range a.assignN {
		if a.assignN[i] != b.assignN[i] {
			return false
		}
	}
	return true
}

// TestMergeOrderInvariant pins the commutativity contract: merging the same
// delta multiset in any argument order produces a Float64bits-identical
// model — exactly, not to tolerance — on both the quantized and the
// full-precision paths, because deltas fold in a canonical content-derived
// order.
func TestMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := makeLinear(rng, 180, 4, 0.05)
	for _, tc := range []struct {
		name      string
		cfg       Config
		quantized bool
	}{
		{"quantized", mergeBaseConfig(), true},
		{"full-precision", func() Config {
			cfg := mergeBaseConfig()
			cfg.ClusterMode = ClusterInteger
			cfg.PredictMode = PredictFull
			return cfg
		}(), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := newMergeModel(t, tc.cfg, 4, 256)
			if _, err := base.Fit(data); err != nil {
				t.Fatal(err)
			}
			deltas := trainWorkers(t, base, rowsOf{data.X, data.Y}, 4)
			perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}
			var first *Model
			for pi, p := range perms {
				m := base.Clone()
				m.TrainCounter = &hdc.Counter{}
				ordered := make([]*Delta, len(p))
				for i, j := range p {
					ordered[i] = deltas[j]
				}
				var err error
				if tc.quantized {
					err = m.MergeQuantized(ordered...)
				} else {
					err = m.Merge(ordered...)
				}
				if err != nil {
					t.Fatal(err)
				}
				if first == nil {
					first = m
					continue
				}
				if !statesEqual(t, first, m) {
					t.Fatalf("permutation %v produced a different merged state", perms[pi])
				}
			}
		})
	}
}

// TestMergeCounterAdditivity pins the op-accounting contract: the merged
// model's training counter equals the base counter plus the exact sum of
// the workers' charges — the merge itself charges nothing.
func TestMergeCounterAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := makeLinear(rng, 120, 4, 0.05)
	base := newMergeModel(t, mergeBaseConfig(), 4, 256)
	if _, err := base.Fit(data); err != nil {
		t.Fatal(err)
	}
	before := base.TrainCounter.Snapshot()
	deltas := trainWorkers(t, base, rowsOf{data.X, data.Y}, 3)
	want := before
	for _, d := range deltas {
		s := d.Ops.Snapshot()
		for op := range want {
			want[op] += s[op]
		}
	}
	if err := base.MergeQuantized(deltas...); err != nil {
		t.Fatal(err)
	}
	if got := base.TrainCounter.Snapshot(); got != want {
		t.Fatalf("merged counter not exactly additive:\n got %v\nwant %v", got, want)
	}
}

// TestMergeWeightsBySamples pins the weighted-averaging semantics: two
// equal-weight deltas moving a component by +2 and +4 land the merged
// component at +3 (the average), not +6 (the sum a naive delta-add would
// produce — which overshoots by the worker count on error components the
// shards share).
func TestMergeWeightsBySamples(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Models = 1
	cfg.ClusterMode = ClusterInteger
	cfg.PredictMode = PredictBinaryQuery
	m := newMergeModel(t, cfg, 2, 64)
	mk := func(move float64, samples uint64) *Delta {
		d := &Delta{Samples: samples, Models: []hdc.Vector{hdc.NewVector(64)}}
		for j := range d.Models[0] {
			d.Models[0][j] = move
		}
		return d
	}
	if err := m.Merge(mk(2, 10), mk(4, 10)); err != nil {
		t.Fatal(err)
	}
	if got := m.models[0][0]; math.Abs(got-3) > 1e-12 {
		t.Fatalf("component = %v, want the sample-weighted average 3", got)
	}
	if m.SampleCount() != 20 {
		t.Fatalf("samples = %d, want 20 (additive)", m.SampleCount())
	}
	// Unequal weights: 10 samples at +2 and 30 at +4 average to +3.5.
	m2 := newMergeModel(t, cfg, 2, 64)
	if err := m2.Merge(mk(2, 10), mk(4, 30)); err != nil {
		t.Fatal(err)
	}
	if got := m2.models[0][0]; math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("component = %v, want 3.5", got)
	}
}

// TestMergeAssignCensusAdditive pins that the per-cluster assignment
// census fuses additively and matches what the workers actually counted.
func TestMergeAssignCensusAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := makePiecewise(rng, 160, 4, 0.05)
	base := newMergeModel(t, mergeBaseConfig(), 4, 256)
	if _, err := base.Fit(data); err != nil {
		t.Fatal(err)
	}
	baseCensus := base.AssignCounts()
	deltas := trainWorkers(t, base, rowsOf{data.X, data.Y}, 4)
	want := append([]uint64(nil), baseCensus...)
	var deltaTotal uint64
	for _, d := range deltas {
		for i, n := range d.AssignN {
			want[i] += n
			deltaTotal += n
		}
	}
	if deltaTotal != uint64(data.Len()) {
		t.Fatalf("workers counted %d assignments over %d rows", deltaTotal, data.Len())
	}
	if err := base.MergeQuantized(deltas...); err != nil {
		t.Fatal(err)
	}
	got := base.AssignCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("census[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestMergeErrors pins the API error paths: Delta before MarkSync,
// MergeQuantized on a configuration with no quantized stores, deltas whose
// shapes don't match, and the zero-delta no-op.
func TestMergeErrors(t *testing.T) {
	cfg := mergeBaseConfig()
	m := newMergeModel(t, cfg, 4, 256)
	if _, err := m.Delta(); err == nil {
		t.Fatal("Delta before MarkSync should fail")
	}
	full := DefaultConfig()
	full.Models = 4
	fm := newMergeModel(t, full, 4, 256)
	if err := fm.MergeQuantized(); err == nil {
		t.Fatal("MergeQuantized on a full-precision config should fail")
	}
	if err := m.Merge(&Delta{Samples: 1, Models: []hdc.Vector{hdc.NewVector(256)}}); err == nil {
		t.Fatal("Merge with a wrong-arity delta should fail")
	}
	if err := m.Merge(nil); err == nil {
		t.Fatal("Merge with a nil delta should fail")
	}
	// Merging nothing (or only zero-sample deltas) is a no-op, not an error.
	m.MarkSync()
	d, err := m.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if d.Samples != 0 {
		t.Fatalf("untouched delta has %d samples", d.Samples)
	}
	if err := m.Merge(d); err != nil {
		t.Fatal(err)
	}
	if m.Trained() {
		t.Fatal("zero-sample merge must not mark the model trained")
	}
}

// TestDeltaIsolated pins that a delta owns its memory: training the worker
// further after Delta must not change the extracted delta.
func TestDeltaIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := makeLinear(rng, 60, 4, 0.05)
	base := newMergeModel(t, mergeBaseConfig(), 4, 256)
	if _, err := base.Fit(data); err != nil {
		t.Fatal(err)
	}
	c := base.Clone()
	c.MarkSync()
	for i := 0; i < 20; i++ {
		if err := c.PartialFit(data.X[i], data.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	d1, err := c.Delta()
	if err != nil {
		t.Fatal(err)
	}
	snap := append(hdc.Vector(nil), d1.Models[0]...)
	for i := 20; i < 40; i++ {
		if err := c.PartialFit(data.X[i], data.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	for j := range snap {
		if math.Float64bits(snap[j]) != math.Float64bits(d1.Models[0][j]) {
			t.Fatal("delta aliases worker state: further training mutated it")
		}
	}
}

// FuzzMergeCommutative fuzzes the order-invariance contract over random
// shard contents and argument permutations: any permutation of the same
// deltas must merge to a bit-identical model.
func FuzzMergeCommutative(f *testing.F) {
	f.Add(int64(1), uint8(1))
	f.Add(int64(42), uint8(7))
	f.Add(int64(-3), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, permSel uint8) {
		rng := rand.New(rand.NewSource(seed))
		data := makeLinear(rng, 60, 3, 0.1)
		cfg := mergeBaseConfig()
		cfg.Epochs = 1
		base := newMergeModel(t, cfg, 3, 128)
		if _, err := base.Fit(data); err != nil {
			t.Fatal(err)
		}
		deltas := trainWorkers(t, base, rowsOf{data.X, data.Y}, 3)
		perm := rand.New(rand.NewSource(int64(permSel))).Perm(len(deltas))
		shuffled := make([]*Delta, len(deltas))
		for i, j := range perm {
			shuffled[i] = deltas[j]
		}
		a := base.Clone()
		b := base.Clone()
		if err := a.MergeQuantized(deltas...); err != nil {
			t.Fatal(err)
		}
		if err := b.MergeQuantized(shuffled...); err != nil {
			t.Fatal(err)
		}
		if !statesEqual(t, a, b) {
			t.Fatalf("permutation %v changed the merged state", perm)
		}
	})
}
