package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"

	"reghd/internal/encoding"
	"reghd/internal/hdc"
)

// modelState is the wire form of a trained model. The encoder travels as an
// encoding.Encoder interface value (the concrete encoders register
// themselves with gob).
type modelState struct {
	Cfg            Config
	Encoder        encoding.Encoder
	Clusters       []hdc.Vector
	ClustersBin    []*hdc.Binary
	Models         []hdc.Vector
	ModelsBin      []*hdc.Binary
	ModelScale     []float64
	CalibA, CalibB float64
	Trained        bool
}

// Save serializes the model (including its encoder and any binary shadows)
// to w in gob format.
func (m *Model) Save(w io.Writer) error {
	st := modelState{
		Cfg:         m.cfg,
		Encoder:     m.enc,
		Clusters:    m.clusters,
		ClustersBin: m.clustersBin,
		Models:      m.models,
		ModelsBin:   m.modelsBin,
		ModelScale:  m.modelScale,
		CalibA:      m.calibA,
		CalibB:      m.calibB,
		Trained:     m.trained,
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	return nil
}

// SaveFile saves the model to a file path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load deserializes a model previously written by Save. The restored model
// predicts identically to the saved one; further training continues from
// the saved state (with a re-seeded shuffling stream).
func Load(r io.Reader) (*Model, error) {
	var st modelState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	if st.Encoder == nil {
		return nil, fmt.Errorf("core: loaded model has no encoder")
	}
	if err := st.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: loaded model config: %w", err)
	}
	if len(st.Models) != st.Cfg.Models {
		return nil, fmt.Errorf("core: loaded model has %d model vectors, config says %d", len(st.Models), st.Cfg.Models)
	}
	dim := st.Encoder.Dim()
	if err := hdc.CheckDims(dim, st.Models...); err != nil {
		return nil, fmt.Errorf("core: loaded model vectors: %w", err)
	}
	bufEnc, _ := st.Encoder.(encoding.BufferedEncoder)
	m := &Model{
		params: params{
			cfg:         st.Cfg,
			enc:         st.Encoder,
			bufEnc:      bufEnc,
			dim:         dim,
			clusters:    st.Clusters,
			clustersBin: st.ClustersBin,
			models:      st.Models,
			modelsBin:   st.ModelsBin,
			modelScale:  st.ModelScale,
			calibA:      st.CalibA,
			calibB:      st.CalibB,
		},
		trained: st.Trained,
		rng:     rand.New(rand.NewSource(st.Cfg.Seed)),
		scratch: newScratchPool(st.Cfg.Models, dim, st.Cfg.PredictMode.UsesRawQuery(), bufEnc != nil),
	}
	if m.cfg.Models > 1 {
		m.sims = make([]float64, m.cfg.Models)
		m.conf = make([]float64, m.cfg.Models)
	}
	return m, nil
}

// LoadFile loads a model from a file path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return Load(f)
}
