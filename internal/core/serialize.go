package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"reghd/internal/encoding"
	"reghd/internal/hdc"
)

// ErrCorruptModel is the sentinel wrapped by Load/LoadFile when the stored
// bytes cannot be decoded into a structurally valid model — a truncated
// write, bit rot, or a file that was never a model checkpoint. Callers
// match it with errors.Is to distinguish a damaged checkpoint (fall back to
// an older one) from an I/O error such as a missing file.
var ErrCorruptModel = errors.New("core: corrupt model file")

// modelState is the wire form of a trained model. The encoder travels as an
// encoding.Encoder interface value (the concrete encoders register
// themselves with gob).
type modelState struct {
	Cfg            Config
	Encoder        encoding.Encoder
	Clusters       []hdc.Vector
	ClustersBin    []*hdc.Binary
	Models         []hdc.Vector
	ModelsBin      []*hdc.Binary
	ModelScale     []float64
	CalibA, CalibB float64
	Trained        bool
	// Samples/AssignN carry the training census that weights bundling
	// merges (see merge.go). Absent in checkpoints written before the
	// fields existed; Load tolerates that (gob skips missing fields) and
	// re-allocates the assignment slice.
	Samples uint64
	AssignN []uint64
}

// Save serializes the model (including its encoder and any binary shadows)
// to w in gob format.
func (m *Model) Save(w io.Writer) error {
	st := modelState{
		Cfg:         m.cfg,
		Encoder:     m.enc,
		Clusters:    m.clusters,
		ClustersBin: m.clustersBin,
		Models:      m.models,
		ModelsBin:   m.modelsBin,
		ModelScale:  m.modelScale,
		CalibA:      m.calibA,
		CalibB:      m.calibB,
		Trained:     m.trained,
		Samples:     m.samples,
		AssignN:     m.assignN,
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	return nil
}

// SaveFile saves the model to a file path atomically: the state is written
// to a temporary file in the same directory, synced, and renamed over the
// destination. A crash (or full disk) mid-save can therefore never leave a
// truncated or half-written model at path — readers observe either the old
// complete checkpoint or the new one, which is what a serving deployment
// reloading checkpoints needs.
func (m *Model) SaveFile(path string) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	tmp := f.Name()
	// Any failure from here on removes the temp file; the destination is
	// only ever touched by the final rename.
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := m.Save(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("core: syncing model file: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: closing model file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: publishing model file: %w", err)
	}
	return nil
}

// Load deserializes a model previously written by Save. The restored model
// predicts identically to the saved one; further training continues from
// the saved state (with a re-seeded shuffling stream).
func Load(r io.Reader) (*Model, error) {
	var st modelState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptModel, err)
	}
	if st.Encoder == nil {
		return nil, fmt.Errorf("%w: no encoder", ErrCorruptModel)
	}
	if err := st.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: config: %v", ErrCorruptModel, err)
	}
	if len(st.Models) != st.Cfg.Models {
		return nil, fmt.Errorf("%w: %d model vectors, config says %d", ErrCorruptModel, len(st.Models), st.Cfg.Models)
	}
	dim := st.Encoder.Dim()
	if err := hdc.CheckDims(dim, st.Models...); err != nil {
		return nil, fmt.Errorf("%w: model vectors: %v", ErrCorruptModel, err)
	}
	bufEnc, _ := st.Encoder.(encoding.BufferedEncoder)
	m := &Model{
		params: params{
			cfg:         st.Cfg,
			enc:         st.Encoder,
			bufEnc:      bufEnc,
			dim:         dim,
			clusters:    st.Clusters,
			clustersBin: st.ClustersBin,
			models:      st.Models,
			modelsBin:   st.ModelsBin,
			modelScale:  st.ModelScale,
			calibA:      st.CalibA,
			calibB:      st.CalibB,
		},
		trained: st.Trained,
		samples: st.Samples,
		rng:     rand.New(rand.NewSource(st.Cfg.Seed)),
		scratch: newScratchPool(st.Cfg.Models, dim, st.Cfg.PredictMode.UsesRawQuery(), bufEnc != nil),
	}
	if m.cfg.Models > 1 {
		m.sims = make([]float64, m.cfg.Models)
		m.conf = make([]float64, m.cfg.Models)
		m.assignN = st.AssignN
		if len(m.assignN) != m.cfg.Models {
			// Pre-census checkpoint (or corrupt slice): start a fresh count.
			m.assignN = make([]uint64, m.cfg.Models)
		}
	}
	return m, nil
}

// LoadFile loads a model from a file path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return Load(f)
}
