package core

import (
	"math/rand"
	"testing"
)

func TestPartialFitLearnsStream(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	all := makeLinear(rng, 1200, 3, 0.05)
	train := all.Subset(seqInts(0, 1000))
	test := all.Subset(seqInts(1000, 1200))

	m := newModel(t, 3, 1000, Config{Models: 1, Epochs: 1, Seed: 2})
	// Stream every sample exactly once (single-pass training).
	for i := range train.X {
		if err := m.PartialFit(train.X[i], train.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Trained() {
		t.Fatal("PartialFit did not mark the model trained")
	}
	mse, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	// Target variance ≈ 4 + noise; single-pass must capture most of it.
	if mse > 1.0 {
		t.Fatalf("single-pass test MSE %v too high", mse)
	}
}

func TestPartialFitMatchesEpochOrderedFit(t *testing.T) {
	// Streaming the whole set once must be equivalent in spirit to one
	// epoch: both leave a usable (non-zero) model.
	all := makeLinear(rand.New(rand.NewSource(3)), 100, 2, 0.05)
	m := newModel(t, 2, 256, Config{Models: 2, Epochs: 1, Seed: 4})
	for i := range all.X {
		if err := m.PartialFit(all.X[i], all.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	if hv := m.ModelVector(0); isZero(hv) && isZero(m.ModelVector(1)) {
		t.Fatal("streaming left the models empty")
	}
}

func isZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

func TestPartialFitValidatesInput(t *testing.T) {
	m := newModel(t, 3, 128, Config{Models: 1, Epochs: 1, Seed: 5})
	if err := m.PartialFit([]float64{1}, 0.5); err == nil {
		t.Fatal("wrong input length accepted")
	}
}

func TestRefreshShadowsStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	all := makeLinear(rng, 600, 3, 0.05)
	cfg := Config{Models: 2, Epochs: 1, Seed: 7, PredictMode: PredictBinaryBoth, ClusterMode: ClusterBinary}
	m := newModel(t, 3, 2000, cfg)
	for i := 0; i < 500; i++ {
		if err := m.PartialFit(all.X[i], all.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Without a refresh, the binary shadows still hold the initial state;
	// refresh and verify deployment predictions improve.
	test := all.Subset(seqInts(500, 600))
	before, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RefreshShadows(all.X[:200], all.Y[:200]); err != nil {
		t.Fatal(err)
	}
	after, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("shadow refresh should improve deployment MSE: before %v after %v", before, after)
	}
	// Mismatched calibration slices are rejected.
	if err := m.RefreshShadows(all.X[:5], all.Y[:4]); err == nil {
		t.Fatal("mismatched calibration slices accepted")
	}
	// nil samples keep current calibration but still re-pack shadows.
	if err := m.RefreshShadows(nil, nil); err != nil {
		t.Fatal(err)
	}
}
