package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"reghd/internal/encoding"
	"reghd/internal/hdc"
)

// params is the read-only state one prediction needs: the configuration,
// the encoder, and the learned hypervectors with their quantized shadows
// and output calibration. It is embedded by the mutable Model (where the
// training loop rewrites it in place) and copied wholesale into the
// immutable Snapshot, so every prediction kernel is written once, against
// params, and serves both.
type params struct {
	cfg Config
	enc encoding.Encoder
	dim int

	// bufEnc is enc's zero-allocation view when the encoder provides one
	// (non-nil exactly when enc implements encoding.BufferedEncoder).
	// Prediction paths use it to encode into pooled scratch buffers; when
	// nil they fall back to the allocating Encoder methods.
	bufEnc encoding.BufferedEncoder

	clusters    []hdc.Vector  // integer cluster hypervectors C_i
	clustersBin []*hdc.Binary // binary shadows C_i^b (binary cluster modes)
	models      []hdc.Vector  // integer regression hypervectors M_i
	modelsBin   []*hdc.Binary // binary shadows M_i^b (binary model modes)
	modelScale  []float64     // per-model magnitude ‖M_i‖₁/D for binary models

	// clustersSet is the contiguous-slab layout of clustersBin for the
	// blocked k-way Hamming kernel. Snapshot construction builds it from the
	// frozen shadows; on the live Model it stays nil (clusters mutate during
	// training) and similarity falls back to the per-*Binary kernel.
	clustersSet *hdc.BinarySet

	// calibA, calibB linearly recalibrate the deployment output of
	// binary-model modes: binarizing M attenuates the readout by a factor
	// the per-model L1 scale cannot fully capture, so after each epoch a
	// least-squares fit of (a, b) on the training predictions restores the
	// output scale. Identity (1, 0) for integer-model modes.
	calibA, calibB float64
}

// Model is a RegHD regressor: k cluster hypervectors routing each encoded
// input to k regression hypervectors, with optional binary shadows for the
// quantized similarity and prediction kernels.
//
// A Model is not safe for concurrent mutation, and prediction must not
// overlap with mutation (Fit, PartialFit, RefreshShadows, Sparsify, fault
// injection) — take a Snapshot for that. Predict* methods are safe to call
// concurrently with each other when the optional counters are nil: each
// call draws private scratch from an internal pool.
type Model struct {
	params

	rng     *rand.Rand
	trained bool

	// samples counts every training update the model has absorbed (one per
	// Fit epoch sample and per PartialFit call). Sharded training weighs
	// each worker's contribution by the samples it absorbed since the last
	// sync point (see Delta/Merge in merge.go).
	samples uint64
	// assignN[i] counts the training samples whose cluster argmax picked
	// cluster i — the persistent form of the ClusterUsage histogram. Deltas
	// carry the per-shard counts and Merge fuses them additively, so the
	// merged model reports the same assignment census a sequential pass
	// over the union of shards would. Nil for single-model configurations.
	assignN []uint64

	// base, when non-nil, is the learned state recorded by MarkSync — the
	// reference that Delta diffs against. Training paths never read it.
	base *syncBase

	// sims and conf are the training-path scratch (cluster similarities
	// and softmax confidences): predictTraining leaves them filled for the
	// subsequent update, which is why the training loop — single-writer by
	// contract — keeps shared buffers while Predict* uses pooled scratch.
	sims, conf []float64

	// scratch pools per-call prediction workspaces so concurrent Predict*
	// calls never share similarity/confidence buffers.
	scratch *scratchPool

	// TrainCounter, when non-nil, accumulates the primitive operations of
	// every training-phase kernel; InferCounter does the same for
	// prediction. They feed the hardware cost model cross-checks. Non-nil
	// counters are plain accumulators and revoke Predict*'s concurrency
	// safety; use Snapshot with an AtomicCounter to count concurrent
	// serving.
	TrainCounter *hdc.Counter
	InferCounter *hdc.Counter

	// Stages, when non-nil, accumulates per-stage wall time
	// (encode/similarity/readout) for every Predict call. StageTimes
	// records atomically, so it does not affect Predict*'s concurrency
	// safety — but install it before serving begins, not concurrently with
	// predictions.
	Stages *StageTimes
}

// scratch is one prediction call's private workspace: cluster similarities,
// softmax confidences, the D-length encode buffers (raw/bipolar/bit-packed
// query representations, reused across calls via BufferedEncoder's Into
// methods), and a local op counter that concurrent paths merge into an
// AtomicCounter after the call.
type scratch struct {
	sims, conf []float64
	raw, s     hdc.Vector  // raw is nil unless the mode reads the raw query
	packed     *hdc.Binary // nil when the encoder is not buffered
	ctr        hdc.Counter
}

// scratchPool recycles scratch workspaces across prediction calls.
type scratchPool struct {
	pool sync.Pool
}

// newScratchPool sizes the per-call workspaces: models similarity slots,
// dim-length encode buffers (the raw buffer only for modes that read the
// raw query), and a bit-packed query. buffered selects whether encode
// buffers are allocated at all — without a BufferedEncoder they would sit
// unused.
func newScratchPool(models, dim int, needRaw, buffered bool) *scratchPool {
	return &scratchPool{pool: sync.Pool{New: func() any {
		s := &scratch{
			sims: make([]float64, models),
			conf: make([]float64, models),
		}
		if buffered {
			s.s = hdc.NewVector(dim)
			s.packed = hdc.NewBinary(dim)
			if needRaw {
				s.raw = hdc.NewVector(dim)
			}
		}
		return s
	}}}
}

func (p *scratchPool) get() *scratch  { return p.pool.Get().(*scratch) }
func (p *scratchPool) put(s *scratch) { p.pool.Put(s) }

// New constructs an untrained RegHD model over the given encoder.
func New(enc encoding.Encoder, cfg Config) (*Model, error) {
	if enc == nil {
		return nil, fmt.Errorf("core: nil encoder")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bufEnc, _ := enc.(encoding.BufferedEncoder)
	m := &Model{
		params: params{
			cfg:    cfg,
			enc:    enc,
			bufEnc: bufEnc,
			dim:    enc.Dim(),
			calibA: 1,
		},
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		scratch: newScratchPool(cfg.Models, enc.Dim(), cfg.PredictMode.UsesRawQuery(), bufEnc != nil),
	}
	m.models = make([]hdc.Vector, cfg.Models)
	for i := range m.models {
		m.models[i] = hdc.NewVector(m.dim)
	}
	if cfg.PredictMode.UsesBinaryModel() {
		m.modelsBin = make([]*hdc.Binary, cfg.Models)
		m.modelScale = make([]float64, cfg.Models)
		for i := range m.modelsBin {
			m.modelsBin[i] = hdc.NewBinary(m.dim)
		}
	}
	if cfg.Models > 1 {
		// Cluster hypervectors are initialized to random bipolar values
		// (the paper's "random binary values"); the binary shadows are
		// their packed form.
		m.clusters = make([]hdc.Vector, cfg.Models)
		for i := range m.clusters {
			m.clusters[i] = hdc.RandomBipolar(m.rng, m.dim)
		}
		if cfg.ClusterMode != ClusterInteger {
			m.clustersBin = make([]*hdc.Binary, cfg.Models)
			for i := range m.clustersBin {
				m.clustersBin[i] = hdc.Pack(nil, m.clusters[i])
			}
		}
		m.sims = make([]float64, cfg.Models)
		m.conf = make([]float64, cfg.Models)
		m.assignN = make([]uint64, cfg.Models)
	}
	return m, nil
}

// Config returns the validated configuration.
func (p *params) Config() Config { return p.cfg }

// Dim returns the hyperdimensional size D.
func (p *params) Dim() int { return p.dim }

// Models returns the number of cluster/regression model pairs k.
func (p *params) Models() int { return p.cfg.Models }

// Encoder returns the encoder the model was built with.
func (p *params) Encoder() encoding.Encoder { return p.enc }

// Trained reports whether Fit has completed at least one epoch.
func (m *Model) Trained() bool { return m.trained }

// SampleCount returns the number of training updates the model has
// absorbed (Fit epoch samples plus PartialFit calls, including counts
// fused in by Merge).
func (m *Model) SampleCount() uint64 { return m.samples }

// AssignCounts returns a copy of the per-cluster training assignment
// census: how many training samples each cluster attracted. Nil for
// single-model configurations.
func (m *Model) AssignCounts() []uint64 {
	if m.assignN == nil {
		return nil
	}
	return append([]uint64(nil), m.assignN...)
}

// encoded bundles the representations of one encoded sample that the active
// configuration needs: the bipolar vector S, its bit-packed form S^b, and —
// for raw-query prediction modes — the raw encoding H.
type encoded struct {
	raw    hdc.Vector  // nil unless the prediction mode reads the raw query
	s      hdc.Vector  // bipolar S (dense, ±1)
	packed *hdc.Binary // S bit-packed
}

// encode produces the representations of x required by the configuration.
func (p *params) encode(ctr *hdc.Counter, x []float64) (encoded, error) {
	var e encoded
	if p.cfg.PredictMode.UsesRawQuery() {
		raw, s, err := p.enc.EncodeBoth(ctr, x)
		if err != nil {
			return encoded{}, err
		}
		e.raw = raw
		e.s = s
	} else {
		s, err := p.enc.EncodeBipolar(ctr, x)
		if err != nil {
			return encoded{}, err
		}
		e.s = s
	}
	e.packed = hdc.Pack(ctr, e.s)
	return e, nil
}

// encodeScratch is encode writing into the pooled per-call buffers of sc
// instead of allocating: the returned encoded aliases sc, so it is only
// valid until sc is returned to the pool. Results and op charges are
// identical to encode (the BufferedEncoder contract); without a buffered
// encoder it falls back to the allocating path.
func (p *params) encodeScratch(ctr *hdc.Counter, x []float64, sc *scratch) (encoded, error) {
	if p.bufEnc == nil || sc.packed == nil {
		return p.encode(ctr, x)
	}
	var e encoded
	if p.cfg.PredictMode.UsesRawQuery() {
		if err := p.bufEnc.EncodeBothInto(ctr, x, sc.raw, sc.s); err != nil {
			return encoded{}, err
		}
		e.raw = sc.raw
		e.s = sc.s
	} else {
		if err := p.bufEnc.EncodeBipolarInto(ctr, x, sc.s); err != nil {
			return encoded{}, err
		}
		e.s = sc.s
	}
	hdc.PackInto(ctr, sc.packed, e.s)
	e.packed = sc.packed
	return e, nil
}

// clusterSimilaritiesInto fills sims with the similarity of the encoded
// sample to each cluster, using the configured similarity kernel. Both modes
// run the fused k-way kernels, which read the query once for all k clusters
// while staying bit-identical (and op-count-identical) to the per-cluster
// loops they replaced.
func (p *params) clusterSimilaritiesInto(ctr *hdc.Counter, e encoded, sims []float64) {
	switch p.cfg.ClusterMode {
	case ClusterInteger:
		hdc.CosineK(ctr, e.s, p.clusters, sims)
	default: // ClusterBinary, ClusterNaiveBinary
		if p.clustersSet != nil {
			p.clustersSet.HammingSimilarityK(ctr, e.packed, sims)
		} else {
			hdc.HammingSimilarityK(ctr, e.packed, p.clustersBin, sims)
		}
	}
}

// modelDot computes the raw per-model regression output ŷ_i = query·M_i / D
// with the deployment kernel selected by PredictMode.
func (p *params) modelDot(ctr *hdc.Counter, e encoded, i int) float64 {
	d := float64(p.dim)
	switch p.cfg.PredictMode {
	case PredictFull:
		return hdc.Dot(ctr, e.raw, p.models[i]) / d
	case PredictBinaryQuery:
		return hdc.DotBinaryDense(ctr, e.packed, p.models[i]) / d
	case PredictBinaryModel:
		return p.modelScale[i] * hdc.DotBinaryDense(ctr, p.modelsBin[i], e.raw) / d
	case PredictBinaryBoth:
		return p.modelScale[i] * float64(hdc.DotBinary(ctr, e.packed, p.modelsBin[i])) / d
	default:
		panic("core: invalid PredictMode")
	}
}

// trainModelDot computes ŷ_i against the *integer* model with the mode's
// query representation. The paper's Section 3.2 requires training to run on
// the integer model regardless of the deployment kernel: the binary shadow
// only refreshes per epoch, so using it for the training error would remove
// the feedback that keeps the LMS update convergent.
func (p *params) trainModelDot(ctr *hdc.Counter, e encoded, i int) float64 {
	d := float64(p.dim)
	if p.cfg.PredictMode.UsesRawQuery() {
		return hdc.Dot(ctr, e.raw, p.models[i]) / d
	}
	return hdc.DotBinaryDense(ctr, e.packed, p.models[i]) / d
}

// predictWith runs the prediction pipeline of Fig. 4 against the Model's
// shared training scratch. It leaves the similarities/confidences in
// m.sims/m.conf for the training update, so it must only be called from
// single-writer training paths (predictTraining, RefreshShadows,
// calibrate).
func (m *Model) predictWith(ctr *hdc.Counter, e encoded, dot func(*hdc.Counter, encoded, int) float64) float64 {
	return m.predictWithScratch(ctr, e, dot, m.sims, m.conf)
}

// predictWithScratch runs the prediction pipeline of Fig. 4 with the
// supplied per-model dot kernel over caller-supplied similarity and
// confidence buffers: cluster similarity search, softmax normalization, and
// the confidence-weighted accumulation of all per-model outputs (Eq. 6).
// With private buffers it is safe to run concurrently against frozen
// params.
func (p *params) predictWithScratch(ctr *hdc.Counter, e encoded, dot func(*hdc.Counter, encoded, int) float64, sims, conf []float64) float64 {
	if p.cfg.Models == 1 {
		return dot(ctr, e, 0)
	}
	p.clusterSimilaritiesInto(ctr, e, sims)
	hdc.Softmax(ctr, conf, sims, p.cfg.SoftmaxBeta)
	var y float64
	for i := range p.models {
		y += conf[i] * dot(ctr, e, i)
	}
	ctr.Add(hdc.OpFloatMul, uint64(p.cfg.Models))
	ctr.Add(hdc.OpFloatAdd, uint64(p.cfg.Models))
	return y
}

// predictEncoded is the deployment prediction path (Eq. 6 plus the output
// calibration of binary-model modes) over caller-supplied scratch.
func (p *params) predictEncoded(ctr *hdc.Counter, e encoded, sims, conf []float64) float64 {
	y := p.predictWithScratch(ctr, e, p.modelDot, sims, conf)
	if p.cfg.PredictMode.UsesBinaryModel() {
		y = p.calibA*y + p.calibB
		ctr.Add(hdc.OpFloatMul, 1)
		ctr.Add(hdc.OpFloatAdd, 1)
	}
	return y
}

// predictTraining is the training-time prediction path (integer model). It
// fills the shared m.sims/m.conf for the subsequent update.
func (m *Model) predictTraining(ctr *hdc.Counter, e encoded) float64 {
	return m.predictWith(ctr, e, m.trainModelDot)
}

// encodeStaged is encodeScratch with the wall time recorded as StageEncode.
func (p *params) encodeStaged(ctr *hdc.Counter, x []float64, sc *scratch, st *StageTimes) (encoded, error) {
	//lint:nondeterm wall-clock telemetry: stage timing feeds StageTimes metrics only
	t0 := time.Now()
	e, err := p.encodeScratch(ctr, x, sc)
	if err == nil {
		//lint:nondeterm wall-clock telemetry: stage timing feeds StageTimes metrics only
		st.Observe(StageEncode, time.Since(t0))
	}
	return e, err
}

// predictStaged is predictEncoded with the similarity search and the
// readout timed as separate stages. It must stay behaviorally identical to
// predictEncoded/predictWithScratch (same kernels, same op-count charges);
// only the timestamps differ.
func (p *params) predictStaged(ctr *hdc.Counter, e encoded, sims, conf []float64, st *StageTimes) float64 {
	var y float64
	//lint:nondeterm wall-clock telemetry: stage timing feeds StageTimes metrics only
	t0 := time.Now()
	if p.cfg.Models == 1 {
		y = p.modelDot(ctr, e, 0)
	} else {
		p.clusterSimilaritiesInto(ctr, e, sims)
		hdc.Softmax(ctr, conf, sims, p.cfg.SoftmaxBeta)
		//lint:nondeterm wall-clock telemetry: stage timing feeds StageTimes metrics only
		t1 := time.Now()
		st.Observe(StageSimilarity, t1.Sub(t0))
		t0 = t1
		for i := range p.models {
			y += conf[i] * p.modelDot(ctr, e, i)
		}
		ctr.Add(hdc.OpFloatMul, uint64(p.cfg.Models))
		ctr.Add(hdc.OpFloatAdd, uint64(p.cfg.Models))
	}
	if p.cfg.PredictMode.UsesBinaryModel() {
		y = p.calibA*y + p.calibB
		ctr.Add(hdc.OpFloatMul, 1)
		ctr.Add(hdc.OpFloatAdd, 1)
	}
	//lint:nondeterm wall-clock telemetry: stage timing feeds StageTimes metrics only
	st.Observe(StageReadout, time.Since(t0))
	return y
}

// Predict returns the model's regression output for the feature vector x.
func (m *Model) Predict(x []float64) (float64, error) {
	if !m.trained {
		return 0, ErrNotTrained
	}
	s := m.scratch.get()
	defer m.scratch.put(s)
	if st := m.Stages; st != nil {
		e, err := m.encodeStaged(m.InferCounter, x, s, st)
		if err != nil {
			return 0, err
		}
		return m.predictStaged(m.InferCounter, e, s.sims, s.conf, st), nil
	}
	e, err := m.encodeScratch(m.InferCounter, x, s)
	if err != nil {
		return 0, err
	}
	return m.predictEncoded(m.InferCounter, e, s.sims, s.conf), nil
}

// PredictBatch returns predictions for each row of xs.
func (m *Model) PredictBatch(xs [][]float64) ([]float64, error) {
	out := make([]float64, len(xs))
	for i, x := range xs {
		y, err := m.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("core: predicting row %d: %w", i, err)
		}
		out[i] = y
	}
	return out, nil
}

// refreshBinaryShadows re-quantizes the binary copies from the integer
// state, the end-of-epoch step of the Section 3 framework: clusters are
// re-packed (ClusterBinary only — naive binarization never updates), and
// binary models pick up both new sign bits and a new magnitude scale.
func (m *Model) refreshBinaryShadows(ctr *hdc.Counter) {
	if m.cfg.ClusterMode == ClusterBinary {
		for i, c := range m.clusters {
			hdc.PackInto(ctr, m.clustersBin[i], c)
		}
	}
	if m.cfg.PredictMode.UsesBinaryModel() {
		for i, mv := range m.models {
			hdc.PackInto(ctr, m.modelsBin[i], mv)
			m.modelScale[i] = hdc.L1Norm(ctr, mv) / float64(m.dim)
		}
	}
}

// ModelVector returns a copy of the integer regression hypervector M_i.
func (p *params) ModelVector(i int) hdc.Vector { return p.models[i].Clone() }

// ClusterVector returns a copy of the integer cluster hypervector C_i.
// It returns nil for single-model configurations.
func (p *params) ClusterVector(i int) hdc.Vector {
	if p.clusters == nil {
		return nil
	}
	return p.clusters[i].Clone()
}
