package core

import (
	"fmt"
	"math/rand"

	"reghd/internal/encoding"
	"reghd/internal/hdc"
)

// Model is a RegHD regressor: k cluster hypervectors routing each encoded
// input to k regression hypervectors, with optional binary shadows for the
// quantized similarity and prediction kernels.
//
// A Model is not safe for concurrent mutation; Predict* methods are safe to
// call concurrently after training only when the optional counters are nil.
type Model struct {
	cfg Config
	enc encoding.Encoder
	dim int

	clusters    []hdc.Vector  // integer cluster hypervectors C_i
	clustersBin []*hdc.Binary // binary shadows C_i^b (binary cluster modes)
	models      []hdc.Vector  // integer regression hypervectors M_i
	modelsBin   []*hdc.Binary // binary shadows M_i^b (binary model modes)
	modelScale  []float64     // per-model magnitude ‖M_i‖₁/D for binary models

	// calibA, calibB linearly recalibrate the deployment output of
	// binary-model modes: binarizing M attenuates the readout by a factor
	// the per-model L1 scale cannot fully capture, so after each epoch a
	// least-squares fit of (a, b) on the training predictions restores the
	// output scale. Identity (1, 0) for integer-model modes.
	calibA, calibB float64

	rng     *rand.Rand
	trained bool

	// sims and conf are per-call scratch (cluster similarities and softmax
	// confidences).
	sims, conf []float64

	// TrainCounter, when non-nil, accumulates the primitive operations of
	// every training-phase kernel; InferCounter does the same for
	// prediction. They feed the hardware cost model cross-checks.
	TrainCounter *hdc.Counter
	InferCounter *hdc.Counter
}

// New constructs an untrained RegHD model over the given encoder.
func New(enc encoding.Encoder, cfg Config) (*Model, error) {
	if enc == nil {
		return nil, fmt.Errorf("core: nil encoder")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		cfg:    cfg,
		enc:    enc,
		dim:    enc.Dim(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		calibA: 1,
	}
	m.models = make([]hdc.Vector, cfg.Models)
	for i := range m.models {
		m.models[i] = hdc.NewVector(m.dim)
	}
	if cfg.PredictMode.UsesBinaryModel() {
		m.modelsBin = make([]*hdc.Binary, cfg.Models)
		m.modelScale = make([]float64, cfg.Models)
		for i := range m.modelsBin {
			m.modelsBin[i] = hdc.NewBinary(m.dim)
		}
	}
	if cfg.Models > 1 {
		// Cluster hypervectors are initialized to random bipolar values
		// (the paper's "random binary values"); the binary shadows are
		// their packed form.
		m.clusters = make([]hdc.Vector, cfg.Models)
		for i := range m.clusters {
			m.clusters[i] = hdc.RandomBipolar(m.rng, m.dim)
		}
		if cfg.ClusterMode != ClusterInteger {
			m.clustersBin = make([]*hdc.Binary, cfg.Models)
			for i := range m.clustersBin {
				m.clustersBin[i] = hdc.Pack(nil, m.clusters[i])
			}
		}
		m.sims = make([]float64, cfg.Models)
		m.conf = make([]float64, cfg.Models)
	}
	return m, nil
}

// Config returns the model's validated configuration.
func (m *Model) Config() Config { return m.cfg }

// Dim returns the hyperdimensional size D.
func (m *Model) Dim() int { return m.dim }

// Models returns the number of cluster/regression model pairs k.
func (m *Model) Models() int { return m.cfg.Models }

// Encoder returns the encoder the model was built with.
func (m *Model) Encoder() encoding.Encoder { return m.enc }

// Trained reports whether Fit has completed at least one epoch.
func (m *Model) Trained() bool { return m.trained }

// encoded bundles the representations of one encoded sample that the active
// configuration needs: the bipolar vector S, its bit-packed form S^b, and —
// for raw-query prediction modes — the raw encoding H.
type encoded struct {
	raw    hdc.Vector  // nil unless the prediction mode reads the raw query
	s      hdc.Vector  // bipolar S (dense, ±1)
	packed *hdc.Binary // S bit-packed
}

// encode produces the representations of x required by the configuration.
func (m *Model) encode(ctr *hdc.Counter, x []float64) (encoded, error) {
	var e encoded
	if m.cfg.PredictMode.UsesRawQuery() {
		raw, s, err := m.enc.EncodeBoth(ctr, x)
		if err != nil {
			return encoded{}, err
		}
		e.raw = raw
		e.s = s
	} else {
		s, err := m.enc.EncodeBipolar(ctr, x)
		if err != nil {
			return encoded{}, err
		}
		e.s = s
	}
	e.packed = hdc.Pack(ctr, e.s)
	return e, nil
}

// clusterSimilaritiesInto fills sims with the similarity of the encoded
// sample to each cluster, using the configured similarity kernel.
func (m *Model) clusterSimilaritiesInto(ctr *hdc.Counter, e encoded, sims []float64) {
	switch m.cfg.ClusterMode {
	case ClusterInteger:
		for i, c := range m.clusters {
			sims[i] = hdc.Cosine(ctr, e.s, c)
		}
	default: // ClusterBinary, ClusterNaiveBinary
		for i, cb := range m.clustersBin {
			sims[i] = hdc.HammingSimilarity(ctr, e.packed, cb)
		}
	}
}

// modelDot computes the raw per-model regression output ŷ_i = query·M_i / D
// with the deployment kernel selected by PredictMode.
func (m *Model) modelDot(ctr *hdc.Counter, e encoded, i int) float64 {
	d := float64(m.dim)
	switch m.cfg.PredictMode {
	case PredictFull:
		return hdc.Dot(ctr, e.raw, m.models[i]) / d
	case PredictBinaryQuery:
		return hdc.DotBinaryDense(ctr, e.packed, m.models[i]) / d
	case PredictBinaryModel:
		return m.modelScale[i] * hdc.DotBinaryDense(ctr, m.modelsBin[i], e.raw) / d
	case PredictBinaryBoth:
		return m.modelScale[i] * float64(hdc.DotBinary(ctr, e.packed, m.modelsBin[i])) / d
	default:
		panic("core: invalid PredictMode")
	}
}

// trainModelDot computes ŷ_i against the *integer* model with the mode's
// query representation. The paper's Section 3.2 requires training to run on
// the integer model regardless of the deployment kernel: the binary shadow
// only refreshes per epoch, so using it for the training error would remove
// the feedback that keeps the LMS update convergent.
func (m *Model) trainModelDot(ctr *hdc.Counter, e encoded, i int) float64 {
	d := float64(m.dim)
	if m.cfg.PredictMode.UsesRawQuery() {
		return hdc.Dot(ctr, e.raw, m.models[i]) / d
	}
	return hdc.DotBinaryDense(ctr, e.packed, m.models[i]) / d
}

// predictWith runs the prediction pipeline of Fig. 4 with the supplied
// per-model dot kernel: cluster similarity search, softmax normalization,
// and the confidence-weighted accumulation of all per-model outputs
// (Eq. 6). It leaves the similarities/confidences in m.sims/m.conf for the
// training update.
func (m *Model) predictWith(ctr *hdc.Counter, e encoded, dot func(*hdc.Counter, encoded, int) float64) float64 {
	return m.predictWithScratch(ctr, e, dot, m.sims, m.conf)
}

// predictWithScratch is predictWith over caller-supplied similarity and
// confidence buffers, allowing concurrent read-only prediction.
func (m *Model) predictWithScratch(ctr *hdc.Counter, e encoded, dot func(*hdc.Counter, encoded, int) float64, sims, conf []float64) float64 {
	if m.cfg.Models == 1 {
		return dot(ctr, e, 0)
	}
	m.clusterSimilaritiesInto(ctr, e, sims)
	hdc.Softmax(ctr, conf, sims, m.cfg.SoftmaxBeta)
	var y float64
	for i := range m.models {
		y += conf[i] * dot(ctr, e, i)
	}
	ctr.Add(hdc.OpFloatMul, uint64(m.cfg.Models))
	ctr.Add(hdc.OpFloatAdd, uint64(m.cfg.Models))
	return y
}

// predictEncoded is the deployment prediction path.
func (m *Model) predictEncoded(ctr *hdc.Counter, e encoded) float64 {
	y := m.predictWith(ctr, e, m.modelDot)
	if m.cfg.PredictMode.UsesBinaryModel() {
		y = m.calibA*y + m.calibB
		ctr.Add(hdc.OpFloatMul, 1)
		ctr.Add(hdc.OpFloatAdd, 1)
	}
	return y
}

// predictTraining is the training-time prediction path (integer model).
func (m *Model) predictTraining(ctr *hdc.Counter, e encoded) float64 {
	return m.predictWith(ctr, e, m.trainModelDot)
}

// Predict returns the model's regression output for the feature vector x.
func (m *Model) Predict(x []float64) (float64, error) {
	if !m.trained {
		return 0, ErrNotTrained
	}
	e, err := m.encode(m.InferCounter, x)
	if err != nil {
		return 0, err
	}
	return m.predictEncoded(m.InferCounter, e), nil
}

// PredictBatch returns predictions for each row of xs.
func (m *Model) PredictBatch(xs [][]float64) ([]float64, error) {
	out := make([]float64, len(xs))
	for i, x := range xs {
		y, err := m.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("core: predicting row %d: %w", i, err)
		}
		out[i] = y
	}
	return out, nil
}

// refreshBinaryShadows re-quantizes the binary copies from the integer
// state, the end-of-epoch step of the Section 3 framework: clusters are
// re-packed (ClusterBinary only — naive binarization never updates), and
// binary models pick up both new sign bits and a new magnitude scale.
func (m *Model) refreshBinaryShadows(ctr *hdc.Counter) {
	if m.cfg.ClusterMode == ClusterBinary {
		for i, c := range m.clusters {
			hdc.PackInto(ctr, m.clustersBin[i], c)
		}
	}
	if m.cfg.PredictMode.UsesBinaryModel() {
		for i, mv := range m.models {
			hdc.PackInto(ctr, m.modelsBin[i], mv)
			m.modelScale[i] = hdc.L1Norm(ctr, mv) / float64(m.dim)
		}
	}
}

// ModelVector returns a copy of the integer regression hypervector M_i.
func (m *Model) ModelVector(i int) hdc.Vector { return m.models[i].Clone() }

// ClusterVector returns a copy of the integer cluster hypervector C_i.
// It returns nil for single-model configurations.
func (m *Model) ClusterVector(i int) hdc.Vector {
	if m.clusters == nil {
		return nil
	}
	return m.clusters[i].Clone()
}
