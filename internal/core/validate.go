package core

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidInput is the sentinel wrapped by every input-validation failure:
// non-finite feature values, non-finite streaming targets, and feature-count
// mismatches. Serving layers match it with errors.Is to distinguish a bad
// request (reject the one call) from an engine fault.
var ErrInvalidInput = errors.New("core: invalid input")

// ValidateRow rejects feature vectors the model must never ingest: a nil or
// wrong-length row, or any NaN/Inf component. A single non-finite component
// would propagate through the encoder into every hypervector it touches —
// and, on a PartialFit path, poison a cluster hypervector permanently — so
// both training and hardened serving paths call this before any state is
// read or written. features <= 0 skips the length check (callers that do
// not know the expected arity).
func ValidateRow(x []float64, features int) error {
	if x == nil {
		return fmt.Errorf("%w: nil feature vector", ErrInvalidInput)
	}
	if features > 0 && len(x) != features {
		return fmt.Errorf("%w: feature vector has %d components, model expects %d", ErrInvalidInput, len(x), features)
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: feature %d is %v", ErrInvalidInput, i, v)
		}
	}
	return nil
}

// ValidateTarget rejects NaN/Inf regression targets. The LMS update (Eq. 7)
// adds α(y−ŷ)·S into the model hypervectors, so a single non-finite y turns
// every component of the updated models non-finite in one step.
func ValidateTarget(y float64) error {
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("%w: target is %v", ErrInvalidInput, y)
	}
	return nil
}
