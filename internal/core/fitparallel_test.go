package core

import (
	"math"
	"sync"
	"testing"

	"math/rand"

	"reghd/internal/hdc"
)

// fitParallelTolerance is the pinned quality-parity bound: the merged
// model's test MSE may exceed the sequential model's by at most this factor
// (plus an absolute epsilon for near-zero MSEs). Sharded LMS follows a
// different — not worse, just different — trajectory, so exact equality is
// not expected; a large gap would mean the merge is wrong.
const fitParallelTolerance = 1.30

// TestFitParallelSingleWorkerMatchesFit pins the no-regression contract at
// workers == 1: FitParallel must run the identical sequential algorithm,
// producing a Float64bits-identical epoch history and identical
// predictions.
func TestFitParallelSingleWorkerMatchesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	train := makeLinear(rng, 300, 4, 0.05)
	test := makeLinear(rng, 100, 4, 0.05)
	seq := newMergeModel(t, mergeBaseConfig(), 4, 256)
	par := newMergeModel(t, mergeBaseConfig(), 4, 256)
	rs, err := seq.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.FitParallel(train, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.History) != len(rp.History) {
		t.Fatalf("epoch counts differ: %d vs %d", len(rs.History), len(rp.History))
	}
	for i := range rs.History {
		if math.Float64bits(rs.History[i]) != math.Float64bits(rp.History[i]) {
			t.Fatalf("epoch %d MSE differs: %v vs %v", i+1, rs.History[i], rp.History[i])
		}
	}
	if seq.TrainCounter.Snapshot() != par.TrainCounter.Snapshot() {
		t.Fatal("single-worker FitParallel charged different op counts than Fit")
	}
	for _, x := range test.X {
		ys, err := seq.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		yp, err := par.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(ys) != math.Float64bits(yp) {
			t.Fatalf("predictions differ: %v vs %v", ys, yp)
		}
	}
	if rp.Workers != 1 || len(rp.ShardSizes) != 1 || rp.ShardSizes[0] != train.Len() {
		t.Fatalf("bad telemetry: %+v", rp)
	}
	if rp.Merges != 0 {
		t.Fatalf("single-worker run reported %d merges", rp.Merges)
	}
}

// TestFitParallelQualityParity pins that sharded training converges to the
// same quality as sequential training across representative
// configurations: merged test MSE within the pinned tolerance.
func TestFitParallelQualityParity(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"full-precision", func() Config {
			cfg := DefaultConfig()
			cfg.Models = 4
			cfg.Epochs = 10
			cfg.Seed = 3
			return cfg
		}()},
		{"quantized", func() Config {
			cfg := mergeBaseConfig()
			cfg.Epochs = 10
			return cfg
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			train := makePiecewise(rng, 400, 4, 0.05)
			test := makePiecewise(rng, 160, 4, 0.05)
			for _, workers := range []int{2, 4} {
				seq := newMergeModel(t, tc.cfg, 4, 512)
				par := newMergeModel(t, tc.cfg, 4, 512)
				if _, err := seq.Fit(train); err != nil {
					t.Fatal(err)
				}
				if _, err := par.FitParallel(train, workers); err != nil {
					t.Fatal(err)
				}
				seqMSE, err := seq.Evaluate(test)
				if err != nil {
					t.Fatal(err)
				}
				parMSE, err := par.Evaluate(test)
				if err != nil {
					t.Fatal(err)
				}
				if parMSE > seqMSE*fitParallelTolerance+1e-3 {
					t.Fatalf("workers=%d: merged MSE %.5f vs sequential %.5f exceeds %.2fx tolerance",
						workers, parMSE, seqMSE, fitParallelTolerance)
				}
			}
		})
	}
}

// TestFitParallelDeterministic pins that a (seed, workers) pair fully
// determines the run: two executions produce Float64bits-identical
// histories and models, even though the workers run on concurrent
// goroutines — the canonical merge order removes the scheduling
// nondeterminism.
func TestFitParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	train := makeLinear(rng, 240, 4, 0.05)
	run := func() (*Model, *ParallelTrainResult) {
		m := newMergeModel(t, mergeBaseConfig(), 4, 256)
		r, err := m.FitParallel(train, 4)
		if err != nil {
			t.Fatal(err)
		}
		return m, r
	}
	m1, r1 := run()
	m2, r2 := run()
	if len(r1.History) != len(r2.History) {
		t.Fatalf("epoch counts differ: %d vs %d", len(r1.History), len(r2.History))
	}
	for i := range r1.History {
		if math.Float64bits(r1.History[i]) != math.Float64bits(r2.History[i]) {
			t.Fatalf("epoch %d MSE differs across runs", i+1)
		}
	}
	if !statesEqual(t, m1, m2) {
		t.Fatal("two identical FitParallel runs produced different models")
	}
	if m1.TrainCounter.Snapshot() != m2.TrainCounter.Snapshot() {
		t.Fatal("op accounting differs across identical runs")
	}
}

// TestFitParallelTelemetry sanity-checks the orchestration telemetry on a
// multi-worker run.
func TestFitParallelTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	train := makeLinear(rng, 200, 4, 0.05)
	m := newMergeModel(t, mergeBaseConfig(), 4, 256)
	r, err := m.FitParallel(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers != 3 || len(r.ShardSizes) != 3 {
		t.Fatalf("bad shard telemetry: %+v", r)
	}
	total := 0
	for _, s := range r.ShardSizes {
		total += s
	}
	if total != train.Len() {
		t.Fatalf("shards cover %d rows, dataset has %d", total, train.Len())
	}
	if r.Merges != r.Epochs {
		t.Fatalf("%d merges for %d epochs", r.Merges, r.Epochs)
	}
	if r.Rows != uint64(train.Len()*r.Epochs) {
		t.Fatalf("rows = %d, want %d", r.Rows, train.Len()*r.Epochs)
	}
	if r.WallNS <= 0 || r.RowsPerSec <= 0 {
		t.Fatalf("bad wall telemetry: %+v", r)
	}
	if m.SampleCount() != r.Rows {
		t.Fatalf("model absorbed %d samples, telemetry says %d rows", m.SampleCount(), r.Rows)
	}
	if _, err := m.FitParallel(train, 0); err == nil {
		t.Fatal("workers=0 should fail")
	}
}

// TestCloneTrainRace is the satellite audit of Model.Clone: clones and the
// original training concurrently must share nothing mutable. Run under
// -race (the tier-1 race target includes this package); it fails there if
// Clone shallow-copies any state a training worker writes — the exact
// dependency FitParallel has on Clone.
func TestCloneTrainRace(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	data := makeLinear(rng, 160, 4, 0.05)
	base := newMergeModel(t, mergeBaseConfig(), 4, 256)
	if _, err := base.Fit(data); err != nil {
		t.Fatal(err)
	}
	wantBits := math.Float64bits(base.models[0][0])
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		c := base.Clone()
		c.TrainCounter = &hdc.Counter{}
		wg.Add(1)
		go func(w int, c *Model) {
			defer wg.Done()
			c.MarkSync()
			for i := w; i < data.Len(); i += 4 {
				if err := c.PartialFit(data.X[i], data.Y[i]); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := c.Delta(); err != nil {
				t.Error(err)
			}
		}(w, c)
	}
	// The original keeps serving predictions while the clones train.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < data.Len(); i++ {
			if _, err := base.Predict(data.X[i]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if math.Float64bits(base.models[0][0]) != wantBits {
		t.Fatal("training clones mutated the original model")
	}
}
