package core

import (
	"math"
	"math/rand"
	"testing"

	"reghd/internal/encoding"
	"reghd/internal/hdc"
)

// unbufferedEncoder hides the BufferedEncoder methods of the wrapped
// encoder: embedding the Encoder interface promotes only the allocating
// methods, so models built over it exercise the fallback encode path.
type unbufferedEncoder struct {
	encoding.Encoder
}

// newEncoderPair returns the same Nonlinear encoder twice: once as itself
// (buffered) and once wrapped so core sees a plain Encoder.
func newEncoderPair(t *testing.T, feats, dim int, kind encoding.Projection) (encoding.Encoder, encoding.Encoder) {
	t.Helper()
	mk := func() encoding.Encoder {
		enc, err := encoding.NewNonlinearProjection(rand.New(rand.NewSource(99)), feats, dim, 1.0, kind)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	return mk(), unbufferedEncoder{mk()}
}

// TestBufferedPredictMatchesFallback is the core differential for the
// pooled-scratch encode path: a model whose encoder implements
// BufferedEncoder must produce bit-identical predictions and identical
// inference op counts to one whose (otherwise identical) encoder does not —
// across prediction modes, cluster modes, projection kinds, and the
// Model/Snapshot/parallel-batch entry points.
func TestBufferedPredictMatchesFallback(t *testing.T) {
	const feats, dim = 5, 512
	rng := rand.New(rand.NewSource(42))
	data := makeLinear(rng, 120, feats, 0.05)

	for _, tc := range []struct {
		name    string
		kind    encoding.Projection
		cluster ClusterMode
		predict PredictMode
	}{
		{"full-integer-gaussian", encoding.ProjGaussian, ClusterInteger, PredictFull},
		{"full-binary-bipolar", encoding.ProjBipolar, ClusterBinary, PredictFull},
		{"binboth-binary-bipolar", encoding.ProjBipolar, ClusterBinary, PredictBinaryBoth},
		{"binquery-integer-gaussian", encoding.ProjGaussian, ClusterInteger, PredictBinaryQuery},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Models = 4
			cfg.Epochs = 8
			cfg.Seed = 7
			cfg.ClusterMode = tc.cluster
			cfg.PredictMode = tc.predict

			buf, plain := newEncoderPair(t, feats, dim, tc.kind)
			mBuf, err := New(buf, cfg)
			if err != nil {
				t.Fatal(err)
			}
			mPlain, err := New(plain, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if mBuf.bufEnc == nil {
				t.Fatal("Nonlinear encoder not detected as buffered")
			}
			if mPlain.bufEnc != nil {
				t.Fatal("wrapped encoder leaked BufferedEncoder")
			}
			if _, err := mBuf.Fit(data); err != nil {
				t.Fatal(err)
			}
			if _, err := mPlain.Fit(data); err != nil {
				t.Fatal(err)
			}

			var ctrBuf, ctrPlain hdc.Counter
			mBuf.InferCounter = &ctrBuf
			mPlain.InferCounter = &ctrPlain
			for i, x := range data.X[:32] {
				yb, err := mBuf.Predict(x)
				if err != nil {
					t.Fatal(err)
				}
				yp, err := mPlain.Predict(x)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(yb) != math.Float64bits(yp) {
					t.Fatalf("row %d: buffered %v, fallback %v (not bit-identical)", i, yb, yp)
				}
			}
			if ctrBuf != ctrPlain {
				t.Fatalf("inference op counts diverge:\nbuffered: %v\nfallback: %v", &ctrBuf, &ctrPlain)
			}
			mBuf.InferCounter, mPlain.InferCounter = nil, nil

			// Snapshot serving path, with atomic op counting.
			sBuf, sPlain := mBuf.Snapshot(), mPlain.Snapshot()
			var aBuf, aPlain hdc.AtomicCounter
			sBuf.SetCounter(&aBuf)
			sPlain.SetCounter(&aPlain)
			for i, x := range data.X[:16] {
				yb, err := sBuf.Predict(x)
				if err != nil {
					t.Fatal(err)
				}
				yp, err := sPlain.Predict(x)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(yb) != math.Float64bits(yp) {
					t.Fatalf("snapshot row %d: buffered %v, fallback %v", i, yb, yp)
				}
			}
			if aBuf.Snapshot() != aPlain.Snapshot() {
				t.Fatal("snapshot op counts diverge between buffered and fallback encoders")
			}

			// Parallel batch path: buffered workers encode into pooled
			// scratch; results must match the serial fallback exactly.
			want, err := mPlain.PredictBatch(data.X)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mBuf.PredictBatchParallel(data.X, 4)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("parallel row %d: %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestBufferedScratchReuse drives many sequential predictions through one
// model to confirm pooled encode buffers are fully overwritten between
// calls: any stale state would break agreement with the fresh-allocation
// fallback.
func TestBufferedScratchReuse(t *testing.T) {
	const feats, dim = 3, 256
	cfg := DefaultConfig()
	cfg.Models = 4
	cfg.Epochs = 6
	cfg.Seed = 3
	buf, plain := newEncoderPair(t, feats, dim, encoding.ProjBipolar)
	mBuf, err := New(buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mPlain, err := New(plain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	data := makeLinear(rng, 80, feats, 0.1)
	if _, err := mBuf.Fit(data); err != nil {
		t.Fatal(err)
	}
	if _, err := mPlain.Fit(data); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for i, x := range data.X {
			yb, err := mBuf.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			yp, err := mPlain.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(yb) != math.Float64bits(yp) {
				t.Fatalf("round %d row %d: %v != %v", round, i, yb, yp)
			}
		}
	}
}
