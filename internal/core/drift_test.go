package core

import (
	"math/rand"
	"testing"
)

// TestPartialFitTracksDrift streams a target function that inverts midway
// and verifies the online learner recovers: the LMS update's learning rate
// is itself the drift-tracking mechanism (time constant ≈ 1/α samples), so
// the prequential error well after the change point must return to the
// level seen before it. This is the non-stationary IoT scenario the
// paper's introduction targets.
func TestPartialFitTracksDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := newModel(t, 2, 1000, Config{Models: 1, Epochs: 1, Seed: 3, LearningRate: 0.2})
	const n = 8000
	window := func(lo, hi, driftAt int) float64 {
		var sqErr float64
		var cnt int
		for i := lo; i < hi; i++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			sign := 1.0
			if i >= driftAt {
				sign = -1 // abrupt concept drift: the relationship inverts
			}
			y := sign * (2*a - b)
			if pred, err := m.Predict([]float64{a, b}); err == nil {
				sqErr += (pred - y) * (pred - y)
				cnt++
			}
			if err := m.PartialFit([]float64{a, b}, y); err != nil {
				t.Fatal(err)
			}
		}
		return sqErr / float64(cnt)
	}
	_ = window(0, n/2-500, n/2)         // warm-up
	before := window(n/2-500, n/2, n/2) // converged, pre-drift
	during := window(n/2, n/2+200, n/2) // right after the flip
	after := window(n-500, n, n/2)      // long after the flip
	if during < before*5 {
		t.Fatalf("drift not visible: before %v, during %v", before, during)
	}
	// Full reversal of every slow eigen-mode takes longer than this run,
	// so assert substantial recovery rather than parity with the pre-drift
	// floor: the error must have fallen well below its post-drift spike.
	if after > during/4 {
		t.Fatalf("online learner did not recover from drift: during %v, after %v", during, after)
	}
}
