package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"reghd/internal/hdc"
)

// This file is the wire form of Delta: a versioned, deterministic binary
// encoding that a replication transport ships between serving replicas
// (internal/repl). gob would work, but deltas are the steady-state traffic
// of a replica fleet, so the format is hand-rolled: fixed little-endian
// layout (no reflection, no type dictionaries), byte-for-byte deterministic
// for a given delta (equal deltas encode to equal bytes, which lets
// transports deduplicate and tests fingerprint payloads), and closed by a
// CRC so a flipped bit in flight surfaces as ErrCorruptDelta instead of a
// silently poisoned merge.

// ErrCorruptDelta is the sentinel wrapped by DecodeDelta when a payload
// cannot be decoded into a structurally valid delta — truncation, a flipped
// bit (CRC mismatch), an unknown version, or counts that disagree with the
// payload size. Callers match it with errors.Is to distinguish a damaged
// delta (drop it and request a resend) from a transport error, mirroring
// ErrCorruptModel on the checkpoint path.
var ErrCorruptDelta = errors.New("core: corrupt delta payload")

// deltaWire* are the frame constants of the delta wire format.
const (
	// deltaWireMagic opens every encoded delta ("RegHD delta wire").
	deltaWireMagic = "RHdw"
	// deltaWireVersion is the current layout version. Decoders reject
	// other versions rather than guessing at field layouts.
	deltaWireVersion = 1
	// deltaWireMaxDim and deltaWireMaxVecs bound the header counts a
	// decoder will trust before sizing the payload, so a corrupt length
	// field cannot demand an absurd allocation.
	deltaWireMaxDim  = 1 << 24
	deltaWireMaxVecs = 1 << 16
)

// deltaCRC is the checksum closing every frame (Castagnoli, the polynomial
// with hardware support on current CPUs).
var deltaCRC = crc32.MakeTable(crc32.Castagnoli)

// wireDim returns the common vector dimensionality of the delta (0 for a
// delta with no vectors) and validates that every vector and shadow agrees
// on it.
func (d *Delta) wireDim() (int, error) {
	dim := 0
	check := func(n int) error {
		if dim == 0 {
			dim = n
		}
		if n != dim {
			return fmt.Errorf("core: delta vectors disagree on dimension: %d vs %d", n, dim)
		}
		return nil
	}
	for _, v := range d.Models {
		if err := check(len(v)); err != nil {
			return 0, err
		}
	}
	for _, v := range d.Clusters {
		if err := check(len(v)); err != nil {
			return 0, err
		}
	}
	for _, b := range d.ModelsBin {
		if b == nil {
			return 0, errors.New("core: delta has nil binary model shadow")
		}
		if err := check(b.Dim); err != nil {
			return 0, err
		}
	}
	for _, b := range d.ClustersBin {
		if b == nil {
			return 0, errors.New("core: delta has nil binary cluster shadow")
		}
		if err := check(b.Dim); err != nil {
			return 0, err
		}
	}
	return dim, nil
}

// Encode serializes the delta into the versioned binary wire format decoded
// by DecodeDelta. The encoding is deterministic: equal deltas produce equal
// bytes. It fails only on structurally inconsistent deltas (vectors of
// mixed dimensionality, nil shadows).
func (d *Delta) Encode() ([]byte, error) {
	if d == nil {
		return nil, errors.New("core: nil delta")
	}
	dim, err := d.wireDim()
	if err != nil {
		return nil, err
	}
	counts := []int{len(d.Models), len(d.Clusters), len(d.AssignN), len(d.ModelsBin), len(d.ModelScale), len(d.ClustersBin)}
	for _, n := range counts {
		if n > deltaWireMaxVecs {
			return nil, fmt.Errorf("core: delta section of %d entries exceeds wire limit %d", n, deltaWireMaxVecs)
		}
	}
	if dim > deltaWireMaxDim {
		return nil, fmt.Errorf("core: delta dimension %d exceeds wire limit %d", dim, deltaWireMaxDim)
	}
	words := (dim + 63) / 64
	size := len(deltaWireMagic) + 1 + // magic + version
		4 + // dim
		8 + // samples
		16 + // calibration
		6*4 + 4 + // six section counts + nOps
		8*len(d.Models)*dim + 8*len(d.Clusters)*dim + 8*len(d.AssignN) +
		8*int(hdc.NumOps) +
		8*len(d.ModelsBin)*words + 8*len(d.ModelScale) + 8*len(d.ClustersBin)*words +
		4 // crc
	buf := make([]byte, 0, size)
	buf = append(buf, deltaWireMagic...)
	buf = append(buf, deltaWireVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dim))
	buf = binary.LittleEndian.AppendUint64(buf, d.Samples)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.CalibA))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.CalibB))
	for _, n := range counts {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(hdc.NumOps))
	for _, v := range d.Models {
		buf = appendVector(buf, v)
	}
	for _, v := range d.Clusters {
		buf = appendVector(buf, v)
	}
	for _, n := range d.AssignN {
		buf = binary.LittleEndian.AppendUint64(buf, n)
	}
	ops := d.Ops.Snapshot()
	for _, n := range ops {
		buf = binary.LittleEndian.AppendUint64(buf, n)
	}
	for _, b := range d.ModelsBin {
		buf = appendWords(buf, b.Words)
	}
	for _, s := range d.ModelScale {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s))
	}
	for _, b := range d.ClustersBin {
		buf = appendWords(buf, b.Words)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, deltaCRC)), nil
}

// appendVector appends the Float64bits of every component.
func appendVector(buf []byte, v hdc.Vector) []byte {
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// appendWords appends a binary shadow's packed words.
func appendWords(buf []byte, ws []uint64) []byte {
	for _, w := range ws {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// deltaReader is a bounds-checked cursor over an encoded delta; every read
// failure latches corrupt.
type deltaReader struct {
	data    []byte
	pos     int
	corrupt bool
}

func (r *deltaReader) bytes(n int) []byte {
	if r.corrupt || n < 0 || len(r.data)-r.pos < n {
		r.corrupt = true
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *deltaReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *deltaReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *deltaReader) f64() float64 { return math.Float64frombits(r.u64()) }

// count reads a section-count header field and validates it against the
// wire limit before anything is sized from it.
func (r *deltaReader) count(max int) int {
	n := r.u32()
	if int64(n) > int64(max) {
		r.corrupt = true
		return 0
	}
	return int(n)
}

// vector reads one dense vector of the given dimensionality.
func (r *deltaReader) vector(dim int) hdc.Vector {
	if r.corrupt {
		return nil
	}
	v := hdc.NewVector(dim)
	for j := range v {
		v[j] = r.f64()
	}
	return v
}

// shadow reads one bit-packed binary shadow, enforcing the zero-tail-bits
// invariant the Hamming kernels rely on.
func (r *deltaReader) shadow(dim int) *hdc.Binary {
	if r.corrupt {
		return nil
	}
	b := hdc.NewBinary(dim)
	for j := range b.Words {
		b.Words[j] = r.u64()
	}
	if tail := dim % 64; tail != 0 && len(b.Words) > 0 {
		if b.Words[len(b.Words)-1]>>uint(tail) != 0 {
			r.corrupt = true
			return nil
		}
	}
	return b
}

// DecodeDelta parses a payload produced by Delta.Encode. Any structural
// damage — truncation, trailing garbage, counts that disagree with the
// payload size, an unknown version, a checksum mismatch — returns an error
// wrapping ErrCorruptDelta; a nil error guarantees the delta is shaped
// consistently (all vectors share one dimensionality, shadow tail bits are
// zero). The returned delta owns its memory.
func DecodeDelta(data []byte) (*Delta, error) {
	if len(data) < len(deltaWireMagic)+1+4 {
		return nil, fmt.Errorf("%w: %d-byte payload is shorter than the header", ErrCorruptDelta, len(data))
	}
	if string(data[:len(deltaWireMagic)]) != deltaWireMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptDelta)
	}
	if v := data[len(deltaWireMagic)]; v != deltaWireVersion {
		return nil, fmt.Errorf("%w: unknown wire version %d (have %d)", ErrCorruptDelta, v, deltaWireVersion)
	}
	// Checksum first: everything after this point may trust the bytes to be
	// the bytes the encoder wrote.
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, deltaCRC) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptDelta)
	}
	r := &deltaReader{data: body, pos: len(deltaWireMagic) + 1}
	dim := r.count(deltaWireMaxDim)
	d := &Delta{Samples: r.u64(), CalibA: r.f64(), CalibB: r.f64()}
	nModels := r.count(deltaWireMaxVecs)
	nClusters := r.count(deltaWireMaxVecs)
	nAssign := r.count(deltaWireMaxVecs)
	nModelsBin := r.count(deltaWireMaxVecs)
	nScales := r.count(deltaWireMaxVecs)
	nClustersBin := r.count(deltaWireMaxVecs)
	nOps := r.count(int(hdc.NumOps))
	if r.corrupt || nOps != int(hdc.NumOps) {
		return nil, fmt.Errorf("%w: malformed section header", ErrCorruptDelta)
	}
	// The header fully determines the payload size; reject any disagreement
	// before allocating the sections.
	words := (dim + 63) / 64
	want := int64(r.pos) +
		8*int64(nModels+nClusters)*int64(dim) + 8*int64(nAssign) + 8*int64(nOps) +
		8*int64(nModelsBin+nClustersBin)*int64(words) + 8*int64(nScales)
	if want != int64(len(body)) {
		return nil, fmt.Errorf("%w: header promises %d payload bytes, have %d", ErrCorruptDelta, want, int64(len(body)))
	}
	if nModels > 0 {
		d.Models = make([]hdc.Vector, nModels)
		for i := range d.Models {
			d.Models[i] = r.vector(dim)
		}
	}
	if nClusters > 0 {
		d.Clusters = make([]hdc.Vector, nClusters)
		for i := range d.Clusters {
			d.Clusters[i] = r.vector(dim)
		}
	}
	if nAssign > 0 {
		d.AssignN = make([]uint64, nAssign)
		for i := range d.AssignN {
			d.AssignN[i] = r.u64()
		}
	}
	for op := hdc.Op(0); op < hdc.NumOps; op++ {
		d.Ops.Add(op, r.u64())
	}
	if nModelsBin > 0 {
		d.ModelsBin = make([]*hdc.Binary, nModelsBin)
		for i := range d.ModelsBin {
			d.ModelsBin[i] = r.shadow(dim)
		}
	}
	if nScales > 0 {
		d.ModelScale = make([]float64, nScales)
		for i := range d.ModelScale {
			d.ModelScale[i] = r.f64()
		}
	}
	if nClustersBin > 0 {
		d.ClustersBin = make([]*hdc.Binary, nClustersBin)
		for i := range d.ClustersBin {
			d.ClustersBin[i] = r.shadow(dim)
		}
	}
	if r.corrupt {
		return nil, fmt.Errorf("%w: truncated payload", ErrCorruptDelta)
	}
	return d, nil
}
