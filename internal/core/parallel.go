package core

import (
	"fmt"
	"runtime"
	"sync"

	"reghd/internal/hdc"
)

// PredictBatchParallel predicts every row of xs using the given number of
// worker goroutines (0 means GOMAXPROCS). Prediction only reads model
// state, so workers share the model and carry private scratch buffers —
// the data parallelism the paper highlights as inherent to HD computing.
// Operation counting is aggregated across workers into InferCounter.
func (m *Model) PredictBatchParallel(xs [][]float64, workers int) ([]float64, error) {
	if !m.trained {
		return nil, ErrNotTrained
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(xs) {
		workers = len(xs)
	}
	if workers <= 1 {
		return m.PredictBatch(xs)
	}
	out := make([]float64, len(xs))
	errs := make([]error, workers)
	counters := make([]*hdc.Counter, workers)
	var wg sync.WaitGroup
	chunk := (len(xs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(xs) {
			hi = len(xs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		var ctr *hdc.Counter
		if m.InferCounter != nil {
			ctr = &hdc.Counter{}
			counters[w] = ctr
		}
		go func(w, lo, hi int, ctr *hdc.Counter) {
			defer wg.Done()
			var sims, conf []float64
			if m.cfg.Models > 1 {
				sims = make([]float64, m.cfg.Models)
				conf = make([]float64, m.cfg.Models)
			}
			for i := lo; i < hi; i++ {
				e, err := m.encode(ctr, xs[i])
				if err != nil {
					errs[w] = fmt.Errorf("core: predicting row %d: %w", i, err)
					return
				}
				y := m.predictWithScratch(ctr, e, m.modelDot, sims, conf)
				if m.cfg.PredictMode.UsesBinaryModel() {
					y = m.calibA*y + m.calibB
					ctr.Add(hdc.OpFloatMul, 1)
					ctr.Add(hdc.OpFloatAdd, 1)
				}
				out[i] = y
			}
		}(w, lo, hi, ctr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, ctr := range counters {
		m.InferCounter.AddCounter(ctr)
	}
	return out, nil
}
