package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"reghd/internal/hdc"
)

// rowErr pairs a row index with its error so parallel batch paths report
// the first failure in row order regardless of worker scheduling.
type rowErr struct {
	row int
	err error
}

// firstRowErr returns the recorded error with the lowest row index, or nil.
func firstRowErr(errs []rowErr) error {
	var first error
	best := -1
	for _, re := range errs {
		if re.err != nil && (best < 0 || re.row < best) {
			best = re.row
			first = re.err
		}
	}
	return first
}

// clampWorkers resolves a worker count request against n items: 0 means
// GOMAXPROCS, and the count never exceeds the number of items.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// forEachRowParallel splits [0, n) into contiguous per-worker chunks and
// applies fn to every index; each worker stops its chunk at its first
// error. It returns the error of the lowest failing row index. With one
// worker (or one item) it runs inline.
func forEachRowParallel(n, workers int, fn func(i int) error) error {
	return forEachRowParallelCtx(context.Background(), n, workers, fn)
}

// forEachRowParallelCtx is forEachRowParallel with per-row cancellation:
// every worker checks ctx before each row, so a deadline or cancellation
// stops the batch at row granularity instead of running it to completion.
// The reported error for a cancelled row wraps ctx.Err(). The background
// context's Err is a constant nil, so the uncancellable path pays only a
// dynamic method call per row — noise against a D-dimensional prediction.
func forEachRowParallelCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	workers = clampWorkers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: row %d cancelled: %w", i, err)
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]rowErr, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					errs[w] = rowErr{row: i, err: fmt.Errorf("core: row %d cancelled: %w", i, err)}
					return
				}
				if err := fn(i); err != nil {
					errs[w] = rowErr{row: i, err: err}
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return firstRowErr(errs)
}

// PredictBatchParallel predicts every row of xs using the given number of
// worker goroutines (0 means GOMAXPROCS). Prediction only reads model
// state, so workers share the model and carry private pooled scratch —
// the data parallelism the paper highlights as inherent to HD computing.
// Operation counting is aggregated across workers into InferCounter, on
// both the success and the failure path, so instrumentation stays
// consistent with the work actually performed; on error the failure with
// the lowest row index is returned.
func (m *Model) PredictBatchParallel(xs [][]float64, workers int) ([]float64, error) {
	if !m.trained {
		return nil, ErrNotTrained
	}
	workers = clampWorkers(workers, len(xs))
	if workers <= 1 {
		return m.PredictBatch(xs)
	}
	out := make([]float64, len(xs))
	errs := make([]rowErr, workers)
	counters := make([]*hdc.Counter, workers)
	var wg sync.WaitGroup
	chunk := (len(xs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(xs) {
			hi = len(xs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		var ctr *hdc.Counter
		if m.InferCounter != nil {
			ctr = &hdc.Counter{}
			counters[w] = ctr
		}
		go func(w, lo, hi int, ctr *hdc.Counter) {
			defer wg.Done()
			sc := m.scratch.get()
			defer m.scratch.put(sc)
			for i := lo; i < hi; i++ {
				e, err := m.encodeScratch(ctr, xs[i], sc)
				if err != nil {
					errs[w] = rowErr{row: i, err: fmt.Errorf("core: predicting row %d: %w", i, err)}
					return
				}
				out[i] = m.predictEncoded(ctr, e, sc.sims, sc.conf)
			}
		}(w, lo, hi, ctr)
	}
	wg.Wait()
	// Merge per-worker counters before the error check: a failed batch
	// must still account for the operations its workers performed.
	for _, ctr := range counters {
		m.InferCounter.AddCounter(ctr)
	}
	if err := firstRowErr(errs); err != nil {
		return nil, err
	}
	return out, nil
}
