package core

import (
	"math/rand"
	"testing"

	"reghd/internal/hdc"
)

func TestPredictBatchParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"single", Config{Models: 1, Epochs: 3, Seed: 1}},
		{"multi", Config{Models: 4, Epochs: 3, Seed: 2}},
		{"binary", Config{Models: 4, Epochs: 3, Seed: 3, ClusterMode: ClusterBinary, PredictMode: PredictBinaryBoth}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			all := makeLinear(rand.New(rand.NewSource(4)), 300, 3, 0.05)
			m := newModel(t, 3, 512, tc.cfg)
			if _, err := m.Fit(all); err != nil {
				t.Fatal(err)
			}
			seq, err := m.PredictBatch(all.X)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 2, 7} {
				par, err := m.PredictBatchParallel(all.X, workers)
				if err != nil {
					t.Fatal(err)
				}
				for i := range seq {
					if par[i] != seq[i] {
						t.Fatalf("workers=%d: row %d differs: %v vs %v", workers, i, par[i], seq[i])
					}
				}
			}
		})
	}
}

func TestPredictBatchParallelErrors(t *testing.T) {
	m := newModel(t, 3, 128, Config{Models: 2, Epochs: 2, Seed: 5})
	if _, err := m.PredictBatchParallel([][]float64{{1, 2, 3}}, 2); err != ErrNotTrained {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
	all := makeLinear(rand.New(rand.NewSource(6)), 100, 3, 0.05)
	if _, err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	bad := [][]float64{{1, 2, 3}, {1}} // second row has wrong arity
	if _, err := m.PredictBatchParallel(bad, 2); err == nil {
		t.Fatal("wrong feature count accepted")
	}
}

func TestPredictBatchParallelCountsAggregated(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(7)), 64, 3, 0.05)
	m := newModel(t, 3, 256, Config{Models: 2, Epochs: 2, Seed: 8})
	if _, err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	m.InferCounter = &hdc.Counter{}
	if _, err := m.PredictBatch(all.X); err != nil {
		t.Fatal(err)
	}
	seqCounts := m.InferCounter.Snapshot()
	m.InferCounter = &hdc.Counter{}
	if _, err := m.PredictBatchParallel(all.X, 4); err != nil {
		t.Fatal(err)
	}
	parCounts := m.InferCounter.Snapshot()
	if seqCounts != parCounts {
		t.Fatalf("parallel counts differ from sequential:\n%v\n%v", seqCounts, parCounts)
	}
}

func TestParallelFitDeterministic(t *testing.T) {
	// The parallel encoding pass must not change training results (the
	// shuffled update order comes from the model RNG, not goroutine order).
	all := makeLinear(rand.New(rand.NewSource(9)), 400, 3, 0.05)
	run := func() float64 {
		m := newModel(t, 3, 512, Config{Models: 4, Epochs: 5, Tol: 1e-12, Patience: 1000, Seed: 10})
		if _, err := m.Fit(all); err != nil {
			t.Fatal(err)
		}
		y, err := m.Predict(all.X[0])
		if err != nil {
			t.Fatal(err)
		}
		return y
	}
	if run() != run() {
		t.Fatal("parallel encoding made training nondeterministic")
	}
}
