package core

import (
	"math/rand"
	"testing"

	"reghd/internal/dataset"
)

func TestDeploymentBytes(t *testing.T) {
	const d = 4096
	full := newModel(t, 2, d, Config{Models: 8, Epochs: 1, Seed: 1})
	quant := newModel(t, 2, d, Config{Models: 8, Epochs: 1, Seed: 1, ClusterMode: ClusterBinary, PredictMode: PredictBinaryBoth})
	fb, qb := full.DeploymentBytes(), quant.DeploymentBytes()
	// Full: 8 models + 8 clusters of 4096 float64 = 512 KiB.
	if fb != 8*d*8*2 {
		t.Fatalf("full deployment = %d bytes, want %d", fb, 8*d*8*2)
	}
	// Quantized: 8 binary models (+scales) + 8 binary clusters ≈ 8 KiB.
	if qb >= fb/50 {
		t.Fatalf("quantized deployment %d not dramatically smaller than full %d", qb, fb)
	}
	single := newModel(t, 2, d, Config{Models: 1, Epochs: 1, Seed: 1})
	if single.DeploymentBytes() != d*8 {
		t.Fatalf("single-model deployment = %d, want %d", single.DeploymentBytes(), d*8)
	}
}

func TestAssignClusterSingleModel(t *testing.T) {
	m := newModel(t, 2, 128, Config{Models: 1, Epochs: 1, Seed: 1})
	c, sims, err := m.AssignCluster([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 || len(sims) != 1 || sims[0] != 1 {
		t.Fatalf("single model assignment = %d/%v", c, sims)
	}
}

func TestAssignClusterValidatesInput(t *testing.T) {
	m := newModel(t, 2, 128, Config{Models: 4, Epochs: 1, Seed: 2})
	if _, _, err := m.AssignCluster([]float64{1}); err == nil {
		t.Fatal("wrong input length accepted")
	}
	if _, err := m.ClusterUsage([][]float64{{1}}); err == nil {
		t.Fatal("ClusterUsage accepted bad row")
	}
}

// TestClusterAssignmentsTrackGroundTruth verifies the Eq. 8 run-time
// clustering actually discovers the input structure: on a dataset drawn
// from well-separated clusters, samples of the same ground-truth cluster
// must be routed to the same learned center, and different ground-truth
// clusters must not all collapse onto one center.
func TestClusterAssignmentsTrackGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const nClusters = 4
	centers := make([][]float64, nClusters)
	for c := range centers {
		centers[c] = []float64{4 * rng.NormFloat64(), 4 * rng.NormFloat64(), 4 * rng.NormFloat64()}
	}
	d := &dataset.Dataset{Name: "gt", X: make([][]float64, 600), Y: make([]float64, 600)}
	truth := make([]int, 600)
	for i := range d.X {
		c := rng.Intn(nClusters)
		truth[i] = c
		d.X[i] = []float64{
			centers[c][0] + 0.3*rng.NormFloat64(),
			centers[c][1] + 0.3*rng.NormFloat64(),
			centers[c][2] + 0.3*rng.NormFloat64(),
		}
		d.Y[i] = float64(c)
	}
	sc, _ := dataset.FitScaler(d, false)
	ds, _ := sc.Transform(d)

	m := newModelBW(t, 3, 1000, 1.0, Config{Models: nClusters, Epochs: 20, Seed: 4})
	if _, err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}

	// Purity: for each ground-truth cluster, the dominant learned center
	// should claim a clear majority of its samples.
	counts := make([][]int, nClusters)
	for i := range counts {
		counts[i] = make([]int, nClusters)
	}
	for i, x := range ds.X {
		got, sims, err := m.AssignCluster(x)
		if err != nil {
			t.Fatal(err)
		}
		if len(sims) != nClusters {
			t.Fatalf("got %d similarities", len(sims))
		}
		counts[truth[i]][got]++
	}
	distinct := map[int]bool{}
	for gt := 0; gt < nClusters; gt++ {
		best, total := 0, 0
		for _, n := range counts[gt] {
			total += n
			if n > best {
				best = n
			}
		}
		if total == 0 {
			continue
		}
		if purity := float64(best) / float64(total); purity < 0.7 {
			t.Fatalf("ground-truth cluster %d purity %v too low (%v)", gt, purity, counts[gt])
		}
		for learned, n := range counts[gt] {
			if n == best {
				distinct[learned] = true
				break
			}
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("all ground-truth clusters collapsed onto %d learned center(s)", len(distinct))
	}

	// Usage histogram covers the dataset.
	usage, err := m.ClusterUsage(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, u := range usage {
		sum += u
	}
	if sum != ds.Len() {
		t.Fatalf("usage sums to %d, want %d", sum, ds.Len())
	}
}
