package core

import (
	"fmt"
	"math"
	"math/rand"

	"reghd/internal/hdc"
)

// FaultView gives fault-injection harnesses (internal/fault) direct,
// mutable access to the live hypervector stores of a model: the slices
// alias the model's own state, so writing through them corrupts exactly the
// memory a deployed accelerator would hold. It exists for experiments that
// model hardware bit errors — production code must never mutate a model
// through it.
//
// The single-writer contract applies: mutate through a FaultView only while
// no prediction or training call is in flight on the same model (the fault
// wrapper serializes on its own lock; experiment code is single-threaded by
// construction). Nil fields mean the configuration does not materialize
// that store.
type FaultView struct {
	// Clusters are the integer cluster hypervectors C_i (nil when k = 1).
	Clusters []hdc.Vector
	// ClustersBin are the binary cluster shadows C_i^b (binary cluster
	// modes only).
	ClustersBin []*hdc.Binary
	// Models are the integer regression hypervectors M_i.
	Models []hdc.Vector
	// ModelsBin are the binary model shadows M_i^b (binary model modes
	// only).
	ModelsBin []*hdc.Binary
}

// FaultView returns mutable aliases of the model's hypervector stores for
// fault injection. See the FaultView type for the access contract.
func (m *Model) FaultView() FaultView {
	return FaultView{
		Clusters:    m.clusters,
		ClustersBin: m.clustersBin,
		Models:      m.models,
		ModelsBin:   m.modelsBin,
	}
}

// Clone returns an independent deep copy of the model: mutating the clone
// (training it further, injecting faults) never affects the original. The
// clone's shuffling stream is re-seeded from the configuration, so a clone
// trained further diverges from the original only through that stream. The
// encoder is shared (read-only after construction); the optional
// counters/stage accumulators and any MarkSync baseline are not carried
// over — a clone starts with clean instrumentation and no sync point.
// Everything a training worker mutates (hypervector stores, shadows,
// scales, calibration, sample/assignment census, similarity scratch,
// prediction scratch pool, rng) is private to the clone, which is what
// lets FitParallel train clones concurrently under -race.
func (m *Model) Clone() *Model {
	c := &Model{
		params:  m.params,
		trained: m.trained,
		samples: m.samples,
		rng:     rand.New(rand.NewSource(m.cfg.Seed)),
		scratch: newScratchPool(m.cfg.Models, m.dim, m.cfg.PredictMode.UsesRawQuery(), m.bufEnc != nil),
	}
	c.clusters = cloneVectors(m.clusters)
	c.clustersBin = cloneBinaries(m.clustersBin)
	c.models = cloneVectors(m.models)
	c.modelsBin = cloneBinaries(m.modelsBin)
	c.modelScale = append([]float64(nil), m.modelScale...)
	// clustersSet is only materialized on frozen Snapshots; a live clone
	// must not alias one left in params by mistake.
	c.clustersSet = nil
	if m.assignN != nil {
		c.assignN = append([]uint64(nil), m.assignN...)
	}
	if m.cfg.Models > 1 {
		c.sims = make([]float64, m.cfg.Models)
		c.conf = make([]float64, m.cfg.Models)
	}
	return c
}

// FlipModelBits injects hardware faults into the binary model shadows by
// flipping the given fraction of randomly chosen bits in every M_i^b. It
// models memory errors in a deployed quantized model (the robustness claim
// of Section 3). The configuration must use a binary model.
func (m *Model) FlipModelBits(rng *rand.Rand, fraction float64) error {
	if !m.cfg.PredictMode.UsesBinaryModel() {
		return fmt.Errorf("core: FlipModelBits requires a binary-model PredictMode, have %s", m.cfg.PredictMode)
	}
	if fraction < 0 || fraction > 1 {
		return fmt.Errorf("core: fault fraction must be in [0,1], got %v", fraction)
	}
	nFlips := int(math.Round(fraction * float64(m.dim)))
	for _, mb := range m.modelsBin {
		idx := rng.Perm(m.dim)[:nFlips]
		mb.FlipBits(idx)
	}
	return nil
}

// CorruptModelComponents injects faults into the integer regression models
// by replacing the given fraction of randomly chosen components of every
// M_i with values drawn uniformly from [−max|M_i|, +max|M_i|], modeling
// corrupted memory words in a full-precision deployment.
func (m *Model) CorruptModelComponents(rng *rand.Rand, fraction float64) error {
	if fraction < 0 || fraction > 1 {
		return fmt.Errorf("core: fault fraction must be in [0,1], got %v", fraction)
	}
	nCorrupt := int(math.Round(fraction * float64(m.dim)))
	for _, mv := range m.models {
		var maxAbs float64
		for _, v := range mv {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		idx := rng.Perm(m.dim)[:nCorrupt]
		for _, j := range idx {
			mv[j] = (rng.Float64()*2 - 1) * maxAbs
		}
	}
	// Faults in the integer model propagate into stale binary shadows only
	// at the next refresh; a deployed quantized model keeps its own bits,
	// so shadows are deliberately left untouched.
	return nil
}
