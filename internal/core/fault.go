package core

import (
	"fmt"
	"math"
	"math/rand"
)

// FlipModelBits injects hardware faults into the binary model shadows by
// flipping the given fraction of randomly chosen bits in every M_i^b. It
// models memory errors in a deployed quantized model (the robustness claim
// of Section 3). The configuration must use a binary model.
func (m *Model) FlipModelBits(rng *rand.Rand, fraction float64) error {
	if !m.cfg.PredictMode.UsesBinaryModel() {
		return fmt.Errorf("core: FlipModelBits requires a binary-model PredictMode, have %s", m.cfg.PredictMode)
	}
	if fraction < 0 || fraction > 1 {
		return fmt.Errorf("core: fault fraction must be in [0,1], got %v", fraction)
	}
	nFlips := int(math.Round(fraction * float64(m.dim)))
	for _, mb := range m.modelsBin {
		idx := rng.Perm(m.dim)[:nFlips]
		mb.FlipBits(idx)
	}
	return nil
}

// CorruptModelComponents injects faults into the integer regression models
// by replacing the given fraction of randomly chosen components of every
// M_i with values drawn uniformly from [−max|M_i|, +max|M_i|], modeling
// corrupted memory words in a full-precision deployment.
func (m *Model) CorruptModelComponents(rng *rand.Rand, fraction float64) error {
	if fraction < 0 || fraction > 1 {
		return fmt.Errorf("core: fault fraction must be in [0,1], got %v", fraction)
	}
	nCorrupt := int(math.Round(fraction * float64(m.dim)))
	for _, mv := range m.models {
		var maxAbs float64
		for _, v := range mv {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		idx := rng.Perm(m.dim)[:nCorrupt]
		for _, j := range idx {
			mv[j] = (rng.Float64()*2 - 1) * maxAbs
		}
	}
	// Faults in the integer model propagate into stale binary shadows only
	// at the next refresh; a deployed quantized model keeps its own bits,
	// so shadows are deliberately left untouched.
	return nil
}
