package core

import (
	"math/rand"
	"testing"
)

// trainEval trains a model with the given modes on a shared piecewise
// dataset and returns the held-out MSE.
func trainEval(t *testing.T, cm ClusterMode, pm PredictMode, k int) float64 {
	t.Helper()
	all := makePiecewise(rand.New(rand.NewSource(100)), 700, 3, 0.05)
	train := all.Subset(seqInts(0, 500))
	test := all.Subset(seqInts(500, 700))
	cfg := Config{Models: k, Epochs: 40, Seed: 101, ClusterMode: cm, PredictMode: pm}
	m := newModel(t, 3, 2000, cfg)
	if _, err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	mse, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	return mse
}

func TestAllConfigurationsTrain(t *testing.T) {
	// Every (cluster, predict) combination must train end-to-end and beat
	// predicting the mean (target variance ≈ 3·(9+1) ≈ 30 on piecewise).
	for _, cm := range []ClusterMode{ClusterInteger, ClusterBinary, ClusterNaiveBinary} {
		for _, pm := range []PredictMode{PredictFull, PredictBinaryQuery, PredictBinaryModel, PredictBinaryBoth} {
			mse := trainEval(t, cm, pm, 4)
			if mse > 15 {
				t.Fatalf("%s/%s: MSE %v not better than trivial predictor", cm, pm, mse)
			}
		}
	}
}

func TestQuantizedClusterNearFullQuality(t *testing.T) {
	// Fig. 6: framework binary clustering tracks integer clustering closely,
	// while both clearly beat a trivial predictor.
	full := trainEval(t, ClusterInteger, PredictFull, 4)
	quant := trainEval(t, ClusterBinary, PredictFull, 4)
	if quant > full*3 {
		t.Fatalf("quantized clustering degraded too much: full %v, quantized %v", full, quant)
	}
}

func TestBinaryBothWorstQuality(t *testing.T) {
	// Fig. 7 ordering: the fully binarized prediction path loses the most
	// quality relative to full precision.
	full := trainEval(t, ClusterInteger, PredictFull, 4)
	both := trainEval(t, ClusterInteger, PredictBinaryBoth, 4)
	if both < full {
		t.Logf("note: bquery-bmodel (%v) beat full (%v) on this seed; acceptable but unusual", both, full)
	}
	// The binarized path must still learn.
	if both > 15 {
		t.Fatalf("bquery-bmodel MSE %v did not learn", both)
	}
}

func TestHardMaxUpdateRuleTrains(t *testing.T) {
	all := makePiecewise(rand.New(rand.NewSource(102)), 600, 3, 0.05)
	train := all.Subset(seqInts(0, 450))
	test := all.Subset(seqInts(450, 600))
	cfg := Config{Models: 4, Epochs: 40, Seed: 103, UpdateRule: UpdateHardMax}
	m := newModel(t, 3, 2000, cfg)
	if _, err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	mse, _ := m.Evaluate(test)
	if mse > 15 {
		t.Fatalf("hardmax MSE %v did not learn", mse)
	}
}

func TestBinaryShadowsConsistent(t *testing.T) {
	all := makePiecewise(rand.New(rand.NewSource(104)), 300, 3, 0.05)
	cfg := Config{Models: 2, Epochs: 3, Seed: 105, ClusterMode: ClusterBinary, PredictMode: PredictBinaryBoth}
	m := newModel(t, 3, 512, cfg)
	if _, err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	// After training, each binary shadow must equal the packing of its
	// integer source, and scales must be the L1 means.
	for i := range m.models {
		for j := 0; j < m.dim; j++ {
			wantBit := m.models[i][j] >= 0
			if m.modelsBin[i].Bit(j) != wantBit {
				t.Fatalf("model %d bit %d stale", i, j)
			}
		}
		if m.modelScale[i] <= 0 {
			t.Fatalf("model %d scale %v not positive after training", i, m.modelScale[i])
		}
		for j := 0; j < m.dim; j++ {
			wantBit := m.clusters[i][j] >= 0
			if m.clustersBin[i].Bit(j) != wantBit {
				t.Fatalf("cluster %d bit %d stale", i, j)
			}
		}
	}
}

func TestNaiveBinaryClustersFrozen(t *testing.T) {
	all := makePiecewise(rand.New(rand.NewSource(106)), 300, 3, 0.05)
	cfg := Config{Models: 3, Epochs: 5, Seed: 107, ClusterMode: ClusterNaiveBinary}
	m := newModel(t, 3, 512, cfg)
	before := make([]*boolSnapshot, cfg.Models)
	for i := range before {
		before[i] = snapshotBits(m, i)
	}
	if _, err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		after := snapshotBits(m, i)
		if !before[i].equal(after) {
			t.Fatalf("naive binary cluster %d changed during training", i)
		}
	}
}

type boolSnapshot struct{ bits []bool }

func snapshotBits(m *Model, i int) *boolSnapshot {
	s := &boolSnapshot{bits: make([]bool, m.dim)}
	for j := 0; j < m.dim; j++ {
		s.bits[j] = m.clustersBin[i].Bit(j)
	}
	return s
}

func (s *boolSnapshot) equal(o *boolSnapshot) bool {
	for i := range s.bits {
		if s.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

func TestFaultInjectionBinaryRobustness(t *testing.T) {
	// §3 robustness: a small fraction of flipped bits in the binary model
	// must not destroy prediction quality.
	all := makePiecewise(rand.New(rand.NewSource(108)), 700, 3, 0.05)
	train := all.Subset(seqInts(0, 500))
	test := all.Subset(seqInts(500, 700))
	cfg := Config{Models: 4, Epochs: 40, Seed: 109, PredictMode: PredictBinaryBoth}
	m := newModel(t, 3, 4000, cfg)
	if _, err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	clean, _ := m.Evaluate(test)
	if err := m.FlipModelBits(rand.New(rand.NewSource(110)), 0.01); err != nil {
		t.Fatal(err)
	}
	faulty, _ := m.Evaluate(test)
	if faulty > clean*2+1 {
		t.Fatalf("1%% bit flips blew up MSE: clean %v faulty %v", clean, faulty)
	}
}

func TestFaultInjectionValidation(t *testing.T) {
	cfg := Config{Models: 2, Epochs: 1, Seed: 111}
	m := newModel(t, 3, 128, cfg)
	if err := m.FlipModelBits(rand.New(rand.NewSource(1)), 0.1); err == nil {
		t.Fatal("FlipModelBits on integer-model mode accepted")
	}
	if err := m.CorruptModelComponents(rand.New(rand.NewSource(1)), -0.1); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if err := m.CorruptModelComponents(rand.New(rand.NewSource(1)), 1.1); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	cfgB := Config{Models: 2, Epochs: 1, Seed: 112, PredictMode: PredictBinaryBoth}
	mb := newModel(t, 3, 128, cfgB)
	if err := mb.FlipModelBits(rand.New(rand.NewSource(1)), 2); err == nil {
		t.Fatal("fraction > 1 accepted by FlipModelBits")
	}
}

func TestCorruptIntegerModelRobustness(t *testing.T) {
	all := makePiecewise(rand.New(rand.NewSource(113)), 700, 3, 0.05)
	train := all.Subset(seqInts(0, 500))
	test := all.Subset(seqInts(500, 700))
	cfg := Config{Models: 4, Epochs: 40, Seed: 114}
	m := newModel(t, 3, 4000, cfg)
	if _, err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	clean, _ := m.Evaluate(test)
	if err := m.CorruptModelComponents(rand.New(rand.NewSource(115)), 0.01); err != nil {
		t.Fatal(err)
	}
	faulty, _ := m.Evaluate(test)
	if faulty > clean*2+1 {
		t.Fatalf("1%% corrupted components blew up MSE: clean %v faulty %v", clean, faulty)
	}
}
