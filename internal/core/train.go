package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"reghd/internal/dataset"
	"reghd/internal/hdc"
)

// TrainResult summarizes an iterative training run.
type TrainResult struct {
	// Epochs is the number of passes actually performed.
	Epochs int
	// History holds the monitored MSE after each epoch: the prequential
	// training MSE (prediction-before-update), or the validation MSE when
	// a validation set was supplied.
	History []float64
	// Converged reports whether the run stopped on the convergence test
	// rather than the epoch cap or the callback.
	Converged bool
	// FinalMSE is the last entry of History.
	FinalMSE float64
}

// trainCache holds the per-sample encodings computed once before the
// iterative passes: the bit-packed bipolar encodings always, and the raw
// encodings (as float32 to halve memory) when the prediction mode reads the
// raw query.
type trainCache struct {
	packed []*hdc.Binary
	raw    [][]float32
	y      []float64
}

// prepare encodes the whole training set. Encoding cost is charged to the
// training counter once per sample; the hardware cost model charges it once
// per epoch, matching a streaming implementation that re-encodes each pass.
func (m *Model) prepare(train *dataset.Dataset) (*trainCache, error) {
	if err := train.Validate(); err != nil {
		return nil, err
	}
	if train.Features() != m.enc.Features() {
		return nil, fmt.Errorf("core: dataset has %d features, encoder expects %d", train.Features(), m.enc.Features())
	}
	c := &trainCache{
		packed: make([]*hdc.Binary, train.Len()),
		y:      train.Y,
	}
	needRaw := m.cfg.PredictMode.UsesRawQuery()
	if needRaw {
		c.raw = make([][]float32, train.Len())
	}
	// Encoding is embarrassingly parallel (the encoder is read-only);
	// it dominates Fit's cost, so spread it over the available cores with
	// per-worker operation counters merged afterwards.
	workers := runtime.GOMAXPROCS(0)
	if workers > train.Len() {
		workers = train.Len()
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, workers)
	counters := make([]*hdc.Counter, workers)
	var wg sync.WaitGroup
	chunk := (train.Len() + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > train.Len() {
			hi = train.Len()
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		var ctr *hdc.Counter
		if m.TrainCounter != nil {
			ctr = &hdc.Counter{}
			counters[w] = ctr
		}
		go func(w, lo, hi int, ctr *hdc.Counter) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				e, err := m.encode(ctr, train.X[i])
				if err != nil {
					errs[w] = fmt.Errorf("core: encoding row %d: %w", i, err)
					return
				}
				c.packed[i] = e.packed
				if needRaw {
					r := make([]float32, m.dim)
					for j, v := range e.raw {
						r[j] = float32(v)
					}
					c.raw[i] = r
				}
			}
		}(w, lo, hi, ctr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, ctr := range counters {
		m.TrainCounter.AddCounter(ctr)
	}
	return c, nil
}

// update applies the Eq. 7 model update and the Eq. 8 cluster update for
// one sample, using the similarities/confidences left by predictTraining.
//
// The update vector matches the query representation of the prediction
// kernel (bipolar S for binary-query modes — the paper's Eq. 2/7 — raw H
// for raw-query modes): mixing representations turns the recursion into an
// asymmetric sign-data LMS that can diverge. The step is normalized by
// D/‖u‖² (NLMS) so that one update moves ŷ by exactly α·(y−ŷ) for every
// representation; for bipolar S the factor is 1 and the update reduces to
// the paper's M ← M + α(y−ŷ)S verbatim.
func (m *Model) update(ctr *hdc.Counter, e encoded, y, yhat float64) {
	m.samples++
	errv := y - yhat
	u := e.s
	gain := m.cfg.LearningRate
	if m.cfg.PredictMode.UsesRawQuery() {
		u = e.raw
		norm2 := hdc.Dot(ctr, u, u)
		if norm2 < 1e-12 {
			return
		}
		gain *= float64(m.dim) / norm2
	}
	if m.cfg.Models == 1 {
		hdc.AXPY(ctr, m.models[0], gain*errv, u)
		return
	}
	// Assignment census: bookkeeping only, so it recomputes the argmax with
	// a nil counter rather than disturbing the charged op counts.
	m.assignN[hdc.Argmax(nil, m.sims)]++
	switch m.cfg.UpdateRule {
	case UpdateWeighted:
		for i := range m.models {
			hdc.AXPY(ctr, m.models[i], gain*errv*m.conf[i], u)
		}
	case UpdateHardMax:
		l := hdc.Argmax(ctr, m.conf)
		hdc.AXPY(ctr, m.models[l], gain*errv, u)
	}
	// Cluster update (Eq. 8): pull the most-similar center toward the
	// sample, damped by (1−δ_l) so dominant patterns cannot saturate it.
	// Naive binarization has no updatable cluster state.
	if m.cfg.ClusterMode != ClusterNaiveBinary {
		l := hdc.Argmax(ctr, m.sims)
		hdc.AXPY(ctr, m.clusters[l], 1-m.sims[l], e.s)
	}
}

// trainOne replays one cached sample through the training pipeline —
// unpack, predict-before-update, Eq. 7/8 update — and returns the squared
// prequential error. It is the shared inner step of the sequential epoch
// and the per-shard worker passes of FitParallel.
func (m *Model) trainOne(cache *trainCache, idx int, scratchS, scratchRaw hdc.Vector) float64 {
	e := encoded{packed: cache.packed[idx], s: scratchS}
	hdc.UnpackInto(scratchS, cache.packed[idx])
	if cache.raw != nil {
		for j, v := range cache.raw[idx] {
			scratchRaw[j] = float64(v)
		}
		e.raw = scratchRaw
	}
	yhat := m.predictTraining(m.TrainCounter, e)
	d := cache.y[idx] - yhat
	m.update(m.TrainCounter, e, cache.y[idx], yhat)
	return d * d
}

// epoch runs one training pass in a shuffled order and returns the
// prequential MSE.
func (m *Model) epoch(cache *trainCache, scratchS, scratchRaw hdc.Vector) float64 {
	n := len(cache.packed)
	order := m.rng.Perm(n)
	var sqErr float64
	for _, idx := range order {
		sqErr += m.trainOne(cache, idx, scratchS, scratchRaw)
	}
	m.refreshBinaryShadows(m.TrainCounter)
	m.calibrate(cache, scratchS, scratchRaw)
	return sqErr / float64(n)
}

// calibrate refits the (a, b) output correction of binary-model modes by
// least squares of the training targets on the uncalibrated deployment
// predictions. It uses at most calibSamples samples per epoch.
const calibSamples = 512

func (m *Model) calibrate(cache *trainCache, scratchS, scratchRaw hdc.Vector) {
	if !m.cfg.PredictMode.UsesBinaryModel() {
		return
	}
	n := len(cache.packed)
	step := 1
	if n > calibSamples {
		step = n / calibSamples
	}
	var sp, sy, spp, spy float64
	var cnt float64
	for idx := 0; idx < n; idx += step {
		e := encoded{packed: cache.packed[idx], s: scratchS}
		hdc.UnpackInto(scratchS, cache.packed[idx])
		if cache.raw != nil {
			for j, v := range cache.raw[idx] {
				scratchRaw[j] = float64(v)
			}
			e.raw = scratchRaw
		}
		p := m.predictWith(m.TrainCounter, e, m.modelDot)
		y := cache.y[idx]
		sp += p
		sy += y
		spp += p * p
		spy += p * y
		cnt++
	}
	varP := spp/cnt - (sp/cnt)*(sp/cnt)
	if varP < 1e-12 {
		m.calibA, m.calibB = 1, sy/cnt
		return
	}
	m.calibA = (spy/cnt - sp/cnt*sy/cnt) / varP
	m.calibB = sy/cnt - m.calibA*sp/cnt
}

// Fit trains the model on train with iterative passes until the
// convergence criterion or the epoch cap is reached.
func (m *Model) Fit(train *dataset.Dataset) (*TrainResult, error) {
	return m.fit(train, nil, nil)
}

// FitWithValidation trains like Fit but monitors convergence on the MSE of
// the supplied validation set instead of the prequential training MSE.
func (m *Model) FitWithValidation(train, val *dataset.Dataset) (*TrainResult, error) {
	if err := val.Validate(); err != nil {
		return nil, fmt.Errorf("core: validation set: %w", err)
	}
	return m.fit(train, val, nil)
}

// FitCallback trains like Fit, invoking cb after every epoch with the epoch
// index (1-based) and the monitored MSE. Returning false stops training
// early; the run is then reported as not converged.
func (m *Model) FitCallback(train *dataset.Dataset, cb func(epoch int, mse float64) bool) (*TrainResult, error) {
	return m.fit(train, nil, cb)
}

func (m *Model) fit(train, val *dataset.Dataset, cb func(int, float64) bool) (*TrainResult, error) {
	cache, err := m.prepare(train)
	if err != nil {
		return nil, err
	}
	return m.fitCache(cache, val, cb)
}

// fitCache is the iterative-training loop over an already-encoded cache;
// fit and the single-worker path of FitParallel share it so both run the
// identical sequential algorithm.
func (m *Model) fitCache(cache *trainCache, val *dataset.Dataset, cb func(int, float64) bool) (*TrainResult, error) {
	scratchS := hdc.NewVector(m.dim)
	var scratchRaw hdc.Vector
	if cache.raw != nil {
		scratchRaw = hdc.NewVector(m.dim)
	}
	res := &TrainResult{}
	prev := math.Inf(1)
	streak := 0
	for ep := 1; ep <= m.cfg.Epochs; ep++ {
		mse := m.epoch(cache, scratchS, scratchRaw)
		m.trained = true
		if val != nil {
			vm, err := m.evalMSE(val)
			if err != nil {
				return nil, err
			}
			mse = vm
		}
		res.Epochs = ep
		res.History = append(res.History, mse)
		res.FinalMSE = mse
		if cb != nil && !cb(ep, mse) {
			return res, nil
		}
		// Convergence: relative improvement below Tol for Patience
		// consecutive epochs ("minor changes during a few consecutive
		// iterations").
		if prev > 0 && (prev-mse)/math.Max(prev, 1e-12) < m.cfg.Tol {
			streak++
			if streak >= m.cfg.Patience {
				res.Converged = true
				return res, nil
			}
		} else {
			streak = 0
		}
		prev = mse
	}
	return res, nil
}

// evalMSE computes the model's MSE on a dataset using the configured
// prediction pipeline (without charging the inference counter, so training
// instrumentation stays clean).
func (m *Model) evalMSE(d *dataset.Dataset) (float64, error) {
	saved := m.InferCounter
	m.InferCounter = nil
	defer func() { m.InferCounter = saved }()
	pred, err := m.PredictBatch(d.X)
	if err != nil {
		return 0, err
	}
	return dataset.MSE(pred, d.Y)
}

// Evaluate returns the model's MSE on a dataset; a convenience wrapper used
// by experiments and examples.
func (m *Model) Evaluate(d *dataset.Dataset) (float64, error) {
	if !m.trained {
		return 0, ErrNotTrained
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	return m.evalMSE(d)
}
