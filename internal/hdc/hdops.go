package hdc

import "fmt"

// Bind returns the elementwise product a⊙b, the classic HD binding
// operator: for bipolar hypervectors the result is dissimilar to both
// operands, and binding with the same vector twice is the identity
// (a⊙b)⊙b = a. The ID-level encoder uses binding to attach feature
// positions to value levels.
func Bind(ctr *Counter, a, b Vector) Vector {
	if len(a) != len(b) {
		panic(fmt.Sprintf("hdc: Bind dimension mismatch %d != %d", len(a), len(b)))
	}
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	d := uint64(len(a))
	ctr.Add(OpFloatMul, d)
	ctr.Add(OpMemRead, 2*d)
	ctr.Add(OpMemWrite, d)
	return out
}

// BindBinary is Bind on bit-packed bipolar hypervectors: the product of ±1
// components is XNOR of the sign bits, i.e. ^(a XOR b).
func BindBinary(ctr *Counter, a, b *Binary) *Binary {
	if a.Dim != b.Dim {
		panic(fmt.Sprintf("hdc: BindBinary dimension mismatch %d != %d", a.Dim, b.Dim))
	}
	out := NewBinary(a.Dim)
	for i, w := range a.Words {
		out.Words[i] = ^(w ^ b.Words[i])
	}
	out.maskTail()
	nw := uint64(len(a.Words))
	ctr.Add(OpXor, 2*nw)
	ctr.Add(OpMemRead, 2*nw)
	ctr.Add(OpMemWrite, nw)
	return out
}

// Permute returns a copy of v cyclically rotated by k positions (component
// i of the result is v[(i−k) mod D]). Permutation is the HD sequencing
// operator: it preserves all pairwise similarities while producing a vector
// nearly orthogonal to the original, encoding order in n-gram and
// time-series representations.
func Permute(ctr *Counter, v Vector, k int) Vector {
	d := len(v)
	if d == 0 {
		return Vector{}
	}
	k = ((k % d) + d) % d
	out := make(Vector, d)
	copy(out[k:], v[:d-k])
	copy(out[:k], v[d-k:])
	ctr.Add(OpMemRead, uint64(d))
	ctr.Add(OpMemWrite, uint64(d))
	return out
}

// Bundle returns the elementwise sum of the given hypervectors, the HD
// superposition operator: the result is similar to each operand, which is
// how a single hypervector memorizes a set (§2.3's capacity analysis
// quantifies how many operands fit).
func Bundle(ctr *Counter, vs ...Vector) Vector {
	if len(vs) == 0 {
		return Vector{}
	}
	out := make(Vector, len(vs[0]))
	for _, v := range vs {
		if len(v) != len(out) {
			panic(fmt.Sprintf("hdc: Bundle dimension mismatch %d != %d", len(v), len(out)))
		}
		for i, x := range v {
			out[i] += x
		}
	}
	d := uint64(len(out))
	n := uint64(len(vs))
	ctr.Add(OpFloatAdd, n*d)
	ctr.Add(OpMemRead, n*d)
	ctr.Add(OpMemWrite, d)
	return out
}
