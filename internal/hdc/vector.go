package hdc

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned or wrapped when two hypervectors of
// different dimensionality are combined.
var ErrDimensionMismatch = errors.New("hdc: dimension mismatch")

// Vector is a dense hypervector with float64 components. It is used for
// integer/full-precision models (the paper's "integer" hypervectors carry
// accumulated magnitudes; float64 subsumes them without overflow concerns)
// and for the raw, pre-quantization output of the nonlinear encoder.
type Vector []float64

// NewVector returns a zero hypervector of dimension d.
func NewVector(d int) Vector { return make(Vector, d) }

// Dim reports the dimensionality of the hypervector.
func (v Vector) Dim() int { return len(v) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Zero resets all components to 0 in place.
//
//lint:nocount scratch (re)initialization helper; the counted kernels charge their own memory writes
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Dot returns the dot product v·w, counting one float multiply and one float
// add per component on ctr.
func Dot(ctr *Counter, v, w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("hdc: Dot dimension mismatch %d != %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	d := uint64(len(v))
	ctr.Add(OpFloatMul, d)
	ctr.Add(OpFloatAdd, d)
	ctr.Add(OpMemRead, 2*d)
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(ctr *Counter, v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	d := uint64(len(v))
	ctr.Add(OpFloatMul, d)
	ctr.Add(OpFloatAdd, d)
	ctr.Add(OpFloatDiv, 1) // sqrt
	ctr.Add(OpMemRead, d)
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity v·w / (‖v‖‖w‖). If either vector has
// zero norm the similarity is defined as 0.
func Cosine(ctr *Counter, v, w Vector) float64 {
	dot := Dot(ctr, v, w)
	nv := Norm(ctr, v)
	nw := Norm(ctr, w)
	ctr.Add(OpFloatMul, 1)
	ctr.Add(OpFloatDiv, 1)
	//lint:ignore floatcmp exact zero-norm guard before division (zero-norm similarity is defined as 0)
	if nv == 0 || nw == 0 {
		return 0
	}
	return dot / (nv * nw)
}

// AXPY performs v ← v + a*w in place (the model-update kernel of Eq. 2/7).
func AXPY(ctr *Counter, v Vector, a float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("hdc: AXPY dimension mismatch %d != %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
	d := uint64(len(v))
	ctr.Add(OpFloatMul, d)
	ctr.Add(OpFloatAdd, d)
	ctr.Add(OpMemRead, 2*d)
	ctr.Add(OpMemWrite, d)
}

// Scale performs v ← a*v in place.
func Scale(ctr *Counter, v Vector, a float64) {
	for i := range v {
		v[i] *= a
	}
	d := uint64(len(v))
	ctr.Add(OpFloatMul, d)
	ctr.Add(OpMemRead, d)
	ctr.Add(OpMemWrite, d)
}

// Add performs v ← v + w in place.
func Add(ctr *Counter, v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("hdc: Add dimension mismatch %d != %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += w[i]
	}
	d := uint64(len(v))
	ctr.Add(OpFloatAdd, d)
	ctr.Add(OpMemRead, 2*d)
	ctr.Add(OpMemWrite, d)
}

// L1Norm returns Σ|v_i|, used to derive the per-model scale factor when a
// model hypervector is binarized (QuantHD-style magnitude preservation).
func L1Norm(ctr *Counter, v Vector) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	d := uint64(len(v))
	ctr.Add(OpFloatAdd, d)
	ctr.Add(OpCmp, d)
	ctr.Add(OpMemRead, d)
	return s
}

// Sign returns the bipolar sign vector of v: +1 where v_i >= 0, else -1.
func Sign(ctr *Counter, v Vector) Vector {
	w := make(Vector, len(v))
	for i, x := range v {
		if x >= 0 {
			w[i] = 1
		} else {
			w[i] = -1
		}
	}
	d := uint64(len(v))
	ctr.Add(OpCmp, d)
	ctr.Add(OpMemRead, d)
	ctr.Add(OpMemWrite, d)
	return w
}

// IsBipolar reports whether every component of v is exactly ±1.
//
//lint:nocount validation predicate for tests and serialization checks, off the counted data path
func (v Vector) IsBipolar() bool {
	for _, x := range v {
		//lint:ignore floatcmp bipolarity is defined as exactly-±1 components (the encoder emits exact ±1)
		if x != 1 && x != -1 {
			return false
		}
	}
	return true
}

// CheckDims returns a wrapped ErrDimensionMismatch unless all vectors share
// dimension d.
//
//lint:nocount shape validation, no per-dimension data-path work is charged by the paper's accounting
func CheckDims(d int, vs ...Vector) error {
	for i, v := range vs {
		if len(v) != d {
			return fmt.Errorf("%w: vector %d has dim %d, want %d", ErrDimensionMismatch, i, len(v), d)
		}
	}
	return nil
}
