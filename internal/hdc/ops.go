package hdc

import (
	"fmt"
	"strings"
)

// Op identifies a primitive operation class counted by the instrumented
// kernels. The classes are chosen so that package hwmodel can assign each a
// per-operation energy and a per-cycle issue width on a hardware target.
type Op int

const (
	// OpIntAdd counts integer/fixed-point additions and subtractions.
	OpIntAdd Op = iota
	// OpIntMul counts integer/fixed-point multiplications.
	OpIntMul
	// OpFloatAdd counts floating-point additions and subtractions.
	OpFloatAdd
	// OpFloatMul counts floating-point multiplications.
	OpFloatMul
	// OpFloatDiv counts floating-point divisions and square roots.
	OpFloatDiv
	// OpPopcnt counts 64-bit popcount operations (one per machine word).
	OpPopcnt
	// OpXor counts 64-bit bitwise XOR/AND/OR operations.
	OpXor
	// OpCmp counts comparisons (thresholding, argmax steps).
	OpCmp
	// OpExp counts transcendental evaluations (exp, cos, sin).
	OpExp
	// OpMemRead counts 64-bit words read from memory.
	OpMemRead
	// OpMemWrite counts 64-bit words written to memory.
	OpMemWrite

	// NumOps is the number of operation classes.
	NumOps
)

var opNames = [NumOps]string{
	"int-add", "int-mul", "float-add", "float-mul", "float-div",
	"popcnt", "xor", "cmp", "exp", "mem-read", "mem-write",
}

// String returns the human-readable name of the operation class.
func (o Op) String() string {
	if o < 0 || o >= NumOps {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// Counter accumulates primitive-operation counts. The zero value is ready to
// use. A nil *Counter is valid everywhere and counts nothing, so hot kernels
// pay a single predictable branch when instrumentation is off.
type Counter struct {
	counts [NumOps]uint64
}

// Add records n occurrences of op. Add on a nil counter is a no-op.
func (c *Counter) Add(op Op, n uint64) {
	if c == nil {
		return
	}
	c.counts[op] += n
}

// Count reports the accumulated count for op. A nil counter reports zero.
func (c *Counter) Count(op Op) uint64 {
	if c == nil {
		return 0
	}
	return c.counts[op]
}

// Total reports the sum of all operation counts.
func (c *Counter) Total() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for _, n := range c.counts {
		t += n
	}
	return t
}

// Reset zeroes all counts.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.counts = [NumOps]uint64{}
}

// AddCounter merges the counts of other into c.
func (c *Counter) AddCounter(other *Counter) {
	if c == nil || other == nil {
		return
	}
	for i := range c.counts {
		c.counts[i] += other.counts[i]
	}
}

// Snapshot returns a copy of the current counts indexed by Op.
func (c *Counter) Snapshot() [NumOps]uint64 {
	if c == nil {
		return [NumOps]uint64{}
	}
	return c.counts
}

// String renders the non-zero counts, for debugging and reports.
func (c *Counter) String() string {
	if c == nil {
		return "hdc.Counter(nil)"
	}
	var b strings.Builder
	b.WriteString("hdc.Counter{")
	first := true
	for op, n := range c.counts {
		if n == 0 {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %d", Op(op), n)
		first = false
	}
	b.WriteString("}")
	return b.String()
}
