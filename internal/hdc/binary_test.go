package hdc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, d := range []int{1, 63, 64, 65, 100, 1000} {
		v := RandomBipolar(rng, d)
		b := Pack(nil, v)
		u := Unpack(b)
		for i := range v {
			if u[i] != v[i] {
				t.Fatalf("d=%d: round trip differs at %d: %v vs %v", d, i, u[i], v[i])
			}
		}
	}
}

func TestPackUnpackRoundTripProperty(t *testing.T) {
	f := func(seed int64, dRaw uint16) bool {
		d := int(dRaw)%500 + 1
		r := rand.New(rand.NewSource(seed))
		v := RandomBipolar(r, d)
		u := Unpack(Pack(nil, v))
		for i := range v {
			if u[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPackThresholdsAtZero(t *testing.T) {
	b := Pack(nil, Vector{-1, 0, 0.5, -0.5})
	want := []bool{false, true, true, false}
	for i, w := range want {
		if b.Bit(i) != w {
			t.Fatalf("bit %d = %v, want %v", i, b.Bit(i), w)
		}
	}
}

func TestHammingIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const d = 777
	a := RandomBipolarBinary(rng, d)
	b := RandomBipolarBinary(rng, d)
	if h := Hamming(nil, a, a); h != 0 {
		t.Fatalf("Hamming(a,a) = %d, want 0", h)
	}
	// Symmetry.
	if Hamming(nil, a, b) != Hamming(nil, b, a) {
		t.Fatal("Hamming not symmetric")
	}
	// Range.
	if h := Hamming(nil, a, b); h < 0 || h > d {
		t.Fatalf("Hamming out of range: %d", h)
	}
}

func TestDotHammingIdentityProperty(t *testing.T) {
	// dot(a,b) on the unpacked bipolar vectors must equal D − 2·hamming.
	f := func(seed int64, dRaw uint16) bool {
		d := int(dRaw)%300 + 1
		r := rand.New(rand.NewSource(seed))
		a := RandomBipolarBinary(r, d)
		b := RandomBipolarBinary(r, d)
		dense := Dot(nil, Unpack(a), Unpack(b))
		return int(dense) == DotBinary(nil, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingSimilarityMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const d = 512
	a := RandomBipolarBinary(rng, d)
	b := RandomBipolarBinary(rng, d)
	sim := HammingSimilarity(nil, a, b)
	dot := float64(DotBinary(nil, a, b)) / d
	if !almostEqual(sim, dot, 1e-12) {
		t.Fatalf("HammingSimilarity = %v, dot/D = %v", sim, dot)
	}
}

func TestDotBinaryDenseMatchesDenseDot(t *testing.T) {
	f := func(seed int64, dRaw uint16) bool {
		d := int(dRaw)%300 + 1
		r := rand.New(rand.NewSource(seed))
		b := RandomBipolarBinary(r, d)
		v := RandomGaussian(r, d)
		return almostEqual(DotBinaryDense(nil, b, v), Dot(nil, Unpack(b), v), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSetBitComponent(t *testing.T) {
	b := NewBinary(130)
	b.SetBit(0, true)
	b.SetBit(64, true)
	b.SetBit(129, true)
	if !b.Bit(0) || !b.Bit(64) || !b.Bit(129) || b.Bit(1) {
		t.Fatal("SetBit/Bit inconsistent")
	}
	if b.Component(0) != 1 || b.Component(1) != -1 {
		t.Fatal("Component mapping wrong")
	}
	b.SetBit(64, false)
	if b.Bit(64) {
		t.Fatal("clearing bit failed")
	}
	if b.OnesCount() != 2 {
		t.Fatalf("OnesCount = %d, want 2", b.OnesCount())
	}
}

func TestPackInto(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	v := RandomGaussian(rng, 200)
	dst := NewBinary(200)
	// Pre-dirty dst to verify it's fully rewritten.
	for i := range dst.Words {
		dst.Words[i] = ^uint64(0)
	}
	PackInto(nil, dst, v)
	if !dst.Equal(Pack(nil, v)) {
		t.Fatal("PackInto differs from Pack")
	}
}

func TestFlipBits(t *testing.T) {
	b := NewBinary(128)
	b.FlipBits([]int{0, 5, 127})
	if b.OnesCount() != 3 {
		t.Fatalf("OnesCount after flips = %d, want 3", b.OnesCount())
	}
	b.FlipBits([]int{5})
	if b.OnesCount() != 2 || b.Bit(5) {
		t.Fatal("double flip did not restore bit")
	}
}

func TestBinaryCloneEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := RandomBipolarBinary(rng, 99)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.FlipBits([]int{7})
	if a.Equal(b) {
		t.Fatal("clone shares storage")
	}
	if a.Equal(NewBinary(98)) {
		t.Fatal("Equal ignored dimension")
	}
}

func TestRandomBipolarBinaryTailMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	b := RandomBipolarBinary(rng, 70) // 6 live bits in the second word
	last := b.Words[len(b.Words)-1]
	if last>>6 != 0 {
		t.Fatalf("tail bits beyond Dim are set: %x", last)
	}
}

func TestHammingCountsOps(t *testing.T) {
	var c Counter
	a := NewBinary(128)
	Hamming(&c, a, a)
	if c.Count(OpPopcnt) != 2 || c.Count(OpXor) != 2 {
		t.Fatalf("expected 2 popcnt/xor for 128 dims, got %v", &c)
	}
}
