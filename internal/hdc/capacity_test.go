package hdc

import (
	"math"
	"math/rand"
	"testing"
)

func TestFalsePositiveRatePaperExample(t *testing.T) {
	// Paper §2.3: D=100,000, T=0.5, P=10,000 → ≈5.7% error.
	got := FalsePositiveRate(100000, 10000, 0.5)
	if math.Abs(got-0.057) > 0.01 {
		t.Fatalf("FP rate = %v, paper reports ≈0.057", got)
	}
}

func TestFalsePositiveRateMonotoneInP(t *testing.T) {
	prev := -1.0
	for _, p := range []int{100, 1000, 10000, 100000} {
		fp := FalsePositiveRate(100000, p, 0.5)
		if fp < prev {
			t.Fatalf("FP rate should grow with P: P=%d gives %v < %v", p, fp, prev)
		}
		prev = fp
	}
}

func TestFalsePositiveRateMonotoneInD(t *testing.T) {
	prev := 2.0
	for _, d := range []int{1000, 10000, 100000} {
		fp := FalsePositiveRate(d, 1000, 0.5)
		if fp > prev {
			t.Fatalf("FP rate should shrink with D: D=%d gives %v > %v", d, fp, prev)
		}
		prev = fp
	}
}

func TestFalsePositiveRateEdgeCases(t *testing.T) {
	if FalsePositiveRate(0, 10, 0.5) != 0 || FalsePositiveRate(100, 0, 0.5) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestCapacityLimitConsistent(t *testing.T) {
	const d, tThresh, maxFP = 10000, 0.5, 0.05
	p := CapacityLimit(d, tThresh, maxFP)
	if p <= 0 {
		t.Fatal("CapacityLimit returned non-positive capacity")
	}
	if fp := FalsePositiveRate(d, p, tThresh); fp > maxFP {
		t.Fatalf("FP at capacity = %v exceeds %v", fp, maxFP)
	}
	if fp := FalsePositiveRate(d, p+1, tThresh); fp <= maxFP {
		t.Fatalf("capacity not maximal: P+1 still has FP %v", fp)
	}
}

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const d, p, trials, thr = 2000, 200, 4000, 0.5
	analytic := FalsePositiveRate(d, p, thr)
	empirical := MonteCarloFalsePositive(rng, d, p, trials, thr)
	// Binomial std error ≈ √(f(1−f)/trials); allow 5 sigma plus model slack.
	tol := 5*math.Sqrt(analytic*(1-analytic)/trials) + 0.01
	if math.Abs(analytic-empirical) > tol {
		t.Fatalf("analytic %v vs empirical %v (tol %v)", analytic, empirical, tol)
	}
}

func TestGaussianTail(t *testing.T) {
	if got := gaussianTail(0); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("tail(0) = %v, want 0.5", got)
	}
	if got := gaussianTail(1.6449); math.Abs(got-0.05) > 1e-3 {
		t.Fatalf("tail(1.645) = %v, want ≈0.05", got)
	}
}
