package hdc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBindSelfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandomBipolar(rng, 1000)
	b := RandomBipolar(rng, 1000)
	ab := Bind(nil, a, b)
	back := Bind(nil, ab, b)
	for i := range a {
		if back[i] != a[i] {
			t.Fatal("(a⊙b)⊙b != a")
		}
	}
}

func TestBindDissimilarToOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandomBipolar(rng, 10000)
	b := RandomBipolar(rng, 10000)
	ab := Bind(nil, a, b)
	if c := Cosine(nil, ab, a); math.Abs(c) > 0.06 {
		t.Fatalf("bound vector similar to operand: %v", c)
	}
}

func TestBindPreservesSimilarityProperty(t *testing.T) {
	// δ(a⊙c, b⊙c) = δ(a, b) for bipolar c.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := RandomBipolar(r, 256)
		b := RandomBipolar(r, 256)
		c := RandomBipolar(r, 256)
		return almostEqual(Cosine(nil, Bind(nil, a, c), Bind(nil, b, c)), Cosine(nil, a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBindBinaryMatchesDense(t *testing.T) {
	f := func(seed int64, dRaw uint16) bool {
		d := int(dRaw)%300 + 1
		r := rand.New(rand.NewSource(seed))
		a := RandomBipolarBinary(r, d)
		b := RandomBipolarBinary(r, d)
		packed := BindBinary(nil, a, b)
		dense := Bind(nil, Unpack(a), Unpack(b))
		got := Unpack(packed)
		for i := range dense {
			if got[i] != dense[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBindBinaryTailMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandomBipolarBinary(rng, 70)
	b := RandomBipolarBinary(rng, 70)
	out := BindBinary(nil, a, b)
	if out.Words[len(out.Words)-1]>>6 != 0 {
		t.Fatal("tail bits set after XNOR")
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := RandomGaussian(rng, 101)
	w := Permute(nil, Permute(nil, v, 13), -13)
	for i := range v {
		if w[i] != v[i] {
			t.Fatal("Permute(+k) then Permute(−k) is not identity")
		}
	}
}

func TestPermuteShiftsComponents(t *testing.T) {
	v := Vector{1, 2, 3, 4}
	w := Permute(nil, v, 1)
	want := Vector{4, 1, 2, 3}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("Permute = %v, want %v", w, want)
		}
	}
	// Full rotation is identity; zero-length input is safe.
	u := Permute(nil, v, 4)
	for i := range v {
		if u[i] != v[i] {
			t.Fatal("Permute by D should be identity")
		}
	}
	if len(Permute(nil, Vector{}, 3)) != 0 {
		t.Fatal("empty permute should stay empty")
	}
}

func TestPermuteNearlyOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := RandomBipolar(rng, 10000)
	if c := Cosine(nil, v, Permute(nil, v, 1)); math.Abs(c) > 0.06 {
		t.Fatalf("permuted vector similar to original: %v", c)
	}
}

func TestPermutePreservesSimilarityProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(kRaw)
		a := RandomBipolar(r, 128)
		b := RandomBipolar(r, 128)
		return almostEqual(Cosine(nil, Permute(nil, a, k), Permute(nil, b, k)), Cosine(nil, a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBundleSimilarToOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vs := make([]Vector, 5)
	for i := range vs {
		vs[i] = RandomBipolar(rng, 10000)
	}
	bundle := Bundle(nil, vs...)
	for i, v := range vs {
		if c := Cosine(nil, bundle, v); c < 0.3 {
			t.Fatalf("bundle not similar to operand %d: %v", i, c)
		}
	}
	other := RandomBipolar(rng, 10000)
	if c := Cosine(nil, bundle, other); math.Abs(c) > 0.06 {
		t.Fatalf("bundle similar to unrelated vector: %v", c)
	}
}

func TestBundleEdgeCases(t *testing.T) {
	if len(Bundle(nil)) != 0 {
		t.Fatal("empty bundle should be empty")
	}
	v := Vector{1, -2}
	out := Bundle(nil, v)
	if out[0] != 1 || out[1] != -2 {
		t.Fatal("single-operand bundle should copy")
	}
	out[0] = 99
	if v[0] == 99 {
		t.Fatal("bundle must not alias its input")
	}
}

func TestBindBundlePanicOnMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"bind":        func() { Bind(nil, NewVector(2), NewVector(3)) },
		"bind-binary": func() { BindBinary(nil, NewBinary(2), NewBinary(3)) },
		"bundle":      func() { Bundle(nil, NewVector(2), NewVector(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic on dimension mismatch", name)
				}
			}()
			fn()
		}()
	}
}
