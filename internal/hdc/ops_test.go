package hdc

import (
	"strings"
	"testing"
)

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Add(OpIntAdd, 5)
	if c.Count(OpIntAdd) != 0 || c.Total() != 0 {
		t.Fatal("nil counter should count nothing")
	}
	c.Reset()
	c.AddCounter(&Counter{})
	if got := c.String(); got != "hdc.Counter(nil)" {
		t.Fatalf("nil String = %q", got)
	}
	if c.Snapshot() != [NumOps]uint64{} {
		t.Fatal("nil Snapshot should be zero")
	}
}

func TestCounterAddCount(t *testing.T) {
	var c Counter
	c.Add(OpFloatMul, 3)
	c.Add(OpFloatMul, 4)
	c.Add(OpPopcnt, 1)
	if c.Count(OpFloatMul) != 7 {
		t.Fatalf("Count = %d, want 7", c.Count(OpFloatMul))
	}
	if c.Total() != 8 {
		t.Fatalf("Total = %d, want 8", c.Total())
	}
}

func TestCounterReset(t *testing.T) {
	var c Counter
	c.Add(OpExp, 9)
	c.Reset()
	if c.Total() != 0 {
		t.Fatal("Reset did not zero counts")
	}
}

func TestCounterMerge(t *testing.T) {
	var a, b Counter
	a.Add(OpIntAdd, 1)
	b.Add(OpIntAdd, 2)
	b.Add(OpCmp, 3)
	a.AddCounter(&b)
	if a.Count(OpIntAdd) != 3 || a.Count(OpCmp) != 3 {
		t.Fatalf("merge wrong: %v", &a)
	}
}

func TestCounterString(t *testing.T) {
	var c Counter
	c.Add(OpPopcnt, 2)
	s := c.String()
	if !strings.Contains(s, "popcnt: 2") {
		t.Fatalf("String = %q", s)
	}
}

func TestOpString(t *testing.T) {
	if OpPopcnt.String() != "popcnt" {
		t.Fatalf("OpPopcnt = %q", OpPopcnt)
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Fatal("out-of-range Op should render its number")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	var c Counter
	c.Add(OpXor, 1)
	snap := c.Snapshot()
	c.Add(OpXor, 1)
	if snap[OpXor] != 1 {
		t.Fatal("Snapshot not a copy")
	}
}
