// Package hdc provides the hypervector math substrate for hyperdimensional
// computing: dense float hypervectors, bit-packed binary hypervectors, the
// similarity kernels used by RegHD (dot product, cosine similarity, Hamming
// distance), and an operation counter that records how many primitive
// arithmetic operations each kernel performs.
//
// The operation counts are consumed by package hwmodel to estimate latency
// and energy on FPGA-like and embedded-CPU-like targets, standing in for the
// paper's Kintex-7 / Raspberry Pi measurements.
//
// # Conventions
//
// A "bipolar" hypervector has components in {-1, +1} and is stored either as
// a dense []float64 or bit-packed (bit 1 ⇔ component +1). For bit-packed
// vectors of dimension D the identity
//
//	dot(a, b) = D - 2*hamming(a, b)
//
// converts Hamming distance into the bipolar dot product, which is the basis
// of all quantized similarity computation in RegHD.
package hdc
