package hdc

import (
	"fmt"
	"math"
	"math/bits"
)

// Binary is a bit-packed bipolar hypervector of dimension Dim. Bit j of
// Words[j/64] set means component j is +1; clear means −1. Bits at positions
// >= Dim in the last word are always zero (callers rely on this for popcount
// identities).
type Binary struct {
	Words []uint64
	Dim   int
}

// NewBinary returns an all-clear (all −1) binary hypervector of dimension d.
func NewBinary(d int) *Binary {
	if d < 0 {
		panic("hdc: negative dimension")
	}
	return &Binary{Words: make([]uint64, (d+63)/64), Dim: d}
}

// Clone returns an independent copy of b.
func (b *Binary) Clone() *Binary {
	w := make([]uint64, len(b.Words))
	copy(w, b.Words)
	return &Binary{Words: w, Dim: b.Dim}
}

// Bit reports whether component i is +1.
func (b *Binary) Bit(i int) bool {
	return b.Words[i/64]&(1<<uint(i%64)) != 0
}

// SetBit sets component i to +1 (on=true) or −1 (on=false).
func (b *Binary) SetBit(i int, on bool) {
	if on {
		b.Words[i/64] |= 1 << uint(i%64)
	} else {
		b.Words[i/64] &^= 1 << uint(i%64)
	}
}

// Component returns component i as ±1.
func (b *Binary) Component(i int) float64 {
	if b.Bit(i) {
		return 1
	}
	return -1
}

// maskTail zeroes any bits beyond Dim in the last word.
func (b *Binary) maskTail() {
	if r := b.Dim % 64; r != 0 && len(b.Words) > 0 {
		b.Words[len(b.Words)-1] &= (1 << uint(r)) - 1
	}
}

// Pack quantizes a dense vector to a binary hypervector: bit set where the
// component is >= 0. This is the single-comparison quantization step of the
// paper's Section 3.1.
func Pack(ctr *Counter, v Vector) *Binary {
	b := NewBinary(len(v))
	for i, x := range v {
		if x >= 0 {
			b.Words[i/64] |= 1 << uint(i%64)
		}
	}
	d := uint64(len(v))
	ctr.Add(OpCmp, d)
	ctr.Add(OpMemRead, d)
	ctr.Add(OpMemWrite, uint64(len(b.Words)))
	return b
}

// PackInto is like Pack but reuses dst, which must have dimension len(v).
func PackInto(ctr *Counter, dst *Binary, v Vector) {
	if dst.Dim != len(v) {
		panic(fmt.Sprintf("hdc: PackInto dimension mismatch %d != %d", dst.Dim, len(v)))
	}
	for i := range dst.Words {
		dst.Words[i] = 0
	}
	for i, x := range v {
		if x >= 0 {
			dst.Words[i/64] |= 1 << uint(i%64)
		}
	}
	d := uint64(len(v))
	ctr.Add(OpCmp, d)
	ctr.Add(OpMemRead, d)
	ctr.Add(OpMemWrite, uint64(len(dst.Words)))
}

// Unpack expands b into a dense bipolar vector with components ±1.
func Unpack(b *Binary) Vector {
	v := make(Vector, b.Dim)
	UnpackInto(v, b)
	return v
}

// UnpackInto expands b into dst, which must have length b.Dim. It lets hot
// loops reuse a scratch vector instead of allocating per sample.
//
//lint:nocount software training-cache expansion: the canonical accounting charges the encode that produced S once, so re-materializing the cached S must not move the hwmodel training costs
func UnpackInto(dst Vector, b *Binary) {
	if len(dst) != b.Dim {
		panic(fmt.Sprintf("hdc: UnpackInto dimension mismatch %d != %d", len(dst), b.Dim))
	}
	for i := range dst {
		if b.Words[i/64]&(1<<uint(i%64)) != 0 {
			dst[i] = 1
		} else {
			dst[i] = -1
		}
	}
}

// Hamming returns the Hamming distance between a and b: the number of
// positions at which their bipolar components differ. It is the similarity
// kernel of the paper's quantized clustering (Section 3.1).
func Hamming(ctr *Counter, a, b *Binary) int {
	if a.Dim != b.Dim {
		panic(fmt.Sprintf("hdc: Hamming dimension mismatch %d != %d", a.Dim, b.Dim))
	}
	var h int
	for i, w := range a.Words {
		h += bits.OnesCount64(w ^ b.Words[i])
	}
	nw := uint64(len(a.Words))
	ctr.Add(OpXor, nw)
	ctr.Add(OpPopcnt, nw)
	ctr.Add(OpIntAdd, nw)
	ctr.Add(OpMemRead, 2*nw)
	return h
}

// DotBinary returns the bipolar dot product of two bit-packed hypervectors
// via the identity dot = D − 2·hamming.
func DotBinary(ctr *Counter, a, b *Binary) int {
	h := Hamming(ctr, a, b)
	ctr.Add(OpIntAdd, 1)
	return a.Dim - 2*h
}

// HammingSimilarity maps Hamming distance to the normalized similarity in
// [−1, 1] that plays the role of cosine similarity for binary vectors:
// sim = 1 − 2·hamming/D = dot/D.
func HammingSimilarity(ctr *Counter, a, b *Binary) float64 {
	h := Hamming(ctr, a, b)
	ctr.Add(OpFloatDiv, 1)
	ctr.Add(OpFloatAdd, 1)
	return 1 - 2*float64(h)/float64(a.Dim)
}

// DotBinaryDense returns Σ_i b_i · v_i where b is interpreted as a bipolar
// ±1 vector. This is the "binary query – integer model" / "integer query –
// binary model" kernel (Section 3.2): multiply-free, only additions and
// subtractions of the dense components. The implementation is branch-free:
// a clear bit flips the component's IEEE-754 sign bit instead of branching,
// which avoids mispredictions on the random sign patterns hypervectors
// carry.
func DotBinaryDense(ctr *Counter, b *Binary, v Vector) float64 {
	if b.Dim != len(v) {
		panic(fmt.Sprintf("hdc: DotBinaryDense dimension mismatch %d != %d", b.Dim, len(v)))
	}
	var s float64
	for w, word := range b.Words {
		base := w * 64
		end := base + 64
		if end > len(v) {
			end = len(v)
		}
		for j := base; j < end; j++ {
			// (^word>>k & 1) << 63 is the sign-flip mask: 0 for a set bit
			// (+v), the IEEE sign bit for a clear bit (−v).
			flip := ((^word >> uint(j-base)) & 1) << 63
			s += math.Float64frombits(math.Float64bits(v[j]) ^ flip)
		}
	}
	d := uint64(len(v))
	ctr.Add(OpFloatAdd, d)
	ctr.Add(OpMemRead, d+uint64(len(b.Words)))
	return s
}

// FlipBits flips the bits of b at the given component indices, used by fault
// injection experiments to model memory errors in a deployed binary model.
//
//lint:nocount fault-injection harness for the robustness experiments; it models memory corruption, it is not an algorithm kernel
func (b *Binary) FlipBits(indices []int) {
	for _, i := range indices {
		b.Words[i/64] ^= 1 << uint(i%64)
	}
}

// OnesCount returns the number of +1 components.
//
//lint:nocount diagnostic bit count for tests and capacity analysis, off the counted data path
func (b *Binary) OnesCount() int {
	var n int
	for _, w := range b.Words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether a and b have the same dimension and components.
//
//lint:nocount exact-equality diagnostic for tests and serialization checks, off the counted data path
func (b *Binary) Equal(o *Binary) bool {
	if b.Dim != o.Dim {
		return false
	}
	for i, w := range b.Words {
		if w != o.Words[i] {
			return false
		}
	}
	return true
}
