package hdc

import "math"

// Softmax computes the softmax of xs scaled by the inverse temperature beta,
// writing the result into out (which must have len(xs)). It is the
// normalization block of the paper's Fig. 4: similarity values δ become
// confidences δ'. The computation is shifted by max(xs) for numerical
// stability; the shift does not change the result.
func Softmax(ctr *Counter, out, xs []float64, beta float64) {
	if len(out) != len(xs) {
		panic("hdc: Softmax length mismatch")
	}
	if len(xs) == 0 {
		return
	}
	maxV := xs[0]
	for _, x := range xs[1:] {
		if x > maxV {
			maxV = x
		}
	}
	var sum float64
	for i, x := range xs {
		e := math.Exp(beta * (x - maxV))
		out[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
	n := uint64(len(xs))
	ctr.Add(OpCmp, n)
	ctr.Add(OpExp, n)
	ctr.Add(OpFloatMul, 2*n+1)
	ctr.Add(OpFloatAdd, 2*n)
	ctr.Add(OpFloatDiv, 1)
}

// Argmax returns the index of the largest element of xs; −1 for empty input.
func Argmax(ctr *Counter, xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs[1:] {
		if x > xs[best] {
			best = i + 1
		}
	}
	ctr.Add(OpCmp, uint64(len(xs)-1))
	return best
}
