package hdc

import (
	"fmt"
	"math"
	"math/bits"
)

// This file is the serving-path kernel layer: the bit-packed sign-matrix
// projection and the fused k-way similarity kernels that replace the naive
// per-cluster loops on the hot prediction path.
//
// Two contracts bind every kernel here to its naive reference:
//
//  1. Bit-exact results. Each kernel performs the same floating-point
//     operations in the same per-accumulator order as the reference, so the
//     outputs are identical to the last bit — not merely close. A ±1 multiply
//     is an IEEE-754 sign flip, so replacing f*(±1) with a sign-selected
//     add/sub changes nothing in the result; fusing loops is legal as long as
//     every accumulator still sums in the reference order.
//
//  2. Identical op accounting. The Counter charges model the canonical
//     algorithm, not the software shortcut: a packed projection still charges
//     the float multiply-adds of the dense form, and a fused similarity
//     charges exactly k times the single-pair kernel. The hwmodel cost
//     estimates are an API contract, and they must not move when the software
//     gets faster. internal/hdc/fuzz_test.go enforces both contracts.

// SignMatrix is a bit-packed ±1 matrix of rows × dim entries, stored
// quad-interleaved for the projection kernel: rows are grouped four at a
// time, and each 64-bit word holds 16 consecutive columns of one quad as
// 4-bit nibbles (bit r of the nibble at column j is the sign of row
// 4q+r — set means +1, clear means −1). The layout lets ProjectAccum read
// the four sign bits an output element needs with one AND, turning four
// multiply-adds into a single table-indexed add. For the Eq. 1 encoder's
// projection the packed form is 64× smaller than the dense float64 matrix —
// n=32, D=4096 packs into 16 KiB and stays cache-resident, where the dense
// matrix streams 1 MiB per encode.
type SignMatrix struct {
	rows, dim    int
	quads        int // ceil(rows/4); trailing pad rows carry clear (−1) bits
	wordsPerQuad int // ceil(dim/16)
	words        []uint64
}

// PackSignsFlat packs a dense row-major rows×dim matrix whose entries are
// all exactly ±1 into a SignMatrix. The second return is false (with a nil
// matrix) when any entry is not ±1 — callers use it to detect whether a
// projection is sign-packable at all.
//
//lint:nocount one-time encoder construction: packs the projection matrix before any sample is served; the per-sample kernels charge the canonical projection ops
func PackSignsFlat(m []float64, rows, dim int) (*SignMatrix, bool) {
	if rows < 0 || dim < 0 || len(m) != rows*dim {
		return nil, false
	}
	sm := &SignMatrix{
		rows:         rows,
		dim:          dim,
		quads:        (rows + 3) / 4,
		wordsPerQuad: (dim + 15) / 16,
	}
	sm.words = make([]uint64, sm.quads*sm.wordsPerQuad)
	for r := 0; r < rows; r++ {
		row := m[r*dim : (r+1)*dim]
		base := (r / 4) * sm.wordsPerQuad
		bit := uint(r % 4)
		for j, v := range row {
			switch v {
			case 1:
				sm.words[base+j/16] |= 1 << (uint(j%16)*4 + bit)
			case -1:
				// clear bit; already zero
			default:
				return nil, false
			}
		}
	}
	return sm, true
}

// Rows returns the number of rows (input features for a projection).
func (sm *SignMatrix) Rows() int { return sm.rows }

// Dim returns the number of columns (hyperdimensional size D).
func (sm *SignMatrix) Dim() int { return sm.dim }

// Sign returns entry (r, j) as ±1.
func (sm *SignMatrix) Sign(r, j int) float64 {
	word := sm.words[(r/4)*sm.wordsPerQuad+j/16]
	if word&(1<<(uint(j%16)*4+uint(r%4))) != 0 {
		return 1
	}
	return -1
}

// ProjectDense computes out[j] = Σ_k x[k]·m[k·dim+j] over a dense row-major
// projection matrix — the reference kernel ProjectAccum must match
// bit-for-bit. It zeroes out first.
//
// Rows are processed four at a time with the per-element chain
// ((f0·s0 + f1·s1) + f2·s2) + f3·s3, the register-blocked order both this
// kernel and the packed one accumulate in: the blocking quarters the
// read-modify-write traffic on out, and sharing one canonical order is what
// makes the packed kernel's table trick (which produces exactly that
// four-term chain) bit-exact rather than merely close. Assumes the compiler
// does not contract a·b+c into fused multiply-adds (true on amd64; Go only
// fuses via math.FMA there).
func ProjectDense(ctr *Counter, out, x, m []float64) {
	dim := len(out)
	if len(m) != len(x)*dim {
		panic(fmt.Sprintf("hdc: ProjectDense matrix is %d entries, want %d×%d", len(m), len(x), dim))
	}
	for j := range out {
		out[j] = 0
	}
	rows := len(x)
	for k := 0; k < rows; k += 4 {
		switch rows - k {
		case 1:
			f0 := x[k]
			r0 := m[k*dim : (k+1)*dim]
			for j := range out {
				out[j] += f0 * r0[j]
			}
		case 2:
			f0, f1 := x[k], x[k+1]
			r0 := m[k*dim : (k+1)*dim]
			r1 := m[(k+1)*dim : (k+2)*dim]
			for j := range out {
				out[j] += f0*r0[j] + f1*r1[j]
			}
		case 3:
			f0, f1, f2 := x[k], x[k+1], x[k+2]
			r0 := m[k*dim : (k+1)*dim]
			r1 := m[(k+1)*dim : (k+2)*dim]
			r2 := m[(k+2)*dim : (k+3)*dim]
			for j := range out {
				out[j] += (f0*r0[j] + f1*r1[j]) + f2*r2[j]
			}
		default:
			f0, f1, f2, f3 := x[k], x[k+1], x[k+2], x[k+3]
			r0 := m[k*dim : (k+1)*dim]
			r1 := m[(k+1)*dim : (k+2)*dim]
			r2 := m[(k+2)*dim : (k+3)*dim]
			r3 := m[(k+3)*dim : (k+4)*dim]
			for j := range out {
				out[j] += ((f0*r0[j] + f1*r1[j]) + f2*r2[j]) + f3*r3[j]
			}
		}
	}
	n := uint64(rows) * uint64(dim)
	ctr.Add(OpFloatMul, n)
	ctr.Add(OpFloatAdd, n)
	ctr.Add(OpMemRead, n)
}

// ProjectAccum computes out[j] = Σ_k (sign(k,j) ? +x[k] : −x[k]) — the
// bit-packed form of ProjectDense with zero float multiplies. For each quad
// of four rows it precomputes the 16 possible signed sums
// ((±x0 ±x1) ±x2) ±x3 into a table, then each output element costs one
// nibble extraction and a single add: the 16-column inner loop is fully
// unrolled with constant shift counts, and the four multiply-adds per
// element collapse into one table lookup. A ±1 multiply is an exact
// IEEE-754 sign selection (f·(+1) == f, f·(−1) == −f) and the table entries
// are built in the same four-term chain order ProjectDense accumulates in,
// so results are bit-for-bit identical. Pad rows beyond len(x) contribute
// −0.0 (clear sign bit, zero feature), the exact additive identity, so
// non-multiple-of-4 row counts stay bit-exact too.
//
// Op accounting is identical to ProjectDense by contract: the projection is
// still charged as dense float multiply-adds so the hwmodel cost estimates
// are unchanged (the hardware targets rematerialize the dense form; see
// docs/PERFORMANCE.md).
func (sm *SignMatrix) ProjectAccum(ctr *Counter, out, x []float64) {
	if len(x) != sm.rows {
		panic(fmt.Sprintf("hdc: ProjectAccum input has %d features, matrix has %d rows", len(x), sm.rows))
	}
	if len(out) != sm.dim {
		panic(fmt.Sprintf("hdc: ProjectAccum output has dim %d, matrix has %d", len(out), sm.dim))
	}
	for j := range out {
		out[j] = 0
	}
	dim, wpq := sm.dim, sm.wordsPerQuad
	for q := 0; q < sm.quads; q++ {
		var x0, x1, x2, x3 float64
		switch k := q * 4; sm.rows - k {
		case 1:
			x0 = x[k]
		case 2:
			x0, x1 = x[k], x[k+1]
		case 3:
			x0, x1, x2 = x[k], x[k+1], x[k+2]
		default:
			x0, x1, x2, x3 = x[k], x[k+1], x[k+2], x[k+3]
		}
		// t[s] is the quad's contribution for sign pattern s, accumulated in
		// the canonical chain order; −x is an exact negation, so every entry
		// equals the corresponding four-term multiply-add of ProjectDense.
		var t [16]float64
		for s := range t {
			v0, v1, v2, v3 := -x0, -x1, -x2, -x3
			if s&1 != 0 {
				v0 = x0
			}
			if s&2 != 0 {
				v1 = x1
			}
			if s&4 != 0 {
				v2 = x2
			}
			if s&8 != 0 {
				v3 = x3
			}
			t[s] = ((v0 + v1) + v2) + v3
		}
		words := sm.words[q*wpq : (q+1)*wpq]
		for w, word := range words {
			base := w * 16
			if dim-base >= 16 {
				o := out[base : base+16 : base+16]
				o[0] += t[word&15]
				o[1] += t[word>>4&15]
				o[2] += t[word>>8&15]
				o[3] += t[word>>12&15]
				o[4] += t[word>>16&15]
				o[5] += t[word>>20&15]
				o[6] += t[word>>24&15]
				o[7] += t[word>>28&15]
				o[8] += t[word>>32&15]
				o[9] += t[word>>36&15]
				o[10] += t[word>>40&15]
				o[11] += t[word>>44&15]
				o[12] += t[word>>48&15]
				o[13] += t[word>>52&15]
				o[14] += t[word>>56&15]
				o[15] += t[word>>60&15]
				continue
			}
			for j := base; j < dim; j++ {
				out[j] += t[word&15]
				word >>= 4
			}
		}
	}
	n := uint64(sm.rows) * uint64(sm.dim)
	ctr.Add(OpFloatMul, n)
	ctr.Add(OpFloatAdd, n)
	ctr.Add(OpMemRead, n)
}

// CosineK fills sims[i] = Cosine(q, cs[i]) for every cluster in one fused
// pass: the query norm is computed once instead of k times, and each
// cluster's dot product and norm accumulate in a single joint pass instead
// of two — roughly halving the memory traffic of the k-way similarity
// search. Every accumulator still sums in index order, so each sims[i] is
// bit-for-bit the value the naive per-cluster Cosine loop produces, and the
// op charges are exactly k times the single-pair Cosine kernel.
func CosineK(ctr *Counter, q Vector, cs []Vector, sims []float64) {
	if len(sims) < len(cs) {
		panic(fmt.Sprintf("hdc: CosineK sims has %d slots for %d clusters", len(sims), len(cs)))
	}
	var nq2 float64
	for _, v := range q {
		nq2 += v * v
	}
	nq := math.Sqrt(nq2)
	for i, c := range cs {
		if len(c) != len(q) {
			panic(fmt.Sprintf("hdc: CosineK dimension mismatch %d != %d", len(c), len(q)))
		}
		var dot, nc2 float64
		for j, v := range q {
			w := c[j]
			dot += v * w
			nc2 += w * w
		}
		nc := math.Sqrt(nc2)
		//lint:ignore floatcmp exact zero-norm guard before division (Cosine defines zero-norm similarity as 0)
		if nq == 0 || nc == 0 {
			sims[i] = 0
		} else {
			sims[i] = dot / (nq * nc)
		}
	}
	// Charge k× the Cosine reference: Dot + Norm(q) + Norm(c) + combine.
	d, k := uint64(len(q)), uint64(len(cs))
	ctr.Add(OpFloatMul, k*(3*d+1))
	ctr.Add(OpFloatAdd, k*3*d)
	ctr.Add(OpFloatDiv, 3*k)
	ctr.Add(OpMemRead, k*4*d)
}

// HammingSimilarityK fills sims[i] = HammingSimilarity(q, cs[i]) for every
// binary cluster in one fused call. The query words stay L1-resident across
// all k clusters. Integer reduction is order-independent, so results are
// exactly the naive loop's; op charges are k times the single-pair kernel.
//
// This is the fallback for clusters held as separate *Binary values (the
// live training model, whose clusters reallocate as they learn). The serving
// path builds a BinarySet slab at Snapshot time and uses its method instead:
// with per-cluster word slices the four XOR+POPCNT streams hit four
// unrelated allocations and the earlier manual 4-word unroll measured
// *slower* than the naive per-pair loop at D=4096 (0.84×, see
// docs/PERFORMANCE.md "Flat spots") — so this fallback keeps the plain
// per-cluster word loop the compiler handles best, and the blocking lives
// where the layout supports it.
func HammingSimilarityK(ctr *Counter, q *Binary, cs []*Binary, sims []float64) {
	if len(sims) < len(cs) {
		panic(fmt.Sprintf("hdc: HammingSimilarityK sims has %d slots for %d clusters", len(sims), len(cs)))
	}
	qw := q.Words
	for i, c := range cs {
		if c.Dim != q.Dim {
			panic(fmt.Sprintf("hdc: HammingSimilarityK dimension mismatch %d != %d", c.Dim, q.Dim))
		}
		cw := c.Words
		var h int
		for w, x := range qw {
			h += bits.OnesCount64(x ^ cw[w])
		}
		sims[i] = 1 - 2*float64(h)/float64(q.Dim)
	}
	chargeHammingK(ctr, uint64(len(q.Words)), uint64(len(cs)))
}

// chargeHammingK charges k× the HammingSimilarity reference (Hamming + the
// map to [−1,1]) over nw-word vectors — shared by the fallback and the
// BinarySet kernel so both stay charge-identical to k naive calls.
func chargeHammingK(ctr *Counter, nw, k uint64) {
	ctr.Add(OpXor, k*nw)
	ctr.Add(OpPopcnt, k*nw)
	ctr.Add(OpIntAdd, k*nw)
	ctr.Add(OpMemRead, k*2*nw)
	ctr.Add(OpFloatDiv, k)
	ctr.Add(OpFloatAdd, k)
}

// BinarySet is k equal-dimension bit-packed hypervectors flattened into one
// contiguous word slab, row-major: vector i occupies words[i*wordsPerVec :
// (i+1)*wordsPerVec]. The layout exists for the k-way Hamming search on the
// serving path: with all cluster words in a single allocation the kernel can
// block four clusters against each query word pair and keep every stream on
// the same hardware-prefetched cache lines, which is what makes the fused
// form actually beat k naive calls (the per-*Binary layout did not; see
// HammingSimilarityK). Snapshots build one at construction time; the set is
// immutable after NewBinarySet.
type BinarySet struct {
	k, dim, wordsPerVec int
	words               []uint64
}

// NewBinarySet flattens bs into a contiguous slab. All vectors must share
// one dimension. The input slices are copied; later mutation of bs does not
// affect the set.
//
//lint:nocount one-time snapshot-construction layout change: the per-query kernels still charge the canonical k-way Hamming ops
func NewBinarySet(bs []*Binary) *BinarySet {
	s := &BinarySet{k: len(bs)}
	if len(bs) == 0 {
		return s
	}
	s.dim = bs[0].Dim
	s.wordsPerVec = len(bs[0].Words)
	s.words = make([]uint64, s.k*s.wordsPerVec)
	for i, b := range bs {
		if b.Dim != s.dim {
			panic(fmt.Sprintf("hdc: NewBinarySet dimension mismatch %d != %d", b.Dim, s.dim))
		}
		copy(s.words[i*s.wordsPerVec:(i+1)*s.wordsPerVec], b.Words)
	}
	return s
}

// Len returns the number of vectors in the set.
func (s *BinarySet) Len() int { return s.k }

// Dim returns the shared dimension of the vectors.
func (s *BinarySet) Dim() int { return s.dim }

// HammingSimilarityK fills sims[i] = HammingSimilarity(q, set vector i) for
// every vector in the set — the slab-layout replacement for the free
// HammingSimilarityK on the snapshot serving path. Clusters are blocked four
// at a time against two query words per step: the four distance accumulators
// are independent (no XOR→POPCNT→ADD dependency chain stalls) and all four
// cluster streams walk consecutive slab rows, so the blocking pays instead
// of thrashing. Hamming distances are integer sums (order-independent) and
// the final map 1 − 2h/D is the same expression as the single-pair kernel,
// so results are bit-for-bit identical to k naive HammingSimilarity calls;
// charges are identical too.
func (s *BinarySet) HammingSimilarityK(ctr *Counter, q *Binary, sims []float64) {
	if len(sims) < s.k {
		panic(fmt.Sprintf("hdc: BinarySet.HammingSimilarityK sims has %d slots for %d vectors", len(sims), s.k))
	}
	if s.k > 0 && q.Dim != s.dim {
		panic(fmt.Sprintf("hdc: BinarySet.HammingSimilarityK dimension mismatch %d != %d", q.Dim, s.dim))
	}
	qw := q.Words
	nw := s.wordsPerVec
	dim := float64(q.Dim)
	i := 0
	for ; i+4 <= s.k; i += 4 {
		c0 := s.words[i*nw : (i+1)*nw : (i+1)*nw]
		c1 := s.words[(i+1)*nw : (i+2)*nw : (i+2)*nw]
		c2 := s.words[(i+2)*nw : (i+3)*nw : (i+3)*nw]
		c3 := s.words[(i+3)*nw : (i+4)*nw : (i+4)*nw]
		var h0, h1, h2, h3 int
		j := 0
		for ; j+2 <= nw; j += 2 {
			w0, w1 := qw[j], qw[j+1]
			h0 += bits.OnesCount64(w0^c0[j]) + bits.OnesCount64(w1^c0[j+1])
			h1 += bits.OnesCount64(w0^c1[j]) + bits.OnesCount64(w1^c1[j+1])
			h2 += bits.OnesCount64(w0^c2[j]) + bits.OnesCount64(w1^c2[j+1])
			h3 += bits.OnesCount64(w0^c3[j]) + bits.OnesCount64(w1^c3[j+1])
		}
		for ; j < nw; j++ {
			w := qw[j]
			h0 += bits.OnesCount64(w ^ c0[j])
			h1 += bits.OnesCount64(w ^ c1[j])
			h2 += bits.OnesCount64(w ^ c2[j])
			h3 += bits.OnesCount64(w ^ c3[j])
		}
		sims[i] = 1 - 2*float64(h0)/dim
		sims[i+1] = 1 - 2*float64(h1)/dim
		sims[i+2] = 1 - 2*float64(h2)/dim
		sims[i+3] = 1 - 2*float64(h3)/dim
	}
	for ; i < s.k; i++ {
		cw := s.words[i*nw : (i+1)*nw : (i+1)*nw]
		var h int
		for j, w := range qw {
			h += bits.OnesCount64(w ^ cw[j])
		}
		sims[i] = 1 - 2*float64(h)/dim
	}
	chargeHammingK(ctr, uint64(nw), uint64(s.k))
}
