package hdc

import (
	"math"
	"math/rand"
)

// FalsePositiveRate evaluates the paper's Eq. 4: the probability that a
// bundled hypervector M = S_1 + … + S_P appears to contain a random query Q
// that it does not contain, when containment is declared for normalized
// similarity above threshold t.
//
// With P random bipolar patterns accumulated into M, the normalized
// similarity δ(M,Q)/D of an unrelated query concentrates around 0 with
// standard deviation √(P/D), so the false-positive probability is the
// Gaussian tail Pr(Z > t·√(D/P)).
func FalsePositiveRate(d, p int, t float64) float64 {
	if d <= 0 || p <= 0 {
		return 0
	}
	z := t * math.Sqrt(float64(d)/float64(p))
	return gaussianTail(z)
}

// gaussianTail returns Pr(Z > z) for a standard normal Z using the
// complementary error function.
func gaussianTail(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// CapacityLimit returns the largest number of random bipolar patterns P that
// can be bundled into a D-dimensional hypervector while keeping the
// false-positive rate of Eq. 4 at or below maxFP for threshold t.
//
//lint:nocount offline analytical capacity study, not a runtime kernel
func CapacityLimit(d int, t, maxFP float64) int {
	if d <= 0 {
		return 0
	}
	lo, hi := 1, d*100
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if FalsePositiveRate(d, mid, t) <= maxFP {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if FalsePositiveRate(d, lo, t) > maxFP {
		return 0
	}
	return lo
}

// MonteCarloFalsePositive estimates the false-positive rate empirically:
// it bundles p random bipolar hypervectors of dimension d into M, then
// measures how often an unrelated random query exceeds the normalized
// similarity threshold t. trials controls the number of queries.
//
//lint:nocount offline Monte-Carlo capacity study, not a runtime kernel
func MonteCarloFalsePositive(rng *rand.Rand, d, p, trials int, t float64) float64 {
	m := NewVector(d)
	for i := 0; i < p; i++ {
		s := RandomBipolar(rng, d)
		Add(nil, m, s)
	}
	// Containment is declared when δ(M,Q)/D > t. For an unrelated query,
	// δ(M,Q) = Σ_i dot(S_i, Q) has mean 0 and variance P·D, so the
	// standardized statistic Z = δ/√(P·D) crosses the threshold exactly when
	// Z > t·√(D/P) — the event of Eq. 4.
	hits := 0
	zThresh := t * math.Sqrt(float64(d)/float64(p))
	for i := 0; i < trials; i++ {
		q := RandomBipolar(rng, d)
		z := Dot(nil, m, q) / math.Sqrt(float64(p)*float64(d))
		if z > zThresh {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}
