package hdc

import (
	"sync"
	"testing"
)

func TestAtomicCounterConcurrentAdds(t *testing.T) {
	var ac AtomicCounter
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := &Counter{}
			for i := 0; i < perWorker; i++ {
				ac.Add(OpFloatAdd, 2)
				local.Add(OpPopcnt, 3)
			}
			ac.AddCounter(local)
		}()
	}
	wg.Wait()
	if got, want := ac.Count(OpFloatAdd), uint64(workers*perWorker*2); got != want {
		t.Errorf("OpFloatAdd = %d, want %d", got, want)
	}
	if got, want := ac.Count(OpPopcnt), uint64(workers*perWorker*3); got != want {
		t.Errorf("OpPopcnt = %d, want %d", got, want)
	}
	if got, want := ac.Total(), uint64(workers*perWorker*5); got != want {
		t.Errorf("Total = %d, want %d", got, want)
	}
}

func TestAtomicCounterNilSafe(t *testing.T) {
	var ac *AtomicCounter
	ac.Add(OpXor, 5)
	ac.AddCounter(&Counter{})
	ac.Reset()
	if ac.Count(OpXor) != 0 || ac.Total() != 0 {
		t.Error("nil AtomicCounter should count nothing")
	}
	if ac.Snapshot() != ([NumOps]uint64{}) {
		t.Error("nil AtomicCounter snapshot should be zero")
	}
	if ac.String() != "hdc.AtomicCounter(nil)" {
		t.Errorf("nil String = %q", ac.String())
	}
}

func TestAtomicCounterConversion(t *testing.T) {
	var ac AtomicCounter
	ac.Add(OpIntMul, 7)
	ac.Add(OpExp, 2)
	c := ac.Counter()
	if c.Count(OpIntMul) != 7 || c.Count(OpExp) != 2 {
		t.Errorf("Counter conversion lost counts: %v", c)
	}
	ac.Reset()
	if ac.Total() != 0 {
		t.Errorf("Reset left %d counts", ac.Total())
	}
}
