package hdc

import "testing"

// FuzzPackUnpack asserts the bit-pack round trip holds for arbitrary sign
// patterns and that the dot/Hamming identity survives fuzzing.
func FuzzPackUnpack(f *testing.F) {
	f.Add([]byte{0x00}, []byte{0xFF})
	f.Add([]byte{0xAA, 0x55}, []byte{0x0F, 0xF0})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		if len(a) == 0 || len(b) == 0 {
			return
		}
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n > 512 {
			n = 512
		}
		va := make(Vector, n)
		vb := make(Vector, n)
		for i := 0; i < n; i++ {
			va[i] = 1
			if a[i]&1 == 0 {
				va[i] = -1
			}
			vb[i] = 1
			if b[i]&1 == 0 {
				vb[i] = -1
			}
		}
		pa, pb := Pack(nil, va), Pack(nil, vb)
		ua := Unpack(pa)
		for i := range va {
			if ua[i] != va[i] {
				t.Fatalf("round trip differs at %d", i)
			}
		}
		if int(Dot(nil, va, vb)) != DotBinary(nil, pa, pb) {
			t.Fatal("dot/Hamming identity violated")
		}
		if h := Hamming(nil, pa, pb); h < 0 || h > n {
			t.Fatalf("Hamming out of range: %d", h)
		}
	})
}
