package hdc

import (
	"math"
	"testing"
)

// FuzzPackUnpack asserts the bit-pack round trip holds for arbitrary sign
// patterns and that the dot/Hamming identity survives fuzzing.
func FuzzPackUnpack(f *testing.F) {
	f.Add([]byte{0x00}, []byte{0xFF})
	f.Add([]byte{0xAA, 0x55}, []byte{0x0F, 0xF0})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		if len(a) == 0 || len(b) == 0 {
			return
		}
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n > 512 {
			n = 512
		}
		va := make(Vector, n)
		vb := make(Vector, n)
		for i := 0; i < n; i++ {
			va[i] = 1
			if a[i]&1 == 0 {
				va[i] = -1
			}
			vb[i] = 1
			if b[i]&1 == 0 {
				vb[i] = -1
			}
		}
		pa, pb := Pack(nil, va), Pack(nil, vb)
		ua := Unpack(pa)
		for i := range va {
			if ua[i] != va[i] {
				t.Fatalf("round trip differs at %d", i)
			}
		}
		if int(Dot(nil, va, vb)) != DotBinary(nil, pa, pb) {
			t.Fatal("dot/Hamming identity violated")
		}
		if h := Hamming(nil, pa, pb); h < 0 || h > n {
			t.Fatalf("Hamming out of range: %d", h)
		}
	})
}

// FuzzSignProject is the packed-projection differential fuzzer: for
// arbitrary sign patterns and feature values, SignMatrix.ProjectAccum must
// reproduce the dense ProjectDense reference bit-for-bit and charge the
// identical Counter op counts — the contract that keeps the hwmodel cost
// estimates valid after the kernel swap.
func FuzzSignProject(f *testing.F) {
	f.Add([]byte{0xAA, 0x55, 0x00, 0xFF}, int64(1), uint8(3), uint8(100))
	f.Add([]byte{0x01}, int64(7), uint8(1), uint8(64))
	f.Add([]byte{0xF0, 0x0F}, int64(42), uint8(5), uint8(65))
	f.Fuzz(func(t *testing.T, signs []byte, seed int64, nrows, ndim uint8) {
		rows := int(nrows%16) + 1
		dim := int(ndim)%300 + 1
		if len(signs) == 0 {
			return
		}
		m := make([]float64, rows*dim)
		for i := range m {
			if signs[i%len(signs)]>>(uint(i)%8)&1 == 0 {
				m[i] = -1
			} else {
				m[i] = 1
			}
		}
		sm, ok := PackSignsFlat(m, rows, dim)
		if !ok {
			t.Fatal("pack failed on a pure ±1 matrix")
		}
		// Deterministic pseudo-random features derived from the seed, kept
		// finite so bit-equality is meaningful.
		x := make([]float64, rows)
		s := uint64(seed)
		for i := range x {
			s = s*6364136223846793005 + 1442695040888963407
			x[i] = float64(int64(s>>11))/float64(1<<52) - 0.5
		}
		ref := make([]float64, dim)
		got := make([]float64, dim)
		var refCtr, gotCtr Counter
		ProjectDense(&refCtr, ref, x, m)
		sm.ProjectAccum(&gotCtr, got, x)
		for j := range ref {
			if math.Float64bits(got[j]) != math.Float64bits(ref[j]) {
				t.Fatalf("rows=%d dim=%d: out[%d] = %v, want %v", rows, dim, j, got[j], ref[j])
			}
		}
		if refCtr != gotCtr {
			t.Fatalf("op counts diverge: packed %v, dense %v", &gotCtr, &refCtr)
		}
	})
}

// FuzzSimilarityK fuzzes the fused k-way similarity kernels against their
// per-cluster references: CosineK vs a Cosine loop and HammingSimilarityK vs
// a HammingSimilarity loop, requiring bit-identical similarities and
// identical op counts.
func FuzzSimilarityK(f *testing.F) {
	f.Add([]byte{0xAA, 0x55}, int64(1), uint8(4), uint8(100))
	f.Add([]byte{0xFF}, int64(9), uint8(1), uint8(64))
	f.Fuzz(func(t *testing.T, pattern []byte, seed int64, kk, ndim uint8) {
		k := int(kk%8) + 1
		dim := int(ndim)%200 + 1
		if len(pattern) == 0 {
			return
		}
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(int64(s>>11))/float64(1<<52) - 0.5
		}
		q := make(Vector, dim)
		qb := NewBinary(dim)
		for j := range q {
			q[j] = next()
			if pattern[j%len(pattern)]>>(uint(j)%8)&1 == 1 {
				qb.SetBit(j, true)
			}
		}
		cs := make([]Vector, k)
		cbs := make([]*Binary, k)
		for i := range cs {
			cs[i] = make(Vector, dim)
			cbs[i] = NewBinary(dim)
			for j := range cs[i] {
				cs[i][j] = next()
				if pattern[(i+j)%len(pattern)]>>(uint(i+j)%8)&1 == 1 {
					cbs[i].SetBit(j, true)
				}
			}
		}

		ref := make([]float64, k)
		got := make([]float64, k)
		var refCtr, gotCtr Counter
		for i, c := range cs {
			ref[i] = Cosine(&refCtr, q, c)
		}
		CosineK(&gotCtr, q, cs, got)
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("cosine sims[%d] = %v, want %v", i, got[i], ref[i])
			}
		}
		if refCtr != gotCtr {
			t.Fatalf("cosine op counts diverge: fused %v, naive %v", &gotCtr, &refCtr)
		}

		refCtr.Reset()
		gotCtr.Reset()
		for i, c := range cbs {
			ref[i] = HammingSimilarity(&refCtr, qb, c)
		}
		HammingSimilarityK(&gotCtr, qb, cbs, got)
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("hamming sims[%d] = %v, want %v", i, got[i], ref[i])
			}
		}
		if refCtr != gotCtr {
			t.Fatalf("hamming op counts diverge: fused %v, naive %v", &gotCtr, &refCtr)
		}

		// The slab-layout kernel (snapshot serving path) must match too.
		gotCtr.Reset()
		set := NewBinarySet(cbs)
		set.HammingSimilarityK(&gotCtr, qb, got)
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("slab hamming sims[%d] = %v, want %v", i, got[i], ref[i])
			}
		}
		if refCtr != gotCtr {
			t.Fatalf("slab hamming op counts diverge: slab %v, naive %v", &gotCtr, &refCtr)
		}
	})
}
