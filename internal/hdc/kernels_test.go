package hdc

import (
	"math"
	"math/rand"
	"testing"
)

// randSignsFlat returns a dense rows×dim ±1 matrix.
func randSignsFlat(rng *rand.Rand, rows, dim int) []float64 {
	m := make([]float64, rows*dim)
	for i := range m {
		if rng.Int63()&1 == 0 {
			m[i] = 1
		} else {
			m[i] = -1
		}
	}
	return m
}

func TestPackSignsFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ rows, dim int }{
		{1, 1}, {3, 64}, {2, 65}, {5, 127}, {4, 128}, {7, 100},
	} {
		m := randSignsFlat(rng, tc.rows, tc.dim)
		sm, ok := PackSignsFlat(m, tc.rows, tc.dim)
		if !ok {
			t.Fatalf("rows=%d dim=%d: pack failed on a pure ±1 matrix", tc.rows, tc.dim)
		}
		if sm.Rows() != tc.rows || sm.Dim() != tc.dim {
			t.Fatalf("rows=%d dim=%d: got %d×%d", tc.rows, tc.dim, sm.Rows(), sm.Dim())
		}
		for r := 0; r < tc.rows; r++ {
			for j := 0; j < tc.dim; j++ {
				if sm.Sign(r, j) != m[r*tc.dim+j] {
					t.Fatalf("rows=%d dim=%d: sign (%d,%d) = %v, want %v",
						tc.rows, tc.dim, r, j, sm.Sign(r, j), m[r*tc.dim+j])
				}
			}
		}
	}
}

func TestPackSignsFlatRejectsNonBipolar(t *testing.T) {
	if _, ok := PackSignsFlat([]float64{1, -1, 0.5, 1}, 2, 2); ok {
		t.Fatal("packed a matrix with a non-±1 entry")
	}
	if _, ok := PackSignsFlat([]float64{1, -1}, 2, 2); ok {
		t.Fatal("packed a matrix with the wrong length")
	}
}

// TestProjectAccumMatchesDense is the projection differential: the packed
// sign-selected kernel must match the dense reference bit-for-bit and charge
// the identical op counts.
func TestProjectAccumMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ rows, dim int }{
		{1, 1}, {2, 63}, {3, 64}, {4, 65}, {8, 200}, {32, 256}, {13, 1000},
	} {
		m := randSignsFlat(rng, tc.rows, tc.dim)
		sm, ok := PackSignsFlat(m, tc.rows, tc.dim)
		if !ok {
			t.Fatal("pack failed")
		}
		x := make([]float64, tc.rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ref := make([]float64, tc.dim)
		got := make([]float64, tc.dim)
		var refCtr, gotCtr Counter
		ProjectDense(&refCtr, ref, x, m)
		sm.ProjectAccum(&gotCtr, got, x)
		for j := range ref {
			if math.Float64bits(got[j]) != math.Float64bits(ref[j]) {
				t.Fatalf("rows=%d dim=%d: out[%d] = %v, want %v (not bit-identical)",
					tc.rows, tc.dim, j, got[j], ref[j])
			}
		}
		if refCtr != gotCtr {
			t.Fatalf("rows=%d dim=%d: op counts diverge:\npacked: %v\ndense:  %v",
				tc.rows, tc.dim, &gotCtr, &refCtr)
		}
	}
}

// TestCosineKMatchesNaive checks the fused k-way cosine against the
// per-cluster Cosine loop: bit-identical similarities, identical op counts.
func TestCosineKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ k, dim int }{
		{1, 1}, {2, 64}, {8, 100}, {4, 1000},
	} {
		q := RandomGaussian(rng, tc.dim)
		cs := make([]Vector, tc.k)
		for i := range cs {
			cs[i] = RandomGaussian(rng, tc.dim)
		}
		ref := make([]float64, tc.k)
		got := make([]float64, tc.k)
		var refCtr, gotCtr Counter
		for i, c := range cs {
			ref[i] = Cosine(&refCtr, q, c)
		}
		CosineK(&gotCtr, q, cs, got)
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("k=%d dim=%d: sims[%d] = %v, want %v (not bit-identical)",
					tc.k, tc.dim, i, got[i], ref[i])
			}
		}
		if refCtr != gotCtr {
			t.Fatalf("k=%d dim=%d: op counts diverge:\nfused: %v\nnaive: %v",
				tc.k, tc.dim, &gotCtr, &refCtr)
		}
	}
}

func TestCosineKZeroNorm(t *testing.T) {
	q := NewVector(16) // all-zero query
	cs := []Vector{RandomGaussian(rand.New(rand.NewSource(4)), 16), NewVector(16)}
	sims := make([]float64, 2)
	CosineK(nil, q, cs, sims)
	if sims[0] != 0 || sims[1] != 0 {
		t.Fatalf("zero-norm similarity should be 0, got %v", sims)
	}
}

// TestHammingSimilarityKMatchesNaive checks the fused binary similarity
// against the per-cluster loop: identical values and op counts.
func TestHammingSimilarityKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ k, dim int }{
		{1, 1}, {3, 64}, {8, 257}, {4, 4096}, {5, 100},
	} {
		q := RandomBipolarBinary(rng, tc.dim)
		cs := make([]*Binary, tc.k)
		for i := range cs {
			cs[i] = RandomBipolarBinary(rng, tc.dim)
		}
		ref := make([]float64, tc.k)
		got := make([]float64, tc.k)
		var refCtr, gotCtr Counter
		for i, c := range cs {
			ref[i] = HammingSimilarity(&refCtr, q, c)
		}
		HammingSimilarityK(&gotCtr, q, cs, got)
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("k=%d dim=%d: sims[%d] = %v, want %v",
					tc.k, tc.dim, i, got[i], ref[i])
			}
		}
		if refCtr != gotCtr {
			t.Fatalf("k=%d dim=%d: op counts diverge:\nfused: %v\nnaive: %v",
				tc.k, tc.dim, &gotCtr, &refCtr)
		}
	}
}

// TestBinarySetHammingSimilarityKMatchesNaive checks the slab-layout k-way
// Hamming kernel (the snapshot serving path) against the per-pair reference:
// bit-identical similarities and identical op counts, across cluster counts
// that exercise the 4-way blocking, its tail, and odd word counts.
func TestBinarySetHammingSimilarityKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, tc := range []struct{ k, dim int }{
		{1, 1}, {2, 63}, {3, 64}, {4, 65}, {5, 100}, {7, 257},
		{8, 4096}, {16, 4096}, {9, 192}, {16, 127},
	} {
		q := RandomBipolarBinary(rng, tc.dim)
		cs := make([]*Binary, tc.k)
		for i := range cs {
			cs[i] = RandomBipolarBinary(rng, tc.dim)
		}
		set := NewBinarySet(cs)
		if set.Len() != tc.k || set.Dim() != tc.dim {
			t.Fatalf("k=%d dim=%d: set reports %d×%d", tc.k, tc.dim, set.Len(), set.Dim())
		}
		ref := make([]float64, tc.k)
		got := make([]float64, tc.k)
		var refCtr, gotCtr Counter
		for i, c := range cs {
			ref[i] = HammingSimilarity(&refCtr, q, c)
		}
		set.HammingSimilarityK(&gotCtr, q, got)
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("k=%d dim=%d: sims[%d] = %v, want %v",
					tc.k, tc.dim, i, got[i], ref[i])
			}
		}
		if refCtr != gotCtr {
			t.Fatalf("k=%d dim=%d: op counts diverge:\nslab: %v\nnaive: %v",
				tc.k, tc.dim, &gotCtr, &refCtr)
		}
	}
}

// TestBinarySetIsACopy pins the immutability contract: mutating the source
// binaries after NewBinarySet must not change the set's similarities.
func TestBinarySetIsACopy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := RandomBipolarBinary(rng, 192)
	cs := []*Binary{RandomBipolarBinary(rng, 192), RandomBipolarBinary(rng, 192)}
	set := NewBinarySet(cs)
	before := make([]float64, 2)
	set.HammingSimilarityK(nil, q, before)
	cs[0].FlipBits([]int{0, 64, 128})
	cs[1].FlipBits([]int{1})
	after := make([]float64, 2)
	set.HammingSimilarityK(nil, q, after)
	for i := range before {
		if math.Float64bits(after[i]) != math.Float64bits(before[i]) {
			t.Fatalf("sims[%d] moved after source mutation: %v -> %v", i, before[i], after[i])
		}
	}
}

func TestBinarySetEmpty(t *testing.T) {
	set := NewBinarySet(nil)
	if set.Len() != 0 {
		t.Fatalf("empty set Len = %d", set.Len())
	}
	var ctr Counter
	set.HammingSimilarityK(&ctr, NewBinary(64), nil)
	if ctr != (Counter{}) {
		t.Fatalf("empty set charged ops: %v", &ctr)
	}
}

func TestBinarySetPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cs := []*Binary{RandomBipolarBinary(rng, 64), RandomBipolarBinary(rng, 64)}
	set := NewBinarySet(cs)
	for name, fn := range map[string]func(){
		"query dim mismatch": func() { set.HammingSimilarityK(nil, NewBinary(65), make([]float64, 2)) },
		"sims too short":     func() { set.HammingSimilarityK(nil, NewBinary(64), make([]float64, 1)) },
		"mixed dims":         func() { NewBinarySet([]*Binary{NewBinary(64), NewBinary(65)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestProjectAccumDimensionPanics(t *testing.T) {
	sm, _ := PackSignsFlat([]float64{1, -1, 1, -1}, 2, 2)
	for _, fn := range []func(){
		func() { sm.ProjectAccum(nil, make([]float64, 2), make([]float64, 3)) },
		func() { sm.ProjectAccum(nil, make([]float64, 3), make([]float64, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected dimension panic")
				}
			}()
			fn()
		}()
	}
}
