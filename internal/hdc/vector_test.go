package hdc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewVectorZero(t *testing.T) {
	v := NewVector(128)
	if v.Dim() != 128 {
		t.Fatalf("Dim = %d, want 128", v.Dim())
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("component %d = %v, want 0", i, x)
		}
	}
}

func TestDotBasic(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, -5, 6}
	if got := Dot(nil, v, w); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestDotCounts(t *testing.T) {
	var c Counter
	v := NewVector(100)
	Dot(&c, v, v)
	if c.Count(OpFloatMul) != 100 || c.Count(OpFloatAdd) != 100 {
		t.Fatalf("counts = %v, want 100 mul/add", &c)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot on mismatched dims did not panic")
		}
	}()
	Dot(nil, NewVector(3), NewVector(4))
}

func TestCosineSelfIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := RandomGaussian(rng, 512)
	if got := Cosine(nil, v, v); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Cosine(v,v) = %v, want 1", got)
	}
}

func TestCosineOppositeIsMinusOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := RandomGaussian(rng, 512)
	w := v.Clone()
	Scale(nil, w, -1)
	if got := Cosine(nil, v, w); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Cosine(v,-v) = %v, want -1", got)
	}
}

func TestCosineZeroVector(t *testing.T) {
	v := NewVector(16)
	w := Vector{1}
	w = append(w, make(Vector, 15)...)
	if got := Cosine(nil, v, w); got != 0 {
		t.Fatalf("Cosine(0,w) = %v, want 0", got)
	}
}

func TestCosineBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := RandomGaussian(r, 64)
		w := RandomGaussian(r, 64)
		c := Cosine(nil, v, w)
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBipolarNearOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const d = 10000
	v := RandomBipolar(rng, d)
	w := RandomBipolar(rng, d)
	if !v.IsBipolar() || !w.IsBipolar() {
		t.Fatal("RandomBipolar produced non-bipolar components")
	}
	// Cosine of independent random bipolar vectors concentrates around 0
	// with std 1/√D = 0.01; 6 sigma gives a robust bound.
	if c := Cosine(nil, v, w); math.Abs(c) > 0.06 {
		t.Fatalf("random bipolar cosine = %v, want ≈ 0", c)
	}
}

func TestAXPY(t *testing.T) {
	v := Vector{1, 1, 1}
	AXPY(nil, v, 2, Vector{1, 2, 3})
	want := Vector{3, 5, 7}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("AXPY = %v, want %v", v, want)
		}
	}
}

func TestAXPYSelfDotIdentity(t *testing.T) {
	// For bipolar S, S·S = D, so M ← M + a·S changes M·S by exactly a·D.
	rng := rand.New(rand.NewSource(5))
	const d = 256
	s := RandomBipolar(rng, d)
	m := RandomGaussian(rng, d)
	before := Dot(nil, m, s)
	AXPY(nil, m, 0.5, s)
	after := Dot(nil, m, s)
	if !almostEqual(after-before, 0.5*d, 1e-9) {
		t.Fatalf("Δ(M·S) = %v, want %v", after-before, 0.5*d)
	}
}

func TestSign(t *testing.T) {
	v := Vector{-2, 0, 3.5, -0.001}
	s := Sign(nil, v)
	want := Vector{-1, 1, 1, -1}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("Sign = %v, want %v", s, want)
		}
	}
	if !s.IsBipolar() {
		t.Fatal("Sign output not bipolar")
	}
}

func TestL1Norm(t *testing.T) {
	if got := L1Norm(nil, Vector{-1, 2, -3}); got != 6 {
		t.Fatalf("L1Norm = %v, want 6", got)
	}
}

func TestNorm(t *testing.T) {
	if got := Norm(nil, Vector{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Norm = %v, want 5", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestCheckDims(t *testing.T) {
	if err := CheckDims(3, Vector{1, 2, 3}, NewVector(3)); err != nil {
		t.Fatalf("CheckDims valid: %v", err)
	}
	if err := CheckDims(3, NewVector(4)); err == nil {
		t.Fatal("CheckDims accepted mismatched dims")
	}
}

func TestScaleAndAdd(t *testing.T) {
	v := Vector{1, 2}
	Scale(nil, v, 3)
	if v[0] != 3 || v[1] != 6 {
		t.Fatalf("Scale = %v", v)
	}
	Add(nil, v, Vector{1, 1})
	if v[0] != 4 || v[1] != 7 {
		t.Fatalf("Add = %v", v)
	}
}

func TestZero(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Zero()
	for _, x := range v {
		if x != 0 {
			t.Fatalf("Zero left %v", v)
		}
	}
}

func TestDotSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := RandomGaussian(r, 32)
		w := RandomGaussian(r, 32)
		return almostEqual(Dot(nil, v, w), Dot(nil, w, v), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDotLinearityProperty(t *testing.T) {
	// dot(a·v + w, q) = a·dot(v,q) + dot(w,q)
	f := func(seed int64, aRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a := float64(aRaw)/16 - 8
		v := RandomGaussian(r, 48)
		w := RandomGaussian(r, 48)
		q := RandomGaussian(r, 48)
		lhs := v.Clone()
		Scale(nil, lhs, a)
		Add(nil, lhs, w)
		return almostEqual(Dot(nil, lhs, q), a*Dot(nil, v, q)+Dot(nil, w, q), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
