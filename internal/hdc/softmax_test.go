package hdc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSoftmaxSumsToOne(t *testing.T) {
	xs := []float64{0.1, -0.4, 0.9, 0.2}
	out := make([]float64, len(xs))
	Softmax(nil, out, xs, 10)
	var sum float64
	for _, p := range out {
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", out)
		}
		sum += p
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("sum = %v, want 1", sum)
	}
}

func TestSoftmaxOrderPreserved(t *testing.T) {
	xs := []float64{-1, 0.5, 0.2}
	out := make([]float64, 3)
	Softmax(nil, out, xs, 5)
	if !(out[1] > out[2] && out[2] > out[0]) {
		t.Fatalf("softmax did not preserve order: %v", out)
	}
}

func TestSoftmaxUniformInput(t *testing.T) {
	xs := []float64{0.3, 0.3, 0.3, 0.3}
	out := make([]float64, 4)
	Softmax(nil, out, xs, 10)
	for _, p := range out {
		if !almostEqual(p, 0.25, 1e-12) {
			t.Fatalf("uniform input should give uniform output: %v", out)
		}
	}
}

func TestSoftmaxTemperatureSharpens(t *testing.T) {
	xs := []float64{0.9, 0.1}
	soft := make([]float64, 2)
	sharp := make([]float64, 2)
	Softmax(nil, soft, xs, 1)
	Softmax(nil, sharp, xs, 20)
	if sharp[0] <= soft[0] {
		t.Fatalf("higher beta should concentrate mass: beta=1 %v, beta=20 %v", soft, sharp)
	}
}

func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64, shiftRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		shift := float64(shiftRaw) - 128
		xs := make([]float64, 5)
		ys := make([]float64, 5)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = xs[i] + shift
		}
		a := make([]float64, 5)
		b := make([]float64, 5)
		Softmax(nil, a, xs, 7)
		Softmax(nil, b, ys, 7)
		for i := range a {
			if !almostEqual(a[i], b[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxExtremeInputsStable(t *testing.T) {
	xs := []float64{1e6, -1e6}
	out := make([]float64, 2)
	Softmax(nil, out, xs, 1)
	if math.IsNaN(out[0]) || math.IsInf(out[0], 0) {
		t.Fatalf("softmax unstable: %v", out)
	}
	if !almostEqual(out[0], 1, 1e-12) {
		t.Fatalf("dominant input should take all mass: %v", out)
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	Softmax(nil, nil, nil, 1) // must not panic
}

func TestArgmax(t *testing.T) {
	if got := Argmax(nil, []float64{1, 5, 3}); got != 1 {
		t.Fatalf("Argmax = %d, want 1", got)
	}
	if got := Argmax(nil, []float64{2}); got != 0 {
		t.Fatalf("Argmax single = %d, want 0", got)
	}
	if got := Argmax(nil, nil); got != -1 {
		t.Fatalf("Argmax empty = %d, want -1", got)
	}
	// Ties go to the first maximum.
	if got := Argmax(nil, []float64{7, 7, 1}); got != 0 {
		t.Fatalf("Argmax tie = %d, want 0", got)
	}
}
