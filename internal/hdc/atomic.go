package hdc

import "sync/atomic"

// AtomicCounter is a Counter whose accumulation is safe for concurrent use:
// many goroutines may Add or merge into it while others read totals. It is
// the aggregation point for concurrent serving, where per-call scratch
// counters (plain Counters, written single-threaded inside one prediction)
// are merged with one atomic add per operation class.
//
// A nil *AtomicCounter is valid everywhere and counts nothing, mirroring the
// nil-Counter convention of the instrumented kernels.
type AtomicCounter struct {
	counts [NumOps]atomic.Uint64
}

// Add atomically records n occurrences of op. Add on a nil counter is a
// no-op.
func (c *AtomicCounter) Add(op Op, n uint64) {
	if c == nil {
		return
	}
	c.counts[op].Add(n)
}

// AddCounter atomically merges the counts of a plain Counter into c — the
// intended hot path: kernels count into a goroutine-local Counter, and the
// caller merges once per prediction (NumOps atomic adds, independent of how
// many primitive ops the prediction performed).
func (c *AtomicCounter) AddCounter(other *Counter) {
	if c == nil || other == nil {
		return
	}
	for i := range other.counts {
		if n := other.counts[i]; n != 0 {
			c.counts[i].Add(n)
		}
	}
}

// Count reports the accumulated count for op. A nil counter reports zero.
func (c *AtomicCounter) Count(op Op) uint64 {
	if c == nil {
		return 0
	}
	return c.counts[op].Load()
}

// Total reports the sum of all operation counts.
func (c *AtomicCounter) Total() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.counts {
		t += c.counts[i].Load()
	}
	return t
}

// Reset zeroes all counts. Concurrent Adds racing a Reset land either before
// or after it; each class is zeroed atomically.
func (c *AtomicCounter) Reset() {
	if c == nil {
		return
	}
	for i := range c.counts {
		c.counts[i].Store(0)
	}
}

// Snapshot returns a copy of the current counts indexed by Op. Classes are
// loaded one at a time, so a snapshot taken under concurrent writes is a
// consistent point per class, not across classes.
func (c *AtomicCounter) Snapshot() [NumOps]uint64 {
	var out [NumOps]uint64
	if c == nil {
		return out
	}
	for i := range c.counts {
		out[i] = c.counts[i].Load()
	}
	return out
}

// Counter returns the current counts as a plain Counter, for handing to
// code that consumes the single-threaded type (reports, the hardware cost
// model).
func (c *AtomicCounter) Counter() *Counter {
	return &Counter{counts: c.Snapshot()}
}

// String renders the non-zero counts, for debugging and reports.
func (c *AtomicCounter) String() string {
	if c == nil {
		return "hdc.AtomicCounter(nil)"
	}
	return "atomic " + c.Counter().String()
}
