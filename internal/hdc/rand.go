package hdc

import "math/rand"

// RandomBipolar returns a random bipolar hypervector of dimension d with
// i.i.d. uniform ±1 components. Randomly drawn bipolar hypervectors are
// nearly orthogonal in high dimension (cosine ≈ 0 with deviation O(1/√D)),
// which is the property the encoder's base vectors rely on.
//
//lint:nocount model/encoder initialization, off the per-sample counted path
func RandomBipolar(rng *rand.Rand, d int) Vector {
	v := make(Vector, d)
	for i := range v {
		if rng.Int63()&1 == 0 {
			v[i] = 1
		} else {
			v[i] = -1
		}
	}
	return v
}

// RandomBipolarBinary returns a random bit-packed bipolar hypervector.
//
//lint:nocount model/encoder initialization, off the per-sample counted path
func RandomBipolarBinary(rng *rand.Rand, d int) *Binary {
	b := NewBinary(d)
	for i := range b.Words {
		b.Words[i] = rng.Uint64()
	}
	b.maskTail()
	return b
}

// RandomGaussian returns a hypervector with i.i.d. standard normal
// components, used to initialize cluster hypervectors when integer (dense)
// cluster representation is selected.
//
//lint:nocount model/encoder initialization, off the per-sample counted path
func RandomGaussian(rng *rand.Rand, d int) Vector {
	v := make(Vector, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// RandomUniform returns a hypervector with i.i.d. components uniform in
// [lo, hi).
//
//lint:nocount model/encoder initialization, off the per-sample counted path
func RandomUniform(rng *rand.Rand, d int, lo, hi float64) Vector {
	v := make(Vector, d)
	for i := range v {
		v[i] = lo + rng.Float64()*(hi-lo)
	}
	return v
}
