package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmp bans == and != on floating-point operands: rounding makes exact
// float equality order- and optimization-dependent, and the kernel rewrites
// in internal/hdc are only allowed because differential tests pin their
// outputs bit-for-bit — ad-hoc equality in production code is how such
// contracts rot silently.
//
// Exemptions: _test.go files (never loaded by the suite, and excluded here
// for safety), comparisons where both operands are compile-time constants
// (exact by definition), and the bodies of the approved epsilon helpers
// below, which need an exact fast path. Intentional exact comparisons
// elsewhere (IEEE-754 sentinel checks and the like) carry a
// //lint:ignore floatcmp annotation with the justification.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= on float operands outside approved epsilon helpers and test files",
	Run:  runFloatCmp,
}

// floatCmpApproved names the epsilon-comparison helpers whose bodies may use
// exact float equality (the conventional |a-b|<=eps helpers need an exact
// fast path for infinities and identical values). Documented in
// docs/STATIC_ANALYSIS.md; extend deliberately.
var floatCmpApproved = map[string]bool{
	"approxEqual": true,
	"ApproxEqual": true,
	"almostEqual": true,
	"AlmostEqual": true,
	"EqualWithin": true,
}

func runFloatCmp(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		walkStack(file, func(n ast.Node, stack []ast.Node) {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return
			}
			if !isFloatOperand(info, be.X) && !isFloatOperand(info, be.Y) {
				return
			}
			if isConstExpr(info, be.X) && isConstExpr(info, be.Y) {
				return
			}
			if fd := enclosingFuncDecl(stack); fd != nil && floatCmpApproved[fd.Name.Name] {
				return
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison: use an approved epsilon helper, or annotate the intentional exact comparison with //lint:ignore floatcmp <reason>", be.Op)
		})
	}
}

// isFloatOperand reports whether e's type is (or is named with underlying)
// float32/float64 or a complex type.
func isFloatOperand(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isConstExpr reports whether e is a compile-time constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
