package lint

import (
	"go/ast"
	"go/types"
)

// deref strips one level of pointer indirection.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedType returns the named type behind t (through one pointer), or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := deref(t).(*types.Named)
	return n
}

// isNamedIn reports whether t (through one pointer) is the named type
// pkgName.typeName. Matching is by package *name*, not full import path, so
// the analyzers work unchanged over the golden-test fixture packages, which
// mirror the real package names (core, hdc) under testdata/src.
func isNamedIn(t types.Type, pkgName, typeName string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// isNamedPath reports whether t (through one pointer) is a named type
// declared in the package with the exact import path pkgPath. typeName ""
// matches any type from that package.
func isNamedPath(t types.Type, pkgPath, typeName string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	return typeName == "" || obj.Name() == typeName
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// selectorBase peels index, star, and paren wrappers off an expression
// until it reaches a selector, returning that selector (or nil). It turns
// the l-values `s.field`, `s.field[i]`, and `(*s.field)[i]` all into the
// `s.field` selector whose base the write analyzers classify.
func selectorBase(e ast.Expr) *ast.SelectorExpr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SelectorExpr:
			return v
		default:
			return nil
		}
	}
}

// calleeFunc resolves a call's callee to its *types.Func (function or
// method), or nil for builtins, conversions, and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// usesObject reports whether the expression tree contains an identifier
// resolving to obj.
func usesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// identObject resolves an identifier to its object, checking uses then
// definitions.
func identObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// enclosingFuncDecl returns the innermost *ast.FuncDecl on the stack.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// callGraph is a package-local static call graph: declared functions and
// methods mapped to the package-local functions their bodies (including
// nested function literals) call. Calls through interfaces, function values,
// and other packages are invisible — the reachability analyzers that use it
// (detorder, goroleak) document this as a deliberate scope boundary.
type callGraph struct {
	// decls maps each function object to its declaration.
	decls map[types.Object]*ast.FuncDecl
	// callees maps each function object to the package-local objects it
	// calls.
	callees map[types.Object][]types.Object
}

// buildCallGraph indexes the package's function declarations and their
// package-local call edges.
func buildCallGraph(pkg *Package) *callGraph {
	g := &callGraph{
		decls:   make(map[types.Object]*ast.FuncDecl),
		callees: make(map[types.Object][]types.Object),
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pkg.Info.Defs[fn.Name]
			if obj == nil {
				continue
			}
			g.decls[obj] = fn
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pkg.Info, call)
				if callee != nil && callee.Pkg() == pkg.Types {
					g.callees[obj] = append(g.callees[obj], callee)
				}
				return true
			})
		}
	}
	return g
}

// reachable returns the set of declared functions reachable from the roots
// through package-local call edges, roots included.
func (g *callGraph) reachable(roots []types.Object) map[types.Object]bool {
	seen := make(map[types.Object]bool)
	stack := append([]types.Object(nil), roots...)
	for len(stack) > 0 {
		obj := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[obj] {
			continue
		}
		seen[obj] = true
		for _, callee := range g.callees[obj] {
			if _, declared := g.decls[callee]; declared && !seen[callee] {
				stack = append(stack, callee)
			}
		}
	}
	return seen
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
