package lint

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestSARIFRoundTrip pins the SARIF 2.1.0 shape: the encoded log decodes
// back to the same structure, carries the schema/version code scanning
// checks, indexes every result into the rule table, and relativizes file
// URIs against the base directory.
func TestSARIFRoundTrip(t *testing.T) {
	base := filepath.Join("/", "repo")
	diags := []Diagnostic{
		{
			Analyzer: "floatcmp",
			Pos:      token.Position{Filename: filepath.Join(base, "serve.go"), Line: 12, Column: 7},
			Message:  "float equality",
		},
		{
			Analyzer: "audit",
			Pos:      token.Position{Filename: filepath.Join(base, "internal", "core", "merge.go"), Line: 3, Column: 1},
			Message:  "stale //lint:ignore",
		},
	}
	log := BuildSARIF(All(), diags, base)
	encoded, err := log.Encode()
	if err != nil {
		t.Fatal(err)
	}

	var decoded SarifLog
	if err := json.Unmarshal(encoded, &decoded); err != nil {
		t.Fatalf("encoded SARIF does not round-trip: %v", err)
	}
	if decoded.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", decoded.Version)
	}
	if !strings.Contains(decoded.Schema, "sarif-schema-2.1.0") {
		t.Errorf("schema = %q, want the 2.1.0 schema URI", decoded.Schema)
	}
	if len(decoded.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(decoded.Runs))
	}
	run := decoded.Runs[0]
	if run.Tool.Driver.Name != "reghd-lint" {
		t.Errorf("driver name = %q, want reghd-lint", run.Tool.Driver.Name)
	}
	// One rule per analyzer, plus the referenced audit pseudo-rule.
	if want := len(All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(diags))
	}
	for i, r := range run.Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Fatalf("result %d ruleIndex %d out of range", i, r.RuleIndex)
		}
		if got := run.Tool.Driver.Rules[r.RuleIndex].ID; got != r.RuleID {
			t.Errorf("result %d: ruleIndex points at %q, ruleId is %q", i, got, r.RuleID)
		}
		if r.Level != "error" {
			t.Errorf("result %d level = %q, want error", i, r.Level)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(r.Locations))
		}
	}
	if uri := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "serve.go" {
		t.Errorf("result 0 uri = %q, want serve.go (relative to base)", uri)
	}
	if uri := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/core/merge.go" {
		t.Errorf("result 1 uri = %q, want internal/core/merge.go", uri)
	}
	if reg := run.Results[0].Locations[0].PhysicalLocation.Region; reg.StartLine != 12 || reg.StartColumn != 7 {
		t.Errorf("result 0 region = %+v, want 12:7", reg)
	}
}

// TestSARIFOutsideBase pins the fallback: a diagnostic outside baseDir keeps
// its slash-normalized absolute path instead of a ../ escape.
func TestSARIFOutsideBase(t *testing.T) {
	base := filepath.Join("/", "repo")
	outside := filepath.Join("/", "elsewhere", "x.go")
	log := BuildSARIF(nil, []Diagnostic{{
		Analyzer: "directive",
		Pos:      token.Position{Filename: outside, Line: 1},
	}}, base)
	uri := log.Runs[0].Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if strings.HasPrefix(uri, "..") {
		t.Errorf("uri = %q escapes the base directory", uri)
	}
	if uri != filepath.ToSlash(outside) {
		t.Errorf("uri = %q, want %q", uri, filepath.ToSlash(outside))
	}
}

// TestSARIFEmpty pins the clean-run shape: zero results still yields a
// structurally valid log (code scanning accepts and uses it to close old
// alerts).
func TestSARIFEmpty(t *testing.T) {
	log := BuildSARIF(All(), nil, "")
	encoded, err := log.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var decoded SarifLog
	if err := json.Unmarshal(encoded, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Runs[0].Results == nil || len(decoded.Runs[0].Results) != 0 {
		t.Errorf("results should encode as an empty array, got %#v", decoded.Runs[0].Results)
	}
	if len(decoded.Runs[0].Tool.Driver.Rules) != len(All()) {
		t.Errorf("rules = %d, want %d", len(decoded.Runs[0].Tool.Driver.Rules), len(All()))
	}
}
