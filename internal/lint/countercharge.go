package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CounterCharge enforces the op-accounting contract behind the reproduced
// hardware numbers: every hwmodel cost estimate (the paper's Table 1 and
// Fig. 8 comparisons) is priced from hdc.Counter op classes, so an hdc
// kernel that does per-dimension work without charging the counter silently
// skews every downstream energy/latency figure. The contract is a property
// of the algorithm, not the implementation — optimized kernels must charge
// exactly what the reference form charges (see docs/PERFORMANCE.md).
//
// Mechanically, in packages named hdc every exported function must satisfy
// one of:
//
//   - it takes a *hdc.Counter and either calls a Counter/AtomicCounter Add*
//     method or forwards a counter to a callee (delegation, e.g. Cosine
//     charging through Dot);
//   - it takes no counter and contains no loop (constant-time accessors do
//     not move the op totals);
//   - it carries a //lint:nocount <reason> annotation in its doc comment
//     stating why it is exempt from accounting.
//
// Methods on the accounting machinery itself (Counter, AtomicCounter, Op)
// are exempt: they implement the bookkeeping, they are not kernels.
var CounterCharge = &Analyzer{
	Name: "countercharge",
	Doc:  "require exported hdc kernels to charge a Counter or carry //lint:nocount",
	Run:  runCounterCharge,
}

// isCounterType reports whether t is hdc.Counter or hdc.AtomicCounter.
func isCounterType(t types.Type) bool {
	return isNamedIn(t, "hdc", "Counter") || isNamedIn(t, "hdc", "AtomicCounter")
}

func runCounterCharge(pass *Pass) {
	if pass.Pkg.Types.Name() != "hdc" {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if recvIsAccounting(info, fn) {
				continue
			}
			reason, annotated, apos := nocountDirective(fn)
			if annotated {
				if reason == "" {
					pass.Reportf(apos, "//lint:nocount needs a written reason: //lint:nocount <reason>")
				}
				continue
			}
			switch {
			case funcTakesCounter(info, fn):
				if !bodyChargesCounter(info, fn.Body) {
					pass.Reportf(fn.Name.Pos(), "exported kernel %s takes a *hdc.Counter but never charges it (call a Counter.Add* method or forward the counter to an instrumented callee), or annotate //lint:nocount <reason>", fn.Name.Name)
				}
			case bodyHasLoop(fn.Body):
				pass.Reportf(fn.Name.Pos(), "exported hdc function %s loops over data without a *hdc.Counter parameter: charge the canonical op classes or annotate //lint:nocount <reason>", fn.Name.Name)
			}
		}
	}
}

// auditNocount is countercharge's arm of the stale-suppression audit: a
// //lint:nocount on a function the analyzer would not flag anyway (it
// charges its counter, or has no loop) documents an exemption that does not
// exist and is reported so the directive can be deleted. Reason-less
// annotations are left to the normal run, which already reports them.
func auditNocount(pkg *Package) []Diagnostic {
	if pkg.Types.Name() != "hdc" {
		return nil
	}
	info := pkg.Info
	var out []Diagnostic
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			reason, annotated, apos := nocountDirective(fn)
			if !annotated || reason == "" || recvIsAccounting(info, fn) {
				continue
			}
			wouldFlag := false
			if funcTakesCounter(info, fn) {
				wouldFlag = !bodyChargesCounter(info, fn.Body)
			} else {
				wouldFlag = bodyHasLoop(fn.Body)
			}
			if !wouldFlag {
				out = append(out, Diagnostic{
					Analyzer: "audit",
					Pos:      pkg.Fset.Position(apos),
					Message:  fmt.Sprintf("stale //lint:nocount: countercharge would not flag %s anyway — delete the annotation", fn.Name.Name),
				})
			}
		}
	}
	return out
}

// recvIsAccounting reports whether fn is a method on Counter, AtomicCounter,
// or Op — the accounting machinery itself.
func recvIsAccounting(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	n := namedType(info.TypeOf(fn.Recv.List[0].Type))
	if n == nil {
		return false
	}
	switch n.Obj().Name() {
	case "Counter", "AtomicCounter", "Op":
		return true
	}
	return false
}

// funcTakesCounter reports whether any parameter is a Counter (the repo's
// convention passes *hdc.Counter as the first kernel parameter).
func funcTakesCounter(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if isCounterType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// bodyChargesCounter reports whether the body charges a counter directly
// (an Add* method call on a Counter/AtomicCounter receiver) or forwards a
// counter as a call argument.
func bodyChargesCounter(info *types.Info, body *ast.BlockStmt) bool {
	charges := false
	ast.Inspect(body, func(n ast.Node) bool {
		if charges {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if se, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if len(se.Sel.Name) >= 3 && se.Sel.Name[:3] == "Add" && isCounterType(info.TypeOf(se.X)) {
				charges = true
				return false
			}
		}
		for _, arg := range call.Args {
			if isCounterType(info.TypeOf(arg)) {
				charges = true
				return false
			}
		}
		return true
	})
	return charges
}

// bodyHasLoop reports whether the body contains a for or range statement —
// the analyzer's proxy for O(D) per-dimension work.
func bodyHasLoop(body *ast.BlockStmt) bool {
	has := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			has = true
		}
		return !has
	})
	return has
}
