package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The suite understands two comment directives:
//
//	//lint:ignore <analyzer> <reason>
//	//lint:nocount <reason>
//
// ignore suppresses the named analyzer's findings on the directive's own
// line or the line directly below it (so it works both as a trailing comment
// and as a comment above the offending statement). nocount is countercharge's
// function-level annotation: placed in a function's doc comment it marks an
// exported hdc function as intentionally uncounted. Both require a written
// reason; a directive without one is itself reported.

// ignoreDirective is one parsed //lint:ignore.
type ignoreDirective struct {
	analyzer string
	reason   string
}

// directives indexes a package's parsed directives for suppression lookup.
type directives struct {
	// ignores maps filename -> line -> directives on that line.
	ignores  map[string]map[int][]ignoreDirective
	problems []Diagnostic
}

// collectDirectives scans every comment in the package, indexing ignore
// directives and reporting malformed or unknown ones.
func collectDirectives(pkg *Package) *directives {
	d := &directives{ignores: make(map[string]map[int][]ignoreDirective)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.parseComment(pkg, c)
			}
		}
	}
	return d
}

func (d *directives) parseComment(pkg *Package, c *ast.Comment) {
	rest, ok := strings.CutPrefix(c.Text, "//lint:")
	if !ok {
		return
	}
	d.parseDirective(pkg.Fset.Position(c.Pos()), rest)
}

// parseDirective parses the text after "//lint:" found at pos.
func (d *directives) parseDirective(pos token.Position, rest string) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		d.problem(pos, "empty //lint: directive")
		return
	}
	switch fields[0] {
	case "ignore":
		if len(fields) < 3 {
			d.problem(pos, "//lint:ignore needs an analyzer name and a reason: //lint:ignore <analyzer> <reason>")
			return
		}
		byLine := d.ignores[pos.Filename]
		if byLine == nil {
			byLine = make(map[int][]ignoreDirective)
			d.ignores[pos.Filename] = byLine
		}
		byLine[pos.Line] = append(byLine[pos.Line], ignoreDirective{
			analyzer: fields[1],
			reason:   strings.Join(fields[2:], " "),
		})
	case "nocount":
		// Validated by countercharge, which knows which function the
		// annotation is attached to; nothing to index here.
	default:
		d.problem(pos, "unknown directive //lint:%s (known: ignore, nocount)", fields[0])
	}
}

func (d *directives) problem(pos token.Position, format string, args ...any) {
	d.problems = append(d.problems, Diagnostic{
		Analyzer: "directive",
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether an ignore directive for the analyzer covers a
// diagnostic at pos (directive on the same line, or on the line above).
func (d *directives) suppressed(analyzer string, pos token.Position) bool {
	byLine := d.ignores[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, ig := range byLine[line] {
			if ig.analyzer == analyzer {
				return true
			}
		}
	}
	return false
}

// nocountDirective returns the //lint:nocount annotation on fn's doc
// comment, if any: the written reason, whether the annotation is present,
// and its position.
func nocountDirective(fn *ast.FuncDecl) (reason string, ok bool, pos token.Pos) {
	if fn.Doc == nil {
		return "", false, token.NoPos
	}
	for _, c := range fn.Doc.List {
		rest, found := strings.CutPrefix(c.Text, "//lint:nocount")
		if !found {
			continue
		}
		return strings.TrimSpace(rest), true, c.Pos()
	}
	return "", false, token.NoPos
}
