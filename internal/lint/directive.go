package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The suite understands three comment directives:
//
//	//lint:ignore <analyzer> <reason>
//	//lint:nocount <reason>
//	//lint:nondeterm <reason>
//
// ignore suppresses the named analyzer's findings on the directive's own
// line or the line directly below it (so it works both as a trailing comment
// and as a comment above the offending statement). nocount is countercharge's
// function-level annotation: placed in a function's doc comment it marks an
// exported hdc function as intentionally uncounted. nondeterm is detorder's
// dedicated spelling of "ignore detorder": it marks an intentional
// nondeterminism site (wall-clock telemetry, stage timing) inside the
// canonical-determinism set. All three require a written reason; a directive
// without one is itself reported.
//
// Directives are also auditable: AuditIgnores reports every ignore/nondeterm
// that no longer suppresses a diagnostic and every nocount on a function
// countercharge would not flag anyway, so suppressions cannot rot
// (docs/STATIC_ANALYSIS.md, "The stale-suppression audit").

// ignoreDirective is one parsed //lint:ignore (or //lint:nondeterm, which
// parses as an ignore of the detorder analyzer).
type ignoreDirective struct {
	analyzer string
	reason   string
	// kind is the directive's verbatim spelling ("ignore" or "nondeterm"),
	// kept so audit reports name what is actually written in the source.
	kind string
	// pos is the directive's own position, for audit reporting.
	pos token.Position
	// used records whether the directive suppressed at least one diagnostic
	// in the current RunAnalyzers/AuditIgnores pass.
	used bool
}

// directives indexes a package's parsed directives for suppression lookup.
type directives struct {
	// ignores maps filename -> line -> directives on that line.
	ignores  map[string]map[int][]*ignoreDirective
	problems []Diagnostic
}

// collectDirectives scans every comment in the package, indexing ignore
// directives and reporting malformed or unknown ones.
func collectDirectives(pkg *Package) *directives {
	d := &directives{ignores: make(map[string]map[int][]*ignoreDirective)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.parseComment(pkg, c)
			}
		}
	}
	return d
}

func (d *directives) parseComment(pkg *Package, c *ast.Comment) {
	rest, ok := strings.CutPrefix(c.Text, "//lint:")
	if !ok {
		return
	}
	d.parseDirective(pkg.Fset.Position(c.Pos()), rest)
}

// parseDirective parses the text after "//lint:" found at pos.
func (d *directives) parseDirective(pos token.Position, rest string) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		d.problem(pos, "empty //lint: directive")
		return
	}
	switch fields[0] {
	case "ignore":
		if len(fields) < 3 {
			d.problem(pos, "//lint:ignore needs an analyzer name and a reason: //lint:ignore <analyzer> <reason>")
			return
		}
		d.index(&ignoreDirective{
			analyzer: fields[1],
			reason:   strings.Join(fields[2:], " "),
			kind:     "ignore",
			pos:      pos,
		})
	case "nondeterm":
		if len(fields) < 2 {
			d.problem(pos, "//lint:nondeterm needs a written reason: //lint:nondeterm <reason>")
			return
		}
		d.index(&ignoreDirective{
			analyzer: "detorder",
			reason:   strings.Join(fields[1:], " "),
			kind:     "nondeterm",
			pos:      pos,
		})
	case "nocount":
		// Validated by countercharge, which knows which function the
		// annotation is attached to; nothing to index here.
	default:
		d.problem(pos, "unknown directive //lint:%s (known: ignore, nocount, nondeterm)", fields[0])
	}
}

// index records one parsed ignore-style directive for suppression lookup.
func (d *directives) index(ig *ignoreDirective) {
	byLine := d.ignores[ig.pos.Filename]
	if byLine == nil {
		byLine = make(map[int][]*ignoreDirective)
		d.ignores[ig.pos.Filename] = byLine
	}
	byLine[ig.pos.Line] = append(byLine[ig.pos.Line], ig)
}

func (d *directives) problem(pos token.Position, format string, args ...any) {
	d.problems = append(d.problems, Diagnostic{
		Analyzer: "directive",
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether an ignore directive for the analyzer covers a
// diagnostic at pos (directive on the same line, or on the line above).
// Every covering directive is marked used, so the stale-suppression audit
// never reports a directive that is doing work.
func (d *directives) suppressed(analyzer string, pos token.Position) bool {
	byLine := d.ignores[pos.Filename]
	if byLine == nil {
		return false
	}
	hit := false
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, ig := range byLine[line] {
			if ig.analyzer == analyzer {
				ig.used = true
				hit = true
			}
		}
	}
	return hit
}

// stale returns one audit diagnostic per indexed directive that suppressed
// nothing in the pass that just ran, in directive-position order within each
// file (RunAnalyzers re-sorts globally).
func (d *directives) stale() []Diagnostic {
	var out []Diagnostic
	for _, byLine := range d.ignores {
		for _, igs := range byLine {
			for _, ig := range igs {
				if ig.used {
					continue
				}
				out = append(out, Diagnostic{
					Analyzer: "audit",
					Pos:      ig.pos,
					Message:  fmt.Sprintf("stale //lint:%s: no %s diagnostic on this line or the next — delete the directive or re-justify it", ig.kind, ig.analyzer),
				})
			}
		}
	}
	return out
}

// nocountDirective returns the //lint:nocount annotation on fn's doc
// comment, if any: the written reason, whether the annotation is present,
// and its position.
func nocountDirective(fn *ast.FuncDecl) (reason string, ok bool, pos token.Pos) {
	if fn.Doc == nil {
		return "", false, token.NoPos
	}
	for _, c := range fn.Doc.List {
		rest, found := strings.CutPrefix(c.Text, "//lint:nocount")
		if !found {
			continue
		}
		return strings.TrimSpace(rest), true, c.Pos()
	}
	return "", false, token.NoPos
}
