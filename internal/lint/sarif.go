package lint

import (
	"encoding/json"
	"path/filepath"
	"sort"
)

// SARIF output (reghd-lint -format sarif) serializes a run's diagnostics as
// a SARIF 2.1.0 log — the format GitHub code scanning ingests — so lint
// findings annotate pull requests instead of scrolling by in a CI log. Only
// the fields code scanning actually reads are emitted: the tool driver with
// one reportingDescriptor per analyzer, and one result per diagnostic with
// a physical location whose URI is relative to the directory the tool ran
// in (the repository root in CI, which is what makes the annotations land
// on the right files).

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

// SarifLog is the top-level SARIF 2.1.0 document.
type SarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SarifRun `json:"runs"`
}

// SarifRun is one tool invocation: the driver metadata plus its results.
type SarifRun struct {
	Tool    SarifTool     `json:"tool"`
	Results []SarifResult `json:"results"`
}

// SarifTool wraps the driver component.
type SarifTool struct {
	Driver SarifDriver `json:"driver"`
}

// SarifDriver identifies reghd-lint and enumerates its rules (analyzers).
type SarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SarifRule `json:"rules"`
}

// SarifRule is one reportingDescriptor: an analyzer, or one of the suite's
// pseudo-rules ("directive" for malformed suppressions, "audit" for stale
// ones).
type SarifRule struct {
	ID               string       `json:"id"`
	ShortDescription SarifMessage `json:"shortDescription"`
}

// SarifResult is one diagnostic.
type SarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   SarifMessage    `json:"message"`
	Locations []SarifLocation `json:"locations"`
}

// SarifMessage is SARIF's text wrapper.
type SarifMessage struct {
	Text string `json:"text"`
}

// SarifLocation wraps a physical location.
type SarifLocation struct {
	PhysicalLocation SarifPhysicalLocation `json:"physicalLocation"`
}

// SarifPhysicalLocation is a file region.
type SarifPhysicalLocation struct {
	ArtifactLocation SarifArtifactLocation `json:"artifactLocation"`
	Region           SarifRegion           `json:"region"`
}

// SarifArtifactLocation holds the file URI, relative to the invocation
// directory.
type SarifArtifactLocation struct {
	URI string `json:"uri"`
}

// SarifRegion is a start position (reghd-lint diagnostics are points, not
// ranges).
type SarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifPseudoRules describes the diagnostics the framework itself emits —
// they have no *Analyzer but still need a reportingDescriptor when present.
var sarifPseudoRules = map[string]string{
	"directive": "malformed or unknown //lint: directive",
	"audit":     "suppression directive that no longer suppresses anything",
}

// BuildSARIF assembles a SARIF 2.1.0 log for one reghd-lint run. baseDir,
// when non-empty, relativizes diagnostic file paths into artifact URIs (CI
// passes the repository root); paths outside baseDir, or when baseDir is
// empty, pass through slash-normalized. The analyzers become the driver's
// rule table, in order, with pseudo-rules appended only if diagnostics
// reference them.
func BuildSARIF(analyzers []*Analyzer, diags []Diagnostic, baseDir string) *SarifLog {
	var rules []SarifRule
	index := make(map[string]int)
	for _, a := range analyzers {
		index[a.Name] = len(rules)
		rules = append(rules, SarifRule{ID: a.Name, ShortDescription: SarifMessage{Text: a.Doc}})
	}
	// Pseudo-rules, added deterministically (sorted) when referenced.
	var extra []string
	seen := make(map[string]bool)
	for _, d := range diags {
		if _, ok := index[d.Analyzer]; !ok && !seen[d.Analyzer] {
			seen[d.Analyzer] = true
			extra = append(extra, d.Analyzer)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		doc := sarifPseudoRules[name]
		if doc == "" {
			doc = name
		}
		index[name] = len(rules)
		rules = append(rules, SarifRule{ID: name, ShortDescription: SarifMessage{Text: doc}})
	}

	results := make([]SarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, SarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: index[d.Analyzer],
			Level:     "error",
			Message:   SarifMessage{Text: d.Message},
			Locations: []SarifLocation{{
				PhysicalLocation: SarifPhysicalLocation{
					ArtifactLocation: SarifArtifactLocation{URI: sarifURI(baseDir, d.Pos.Filename)},
					Region:           SarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	return &SarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []SarifRun{{
			Tool:    SarifTool{Driver: SarifDriver{Name: "reghd-lint", Rules: rules}},
			Results: results,
		}},
	}
}

// sarifURI relativizes filename against baseDir and slash-normalizes it.
func sarifURI(baseDir, filename string) string {
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, filename); err == nil && rel != ".." && !filepath.IsAbs(rel) && (len(rel) < 3 || rel[:3] != ".."+string(filepath.Separator)) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// Encode marshals the log as indented JSON with a trailing newline.
func (l *SarifLog) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
