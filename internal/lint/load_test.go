package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadDirSyntaxError(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"bad.go": "package bad\n\nfunc {\n",
	})
	if _, err := testLoader(t).LoadDir(dir); err == nil || !strings.Contains(err.Error(), "parsing") {
		t.Fatalf("want parse error, got %v", err)
	}
}

func TestLoadDirTypeError(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"bad.go": "package bad\n\nvar x = undefinedIdent\n",
	})
	_, err := testLoader(t).LoadDir(dir)
	if err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("want type-check error, got %v", err)
	}
	if !strings.Contains(err.Error(), "undefinedIdent") {
		t.Fatalf("error should name the offending identifier, got %v", err)
	}
}

func TestLoadDirUnresolvableImport(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"bad.go": "package bad\n\nimport \"no/such/pkg\"\n\nvar _ = pkg.Thing\n",
	})
	_, err := testLoader(t).LoadDir(dir)
	if err == nil || !strings.Contains(err.Error(), "no/such/pkg") {
		t.Fatalf("want unresolvable-import error, got %v", err)
	}
}

func TestLoadDirMultiFile(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"a.go": "package multi\n\ntype point struct{ x, y float64 }\n",
		"b.go": "package multi\n\nfunc origin() point { return point{} }\n",
	})
	pkg, err := testLoader(t).LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("want 2 files, got %d", len(pkg.Files))
	}
	if pkg.Types.Name() != "multi" {
		t.Fatalf("want package multi, got %s", pkg.Types.Name())
	}
}

// TestLoadDirTestFilesExcluded pins that _test.go files are not part of the
// analyzed package: the suite lints production code only.
func TestLoadDirTestFilesExcluded(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"a.go":      "package p\n\nfunc V() int { return 1 }\n",
		"a_test.go": "package p\n\nvar brokenOnPurpose = undefinedIdent\n",
	})
	pkg, err := testLoader(t).LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("want 1 file (test file excluded), got %d", len(pkg.Files))
	}
}

// TestLoadRealPackage smoke-tests the source importer against a real module
// package with a non-trivial dependency closure.
func TestLoadRealPackage(t *testing.T) {
	pkg, err := testLoader(t).LoadDir(filepath.Join("..", "hdc"))
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "hdc" {
		t.Fatalf("want package hdc, got %s", pkg.Types.Name())
	}
	if pkg.Path != "reghd/internal/hdc" {
		t.Fatalf("want module-relative import path, got %s", pkg.Path)
	}
}

func TestReadModulePath(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"go.mod": "// a comment\nmodule example.com/m\n\ngo 1.22\n",
	})
	mp, err := readModulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		t.Fatal(err)
	}
	if mp != "example.com/m" {
		t.Fatalf("want example.com/m, got %q", mp)
	}
	if _, err := readModulePath(filepath.Join(dir, "missing.mod")); err == nil {
		t.Fatal("want error for missing go.mod")
	}
	bad := writeFiles(t, map[string]string{"go.mod": "go 1.22\n"})
	if _, err := readModulePath(filepath.Join(bad, "go.mod")); err == nil {
		t.Fatal("want error for go.mod without module line")
	}
}
