package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape enforces the pooled-scratch hygiene that keeps concurrent
// Predict race-free and allocation-free: a value drawn from a sync.Pool is
// borrowed for exactly one call. It must go back with Put on every return
// path (in practice: `defer put(v)` immediately after the get), and it must
// never outlive the call by being returned or parked in a struct field —
// the pool will hand the same object to another goroutine.
//
// The repo wraps its pools in tiny accessor pairs (scratchPool.get/put,
// Nonlinear.getBuf/putBuf), so the analyzer classifies functions first:
//
//   - a getter is an unexported function that hands a pool-obtained value
//     to its caller (its returns are the pool plumbing, not an escape);
//     calls to getters are tracked exactly like direct Pool.Get calls, so
//     the borrow is checked at every call site;
//   - a putter is a function that calls Pool.Put on one of its own
//     parameters; calls to putters count as puts.
//
// For every other function, each tracked get must be balanced: no Put at
// all is flagged, a return statement between the get and the first
// put/defer-put is flagged as a leaking early return, returning the value
// from an exported function is flagged as an escape, and storing the value
// in a struct field is flagged as an escape. The between-get-and-put check
// is positional, not path-sensitive — by design: the accepted repo idiom is
// `v := get(); defer put(v)` with nothing in between, and anything cleverer
// should be rewritten, not proven safe.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "require sync.Pool-obtained values to be Put on every return path and never escape the call",
	Run:  runPoolEscape,
}

// isPoolMethodCall reports whether call is x.Get() or x.Put(...) with x a
// sync.Pool.
func isPoolMethodCall(info *types.Info, call *ast.CallExpr, name string) bool {
	se, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || se.Sel.Name != name {
		return false
	}
	return isNamedPath(info.TypeOf(se.X), "sync", "Pool")
}

// unwrapGetCall peels parens, type assertions, and derefs off an expression
// and returns the underlying call, e.g. `*(p.Get().(*T))` -> `p.Get()`.
func unwrapGetCall(e ast.Expr) *ast.CallExpr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.CallExpr:
			return v
		default:
			return nil
		}
	}
}

// poolFuncs is the per-package classification of pool accessor functions.
type poolFuncs struct {
	getters map[*types.Func]bool
	putters map[*types.Func]bool
}

// isGetCall reports whether call obtains a value from a pool, directly or
// through a getter.
func (pf *poolFuncs) isGetCall(info *types.Info, call *ast.CallExpr) bool {
	if isPoolMethodCall(info, call, "Get") {
		return true
	}
	fn := calleeFunc(info, call)
	return fn != nil && pf.getters[fn]
}

// isPutCall reports whether call returns v to a pool, directly or through a
// putter.
func (pf *poolFuncs) isPutCall(info *types.Info, call *ast.CallExpr, v types.Object) bool {
	if isPoolMethodCall(info, call, "Put") || pf.putters[calleeFunc(info, call)] {
		for _, arg := range call.Args {
			if usesObject(info, arg, v) {
				return true
			}
		}
	}
	return false
}

func runPoolEscape(pass *Pass) {
	info := pass.Pkg.Info
	pf := classifyPoolFuncs(pass)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := info.Defs[fn.Name].(*types.Func); ok && (pf.getters[obj] || pf.putters[obj]) {
				continue
			}
			checkPoolFunc(pass, pf, fn)
		}
	}
}

// classifyPoolFuncs finds the package's getter and putter wrappers.
func classifyPoolFuncs(pass *Pass) *poolFuncs {
	info := pass.Pkg.Info
	pf := &poolFuncs{getters: make(map[*types.Func]bool), putters: make(map[*types.Func]bool)}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			if isPutterDecl(info, fn) {
				pf.putters[obj] = true
			}
			if !fn.Name.IsExported() && isGetterDecl(info, fn) {
				pf.getters[obj] = true
			}
		}
	}
	return pf
}

// isPutterDecl reports whether fn calls sync.Pool.Put on one of its own
// parameters.
func isPutterDecl(info *types.Info, fn *ast.FuncDecl) bool {
	params := paramObjects(info, fn)
	if len(params) == 0 {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolMethodCall(info, call, "Put") {
			return !found
		}
		for _, arg := range call.Args {
			for _, p := range params {
				if usesObject(info, arg, p) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isGetterDecl reports whether fn hands a pool-obtained value to its caller:
// some return statement contains either a direct Pool.Get call or a variable
// bound from one, and the function never Puts that variable back.
func isGetterDecl(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil || len(fn.Type.Results.List) == 0 {
		return false
	}
	getVars := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call := unwrapGetCall(as.Rhs[0])
		if call == nil || !isPoolMethodCall(info, call, "Get") {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := identObject(info, id); obj != nil {
					getVars[obj] = true
				}
			}
		}
		return true
	})
	returnsPooled := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return !returnsPooled
		}
		for _, res := range ret.Results {
			if call := unwrapGetCall(res); call != nil && isPoolMethodCall(info, call, "Get") {
				returnsPooled = true
			}
			for obj := range getVars {
				if usesObject(info, res, obj) {
					returnsPooled = true
				}
			}
		}
		return !returnsPooled
	})
	if !returnsPooled {
		return false
	}
	// A function that Puts a get-bound variable back is using the pool, not
	// providing from it.
	for obj := range getVars {
		puts, _ := findPuts(info, &poolFuncs{putters: map[*types.Func]bool{}}, fn.Body, obj)
		if len(puts) > 0 {
			return false
		}
	}
	return true
}

// paramObjects resolves fn's parameter objects.
func paramObjects(info *types.Info, fn *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// trackedGet is one pool borrow inside a checked function.
type trackedGet struct {
	obj types.Object
	pos token.Pos
}

// checkPoolFunc verifies the get/put balance and escape rules inside one
// ordinary (non-wrapper) function.
func checkPoolFunc(pass *Pass, pf *poolFuncs, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	var gets []trackedGet
	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !pf.isGetCall(info, call) {
			return
		}
		// A get must be bound to a local: v := pool.Get().(*T).
		if obj := getBinding(info, call, stack); obj != nil {
			gets = append(gets, trackedGet{obj: obj, pos: call.Pos()})
			return
		}
		if _, ok := enclosingStmt(stack).(*ast.ReturnStmt); ok {
			pass.Reportf(call.Pos(), "pool-obtained value escapes via return: the pool may hand it to another goroutine while the caller still uses it")
			return
		}
		pass.Reportf(call.Pos(), "bind the pool-obtained value to a local and defer its Put; using it inline loses the only handle that can return it")
	})
	for _, g := range gets {
		checkTrackedGet(pass, pf, fn, g)
	}
}

// getBinding returns the object a get call is bound to when its enclosing
// statement is `v := <get>` (through parens/assert/deref), else nil.
func getBinding(info *types.Info, call *ast.CallExpr, stack []ast.Node) types.Object {
	as, ok := enclosingStmt(stack).(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 || unwrapGetCall(as.Rhs[0]) != call {
		return nil
	}
	if len(as.Lhs) == 0 {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return identObject(info, id)
}

// enclosingStmt returns the innermost statement on the stack.
func enclosingStmt(stack []ast.Node) ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if st, ok := stack[i].(ast.Stmt); ok {
			return st
		}
	}
	return nil
}

// findPuts locates every put of v inside body, returning their positions
// and the position of the first put or defer-put (the guard position).
func findPuts(info *types.Info, pf *poolFuncs, body *ast.BlockStmt, v types.Object) (puts []token.Pos, guard token.Pos) {
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !pf.isPutCall(info, call, v) {
			return
		}
		pos := call.Pos()
		if _, ok := enclosingStmt(stack).(*ast.DeferStmt); ok {
			// The defer guards from its own statement position onward.
			pos = stack[len(stack)-1].Pos()
		}
		puts = append(puts, pos)
		if guard == token.NoPos || pos < guard {
			guard = pos
		}
	})
	return puts, guard
}

// checkTrackedGet enforces the borrow rules for one get.
func checkTrackedGet(pass *Pass, pf *poolFuncs, fn *ast.FuncDecl, g trackedGet) {
	info := pass.Pkg.Info
	puts, guard := findPuts(info, pf, fn.Body, g.obj)
	if len(puts) == 0 {
		pass.Reportf(g.pos, "%s is obtained from a pool but never returned with Put; the pool refills by allocating and the scratch reuse is lost", g.obj.Name())
	} else {
		// Any return between the get and the first put/defer-put leaks the
		// value on that path.
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if ok && g.pos < ret.Pos() && ret.Pos() < guard {
				pass.Reportf(ret.Pos(), "return path between the Get of %s and its Put skips the Put; defer the Put immediately after the Get", g.obj.Name())
			}
			return true
		})
	}
	// Escapes: returning the value, or parking it in a struct field.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if escapeRef(info, res, g.obj) {
					pass.Reportf(res.Pos(), "pool-obtained %s escapes via return; the pool may hand it to another goroutine while the caller still uses it", g.obj.Name())
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if !escapeRef(info, rhs, g.obj) || i >= len(st.Lhs) {
					continue
				}
				if se := selectorBase(st.Lhs[i]); se != nil {
					if sel := info.Selections[se]; sel != nil && sel.Kind() == types.FieldVal {
						pass.Reportf(rhs.Pos(), "pool-obtained %s is stored in a struct field and outlives the call; pooled scratch must stay call-local", g.obj.Name())
					}
				}
			}
		}
		return true
	})
}

// escapeRef reports whether e is (an address of) exactly the tracked
// object, after peeling parens — the direct hand-off forms `v` and `&v`.
func escapeRef(info *types.Info, e ast.Expr, v types.Object) bool {
	e = unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = unparen(ue.X)
	}
	id, ok := e.(*ast.Ident)
	return ok && info.Uses[id] == v
}
