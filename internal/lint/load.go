package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	gopath "path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully loaded, type-checked package: the parsed files (with
// comments, so directive and golden-comment scanning work), the type-checked
// *types.Package, and the types.Info side tables the analyzers query.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages using only the standard library:
// go/build selects files under the active build constraints, go/parser reads
// them, and go/types checks them against dependencies that the Loader itself
// resolves recursively from source. Resolution order for an import path is
// the module (via the go.mod module path), the optional FixtureRoot (a
// GOPATH/src-style tree used by the golden tests), GOROOT/src, and
// GOROOT/src/vendor (the stdlib's vendored golang.org/x dependencies).
//
// Dependencies are type-checked with IgnoreFuncBodies for speed — analyzers
// only need their exported API — and cached for the Loader's lifetime, so
// linting ./... pays for the stdlib closure once. A Loader is not safe for
// concurrent use.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	// FixtureRoot, when non-empty, is a directory whose subdirectories
	// resolve import paths directly (FixtureRoot/<path>), letting test
	// fixtures under testdata/src import each other.
	FixtureRoot string

	ctxt    build.Context
	sizes   types.Sizes
	deps    map[string]*depResult
	loading map[string]bool
}

type depResult struct {
	pkg *types.Package
	err error
}

// NewLoader builds a Loader rooted at the module directory containing
// go.mod. Cgo is disabled so go/build selects the pure-Go variant of every
// stdlib package, which keeps source type-checking self-contained.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, fmt.Errorf("lint: resolving module dir: %w", err)
	}
	mp, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false
	sizes := types.SizesFor(ctxt.Compiler, ctxt.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		ModulePath: mp,
		ModuleDir:  abs,
		ctxt:       ctxt,
		sizes:      sizes,
		deps:       make(map[string]*depResult),
		loading:    make(map[string]bool),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if rest != "" {
				return strings.Trim(rest, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// LoadDir parses and type-checks the package in dir for analysis: full
// function bodies, comments, and a populated types.Info. Parse and type
// errors abort the load with an error that lists every problem.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: resolving %s: %w", dir, err)
	}
	bp, err := l.ctxt.ImportDir(abs, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: scanning %s: %w", abs, err)
	}
	files, perrs := l.parseFiles(abs, bp.GoFiles, parser.ParseComments|parser.SkipObjectResolution)
	if len(perrs) > 0 {
		return nil, fmt.Errorf("lint: parsing %s:\n\t%s", abs, strings.Join(perrs, "\n\t"))
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var terrs []string
	conf := types.Config{
		Importer: l,
		Sizes:    l.sizes,
		Error:    func(err error) { terrs = append(terrs, err.Error()) },
	}
	tpkg, _ := conf.Check(l.dirImportPath(abs), l.Fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s:\n\t%s", abs, strings.Join(terrs, "\n\t"))
	}
	return &Package{
		Path:  tpkg.Path(),
		Dir:   abs,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// parseFiles parses the named files in dir, returning the parsed files and
// the accumulated error strings.
func (l *Loader) parseFiles(dir string, names []string, mode parser.Mode) ([]*ast.File, []string) {
	sort.Strings(names)
	var files []*ast.File
	var errs []string
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		files = append(files, f)
	}
	return files, errs
}

// dirImportPath derives the import path for a directory: module-relative
// when under the module, fixture-relative when under FixtureRoot, and the
// slashed directory itself otherwise (the path only labels diagnostics; it
// does not need to be importable).
func (l *Loader) dirImportPath(dir string) string {
	if rel, err := filepath.Rel(l.ModuleDir, dir); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		if rel == "." {
			return l.ModulePath
		}
		return gopath.Join(l.ModulePath, filepath.ToSlash(rel))
	}
	if l.FixtureRoot != "" {
		if rel, err := filepath.Rel(l.FixtureRoot, dir); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) && rel != "." {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(dir)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: it resolves path to a source
// directory, type-checks it (bodies ignored), caches it, and returns it.
func (l *Loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if r, ok := l.deps[path]; ok {
		return r.pkg, r.err
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	pkg, err := l.loadDep(path)
	l.deps[path] = &depResult{pkg: pkg, err: err}
	return pkg, err
}

// loadDep type-checks the package at import path from source, skipping
// function bodies.
func (l *Loader) loadDep(path string) (*types.Package, error) {
	dir, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("scanning %q (%s): %w", path, dir, err)
	}
	files, perrs := l.parseFiles(dir, bp.GoFiles, parser.SkipObjectResolution)
	if len(perrs) > 0 {
		return nil, fmt.Errorf("parsing %q: %s", path, strings.Join(perrs, "; "))
	}
	var terrs []string
	conf := types.Config{
		Importer:         l,
		Sizes:            l.sizes,
		IgnoreFuncBodies: true,
		Error:            func(err error) { terrs = append(terrs, err.Error()) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, nil)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("type-checking %q: %s", path, strings.Join(terrs, "; "))
	}
	return pkg, nil
}

// resolve maps an import path to its source directory.
func (l *Loader) resolve(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	if l.FixtureRoot != "" {
		if dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path)); isDir(dir) {
			return dir, nil
		}
	}
	goroot := l.ctxt.GOROOT
	if dir := filepath.Join(goroot, "src", filepath.FromSlash(path)); isDir(dir) {
		return dir, nil
	}
	if dir := filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)); isDir(dir) {
		return dir, nil
	}
	return "", fmt.Errorf("cannot resolve import %q", path)
}

func isDir(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}
