package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrWrap enforces the repo's error discipline. The public API promises
// inspectable failures — ErrOverloaded, ErrInvalidInput, ErrNotTrained,
// ErrTenantUnknown are documented sentinels, PanicError is extracted with
// errors.As — and that promise only holds if every propagation layer wraps
// with %w and every comparison goes through errors.Is/As. A single %v at
// one layer, or one == against a sentinel that is wrapped two frames down,
// silently breaks every caller's error handling.
//
// Three rules:
//
//   - sentinel-compare (all packages): comparing two error-typed values
//     with == or != (nil checks excepted) breaks as soon as anything in
//     the chain wraps — use errors.Is (or errors.As for typed errors);
//   - unwrapped-cause (all packages): an fmt.Errorf whose arguments include
//     an error but whose format verbs do not include %w flattens the chain,
//     severing errors.Is/As for every caller above;
//   - discarded-error (package reghd only — the serving path): calling a
//     package-local function that returns an error as a bare statement
//     drops a serving-path failure on the floor. An explicit `_ =`
//     assignment is allowed: it is a visible, greppable decision. Deferred
//     calls are allowed for the same reason best-effort cleanup is
//     idiomatic. External callees (fmt.Fprintf to a strings.Builder, ...)
//     are out of scope: the rule guards reghd's own failure modes.
//
// Intentional violations carry //lint:ignore errwrap <reason>.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "require %w wrapping, errors.Is/As for sentinels, and no dropped serving-path errors",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	servingPath := pass.Pkg.Types.Name() == "reghd"
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, v)
			case *ast.CallExpr:
				checkErrorfWrap(pass, v)
			case *ast.ExprStmt:
				if servingPath {
					checkDiscardedError(pass, v)
				}
			}
			return true
		})
	}
}

// isErrorType reports whether t is the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// checkSentinelCompare flags ==/!= between two error-typed operands.
func checkSentinelCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	info := pass.Pkg.Info
	if isNilLiteral(info, be.X) || isNilLiteral(info, be.Y) {
		return
	}
	if isErrorType(info.TypeOf(be.X)) && isErrorType(info.TypeOf(be.Y)) {
		pass.Reportf(be.OpPos, "error compared with %s: breaks as soon as any layer wraps with %%w — use errors.Is (or errors.As for typed errors)", be.Op)
	}
}

// isNilLiteral reports whether e is the predeclared nil.
func isNilLiteral(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[unparen(e)]
	return ok && tv.IsNil()
}

// checkErrorfWrap flags fmt.Errorf calls that take an error argument but
// whose (constant) format string has no %w verb.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	callee := calleeFunc(info, call)
	if callee == nil || callee.Name() != "Errorf" || callee.Pkg() == nil || callee.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorType(info.TypeOf(arg)) {
			pass.Reportf(call.Pos(), "fmt.Errorf formats an error cause without %%w: the chain is flattened and errors.Is/As stop working above this frame — wrap with %%w")
			return
		}
	}
}

// checkDiscardedError flags bare statement calls to package-local functions
// that return an error.
func checkDiscardedError(pass *Pass, stmt *ast.ExprStmt) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	info := pass.Pkg.Info
	callee := calleeFunc(info, call)
	if callee == nil || callee.Pkg() != pass.Pkg.Types {
		return
	}
	if !resultIncludesError(info.TypeOf(call)) {
		return
	}
	pass.Reportf(stmt.Pos(), "serving-path error from %s discarded: handle it, or make the drop explicit with `_ = %s(...)`", callee.Name(), callee.Name())
}

// resultIncludesError reports whether a call's result type is or contains an
// error.
func resultIncludesError(t types.Type) bool {
	if isErrorType(t) {
		return true
	}
	tup, ok := t.(*types.Tuple)
	if !ok {
		return false
	}
	for i := 0; i < tup.Len(); i++ {
		if isErrorType(tup.At(i).Type()) {
			return true
		}
	}
	return false
}
