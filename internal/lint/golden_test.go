package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// The golden tests load fixture packages under testdata/src and compare the
// suite's diagnostics against // want comments in the fixtures:
//
//	s.counter++ // want `write to Snapshot field counter`
//
// expects a diagnostic on that line whose message matches the backquoted
// regexp. The variant
//
//	// want+2 `needs a written reason`
//
// expects the diagnostic N lines below — used when the flagged line is
// itself a comment (a malformed //lint: directive) and cannot carry a second
// comment. Every diagnostic must be covered by a want and every want must
// match a diagnostic.

// testLoader returns a Loader rooted at the repository module with the
// fixture tree mounted as FixtureRoot so fixtures can import each other.
func testLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l.FixtureRoot = fr
	return l
}

// want is one expectation parsed from a // want comment.
type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("^// want(\\+[0-9]+)?[ \t]+`([^`]*)`$")

// collectWants parses the fixture's // want comments into file -> line ->
// expectations.
func collectWants(t *testing.T, pkg *Package) map[string]map[int][]*want {
	t.Helper()
	wants := make(map[string]map[int][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					off, err := strconv.Atoi(m[1][1:])
					if err != nil {
						t.Fatalf("%s: bad want offset %q: %v", pos, m[1], err)
					}
					line += off
				}
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, m[2], err)
				}
				byLine := wants[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*want)
					wants[pos.Filename] = byLine
				}
				byLine[line] = append(byLine[line], &want{re: re})
			}
		}
	}
	return wants
}

// runGolden loads each fixture package and checks the given analyzers'
// diagnostics (plus directive problems, which RunAnalyzers always emits)
// against the fixture's // want comments.
func runGolden(t *testing.T, analyzers []*Analyzer, fixtures ...string) {
	t.Helper()
	l := testLoader(t)
	for _, fx := range fixtures {
		pkg, err := l.LoadDir(filepath.Join("testdata", "src", fx))
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fx, err)
		}
		wants := collectWants(t, pkg)
		for _, d := range RunAnalyzers(pkg, analyzers) {
			matched := false
			for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
				if w.re.MatchString(d.Message) {
					w.matched = true
					matched = true
				}
			}
			if !matched {
				t.Errorf("unexpected diagnostic: %s", d)
			}
		}
		for file, byLine := range wants {
			for line, ws := range byLine {
				for _, w := range ws {
					if !w.matched {
						t.Errorf("%s:%d: want `%s` matched no diagnostic", file, line, w.re)
					}
				}
			}
		}
	}
}

func TestSnapshotMutGolden(t *testing.T) {
	runGolden(t, []*Analyzer{SnapshotMut}, "core", "snapuser")
}

func TestPoolEscapeGolden(t *testing.T) {
	runGolden(t, []*Analyzer{PoolEscape}, "poolfix")
}

func TestCounterChargeGolden(t *testing.T) {
	runGolden(t, []*Analyzer{CounterCharge}, "hdc")
}

func TestAtomicMixGolden(t *testing.T) {
	runGolden(t, []*Analyzer{AtomicMix}, "atomicfix")
}

func TestFloatCmpGolden(t *testing.T) {
	runGolden(t, []*Analyzer{FloatCmp}, "floatfix")
}

func TestDetOrderGolden(t *testing.T) {
	runGolden(t, []*Analyzer{DetOrder}, "detfix")
}

func TestCtxFlowGolden(t *testing.T) {
	runGolden(t, []*Analyzer{CtxFlow}, "ctxfix")
}

func TestGoroLeakGolden(t *testing.T) {
	runGolden(t, []*Analyzer{GoroLeak}, "gorofix")
}

func TestErrWrapGolden(t *testing.T) {
	runGolden(t, []*Analyzer{ErrWrap}, "errfix")
}

// runAuditGolden is runGolden for the stale-suppression audit: the checked
// diagnostics come from AuditIgnores over the full suite instead of from
// RunAnalyzers.
func runAuditGolden(t *testing.T, fixtures ...string) {
	t.Helper()
	l := testLoader(t)
	for _, fx := range fixtures {
		pkg, err := l.LoadDir(filepath.Join("testdata", "src", fx))
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fx, err)
		}
		wants := collectWants(t, pkg)
		for _, d := range AuditIgnores(pkg, All()) {
			matched := false
			for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
				if w.re.MatchString(d.Message) {
					w.matched = true
					matched = true
				}
			}
			if !matched {
				t.Errorf("unexpected audit diagnostic: %s", d)
			}
		}
		for file, byLine := range wants {
			for line, ws := range byLine {
				for _, w := range ws {
					if !w.matched {
						t.Errorf("%s:%d: want `%s` matched no audit diagnostic", file, line, w.re)
					}
				}
			}
		}
	}
}

func TestAuditGolden(t *testing.T) {
	runAuditGolden(t, "auditfix")
}

// TestDirectiveProblemsGolden runs no analyzers at all: the diagnostics come
// purely from the directive parser.
func TestDirectiveProblemsGolden(t *testing.T) {
	runGolden(t, nil, "directive")
}

// TestCleanFixture pins the clean fixture used by the reghd-lint command
// tests: the full suite must report nothing on it.
func TestCleanFixture(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "clean"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers(pkg, All()); len(diags) != 0 {
		t.Fatalf("clean fixture produced diagnostics: %v", diags)
	}
}
