package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak requires every goroutine in non-test code to be tied to a
// shutdown mechanism. The serving stack is built to be embedded — engines
// are Closed, coalescers Disabled, registries Evicted — and an untied
// goroutine (a ticker loop, a forgotten worker) outlives the component that
// spawned it, holds its memory reachable, and keeps doing work against a
// torn-down engine. Every long-lived goroutine in the repo follows one of a
// small set of shapes (coalescer flush loop selecting on its stopped
// channel, FitParallel workers signalling a WaitGroup), and this analyzer
// pins that discipline.
//
// Mechanically, for each `go` statement the analyzer searches the spawned
// body — a function literal's body, or the declaration of a package-local
// function or method, expanded transitively through package-local calls —
// for shutdown evidence:
//
//   - a select statement (the idiomatic done-channel / ctx.Done() loop);
//   - a unary channel receive <-ch (blocking on a stop/done channel);
//   - ranging over a channel held in a variable or field (the sender closes
//     it to stop the loop). Ranging over a channel returned by a direct
//     call — `for range time.Tick(...)` — is NOT evidence: nobody holds
//     that channel, so nobody can ever stop the loop;
//   - a ctx.Done() or ctx.Err() call (cancellation-checked loops);
//   - a (*sync.WaitGroup).Done call (the goroutine signals a waiter that
//     holds its lifetime).
//
// Goroutines whose body the analyzer cannot see — external callees, calls
// through function values — are flagged: an invisible lifetime is reviewed
// and annotated, not assumed. Intentional process-lifetime goroutines
// (demo traffic generators) carry //lint:ignore goroleak <reason>.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "tie every goroutine to a shutdown mechanism (select, done channel, WaitGroup)",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	g := buildCallGraph(pass.Pkg)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					checkGoStmt(pass, g, gs)
				}
				return true
			})
		}
	}
}

// checkGoStmt verifies one `go` statement against the shutdown-evidence
// rules.
func checkGoStmt(pass *Pass, g *callGraph, gs *ast.GoStmt) {
	info := pass.Pkg.Info
	var roots []types.Object
	switch fun := unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		if hasShutdownEvidence(info, fun.Body) {
			return
		}
		roots = localCallees(pass.Pkg, fun.Body)
	default:
		callee := calleeFunc(info, gs.Call)
		if callee == nil {
			pass.Reportf(gs.Pos(), "goroutine spawned through a function value: the analyzer cannot see its body to verify a shutdown tie — spawn a named function or annotate //lint:ignore goroleak <reason>")
			return
		}
		if callee.Pkg() != pass.Pkg.Types {
			pass.Reportf(gs.Pos(), "goroutine spawns external %s.%s: the analyzer cannot see its body to verify a shutdown tie — wrap it in a local function with one, or annotate //lint:ignore goroleak <reason>", callee.Pkg().Name(), callee.Name())
			return
		}
		roots = []types.Object{callee}
	}
	for obj := range g.reachable(roots) {
		if d, ok := g.decls[obj]; ok && hasShutdownEvidence(info, d.Body) {
			return
		}
	}
	pass.Reportf(gs.Pos(), "goroutine has no shutdown tie: no select, done-channel receive, ctx.Done/Err check, or WaitGroup.Done is reachable from its body — tie it to its owner's lifetime or annotate //lint:ignore goroleak <reason>")
}

// localCallees collects the package-local functions and methods called
// (directly) anywhere under root.
func localCallees(pkg *Package, root ast.Node) []types.Object {
	var out []types.Object
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := calleeFunc(pkg.Info, call); callee != nil && callee.Pkg() == pkg.Types {
			out = append(out, callee)
		}
		return true
	})
	return out
}

// hasShutdownEvidence reports whether the body contains any of the
// shutdown-evidence shapes.
func hasShutdownEvidence(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if _, direct := unparen(v.X).(*ast.CallExpr); !direct {
						found = true
					}
				}
			}
		case *ast.CallExpr:
			if se, ok := unparen(v.Fun).(*ast.SelectorExpr); ok {
				recv := info.TypeOf(se.X)
				switch se.Sel.Name {
				case "Done":
					if isContextType(recv) || isNamedPath(recv, "sync", "WaitGroup") {
						found = true
					}
				case "Err":
					if isContextType(recv) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
