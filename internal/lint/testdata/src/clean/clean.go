// Package clean is a fixture with nothing to report; the reghd-lint command
// tests use it to assert the zero exit status.
package clean

// Add adds two integers.
func Add(a, b int) int { return a + b }
