// Package poolfix exercises the poolescape analyzer: getter/putter wrapper
// classification, the balanced get/defer-put idiom, missing puts, leaking
// early returns, and the two escape forms (return and struct-field store).
package poolfix

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 64); return &b }}

// getBuf is a getter wrapper: it hands the pool value to its caller.
func getBuf() []byte {
	v := bufPool.Get()
	return *(v.(*[]byte))
}

// putBuf is a putter wrapper.
func putBuf(b []byte) {
	bufPool.Put(&b)
}

// use consumes a buffer.
func use(b []byte) { _ = b }

// UseBalanced is the approved idiom: get, defer put, use.
func UseBalanced() int {
	b := getBuf()
	defer putBuf(b)
	return len(b)
}

// LeakNoPut never returns the buffer to the pool.
func LeakNoPut() int {
	b := getBuf() // want `obtained from a pool but never returned with Put`
	return len(b)
}

// LeakEarlyReturn has a return path that skips the Put.
func LeakEarlyReturn(skip bool) int {
	b := getBuf()
	if skip {
		return 0 // want `return path between the Get`
	}
	putBuf(b)
	return len(b)
}

// EscapeReturn hands the pooled buffer to the caller from an exported
// function, so the pool may recycle it while the caller still uses it.
func EscapeReturn() []byte {
	b := getBuf() // want `obtained from a pool but never returned with Put`
	return b      // want `escapes via return`
}

type holder struct{ buf []byte }

// EscapeField parks the pooled buffer in a struct field.
func EscapeField(h *holder) {
	b := getBuf()
	defer putBuf(b)
	h.buf = b // want `stored in a struct field`
}

// EscapeInline returns the raw pool value without ever binding it.
func EscapeInline() *[]byte {
	return bufPool.Get().(*[]byte) // want `escapes via return`
}

// UseInline loses the only handle that could return the value.
func UseInline() {
	use(*(bufPool.Get().(*[]byte))) // want `bind the pool-obtained value`
}
