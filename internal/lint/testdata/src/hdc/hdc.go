// Package hdc mirrors the real hdc package's accounting types for the
// countercharge golden test: the analyzer keys off the package name and the
// Counter/AtomicCounter type names.
package hdc

// Op is an accounted operation class.
type Op int

// Counter accumulates op counts; its methods are accounting machinery and
// are exempt from the kernel rules.
type Counter struct{ counts [4]uint64 }

// Add charges n ops of class op.
func (c *Counter) Add(op Op, n uint64) { c.counts[op] += n }

// Total sums the counts (a loop on the accounting type itself is fine).
func (c *Counter) Total() uint64 {
	var t uint64
	for _, n := range c.counts {
		t += n
	}
	return t
}

// AtomicCounter is the concurrent flavor.
type AtomicCounter struct{ counts [4]uint64 }

// AddInt charges n integer ops.
func (a *AtomicCounter) AddInt(n uint64) { a.counts[0] += n }

// Dot charges the counter per element: the canonical kernel shape.
func Dot(c *Counter, a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	c.Add(0, uint64(len(a)))
	return s
}

// Cosine delegates its accounting to Dot by forwarding the counter.
func Cosine(c *Counter, a, b []float64) float64 {
	return Dot(c, a, b) / 2
}

// Norm takes a counter but forgets to charge it.
func Norm(c *Counter, a []float64) float64 { // want `takes a \*hdc.Counter but never charges it`
	var s float64
	for _, v := range a {
		s += v * v
	}
	_ = c
	return s
}

// Sum loops over data with no counter at all.
func Sum(a []float64) float64 { // want `loops over data without`
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}

// Dim is a constant-time accessor; no loop, no counter needed.
func Dim(a []float64) int { return len(a) }

// Fill is initialization scratch work with a documented exemption.
//
//lint:nocount initialization helper, off the counted path
func Fill(a []float64, v float64) {
	for i := range a {
		a[i] = v
	}
}

// Drain spins without charging, and its annotation gives no reason.
// want+2 `needs a written reason`
//
//lint:nocount
func Drain(a []float64) {
	for range a {
		_ = a
	}
}
