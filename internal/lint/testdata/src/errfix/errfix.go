// Package reghd (the errfix fixture) exercises the errwrap analyzer; the
// package is named reghd so the serving-path discarded-error rule is
// active.
package reghd

import (
	"errors"
	"fmt"
)

// ErrOverloaded mirrors the real sentinel shape.
var ErrOverloaded = errors.New("overloaded")

func emit() error { return nil }

func emitPair() (int, error) { return 0, nil }

// Compare exercises the sentinel-comparison rule.
func Compare(err error) bool {
	if err == ErrOverloaded { // want `error compared with ==`
		return true
	}
	if err != ErrOverloaded { // want `error compared with !=`
		return false
	}
	if err != nil { // nil checks are fine
		return false
	}
	return errors.Is(err, ErrOverloaded)
}

// Wrap exercises the %w rule.
func Wrap(err error, name string) error {
	if err != nil {
		return fmt.Errorf("load %s: %v", name, err) // want `fmt.Errorf formats an error cause without %w`
	}
	_ = fmt.Errorf("load %s: %w", name, err)
	return fmt.Errorf("no cause for %s here", name)
}

// Discard exercises the serving-path discarded-error rule.
func Discard() {
	emit()     // want `serving-path error from emit discarded`
	emitPair() // want `serving-path error from emitPair discarded`
	_ = emit() // explicit discard: allowed
	if err := emit(); err != nil {
		_ = err
	}
	defer emit() // deferred best-effort cleanup: allowed
	fmt.Println("external callees are out of scope")
}
