// Package floatfix exercises the floatcmp analyzer: exact float equality is
// flagged, while int comparisons, constant-constant comparisons, approved
// epsilon helpers, and annotated sentinels pass.
package floatfix

const eps = 1e-9

// Bad compares floats exactly.
func Bad(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

// BadNeq compares floats for exact inequality.
func BadNeq(a, b float64) bool {
	return a != b // want `floating-point != comparison`
}

// Ints compares integers, which is always exact.
func Ints(a, b int) bool { return a == b }

// Consts compares compile-time constants: exact by definition.
func Consts() bool { return eps == 1e-9 }

// approxEqual is an approved epsilon helper whose exact fast path is allowed.
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// Sentinel documents an intentional exact comparison.
func Sentinel(x float64) bool {
	//lint:ignore floatcmp exact-zero sentinel by contract
	return x == 0
}
