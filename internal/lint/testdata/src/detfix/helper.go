package core

// shuffle is declared outside the root files but called from Merge, so the
// determinism rules reach it.
func shuffle(xs []float64) {
	seen := map[int]bool{1: true}
	for i := range seen { // want `map iteration in shuffle`
		_ = i
	}
	_ = xs
}

// Orphan is not reachable from any determinism root: map iteration is fine
// here.
func Orphan(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
