package core

import "time"

// SplitShards is a determinism root (declared in fitparallel.go).
func SplitShards(n int) int64 {
	_ = n
	return time.Now().Unix() // want `time.Now in SplitShards`
}
