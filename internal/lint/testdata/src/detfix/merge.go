// Package core (the detfix fixture) exercises the detorder analyzer:
// functions declared in merge.go, serialize.go, or fitparallel.go are
// determinism roots, and the rules apply to everything reachable from them
// through package-local calls.
package core

import (
	"math/rand"
	"time"
)

// Merge is a determinism root (declared in merge.go): map iteration here
// randomizes the fold order.
func Merge(deltas map[string][]float64) []float64 {
	var out []float64
	for _, d := range deltas { // want `map iteration in Merge`
		out = append(out, d...)
	}
	shuffle(out)
	return out
}

// Stamp reads the wall clock inside the determinism set.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in Stamp`
}

// Elapsed is annotated wall-clock telemetry: suppressed, no diagnostic.
func Elapsed(t0 time.Time) time.Duration {
	//lint:nondeterm wall-clock telemetry, never feeds merged state
	return time.Since(t0)
}

// Seeded draws from an explicitly seeded generator: allowed.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Global draws from the process-global, unseeded source.
func Global() float64 {
	return rand.Float64() // want `rand.Float64 in Global draws from the process-global`
}
