// Package atomicfix exercises the atomicmix analyzer: mixed plain/atomic
// access to the same word, value-copies of declared atomic types, and the
// allowed forms (method calls, address-takes, pointer hand-offs).
package atomicfix

import "sync/atomic"

type server struct {
	hits  uint64
	state atomic.Uint64
}

// bump is the sanctioned atomic access that puts hits in the atomic domain.
func (s *server) bump() {
	atomic.AddUint64(&s.hits, 1)
}

// read races with bump.
func (s *server) read() uint64 {
	return s.hits // want `accessed via sync/atomic`
}

// reset races with bump too.
func (s *server) reset() {
	s.hits = 0 // want `plain access races`
}

// readRelaxed documents a construction-phase read before sharing.
func (s *server) readRelaxed() uint64 {
	//lint:ignore atomicmix construction-phase read before the server is shared
	return s.hits
}

// store drives the declared atomic type through its methods: fine.
func (s *server) store(v uint64) {
	s.state.Store(v)
}

// copyState copies the atomic value out of its synchronization domain.
func (s *server) copyState() atomic.Uint64 {
	return s.state // want `declared atomic type`
}

// share hands out a pointer to the atomic, which is fine.
func (s *server) share() *atomic.Uint64 {
	return &s.state
}

var slots [4]atomic.Int64

// drainSlots ranges by value, copying every atomic element.
func drainSlots() int64 {
	var total int64
	for _, s := range slots { // want `range value copies`
		total += s.Load()
	}
	return total
}

// sumSlots ranges by index, which copies nothing.
func sumSlots() int64 {
	var total int64
	for i := range slots {
		total += slots[i].Load()
	}
	return total
}

// snapshotSlot copies an element out of the array.
func snapshotSlot() atomic.Int64 {
	v := slots[0]
	return v // want `declared atomic type`
}
