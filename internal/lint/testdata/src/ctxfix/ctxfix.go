// Package ctxfix exercises the ctxflow analyzer: request-path functions
// must thread their context.Context instead of detaching or dropping it.
package ctxfix

import "context"

// Engine mirrors the real serving type's Predict/PredictCtx pairing.
type Engine struct{}

// Predict is the ctx-less convenience wrapper: detaching here is the
// sanctioned batch-boundary shape (no context parameter), so calling
// context.Background is allowed.
func (e *Engine) Predict(x float64) float64 {
	return e.PredictCtx(context.Background(), x)
}

// PredictCtx threads its context properly: clean.
func (e *Engine) PredictCtx(ctx context.Context, x float64) float64 {
	if ctx.Err() != nil {
		return 0
	}
	return x
}

// Route has a request context but detaches from it mid-path.
func Route(ctx context.Context, e *Engine, x float64) float64 {
	_ = ctx.Err()
	return e.PredictCtx(context.Background(), x) // want `context.Background inside Route`
}

// Fanout drops the context at a call boundary: Predict has a PredictCtx
// sibling on the same receiver type.
func Fanout(ctx context.Context, e *Engine, xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += e.Predict(x) // want `call to Predict drops the request context`
	}
	return s
}

// Store has no context-accepting sibling for Get, so calling Get from a
// ctx function is fine.
type Store struct{}

// Get is sibling-less.
func (s *Store) Get(k int) int { return k }

// LookupCtx uses its context and calls a sibling-less callee: clean.
func (s *Store) LookupCtx(ctx context.Context, k int) int {
	if ctx.Err() != nil {
		return 0
	}
	return s.Get(k)
}

// DrainCtx never touches its context parameter.
func (s *Store) DrainCtx(ctx context.Context, ks []int) { // want `DrainCtx never uses its context parameter`
	for _, k := range ks {
		_ = s.Get(k)
	}
}

// ScanCtx checks its context at admission but not per-iteration, so a
// cancelled request runs the whole batch.
func (s *Store) ScanCtx(ctx context.Context, ks []int) int {
	if ctx.Err() != nil {
		return 0
	}
	total := 0
	for _, k := range ks { // want `loop in exported ScanCtx never checks its context`
		total += s.Get(k)
	}
	return total
}

// SumCtx checks cancellation every iteration: clean.
func (s *Store) SumCtx(ctx context.Context, ks []int) int {
	total := 0
	for _, k := range ks {
		if ctx.Err() != nil {
			return total
		}
		total += s.Get(k)
	}
	return total
}

func fetch(k int) int { return k }

func fetchCtx(ctx context.Context, k int) int {
	if ctx.Err() != nil {
		return 0
	}
	return k
}

// Relay drops ctx by calling fetch when the package-level fetchCtx exists.
func Relay(ctx context.Context, k int) int {
	_ = ctx.Err()
	return fetch(k) // want `call to fetch drops the request context`
}
