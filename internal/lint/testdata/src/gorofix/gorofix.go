// Package gorofix exercises the goroleak analyzer: every goroutine must be
// tied to a shutdown mechanism the analyzer can see.
package gorofix

import (
	"context"
	"sync"
	"time"
)

type worker struct {
	stop chan struct{}
	jobs chan int
}

// run selects on the stop channel: the canonical tied loop.
func (w *worker) run() {
	for {
		select {
		case <-w.stop:
			return
		case j := <-w.jobs:
			_ = j
		}
	}
}

// spin loops forever with no way to stop it.
func (w *worker) spin() {
	for {
	}
}

// Start spawns one tied and one untied goroutine.
func Start(w *worker) {
	go w.run()
	go w.spin() // want `goroutine has no shutdown tie`
}

// Drain ranges over a held channel: the sender closes it to stop the loop.
func Drain(w *worker) {
	go func() {
		for j := range w.jobs {
			_ = j
		}
	}()
}

// Tick ranges over a channel returned by a direct call: nobody holds that
// channel, so nobody can ever stop the loop.
func Tick() {
	go func() { // want `goroutine has no shutdown tie`
		for range time.Tick(time.Second) {
		}
	}()
}

// Wait ties the goroutine to a WaitGroup held by the caller.
func Wait(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// Watch checks cancellation every iteration.
func Watch(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
		}
	}()
}

// External spawns a function whose body the analyzer cannot see.
func External(d time.Duration) {
	go time.Sleep(d) // want `goroutine spawns external time.Sleep`
}

// Indirect spawns through a function value: also invisible.
func Indirect(fn func()) {
	go fn() // want `goroutine spawned through a function value`
}

// Sanctioned is an annotated process-lifetime goroutine.
func Sanctioned(w *worker) {
	//lint:ignore goroleak fixture demo traffic runs for process lifetime
	go w.spin()
}

// Nested reaches run's select through a call inside the literal.
func Nested(w *worker) {
	go func() {
		w.run()
	}()
}
