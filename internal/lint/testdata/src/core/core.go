// Package core mirrors the real core package's snapshot types for the
// snapshotmut golden test: the analyzer matches by package name and type
// name, so this fixture exercises exactly the production rules.
package core

// params is the immutable-after-construction parameter block.
type params struct {
	dim   int
	scale float64
}

// Snapshot is a published, immutable view of a model.
type Snapshot struct {
	params
	counter int
	// Stages is exported so cross-package fixtures can attempt writes.
	Stages int
}

// NewSnapshot is a constructor: it returns a Snapshot, so its field writes
// are initialization of a private copy, not mutation of a published value.
func NewSnapshot(dim int) *Snapshot {
	s := &Snapshot{}
	s.dim = dim
	s.counter = 1
	return s
}

// Bump mutates a published snapshot.
func (s *Snapshot) Bump() {
	s.counter++ // want `write to Snapshot field counter`
}

// Rescale writes through the embedded params.
func (s *Snapshot) Rescale(f float64) {
	s.scale = f // want `write to Snapshot field scale`
}

// tune mutates a raw params value.
func tune(p *params, d int) {
	p.dim = d // want `write to params field dim`
}

// SetCounter is a pre-publication install hook with a documented exemption.
func (s *Snapshot) SetCounter(c int) {
	//lint:ignore snapshotmut install hook runs before the snapshot is published
	s.counter = c
}

// Dim reads are always fine.
func (s *Snapshot) Dim() int {
	return s.dim
}
