// Package hdc (the auditfix fixture) exercises the stale-suppression
// audit: //lint:ignore and //lint:nondeterm directives that suppress
// nothing, and //lint:nocount annotations countercharge would not enforce
// anyway, are themselves reported. The package is named hdc so the nocount
// arm of the audit is active.
package hdc

// Eps compares floats exactly by contract; the ignore below suppresses a
// live floatcmp diagnostic and is therefore not stale.
func Eps(x float64) bool {
	//lint:ignore floatcmp exact sentinel comparison by contract
	return x == 0.5
}

// Rotted carries an ignore that suppresses nothing.
// want+2 `stale //lint:ignore: no floatcmp diagnostic`
func Rotted(x float64) bool {
	//lint:ignore floatcmp nothing fires here
	return x > 0.5
}

// Timed carries a nondeterm annotation in a package where detorder never
// fires.
// want+2 `stale //lint:nondeterm: no detorder diagnostic`
func Timed(x float64) float64 {
	//lint:nondeterm rotted annotation
	return x
}

// Scale is constant-time: countercharge would not flag it, so its nocount
// annotation documents an exemption that does not exist.
// want+2 `stale //lint:nocount: countercharge would not flag Scale anyway`
//
//lint:nocount constant-time accessor
func Scale(x float64) float64 { return x * 2 }

// Sum loops without a counter: countercharge would flag it, so the nocount
// annotation is doing real work.
//
//lint:nocount fixture kernel, accounting out of scope
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
