// Package directive exercises the directive parser's error reporting:
// unknown and malformed //lint: directives are themselves diagnostics.
// want+2 `unknown directive`
//
//lint:frobnicate all the things
package directive

// Scale doubles x; its ignore directive is missing the reason.
// want+2 `needs an analyzer name and a reason`
//
//lint:ignore floatcmp
func Scale(x float64) float64 {
	return x * 2
}

// Shift is annotated correctly; a well-formed ignore is inert here because
// no analyzer fires on this line.
func Shift(x float64) float64 {
	//lint:ignore floatcmp documented and well-formed
	return x + 1
}
