// Package snapuser mutates core snapshots from outside the defining
// package, proving snapshotmut follows the type across package boundaries
// (and that the loader resolves fixture imports through FixtureRoot).
package snapuser

import "core"

// Tamper writes to a snapshot owned by another package.
func Tamper(s *core.Snapshot) {
	s.Stages = 3 // want `write to Snapshot field Stages`
}

// Inspect only reads, which is the whole point of snapshots.
func Inspect(s *core.Snapshot) int {
	return s.Stages
}
