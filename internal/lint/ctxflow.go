package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the request-path context contract: once a request enters
// the serving stack through a *Ctx entry point (Engine.PredictCtx,
// Engine.PredictBatchCtx, Registry.PredictCtx,
// Snapshot.PredictBatchParallelCtx, ...), its context.Context must travel
// with it — a deadline that silently stops propagating is a request that
// cannot be cancelled, which is how overloaded fleets serve doomed work to
// completion (docs/SERVING.md admission/backpressure design).
//
// Four rules, all applying to non-test code:
//
//   - background-in-ctx-path: a function that takes a context.Context must
//     not call context.Background or context.TODO anywhere in its body — the
//     request already carries a context. Batch boundaries that deliberately
//     detach (the coalescer's dispatch fan-out, the ctx-less convenience
//     wrappers like Engine.Predict) take no context parameter, which is
//     exactly what exempts them.
//   - dropped-context: inside a function that takes a context, calling a
//     callee that has a context-accepting sibling (same name + "Ctx" suffix,
//     on the same receiver type for methods) without using that sibling
//     drops the deadline at a call boundary.
//   - unused-ctx: an exported function or method named *Ctx must actually
//     use its context parameter; a *Ctx name over an ignored context is a
//     cancellation guarantee the code does not provide.
//   - loop-cancellation: a loop in an exported *Ctx function must reference
//     the context (ctx.Err() check, ctx.Done() select, or passing ctx to
//     the per-item call) so long batches notice cancellation mid-flight,
//     not just at admission. Loops inside nested function literals are the
//     literal's business (they typically run under a worker-pool's own
//     cancellation, cf. forEachRowParallelCtx).
//
// Intentional violations carry //lint:ignore ctxflow <reason>.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "require request-path functions to thread their context.Context",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxObj := contextParam(pass.Pkg.Info, fn)
			if ctxObj == nil {
				continue
			}
			checkCtxBody(pass, fn)
			checkCtxSiblings(pass, fn)
			if fn.Name.IsExported() && len(fn.Name.Name) > 3 && fn.Name.Name[len(fn.Name.Name)-3:] == "Ctx" {
				if !declUsesObject(pass.Pkg.Info, fn.Body, ctxObj) {
					pass.Reportf(fn.Name.Pos(), "%s never uses its context parameter: a *Ctx entry point that ignores ctx cannot be cancelled — thread ctx or drop the suffix", fn.Name.Name)
				} else {
					checkCtxLoops(pass, fn, ctxObj)
				}
			}
		}
	}
}

// contextParam returns the object of fn's context.Context parameter, or nil.
// An unnamed (or blank) context parameter yields nil — the body cannot use
// it, so the unused-ctx rule reports through declUsesObject returning false
// only when a named parameter exists; blank contexts on *Ctx functions are
// instead caught because no named param means no rules fire, which is fine:
// such a function cannot thread anything.
func contextParam(info *types.Info, fn *ast.FuncDecl) types.Object {
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		if !isContextType(info.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := info.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

// checkCtxBody flags context.Background/context.TODO calls inside a function
// that already has a request context.
func checkCtxBody(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.Pkg.Info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
			return true
		}
		if callee.Name() == "Background" || callee.Name() == "TODO" {
			pass.Reportf(call.Pos(), "context.%s inside %s, which already has a request context: thread the caller's ctx — detached batch boundaries belong in a function without a ctx parameter", callee.Name(), fn.Name.Name)
		}
		return true
	})
}

// checkCtxSiblings flags calls that drop the context at a call boundary: the
// callee takes no context, but a sibling named <callee>Ctx that does exists
// (same package for functions, same receiver type for methods).
func checkCtxSiblings(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		name := callee.Name()
		if len(name) > 3 && name[len(name)-3:] == "Ctx" {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok || signatureTakesContext(sig) {
			return true
		}
		if sib := ctxSibling(callee); sib != nil {
			pass.Reportf(call.Pos(), "call to %s drops the request context: %s exists — thread ctx through it", name, sib.Name())
		}
		return true
	})
}

// ctxSibling finds a context-accepting function named callee's name + "Ctx":
// a method on the same receiver type, or a package-level function in the
// callee's package.
func ctxSibling(callee *types.Func) *types.Func {
	sig := callee.Type().(*types.Signature)
	want := callee.Name() + "Ctx"
	if recv := sig.Recv(); recv != nil {
		n := namedType(recv.Type())
		if n == nil {
			return nil
		}
		for i := 0; i < n.NumMethods(); i++ {
			m := n.Method(i)
			if m.Name() == want && signatureTakesContext(m.Type().(*types.Signature)) {
				return m
			}
		}
		return nil
	}
	if obj, ok := callee.Pkg().Scope().Lookup(want).(*types.Func); ok {
		if signatureTakesContext(obj.Type().(*types.Signature)) {
			return obj
		}
	}
	return nil
}

// signatureTakesContext reports whether any parameter is a context.Context.
func signatureTakesContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// checkCtxLoops flags loops in an exported *Ctx function that never
// reference the context. Loops inside nested function literals are skipped.
func checkCtxLoops(pass *Pass, fn *ast.FuncDecl, ctxObj types.Object) {
	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) {
		var pos = n.Pos()
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
		default:
			return
		}
		for _, anc := range stack {
			if _, ok := anc.(*ast.FuncLit); ok {
				return
			}
			switch anc.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				// The enclosing loop is already checked; reporting every
				// nesting level would stutter.
				return
			}
		}
		if !declUsesObject(pass.Pkg.Info, n, ctxObj) {
			pass.Reportf(pos, "loop in exported %s never checks its context: a cancelled request runs to completion — check ctx.Err() (or pass ctx) each iteration", fn.Name.Name)
		}
	})
}

// declUsesObject reports whether any identifier under root resolves to obj.
func declUsesObject(info *types.Info, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
