package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseDirectiveIgnore(t *testing.T) {
	d := &directives{ignores: make(map[string]map[int][]*ignoreDirective)}
	at := func(line int) token.Position { return token.Position{Filename: "f.go", Line: line} }
	d.parseDirective(at(10), "ignore floatcmp exact sentinel by contract")

	if !d.suppressed("floatcmp", at(10)) {
		t.Error("directive should suppress on its own line")
	}
	if !d.suppressed("floatcmp", at(11)) {
		t.Error("directive should suppress on the line below")
	}
	if d.suppressed("floatcmp", at(12)) {
		t.Error("directive must not suppress two lines below")
	}
	if d.suppressed("snapshotmut", at(10)) {
		t.Error("directive must not suppress other analyzers")
	}
	if d.suppressed("floatcmp", token.Position{Filename: "g.go", Line: 10}) {
		t.Error("directive must not suppress in other files")
	}
	if len(d.problems) != 0 {
		t.Errorf("well-formed directive reported problems: %v", d.problems)
	}
}

func TestParseDirectiveProblems(t *testing.T) {
	d := &directives{ignores: make(map[string]map[int][]*ignoreDirective)}
	pos := token.Position{Filename: "f.go", Line: 1}
	d.parseDirective(pos, "ignore floatcmp") // missing reason
	d.parseDirective(pos, "bogus whatever")  // unknown directive
	d.parseDirective(pos, "")                // empty
	d.parseDirective(pos, "nocount fine")    // valid, handled by countercharge
	d.parseDirective(pos, "nondeterm")       // missing reason
	if len(d.problems) != 4 {
		t.Fatalf("want 4 problems, got %d: %v", len(d.problems), d.problems)
	}
}

func TestParseDirectiveNondeterm(t *testing.T) {
	d := &directives{ignores: make(map[string]map[int][]*ignoreDirective)}
	at := func(line int) token.Position { return token.Position{Filename: "f.go", Line: line} }
	d.parseDirective(at(5), "nondeterm wall-clock telemetry only")
	if !d.suppressed("detorder", at(6)) {
		t.Error("//lint:nondeterm should suppress detorder on the line below")
	}
	if d.suppressed("floatcmp", at(5)) {
		t.Error("//lint:nondeterm must not suppress other analyzers")
	}
	if len(d.problems) != 0 {
		t.Errorf("well-formed nondeterm reported problems: %v", d.problems)
	}
}

func TestStaleDirectives(t *testing.T) {
	d := &directives{ignores: make(map[string]map[int][]*ignoreDirective)}
	at := func(line int) token.Position { return token.Position{Filename: "f.go", Line: line} }
	d.parseDirective(at(10), "ignore floatcmp load-bearing")
	d.parseDirective(at(20), "ignore floatcmp rotted")
	d.parseDirective(at(30), "nondeterm rotted too")
	// Only the first directive suppresses anything.
	if !d.suppressed("floatcmp", at(11)) {
		t.Fatal("directive at line 10 should suppress")
	}
	stale := d.stale()
	if len(stale) != 2 {
		t.Fatalf("want 2 stale directives, got %d: %v", len(stale), stale)
	}
	lines := map[int]bool{}
	for _, s := range stale {
		if s.Analyzer != "audit" {
			t.Errorf("stale diagnostic analyzer = %q, want audit", s.Analyzer)
		}
		lines[s.Pos.Line] = true
	}
	if !lines[20] || !lines[30] {
		t.Errorf("stale lines = %v, want 20 and 30", lines)
	}
}

func TestNocountDirective(t *testing.T) {
	src := `package p

// Kernel does init-time work.
//lint:nocount   init-time only
func Kernel() {}

// Plain has no annotation.
func Plain() {}

//lint:nocount
func Empty() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	fns := make(map[string]*ast.FuncDecl)
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok {
			fns[fn.Name.Name] = fn
		}
	}

	reason, ok, _ := nocountDirective(fns["Kernel"])
	if !ok || reason != "init-time only" {
		t.Errorf("Kernel: want (init-time only, true), got (%q, %v)", reason, ok)
	}
	if _, ok, _ := nocountDirective(fns["Plain"]); ok {
		t.Error("Plain: unexpected nocount annotation")
	}
	reason, ok, pos := nocountDirective(fns["Empty"])
	if !ok || reason != "" {
		t.Errorf("Empty: want empty reason with ok=true, got (%q, %v)", reason, ok)
	}
	if !pos.IsValid() {
		t.Error("Empty: annotation position should be valid for error reporting")
	}
}
