package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseDirectiveIgnore(t *testing.T) {
	d := &directives{ignores: make(map[string]map[int][]ignoreDirective)}
	at := func(line int) token.Position { return token.Position{Filename: "f.go", Line: line} }
	d.parseDirective(at(10), "ignore floatcmp exact sentinel by contract")

	if !d.suppressed("floatcmp", at(10)) {
		t.Error("directive should suppress on its own line")
	}
	if !d.suppressed("floatcmp", at(11)) {
		t.Error("directive should suppress on the line below")
	}
	if d.suppressed("floatcmp", at(12)) {
		t.Error("directive must not suppress two lines below")
	}
	if d.suppressed("snapshotmut", at(10)) {
		t.Error("directive must not suppress other analyzers")
	}
	if d.suppressed("floatcmp", token.Position{Filename: "g.go", Line: 10}) {
		t.Error("directive must not suppress in other files")
	}
	if len(d.problems) != 0 {
		t.Errorf("well-formed directive reported problems: %v", d.problems)
	}
}

func TestParseDirectiveProblems(t *testing.T) {
	d := &directives{ignores: make(map[string]map[int][]ignoreDirective)}
	pos := token.Position{Filename: "f.go", Line: 1}
	d.parseDirective(pos, "ignore floatcmp") // missing reason
	d.parseDirective(pos, "bogus whatever")  // unknown directive
	d.parseDirective(pos, "")                // empty
	d.parseDirective(pos, "nocount fine")    // valid, handled by countercharge
	if len(d.problems) != 3 {
		t.Fatalf("want 3 problems, got %d: %v", len(d.problems), d.problems)
	}
}

func TestNocountDirective(t *testing.T) {
	src := `package p

// Kernel does init-time work.
//lint:nocount   init-time only
func Kernel() {}

// Plain has no annotation.
func Plain() {}

//lint:nocount
func Empty() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	fns := make(map[string]*ast.FuncDecl)
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok {
			fns[fn.Name.Name] = fn
		}
	}

	reason, ok, _ := nocountDirective(fns["Kernel"])
	if !ok || reason != "init-time only" {
		t.Errorf("Kernel: want (init-time only, true), got (%q, %v)", reason, ok)
	}
	if _, ok, _ := nocountDirective(fns["Plain"]); ok {
		t.Error("Plain: unexpected nocount annotation")
	}
	reason, ok, pos := nocountDirective(fns["Empty"])
	if !ok || reason != "" {
		t.Errorf("Empty: want empty reason with ok=true, got (%q, %v)", reason, ok)
	}
	if !pos.IsValid() {
		t.Error("Empty: annotation position should be valid for error reporting")
	}
}
