package lint

import (
	"go/ast"
	"go/types"
)

// SnapshotMut enforces the Snapshot immutability contract that the whole
// serving stack leans on: once (*Model).Snapshot returns, the snapshot is
// published to an unbounded number of reader goroutines through an atomic
// pointer, so any later write to a core.Snapshot (or to its embedded
// core.params) is a data race by construction.
//
// Mechanically: every assignment or ++/-- whose l-value is reached through
// an expression of type core.Snapshot or core.params is flagged, unless the
// enclosing function returns a Snapshot — i.e. is a constructor still
// building its private copy. Writes through *Model are untouched: Model
// embeds params precisely so the single-writer training loop can rewrite it
// in place. The pre-publication install hooks (SetCounter, SetStages) carry
// //lint:ignore annotations with their justification.
var SnapshotMut = &Analyzer{
	Name: "snapshotmut",
	Doc:  "flag writes to core.Snapshot/core.params fields outside their constructors",
	Run:  runSnapshotMut,
}

// protectedSnapshotType reports whether t is core.Snapshot or core.params.
func protectedSnapshotType(t types.Type) bool {
	return isNamedIn(t, "core", "Snapshot") || isNamedIn(t, "core", "params")
}

// snapshotConstructor reports whether fn returns a Snapshot (by value or
// pointer), which marks it as a constructor allowed to initialize fields.
func snapshotConstructor(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		if isNamedIn(info.TypeOf(field.Type), "core", "Snapshot") {
			return true
		}
	}
	return false
}

func runSnapshotMut(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || snapshotConstructor(info, fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						checkSnapshotWrite(pass, lhs)
					}
				case *ast.IncDecStmt:
					checkSnapshotWrite(pass, st.X)
				}
				return true
			})
		}
	}
}

// checkSnapshotWrite reports lhs when it writes through a Snapshot- or
// params-typed expression (field assignment, or element assignment into a
// field's backing array).
func checkSnapshotWrite(pass *Pass, lhs ast.Expr) {
	se := selectorBase(lhs)
	if se == nil {
		return
	}
	info := pass.Pkg.Info
	sel := info.Selections[se]
	if sel == nil || sel.Kind() != types.FieldVal {
		return
	}
	base := info.TypeOf(se.X)
	if base == nil || !protectedSnapshotType(base) {
		return
	}
	pass.Reportf(lhs.Pos(), "write to %s field %s outside a Snapshot constructor: snapshots are published to concurrent readers and must stay immutable",
		namedType(base).Obj().Name(), se.Sel.Name)
}
