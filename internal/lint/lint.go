// Package lint is reghd's in-tree static-analysis suite: a small analyzer
// framework built purely on the standard library's go/parser, go/ast, and
// go/types packages, plus nine project-specific analyzers that mechanically
// enforce the repo's load-bearing invariants — Snapshot immutability
// (snapshotmut), pooled-scratch hygiene (poolescape), kernel op-accounting
// (countercharge), atomic-access discipline (atomicmix), float equality
// bans (floatcmp), merge/serialize determinism (detorder), request-path
// context propagation (ctxflow), goroutine shutdown ties (goroleak), and
// error-handling discipline (errwrap). The framework also provides a
// stale-suppression audit (AuditIgnores) and SARIF 2.1.0 output (SARIF).
// See docs/STATIC_ANALYSIS.md for the invariant each analyzer guards and
// how to extend the suite.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives.
	Name string
	// Doc is a one-line description shown by reghd-lint -list.
	Doc string
	// Run inspects the pass's package and reports findings via Reportf.
	Run func(*Pass)
}

// Diagnostic is one finding, positioned for path:line:col reporting.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass is the per-(package, analyzer) unit of work handed to Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{SnapshotMut, PoolEscape, CounterCharge, AtomicMix, FloatCmp, DetOrder, CtxFlow, GoroLeak, ErrWrap}
}

// RunAnalyzers runs each analyzer over the package, filters findings through
// the package's //lint:ignore directives, appends any malformed-directive
// diagnostics, and returns everything sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	out, _ := runFiltered(pkg, analyzers)
	return sortDiags(out)
}

// AuditIgnores is the stale-suppression audit: it runs the analyzers exactly
// like RunAnalyzers, but instead of the (filtered) findings it returns one
// diagnostic per suppression directive that is no longer doing any work —
// an //lint:ignore or //lint:nondeterm that covered no diagnostic, and an
// //lint:nocount on a function countercharge would not flag anyway. Rotted
// suppressions are how blanket exemptions accumulate; auditing them keeps
// every directive tied to a live finding. Run it with the full suite: an
// ignore for an analyzer that is not running is indistinguishable from a
// stale one.
func AuditIgnores(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	_, dirs := runFiltered(pkg, analyzers)
	out := dirs.stale()
	for _, a := range analyzers {
		if a.Name == CounterCharge.Name {
			out = append(out, auditNocount(pkg)...)
		}
	}
	return sortDiags(out)
}

// runFiltered runs the analyzers, filtering findings through the package's
// ignore directives (marking each directive that suppresses something), and
// returns the surviving diagnostics plus the directive index.
func runFiltered(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, *directives) {
	dirs := collectDirectives(pkg)
	out := append([]Diagnostic(nil), dirs.problems...)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg}
		a.Run(pass)
		for _, d := range pass.diags {
			if dirs.suppressed(a.Name, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	return out, dirs
}

// sortDiags orders diagnostics by position for stable reporting.
func sortDiags(out []Diagnostic) []Diagnostic {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// walkStack is ast.Inspect with an ancestor stack: fn receives each node
// together with the path of its ancestors (stack[0] is the root; the direct
// parent is stack[len(stack)-1]).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
