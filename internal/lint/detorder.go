package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
)

// DetOrder guards the merge/serialize determinism contract: Model.Delta,
// Merge, and MergeQuantized are documented to be bit-identical under
// argument permutation (canonical delta ordering, merge_test.go pins it),
// checkpoints round-trip byte-stably, and FitParallel's shard split is
// fixed by Config.Seed. Those guarantees are what make replica fleets
// converge and experiments reproduce (docs/TRAINING.md); they die the
// moment a map iteration, a wall-clock read, or the process-global rand
// source slips into the fold order or the serialized state.
//
// Mechanically, in packages named core the analyzer computes the functions
// reachable (through package-local calls) from any function declared in the
// canonical-determinism set — merge.go, serialize.go, fitparallel.go — and
// flags, inside every reachable function:
//
//   - `range` over a map (iteration order is randomized per run);
//   - calls to time.Now or time.Since (wall-clock values);
//   - calls to math/rand package-level functions other than the
//     source/generator constructors New, NewSource, and NewZipf (they draw
//     from the process-global, unseeded source; methods on a *rand.Rand are
//     fine — the instance carries its seed).
//
// Intentional sites — wall-clock telemetry that never feeds merged or
// serialized state, such as FitParallel's MergeNS/WallNS timings — carry a
// //lint:nondeterm <reason> annotation (the detorder spelling of
// //lint:ignore). Calls that leave the package are out of scope by design:
// the kernels underneath (internal/hdc) are deterministic by their own
// differential-test contract.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "ban map ranges, wall-clock reads, and unseeded rand in the core determinism set",
	Run:  runDetOrder,
}

// detOrderFiles is the canonical-determinism set: every function declared in
// these files (package core) is a determinism root.
var detOrderFiles = map[string]bool{
	"merge.go":       true,
	"serialize.go":   true,
	"fitparallel.go": true,
}

// detOrderRandOK are the math/rand package-level functions that construct
// explicitly seeded generators rather than drawing from the global source.
var detOrderRandOK = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDetOrder(pass *Pass) {
	if pass.Pkg.Types.Name() != "core" {
		return
	}
	g := buildCallGraph(pass.Pkg)
	var roots []types.Object
	for obj, fn := range g.decls {
		base := filepath.Base(pass.Pkg.Fset.Position(fn.Pos()).Filename)
		if detOrderFiles[base] {
			roots = append(roots, obj)
		}
	}
	reach := g.reachable(roots)
	// Deterministic reporting order: visit reachable declarations sorted by
	// position (map iteration over the graph would be — fittingly — random).
	var fns []*ast.FuncDecl
	for obj := range reach {
		if fn, ok := g.decls[obj]; ok {
			fns = append(fns, fn)
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		checkDetOrder(pass, fn)
	}
}

// checkDetOrder flags the nondeterminism sites inside one reachable function.
func checkDetOrder(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(v.For, "map iteration in %s is reachable from the determinism set (merge/serialize/fitparallel): order is randomized per run — iterate sorted keys, or annotate //lint:nondeterm <reason>", name)
				}
			}
		case *ast.CallExpr:
			callee := calleeFunc(info, v)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			switch callee.Pkg().Path() {
			case "time":
				if callee.Name() == "Now" || callee.Name() == "Since" {
					pass.Reportf(v.Pos(), "time.%s in %s is reachable from the determinism set (merge/serialize/fitparallel): wall-clock values must never feed merged or serialized state — annotate telemetry with //lint:nondeterm <reason>", callee.Name(), name)
				}
			case "math/rand", "math/rand/v2":
				if callee.Type().(*types.Signature).Recv() != nil {
					return true // methods on *rand.Rand/Zipf: seeded instance
				}
				if !detOrderRandOK[callee.Name()] {
					pass.Reportf(v.Pos(), "rand.%s in %s draws from the process-global unseeded source inside the determinism set: use the model's seeded *rand.Rand, or annotate //lint:nondeterm <reason>", callee.Name(), name)
				}
			}
		}
		return true
	})
}
