package lint

import (
	"go/ast"
	"go/types"
)

// AtomicMix enforces the all-atomic-or-never discipline for shared state:
// a word that is ever accessed through sync/atomic must be accessed that
// way everywhere (one plain load racing one atomic store is still a data
// race), and values of the declared atomic types (atomic.Uint64,
// atomic.Pointer[T], hdc.AtomicCounter, arrays of them) must never be
// copied or overwritten wholesale — copying tears the value out of the
// synchronization domain the type exists to provide.
//
// Two checks:
//
//  1. mixed access — any variable or field passed by address to a
//     sync/atomic function anywhere in the package is flagged at every
//     other plain (non-atomic) read, write, or address-take;
//  2. value copy — an expression of declared-atomic type used as a value
//     (assigned, passed, returned, placed in a composite literal, or bound
//     to a range value variable) is flagged; using it as a method receiver,
//     indexing it, or taking its address is fine.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flag non-atomic access to state that is elsewhere accessed via sync/atomic, and value-copies of declared atomic types",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	info := pass.Pkg.Info
	// Pass 1: every `atomic.F(&x, ...)` call marks x's object as
	// atomic-domain and records the exact AST nodes that constitute the
	// sanctioned atomic access.
	atomicObjs := make(map[types.Object]ast.Node) // object -> first atomic use
	sanctioned := make(map[ast.Node]bool)         // nodes inside atomic call args
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			ue, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			obj := addressedObject(info, ue.X, sanctioned)
			if obj != nil {
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = ue
				}
			}
			return true
		})
	}
	// Pass 2: flag every other appearance of an atomic-domain object, and
	// every value-copy of a declared-atomic expression.
	for _, file := range pass.Pkg.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) {
			switch e := n.(type) {
			case *ast.Ident:
				if len(stack) > 0 {
					if se, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && se.Sel == e {
						return // handled at the SelectorExpr
					}
				}
				obj := info.Uses[e]
				if obj == nil {
					return
				}
				checkMixed(pass, e, obj, atomicObjs, sanctioned)
				checkAtomicValueUse(pass, info, e, stack)
			case *ast.SelectorExpr:
				obj := info.Uses[e.Sel]
				if obj == nil {
					return
				}
				checkMixed(pass, e, obj, atomicObjs, sanctioned)
				checkAtomicValueUse(pass, info, e, stack)
			case *ast.RangeStmt:
				// Ranging with a value variable over an array of atomics
				// copies every element.
				if e.Value == nil {
					return
				}
				if t := info.TypeOf(e.X); t != nil {
					if arr, ok := t.Underlying().(*types.Array); ok && isDeclaredAtomic(arr.Elem()) {
						pass.Reportf(e.Value.Pos(), "range value copies %s elements out of their atomic domain; range by index instead", arr.Elem())
					}
				}
			}
		})
	}
}

// addressedObject resolves the operand of &x in an atomic call to the
// variable or field object being addressed, marking the traversed selector
// and identifier nodes as sanctioned atomic accesses.
func addressedObject(info *types.Info, e ast.Expr, sanctioned map[ast.Node]bool) types.Object {
	for {
		sanctioned[e] = true
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			sanctioned[v.Sel] = true
			obj := info.Uses[v.Sel]
			if _, ok := obj.(*types.Var); ok {
				return obj
			}
			return nil
		case *ast.Ident:
			obj := identObject(info, v)
			if _, ok := obj.(*types.Var); ok {
				return obj
			}
			return nil
		default:
			return nil
		}
	}
}

// checkMixed reports node when it is a plain access to an object that is
// elsewhere in the package accessed through sync/atomic.
func checkMixed(pass *Pass, node ast.Expr, obj types.Object, atomicObjs map[types.Object]ast.Node, sanctioned map[ast.Node]bool) {
	first, isAtomic := atomicObjs[obj]
	if !isAtomic || sanctioned[node] {
		return
	}
	if se, ok := node.(*ast.SelectorExpr); ok && sanctioned[se.Sel] {
		return
	}
	pass.Reportf(node.Pos(), "%s is accessed via sync/atomic (e.g. at %s); this plain access races with the atomic ones",
		obj.Name(), pass.Pkg.Fset.Position(first.Pos()))
}

// isDeclaredAtomic reports whether t is one of the declared atomic types —
// anything named in sync/atomic (Bool, Int64, Uint64, Pointer[T], Value,
// ...), an hdc.AtomicCounter, or an array of such. Pointers to atomic types
// are not atomic values: copying a *AtomicCounter shares the counter, which
// is exactly what the types are for.
func isDeclaredAtomic(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*types.Pointer); ok {
		return false
	}
	if arr, ok := t.Underlying().(*types.Array); ok {
		return isDeclaredAtomic(arr.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "sync/atomic" || (obj.Pkg().Name() == "hdc" && obj.Name() == "AtomicCounter")
}

// checkAtomicValueUse reports e when it denotes a declared-atomic value
// used in a copying position.
func checkAtomicValueUse(pass *Pass, info *types.Info, e ast.Expr, stack []ast.Node) {
	tv, ok := info.Types[e]
	if !ok || !tv.IsValue() || !isDeclaredAtomic(tv.Type) {
		return
	}
	if len(stack) == 0 {
		return
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.ParenExpr:
		return // base of a field/method access or further navigation
	case *ast.UnaryExpr:
		return // &x: addressing, not copying
	case *ast.RangeStmt:
		return // reported once at the RangeStmt case with a better message
	case *ast.AssignStmt, *ast.ValueSpec, *ast.CallExpr, *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr:
		pass.Reportf(e.Pos(), "%s is a declared atomic type; copying or reassigning the whole value bypasses its synchronization — operate through its methods or a pointer", tv.Type)
	default:
		_ = parent
	}
}
