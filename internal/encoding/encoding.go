// Package encoding implements the similarity-preserving encoders that map
// original-space feature vectors into hyperdimensional space.
//
// The primary encoder is the paper's Eq. 1 nonlinear encoder:
//
//	H_j = cos(F·B_j + b_j) · sin(F·B_j)
//
// where each B_j is a random bipolar base vector over the n input features
// and b_j ~ U[0, 2π). The base vectors are random, hence nearly orthogonal,
// and the trigonometric nonlinearity makes the encoding a random-Fourier-
// feature-like kernel map: inputs close in the original space produce
// hypervectors with high cosine similarity, while distant inputs map to
// nearly orthogonal hypervectors. That nonlinearity is what lets RegHD learn
// nonlinear regression functions with purely linear model updates.
package encoding

import (
	"fmt"
	"math"
	"math/rand"

	"reghd/internal/hdc"
)

// Nonlinear is the Eq. 1 encoder. It is safe for concurrent use once
// constructed: Encode* methods only read the projection state.
// Projection selects the distribution of the base hypervectors B_k.
type Projection int

const (
	// ProjGaussian draws base components from the standard normal
	// distribution. This is the default: it makes the encoder a faithful
	// random-Fourier-feature map with a Gaussian similarity kernel for any
	// input dimensionality, and matches the authors' released
	// implementations of this encoder.
	ProjGaussian Projection = iota
	// ProjBipolar draws base components uniformly from {−1,+1}, the
	// paper's literal "bipolar base hypervectors". For inputs with few
	// features the projection magnitudes are then quantized (for n=1 every
	// dimension sees the same |phase|), which makes the induced kernel
	// periodic — distant inputs alias onto similar encodings. Provided for
	// ablation against the paper text; prefer ProjGaussian.
	ProjBipolar
)

type Nonlinear struct {
	dim       int       // hyperdimensional size D
	features  int       // original-space size n
	bandwidth float64   // kernel bandwidth: projections are divided by this
	proj      []float64 // features*dim projection, row k = B_k
	bias      []float64 // dim biases b_j in [0, 2π)
	center    []float64 // per-dimension constant −sin(b_j)/2 of the Eq. 1 product
}

// NewNonlinear constructs an encoder for nFeatures-dimensional inputs into
// dim-dimensional hyperspace, drawing base hypervectors from rng. The
// kernel bandwidth defaults to 2√nFeatures, which for standardized inputs
// places the similarity length-scale at √n — the usual median-distance
// heuristic. Use NewNonlinearBandwidth to override.
func NewNonlinear(rng *rand.Rand, nFeatures, dim int) (*Nonlinear, error) {
	if nFeatures <= 0 {
		return nil, fmt.Errorf("encoding: nFeatures must be positive, got %d", nFeatures)
	}
	return NewNonlinearBandwidth(rng, nFeatures, dim, 2*math.Sqrt(float64(nFeatures)))
}

// NewNonlinearBandwidth constructs the Eq. 1 encoder with an explicit
// kernel bandwidth and Gaussian base hypervectors. Feature projections
// F·B_j are divided by the bandwidth before the trigonometric nonlinearity,
// so the induced similarity between two inputs decays as
// exp(−2‖Δx‖²/bandwidth²): larger bandwidths make the encoder smoother
// (more generalization), smaller ones sharper (more memorization).
func NewNonlinearBandwidth(rng *rand.Rand, nFeatures, dim int, bandwidth float64) (*Nonlinear, error) {
	return NewNonlinearProjection(rng, nFeatures, dim, bandwidth, ProjGaussian)
}

// NewNonlinearProjection constructs the Eq. 1 encoder with full control
// over the bandwidth and the base-hypervector distribution.
func NewNonlinearProjection(rng *rand.Rand, nFeatures, dim int, bandwidth float64, kind Projection) (*Nonlinear, error) {
	if nFeatures <= 0 {
		return nil, fmt.Errorf("encoding: nFeatures must be positive, got %d", nFeatures)
	}
	if dim <= 0 {
		return nil, fmt.Errorf("encoding: dim must be positive, got %d", dim)
	}
	if bandwidth <= 0 {
		return nil, fmt.Errorf("encoding: bandwidth must be positive, got %v", bandwidth)
	}
	e := &Nonlinear{
		dim:       dim,
		features:  nFeatures,
		bandwidth: bandwidth,
		proj:      make([]float64, nFeatures*dim),
		bias:      make([]float64, dim),
	}
	switch kind {
	case ProjGaussian:
		for i := range e.proj {
			e.proj[i] = rng.NormFloat64()
		}
	case ProjBipolar:
		for i := range e.proj {
			if rng.Int63()&1 == 0 {
				e.proj[i] = 1
			} else {
				e.proj[i] = -1
			}
		}
	default:
		return nil, fmt.Errorf("encoding: unknown projection kind %d", kind)
	}
	e.center = make([]float64, dim)
	for j := range e.bias {
		e.bias[j] = rng.Float64() * 2 * math.Pi
		e.center[j] = -math.Sin(e.bias[j]) / 2
	}
	return e, nil
}

// Dim returns the hyperdimensional size D.
func (e *Nonlinear) Dim() int { return e.dim }

// Features returns the expected input dimensionality n.
func (e *Nonlinear) Features() int { return e.features }

// Bandwidth returns the kernel bandwidth.
func (e *Nonlinear) Bandwidth() float64 { return e.bandwidth }

// Base returns the k-th base hypervector B_k (a copy).
func (e *Nonlinear) Base(k int) hdc.Vector {
	v := make(hdc.Vector, e.dim)
	copy(v, e.proj[k*e.dim:(k+1)*e.dim])
	return v
}

// project computes F·B_j for every j into out (length dim). The projection
// rows are bipolar, so it is an add/sub-only kernel; we still count it as
// float multiply-add because the feature values are real.
func (e *Nonlinear) project(ctr *hdc.Counter, out []float64, x []float64) {
	for j := range out {
		out[j] = 0
	}
	for k, f := range x {
		row := e.proj[k*e.dim : (k+1)*e.dim]
		for j, b := range row {
			out[j] += f * b
		}
	}
	n := uint64(e.features) * uint64(e.dim)
	ctr.Add(hdc.OpFloatMul, n)
	ctr.Add(hdc.OpFloatAdd, n)
	ctr.Add(hdc.OpMemRead, n)
}

// Encode maps x into the raw (real-valued) hypervector H of Eq. 1.
func (e *Nonlinear) Encode(ctr *hdc.Counter, x []float64) (hdc.Vector, error) {
	if len(x) != e.features {
		return nil, fmt.Errorf("encoding: input has %d features, encoder expects %d", len(x), e.features)
	}
	h := make(hdc.Vector, e.dim)
	e.project(ctr, h, x)
	inv := 1 / e.bandwidth
	for j, p := range h {
		p *= inv
		h[j] = math.Cos(p+e.bias[j]) * math.Sin(p)
	}
	d := uint64(e.dim)
	ctr.Add(hdc.OpExp, 2*d) // cos + sin
	ctr.Add(hdc.OpFloatAdd, d)
	ctr.Add(hdc.OpFloatMul, d)
	ctr.Add(hdc.OpMemWrite, d)
	return h, nil
}

// EncodeBipolar maps x into the quantized bipolar hypervector
// S ∈ {−1,+1}^D used throughout training in the paper.
//
// The Eq. 1 product expands to H_j = ½·sin(2·F·B_j + b_j) − ½·sin(b_j);
// the second term is a constant shared by every input, so quantizing the raw
// value at zero would bias dimension j the same way for all inputs and leave
// unrelated encodings correlated. We therefore quantize relative to that
// per-dimension constant — S_j = sign(H_j − center_j) = sign(sin(2F·B_j+b_j))
// — which keeps unrelated inputs nearly orthogonal while preserving the
// local-similarity structure.
func (e *Nonlinear) EncodeBipolar(ctr *hdc.Counter, x []float64) (hdc.Vector, error) {
	h, err := e.Encode(ctr, x)
	if err != nil {
		return nil, err
	}
	for j, v := range h {
		if v >= e.center[j] {
			h[j] = 1
		} else {
			h[j] = -1
		}
	}
	ctr.Add(hdc.OpCmp, uint64(e.dim))
	return h, nil
}

// EncodeBinary maps x into the bit-packed binary hypervector S^b used by the
// quantized similarity kernels (Section 3.1). Bit j is set exactly when
// EncodeBipolar would produce +1.
func (e *Nonlinear) EncodeBinary(ctr *hdc.Counter, x []float64) (*hdc.Binary, error) {
	s, err := e.EncodeBipolar(ctr, x)
	if err != nil {
		return nil, err
	}
	return hdc.Pack(ctr, s), nil
}

// EncodeBoth returns the raw hypervector H and its centered-sign bipolar
// quantization S from a single projection pass.
func (e *Nonlinear) EncodeBoth(ctr *hdc.Counter, x []float64) (raw, bipolar hdc.Vector, err error) {
	raw, err = e.Encode(ctr, x)
	if err != nil {
		return nil, nil, err
	}
	bipolar = make(hdc.Vector, e.dim)
	for j, v := range raw {
		if v >= e.center[j] {
			bipolar[j] = 1
		} else {
			bipolar[j] = -1
		}
	}
	ctr.Add(hdc.OpCmp, uint64(e.dim))
	return raw, bipolar, nil
}

// EncodeBatch encodes each row of xs with EncodeBipolar.
func (e *Nonlinear) EncodeBatch(ctr *hdc.Counter, xs [][]float64) ([]hdc.Vector, error) {
	out := make([]hdc.Vector, len(xs))
	for i, x := range xs {
		s, err := e.EncodeBipolar(ctr, x)
		if err != nil {
			return nil, fmt.Errorf("encoding row %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}
