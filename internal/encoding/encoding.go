// Package encoding implements the similarity-preserving encoders that map
// original-space feature vectors into hyperdimensional space.
//
// The primary encoder is the paper's Eq. 1 nonlinear encoder:
//
//	H_j = cos(F·B_j + b_j) · sin(F·B_j)
//
// where each B_j is a random bipolar base vector over the n input features
// and b_j ~ U[0, 2π). The base vectors are random, hence nearly orthogonal,
// and the trigonometric nonlinearity makes the encoding a random-Fourier-
// feature-like kernel map: inputs close in the original space produce
// hypervectors with high cosine similarity, while distant inputs map to
// nearly orthogonal hypervectors. That nonlinearity is what lets RegHD learn
// nonlinear regression functions with purely linear model updates.
package encoding

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"reghd/internal/hdc"
)

// Nonlinear is the Eq. 1 encoder. It is safe for concurrent use once
// constructed: Encode* methods only read the projection state.
// Projection selects the distribution of the base hypervectors B_k.
type Projection int

const (
	// ProjGaussian draws base components from the standard normal
	// distribution. This is the default: it makes the encoder a faithful
	// random-Fourier-feature map with a Gaussian similarity kernel for any
	// input dimensionality, and matches the authors' released
	// implementations of this encoder.
	ProjGaussian Projection = iota
	// ProjBipolar draws base components uniformly from {−1,+1}, the
	// paper's literal "bipolar base hypervectors". For inputs with few
	// features the projection magnitudes are then quantized (for n=1 every
	// dimension sees the same |phase|), which makes the induced kernel
	// periodic — distant inputs alias onto similar encodings. Provided for
	// ablation against the paper text; prefer ProjGaussian.
	ProjBipolar
)

type Nonlinear struct {
	dim       int       // hyperdimensional size D
	features  int       // original-space size n
	bandwidth float64   // kernel bandwidth: projections are divided by this
	proj      []float64 // features*dim projection, row k = B_k
	bias      []float64 // dim biases b_j in [0, 2π)
	center    []float64 // per-dimension constant −sin(b_j)/2 of the Eq. 1 product

	// packed is the bit-packed sign form of proj, non-nil exactly when every
	// projection entry is ±1 (ProjBipolar). The projection then runs as a
	// sign-selected add/sub kernel over 64×-smaller, cache-resident state —
	// bit-for-bit identical to the dense multiply (see hdc.SignMatrix).
	packed *hdc.SignMatrix

	// pool recycles D-length projection scratch across Encode* calls that
	// never hand the buffer to the caller (EncodeBinary's direct raw→packed
	// path), so the binary serving path allocates nothing per encode.
	pool sync.Pool
}

// NewNonlinear constructs an encoder for nFeatures-dimensional inputs into
// dim-dimensional hyperspace, drawing base hypervectors from rng. The
// kernel bandwidth defaults to 2√nFeatures, which for standardized inputs
// places the similarity length-scale at √n — the usual median-distance
// heuristic. Use NewNonlinearBandwidth to override.
func NewNonlinear(rng *rand.Rand, nFeatures, dim int) (*Nonlinear, error) {
	if nFeatures <= 0 {
		return nil, fmt.Errorf("encoding: nFeatures must be positive, got %d", nFeatures)
	}
	return NewNonlinearBandwidth(rng, nFeatures, dim, 2*math.Sqrt(float64(nFeatures)))
}

// NewNonlinearBandwidth constructs the Eq. 1 encoder with an explicit
// kernel bandwidth and Gaussian base hypervectors. Feature projections
// F·B_j are divided by the bandwidth before the trigonometric nonlinearity,
// so the induced similarity between two inputs decays as
// exp(−2‖Δx‖²/bandwidth²): larger bandwidths make the encoder smoother
// (more generalization), smaller ones sharper (more memorization).
func NewNonlinearBandwidth(rng *rand.Rand, nFeatures, dim int, bandwidth float64) (*Nonlinear, error) {
	return NewNonlinearProjection(rng, nFeatures, dim, bandwidth, ProjGaussian)
}

// NewNonlinearProjection constructs the Eq. 1 encoder with full control
// over the bandwidth and the base-hypervector distribution.
func NewNonlinearProjection(rng *rand.Rand, nFeatures, dim int, bandwidth float64, kind Projection) (*Nonlinear, error) {
	if nFeatures <= 0 {
		return nil, fmt.Errorf("encoding: nFeatures must be positive, got %d", nFeatures)
	}
	if dim <= 0 {
		return nil, fmt.Errorf("encoding: dim must be positive, got %d", dim)
	}
	if bandwidth <= 0 {
		return nil, fmt.Errorf("encoding: bandwidth must be positive, got %v", bandwidth)
	}
	e := &Nonlinear{
		dim:       dim,
		features:  nFeatures,
		bandwidth: bandwidth,
		proj:      make([]float64, nFeatures*dim),
		bias:      make([]float64, dim),
	}
	switch kind {
	case ProjGaussian:
		for i := range e.proj {
			e.proj[i] = rng.NormFloat64()
		}
	case ProjBipolar:
		for i := range e.proj {
			if rng.Int63()&1 == 0 {
				e.proj[i] = 1
			} else {
				e.proj[i] = -1
			}
		}
		e.packed, _ = hdc.PackSignsFlat(e.proj, nFeatures, dim)
	default:
		return nil, fmt.Errorf("encoding: unknown projection kind %d", kind)
	}
	e.center = make([]float64, dim)
	for j := range e.bias {
		e.bias[j] = rng.Float64() * 2 * math.Pi
		e.center[j] = -math.Sin(e.bias[j]) / 2
	}
	return e, nil
}

// Dim returns the hyperdimensional size D.
func (e *Nonlinear) Dim() int { return e.dim }

// Features returns the expected input dimensionality n.
func (e *Nonlinear) Features() int { return e.features }

// Bandwidth returns the kernel bandwidth.
func (e *Nonlinear) Bandwidth() float64 { return e.bandwidth }

// Base returns the k-th base hypervector B_k (a copy).
func (e *Nonlinear) Base(k int) hdc.Vector {
	v := make(hdc.Vector, e.dim)
	copy(v, e.proj[k*e.dim:(k+1)*e.dim])
	return v
}

// project computes F·B_j for every j into out (length dim). When the
// projection is bipolar it runs as the bit-packed sign-selected add/sub
// kernel (hdc.SignMatrix.ProjectAccum) — zero float multiplies and 64× less
// projection-matrix traffic — and falls back to the dense multiply-add
// otherwise. Both kernels charge the identical Counter ops (the dense
// form), so the hwmodel cost estimates do not depend on which one ran.
func (e *Nonlinear) project(ctr *hdc.Counter, out []float64, x []float64) {
	if e.packed != nil {
		e.packed.ProjectAccum(ctr, out, x)
		return
	}
	hdc.ProjectDense(ctr, out, x, e.proj)
}

// checkInput validates the feature count of x.
func (e *Nonlinear) checkInput(x []float64) error {
	if len(x) != e.features {
		return fmt.Errorf("encoding: input has %d features, encoder expects %d", len(x), e.features)
	}
	return nil
}

// checkDst validates a caller-supplied D-length destination buffer.
func (e *Nonlinear) checkDst(dst []float64) error {
	if len(dst) != e.dim {
		return fmt.Errorf("encoding: destination has dim %d, encoder produces %d", len(dst), e.dim)
	}
	return nil
}

// getBuf returns a pooled D-length projection scratch buffer.
func (e *Nonlinear) getBuf() []float64 {
	if v := e.pool.Get(); v != nil {
		return *(v.(*[]float64))
	}
	return make([]float64, e.dim)
}

// putBuf returns a scratch buffer to the pool.
func (e *Nonlinear) putBuf(b []float64) { e.pool.Put(&b) }

// nonlinearize applies the Eq. 1 trigonometric nonlinearity in place over
// the projection values: h_j ← cos(p_j + b_j)·sin(p_j) with p_j = h_j/bw,
// computed through the product-to-sum identity
//
//	cos(p + b)·sin(p) = ½·sin(2p + b) − ½·sin(b)
//
// whose second term is the precomputed per-dimension center_j = −½·sin(b_j):
// one trig evaluation per dimension instead of two. The op accounting stays
// the canonical Eq. 1 form (two trig evaluations) by the hwmodel cost
// contract — the identity is a software shortcut, not a cheaper algorithm
// for the hardware targets.
func (e *Nonlinear) nonlinearize(ctr *hdc.Counter, h []float64) {
	inv := 1 / e.bandwidth
	for j, p := range h {
		p *= inv
		h[j] = 0.5*math.Sin(2*p+e.bias[j]) + e.center[j]
	}
	d := uint64(e.dim)
	ctr.Add(hdc.OpExp, 2*d) // cos + sin of the canonical form
	ctr.Add(hdc.OpFloatAdd, d)
	ctr.Add(hdc.OpFloatMul, d)
	ctr.Add(hdc.OpMemWrite, d)
}

// quantizeInto writes the centered-sign quantization S_j = sign(raw_j −
// center_j) into dst (dst may alias raw for in-place quantization).
func (e *Nonlinear) quantizeInto(ctr *hdc.Counter, dst, raw []float64) {
	for j, v := range raw {
		if v >= e.center[j] {
			dst[j] = 1
		} else {
			dst[j] = -1
		}
	}
	ctr.Add(hdc.OpCmp, uint64(e.dim))
}

// bipolarize fuses nonlinearize and quantizeInto into one in-place pass over
// a projection: h_j ← sign(½·sin(2p_j + b_j) + center_j − center_j) as ±1.
// The raw Eq. 1 value is computed with the exact expression nonlinearize
// stores and compared against center_j the way quantizeInto compares, just
// without materializing the intermediate — on amd64 the intermediate is the
// same 64-bit double whether it round-trips through memory or not, so the
// sign decisions are bit-identical to the two-pass path. One pass instead of
// two halves the memory traffic over h, which is most of what the two-pass
// form spends once the trig is L1-resident (see docs/PERFORMANCE.md "Flat
// spots"). Charges are the sum of the two passes it replaces.
func (e *Nonlinear) bipolarize(ctr *hdc.Counter, h []float64) {
	inv := 1 / e.bandwidth
	bias, center := e.bias, e.center
	for j, p := range h {
		p *= inv
		if 0.5*math.Sin(2*p+bias[j])+center[j] >= center[j] {
			h[j] = 1
		} else {
			h[j] = -1
		}
	}
	d := uint64(e.dim)
	ctr.Add(hdc.OpExp, 2*d) // cos + sin of the canonical form
	ctr.Add(hdc.OpFloatAdd, d)
	ctr.Add(hdc.OpFloatMul, d)
	ctr.Add(hdc.OpMemWrite, d)
	ctr.Add(hdc.OpCmp, d)
}

// Encode maps x into the raw (real-valued) hypervector H of Eq. 1.
func (e *Nonlinear) Encode(ctr *hdc.Counter, x []float64) (hdc.Vector, error) {
	h := make(hdc.Vector, e.dim)
	if err := e.EncodeInto(ctr, x, h); err != nil {
		return nil, err
	}
	return h, nil
}

// EncodeInto is Encode writing into a caller-supplied D-length buffer, so
// hot prediction paths can pool their encode scratch instead of allocating
// per call.
func (e *Nonlinear) EncodeInto(ctr *hdc.Counter, x []float64, dst hdc.Vector) error {
	if err := e.checkInput(x); err != nil {
		return err
	}
	if err := e.checkDst(dst); err != nil {
		return err
	}
	e.project(ctr, dst, x)
	e.nonlinearize(ctr, dst)
	return nil
}

// EncodeBipolar maps x into the quantized bipolar hypervector
// S ∈ {−1,+1}^D used throughout training in the paper.
//
// The Eq. 1 product expands to H_j = ½·sin(2·F·B_j + b_j) − ½·sin(b_j);
// the second term is a constant shared by every input, so quantizing the raw
// value at zero would bias dimension j the same way for all inputs and leave
// unrelated encodings correlated. We therefore quantize relative to that
// per-dimension constant — S_j = sign(H_j − center_j) = sign(sin(2F·B_j+b_j))
// — which keeps unrelated inputs nearly orthogonal while preserving the
// local-similarity structure.
func (e *Nonlinear) EncodeBipolar(ctr *hdc.Counter, x []float64) (hdc.Vector, error) {
	h := make(hdc.Vector, e.dim)
	if err := e.EncodeBipolarInto(ctr, x, h); err != nil {
		return nil, err
	}
	return h, nil
}

// EncodeBipolarInto is EncodeBipolar writing into a caller-supplied
// D-length buffer. The nonlinearity and the centered-sign threshold run as
// one fused pass (see bipolarize); bits of the result and op charges are
// identical to EncodeInto followed by the separate quantization.
func (e *Nonlinear) EncodeBipolarInto(ctr *hdc.Counter, x []float64, dst hdc.Vector) error {
	if err := e.checkInput(x); err != nil {
		return err
	}
	if err := e.checkDst(dst); err != nil {
		return err
	}
	e.project(ctr, dst, x)
	e.bipolarize(ctr, dst)
	return nil
}

// EncodeBinary maps x into the bit-packed binary hypervector S^b used by the
// quantized similarity kernels (Section 3.1). Bit j is set exactly when
// EncodeBipolar would produce +1.
func (e *Nonlinear) EncodeBinary(ctr *hdc.Counter, x []float64) (*hdc.Binary, error) {
	b := hdc.NewBinary(e.dim)
	if err := e.EncodeBinaryInto(ctr, x, b); err != nil {
		return nil, err
	}
	return b, nil
}

// EncodeBinaryInto encodes x straight into a bit-packed hypervector: the
// projection lands in pooled scratch and each component is thresholded
// against center_j directly into the destination words, never materializing
// the intermediate ±1 float vector. Bits are identical to
// Pack(EncodeBipolar(x)) — both set bit j exactly when H_j >= center_j —
// and the op charges equal the materializing path's (Encode + quantize +
// Pack), keeping the hwmodel cost contract.
func (e *Nonlinear) EncodeBinaryInto(ctr *hdc.Counter, x []float64, dst *hdc.Binary) error {
	if err := e.checkInput(x); err != nil {
		return err
	}
	if dst.Dim != e.dim {
		return fmt.Errorf("encoding: destination has dim %d, encoder produces %d", dst.Dim, e.dim)
	}
	buf := e.getBuf()
	defer e.putBuf(buf)
	e.project(ctr, buf, x)
	inv := 1 / e.bandwidth
	words := dst.Words
	for w := range words {
		words[w] = 0
	}
	for j, p := range buf {
		p *= inv
		// The same identity-form H_j the materializing path computes, so the
		// threshold decision is bit-identical to quantizeInto's.
		if 0.5*math.Sin(2*p+e.bias[j])+e.center[j] >= e.center[j] {
			words[j/64] |= 1 << uint(j%64)
		}
	}
	// Charge what the materializing reference path charges after the
	// projection: the nonlinearity (Encode), the centered-sign threshold
	// (EncodeBipolar), and the bit-pack (hdc.Pack).
	d := uint64(e.dim)
	ctr.Add(hdc.OpExp, 2*d)
	ctr.Add(hdc.OpFloatAdd, d)
	ctr.Add(hdc.OpFloatMul, d)
	ctr.Add(hdc.OpMemWrite, d)
	ctr.Add(hdc.OpCmp, 2*d)
	ctr.Add(hdc.OpMemRead, d)
	ctr.Add(hdc.OpMemWrite, uint64(len(words)))
	return nil
}

// EncodeBoth returns the raw hypervector H and its centered-sign bipolar
// quantization S from a single projection pass.
func (e *Nonlinear) EncodeBoth(ctr *hdc.Counter, x []float64) (raw, bipolar hdc.Vector, err error) {
	raw = make(hdc.Vector, e.dim)
	bipolar = make(hdc.Vector, e.dim)
	if err := e.EncodeBothInto(ctr, x, raw, bipolar); err != nil {
		return nil, nil, err
	}
	return raw, bipolar, nil
}

// EncodeBothInto is EncodeBoth writing into caller-supplied D-length
// buffers.
func (e *Nonlinear) EncodeBothInto(ctr *hdc.Counter, x []float64, raw, bipolar hdc.Vector) error {
	if err := e.EncodeInto(ctr, x, raw); err != nil {
		return err
	}
	if err := e.checkDst(bipolar); err != nil {
		return err
	}
	e.quantizeInto(ctr, bipolar, raw)
	return nil
}

// BatchError reports a partially failed batch encode: which row failed
// first, the underlying cause, and how many of the batch's rows were left
// unencoded (the failed row plus every row its worker abandoned after it —
// other workers run their chunks to completion). EncodeBatchParallel returns
// a nil result alongside it, so the unencoded rows can never be read back;
// the counts exist so callers retrying or logging know the blast radius
// instead of guessing from a single row index.
type BatchError struct {
	// Row is the lowest-index row that failed.
	Row int
	// Unencoded is the number of rows without a valid encoding: every
	// failed row plus the rows abandoned after a worker's first failure.
	Unencoded int
	// Total is the batch size.
	Total int
	// Err is the failure of row Row.
	Err error
}

// Error formats the failure with its blast radius.
func (e *BatchError) Error() string {
	return fmt.Sprintf("encoding row %d: %v (%d of %d rows unencoded)", e.Row, e.Err, e.Unencoded, e.Total)
}

// Unwrap returns the underlying row failure for errors.Is/As.
func (e *BatchError) Unwrap() error { return e.Err }

// EncodeBatch encodes each row of xs with EncodeBipolar, fanning the rows
// out over GOMAXPROCS workers (the encoder is read-only, so batch encoding
// is embarrassingly parallel). On success, results and accumulated op
// counts are identical to the serial loop; on invalid rows a *BatchError
// reporting the lowest failed row index and the unencoded-row count is
// returned (workers may have counted rows past the failure).
func (e *Nonlinear) EncodeBatch(ctr *hdc.Counter, xs [][]float64) ([]hdc.Vector, error) {
	return e.EncodeBatchParallel(ctr, xs, 0)
}

// EncodeBatchParallel is EncodeBatch with an explicit worker count
// (0 means GOMAXPROCS, 1 forces the serial loop).
//
// The returned rows are views into one contiguous n×D slab allocated up
// front — two allocations for the whole batch instead of one fresh vector
// per row, which is what previously kept the parallel lane at parity with
// the serial one (every worker was burning its cycles in the allocator and
// the write misses of scattered fresh vectors; see docs/PERFORMANCE.md
// "Flat spots"). Each worker encodes straight into its chunk of the slab via
// the fused project+bipolarize pass, touching no shared scratch.
func (e *Nonlinear) EncodeBatchParallel(ctr *hdc.Counter, xs [][]float64, workers int) ([]hdc.Vector, error) {
	n := len(xs)
	out := make([]hdc.Vector, n)
	if n == 0 {
		return out, nil
	}
	slab := make([]float64, n*e.dim)
	for i := range out {
		out[i] = hdc.Vector(slab[i*e.dim : (i+1)*e.dim])
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, x := range xs {
			if err := e.EncodeBipolarInto(ctr, x, out[i]); err != nil {
				return nil, &BatchError{Row: i, Unencoded: n - i, Total: n, Err: err}
			}
		}
		return out, nil
	}
	type chunkErr struct {
		row       int // first failed row, -1 when the chunk succeeded
		abandoned int // rows the worker never reached after the failure
		err       error
	}
	errs := make([]chunkErr, workers)
	counters := make([]*hdc.Counter, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			errs[w].row = -1
			continue
		}
		wg.Add(1)
		var wctr *hdc.Counter
		if ctr != nil {
			wctr = &hdc.Counter{}
			counters[w] = wctr
		}
		go func(w, lo, hi int, wctr *hdc.Counter) {
			defer wg.Done()
			errs[w].row = -1
			for i := lo; i < hi; i++ {
				if err := e.EncodeBipolarInto(wctr, xs[i], out[i]); err != nil {
					errs[w] = chunkErr{row: i, abandoned: hi - i, err: err}
					return
				}
			}
		}(w, lo, hi, wctr)
	}
	wg.Wait()
	// Merge per-worker counters before the error check so a failed batch
	// still accounts for the encodes its workers performed.
	for _, wctr := range counters {
		ctr.AddCounter(wctr)
	}
	first, unencoded := -1, 0
	var cause error
	for _, ce := range errs {
		if ce.row < 0 {
			continue
		}
		unencoded += ce.abandoned
		if first < 0 || ce.row < first {
			first = ce.row
			cause = ce.err
		}
	}
	if first >= 0 {
		return nil, &BatchError{Row: first, Unencoded: unencoded, Total: n, Err: cause}
	}
	return out, nil
}
