package encoding

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"reghd/internal/hdc"
)

// nonlinearState is the wire form of a Nonlinear encoder. The per-dimension
// centers are derived from the biases, so they are not serialized.
type nonlinearState struct {
	Dim, Features int
	Bandwidth     float64
	Proj, Bias    []float64
}

// GobEncode implements gob.GobEncoder.
func (e *Nonlinear) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	st := nonlinearState{
		Dim:       e.dim,
		Features:  e.features,
		Bandwidth: e.bandwidth,
		Proj:      e.proj,
		Bias:      e.bias,
	}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("encoding: serializing nonlinear encoder: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (e *Nonlinear) GobDecode(data []byte) error {
	var st nonlinearState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("encoding: deserializing nonlinear encoder: %w", err)
	}
	switch {
	case st.Dim <= 0 || st.Features <= 0 || st.Bandwidth <= 0:
		return fmt.Errorf("encoding: invalid nonlinear encoder state (dim=%d features=%d bw=%v)", st.Dim, st.Features, st.Bandwidth)
	case len(st.Proj) != st.Features*st.Dim:
		return fmt.Errorf("encoding: projection length %d, want %d", len(st.Proj), st.Features*st.Dim)
	case len(st.Bias) != st.Dim:
		return fmt.Errorf("encoding: bias length %d, want %d", len(st.Bias), st.Dim)
	}
	e.dim = st.Dim
	e.features = st.Features
	e.bandwidth = st.Bandwidth
	e.proj = st.Proj
	e.bias = st.Bias
	e.center = make([]float64, st.Dim)
	for j, b := range st.Bias {
		e.center[j] = -math.Sin(b) / 2
	}
	// Re-derive the bit-packed projection: when every entry is ±1 (bipolar
	// base hypervectors) the restored encoder runs the same sign-selected
	// add/sub kernel as the one that was saved.
	if sm, ok := hdc.PackSignsFlat(e.proj, e.features, e.dim); ok {
		e.packed = sm
	} else {
		e.packed = nil
	}
	return nil
}

// idLevelState is the wire form of an IDLevel encoder.
type idLevelState struct {
	Dim, Features, Levels int
	Lo, Hi                float64
	IDs, Lvls             []hdc.Vector
}

// GobEncode implements gob.GobEncoder.
func (e *IDLevel) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	st := idLevelState{
		Dim: e.dim, Features: e.features, Levels: e.levels,
		Lo: e.lo, Hi: e.hi, IDs: e.ids, Lvls: e.lvls,
	}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("encoding: serializing id-level encoder: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (e *IDLevel) GobDecode(data []byte) error {
	var st idLevelState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("encoding: deserializing id-level encoder: %w", err)
	}
	switch {
	case st.Dim <= 0 || st.Features <= 0 || st.Levels < 2 || !(st.Lo < st.Hi):
		return fmt.Errorf("encoding: invalid id-level encoder state")
	case len(st.IDs) != st.Features || len(st.Lvls) != st.Levels:
		return fmt.Errorf("encoding: id-level table sizes %d/%d, want %d/%d", len(st.IDs), len(st.Lvls), st.Features, st.Levels)
	}
	e.dim = st.Dim
	e.features = st.Features
	e.levels = st.Levels
	e.lo, e.hi = st.Lo, st.Hi
	e.ids = st.IDs
	e.lvls = st.Lvls
	return nil
}

func init() {
	// Register the concrete encoders so they can travel inside an
	// encoding.Encoder interface field.
	gob.Register(&Nonlinear{})
	gob.Register(&IDLevel{})
}
