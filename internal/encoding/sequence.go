package encoding

import (
	"fmt"

	"reghd/internal/hdc"
)

// Sequence encodes a sliding window of W time steps, each an n-feature
// vector, into a single hypervector: every step is encoded with a shared
// base encoder and rotated by its position before bundling,
//
//	H = Σ_t ρ^t(E(x_t))
//
// the classic HD n-gram construction. Rotation (cyclic permutation) makes
// the encoding order-sensitive — the same step content at a different lag
// lands in a nearly orthogonal subspace — while bundling keeps it similar
// to windows that agree at most positions. Sequence satisfies Encoder over
// the flattened window (Features() = W·n), so it composes directly with
// the RegHD model for time-series forecasting, the IoT workload the
// paper's introduction motivates.
type Sequence struct {
	base   Encoder
	window int
}

// NewSequence wraps a per-step encoder into a window encoder.
func NewSequence(base Encoder, window int) (*Sequence, error) {
	if base == nil {
		return nil, fmt.Errorf("encoding: nil base encoder")
	}
	if window < 1 {
		return nil, fmt.Errorf("encoding: window must be >= 1, got %d", window)
	}
	return &Sequence{base: base, window: window}, nil
}

// Dim returns the hyperdimensional size D.
func (e *Sequence) Dim() int { return e.base.Dim() }

// Features returns the flattened input size W·n.
func (e *Sequence) Features() int { return e.window * e.base.Features() }

// Window returns the number of time steps W.
func (e *Sequence) Window() int { return e.window }

// Encode maps the flattened window into the bundled hypervector.
func (e *Sequence) Encode(ctr *hdc.Counter, x []float64) (hdc.Vector, error) {
	if len(x) != e.Features() {
		return nil, fmt.Errorf("encoding: window input has %d values, want %d (%d steps × %d features)",
			len(x), e.Features(), e.window, e.base.Features())
	}
	n := e.base.Features()
	out := hdc.NewVector(e.Dim())
	for t := 0; t < e.window; t++ {
		step, err := e.base.EncodeBipolar(ctr, x[t*n:(t+1)*n])
		if err != nil {
			return nil, fmt.Errorf("encoding: window step %d: %w", t, err)
		}
		hdc.Add(ctr, out, hdc.Permute(ctr, step, t))
	}
	return out, nil
}

// EncodeBipolar maps the window into sign(H) ∈ {−1,+1}^D.
func (e *Sequence) EncodeBipolar(ctr *hdc.Counter, x []float64) (hdc.Vector, error) {
	h, err := e.Encode(ctr, x)
	if err != nil {
		return nil, err
	}
	return hdc.Sign(ctr, h), nil
}

// EncodeBinary maps the window into the bit-packed quantized hypervector.
func (e *Sequence) EncodeBinary(ctr *hdc.Counter, x []float64) (*hdc.Binary, error) {
	h, err := e.Encode(ctr, x)
	if err != nil {
		return nil, err
	}
	return hdc.Pack(ctr, h), nil
}

// EncodeBoth returns the raw bundled window encoding and its sign
// quantization.
func (e *Sequence) EncodeBoth(ctr *hdc.Counter, x []float64) (raw, bipolar hdc.Vector, err error) {
	raw, err = e.Encode(ctr, x)
	if err != nil {
		return nil, nil, err
	}
	return raw, hdc.Sign(ctr, raw), nil
}

var _ Encoder = (*Sequence)(nil)
