package encoding

import (
	"fmt"
	"math/rand"

	"reghd/internal/hdc"
)

// IDLevel is the classic record-based HD encoder (the "different encoding
// methods depending on data types" the paper cites in §2.2): each feature
// position k gets a random ID hypervector, each quantized feature value gets
// a level hypervector, and the encoding bundles the ID⊙level bindings:
//
//	H = Σ_k ID_k ⊙ L(quantize(x_k))
//
// Level hypervectors are built by progressive bit flips so that nearby
// quantization levels stay similar — the similarity-preserving property.
// IDLevel serves time-series/sensor-style inputs and is used in ablations
// against the Nonlinear encoder.
type IDLevel struct {
	dim      int
	features int
	levels   int
	lo, hi   float64 // quantization range for feature values
	ids      []hdc.Vector
	lvls     []hdc.Vector
}

// NewIDLevel constructs an ID-level encoder with the given number of
// quantization levels over the value range [lo, hi].
func NewIDLevel(rng *rand.Rand, nFeatures, dim, levels int, lo, hi float64) (*IDLevel, error) {
	switch {
	case nFeatures <= 0:
		return nil, fmt.Errorf("encoding: nFeatures must be positive, got %d", nFeatures)
	case dim <= 0:
		return nil, fmt.Errorf("encoding: dim must be positive, got %d", dim)
	case levels < 2:
		return nil, fmt.Errorf("encoding: need at least 2 levels, got %d", levels)
	case !(lo < hi):
		return nil, fmt.Errorf("encoding: invalid level range [%v, %v]", lo, hi)
	}
	e := &IDLevel{
		dim:      dim,
		features: nFeatures,
		levels:   levels,
		lo:       lo,
		hi:       hi,
		ids:      make([]hdc.Vector, nFeatures),
		lvls:     make([]hdc.Vector, levels),
	}
	for k := range e.ids {
		e.ids[k] = hdc.RandomBipolar(rng, dim)
	}
	// Level 0 is random; each subsequent level flips dim/(2·(levels−1))
	// fresh random positions, so D/2 positions flip across the whole chain:
	// L(0) and L(levels−1) end up nearly orthogonal (cosine ≈ 0) while
	// adjacent levels are nearly identical.
	e.lvls[0] = hdc.RandomBipolar(rng, dim)
	perm := rng.Perm(dim)
	flipsPerLevel := dim / (2 * (levels - 1))
	next := 0
	for l := 1; l < levels; l++ {
		v := e.lvls[l-1].Clone()
		for i := 0; i < flipsPerLevel && next < dim; i++ {
			v[perm[next]] = -v[perm[next]]
			next++
		}
		e.lvls[l] = v
	}
	return e, nil
}

// Dim returns the hyperdimensional size D.
func (e *IDLevel) Dim() int { return e.dim }

// Features returns the expected input dimensionality.
func (e *IDLevel) Features() int { return e.features }

// Levels returns the number of quantization levels.
func (e *IDLevel) Levels() int { return e.levels }

// quantize maps a feature value to a level index, clamping out-of-range
// values to the boundary levels.
func (e *IDLevel) quantize(x float64) int {
	if x <= e.lo {
		return 0
	}
	if x >= e.hi {
		return e.levels - 1
	}
	l := int(float64(e.levels) * (x - e.lo) / (e.hi - e.lo))
	if l >= e.levels {
		l = e.levels - 1
	}
	return l
}

// Encode maps x into the bundled (integer-valued) hypervector.
func (e *IDLevel) Encode(ctr *hdc.Counter, x []float64) (hdc.Vector, error) {
	if len(x) != e.features {
		return nil, fmt.Errorf("encoding: input has %d features, encoder expects %d", len(x), e.features)
	}
	h := make(hdc.Vector, e.dim)
	for k, v := range x {
		lvl := e.lvls[e.quantize(v)]
		id := e.ids[k]
		for j := range h {
			h[j] += id[j] * lvl[j] // binding is elementwise multiply for bipolar vectors
		}
	}
	n := uint64(e.features) * uint64(e.dim)
	ctr.Add(hdc.OpFloatMul, n)
	ctr.Add(hdc.OpFloatAdd, n)
	ctr.Add(hdc.OpCmp, uint64(e.features)) // quantization
	ctr.Add(hdc.OpMemRead, 2*n)
	ctr.Add(hdc.OpMemWrite, uint64(e.dim))
	return h, nil
}

// EncodeBipolar maps x into sign(H) ∈ {−1,+1}^D.
func (e *IDLevel) EncodeBipolar(ctr *hdc.Counter, x []float64) (hdc.Vector, error) {
	h, err := e.Encode(ctr, x)
	if err != nil {
		return nil, err
	}
	for j, v := range h {
		if v >= 0 {
			h[j] = 1
		} else {
			h[j] = -1
		}
	}
	ctr.Add(hdc.OpCmp, uint64(e.dim))
	return h, nil
}

// EncodeBinary maps x into the bit-packed quantized hypervector.
func (e *IDLevel) EncodeBinary(ctr *hdc.Counter, x []float64) (*hdc.Binary, error) {
	h, err := e.Encode(ctr, x)
	if err != nil {
		return nil, err
	}
	return hdc.Pack(ctr, h), nil
}

// EncodeBoth returns the raw bundled hypervector and its sign quantization
// from a single encoding pass.
func (e *IDLevel) EncodeBoth(ctr *hdc.Counter, x []float64) (raw, bipolar hdc.Vector, err error) {
	raw, err = e.Encode(ctr, x)
	if err != nil {
		return nil, nil, err
	}
	bipolar = hdc.Sign(ctr, raw)
	return raw, bipolar, nil
}
