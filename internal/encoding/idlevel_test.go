package encoding

import (
	"math"
	"math/rand"
	"testing"

	"reghd/internal/hdc"
)

func TestNewIDLevelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		n, d, levels int
		lo, hi       float64
	}{
		{0, 10, 4, 0, 1},
		{3, 0, 4, 0, 1},
		{3, 10, 1, 0, 1},
		{3, 10, 4, 1, 1},
		{3, 10, 4, 2, 1},
	}
	for i, c := range cases {
		if _, err := NewIDLevel(rng, c.n, c.d, c.levels, c.lo, c.hi); err == nil {
			t.Fatalf("case %d: invalid parameters accepted", i)
		}
	}
	e, err := NewIDLevel(rng, 3, 100, 8, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Dim() != 100 || e.Features() != 3 || e.Levels() != 8 {
		t.Fatalf("accessors wrong: %d %d %d", e.Dim(), e.Features(), e.Levels())
	}
}

func TestIDLevelQuantizeClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e, _ := NewIDLevel(rng, 1, 64, 10, 0, 1)
	if e.quantize(-5) != 0 {
		t.Fatal("below-range value should clamp to level 0")
	}
	if e.quantize(99) != 9 {
		t.Fatal("above-range value should clamp to top level")
	}
	if e.quantize(0.55) != 5 {
		t.Fatalf("quantize(0.55) = %d, want 5", e.quantize(0.55))
	}
}

func TestIDLevelAdjacentLevelsSimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e, _ := NewIDLevel(rng, 1, 10000, 10, 0, 1)
	adj := hdc.Cosine(nil, e.lvls[4], e.lvls[5])
	extreme := hdc.Cosine(nil, e.lvls[0], e.lvls[9])
	if adj < 0.7 {
		t.Fatalf("adjacent levels similarity %v too low", adj)
	}
	if math.Abs(extreme) > 0.15 {
		t.Fatalf("extreme levels similarity %v, want ≈ 0", extreme)
	}
}

func TestIDLevelSimilarityPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e, _ := NewIDLevel(rng, 5, 8000, 32, -2, 2)
	base := []float64{0.1, -0.5, 1.0, 0.0, -1.2}
	near := []float64{0.15, -0.45, 1.05, 0.05, -1.15}
	far := []float64{-1.8, 1.9, -1.5, 1.7, 1.9}
	hb, _ := e.EncodeBipolar(nil, base)
	hn, _ := e.EncodeBipolar(nil, near)
	hf, _ := e.EncodeBipolar(nil, far)
	if hdc.Cosine(nil, hb, hn) <= hdc.Cosine(nil, hb, hf) {
		t.Fatal("ID-level encoding not similarity preserving")
	}
}

func TestIDLevelInputLengthChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e, _ := NewIDLevel(rng, 4, 128, 8, 0, 1)
	if _, err := e.Encode(nil, []float64{1}); err == nil {
		t.Fatal("accepted wrong input length")
	}
	if _, err := e.EncodeBipolar(nil, []float64{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("bipolar accepted wrong length")
	}
	if _, err := e.EncodeBinary(nil, []float64{1}); err == nil {
		t.Fatal("binary accepted wrong length")
	}
}

func TestIDLevelBinaryMatchesBipolar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e, _ := NewIDLevel(rng, 3, 200, 16, 0, 1)
	x := []float64{0.2, 0.9, 0.5}
	bip, _ := e.EncodeBipolar(nil, x)
	bin, _ := e.EncodeBinary(nil, x)
	dense := hdc.Unpack(bin)
	for j := range bip {
		if bip[j] != dense[j] {
			t.Fatalf("component %d differs", j)
		}
	}
}

func TestIDLevelDeterministic(t *testing.T) {
	x := []float64{0.3, 0.6}
	e1, _ := NewIDLevel(rand.New(rand.NewSource(11)), 2, 300, 8, 0, 1)
	e2, _ := NewIDLevel(rand.New(rand.NewSource(11)), 2, 300, 8, 0, 1)
	h1, _ := e1.Encode(nil, x)
	h2, _ := e2.Encode(nil, x)
	for j := range h1 {
		if h1[j] != h2[j] {
			t.Fatal("same seed produced different ID-level encodings")
		}
	}
}
