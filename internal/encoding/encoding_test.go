package encoding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"reghd/internal/hdc"
)

func TestNewNonlinearValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewNonlinear(rng, 0, 100); err == nil {
		t.Fatal("accepted zero features")
	}
	if _, err := NewNonlinear(rng, 5, 0); err == nil {
		t.Fatal("accepted zero dim")
	}
	e, err := NewNonlinear(rng, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if e.Dim() != 100 || e.Features() != 5 {
		t.Fatalf("Dim/Features = %d/%d", e.Dim(), e.Features())
	}
}

func TestNonlinearInputLengthChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e, _ := NewNonlinear(rng, 4, 64)
	if _, err := e.Encode(nil, []float64{1, 2}); err == nil {
		t.Fatal("accepted wrong input length")
	}
	if _, err := e.EncodeBipolar(nil, []float64{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("bipolar accepted wrong input length")
	}
	if _, err := e.EncodeBinary(nil, make([]float64, 3)); err == nil {
		t.Fatal("binary accepted wrong input length")
	}
}

func TestNonlinearDeterministic(t *testing.T) {
	e1, _ := NewNonlinear(rand.New(rand.NewSource(7)), 6, 500)
	e2, _ := NewNonlinear(rand.New(rand.NewSource(7)), 6, 500)
	x := []float64{0.1, -0.3, 0.5, 0.7, -0.2, 0.9}
	h1, _ := e1.Encode(nil, x)
	h2, _ := e2.Encode(nil, x)
	for j := range h1 {
		if h1[j] != h2[j] {
			t.Fatal("same seed produced different encodings")
		}
	}
}

func TestNonlinearRangeBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e, _ := NewNonlinear(rng, 8, 256)
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	h, err := e.Encode(nil, x)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range h {
		if v < -1-1e-12 || v > 1+1e-12 {
			t.Fatalf("component %d = %v outside [-1,1]", j, v)
		}
	}
}

func TestNonlinearBipolarIsCenteredSignOfRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e, _ := NewNonlinear(rng, 5, 200)
	x := []float64{0.4, -0.1, 0.2, 0.8, -0.6}
	raw, _ := e.Encode(nil, x)
	bip, _ := e.EncodeBipolar(nil, x)
	if !bip.IsBipolar() {
		t.Fatal("EncodeBipolar output not bipolar")
	}
	for j := range raw {
		want := 1.0
		if raw[j] < e.center[j] {
			want = -1
		}
		if bip[j] != want {
			t.Fatalf("component %d: raw %v, center %v, bipolar %v", j, raw[j], e.center[j], bip[j])
		}
	}
}

func TestNonlinearBinaryMatchesBipolar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e, _ := NewNonlinear(rng, 5, 333)
	x := []float64{0.4, -0.1, 0.2, 0.8, -0.6}
	bip, _ := e.EncodeBipolar(nil, x)
	bin, _ := e.EncodeBinary(nil, x)
	dense := hdc.Unpack(bin)
	for j := range bip {
		if bip[j] != dense[j] {
			t.Fatalf("component %d: bipolar %v, binary %v", j, bip[j], dense[j])
		}
	}
}

// TestSimilarityPreserving is the encoder's "common-sense principle" (§2.2):
// inputs close in the original space must be more similar in HD space than
// distant inputs, and far-apart inputs should be nearly orthogonal.
func TestSimilarityPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e, _ := NewNonlinear(rng, 10, 8000)
	base := make([]float64, 10)
	near := make([]float64, 10)
	far := make([]float64, 10)
	for i := range base {
		base[i] = rng.NormFloat64()
		near[i] = base[i] + 0.02*rng.NormFloat64()
		far[i] = 5 * rng.NormFloat64()
	}
	hb, _ := e.EncodeBipolar(nil, base)
	hn, _ := e.EncodeBipolar(nil, near)
	hf, _ := e.EncodeBipolar(nil, far)
	simNear := hdc.Cosine(nil, hb, hn)
	simFar := hdc.Cosine(nil, hb, hf)
	if simNear < 0.7 {
		t.Fatalf("near input similarity %v too low", simNear)
	}
	if math.Abs(simFar) > 0.15 {
		t.Fatalf("far input similarity %v, want ≈ 0", simFar)
	}
	if simNear <= simFar {
		t.Fatalf("similarity order violated: near %v <= far %v", simNear, simFar)
	}
}

func TestSimilarityMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, _ := NewNonlinear(rng, 6, 4000)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := make([]float64, 6)
		small := make([]float64, 6)
		big := make([]float64, 6)
		for i := range base {
			base[i] = r.NormFloat64()
			d := r.NormFloat64()
			small[i] = base[i] + 0.05*d
			big[i] = base[i] + 2.0*d
		}
		hb, _ := e.EncodeBipolar(nil, base)
		hs, _ := e.EncodeBipolar(nil, small)
		hg, _ := e.EncodeBipolar(nil, big)
		return hdc.Cosine(nil, hb, hs) > hdc.Cosine(nil, hb, hg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBaseVectorsOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e, _ := NewNonlinear(rng, 4, 10000)
	b0 := e.Base(0)
	b1 := e.Base(1)
	if c := hdc.Cosine(nil, b0, b1); math.Abs(c) > 0.06 {
		t.Fatalf("base vectors not nearly orthogonal: cosine %v", c)
	}
}

func TestBipolarProjectionVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	e, err := NewNonlinearProjection(rng, 6, 5000, 2, ProjBipolar)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Base(0).IsBipolar() {
		t.Fatal("ProjBipolar base vector not bipolar")
	}
	if c := hdc.Cosine(nil, e.Base(0), e.Base(1)); math.Abs(c) > 0.08 {
		t.Fatalf("bipolar bases not nearly orthogonal: cosine %v", c)
	}
	// The bipolar variant still preserves similarity for moderate n.
	base := []float64{0.1, -0.2, 0.3, 0.4, -0.5, 0.6}
	near := []float64{0.12, -0.18, 0.31, 0.41, -0.52, 0.58}
	hb, _ := e.EncodeBipolar(nil, base)
	hn, _ := e.EncodeBipolar(nil, near)
	if hdc.Cosine(nil, hb, hn) < 0.5 {
		t.Fatal("bipolar projection lost local similarity")
	}
	if _, err := NewNonlinearProjection(rng, 2, 10, 1, Projection(9)); err == nil {
		t.Fatal("unknown projection kind accepted")
	}
	if _, err := NewNonlinearProjection(rng, 2, 10, -1, ProjGaussian); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestEncodeBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e, _ := NewNonlinear(rng, 3, 128)
	xs := [][]float64{{1, 2, 3}, {0, 0, 0}, {-1, 0.5, 2}}
	hs, err := e.EncodeBatch(nil, xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 3 {
		t.Fatalf("batch size %d", len(hs))
	}
	bad := [][]float64{{1, 2}}
	if _, err := e.EncodeBatch(nil, bad); err == nil {
		t.Fatal("batch accepted wrong row length")
	}
}

func TestEncodeCountsOps(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	e, _ := NewNonlinear(rng, 4, 100)
	var c hdc.Counter
	if _, err := e.Encode(&c, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if c.Count(hdc.OpExp) != 200 {
		t.Fatalf("exp count = %d, want 200 (cos+sin per dim)", c.Count(hdc.OpExp))
	}
	if c.Count(hdc.OpFloatMul) < 400 {
		t.Fatalf("mul count = %d, want >= n*D", c.Count(hdc.OpFloatMul))
	}
}
