package encoding

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"reghd/internal/hdc"
)

func TestNewNonlinearValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewNonlinear(rng, 0, 100); err == nil {
		t.Fatal("accepted zero features")
	}
	if _, err := NewNonlinear(rng, 5, 0); err == nil {
		t.Fatal("accepted zero dim")
	}
	e, err := NewNonlinear(rng, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if e.Dim() != 100 || e.Features() != 5 {
		t.Fatalf("Dim/Features = %d/%d", e.Dim(), e.Features())
	}
}

func TestNonlinearInputLengthChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e, _ := NewNonlinear(rng, 4, 64)
	if _, err := e.Encode(nil, []float64{1, 2}); err == nil {
		t.Fatal("accepted wrong input length")
	}
	if _, err := e.EncodeBipolar(nil, []float64{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("bipolar accepted wrong input length")
	}
	if _, err := e.EncodeBinary(nil, make([]float64, 3)); err == nil {
		t.Fatal("binary accepted wrong input length")
	}
}

func TestNonlinearDeterministic(t *testing.T) {
	e1, _ := NewNonlinear(rand.New(rand.NewSource(7)), 6, 500)
	e2, _ := NewNonlinear(rand.New(rand.NewSource(7)), 6, 500)
	x := []float64{0.1, -0.3, 0.5, 0.7, -0.2, 0.9}
	h1, _ := e1.Encode(nil, x)
	h2, _ := e2.Encode(nil, x)
	for j := range h1 {
		if h1[j] != h2[j] {
			t.Fatal("same seed produced different encodings")
		}
	}
}

func TestNonlinearRangeBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e, _ := NewNonlinear(rng, 8, 256)
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	h, err := e.Encode(nil, x)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range h {
		if v < -1-1e-12 || v > 1+1e-12 {
			t.Fatalf("component %d = %v outside [-1,1]", j, v)
		}
	}
}

func TestNonlinearBipolarIsCenteredSignOfRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e, _ := NewNonlinear(rng, 5, 200)
	x := []float64{0.4, -0.1, 0.2, 0.8, -0.6}
	raw, _ := e.Encode(nil, x)
	bip, _ := e.EncodeBipolar(nil, x)
	if !bip.IsBipolar() {
		t.Fatal("EncodeBipolar output not bipolar")
	}
	for j := range raw {
		want := 1.0
		if raw[j] < e.center[j] {
			want = -1
		}
		if bip[j] != want {
			t.Fatalf("component %d: raw %v, center %v, bipolar %v", j, raw[j], e.center[j], bip[j])
		}
	}
}

func TestNonlinearBinaryMatchesBipolar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e, _ := NewNonlinear(rng, 5, 333)
	x := []float64{0.4, -0.1, 0.2, 0.8, -0.6}
	bip, _ := e.EncodeBipolar(nil, x)
	bin, _ := e.EncodeBinary(nil, x)
	dense := hdc.Unpack(bin)
	for j := range bip {
		if bip[j] != dense[j] {
			t.Fatalf("component %d: bipolar %v, binary %v", j, bip[j], dense[j])
		}
	}
}

// TestSimilarityPreserving is the encoder's "common-sense principle" (§2.2):
// inputs close in the original space must be more similar in HD space than
// distant inputs, and far-apart inputs should be nearly orthogonal.
func TestSimilarityPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e, _ := NewNonlinear(rng, 10, 8000)
	base := make([]float64, 10)
	near := make([]float64, 10)
	far := make([]float64, 10)
	for i := range base {
		base[i] = rng.NormFloat64()
		near[i] = base[i] + 0.02*rng.NormFloat64()
		far[i] = 5 * rng.NormFloat64()
	}
	hb, _ := e.EncodeBipolar(nil, base)
	hn, _ := e.EncodeBipolar(nil, near)
	hf, _ := e.EncodeBipolar(nil, far)
	simNear := hdc.Cosine(nil, hb, hn)
	simFar := hdc.Cosine(nil, hb, hf)
	if simNear < 0.7 {
		t.Fatalf("near input similarity %v too low", simNear)
	}
	if math.Abs(simFar) > 0.15 {
		t.Fatalf("far input similarity %v, want ≈ 0", simFar)
	}
	if simNear <= simFar {
		t.Fatalf("similarity order violated: near %v <= far %v", simNear, simFar)
	}
}

func TestSimilarityMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, _ := NewNonlinear(rng, 6, 4000)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := make([]float64, 6)
		small := make([]float64, 6)
		big := make([]float64, 6)
		for i := range base {
			base[i] = r.NormFloat64()
			d := r.NormFloat64()
			small[i] = base[i] + 0.05*d
			big[i] = base[i] + 2.0*d
		}
		hb, _ := e.EncodeBipolar(nil, base)
		hs, _ := e.EncodeBipolar(nil, small)
		hg, _ := e.EncodeBipolar(nil, big)
		return hdc.Cosine(nil, hb, hs) > hdc.Cosine(nil, hb, hg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBaseVectorsOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e, _ := NewNonlinear(rng, 4, 10000)
	b0 := e.Base(0)
	b1 := e.Base(1)
	if c := hdc.Cosine(nil, b0, b1); math.Abs(c) > 0.06 {
		t.Fatalf("base vectors not nearly orthogonal: cosine %v", c)
	}
}

func TestBipolarProjectionVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	e, err := NewNonlinearProjection(rng, 6, 5000, 2, ProjBipolar)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Base(0).IsBipolar() {
		t.Fatal("ProjBipolar base vector not bipolar")
	}
	if c := hdc.Cosine(nil, e.Base(0), e.Base(1)); math.Abs(c) > 0.08 {
		t.Fatalf("bipolar bases not nearly orthogonal: cosine %v", c)
	}
	// The bipolar variant still preserves similarity for moderate n.
	base := []float64{0.1, -0.2, 0.3, 0.4, -0.5, 0.6}
	near := []float64{0.12, -0.18, 0.31, 0.41, -0.52, 0.58}
	hb, _ := e.EncodeBipolar(nil, base)
	hn, _ := e.EncodeBipolar(nil, near)
	if hdc.Cosine(nil, hb, hn) < 0.5 {
		t.Fatal("bipolar projection lost local similarity")
	}
	if _, err := NewNonlinearProjection(rng, 2, 10, 1, Projection(9)); err == nil {
		t.Fatal("unknown projection kind accepted")
	}
	if _, err := NewNonlinearProjection(rng, 2, 10, -1, ProjGaussian); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestEncodeBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e, _ := NewNonlinear(rng, 3, 128)
	xs := [][]float64{{1, 2, 3}, {0, 0, 0}, {-1, 0.5, 2}}
	hs, err := e.EncodeBatch(nil, xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 3 {
		t.Fatalf("batch size %d", len(hs))
	}
	bad := [][]float64{{1, 2}}
	if _, err := e.EncodeBatch(nil, bad); err == nil {
		t.Fatal("batch accepted wrong row length")
	}
}

func TestEncodeCountsOps(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	e, _ := NewNonlinear(rng, 4, 100)
	var c hdc.Counter
	if _, err := e.Encode(&c, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if c.Count(hdc.OpExp) != 200 {
		t.Fatalf("exp count = %d, want 200 (cos+sin per dim)", c.Count(hdc.OpExp))
	}
	if c.Count(hdc.OpFloatMul) < 400 {
		t.Fatalf("mul count = %d, want >= n*D", c.Count(hdc.OpFloatMul))
	}
}

// newBipolarPair returns two identically-seeded bipolar-projection encoders,
// the second with the packed sign matrix removed so it runs the dense naive
// projection kernel — the pre-packing reference path.
func newBipolarPair(t *testing.T, seed int64, n, dim int) (packed, naive *Nonlinear) {
	t.Helper()
	packed, err := NewNonlinearProjection(rand.New(rand.NewSource(seed)), n, dim, 2, ProjBipolar)
	if err != nil {
		t.Fatal(err)
	}
	naive, err = NewNonlinearProjection(rand.New(rand.NewSource(seed)), n, dim, 2, ProjBipolar)
	if err != nil {
		t.Fatal(err)
	}
	naive.packed = nil
	if packed.packed == nil {
		t.Fatal("bipolar projection was not sign-packed at construction")
	}
	return packed, naive
}

// TestPackedProjectionMatchesNaive is the encoder-level differential: the
// packed sign-selected projection must reproduce the dense float kernel
// bit-for-bit across every encode entry point, with identical op counts.
func TestPackedProjectionMatchesNaive(t *testing.T) {
	for _, tc := range []struct{ n, dim int }{{1, 64}, {6, 333}, {32, 4096}} {
		ep, en := newBipolarPair(t, 11, tc.n, tc.dim)
		rng := rand.New(rand.NewSource(12))
		x := make([]float64, tc.n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}

		var cp, cn hdc.Counter
		hp, err := ep.Encode(&cp, x)
		if err != nil {
			t.Fatal(err)
		}
		hn, err := en.Encode(&cn, x)
		if err != nil {
			t.Fatal(err)
		}
		for j := range hp {
			if math.Float64bits(hp[j]) != math.Float64bits(hn[j]) {
				t.Fatalf("n=%d D=%d: raw[%d] packed %v != naive %v", tc.n, tc.dim, j, hp[j], hn[j])
			}
		}
		if cp != cn {
			t.Fatalf("n=%d D=%d: Encode op counts diverge: packed %v, naive %v", tc.n, tc.dim, &cp, &cn)
		}

		cp.Reset()
		cn.Reset()
		sp, _ := ep.EncodeBipolar(&cp, x)
		sn, _ := en.EncodeBipolar(&cn, x)
		for j := range sp {
			if sp[j] != sn[j] {
				t.Fatalf("n=%d D=%d: bipolar[%d] diverges", tc.n, tc.dim, j)
			}
		}
		if cp != cn {
			t.Fatalf("n=%d D=%d: EncodeBipolar op counts diverge", tc.n, tc.dim)
		}

		cp.Reset()
		cn.Reset()
		bp, _ := ep.EncodeBinary(&cp, x)
		bn, _ := en.EncodeBinary(&cn, x)
		if !bp.Equal(bn) {
			t.Fatalf("n=%d D=%d: binary encodings diverge", tc.n, tc.dim)
		}
		if cp != cn {
			t.Fatalf("n=%d D=%d: EncodeBinary op counts diverge", tc.n, tc.dim)
		}
	}
}

// TestEncodeBinaryDirectMatchesMaterialized pins the satellite contract: the
// direct raw→packed path must produce the exact bits of Pack(EncodeBipolar)
// and charge the identical op counts, for both projection kinds.
func TestEncodeBinaryDirectMatchesMaterialized(t *testing.T) {
	for _, kind := range []Projection{ProjGaussian, ProjBipolar} {
		e, err := NewNonlinearProjection(rand.New(rand.NewSource(13)), 7, 1000, 3, kind)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(14))
		for trial := 0; trial < 5; trial++ {
			x := make([]float64, 7)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			var cDirect, cRef hdc.Counter
			direct, err := e.EncodeBinary(&cDirect, x)
			if err != nil {
				t.Fatal(err)
			}
			s, err := e.EncodeBipolar(&cRef, x)
			if err != nil {
				t.Fatal(err)
			}
			ref := hdc.Pack(&cRef, s)
			if !direct.Equal(ref) {
				t.Fatalf("kind=%v: direct binary encoding differs from Pack(EncodeBipolar)", kind)
			}
			if cDirect != cRef {
				t.Fatalf("kind=%v: op counts diverge: direct %v, materialized %v", kind, &cDirect, &cRef)
			}
		}
	}
}

// TestEncodeIntoMatchesAlloc checks every Into variant against its
// allocating counterpart: same values, same op counts, and reusable
// destination buffers.
func TestEncodeIntoMatchesAlloc(t *testing.T) {
	e, err := NewNonlinearProjection(rand.New(rand.NewSource(15)), 5, 200, 2, ProjBipolar)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7, 1.1, 0.2, -0.4}
	raw := make(hdc.Vector, 200)
	bip := make(hdc.Vector, 200)
	bin := hdc.NewBinary(200)

	var cInto, cAlloc hdc.Counter
	if err := e.EncodeInto(&cInto, x, raw); err != nil {
		t.Fatal(err)
	}
	h, _ := e.Encode(&cAlloc, x)
	for j := range h {
		if math.Float64bits(raw[j]) != math.Float64bits(h[j]) {
			t.Fatalf("EncodeInto diverges at %d", j)
		}
	}
	if cInto != cAlloc {
		t.Fatal("EncodeInto op counts diverge from Encode")
	}

	cInto.Reset()
	cAlloc.Reset()
	if err := e.EncodeBipolarInto(&cInto, x, bip); err != nil {
		t.Fatal(err)
	}
	s, _ := e.EncodeBipolar(&cAlloc, x)
	for j := range s {
		if bip[j] != s[j] {
			t.Fatalf("EncodeBipolarInto diverges at %d", j)
		}
	}
	if cInto != cAlloc {
		t.Fatal("EncodeBipolarInto op counts diverge from EncodeBipolar")
	}

	cInto.Reset()
	cAlloc.Reset()
	if err := e.EncodeBothInto(&cInto, x, raw, bip); err != nil {
		t.Fatal(err)
	}
	r2, s2, _ := e.EncodeBoth(&cAlloc, x)
	for j := range r2 {
		if math.Float64bits(raw[j]) != math.Float64bits(r2[j]) || bip[j] != s2[j] {
			t.Fatalf("EncodeBothInto diverges at %d", j)
		}
	}
	if cInto != cAlloc {
		t.Fatal("EncodeBothInto op counts diverge from EncodeBoth")
	}

	cInto.Reset()
	cAlloc.Reset()
	if err := e.EncodeBinaryInto(&cInto, x, bin); err != nil {
		t.Fatal(err)
	}
	b2, _ := e.EncodeBinary(&cAlloc, x)
	if !bin.Equal(b2) {
		t.Fatal("EncodeBinaryInto diverges from EncodeBinary")
	}
	if cInto != cAlloc {
		t.Fatal("EncodeBinaryInto op counts diverge from EncodeBinary")
	}

	// Destination validation.
	if err := e.EncodeInto(nil, x, make(hdc.Vector, 10)); err == nil {
		t.Fatal("EncodeInto accepted a wrong-size destination")
	}
	if err := e.EncodeBinaryInto(nil, x, hdc.NewBinary(10)); err == nil {
		t.Fatal("EncodeBinaryInto accepted a wrong-size destination")
	}
	if err := e.EncodeBothInto(nil, x, raw, make(hdc.Vector, 10)); err == nil {
		t.Fatal("EncodeBothInto accepted a wrong-size bipolar destination")
	}
}

// TestEncodeBatchParallelMatchesSerial checks that the parallel batch path
// produces the rows and op counts of the serial loop.
func TestEncodeBatchParallelMatchesSerial(t *testing.T) {
	e, err := NewNonlinearProjection(rand.New(rand.NewSource(16)), 4, 300, 2, ProjBipolar)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	xs := make([][]float64, 37)
	for i := range xs {
		row := make([]float64, 4)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		xs[i] = row
	}
	var cSerial, cParallel hdc.Counter
	serial, err := e.EncodeBatchParallel(&cSerial, xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := e.EncodeBatchParallel(&cParallel, xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		for j := range serial[i] {
			if serial[i][j] != parallel[i][j] {
				t.Fatalf("row %d diverges at %d", i, j)
			}
		}
	}
	if cSerial != cParallel {
		t.Fatalf("batch op counts diverge: serial %v, parallel %v", &cSerial, &cParallel)
	}
	// Lowest-index error reporting across workers.
	bad := make([][]float64, 16)
	for i := range bad {
		bad[i] = make([]float64, 4)
	}
	bad[3] = []float64{1}
	bad[11] = []float64{1}
	_, err = e.EncodeBatchParallel(nil, bad, 4)
	if err == nil {
		t.Fatal("parallel batch accepted bad rows")
	}
	if want := "encoding row 3"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the lowest failing row", err)
	}
}

// TestEncodeBatchMatchesEncodeBipolar pins the slab-backed batch path to the
// single-row entry point bit-for-bit, and checks the documented contiguity:
// rows are consecutive views into one slab.
func TestEncodeBatchMatchesEncodeBipolar(t *testing.T) {
	e, err := NewNonlinearProjection(rand.New(rand.NewSource(40)), 6, 257, 2, ProjBipolar)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	xs := make([][]float64, 9)
	for i := range xs {
		row := make([]float64, 6)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		xs[i] = row
	}
	batch, err := e.EncodeBatchParallel(nil, xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want, err := e.EncodeBipolar(nil, x)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Float64bits(batch[i][j]) != math.Float64bits(want[j]) {
				t.Fatalf("row %d diverges from EncodeBipolar at %d", i, j)
			}
		}
	}
	for i := 1; i < len(batch); i++ {
		prev := batch[i-1][:cap(batch[i-1])]
		if len(prev) < e.Dim()+1 || &prev[e.Dim()] != &batch[i][0] {
			t.Fatalf("row %d is not contiguous with row %d", i, i-1)
		}
	}
	empty, err := e.EncodeBatchParallel(nil, nil, 0)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v, %v", empty, err)
	}
}

// TestEncodeBatchTypedError checks the *BatchError contract on both the
// serial and the parallel path: lowest failed row, unencoded-row accounting,
// and errors.As/Unwrap reachability.
func TestEncodeBatchTypedError(t *testing.T) {
	e, err := NewNonlinearProjection(rand.New(rand.NewSource(42)), 4, 64, 2, ProjBipolar)
	if err != nil {
		t.Fatal(err)
	}
	mkBatch := func(n int, badRows ...int) [][]float64 {
		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = make([]float64, 4)
		}
		for _, i := range badRows {
			xs[i] = []float64{1}
		}
		return xs
	}

	// Serial: failure at row 5 of 8 abandons rows 5..7.
	_, err = e.EncodeBatchParallel(nil, mkBatch(8, 5), 1)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("serial error %T is not a *BatchError", err)
	}
	if be.Row != 5 || be.Unencoded != 3 || be.Total != 8 {
		t.Fatalf("serial BatchError = row %d, unencoded %d, total %d; want 5, 3, 8", be.Row, be.Unencoded, be.Total)
	}
	if be.Unwrap() == nil {
		t.Fatal("BatchError.Unwrap is nil")
	}

	// Parallel, 4 workers × chunks of 4 over 16 rows: worker 0 fails at row
	// 1 (abandons 1..3 → 3 rows), worker 2 fails at row 11 (abandons 11 →
	// 1 row); workers 1 and 3 complete. Lowest failed row wins the report.
	be = nil
	_, err = e.EncodeBatchParallel(nil, mkBatch(16, 1, 11), 4)
	if !errors.As(err, &be) {
		t.Fatalf("parallel error %T is not a *BatchError", err)
	}
	if be.Row != 1 || be.Unencoded != 4 || be.Total != 16 {
		t.Fatalf("parallel BatchError = row %d, unencoded %d, total %d; want 1, 4, 16", be.Row, be.Unencoded, be.Total)
	}
	if !strings.Contains(be.Error(), "4 of 16 rows unencoded") {
		t.Fatalf("BatchError text %q does not carry the blast radius", be.Error())
	}
}

// TestGobRoundTripRestoresPackedProjection ensures a restored bipolar
// encoder re-derives the packed sign matrix and keeps encoding identically.
func TestGobRoundTripRestoresPackedProjection(t *testing.T) {
	e, err := NewNonlinearProjection(rand.New(rand.NewSource(18)), 5, 256, 2, ProjBipolar)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var restored Nonlinear
	if err := restored.GobDecode(blob); err != nil {
		t.Fatal(err)
	}
	if restored.packed == nil {
		t.Fatal("restored bipolar encoder lost its packed projection")
	}
	x := []float64{0.2, -0.5, 0.9, -0.1, 0.7}
	h1, _ := e.Encode(nil, x)
	h2, _ := restored.Encode(nil, x)
	for j := range h1 {
		if math.Float64bits(h1[j]) != math.Float64bits(h2[j]) {
			t.Fatalf("restored encoder diverges at %d", j)
		}
	}
	// A Gaussian encoder must stay unpacked after the round trip.
	g, err := NewNonlinear(rand.New(rand.NewSource(19)), 5, 256)
	if err != nil {
		t.Fatal(err)
	}
	blob, err = g.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var gr Nonlinear
	if err := gr.GobDecode(blob); err != nil {
		t.Fatal(err)
	}
	if gr.packed != nil {
		t.Fatal("Gaussian encoder acquired a packed projection on load")
	}
}
