package encoding

import "reghd/internal/hdc"

// Encoder is the contract every RegHD encoder satisfies: a similarity-
// preserving map from n-dimensional feature vectors into D-dimensional
// hyperspace, available in raw, bipolar-quantized, and bit-packed forms.
type Encoder interface {
	// Dim returns the hyperdimensional size D.
	Dim() int
	// Features returns the expected input dimensionality n.
	Features() int
	// Encode returns the raw real-valued hypervector.
	Encode(ctr *hdc.Counter, x []float64) (hdc.Vector, error)
	// EncodeBipolar returns the sign-quantized hypervector in {−1,+1}^D.
	EncodeBipolar(ctr *hdc.Counter, x []float64) (hdc.Vector, error)
	// EncodeBinary returns the bit-packed quantized hypervector.
	EncodeBinary(ctr *hdc.Counter, x []float64) (*hdc.Binary, error)
	// EncodeBoth returns the raw and the bipolar hypervector from a single
	// encoding pass, for callers that need both representations.
	EncodeBoth(ctr *hdc.Counter, x []float64) (raw, bipolar hdc.Vector, err error)
}

var (
	_ Encoder = (*Nonlinear)(nil)
	_ Encoder = (*IDLevel)(nil)
)
