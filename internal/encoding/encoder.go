package encoding

import "reghd/internal/hdc"

// Encoder is the contract every RegHD encoder satisfies: a similarity-
// preserving map from n-dimensional feature vectors into D-dimensional
// hyperspace, available in raw, bipolar-quantized, and bit-packed forms.
type Encoder interface {
	// Dim returns the hyperdimensional size D.
	Dim() int
	// Features returns the expected input dimensionality n.
	Features() int
	// Encode returns the raw real-valued hypervector.
	Encode(ctr *hdc.Counter, x []float64) (hdc.Vector, error)
	// EncodeBipolar returns the sign-quantized hypervector in {−1,+1}^D.
	EncodeBipolar(ctr *hdc.Counter, x []float64) (hdc.Vector, error)
	// EncodeBinary returns the bit-packed quantized hypervector.
	EncodeBinary(ctr *hdc.Counter, x []float64) (*hdc.Binary, error)
	// EncodeBoth returns the raw and the bipolar hypervector from a single
	// encoding pass, for callers that need both representations.
	EncodeBoth(ctr *hdc.Counter, x []float64) (raw, bipolar hdc.Vector, err error)
}

// BufferedEncoder is the optional zero-allocation contract fast encoders
// provide on top of Encoder: every representation can be written into
// caller-supplied buffers, so hot prediction paths pool their D-length
// encode scratch (internal/core's prediction scratch does exactly that)
// instead of allocating per call. Callers type-assert and fall back to the
// allocating Encoder methods when the encoder does not implement it.
type BufferedEncoder interface {
	Encoder
	// EncodeInto writes the raw hypervector into dst (length D).
	EncodeInto(ctr *hdc.Counter, x []float64, dst hdc.Vector) error
	// EncodeBipolarInto writes the sign-quantized hypervector into dst.
	EncodeBipolarInto(ctr *hdc.Counter, x []float64, dst hdc.Vector) error
	// EncodeBothInto writes the raw and bipolar hypervectors in one pass.
	EncodeBothInto(ctr *hdc.Counter, x []float64, raw, bipolar hdc.Vector) error
	// EncodeBinaryInto writes the bit-packed quantized hypervector into dst
	// (dimension D) without materializing the intermediate float vector.
	EncodeBinaryInto(ctr *hdc.Counter, x []float64, dst *hdc.Binary) error
}

var (
	_ Encoder         = (*Nonlinear)(nil)
	_ Encoder         = (*IDLevel)(nil)
	_ BufferedEncoder = (*Nonlinear)(nil)
)
