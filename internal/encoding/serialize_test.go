package encoding

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

func TestNonlinearGobRoundTrip(t *testing.T) {
	e1, err := NewNonlinearBandwidth(rand.New(rand.NewSource(1)), 5, 300, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e1); err != nil {
		t.Fatal(err)
	}
	e2 := &Nonlinear{}
	if err := gob.NewDecoder(&buf).Decode(e2); err != nil {
		t.Fatal(err)
	}
	if e2.Dim() != 300 || e2.Features() != 5 || e2.Bandwidth() != 1.5 {
		t.Fatalf("restored shape wrong: %d/%d/%v", e2.Dim(), e2.Features(), e2.Bandwidth())
	}
	x := []float64{0.1, -0.2, 0.3, 0.4, -0.5}
	a, _ := e1.EncodeBipolar(nil, x)
	b, _ := e2.EncodeBipolar(nil, x)
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("restored encoder differs (centers not rebuilt?)")
		}
	}
	raw1, _ := e1.Encode(nil, x)
	raw2, _ := e2.Encode(nil, x)
	for j := range raw1 {
		if raw1[j] != raw2[j] {
			t.Fatal("restored raw encoding differs")
		}
	}
}

func TestNonlinearGobRejectsCorrupt(t *testing.T) {
	e := &Nonlinear{}
	if err := e.GobDecode([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Structurally inconsistent state.
	var buf bytes.Buffer
	bad := nonlinearState{Dim: 10, Features: 2, Bandwidth: 1, Proj: make([]float64, 5), Bias: make([]float64, 10)}
	if err := gob.NewEncoder(&buf).Encode(bad); err != nil {
		t.Fatal(err)
	}
	if err := e.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("wrong projection length accepted")
	}
	buf.Reset()
	bad2 := nonlinearState{Dim: 10, Features: 2, Bandwidth: 1, Proj: make([]float64, 20), Bias: make([]float64, 9)}
	if err := gob.NewEncoder(&buf).Encode(bad2); err != nil {
		t.Fatal(err)
	}
	if err := e.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("wrong bias length accepted")
	}
	buf.Reset()
	bad3 := nonlinearState{Dim: 0}
	if err := gob.NewEncoder(&buf).Encode(bad3); err != nil {
		t.Fatal(err)
	}
	if err := e.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("zero-dim state accepted")
	}
}

func TestIDLevelGobRoundTrip(t *testing.T) {
	e1, err := NewIDLevel(rand.New(rand.NewSource(2)), 3, 200, 8, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e1); err != nil {
		t.Fatal(err)
	}
	e2 := &IDLevel{}
	if err := gob.NewDecoder(&buf).Decode(e2); err != nil {
		t.Fatal(err)
	}
	if e2.Dim() != 200 || e2.Features() != 3 || e2.Levels() != 8 {
		t.Fatal("restored id-level shape wrong")
	}
	x := []float64{0.2, -0.7, 0.9}
	a, _ := e1.EncodeBipolar(nil, x)
	b, _ := e2.EncodeBipolar(nil, x)
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("restored id-level encoder differs")
		}
	}
}

func TestIDLevelGobRejectsCorrupt(t *testing.T) {
	e := &IDLevel{}
	if err := e.GobDecode([]byte("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	bad := idLevelState{Dim: 10, Features: 2, Levels: 4, Lo: 0, Hi: 1, IDs: nil, Lvls: nil}
	if err := gob.NewEncoder(&buf).Encode(bad); err != nil {
		t.Fatal(err)
	}
	if err := e.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("missing tables accepted")
	}
	buf.Reset()
	bad2 := idLevelState{Dim: 10, Features: 2, Levels: 1}
	if err := gob.NewEncoder(&buf).Encode(bad2); err != nil {
		t.Fatal(err)
	}
	if err := e.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("single level accepted")
	}
}

func TestEncoderInterfaceGobRoundTrip(t *testing.T) {
	// Encoders must survive travel inside an Encoder interface value (the
	// model serialization path).
	e1, _ := NewNonlinear(rand.New(rand.NewSource(3)), 4, 128)
	var enc Encoder = e1
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&enc); err != nil {
		t.Fatal(err)
	}
	var back Encoder
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Dim() != 128 || back.Features() != 4 {
		t.Fatal("interface round trip lost shape")
	}
}
