package encoding

import (
	"math"
	"math/rand"
	"testing"

	"reghd/internal/hdc"
)

func seqBase(t *testing.T, feats, dim int) Encoder {
	t.Helper()
	e, err := NewNonlinearBandwidth(rand.New(rand.NewSource(21)), feats, dim, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewSequenceValidation(t *testing.T) {
	base := seqBase(t, 2, 128)
	if _, err := NewSequence(nil, 3); err == nil {
		t.Fatal("nil base accepted")
	}
	if _, err := NewSequence(base, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	s, err := NewSequence(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 128 || s.Features() != 8 || s.Window() != 4 {
		t.Fatalf("accessors wrong: D=%d n=%d W=%d", s.Dim(), s.Features(), s.Window())
	}
}

func TestSequenceInputLengthChecked(t *testing.T) {
	s, _ := NewSequence(seqBase(t, 2, 128), 3)
	if _, err := s.Encode(nil, make([]float64, 5)); err == nil {
		t.Fatal("wrong window length accepted")
	}
	if _, err := s.EncodeBipolar(nil, make([]float64, 7)); err == nil {
		t.Fatal("bipolar accepted wrong length")
	}
	if _, err := s.EncodeBinary(nil, make([]float64, 1)); err == nil {
		t.Fatal("binary accepted wrong length")
	}
}

func TestSequenceOrderSensitive(t *testing.T) {
	// Swapping two window steps must change the encoding substantially,
	// while the identical window stays identical.
	s, _ := NewSequence(seqBase(t, 1, 8000), 2)
	a := []float64{0.3, -0.8}
	swapped := []float64{-0.8, 0.3}
	ha, _ := s.EncodeBipolar(nil, a)
	hb, _ := s.EncodeBipolar(nil, append([]float64(nil), a...))
	hs, _ := s.EncodeBipolar(nil, swapped)
	if math.Abs(hdc.Cosine(nil, ha, hb)-1) > 1e-12 {
		t.Fatal("identical windows should encode identically")
	}
	if c := hdc.Cosine(nil, ha, hs); c > 0.5 {
		t.Fatalf("swapped window too similar: %v", c)
	}
}

func TestSequenceSimilarityPreserving(t *testing.T) {
	// Windows that agree on most steps stay similar.
	s, _ := NewSequence(seqBase(t, 1, 8000), 4)
	base := []float64{0.1, -0.2, 0.5, 0.9}
	near := []float64{0.1, -0.2, 0.5, 0.85}
	far := []float64{-0.9, 0.8, -0.5, -0.1}
	hb, _ := s.EncodeBipolar(nil, base)
	hn, _ := s.EncodeBipolar(nil, near)
	hf, _ := s.EncodeBipolar(nil, far)
	if hdc.Cosine(nil, hb, hn) <= hdc.Cosine(nil, hb, hf) {
		t.Fatal("sequence encoding not similarity preserving")
	}
	if hdc.Cosine(nil, hb, hn) < 0.5 {
		t.Fatalf("one-step change lost too much similarity: %v", hdc.Cosine(nil, hb, hn))
	}
}

func TestSequenceBinaryMatchesBipolar(t *testing.T) {
	s, _ := NewSequence(seqBase(t, 2, 300), 3)
	x := []float64{0.1, 0.2, -0.3, 0.4, 0.5, -0.6}
	bip, err := s.EncodeBipolar(nil, x)
	if err != nil {
		t.Fatal(err)
	}
	bin, _ := s.EncodeBinary(nil, x)
	dense := hdc.Unpack(bin)
	for j := range bip {
		if bip[j] != dense[j] {
			t.Fatalf("component %d differs", j)
		}
	}
	raw, bip2, err := s.EncodeBoth(nil, x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range bip2 {
		want := 1.0
		if raw[j] < 0 {
			want = -1
		}
		if bip2[j] != want {
			t.Fatal("EncodeBoth bipolar is not sign of raw")
		}
	}
}

func TestSequenceWindowOneMatchesBase(t *testing.T) {
	base := seqBase(t, 3, 500)
	s, _ := NewSequence(base, 1)
	x := []float64{0.4, -0.1, 0.7}
	want, _ := base.EncodeBipolar(nil, x)
	got, _ := s.EncodeBipolar(nil, x)
	if math.Abs(hdc.Cosine(nil, want, got)-1) > 1e-12 {
		t.Fatal("window-1 sequence should match the base encoder")
	}
}
