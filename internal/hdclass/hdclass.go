// Package hdclass implements a general hyperdimensional classifier — the
// learning primitive the paper's HD baseline builds on ([18], [19], [23])
// and the natural companion of RegHD in an HD learning system. Training is
// the standard two-phase recipe: single-pass bundling of encoded samples
// into class hypervectors, then iterative adaptive retraining (OnlineHD
// style: misclassified samples update the true and predicted classes
// scaled by how wrong the similarity was). Inference optionally runs on
// binarized class hypervectors with Hamming similarity, the same
// quantization trade-off RegHD makes for regression.
package hdclass

import (
	"errors"
	"fmt"
	"math/rand"

	"reghd/internal/encoding"
	"reghd/internal/hdc"
)

// Config holds the classifier hyper-parameters.
type Config struct {
	// Classes is the number of labels.
	Classes int
	// Epochs caps the retraining passes.
	Epochs int
	// Seed drives the per-epoch shuffling.
	Seed int64
	// Quantized selects binarized class hypervectors with Hamming
	// similarity at inference (training still accumulates into integer
	// class vectors, re-quantized per epoch).
	Quantized bool
}

// Validate fills defaults and rejects invalid settings.
func (c *Config) Validate() error {
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.Classes < 2 {
		return fmt.Errorf("hdclass: need at least 2 classes, got %d", c.Classes)
	}
	if c.Epochs < 0 {
		return errors.New("hdclass: negative epochs")
	}
	return nil
}

// Classifier is the trained model.
type Classifier struct {
	cfg        Config
	enc        encoding.Encoder
	classes    []hdc.Vector
	classesBin []*hdc.Binary
	rng        *rand.Rand
	trained    bool
}

// New constructs an untrained classifier over the encoder.
func New(enc encoding.Encoder, cfg Config) (*Classifier, error) {
	if enc == nil {
		return nil, errors.New("hdclass: nil encoder")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Classifier{cfg: cfg, enc: enc, rng: rand.New(rand.NewSource(cfg.Seed))}
	c.classes = make([]hdc.Vector, cfg.Classes)
	for i := range c.classes {
		c.classes[i] = hdc.NewVector(enc.Dim())
	}
	if cfg.Quantized {
		c.classesBin = make([]*hdc.Binary, cfg.Classes)
		for i := range c.classesBin {
			c.classesBin[i] = hdc.NewBinary(enc.Dim())
		}
	}
	return c, nil
}

// Classes returns the number of labels.
func (c *Classifier) Classes() int { return c.cfg.Classes }

// similarities fills sims with the class similarities of an encoded
// sample (cosine for integer classes, Hamming for quantized inference).
func (c *Classifier) similarities(s hdc.Vector, packed *hdc.Binary, sims []float64) {
	if c.cfg.Quantized {
		for i, cb := range c.classesBin {
			sims[i] = hdc.HammingSimilarity(nil, packed, cb)
		}
		return
	}
	for i, cv := range c.classes {
		sims[i] = hdc.Cosine(nil, s, cv)
	}
}

// Fit trains on feature rows X with integer labels in [0, Classes).
func (c *Classifier) Fit(x [][]float64, labels []int) error {
	if len(x) == 0 || len(x) != len(labels) {
		return fmt.Errorf("hdclass: %d samples with %d labels", len(x), len(labels))
	}
	encoded := make([]hdc.Vector, len(x))
	packed := make([]*hdc.Binary, len(x))
	for i, row := range x {
		if labels[i] < 0 || labels[i] >= c.cfg.Classes {
			return fmt.Errorf("hdclass: label %d out of range [0,%d)", labels[i], c.cfg.Classes)
		}
		s, err := c.enc.EncodeBipolar(nil, row)
		if err != nil {
			return fmt.Errorf("hdclass: encoding row %d: %w", i, err)
		}
		encoded[i] = s
		packed[i] = hdc.Pack(nil, s)
	}
	// Phase 1: single-pass bundling.
	for i, s := range encoded {
		hdc.Add(nil, c.classes[labels[i]], s)
	}
	c.refresh()
	// Phase 2: adaptive retraining. A misclassified sample pulls its true
	// class toward it and pushes the wrongly predicted class away, each
	// scaled by how confidently wrong the model was.
	sims := make([]float64, c.cfg.Classes)
	for ep := 0; ep < c.cfg.Epochs; ep++ {
		mistakes := 0
		for _, i := range c.rng.Perm(len(encoded)) {
			c.similarities(encoded[i], packed[i], sims)
			pred := hdc.Argmax(nil, sims)
			want := labels[i]
			if pred == want {
				continue
			}
			mistakes++
			hdc.AXPY(nil, c.classes[want], 1-sims[want], encoded[i])
			hdc.AXPY(nil, c.classes[pred], -(1 - sims[pred]), encoded[i])
		}
		c.refresh()
		if mistakes == 0 {
			break
		}
	}
	c.trained = true
	return nil
}

// refresh re-quantizes the binary class shadows.
func (c *Classifier) refresh() {
	if !c.cfg.Quantized {
		return
	}
	for i, cv := range c.classes {
		hdc.PackInto(nil, c.classesBin[i], cv)
	}
}

// ErrNotTrained is returned by prediction before Fit.
var ErrNotTrained = errors.New("hdclass: classifier has not been trained")

// Predict returns the most similar class for x.
func (c *Classifier) Predict(x []float64) (int, error) {
	scores, err := c.Scores(x)
	if err != nil {
		return 0, err
	}
	return hdc.Argmax(nil, scores), nil
}

// Scores returns the per-class similarity of x.
func (c *Classifier) Scores(x []float64) ([]float64, error) {
	if !c.trained {
		return nil, ErrNotTrained
	}
	s, err := c.enc.EncodeBipolar(nil, x)
	if err != nil {
		return nil, err
	}
	var packed *hdc.Binary
	if c.cfg.Quantized {
		packed = hdc.Pack(nil, s)
	}
	sims := make([]float64, c.cfg.Classes)
	c.similarities(s, packed, sims)
	return sims, nil
}

// Accuracy evaluates the classifier on labeled rows.
func (c *Classifier) Accuracy(x [][]float64, labels []int) (float64, error) {
	if len(x) == 0 || len(x) != len(labels) {
		return 0, fmt.Errorf("hdclass: %d samples with %d labels", len(x), len(labels))
	}
	correct := 0
	for i, row := range x {
		pred, err := c.Predict(row)
		if err != nil {
			return 0, err
		}
		if pred == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x)), nil
}
