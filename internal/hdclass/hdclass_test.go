package hdclass

import (
	"math/rand"
	"testing"

	"reghd/internal/encoding"
)

// blobs generates a labeled Gaussian-blob classification problem.
func blobs(rng *rand.Rand, n, feats, classes int, spread float64) (x [][]float64, labels []int) {
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, feats)
		for j := range centers[c] {
			centers[c][j] = 3 * rng.NormFloat64()
		}
	}
	for i := 0; i < n; i++ {
		c := rng.Intn(classes)
		row := make([]float64, feats)
		for j := range row {
			row[j] = centers[c][j] + spread*rng.NormFloat64()
		}
		x = append(x, row)
		labels = append(labels, c)
	}
	return x, labels
}

func newEnc(t *testing.T, feats, dim int) encoding.Encoder {
	t.Helper()
	e, err := encoding.NewNonlinearBandwidth(rand.New(rand.NewSource(7)), feats, dim, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	enc := newEnc(t, 3, 64)
	if _, err := New(nil, Config{Classes: 3}); err == nil {
		t.Fatal("nil encoder accepted")
	}
	if _, err := New(enc, Config{Classes: 1}); err == nil {
		t.Fatal("single class accepted")
	}
	if _, err := New(enc, Config{Classes: 3, Epochs: -1}); err == nil {
		t.Fatal("negative epochs accepted")
	}
}

func TestPredictBeforeFit(t *testing.T) {
	c, _ := New(newEnc(t, 3, 64), Config{Classes: 2})
	if _, err := c.Predict([]float64{1, 2, 3}); err != ErrNotTrained {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
	if _, err := c.Scores([]float64{1, 2, 3}); err != ErrNotTrained {
		t.Fatalf("Scores err = %v, want ErrNotTrained", err)
	}
}

func TestFitValidation(t *testing.T) {
	c, _ := New(newEnc(t, 2, 64), Config{Classes: 2})
	if err := c.Fit(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if err := c.Fit([][]float64{{1, 2}}, []int{5}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if err := c.Fit([][]float64{{1, 2}}, []int{0, 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := c.Fit([][]float64{{1}}, []int{0}); err == nil {
		t.Fatal("wrong feature count accepted")
	}
}

func TestLearnsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, labels := blobs(rng, 900, 5, 4, 0.8)
	trainX, trainY := x[:700], labels[:700]
	testX, testY := x[700:], labels[700:]
	c, err := New(newEnc(t, 5, 2000), Config{Classes: 4, Epochs: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	acc, err := c.Accuracy(testX, testY)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("blob accuracy %v too low", acc)
	}
}

func TestQuantizedNearIntegerQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, labels := blobs(rng, 900, 5, 4, 0.8)
	trainX, trainY := x[:700], labels[:700]
	testX, testY := x[700:], labels[700:]
	run := func(quantized bool) float64 {
		c, err := New(newEnc(t, 5, 2000), Config{Classes: 4, Epochs: 15, Seed: 4, Quantized: quantized})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Fit(trainX, trainY); err != nil {
			t.Fatal(err)
		}
		acc, err := c.Accuracy(testX, testY)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	full := run(false)
	quant := run(true)
	if quant < full-0.1 {
		t.Fatalf("quantized accuracy %v much worse than integer %v", quant, full)
	}
}

func TestScoresFavorTrueClass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, labels := blobs(rng, 400, 4, 3, 0.6)
	c, _ := New(newEnc(t, 4, 1000), Config{Classes: 3, Epochs: 10, Seed: 6})
	if err := c.Fit(x, labels); err != nil {
		t.Fatal(err)
	}
	scores, err := c.Scores(x[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("got %d scores", len(scores))
	}
	best, bestV := 0, scores[0]
	for i, v := range scores {
		if v > bestV {
			best, bestV = i, v
		}
	}
	if best != labels[0] {
		t.Logf("note: training sample 0 not top-scored (ok on hard data)")
	}
	if c.Classes() != 3 {
		t.Fatal("Classes accessor wrong")
	}
}

func TestAccuracyValidation(t *testing.T) {
	c, _ := New(newEnc(t, 2, 64), Config{Classes: 2})
	if _, err := c.Accuracy(nil, nil); err == nil {
		t.Fatal("empty accuracy accepted")
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, labels := blobs(rng, 200, 3, 2, 0.5)
	run := func() float64 {
		c, _ := New(newEnc(t, 3, 500), Config{Classes: 2, Epochs: 5, Seed: 8})
		if err := c.Fit(x, labels); err != nil {
			t.Fatal(err)
		}
		acc, _ := c.Accuracy(x, labels)
		return acc
	}
	if run() != run() {
		t.Fatal("training not deterministic")
	}
}
