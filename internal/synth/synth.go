// Package synth generates synthetic stand-ins for the seven public datasets
// of the paper's evaluation (diabetes, boston, airfoil, wine, facebook,
// ccpp, forest).
//
// The repository cannot ship the original UCI data, so each generator
// reproduces the *shape* of its dataset — sample count, feature count,
// target location/scale, noise floor, and structure. Inputs come from a
// mixture of well-separated clusters and the target composes three terms:
//
//	y = a_lin·(w_g·x) + a_off·offset_c + a_loc·sin(f·w_c·(x−center_c)) + ε
//
// a global linear trend (so linear baselines capture real signal), a
// cluster-dependent offset, and fine sinusoidal structure local to each
// cluster. The mixture-of-local-experts composition is exactly the workload
// for which the paper motivates multi-model RegHD: a single hypervector of
// limited dimensionality saturates trying to store every cluster's local
// function (§2.3), while per-cluster models recover it. The facebook and
// forest generators additionally apply a heavy-tail transform, reproducing
// those datasets' skewed targets. Generation is deterministic given a seed,
// and real CSVs can replace the generators via dataset.LoadCSV at any time.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"reghd/internal/dataset"
)

// Spec describes the shape of a synthetic regression dataset.
type Spec struct {
	// Name identifies the dataset in reports.
	Name string
	// Samples and Features give the dataset dimensions.
	Samples, Features int
	// Experts is the number of input clusters, each with its own offset
	// and local response. More experts means a more multi-modal target.
	Experts int
	// LinearWeight, OffsetWeight, and LocalWeight set the relative
	// amplitudes of the global-linear, cluster-offset, and local-sinusoid
	// components (in pre-standardization units).
	LinearWeight, OffsetWeight, LocalWeight float64
	// LocalFreq is the frequency of the local sinusoidal structure; higher
	// values need more model capacity.
	LocalFreq float64
	// NoiseStd is the irreducible noise, in standardized target units; it
	// sets the achievable MSE floor.
	NoiseStd float64
	// YMean and YStd place the target in the original dataset's units.
	YMean, YStd float64
	// YMin and YMax clamp the final target.
	YMin, YMax float64
	// HeavyTail applies an exponential transform producing a skewed target
	// (facebook interactions, forest burned area).
	HeavyTail bool
}

// Specs returns the specifications for all seven evaluation datasets,
// matched to the published dataset shapes:
//
//	diabetes: 442×10, y∈[25,346]      boston: 506×13, y∈[5,50]
//	airfoil: 1503×5, y∈[103,141] dB   wine: 4898×11, y∈[3,9]
//	facebook: 500×7, heavy tail       ccpp: 9568×4, y∈[420,496]
//	forest: 517×12, heavy tail
//
// Noise levels are set so that the relative MSE each learner achieves
// lands near the paper's Table 1 regime: diabetes and wine are noise-
// dominated, airfoil and ccpp are structure-dominated.
func Specs() []Spec {
	base := Spec{
		LinearWeight: 0.8,
		OffsetWeight: 1.0,
		LocalWeight:  0.9,
		LocalFreq:    2.5,
	}
	mk := func(name string, samples, feats, experts int, noise, ymean, ystd, ymin, ymax float64, heavy bool) Spec {
		s := base
		s.Name = name
		s.Samples = samples
		s.Features = feats
		s.Experts = experts
		s.NoiseStd = noise
		s.YMean = ymean
		s.YStd = ystd
		s.YMin = ymin
		s.YMax = ymax
		s.HeavyTail = heavy
		return s
	}
	return []Spec{
		mk("diabetes", 442, 10, 8, 0.80, 152, 77, 25, 346, false),
		mk("boston", 506, 13, 10, 0.40, 22.5, 9.2, 5, 50, false),
		mk("airfoil", 1503, 5, 14, 0.45, 124.8, 6.9, 103, 141, false),
		mk("wine", 4898, 11, 10, 0.85, 5.9, 0.89, 3, 9, false),
		mk("facebook", 500, 7, 8, 0.55, 60, 300, 0, 6000, true),
		mk("ccpp", 9568, 4, 16, 0.24, 454.4, 17.1, 420, 496, false),
		mk("forest", 517, 12, 8, 0.70, 12.8, 63.7, 0, 1091, true),
	}
}

// Names returns the dataset names in evaluation order.
func Names() []string {
	specs := Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// SpecByName returns the spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("synth: unknown dataset %q (known: %v)", name, Names())
}

// Load generates the named dataset deterministically from seed.
func Load(name string, seed int64) (*dataset.Dataset, error) {
	spec, err := SpecByName(name)
	if err != nil {
		return nil, err
	}
	return Generate(spec, seed)
}

// LoadAll generates every evaluation dataset with the same seed.
func LoadAll(seed int64) (map[string]*dataset.Dataset, error) {
	out := make(map[string]*dataset.Dataset, len(Specs()))
	for _, s := range Specs() {
		d, err := Generate(s, seed)
		if err != nil {
			return nil, err
		}
		out[s.Name] = d
	}
	return out, nil
}

// expert is one local component of the mixture.
type expert struct {
	center []float64 // cluster center in input space
	local  []float64 // direction of the local sinusoid
	offset float64   // cluster-dependent target offset
	phase  float64   // phase of the local sinusoid
}

// withinStd is the in-cluster input standard deviation (pre-scaling).
const withinStd = 0.6

// Generate draws a dataset from spec using a dedicated RNG seeded with seed.
func Generate(spec Spec, seed int64) (*dataset.Dataset, error) {
	switch {
	case spec.Samples <= 0:
		return nil, fmt.Errorf("synth: %s: Samples must be positive", spec.Name)
	case spec.Features <= 0:
		return nil, fmt.Errorf("synth: %s: Features must be positive", spec.Name)
	case spec.Experts <= 0:
		return nil, fmt.Errorf("synth: %s: Experts must be positive", spec.Name)
	case spec.NoiseStd < 0:
		return nil, fmt.Errorf("synth: %s: NoiseStd must be non-negative", spec.Name)
	case spec.YStd <= 0:
		return nil, fmt.Errorf("synth: %s: YStd must be positive", spec.Name)
	}
	rng := rand.New(rand.NewSource(seed))

	experts := make([]expert, spec.Experts)
	for c := range experts {
		e := expert{
			center: make([]float64, spec.Features),
			local:  make([]float64, spec.Features),
			offset: rng.NormFloat64(),
			phase:  rng.Float64() * 2 * math.Pi,
		}
		norm := 0.0
		for j := range e.center {
			e.center[j] = 3 * rng.NormFloat64()
			e.local[j] = rng.NormFloat64()
			norm += e.local[j] * e.local[j]
		}
		norm = math.Sqrt(norm)
		for j := range e.local {
			e.local[j] /= norm * withinStd // unit projection of (x−c)/withinStd
		}
		experts[c] = e
	}
	// Global linear trend direction.
	wg := make([]float64, spec.Features)
	for j := range wg {
		wg[j] = rng.NormFloat64() / (3 * math.Sqrt(float64(spec.Features)))
	}

	d := &dataset.Dataset{
		Name: spec.Name,
		X:    make([][]float64, spec.Samples),
		Y:    make([]float64, spec.Samples),
	}
	d.FeatureNames = make([]string, spec.Features)
	for j := range d.FeatureNames {
		d.FeatureNames[j] = fmt.Sprintf("f%d", j)
	}

	raw := make([]float64, spec.Samples)
	for i := 0; i < spec.Samples; i++ {
		e := experts[rng.Intn(spec.Experts)]
		x := make([]float64, spec.Features)
		var lin, loc float64
		for j := range x {
			x[j] = e.center[j] + withinStd*rng.NormFloat64()
			lin += wg[j] * x[j]
			loc += e.local[j] * (x[j] - e.center[j])
		}
		y := spec.LinearWeight*lin +
			spec.OffsetWeight*e.offset +
			spec.LocalWeight*math.Sin(spec.LocalFreq*loc+e.phase)
		d.X[i] = x
		raw[i] = y
	}

	// Standardize the noiseless target so NoiseStd is in comparable units,
	// then add noise, re-center, and map into the dataset's unit system.
	standardize(raw)
	for i := range raw {
		raw[i] += spec.NoiseStd * rng.NormFloat64()
	}
	standardize(raw)
	for i, z := range raw {
		var y float64
		if spec.HeavyTail {
			// Log-normal-style tail: most mass near zero, rare large values.
			y = spec.YMean * math.Expm1(math.Abs(z)) * 0.9
		} else {
			y = spec.YMean + spec.YStd*z
		}
		if y < spec.YMin {
			y = spec.YMin
		}
		if y > spec.YMax {
			y = spec.YMax
		}
		d.Y[i] = y
	}
	return d, nil
}

// standardize shifts and scales xs in place to zero mean, unit variance.
func standardize(xs []float64) {
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var variance float64
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	std := math.Sqrt(variance)
	if std < 1e-12 {
		std = 1
	}
	for i := range xs {
		xs[i] = (xs[i] - mean) / std
	}
}

// NoiseFloorMSE estimates the irreducible test MSE of a generated dataset in
// original target units: after the final re-standardization the noise share
// of unit variance is σ²/(1+σ²), mapped to original units by YStd². It
// gives experiments a scale against which learner MSEs can be judged.
func NoiseFloorMSE(spec Spec) float64 {
	s2 := spec.NoiseStd * spec.NoiseStd
	return s2 / (1 + s2) * spec.YStd * spec.YStd
}

// SortedNames returns the dataset names sorted alphabetically (handy for
// deterministic map iteration in reports).
func SortedNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}
