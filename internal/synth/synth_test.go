package synth

import (
	"math"
	"testing"

	"reghd/internal/dataset"
)

func TestSpecsShapes(t *testing.T) {
	want := map[string][2]int{
		"diabetes": {442, 10},
		"boston":   {506, 13},
		"airfoil":  {1503, 5},
		"wine":     {4898, 11},
		"facebook": {500, 7},
		"ccpp":     {9568, 4},
		"forest":   {517, 12},
	}
	specs := Specs()
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected dataset %q", s.Name)
		}
		if s.Samples != w[0] || s.Features != w[1] {
			t.Fatalf("%s shape %dx%d, want %dx%d", s.Name, s.Samples, s.Features, w[0], w[1])
		}
	}
}

func TestGenerateAllValid(t *testing.T) {
	all, err := LoadAll(1)
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range all {
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		spec, _ := SpecByName(name)
		if d.Len() != spec.Samples || d.Features() != spec.Features {
			t.Fatalf("%s wrong shape", name)
		}
		lo, hi := d.TargetRange()
		if lo < spec.YMin-1e-9 || hi > spec.YMax+1e-9 {
			t.Fatalf("%s target [%v,%v] outside clamp [%v,%v]", name, lo, hi, spec.YMin, spec.YMax)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Load("airfoil", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Load("airfoil", 7)
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed gave different targets")
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("same seed gave different features")
			}
		}
	}
}

func TestGenerateSeedMatters(t *testing.T) {
	a, _ := Load("boston", 1)
	b, _ := Load("boston", 2)
	same := true
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical datasets")
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("mnist", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := SpecByName(""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Spec{
		{Name: "x", Samples: 0, Features: 1, Experts: 1, YStd: 1},
		{Name: "x", Samples: 1, Features: 0, Experts: 1, YStd: 1},
		{Name: "x", Samples: 1, Features: 1, Experts: 0, YStd: 1},
		{Name: "x", Samples: 1, Features: 1, Experts: 1, NoiseStd: -1, YStd: 1},
		{Name: "x", Samples: 1, Features: 1, Experts: 1, YStd: 0},
	}
	for i, s := range bad {
		if _, err := Generate(s, 1); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestHeavyTailSkew(t *testing.T) {
	d, err := Load("forest", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy-tail targets: the mean should sit well above the median.
	ys := append([]float64(nil), d.Y...)
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	med := median(ys)
	if mean <= med {
		t.Fatalf("forest target not right-skewed: mean %v, median %v", mean, med)
	}
}

func TestTargetLocationScale(t *testing.T) {
	d, err := Load("ccpp", 5)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := SpecByName("ccpp")
	var mean float64
	for _, y := range d.Y {
		mean += y
	}
	mean /= float64(len(d.Y))
	if math.Abs(mean-spec.YMean) > spec.YStd {
		t.Fatalf("ccpp target mean %v too far from spec %v", mean, spec.YMean)
	}
	var variance float64
	for _, y := range d.Y {
		variance += (y - mean) * (y - mean)
	}
	std := math.Sqrt(variance / float64(len(d.Y)))
	if std < spec.YStd*0.5 || std > spec.YStd*2 {
		t.Fatalf("ccpp target std %v out of range of spec %v", std, spec.YStd)
	}
}

func TestMultiModalStructure(t *testing.T) {
	// Inputs come from distinct clusters: the pairwise distance distribution
	// should be bimodal — verify the max inter-sample distance is much
	// larger than the typical within-cluster distance (~√(2n)).
	d, err := Load("airfoil", 11)
	if err != nil {
		t.Fatal(err)
	}
	within := math.Sqrt(2 * float64(d.Features()))
	var maxDist float64
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			var s float64
			for k := range d.X[i] {
				dv := d.X[i][k] - d.X[j][k]
				s += dv * dv
			}
			if dist := math.Sqrt(s); dist > maxDist {
				maxDist = dist
			}
		}
	}
	if maxDist < 2*within {
		t.Fatalf("inputs do not look clustered: max dist %v vs within %v", maxDist, within)
	}
}

func TestNoiseFloorMSE(t *testing.T) {
	spec, _ := SpecByName("ccpp")
	floor := NoiseFloorMSE(spec)
	if floor <= 0 || floor > spec.YStd*spec.YStd {
		t.Fatalf("noise floor %v out of range", floor)
	}
	// Zero noise → zero floor.
	spec.NoiseStd = 0
	if NoiseFloorMSE(spec) != 0 {
		t.Fatal("zero noise should give zero floor")
	}
}

func TestNamesAndSortedNames(t *testing.T) {
	if len(Names()) != 7 || len(SortedNames()) != 7 {
		t.Fatal("expected 7 dataset names")
	}
	sorted := SortedNames()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatal("SortedNames not sorted")
		}
	}
}

func TestSplitsUsable(t *testing.T) {
	d, _ := Load("diabetes", 1)
	var ds *dataset.Dataset = d
	if ds.Len() == 0 {
		t.Fatal("empty")
	}
	med := median(append([]float64(nil), d.Y...))
	if med < 25 || med > 346 {
		t.Fatalf("diabetes median %v outside range", med)
	}
}

func median(xs []float64) float64 {
	// Simple selection for tests.
	n := len(xs)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if xs[j] < xs[i] {
				xs[i], xs[j] = xs[j], xs[i]
			}
		}
	}
	return xs[n/2]
}
