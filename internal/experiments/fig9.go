package experiments

import (
	"fmt"
	"strings"

	"reghd/internal/hwmodel"
)

// Fig9Result reproduces Fig. 9: training and inference speedup/energy
// efficiency of each quantization configuration relative to full-precision
// RegHD with integer clusters.
type Fig9Result struct {
	// Configs lists the row order (same configurations as Fig. 7).
	Configs []string
	// Ratios relative to the full-precision baseline (baseline = 1).
	TrainSpeedup, TrainEfficiency map[string]float64
	InferSpeedup, InferEfficiency map[string]float64
	Profile                       string
}

// Fig9ConfigEfficiency estimates each configuration's cost on the FPGA
// profile with k=8 models.
func Fig9ConfigEfficiency(o Options) (*Fig9Result, error) {
	o = o.withDefaults()
	shape := fig8DefaultShape(o)
	profile := hwmodel.FPGA()
	res := &Fig9Result{
		Profile:         profile.Name,
		TrainSpeedup:    map[string]float64{},
		TrainEfficiency: map[string]float64{},
		InferSpeedup:    map[string]float64{},
		InferEfficiency: map[string]float64{},
	}
	var baseTrain, baseInfer hwmodel.Cost
	for i, c := range fig7Configs {
		w := hwmodel.RegHDWorkload{
			Dim: shape.dim, Models: 8, Features: shape.features,
			TrainSamples: shape.samples, Epochs: shape.hdEpochs,
			ClusterMode: c.cm, PredictMode: c.pm,
		}
		tc, err := w.TrainCounts()
		if err != nil {
			return nil, err
		}
		ic, err := w.InferCounts(shape.queries)
		if err != nil {
			return nil, err
		}
		trainCost, err := hwmodel.Estimate(tc, profile)
		if err != nil {
			return nil, err
		}
		inferCost, err := hwmodel.Estimate(ic, profile)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			baseTrain, baseInfer = trainCost, inferCost
		}
		res.Configs = append(res.Configs, c.name)
		res.TrainSpeedup[c.name] = trainCost.Speedup(baseTrain)
		res.TrainEfficiency[c.name] = trainCost.EnergyEfficiency(baseTrain)
		res.InferSpeedup[c.name] = inferCost.Speedup(baseInfer)
		res.InferEfficiency[c.name] = inferCost.EnergyEfficiency(baseInfer)
	}
	return res, nil
}

// Render prints the configuration efficiency comparison.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9: configuration efficiency on %s (ratios, full precision = 1)\n", r.Profile)
	fmt.Fprintf(&b, "%-16s %14s %14s %14s %14s\n", "", "train speedup", "train energy", "infer speedup", "infer energy")
	for _, c := range r.Configs {
		fmt.Fprintf(&b, "%-16s %14.2f %14.2f %14.2f %14.2f\n",
			c, r.TrainSpeedup[c], r.TrainEfficiency[c], r.InferSpeedup[c], r.InferEfficiency[c])
	}
	return b.String()
}
