package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"reghd/internal/core"
	"reghd/internal/dataset"
	"reghd/internal/synth"
)

// ParScaleResult reports sharded parallel training (docs/TRAINING.md)
// against the sequential baseline on all seven evaluation datasets: test
// MSE and measured training wall-clock for sequential Fit and for
// FitParallel at each worker count. The quality claim is the one the
// bundling-merge design rests on — the merged model tracks the
// sequentially trained one — while the wall-clock columns document
// scaling honestly (speedup > 1 requires GOMAXPROCS >= workers; on a
// single core the shards time-slice and the columns sit at parity).
type ParScaleResult struct {
	// Datasets lists the workloads in evaluation order.
	Datasets []string
	// Workers lists the FitParallel worker counts measured.
	Workers []int
	// SeqMSE and SeqSeconds are the sequential Fit baseline per dataset.
	SeqMSE, SeqSeconds map[string]float64
	// ParMSE and ParSeconds index dataset then worker count.
	ParMSE, ParSeconds map[string]map[int]float64
}

// ParScale trains RegHD on every evaluation dataset sequentially and with
// sharded parallel training, measuring quality and wall-clock for each.
func ParScale(o Options) (*ParScaleResult, error) {
	o = o.withDefaults()
	res := &ParScaleResult{
		Datasets:   synth.Names(),
		Workers:    []int{2, 4},
		SeqMSE:     map[string]float64{},
		SeqSeconds: map[string]float64{},
		ParMSE:     map[string]map[int]float64{},
		ParSeconds: map[string]map[int]float64{},
	}
	for _, name := range res.Datasets {
		train, test, err := loadSplit(name, o)
		if err != nil {
			return nil, err
		}
		sc, err := dataset.FitScaler(train, true)
		if err != nil {
			return nil, err
		}
		trainS, err := sc.Transform(train)
		if err != nil {
			return nil, err
		}
		testS, err := sc.Transform(test)
		if err != nil {
			return nil, err
		}
		yScale := sc.YStd * sc.YStd

		run := func(workers int) (float64, float64, error) {
			hd, err := newRegHD(train.Features(), o, 8, core.ClusterInteger, core.PredictBinaryQuery)
			if err != nil {
				return 0, 0, err
			}
			start := time.Now()
			if workers <= 1 {
				_, err = hd.m.Fit(trainS)
			} else {
				_, err = hd.m.FitParallel(trainS, workers)
			}
			if err != nil {
				return 0, 0, fmt.Errorf("experiments: parscale %s w=%d: %w", name, workers, err)
			}
			secs := time.Since(start).Seconds()
			preds := make([]float64, testS.Len())
			for i, x := range testS.X {
				if preds[i], err = hd.m.Predict(x); err != nil {
					return 0, 0, err
				}
			}
			mse, err := dataset.MSE(preds, testS.Y)
			if err != nil {
				return 0, 0, err
			}
			return mse * yScale, secs, nil
		}

		mse, secs, err := run(1)
		if err != nil {
			return nil, err
		}
		res.SeqMSE[name], res.SeqSeconds[name] = mse, secs
		res.ParMSE[name] = map[int]float64{}
		res.ParSeconds[name] = map[int]float64{}
		for _, w := range res.Workers {
			mse, secs, err := run(w)
			if err != nil {
				return nil, err
			}
			res.ParMSE[name][w], res.ParSeconds[name][w] = mse, secs
		}
	}
	return res, nil
}

// Render prints the quality/wall-clock comparison table.
func (r *ParScaleResult) Render() string {
	var b strings.Builder
	b.WriteString("Sharded parallel training vs sequential Fit (measured)\n")
	fmt.Fprintf(&b, "%-10s %12s %10s", "dataset", "seq MSE", "seq s")
	for _, w := range r.Workers {
		fmt.Fprintf(&b, " %11s %9s %7s", fmt.Sprintf("w%d MSE", w), fmt.Sprintf("w%d s", w), "ratio")
	}
	b.WriteByte('\n')
	for _, d := range r.Datasets {
		fmt.Fprintf(&b, "%-10s %12.3f %10.3f", d, r.SeqMSE[d], r.SeqSeconds[d])
		for _, w := range r.Workers {
			ratio := 0.0
			if r.SeqMSE[d] > 0 {
				ratio = r.ParMSE[d][w] / r.SeqMSE[d]
			}
			fmt.Fprintf(&b, " %11.3f %9.3f %6.2fx", r.ParMSE[d][w], r.ParSeconds[d][w], ratio)
		}
		b.WriteByte('\n')
	}
	b.WriteString("ratio = parallel MSE / sequential MSE (1.0 = merged model matches sequential quality);\n")
	b.WriteString("wall-clock speedup requires GOMAXPROCS >= workers — see docs/TRAINING.md\n")
	return b.String()
}

// Table implements Tabular: one row per dataset×workers cell (workers=1 is
// the sequential baseline).
func (r *ParScaleResult) Table() ([]string, [][]string) {
	var rows [][]string
	for _, d := range r.Datasets {
		rows = append(rows, []string{d, "1", f(r.SeqMSE[d]), f(r.SeqSeconds[d])})
		for _, w := range r.Workers {
			rows = append(rows, []string{d, strconv.Itoa(w), f(r.ParMSE[d][w]), f(r.ParSeconds[d][w])})
		}
	}
	return []string{"dataset", "workers", "test_mse", "train_seconds"}, rows
}
