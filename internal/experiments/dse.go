package experiments

import (
	"fmt"
	"strings"

	"reghd/internal/core"
	"reghd/internal/hwsim"
)

// DSEResult is a design-space exploration of the RegHD inference
// accelerator on the cycle-level simulator: starting from a baseline
// resource allocation, each step widens the current bottleneck unit and
// records the throughput gained — the iterative sizing loop a hardware
// designer runs when mapping RegHD onto an FPGA.
type DSEResult struct {
	// Design is the accelerator's RegHD configuration.
	Design hwsim.Design
	// Steps records each sizing iteration.
	Steps []DSEStep
}

// DSEStep is one iteration of the bottleneck-widening loop.
type DSEStep struct {
	// Bottleneck is the stage that limited throughput before widening.
	Bottleneck string
	// CyclesPerQuery is the steady-state throughput at this allocation.
	CyclesPerQuery float64
	// Utilization is the bottleneck stage's busy fraction.
	Utilization float64
}

// widen doubles the resource behind a pipeline stage.
func widen(r hwsim.Resources, stage string) hwsim.Resources {
	switch stage {
	case "project":
		r.MACLanes *= 2
	case "trig":
		r.TrigLUTs *= 2
	case "pack":
		r.PackLanes *= 2
	case "similarity", "dot":
		r.SimUnits *= 2
	case "softmax":
		if r.SoftmaxCycles > 1 {
			r.SoftmaxCycles /= 2
		}
	case "accumulate":
		r.DotLanes *= 2
	}
	return r
}

// DesignSpaceExploration runs the bottleneck-widening loop for a RegHD-8
// inference accelerator at the paper's nominal D = 4k.
func DesignSpaceExploration(o Options) (*DSEResult, error) {
	o = o.withDefaults()
	design := hwsim.Design{
		Dim: 4096, Models: 8, Features: 10,
		ClusterMode: core.ClusterBinary, PredictMode: core.PredictBinaryQuery,
	}
	queries := 500
	steps := 6
	if o.Quick {
		design.Dim = 512
		queries = 50
		steps = 3
	}
	res := hwsim.DefaultResources()
	out := &DSEResult{Design: design}
	for i := 0; i < steps; i++ {
		tr, err := hwsim.SimulateInference(design, res, queries)
		if err != nil {
			return nil, err
		}
		out.Steps = append(out.Steps, DSEStep{
			Bottleneck:     tr.Bottleneck,
			CyclesPerQuery: tr.ThroughputCyclesPerQuery(),
			Utilization:    tr.Utilization[tr.Bottleneck],
		})
		res = widen(res, tr.Bottleneck)
	}
	return out, nil
}

// Render prints the exploration trace.
func (r *DSEResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Accelerator design-space exploration (RegHD-%d, D=%d, %s/%s)\n",
		r.Design.Models, r.Design.Dim, r.Design.ClusterMode, r.Design.PredictMode)
	fmt.Fprintf(&b, "%-6s %-14s %16s %12s\n", "step", "bottleneck", "cycles/query", "busy")
	for i, s := range r.Steps {
		fmt.Fprintf(&b, "%-6d %-14s %16.1f %11.1f%%\n", i+1, s.Bottleneck, s.CyclesPerQuery, s.Utilization*100)
	}
	if n := len(r.Steps); n > 1 {
		fmt.Fprintf(&b, "throughput gained: %.1fx after %d widening steps\n",
			r.Steps[0].CyclesPerQuery/r.Steps[n-1].CyclesPerQuery, n-1)
	}
	return b.String()
}
