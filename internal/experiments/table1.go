package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"reghd/internal/baselinehd"
	"reghd/internal/core"
	"reghd/internal/dtree"
	"reghd/internal/encoding"
	"reghd/internal/learner"
	"reghd/internal/linreg"
	"reghd/internal/mlp"
	"reghd/internal/svr"
	"reghd/internal/synth"
)

// Table1Result reproduces Table 1: test MSE of every learner on every
// evaluation dataset.
type Table1Result struct {
	// Datasets lists the dataset column order.
	Datasets []string
	// Learners lists the row order.
	Learners []string
	// MSE[learner][dataset] is the held-out mean squared error.
	MSE map[string]map[string]float64
}

// table1Learners is the Table 1 row order.
var table1Learners = []string{
	"dnn", "linreg", "dtree", "svr", "baseline-hd",
	"reghd-1", "reghd-2", "reghd-8", "reghd-32",
}

// Table1Quality runs every learner on every dataset and collects test MSE.
func Table1Quality(o Options) (*Table1Result, error) {
	o = o.withDefaults()
	res := &Table1Result{
		Datasets: synth.Names(),
		Learners: append([]string(nil), table1Learners...),
		MSE:      make(map[string]map[string]float64),
	}
	for _, l := range res.Learners {
		res.MSE[l] = make(map[string]float64)
	}
	for _, dsName := range res.Datasets {
		for rep := 0; rep < o.Replicates; rep++ {
			or := o
			or.Seed = o.Seed + int64(rep)*1009
			if err := table1Dataset(or, dsName, float64(o.Replicates), res); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// table1Dataset accumulates one replicate's MSEs for one dataset into res,
// weighting each by 1/replicates.
func table1Dataset(o Options, dsName string, replicates float64, res *Table1Result) error {
	train, test, err := loadSplit(dsName, o)
	if err != nil {
		return err
	}
	feats := train.Features()
	makers := map[string]func() (learner.Regressor, error){
		"dnn": func() (learner.Regressor, error) {
			cfg := mlp.DefaultConfig()
			cfg.Seed = o.Seed
			cfg.Epochs = 120
			if o.Quick {
				cfg.Epochs = 10
			}
			return mlp.New(feats, cfg)
		},
		"linreg": func() (learner.Regressor, error) {
			return linreg.New(linreg.Config{Lambda: 1})
		},
		"dtree": func() (learner.Regressor, error) {
			return dtree.New(dtree.DefaultConfig())
		},
		"svr": func() (learner.Regressor, error) {
			cfg := svr.DefaultConfig()
			cfg.Seed = o.Seed
			if o.Quick {
				cfg.Epochs = 5
			}
			return svr.New(cfg)
		},
		"baseline-hd": func() (learner.Regressor, error) {
			// The HD baseline is the prior system of [18]: it brings its
			// own generic encoding, not RegHD's workload-tuned kernel
			// bandwidth, exactly as the paper compares against it.
			enc, err := encoding.NewNonlinear(rand.New(rand.NewSource(o.Seed+7)), feats, o.Dim)
			if err != nil {
				return nil, err
			}
			cfg := baselinehd.DefaultConfig()
			cfg.Seed = o.Seed
			if o.Quick {
				cfg.Epochs = 3
				cfg.Bins = 16
			}
			return baselinehd.New(enc, cfg)
		},
	}
	for _, k := range []int{1, 2, 8, 32} {
		k := k
		makers[fmt.Sprintf("reghd-%d", k)] = func() (learner.Regressor, error) {
			return newRegHD(feats, o, k, core.ClusterInteger, core.PredictBinaryQuery)
		}
	}
	for _, lname := range res.Learners {
		r, err := makers[lname]()
		if err != nil {
			return fmt.Errorf("experiments: building %s for %s: %w", lname, dsName, err)
		}
		mse, err := scaledEval(r, train, test)
		if err != nil {
			return fmt.Errorf("experiments: %s on %s: %w", lname, dsName, err)
		}
		res.MSE[lname][dsName] += mse / replicates
	}
	return nil
}

// Render prints the Table 1 layout.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: quality of regression (test MSE)\n")
	fmt.Fprintf(&b, "%-14s", "")
	for _, d := range r.Datasets {
		fmt.Fprintf(&b, "%12s", d)
	}
	b.WriteByte('\n')
	for _, l := range r.Learners {
		fmt.Fprintf(&b, "%-14s", l)
		for _, d := range r.Datasets {
			fmt.Fprintf(&b, "%12.3f", r.MSE[l][d])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// AverageImprovement returns the mean relative MSE improvement of learner a
// over learner b across datasets (positive means a is better), mirroring
// the paper's "RegHD-32 provides on average 21.3% higher quality" style of
// summary.
func (r *Table1Result) AverageImprovement(a, b string) float64 {
	var sum float64
	var n int
	for _, d := range r.Datasets {
		ma, okA := r.MSE[a][d]
		mb, okB := r.MSE[b][d]
		//lint:ignore floatcmp a baseline MSE of exactly zero cannot be improved on; guard before division
		if !okA || !okB || mb == 0 {
			continue
		}
		sum += (mb - ma) / mb
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
