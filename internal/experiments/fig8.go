package experiments

import (
	"fmt"
	"strings"

	"reghd/internal/core"
	"reghd/internal/hwmodel"
	"reghd/internal/viz"
)

// Fig8Result reproduces Fig. 8: training and inference speedup and energy
// efficiency of RegHD (2, 8, and 32 models, binary clusters) and the HD
// baseline, all relative to the DNN on the FPGA profile.
type Fig8Result struct {
	// Systems lists the row order.
	Systems []string
	// TrainSpeedup, TrainEfficiency, InferSpeedup, InferEfficiency are
	// ratios relative to the DNN (DNN = 1).
	TrainSpeedup, TrainEfficiency map[string]float64
	InferSpeedup, InferEfficiency map[string]float64
	TrainSeconds, InferSeconds    map[string]float64
	TrainJoules, InferJoules      map[string]float64
	Profile                       string
}

// fig8Shape is the common workload shape of the efficiency comparison.
type fig8Shape struct {
	samples, features, queries int
	dnnEpochs, hdEpochs        int
	dim                        int
}

func fig8DefaultShape(o Options) fig8Shape {
	s := fig8Shape{
		samples: 2000, features: 10, queries: 2000,
		dnnEpochs: 40, hdEpochs: 20, dim: 4000,
	}
	if o.Quick {
		s = fig8Shape{samples: 100, features: 5, queries: 100, dnnEpochs: 5, hdEpochs: 2, dim: 256}
	}
	return s
}

// Fig8Efficiency estimates training and inference cost of every system on
// the FPGA profile and reports ratios relative to the DNN.
func Fig8Efficiency(o Options) (*Fig8Result, error) {
	o = o.withDefaults()
	shape := fig8DefaultShape(o)
	profile := hwmodel.FPGA()

	type sys struct {
		name         string
		train, infer hwmodel.Counts
	}
	var systems []sys

	// The paper's DNNs come from a per-dataset grid search; two hidden
	// layers of 384 units trained for 40 epochs is the representative
	// winner whose FPGA implementations (DNNWeaver/FPDeep) the comparison
	// targets.
	dnn := hwmodel.DNNWorkload{
		Layers:       []int{shape.features, 384, 384, 1},
		TrainSamples: shape.samples,
		Epochs:       shape.dnnEpochs,
		BatchSize:    32,
	}
	dnnTrain, err := dnn.TrainCounts()
	if err != nil {
		return nil, err
	}
	dnnInfer, err := dnn.InferCounts(shape.queries)
	if err != nil {
		return nil, err
	}
	systems = append(systems, sys{"dnn", dnnTrain, dnnInfer})

	bhd := hwmodel.BaselineHDWorkload{
		Dim: shape.dim, Bins: 64, Features: shape.features,
		TrainSamples: shape.samples, Epochs: shape.hdEpochs,
	}
	bhdTrain, err := bhd.TrainCounts()
	if err != nil {
		return nil, err
	}
	bhdInfer, err := bhd.InferCounts(shape.queries)
	if err != nil {
		return nil, err
	}
	systems = append(systems, sys{"baseline-hd", bhdTrain, bhdInfer})

	for _, k := range []int{2, 8, 32} {
		w := hwmodel.RegHDWorkload{
			Dim: shape.dim, Models: k, Features: shape.features,
			TrainSamples: shape.samples, Epochs: shape.hdEpochs,
			ClusterMode: core.ClusterBinary, PredictMode: core.PredictBinaryQuery,
		}
		tc, err := w.TrainCounts()
		if err != nil {
			return nil, err
		}
		ic, err := w.InferCounts(shape.queries)
		if err != nil {
			return nil, err
		}
		systems = append(systems, sys{fmt.Sprintf("reghd-%d", k), tc, ic})
	}

	res := &Fig8Result{
		Profile:         profile.Name,
		TrainSpeedup:    map[string]float64{},
		TrainEfficiency: map[string]float64{},
		InferSpeedup:    map[string]float64{},
		InferEfficiency: map[string]float64{},
		TrainSeconds:    map[string]float64{},
		InferSeconds:    map[string]float64{},
		TrainJoules:     map[string]float64{},
		InferJoules:     map[string]float64{},
	}
	var dnnTrainCost, dnnInferCost hwmodel.Cost
	for i, s := range systems {
		trainCost, err := hwmodel.Estimate(s.train, profile)
		if err != nil {
			return nil, err
		}
		inferCost, err := hwmodel.Estimate(s.infer, profile)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			dnnTrainCost, dnnInferCost = trainCost, inferCost
		}
		res.Systems = append(res.Systems, s.name)
		res.TrainSeconds[s.name] = trainCost.Seconds
		res.InferSeconds[s.name] = inferCost.Seconds
		res.TrainJoules[s.name] = trainCost.Joules
		res.InferJoules[s.name] = inferCost.Joules
		res.TrainSpeedup[s.name] = trainCost.Speedup(dnnTrainCost)
		res.TrainEfficiency[s.name] = trainCost.EnergyEfficiency(dnnTrainCost)
		res.InferSpeedup[s.name] = inferCost.Speedup(dnnInferCost)
		res.InferEfficiency[s.name] = inferCost.EnergyEfficiency(dnnInferCost)
	}
	return res, nil
}

// Render prints the efficiency comparison.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8: efficiency vs DNN on %s (ratios, DNN = 1)\n", r.Profile)
	fmt.Fprintf(&b, "%-14s %14s %14s %14s %14s\n", "", "train speedup", "train energy", "infer speedup", "infer energy")
	for _, s := range r.Systems {
		fmt.Fprintf(&b, "%-14s %14.2f %14.2f %14.2f %14.2f\n",
			s, r.TrainSpeedup[s], r.TrainEfficiency[s], r.InferSpeedup[s], r.InferEfficiency[s])
	}
	vals := make([]float64, len(r.Systems))
	for i, s := range r.Systems {
		vals[i] = r.TrainSpeedup[s]
	}
	b.WriteString("training speedup:\n")
	b.WriteString(viz.Bar(r.Systems, vals, 40))
	return b.String()
}
