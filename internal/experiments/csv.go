package experiments

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"
)

// Tabular is implemented by experiment results that can emit their data as
// a rectangular table, for CSV export and external plotting.
type Tabular interface {
	// Table returns the column header and the data rows.
	Table() (header []string, rows [][]string)
}

// RenderCSV serializes a Tabular result as CSV text.
func RenderCSV(t Tabular) (string, error) {
	header, rows := t.Table()
	if len(header) == 0 {
		return "", fmt.Errorf("experiments: empty table header")
	}
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.Write(header); err != nil {
		return "", err
	}
	for i, row := range rows {
		if len(row) != len(header) {
			return "", fmt.Errorf("experiments: row %d has %d cells, header has %d", i, len(row), len(header))
		}
		if err := w.Write(row); err != nil {
			return "", err
		}
	}
	w.Flush()
	return b.String(), w.Error()
}

// RunCSV executes the experiment and returns its CSV table. Experiments
// without a tabular form return an error.
func RunCSV(id string, o Options) (string, error) {
	r, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	res, err := r(o)
	if err != nil {
		return "", err
	}
	t, ok := res.(Tabular)
	if !ok {
		return "", fmt.Errorf("experiments: %q has no tabular form", id)
	}
	return RenderCSV(t)
}

// f formats a float for CSV.
func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// Table implements Tabular: one row per epoch.
func (r *Fig3aResult) Table() ([]string, [][]string) {
	rows := make([][]string, len(r.Epochs))
	for i, ep := range r.Epochs {
		rows[i] = []string{strconv.Itoa(ep), f(r.TestMSE[i])}
	}
	return []string{"epoch", "test_mse"}, rows
}

// Table implements Tabular: one row per dataset.
func (r *Fig3bResult) Table() ([]string, [][]string) {
	var rows [][]string
	for _, d := range r.Datasets {
		rows = append(rows, []string{d, f(r.SingleMSE[d]), f(r.MultiMSE[d])})
	}
	return []string{"dataset", "single_mse", "multi_mse"}, rows
}

// Table implements Tabular: one row per learner×dataset cell.
func (r *Table1Result) Table() ([]string, [][]string) {
	var rows [][]string
	for _, l := range r.Learners {
		for _, d := range r.Datasets {
			rows = append(rows, []string{l, d, f(r.MSE[l][d])})
		}
	}
	return []string{"learner", "dataset", "test_mse"}, rows
}

// Table implements Tabular: one row per cluster mode.
func (r *Fig6Result) Table() ([]string, [][]string) {
	var rows [][]string
	for _, m := range r.Modes {
		rows = append(rows, []string{m, f(r.MSE[m])})
	}
	return []string{"cluster_mode", "test_mse"}, rows
}

// Table implements Tabular: one row per config×dataset cell.
func (r *Fig7Result) Table() ([]string, [][]string) {
	var rows [][]string
	for _, c := range r.Configs {
		for _, d := range r.Datasets {
			rows = append(rows, []string{c, d, f(r.MSE[c][d]), f(r.Normalized[c][d])})
		}
	}
	return []string{"config", "dataset", "test_mse", "normalized_quality"}, rows
}

// Table implements Tabular: one row per system.
func (r *Fig8Result) Table() ([]string, [][]string) {
	var rows [][]string
	for _, s := range r.Systems {
		rows = append(rows, []string{
			s, f(r.TrainSpeedup[s]), f(r.TrainEfficiency[s]),
			f(r.InferSpeedup[s]), f(r.InferEfficiency[s]),
			f(r.TrainSeconds[s]), f(r.InferSeconds[s]),
			f(r.TrainJoules[s]), f(r.InferJoules[s]),
		})
	}
	return []string{
		"system", "train_speedup", "train_efficiency", "infer_speedup",
		"infer_efficiency", "train_seconds", "infer_seconds", "train_joules",
		"infer_joules",
	}, rows
}

// Table implements Tabular: one row per configuration.
func (r *Fig9Result) Table() ([]string, [][]string) {
	var rows [][]string
	for _, c := range r.Configs {
		rows = append(rows, []string{
			c, f(r.TrainSpeedup[c]), f(r.TrainEfficiency[c]),
			f(r.InferSpeedup[c]), f(r.InferEfficiency[c]),
		})
	}
	return []string{"config", "train_speedup", "train_efficiency", "infer_speedup", "infer_efficiency"}, rows
}

// Table implements Tabular: one row per dimensionality.
func (r *Table2Result) Table() ([]string, [][]string) {
	var rows [][]string
	for _, d := range r.Dims {
		rows = append(rows, []string{
			strconv.Itoa(d), f(r.QualityLoss[d]),
			f(r.TrainSpeedup[d]), f(r.TrainEfficiency[d]),
			f(r.InferSpeedup[d]), f(r.InferEfficiency[d]),
		})
	}
	return []string{"dim", "quality_loss", "train_speedup", "train_efficiency", "infer_speedup", "infer_efficiency"}, rows
}

// Table implements Tabular: one row per bundle size.
func (r *CapacityResult) Table() ([]string, [][]string) {
	var rows [][]string
	for _, p := range r.Patterns {
		rows = append(rows, []string{strconv.Itoa(p), f(r.Analytic[p]), f(r.MonteCarlo[p])})
	}
	return []string{"patterns", "analytic_fp", "montecarlo_fp"}, rows
}

// Table implements Tabular: one row per fault fraction.
func (r *RobustnessResult) Table() ([]string, [][]string) {
	var rows [][]string
	for _, fr := range r.Fractions {
		rows = append(rows, []string{f(fr), f(r.BinaryMSE[fr]), f(r.IntegerMSE[fr])})
	}
	return []string{"fault_fraction", "binary_model_mse", "integer_model_mse"}, rows
}

// Table implements Tabular: one row per sparsity level.
func (r *SparseResult) Table() ([]string, [][]string) {
	var rows [][]string
	for _, fr := range r.Fractions {
		rows = append(rows, []string{f(fr), f(r.MSE[fr]), f(r.InferSpeedup[fr])})
	}
	return []string{"sparsity", "test_mse", "infer_speedup"}, rows
}

// Table implements Tabular: one row per sweep variant.
func (r *AblationResult) Table() ([]string, [][]string) {
	var rows [][]string
	for _, g := range r.GroupOrder {
		for _, v := range r.VariantOrder[g] {
			rows = append(rows, []string{g, v, f(r.Groups[g][v])})
		}
	}
	return []string{"sweep", "variant", "test_mse"}, rows
}

// Table implements Tabular: one row per widening step.
func (r *DSEResult) Table() ([]string, [][]string) {
	var rows [][]string
	for i, s := range r.Steps {
		rows = append(rows, []string{strconv.Itoa(i + 1), s.Bottleneck, f(s.CyclesPerQuery), f(s.Utilization)})
	}
	return []string{"step", "bottleneck", "cycles_per_query", "utilization"}, rows
}

// Table implements Tabular: one row per platform×config cell.
func (r *PlatformsResult) Table() ([]string, [][]string) {
	var rows [][]string
	for _, p := range r.Profiles {
		for _, c := range r.Configs {
			rows = append(rows, []string{
				p, c, f(r.TrainSeconds[p][c]), f(r.TrainJoules[p][c]),
				f(r.InferSeconds[p][c]), f(r.InferJoules[p][c]),
			})
		}
	}
	return []string{"platform", "config", "train_seconds", "train_joules", "infer_seconds", "infer_joules"}, rows
}

// Table implements Tabular: one row per learner.
func (r *CPUResult) Table() ([]string, [][]string) {
	var rows [][]string
	for _, l := range []string{"dnn", "reghd-8"} {
		rows = append(rows, []string{l, f(r.TrainSeconds[l]), f(r.InferSeconds[l]), f(r.MSE[l])})
	}
	return []string{"learner", "train_seconds", "infer_seconds", "test_mse"}, rows
}
