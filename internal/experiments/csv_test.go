package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

// TestEveryExperimentHasTabularForm runs every registered experiment in
// quick mode and validates its CSV export: parseable, rectangular, and
// non-empty.
func TestEveryExperimentHasTabularForm(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, id := range IDs() {
		out, err := RunCSV(id, quick())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		records, err := csv.NewReader(strings.NewReader(out)).ReadAll()
		if err != nil {
			t.Fatalf("%s: invalid CSV: %v", id, err)
		}
		if len(records) < 2 {
			t.Fatalf("%s: CSV has no data rows", id)
		}
		width := len(records[0])
		for i, rec := range records {
			if len(rec) != width {
				t.Fatalf("%s: row %d width %d != header width %d", id, i, len(rec), width)
			}
		}
	}
}

func TestRunCSVUnknown(t *testing.T) {
	if _, err := RunCSV("nope", quick()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRenderCSVRejectsRaggedRows(t *testing.T) {
	bad := raggedTable{}
	if _, err := RenderCSV(bad); err == nil {
		t.Fatal("ragged table accepted")
	}
	if _, err := RenderCSV(emptyTable{}); err == nil {
		t.Fatal("empty header accepted")
	}
}

type raggedTable struct{}

func (raggedTable) Table() ([]string, [][]string) {
	return []string{"a", "b"}, [][]string{{"1"}}
}

type emptyTable struct{}

func (emptyTable) Table() ([]string, [][]string) { return nil, nil }

func TestTable1CSVCellCount(t *testing.T) {
	res, err := Table1Quality(quick())
	if err != nil {
		t.Fatal(err)
	}
	header, rows := res.Table()
	if len(header) != 3 {
		t.Fatalf("header = %v", header)
	}
	if len(rows) != len(res.Learners)*len(res.Datasets) {
		t.Fatalf("rows = %d, want %d", len(rows), len(res.Learners)*len(res.Datasets))
	}
}
