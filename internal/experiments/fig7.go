package experiments

import (
	"fmt"
	"strings"

	"reghd/internal/core"
	"reghd/internal/synth"
)

// fig7Config is one quantization configuration of Fig. 7.
type fig7Config struct {
	name string
	cm   core.ClusterMode
	pm   core.PredictMode
}

// fig7Configs is the Fig. 7 configuration order: full precision, quantized
// cluster, and the three prediction quantizations (each with quantized
// clusters, as deployed configurations would be).
var fig7Configs = []fig7Config{
	{"full", core.ClusterInteger, core.PredictFull},
	{"bin-cluster", core.ClusterBinary, core.PredictFull},
	{"bquery-imodel", core.ClusterBinary, core.PredictBinaryQuery},
	{"iquery-bmodel", core.ClusterBinary, core.PredictBinaryModel},
	{"bquery-bmodel", core.ClusterBinary, core.PredictBinaryBoth},
}

// Fig7Result reproduces Fig. 7: normalized quality of regression across
// quantization configurations.
type Fig7Result struct {
	// Datasets lists the workloads.
	Datasets []string
	// Configs lists the configuration order.
	Configs []string
	// MSE[config][dataset] is the held-out MSE.
	MSE map[string]map[string]float64
	// Normalized[config][dataset] is MSE(full)/MSE(config): 1 matches full
	// precision, smaller is worse (mirrors the paper's normalized-quality
	// bars).
	Normalized map[string]map[string]float64
}

// Fig7ConfigQuality evaluates every quantization configuration on every
// dataset with k=8 models.
func Fig7ConfigQuality(o Options) (*Fig7Result, error) {
	o = o.withDefaults()
	datasets := synth.Names()
	if o.Quick {
		datasets = datasets[:2]
	}
	res := &Fig7Result{
		Datasets:   datasets,
		MSE:        map[string]map[string]float64{},
		Normalized: map[string]map[string]float64{},
	}
	for _, c := range fig7Configs {
		res.Configs = append(res.Configs, c.name)
		res.MSE[c.name] = map[string]float64{}
		res.Normalized[c.name] = map[string]float64{}
	}
	// Quantization deltas are small (a few percent), so each cell averages
	// several seeds to separate them from split/initialization noise.
	seeds := []int64{o.Seed, o.Seed + 101, o.Seed + 202}
	if o.Quick {
		seeds = seeds[:1]
	}
	for _, dsName := range datasets {
		for _, seed := range seeds {
			os := o
			os.Seed = seed
			train, test, err := loadSplit(dsName, os)
			if err != nil {
				return nil, err
			}
			for _, c := range fig7Configs {
				r, err := newRegHD(train.Features(), os, 8, c.cm, c.pm)
				if err != nil {
					return nil, err
				}
				mse, err := scaledEval(r, train, test)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig7 %s on %s: %w", c.name, dsName, err)
				}
				res.MSE[c.name][dsName] += mse / float64(len(seeds))
			}
		}
		full := res.MSE["full"][dsName]
		for _, c := range fig7Configs {
			if m := res.MSE[c.name][dsName]; m > 0 {
				res.Normalized[c.name][dsName] = full / m
			}
		}
	}
	return res, nil
}

// AverageNormalized returns the mean normalized quality of a configuration
// across datasets.
func (r *Fig7Result) AverageNormalized(config string) float64 {
	var sum float64
	var n int
	for _, d := range r.Datasets {
		if v, ok := r.Normalized[config][d]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render prints normalized quality per configuration and dataset.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7: normalized quality by quantization configuration (1.0 = full precision)\n")
	fmt.Fprintf(&b, "%-16s", "")
	for _, d := range r.Datasets {
		fmt.Fprintf(&b, "%10s", d)
	}
	fmt.Fprintf(&b, "%10s\n", "avg")
	for _, c := range r.Configs {
		fmt.Fprintf(&b, "%-16s", c)
		for _, d := range r.Datasets {
			fmt.Fprintf(&b, "%10.3f", r.Normalized[c][d])
		}
		fmt.Fprintf(&b, "%10.3f\n", r.AverageNormalized(c))
	}
	return b.String()
}
