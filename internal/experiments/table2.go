package experiments

import (
	"fmt"
	"strings"

	"reghd/internal/core"
	"reghd/internal/hwmodel"
)

// Table2Result reproduces Table 2: quality loss and efficiency as the
// hypervector dimensionality shrinks from the 4k reference.
type Table2Result struct {
	// Dims lists the dimensionalities (reference first).
	Dims []int
	// QualityLoss[d] is the relative MSE increase vs the reference
	// dimension, averaged over the probe datasets (0 = no loss).
	QualityLoss map[int]float64
	// Speedup/efficiency ratios vs the reference dimension (reference = 1).
	TrainSpeedup, TrainEfficiency map[int]float64
	InferSpeedup, InferEfficiency map[int]float64
	// Datasets lists the quality probe workloads.
	Datasets []string
}

// table2Dims is the paper's dimensionality sweep.
var table2Dims = []int{4000, 3000, 2000, 1000, 500}

// Table2Dimensionality sweeps D, measuring quality on probe datasets and
// estimating cost on the FPGA profile.
func Table2Dimensionality(o Options) (*Table2Result, error) {
	o = o.withDefaults()
	dims := table2Dims
	datasets := []string{"airfoil", "ccpp", "boston"}
	if o.Quick {
		dims = []int{512, 256}
		datasets = datasets[:1]
	}
	res := &Table2Result{
		Dims:            dims,
		Datasets:        datasets,
		QualityLoss:     map[int]float64{},
		TrainSpeedup:    map[int]float64{},
		TrainEfficiency: map[int]float64{},
		InferSpeedup:    map[int]float64{},
		InferEfficiency: map[int]float64{},
	}
	// Quality: average MSE per dimension over the probe datasets.
	avgMSE := make(map[int]float64)
	for _, name := range datasets {
		train, test, err := loadSplit(name, o)
		if err != nil {
			return nil, err
		}
		// Normalize each dataset's contribution by its reference MSE so
		// large-scale targets do not dominate the average.
		var refMSE float64
		for _, d := range dims {
			od := o
			od.Dim = d
			r, err := newRegHD(train.Features(), od, 8, core.ClusterBinary, core.PredictBinaryQuery)
			if err != nil {
				return nil, err
			}
			mse, err := scaledEval(r, train, test)
			if err != nil {
				return nil, err
			}
			if d == dims[0] {
				refMSE = mse
			}
			if refMSE > 0 {
				avgMSE[d] += mse / refMSE
			}
		}
	}
	for _, d := range dims {
		res.QualityLoss[d] = avgMSE[d]/float64(len(datasets)) - 1
	}

	// Efficiency: analytic cost model per dimension.
	shape := fig8DefaultShape(o)
	profile := hwmodel.FPGA()
	var refTrain, refInfer hwmodel.Cost
	for i, d := range dims {
		w := hwmodel.RegHDWorkload{
			Dim: d, Models: 8, Features: shape.features,
			TrainSamples: shape.samples, Epochs: shape.hdEpochs,
			ClusterMode: core.ClusterBinary, PredictMode: core.PredictBinaryQuery,
		}
		tc, err := w.TrainCounts()
		if err != nil {
			return nil, err
		}
		ic, err := w.InferCounts(shape.queries)
		if err != nil {
			return nil, err
		}
		trainCost, err := hwmodel.Estimate(tc, profile)
		if err != nil {
			return nil, err
		}
		inferCost, err := hwmodel.Estimate(ic, profile)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			refTrain, refInfer = trainCost, inferCost
		}
		res.TrainSpeedup[d] = trainCost.Speedup(refTrain)
		res.TrainEfficiency[d] = trainCost.EnergyEfficiency(refTrain)
		res.InferSpeedup[d] = inferCost.Speedup(refInfer)
		res.InferEfficiency[d] = inferCost.EnergyEfficiency(refInfer)
	}
	return res, nil
}

// Render prints the Table 2 layout.
func (r *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: quality loss and efficiency vs dimensionality (avg of %v)\n", r.Datasets)
	fmt.Fprintf(&b, "%-18s", "dimensions")
	for _, d := range r.Dims {
		fmt.Fprintf(&b, "%10d", d)
	}
	b.WriteByte('\n')
	row := func(label string, vals map[int]float64, pct bool) {
		fmt.Fprintf(&b, "%-18s", label)
		for _, d := range r.Dims {
			if pct {
				fmt.Fprintf(&b, "%9.1f%%", vals[d]*100)
			} else {
				fmt.Fprintf(&b, "%9.2fx", vals[d])
			}
		}
		b.WriteByte('\n')
	}
	row("quality loss", r.QualityLoss, true)
	row("train speedup", r.TrainSpeedup, false)
	row("train efficiency", r.TrainEfficiency, false)
	row("infer speedup", r.InferSpeedup, false)
	row("infer efficiency", r.InferEfficiency, false)
	return b.String()
}
