package experiments

import (
	"fmt"
	"strings"

	"reghd/internal/viz"

	"reghd/internal/core"
	"reghd/internal/dataset"
)

// Fig3aResult reproduces Fig. 3a: regression quality over retraining
// iterations for single-model RegHD.
type Fig3aResult struct {
	// Dataset names the workload.
	Dataset string
	// Epochs lists the iteration indices (1-based).
	Epochs []int
	// TestMSE is the held-out MSE after each iteration.
	TestMSE []float64
}

// Fig3aIterations trains RegHD on the ccpp stand-in and records the test
// MSE after every retraining pass. A conservative learning rate makes the
// contribution of each retraining iteration visible, as in the paper's
// figure (with the default α the model converges within the first pass).
func Fig3aIterations(o Options) (*Fig3aResult, error) {
	o = o.withDefaults()
	train, test, err := loadSplit("ccpp", o)
	if err != nil {
		return nil, err
	}
	sc, err := dataset.FitScaler(train, true)
	if err != nil {
		return nil, err
	}
	trainS, err := sc.Transform(train)
	if err != nil {
		return nil, err
	}
	testS, err := sc.Transform(test)
	if err != nil {
		return nil, err
	}
	enc, err := newEncoder(train.Features(), o)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Models:       8,
		LearningRate: 0.03,
		Epochs:       o.Epochs,
		Tol:          1e-12, // disable early convergence: cover every epoch
		Patience:     1 << 30,
		Seed:         o.Seed + 13,
		PredictMode:  core.PredictBinaryQuery,
	}
	m, err := core.New(enc, cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig3aResult{Dataset: "ccpp"}
	_, err = m.FitCallback(trainS, func(ep int, _ float64) bool {
		mse, evalErr := m.Evaluate(testS)
		if evalErr != nil {
			err = evalErr
			return false
		}
		res.Epochs = append(res.Epochs, ep)
		res.TestMSE = append(res.TestMSE, mse*sc.YStd*sc.YStd) // back to original units
		return true
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the iteration curve with a terminal plot.
func (r *Fig3aResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3a: quality vs retraining iterations (%s)\n", r.Dataset)
	if chart := viz.Line(r.TestMSE, 60, 10); chart != "" {
		b.WriteString(chart)
		fmt.Fprintf(&b, "%9sepochs 1..%d\n", "", len(r.Epochs))
	}
	fmt.Fprintf(&b, "%8s %12s\n", "epoch", "test MSE")
	for i, ep := range r.Epochs {
		fmt.Fprintf(&b, "%8d %12.4f\n", ep, r.TestMSE[i])
	}
	return b.String()
}

// Fig3bResult reproduces Fig. 3b: single-model vs multi-model quality on
// complex (multi-modal) tasks.
type Fig3bResult struct {
	// Datasets lists the workloads.
	Datasets []string
	// SingleMSE and MultiMSE are held-out MSEs for k=1 and k=8.
	SingleMSE, MultiMSE map[string]float64
}

// Fig3bSingleVsMulti compares k=1 against k=8 on the two most multi-modal
// stand-ins at a capacity-limited dimensionality (the regime of §2.3's
// capacity analysis).
func Fig3bSingleVsMulti(o Options) (*Fig3bResult, error) {
	o = o.withDefaults()
	if !o.Quick {
		// The capacity argument bites when D is small relative to task
		// complexity; Fig. 3b therefore runs at reduced dimensionality.
		o.Dim = 512
	}
	res := &Fig3bResult{
		Datasets:  []string{"ccpp", "airfoil"},
		SingleMSE: map[string]float64{},
		MultiMSE:  map[string]float64{},
	}
	for _, name := range res.Datasets {
		train, test, err := loadSplit(name, o)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{1, 8} {
			r, err := newRegHD(train.Features(), o, k, core.ClusterInteger, core.PredictBinaryQuery)
			if err != nil {
				return nil, err
			}
			mse, err := scaledEval(r, train, test)
			if err != nil {
				return nil, err
			}
			if k == 1 {
				res.SingleMSE[name] = mse
			} else {
				res.MultiMSE[name] = mse
			}
		}
	}
	return res, nil
}

// Render prints the single-vs-multi comparison.
func (r *Fig3bResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3b: single vs multi model (test MSE)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "dataset", "single", "multi(k=8)")
	for _, d := range r.Datasets {
		fmt.Fprintf(&b, "%-10s %12.3f %12.3f\n", d, r.SingleMSE[d], r.MultiMSE[d])
	}
	return b.String()
}
