package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"reghd/internal/core"
	"reghd/internal/dataset"
	"reghd/internal/fault"
	"reghd/internal/repl"
	"reghd/internal/synth"
)

// ReplSyncResult reports the replicated-fleet quality claim
// (docs/REPLICATION.md): a 3-replica delta-sync fleet trained through a
// seeded chaos transport — 10% drop, duplication, reordering, and a full
// partition window that heals mid-run — against the sequential
// single-model baseline on all seven evaluation datasets. The fleet
// streams each training epoch as one sync round (replica i takes every
// third sample), folds the round by bundling merge, and serves the merged
// state; Converged records that every replica's merged base reached a
// Float64bits-identical fingerprint despite the chaos.
type ReplSyncResult struct {
	// Datasets lists the workloads in evaluation order.
	Datasets []string
	// Replicas is the fleet size; Rounds the sync rounds (= epochs) run.
	Replicas, Rounds int
	// SeqMSE is the sequential single-model baseline per dataset; FleetMSE
	// the healed fleet's merged-model MSE; Ratio their quotient.
	SeqMSE, FleetMSE map[string]float64
	// Converged records per dataset whether all replicas fingerprint
	// identically after the final fold.
	Converged map[string]bool
}

// replSyncFleetMSE trains one chaos-faulted fleet and returns its test MSE
// (in original target units) plus whether the fleet converged bit-exactly.
func replSyncFleetMSE(name string, o Options, trainS, testS *dataset.Dataset, yScale float64) (float64, bool, error) {
	const members = 3
	ctx := context.Background()
	faults, err := fault.NewNetFaults(fault.NetConfig{
		Drop:      0.10,
		Duplicate: 0.05,
		Reorder:   0.05,
		Seed:      o.Seed + 29,
	})
	if err != nil {
		return 0, false, err
	}
	net := repl.NewNetwork()
	chaos := repl.NewChaos(net, faults)
	replicas := make([]*repl.Replica, members)
	for id := 0; id < members; id++ {
		hd, err := newRegHD(trainS.Features(), o, 8, core.ClusterInteger, core.PredictBinaryQuery)
		if err != nil {
			return 0, false, err
		}
		r, err := repl.New(hd.m, repl.Config{
			ID:          id,
			Members:     members,
			SendTimeout: time.Second,
			RetryBudget: 2,
			BackoffBase: time.Millisecond,
			BackoffMax:  4 * time.Millisecond,
			JitterSeed:  o.Seed,
		}, chaos)
		if err != nil {
			return 0, false, err
		}
		net.Register(id, r.Handler())
		replicas[id] = r
	}

	rounds := o.Epochs
	for round := 1; round <= rounds; round++ {
		for i := range trainS.X {
			if err := replicas[i%members].PartialFit(trainS.X[i], trainS.Y[i]); err != nil {
				return 0, false, fmt.Errorf("experiments: replsync %s round %d: %w", name, round, err)
			}
		}
		// One full partition window mid-run: the middle replica drops off
		// the fleet for the first pump iterations of the middle round,
		// then heals — the experiment's headline fault.
		partitioned := round == rounds/2+1
		if partitioned {
			faults.Isolate(1)
		}
		for _, r := range replicas {
			_ = r.Seal(ctx) // chaos loss; the pump below retries
		}
		folded := false
		for iter := 0; iter < 500 && !folded; iter++ {
			if partitioned && iter == 3 {
				faults.HealAll()
			}
			for _, r := range replicas {
				_ = r.Flush(ctx)
			}
			if err := chaos.Drain(ctx); err != nil {
				return 0, false, err
			}
			folded = true
			for _, r := range replicas {
				if r.Round() < uint64(round) {
					folded = false
				}
			}
		}
		if !folded {
			return 0, false, fmt.Errorf("experiments: replsync %s: fleet stuck at round %d", name, round)
		}
	}

	converged := true
	fp := replicas[0].Fingerprint()
	for _, r := range replicas[1:] {
		if r.Fingerprint() != fp {
			converged = false
		}
	}
	preds := make([]float64, testS.Len())
	for i, x := range testS.X {
		if preds[i], err = replicas[0].Predict(x); err != nil {
			return 0, false, err
		}
	}
	mse, err := dataset.MSE(preds, testS.Y)
	if err != nil {
		return 0, false, err
	}
	return mse * yScale, converged, nil
}

// ReplSync runs the replicated-fleet vs sequential comparison on every
// evaluation dataset.
func ReplSync(o Options) (*ReplSyncResult, error) {
	o = o.withDefaults()
	res := &ReplSyncResult{
		Datasets:  synth.Names(),
		Replicas:  3,
		Rounds:    o.Epochs,
		SeqMSE:    map[string]float64{},
		FleetMSE:  map[string]float64{},
		Converged: map[string]bool{},
	}
	for _, name := range res.Datasets {
		train, test, err := loadSplit(name, o)
		if err != nil {
			return nil, err
		}
		sc, err := dataset.FitScaler(train, true)
		if err != nil {
			return nil, err
		}
		trainS, err := sc.Transform(train)
		if err != nil {
			return nil, err
		}
		testS, err := sc.Transform(test)
		if err != nil {
			return nil, err
		}
		yScale := sc.YStd * sc.YStd

		hd, err := newRegHD(train.Features(), o, 8, core.ClusterInteger, core.PredictBinaryQuery)
		if err != nil {
			return nil, err
		}
		if _, err := hd.m.Fit(trainS); err != nil {
			return nil, fmt.Errorf("experiments: replsync %s baseline: %w", name, err)
		}
		preds := make([]float64, testS.Len())
		for i, x := range testS.X {
			if preds[i], err = hd.m.Predict(x); err != nil {
				return nil, err
			}
		}
		seq, err := dataset.MSE(preds, testS.Y)
		if err != nil {
			return nil, err
		}
		res.SeqMSE[name] = seq * yScale

		fleet, converged, err := replSyncFleetMSE(name, o, trainS, testS, yScale)
		if err != nil {
			return nil, err
		}
		res.FleetMSE[name] = fleet
		res.Converged[name] = converged
	}
	return res, nil
}

// Render prints the fleet-vs-sequential quality table.
func (r *ReplSyncResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Delta-sync fleet (%d replicas, chaos transport, %d rounds) vs sequential\n", r.Replicas, r.Rounds)
	fmt.Fprintf(&b, "%-10s %12s %12s %7s %10s\n", "dataset", "seq MSE", "fleet MSE", "ratio", "converged")
	for _, d := range r.Datasets {
		ratio := 0.0
		if r.SeqMSE[d] > 0 {
			ratio = r.FleetMSE[d] / r.SeqMSE[d]
		}
		fmt.Fprintf(&b, "%-10s %12.3f %12.3f %6.2fx %10v\n", d, r.SeqMSE[d], r.FleetMSE[d], ratio, r.Converged[d])
	}
	b.WriteString("fleet trained through seeded 10% drop + duplication + reordering + one healed partition;\n")
	b.WriteString("converged = all replicas Float64bits-identical after the final fold — see docs/REPLICATION.md\n")
	return b.String()
}

// Table implements Tabular: one row per dataset.
func (r *ReplSyncResult) Table() ([]string, [][]string) {
	var rows [][]string
	for _, d := range r.Datasets {
		rows = append(rows, []string{
			d, strconv.Itoa(r.Replicas), f(r.SeqMSE[d]), f(r.FleetMSE[d]),
			strconv.FormatBool(r.Converged[d]),
		})
	}
	return []string{"dataset", "replicas", "seq_mse", "fleet_mse", "converged"}, rows
}
