package experiments

import (
	"fmt"
	"strings"

	"reghd/internal/core"
	"reghd/internal/viz"
)

// Fig6Result reproduces Fig. 6: regression quality with and without cluster
// quantization, against the naive-binarization strawman.
type Fig6Result struct {
	// Dataset names the workload.
	Dataset string
	// Modes lists the cluster modes compared.
	Modes []string
	// MSE[mode] is the held-out MSE.
	MSE map[string]float64
}

// Fig6ClusterQuantQuality compares integer clustering, the framework's
// binary clustering (binary search + integer update + re-quantization), and
// naive one-shot binarization on the ccpp stand-in (the most cluster-
// structured workload) with k=8 models.
func Fig6ClusterQuantQuality(o Options) (*Fig6Result, error) {
	o = o.withDefaults()
	train, test, err := loadSplit("ccpp", o)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{
		Dataset: "ccpp",
		Modes:   []string{"integer", "framework-binary", "naive-binary"},
		MSE:     map[string]float64{},
	}
	modes := map[string]core.ClusterMode{
		"integer":          core.ClusterInteger,
		"framework-binary": core.ClusterBinary,
		"naive-binary":     core.ClusterNaiveBinary,
	}
	for name, cm := range modes {
		r, err := newRegHD(train.Features(), o, 8, cm, core.PredictBinaryQuery)
		if err != nil {
			return nil, err
		}
		mse, err := scaledEval(r, train, test)
		if err != nil {
			return nil, err
		}
		res.MSE[name] = mse
	}
	return res, nil
}

// Render prints the cluster-quantization comparison as a bar chart.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6: cluster quantization quality (%s, k=8, test MSE)\n", r.Dataset)
	vals := make([]float64, len(r.Modes))
	for i, m := range r.Modes {
		vals[i] = r.MSE[m]
	}
	b.WriteString(viz.Bar(r.Modes, vals, 40))
	return b.String()
}
