package experiments

import "testing"

// trendOptions are moderate full-pipeline settings: large enough for the
// paper's trends to be signal, small enough for the test suite.
func trendOptions() Options {
	return Options{Seed: 1, Dim: 512, MaxSamples: 1200, Epochs: 20}
}

// TestTrendMultiModelWins asserts the Fig. 3b headline at experiment scale:
// k=8 beats k=1 on the most multi-modal workload.
func TestTrendMultiModelWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline trend test")
	}
	res, err := Fig3bSingleVsMulti(trendOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.MultiMSE["ccpp"] >= res.SingleMSE["ccpp"] {
		t.Fatalf("multi-model (%v) did not beat single (%v) on ccpp",
			res.MultiMSE["ccpp"], res.SingleMSE["ccpp"])
	}
}

// TestTrendNaiveBinarizationWorst asserts the Fig. 6 ordering at experiment
// scale: the framework's binary clustering tracks integer clustering while
// naive binarization trails both.
func TestTrendNaiveBinarizationWorst(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline trend test")
	}
	res, err := Fig6ClusterQuantQuality(trendOptions())
	if err != nil {
		t.Fatal(err)
	}
	integer := res.MSE["integer"]
	framework := res.MSE["framework-binary"]
	naive := res.MSE["naive-binary"]
	if naive <= framework {
		t.Fatalf("naive binarization (%v) should trail the framework (%v)", naive, framework)
	}
	if framework > integer*1.25 {
		t.Fatalf("framework binary clustering (%v) strayed too far from integer (%v)", framework, integer)
	}
}

// TestTrendParallelQualityParity asserts the sharded-training claim at
// experiment scale (docs/TRAINING.md): on every evaluation dataset the
// bundling-merged model's test MSE stays within tolerance of the
// sequentially trained one, at both worker counts. The 1.3x bound is the
// same pinned tolerance as the core-level parity tests — the merge is an
// approximation of the sequential update order, not a bit-exact replay.
func TestTrendParallelQualityParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline trend test")
	}
	res, err := ParScale(trendOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Datasets {
		for _, w := range res.Workers {
			if res.ParMSE[d][w] > res.SeqMSE[d]*1.3+1e-3 {
				t.Fatalf("%s w=%d: parallel MSE %.4f vs sequential %.4f exceeds 1.3x",
					d, w, res.ParMSE[d][w], res.SeqMSE[d])
			}
		}
	}
}

// TestTrendEfficiencyHeadlines asserts the Fig. 8 headlines: RegHD-8
// beats the DNN on both phases, and fewer models are cheaper.
func TestTrendEfficiencyHeadlines(t *testing.T) {
	res, err := Fig8Efficiency(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainSpeedup["reghd-8"] < 3 || res.TrainSpeedup["reghd-8"] > 15 {
		t.Fatalf("reghd-8 train speedup %v outside the paper's regime (5.6x)", res.TrainSpeedup["reghd-8"])
	}
	if res.InferSpeedup["reghd-8"] < 1.5 || res.InferSpeedup["reghd-8"] > 6 {
		t.Fatalf("reghd-8 infer speedup %v outside the paper's regime (2.9x)", res.InferSpeedup["reghd-8"])
	}
	// Paper: RegHD-2 is ≈4.9x and RegHD-8 ≈2.8x faster than RegHD-32.
	r2vs32 := res.TrainSpeedup["reghd-2"] / res.TrainSpeedup["reghd-32"]
	r8vs32 := res.TrainSpeedup["reghd-8"] / res.TrainSpeedup["reghd-32"]
	if r2vs32 < 3 || r2vs32 > 8 {
		t.Fatalf("reghd-2/reghd-32 ratio %v, paper reports 4.9x", r2vs32)
	}
	if r8vs32 < 2 || r8vs32 > 4 {
		t.Fatalf("reghd-8/reghd-32 ratio %v, paper reports 2.8x", r8vs32)
	}
}

// TestTrendDimensionalityEfficiency asserts Table 2's cost side: the
// modeled efficiency scales near-linearly in D.
func TestTrendDimensionalityEfficiency(t *testing.T) {
	res, err := Table2Dimensionality(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	small := res.Dims[len(res.Dims)-1]
	ratio := float64(res.Dims[0]) / float64(small)
	if res.InferSpeedup[small] < ratio*0.7 || res.InferSpeedup[small] > ratio*1.3 {
		t.Fatalf("inference speedup %v at D=%d, want ≈%v", res.InferSpeedup[small], small, ratio)
	}
}

// TestTrendReplSyncQuality asserts the replication acceptance bound
// (docs/REPLICATION.md): a healed 3-replica chaos-trained fleet — 10%
// drop, duplication, reordering, one full partition window — reaches test
// MSE within 1.2x of the sequential baseline on every evaluation dataset,
// and every replica's merged state is Float64bits-identical.
func TestTrendReplSyncQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline trend test")
	}
	res, err := ReplSync(trendOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Datasets {
		if !res.Converged[d] {
			t.Fatalf("%s: fleet did not converge bit-exactly", d)
		}
		if res.FleetMSE[d] > res.SeqMSE[d]*1.2+1e-3 {
			t.Fatalf("%s: fleet MSE %.4f vs sequential %.4f exceeds 1.2x",
				d, res.FleetMSE[d], res.SeqMSE[d])
		}
	}
}
