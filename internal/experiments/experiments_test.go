package experiments

import (
	"strings"
	"testing"
)

// quick returns smoke-test options.
func quick() Options { return Options{Quick: true, Seed: 1} }

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Seed == 0 || o.Dim == 0 || o.MaxSamples == 0 || o.Epochs == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
	q := Options{Quick: true}.withDefaults()
	if q.Dim >= o.Dim || q.MaxSamples >= o.MaxSamples {
		t.Fatal("Quick did not shrink the knobs")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablate", "bitflip", "cap", "cpu", "dse", "fig3a", "fig3b", "fig6", "fig7", "fig8", "fig9", "parscale", "platforms", "replsync", "robust", "sparse", "table1", "table2"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", quick()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig3aSmoke(t *testing.T) {
	res, err := Fig3aIterations(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) == 0 || len(res.Epochs) != len(res.TestMSE) {
		t.Fatalf("malformed result: %+v", res)
	}
	for _, m := range res.TestMSE {
		if m < 0 {
			t.Fatal("negative MSE")
		}
	}
	if !strings.Contains(res.Render(), "Fig 3a") {
		t.Fatal("render missing title")
	}
}

func TestFig3bSmoke(t *testing.T) {
	res, err := Fig3bSingleVsMulti(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Datasets {
		if res.SingleMSE[d] <= 0 || res.MultiMSE[d] <= 0 {
			t.Fatalf("missing MSE for %s", d)
		}
	}
	if !strings.Contains(res.Render(), "Fig 3b") {
		t.Fatal("render missing title")
	}
}

func TestTable1Smoke(t *testing.T) {
	res, err := Table1Quality(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Learners) != 9 {
		t.Fatalf("expected 9 learners, got %v", res.Learners)
	}
	for _, l := range res.Learners {
		for _, d := range res.Datasets {
			if res.MSE[l][d] <= 0 {
				t.Fatalf("non-positive MSE for %s on %s", l, d)
			}
		}
	}
	out := res.Render()
	if !strings.Contains(out, "reghd-32") || !strings.Contains(out, "diabetes") {
		t.Fatalf("render incomplete:\n%s", out)
	}
	// AverageImprovement is antisymmetric-ish in sign.
	if res.AverageImprovement("reghd-1", "reghd-1") != 0 {
		t.Fatal("self improvement should be 0")
	}
	if res.AverageImprovement("missing", "reghd-1") != 0 {
		t.Fatal("missing learner should give 0")
	}
}

func TestFig6Smoke(t *testing.T) {
	res, err := Fig6ClusterQuantQuality(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Modes {
		if res.MSE[m] <= 0 {
			t.Fatalf("missing MSE for %s", m)
		}
	}
	if !strings.Contains(res.Render(), "Fig 6") {
		t.Fatal("render missing title")
	}
}

func TestFig7Smoke(t *testing.T) {
	res, err := Fig7ConfigQuality(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Configs) != 5 {
		t.Fatalf("expected 5 configs, got %v", res.Configs)
	}
	for _, d := range res.Datasets {
		if v := res.Normalized["full"][d]; v != 1 {
			t.Fatalf("full config should normalize to 1, got %v", v)
		}
	}
	if res.AverageNormalized("full") != 1 {
		t.Fatal("full average should be 1")
	}
	if !strings.Contains(res.Render(), "Fig 7") {
		t.Fatal("render missing title")
	}
}

func TestFig8Smoke(t *testing.T) {
	res, err := Fig8Efficiency(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainSpeedup["dnn"] != 1 || res.InferEfficiency["dnn"] != 1 {
		t.Fatal("DNN must be the unit reference")
	}
	// The paper's headline: RegHD-8 trains faster and more efficiently
	// than the DNN.
	if res.TrainSpeedup["reghd-8"] <= 1 {
		t.Fatalf("reghd-8 train speedup %v, expected > 1", res.TrainSpeedup["reghd-8"])
	}
	if res.TrainEfficiency["reghd-8"] <= 1 {
		t.Fatalf("reghd-8 train efficiency %v, expected > 1", res.TrainEfficiency["reghd-8"])
	}
	// More models cost more.
	if res.TrainSpeedup["reghd-2"] <= res.TrainSpeedup["reghd-32"] {
		t.Fatal("reghd-2 should be faster than reghd-32")
	}
	if !strings.Contains(res.Render(), "Fig 8") {
		t.Fatal("render missing title")
	}
}

func TestFig9Smoke(t *testing.T) {
	res, err := Fig9ConfigEfficiency(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainSpeedup["full"] != 1 {
		t.Fatal("full must be the unit reference")
	}
	// Quantized clustering must speed up training (Fig. 9's headline).
	if res.TrainSpeedup["bquery-imodel"] <= 1 {
		t.Fatalf("quantized config speedup %v, expected > 1", res.TrainSpeedup["bquery-imodel"])
	}
	// Fully binary prediction is the fastest inference.
	if res.InferSpeedup["bquery-bmodel"] <= res.InferSpeedup["bin-cluster"] {
		t.Fatal("bquery-bmodel should have the best inference speedup")
	}
	if !strings.Contains(res.Render(), "Fig 9") {
		t.Fatal("render missing title")
	}
}

func TestTable2Smoke(t *testing.T) {
	res, err := Table2Dimensionality(quick())
	if err != nil {
		t.Fatal(err)
	}
	ref := res.Dims[0]
	if res.QualityLoss[ref] != 0 {
		t.Fatalf("reference quality loss %v, want 0", res.QualityLoss[ref])
	}
	if res.TrainSpeedup[ref] != 1 || res.InferSpeedup[ref] != 1 {
		t.Fatal("reference ratios must be 1")
	}
	small := res.Dims[len(res.Dims)-1]
	if res.InferSpeedup[small] <= 1 {
		t.Fatalf("smaller D should be faster: %v", res.InferSpeedup[small])
	}
	if !strings.Contains(res.Render(), "Table 2") {
		t.Fatal("render missing title")
	}
}

func TestCapacitySmoke(t *testing.T) {
	res, err := CapacityAnalysis(quick())
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, p := range res.Patterns {
		if res.Analytic[p] < prev {
			t.Fatal("analytic FP rate should grow with P")
		}
		prev = res.Analytic[p]
	}
	if res.PaperPoint < 0.04 || res.PaperPoint > 0.07 {
		t.Fatalf("paper point %v, expected ≈0.057", res.PaperPoint)
	}
	if !strings.Contains(res.Render(), "capacity") {
		t.Fatal("render missing title")
	}
}

func TestRobustSmoke(t *testing.T) {
	res, err := RobustnessSweep(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Fractions {
		if res.BinaryMSE[f] <= 0 || res.IntegerMSE[f] <= 0 {
			t.Fatalf("missing MSE at fraction %v", f)
		}
	}
	if !strings.Contains(res.Render(), "robustness") {
		t.Fatal("render missing title")
	}
}

func TestAblationSmoke(t *testing.T) {
	res, err := AblationSweep(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.GroupOrder {
		if len(res.Groups[g]) == 0 {
			t.Fatalf("empty ablation group %s", g)
		}
		for v, mse := range res.Groups[g] {
			if mse <= 0 {
				t.Fatalf("%s/%s has non-positive MSE", g, v)
			}
		}
	}
	if !strings.Contains(res.Render(), "Ablations") {
		t.Fatal("render missing title")
	}
}

func TestSparseSmoke(t *testing.T) {
	res, err := SparsitySweep(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.InferSpeedup[0] != 1 {
		t.Fatalf("dense speedup %v, want 1", res.InferSpeedup[0])
	}
	last := res.Fractions[len(res.Fractions)-1]
	if res.InferSpeedup[last] <= 1 {
		t.Fatalf("sparsity should speed inference up: %v", res.InferSpeedup[last])
	}
	for _, f := range res.Fractions {
		if res.MSE[f] <= 0 {
			t.Fatalf("missing MSE at %v", f)
		}
	}
	if !strings.Contains(res.Render(), "SparseHD") {
		t.Fatal("render missing title")
	}
}

func TestDSESmoke(t *testing.T) {
	res, err := DesignSpaceExploration(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) < 2 {
		t.Fatalf("expected several steps, got %d", len(res.Steps))
	}
	first := res.Steps[0].CyclesPerQuery
	last := res.Steps[len(res.Steps)-1].CyclesPerQuery
	if last > first {
		t.Fatalf("widening bottlenecks made throughput worse: %v -> %v", first, last)
	}
	if !strings.Contains(res.Render(), "design-space") {
		t.Fatal("render missing title")
	}
}

func TestPlatformsSmoke(t *testing.T) {
	res, err := PlatformComparison(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 2 {
		t.Fatalf("profiles = %v", res.Profiles)
	}
	fpga, arm := res.Profiles[0], res.Profiles[1]
	// The FPGA's parallel fabric must beat the embedded CPU on every cell.
	for _, c := range res.Configs {
		if res.InferSeconds[fpga][c] >= res.InferSeconds[arm][c] {
			t.Fatalf("FPGA not faster than ARM for %s", c)
		}
	}
	// Quantization must help on both platforms.
	for _, p := range res.Profiles {
		if res.InferSeconds[p]["quantized"] >= res.InferSeconds[p]["full"] {
			t.Fatalf("quantization did not speed inference on %s", p)
		}
	}
	if !strings.Contains(res.Render(), "Platforms") {
		t.Fatal("render missing title")
	}
}

func TestCPUWallClockSmoke(t *testing.T) {
	res, err := CPUWallClock(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []string{"reghd-8", "dnn"} {
		if res.TrainSeconds[l] <= 0 || res.InferSeconds[l] <= 0 {
			t.Fatalf("%s has non-positive measured time", l)
		}
		if res.MSE[l] <= 0 {
			t.Fatalf("%s has non-positive MSE", l)
		}
	}
	if !strings.Contains(res.Render(), "wall-clock") {
		t.Fatal("render missing title")
	}
}

func TestParScaleSmoke(t *testing.T) {
	res, err := ParScale(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 7 {
		t.Fatalf("expected 7 datasets, got %v", res.Datasets)
	}
	for _, d := range res.Datasets {
		if res.SeqMSE[d] <= 0 || res.SeqSeconds[d] <= 0 {
			t.Fatalf("missing sequential baseline for %s", d)
		}
		for _, w := range res.Workers {
			if res.ParMSE[d][w] <= 0 || res.ParSeconds[d][w] <= 0 {
				t.Fatalf("missing w=%d measurement for %s", w, d)
			}
		}
	}
	if !strings.Contains(res.Render(), "Sharded parallel training") {
		t.Fatal("render missing title")
	}
	if _, rows := res.Table(); len(rows) != 7*3 {
		t.Fatalf("expected 21 table rows, got %d", len(rows))
	}
}

func TestReplSyncSmoke(t *testing.T) {
	res, err := ReplSync(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 7 {
		t.Fatalf("expected 7 datasets, got %v", res.Datasets)
	}
	for _, d := range res.Datasets {
		if res.SeqMSE[d] <= 0 || res.FleetMSE[d] <= 0 {
			t.Fatalf("missing MSE for %s: seq=%v fleet=%v", d, res.SeqMSE[d], res.FleetMSE[d])
		}
		if !res.Converged[d] {
			t.Fatalf("fleet did not converge bit-exactly on %s", d)
		}
	}
	if !strings.Contains(res.Render(), "Delta-sync fleet") {
		t.Fatal("render missing title")
	}
	if _, rows := res.Table(); len(rows) != 7 {
		t.Fatalf("expected 7 table rows, got %d", len(rows))
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by individual smoke tests")
	}
	for _, id := range IDs() {
		out, err := Run(id, quick())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) == 0 {
			t.Fatalf("%s: empty render", id)
		}
	}
}
