package experiments

import (
	"fmt"
	"strings"

	"reghd/internal/core"
	"reghd/internal/dataset"
	"reghd/internal/hwmodel"
)

// SparseResult backs the SparseHD-style extension ([40] in the paper's
// related work): quality and modeled inference efficiency as the trained
// regression models are sparsified.
type SparseResult struct {
	// Dataset names the workload.
	Dataset string
	// Fractions lists the sparsity levels swept.
	Fractions []float64
	// MSE[f] is the held-out MSE after sparsifying to fraction f.
	MSE map[float64]float64
	// InferSpeedup[f] is the modeled inference speedup vs the dense model
	// on the FPGA profile.
	InferSpeedup map[float64]float64
}

// SparsitySweep trains RegHD on the ccpp stand-in, then sparsifies the
// models progressively, measuring quality and the modeled cost saving.
func SparsitySweep(o Options) (*SparseResult, error) {
	o = o.withDefaults()
	train, test, err := loadSplit("ccpp", o)
	if err != nil {
		return nil, err
	}
	res := &SparseResult{
		Dataset:      "ccpp",
		Fractions:    []float64{0, 0.25, 0.5, 0.75, 0.9},
		MSE:          map[float64]float64{},
		InferSpeedup: map[float64]float64{},
	}
	if o.Quick {
		res.Fractions = []float64{0, 0.5}
	}

	sc, err := dataset.FitScaler(train, true)
	if err != nil {
		return nil, err
	}
	trainS, err := sc.Transform(train)
	if err != nil {
		return nil, err
	}
	testS, err := sc.Transform(test)
	if err != nil {
		return nil, err
	}
	yScale := sc.YStd * sc.YStd

	profile := hwmodel.FPGA()
	shape := fig8DefaultShape(o)
	var denseCost hwmodel.Cost
	for i, frac := range res.Fractions {
		// Fresh model per level: sparsification is destructive.
		r, err := newRegHD(train.Features(), o, 8, core.ClusterBinary, core.PredictBinaryQuery)
		if err != nil {
			return nil, err
		}
		if _, err := r.m.Fit(trainS); err != nil {
			return nil, err
		}
		if err := r.m.Sparsify(frac); err != nil {
			return nil, err
		}
		mse, err := r.m.Evaluate(testS)
		if err != nil {
			return nil, err
		}
		res.MSE[frac] = mse * yScale

		w := hwmodel.RegHDWorkload{
			Dim: shape.dim, Models: 8, Features: shape.features,
			TrainSamples: shape.samples, Epochs: shape.hdEpochs,
			ClusterMode: core.ClusterBinary, PredictMode: core.PredictBinaryQuery,
			ModelSparsity: frac,
		}
		ic, err := w.InferCounts(shape.queries)
		if err != nil {
			return nil, err
		}
		cost, err := hwmodel.Estimate(ic, profile)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			denseCost = cost
		}
		res.InferSpeedup[frac] = cost.Speedup(denseCost)
	}
	return res, nil
}

// Render prints the sparsity sweep.
func (r *SparseResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SparseHD extension: model sparsification on %s (k=8)\n", r.Dataset)
	fmt.Fprintf(&b, "%-10s %12s %16s\n", "sparsity", "test MSE", "infer speedup")
	for _, f := range r.Fractions {
		fmt.Fprintf(&b, "%-10.2f %12.3f %15.2fx\n", f, r.MSE[f], r.InferSpeedup[f])
	}
	return b.String()
}
