package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"reghd/internal/core"
	"reghd/internal/encoding"
)

// AblationResult sweeps the design choices DESIGN.md §2 calls out —
// multi-model update rule, softmax inverse temperature, encoder projection
// distribution, and kernel bandwidth — on a fixed workload, so the default
// configuration can be defended quantitatively.
type AblationResult struct {
	// Dataset names the workload.
	Dataset string
	// Groups maps a sweep name ("update-rule", "softmax-beta", "encoder",
	// "bandwidth") to variant → held-out MSE.
	Groups map[string]map[string]float64
	// GroupOrder and VariantOrder fix the rendering order.
	GroupOrder   []string
	VariantOrder map[string][]string
}

// AblationSweep runs every variant on the ccpp stand-in with k=8 models.
func AblationSweep(o Options) (*AblationResult, error) {
	o = o.withDefaults()
	train, test, err := loadSplit("ccpp", o)
	if err != nil {
		return nil, err
	}
	feats := train.Features()
	res := &AblationResult{
		Dataset:      "ccpp",
		Groups:       map[string]map[string]float64{},
		GroupOrder:   []string{"update-rule", "softmax-beta", "encoder", "bandwidth"},
		VariantOrder: map[string][]string{},
	}
	for _, g := range res.GroupOrder {
		res.Groups[g] = map[string]float64{}
	}

	run := func(enc encoding.Encoder, mutate func(*core.Config)) (float64, error) {
		cfg := core.Config{
			Models:      8,
			Epochs:      o.Epochs,
			Seed:        o.Seed + 13,
			PredictMode: core.PredictBinaryQuery,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		m, err := core.New(enc, cfg)
		if err != nil {
			return 0, err
		}
		return scaledEval(&regHD{m: m, name: "ablation"}, train, test)
	}
	stdEnc := func() (encoding.Encoder, error) { return newEncoder(feats, o) }

	// Update rule.
	for _, v := range []struct {
		name string
		rule core.UpdateRule
	}{{"weighted", core.UpdateWeighted}, {"hardmax", core.UpdateHardMax}} {
		enc, err := stdEnc()
		if err != nil {
			return nil, err
		}
		mse, err := run(enc, func(c *core.Config) { c.UpdateRule = v.rule })
		if err != nil {
			return nil, err
		}
		res.Groups["update-rule"][v.name] = mse
		res.VariantOrder["update-rule"] = append(res.VariantOrder["update-rule"], v.name)
	}

	// Softmax inverse temperature.
	for _, beta := range []float64{2, 10, 30} {
		enc, err := stdEnc()
		if err != nil {
			return nil, err
		}
		mse, err := run(enc, func(c *core.Config) { c.SoftmaxBeta = beta })
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("beta=%g", beta)
		res.Groups["softmax-beta"][name] = mse
		res.VariantOrder["softmax-beta"] = append(res.VariantOrder["softmax-beta"], name)
	}

	// Encoder family: Gaussian projection (default), the paper-literal
	// bipolar projection, and the record-based ID-level encoder.
	bw := encoderBandwidth(feats)
	encoders := []struct {
		name string
		mk   func() (encoding.Encoder, error)
	}{
		{"nonlinear-gauss", stdEnc},
		{"nonlinear-bipolar", func() (encoding.Encoder, error) {
			return encoding.NewNonlinearProjection(rand.New(rand.NewSource(o.Seed+7)), feats, o.Dim, bw, encoding.ProjBipolar)
		}},
		{"id-level", func() (encoding.Encoder, error) {
			return encoding.NewIDLevel(rand.New(rand.NewSource(o.Seed+7)), feats, o.Dim, 64, -3, 3)
		}},
	}
	for _, e := range encoders {
		enc, err := e.mk()
		if err != nil {
			return nil, err
		}
		mse, err := run(enc, nil)
		if err != nil {
			return nil, err
		}
		res.Groups["encoder"][e.name] = mse
		res.VariantOrder["encoder"] = append(res.VariantOrder["encoder"], e.name)
	}

	// Kernel bandwidth around the experiments' 0.6·√n heuristic.
	for _, scale := range []float64{0.5, 1.0, 2.0, 4.0} {
		enc, err := encoding.NewNonlinearBandwidth(rand.New(rand.NewSource(o.Seed+7)), feats, o.Dim, bw*scale)
		if err != nil {
			return nil, err
		}
		mse, err := run(enc, nil)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%.1fx", scale)
		res.Groups["bandwidth"][name] = mse
		res.VariantOrder["bandwidth"] = append(res.VariantOrder["bandwidth"], name)
	}
	return res, nil
}

// Render prints each sweep group.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations on %s (k=8, test MSE)\n", r.Dataset)
	for _, g := range r.GroupOrder {
		fmt.Fprintf(&b, "%s:\n", g)
		for _, v := range r.VariantOrder[g] {
			fmt.Fprintf(&b, "  %-20s %12.3f\n", v, r.Groups[g][v])
		}
	}
	return b.String()
}
