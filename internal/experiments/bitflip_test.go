package experiments

import (
	"math"
	"testing"
)

// TestBitFlipDeterministic: the sweep is reproducible bit-for-bit from its
// seed — the property the acceptance bar and docs/ROBUSTNESS.md promise.
func TestBitFlipDeterministic(t *testing.T) {
	a, err := Run("bitflip", quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("bitflip", quick())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same options produced different sweeps:\n%s\n---\n%s", a, b)
	}
}

// TestTrendQuantizedDegradesGracefully asserts the paper's robustness
// headline at experiment scale: at bit-error rates of 1% and above, every
// quantized prediction configuration loses strictly less relative accuracy
// than the full-precision deployment, whose 64-bit components blow up as
// soon as exponent bits start flipping.
func TestTrendQuantizedDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline trend test")
	}
	res, err := BitFlipSweep(trendOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, ber := range res.BERs {
		if ber < 0.01 {
			continue
		}
		full := res.Degradation("full", ber)
		for _, c := range []string{"bquery-imodel", "iquery-bmodel", "bquery-bmodel"} {
			if c == "bquery-imodel" {
				// The binary-query config still stores its models in 64-bit
				// floats, so its model store blows up like full precision;
				// the claim under test is about the binary-model configs.
				continue
			}
			d := res.Degradation(c, ber)
			if math.IsInf(d, 1) || d >= full {
				t.Errorf("BER %v: %s degradation %vx not below full-precision %vx", ber, c, d, full)
			}
		}
		// The fully binary deployment must stay within an order of
		// magnitude of its clean accuracy even at 10% BER — the graceful
		// part of graceful degradation.
		if d := res.Degradation("bquery-bmodel", ber); d > 10 {
			t.Errorf("BER %v: bquery-bmodel degraded %vx, expected < 10x", ber, d)
		}
	}
}
