package experiments

import "testing"

// TestExperimentsDeterministic asserts that a fixed seed reproduces every
// experiment bit-for-bit — the property that makes the reported
// EXPERIMENTS.md numbers reproducible on any machine.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated quick runs")
	}
	for _, id := range []string{"cap", "fig3a", "fig6", "fig8", "dse", "sparse"} {
		a, err := Run(id, quick())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		b, err := Run(id, quick())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a != b {
			t.Fatalf("%s: same options produced different output:\n%s\n---\n%s", id, a, b)
		}
	}
}

// TestExperimentsSeedMatters asserts different seeds give different
// quality numbers (the randomness is live, not frozen).
func TestExperimentsSeedMatters(t *testing.T) {
	a, err := Run("fig6", Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig6", Options{Quick: true, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different seeds produced identical quality tables")
	}
}
