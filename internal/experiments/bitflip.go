package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"reghd/internal/core"
	"reghd/internal/dataset"
	"reghd/internal/fault"
)

// bitFlipConfig is one deployment configuration of the bit-flip sweep.
type bitFlipConfig struct {
	label string
	cm    core.ClusterMode
	pm    core.PredictMode
}

// bitFlipConfigs are the four prediction deployments the paper's robustness
// argument compares: the full-precision baseline and the three quantized
// configurations of Section 3.2. Order is the column order of the table.
var bitFlipConfigs = []bitFlipConfig{
	{"full", core.ClusterInteger, core.PredictFull},
	{"bquery-imodel", core.ClusterBinary, core.PredictBinaryQuery},
	{"iquery-bmodel", core.ClusterBinary, core.PredictBinaryModel},
	{"bquery-bmodel", core.ClusterBinary, core.PredictBinaryBoth},
}

// BitFlipResult is the quality-vs-bit-error-rate curve behind the paper's
// robustness claim: test MSE of each deployment configuration after
// injecting random bit flips into the hypervector stores its prediction
// path reads, at increasing bit-error rates. Full-precision deployments
// store 64 IEEE-754 bits per component — one exponent flip can move a
// component by orders of magnitude — while quantized deployments store one
// bounded bit per component, so their curves should stay flat far longer.
type BitFlipResult struct {
	// Dataset names the workload.
	Dataset string
	// BERs lists the injected bit-error rates.
	BERs []float64
	// Configs lists the deployment labels in column order.
	Configs []string
	// TargetBits maps each config to the size (in bits) of the faulted
	// stores — the physical surface a given BER acts on.
	TargetBits map[string]int
	// Clean maps each config to its fault-free test MSE (original target
	// units).
	Clean map[string]float64
	// MSE maps config -> BER -> faulted test MSE. Non-finite values are
	// real measurements: they mean the deployment failed catastrophically.
	MSE map[string]map[float64]float64
}

// Degradation returns MSE(config, ber) / clean MSE — the relative quality
// loss, with non-finite measurements reported as +Inf (a catastrophic
// failure dominates every finite degradation).
func (r *BitFlipResult) Degradation(config string, ber float64) float64 {
	mse := r.MSE[config][ber]
	if math.IsNaN(mse) || math.IsInf(mse, 0) {
		return math.Inf(1)
	}
	return mse / r.Clean[config]
}

// BitFlipSweep trains the four deployment configurations on the airfoil
// stand-in, then measures test MSE under sticky bit-flip injection
// (internal/fault) at each bit-error rate. Every (config, BER) cell wraps a
// fresh clone of the trained model, so faults never accumulate across
// cells, and every injection is seeded deterministically from Options.Seed
// — the whole sweep is reproducible bit-for-bit.
func BitFlipSweep(o Options) (*BitFlipResult, error) {
	o = o.withDefaults()
	train, test, err := loadSplit("airfoil", o)
	if err != nil {
		return nil, err
	}
	res := &BitFlipResult{
		Dataset:    "airfoil",
		BERs:       []float64{0.0001, 0.001, 0.01, 0.05, 0.10},
		TargetBits: map[string]int{},
		Clean:      map[string]float64{},
		MSE:        map[string]map[float64]float64{},
	}
	if o.Quick {
		res.BERs = []float64{0.01, 0.10}
	}

	sc, err := dataset.FitScaler(train, true)
	if err != nil {
		return nil, err
	}
	trainS, err := sc.Transform(train)
	if err != nil {
		return nil, err
	}
	testS, err := sc.Transform(test)
	if err != nil {
		return nil, err
	}
	yScale := sc.YStd * sc.YStd

	for ci, cfg := range bitFlipConfigs {
		res.Configs = append(res.Configs, cfg.label)
		r, err := newRegHD(train.Features(), o, 8, cfg.cm, cfg.pm)
		if err != nil {
			return nil, err
		}
		if _, err := r.m.Fit(trainS); err != nil {
			return nil, err
		}
		clean, err := r.m.Evaluate(testS)
		if err != nil {
			return nil, err
		}
		res.Clean[cfg.label] = clean * yScale
		res.MSE[cfg.label] = map[float64]float64{}
		for bi, ber := range res.BERs {
			inj, err := fault.New(r.m, fault.Config{
				BER:  ber,
				Mode: fault.Sticky,
				Seed: o.Seed + int64(1000*ci+bi),
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: wrapping %s at BER %v: %w", cfg.label, ber, err)
			}
			res.TargetBits[cfg.label] = inj.TargetBits()
			mse, err := inj.Evaluate(testS)
			if err != nil {
				return nil, err
			}
			res.MSE[cfg.label][ber] = mse * yScale
		}
	}
	return res, nil
}

// Table implements Tabular: one row per (config, BER) cell, including the
// clean baseline as BER 0.
func (r *BitFlipResult) Table() ([]string, [][]string) {
	var rows [][]string
	for _, c := range r.Configs {
		rows = append(rows, []string{c, f(0), strconv.Itoa(r.TargetBits[c]), f(r.Clean[c]), f(1)})
		for _, ber := range r.BERs {
			rows = append(rows, []string{
				c, f(ber), strconv.Itoa(r.TargetBits[c]),
				f(r.MSE[c][ber]), f(r.Degradation(c, ber)),
			})
		}
	}
	return []string{"config", "ber", "store_bits", "test_mse", "degradation"}, rows
}

// fmtMSE prints an MSE cell, keeping catastrophic (non-finite) cells
// legible.
func fmtMSE(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "blown-up"
	}
	if v >= 1e6 {
		return fmt.Sprintf("%.3g", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// Render prints the sweep as a paper-style table: absolute MSE per cell
// plus the relative degradation of the quantized deployments versus
// full precision.
func (r *BitFlipResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3 robustness: stored-model bit flips on %s (test MSE, sticky faults)\n", r.Dataset)
	fmt.Fprintf(&b, "%-10s", "config")
	for _, c := range r.Configs {
		fmt.Fprintf(&b, " %14s", c)
	}
	fmt.Fprintf(&b, "\n%-10s", "store bits")
	for _, c := range r.Configs {
		fmt.Fprintf(&b, " %14d", r.TargetBits[c])
	}
	fmt.Fprintf(&b, "\n%-10s", "clean")
	for _, c := range r.Configs {
		fmt.Fprintf(&b, " %14s", fmtMSE(r.Clean[c]))
	}
	b.WriteString("\n")
	for _, ber := range r.BERs {
		fmt.Fprintf(&b, "%-10.4f", ber)
		for _, c := range r.Configs {
			fmt.Fprintf(&b, " %14s", fmtMSE(r.MSE[c][ber]))
		}
		b.WriteString("\n")
	}
	b.WriteString("degradation (MSE / clean):\n")
	for _, ber := range r.BERs {
		fmt.Fprintf(&b, "%-10.4f", ber)
		for _, c := range r.Configs {
			switch d := r.Degradation(c, ber); {
			case math.IsInf(d, 1):
				fmt.Fprintf(&b, " %14s", "inf")
			case d >= 1000:
				fmt.Fprintf(&b, " %13.3gx", d)
			default:
				fmt.Fprintf(&b, " %13.2fx", d)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
