package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"reghd/internal/core"
	"reghd/internal/dataset"
)

// RobustnessResult backs the §3 robustness claim: test MSE of a trained
// quantized model under increasing fractions of injected memory faults.
type RobustnessResult struct {
	// Dataset names the workload.
	Dataset string
	// Fractions lists the corrupted fraction of model components.
	Fractions []float64
	// BinaryMSE and IntegerMSE are held-out MSEs after injecting faults
	// into the binary-model and integer-model deployments respectively.
	BinaryMSE, IntegerMSE map[float64]float64
	// CleanBinary and CleanInteger are the fault-free references.
	CleanBinary, CleanInteger float64
}

// RobustnessSweep trains binary-model and integer-model RegHD on the
// airfoil stand-in, then injects faults at increasing rates and measures
// the quality degradation. Hypervector redundancy should make degradation
// graceful.
func RobustnessSweep(o Options) (*RobustnessResult, error) {
	o = o.withDefaults()
	train, test, err := loadSplit("airfoil", o)
	if err != nil {
		return nil, err
	}
	res := &RobustnessResult{
		Dataset:    "airfoil",
		Fractions:  []float64{0.001, 0.005, 0.01, 0.05, 0.10},
		BinaryMSE:  map[float64]float64{},
		IntegerMSE: map[float64]float64{},
	}
	if o.Quick {
		res.Fractions = []float64{0.01, 0.10}
	}

	sc, err := dataset.FitScaler(train, true)
	if err != nil {
		return nil, err
	}
	trainS, err := sc.Transform(train)
	if err != nil {
		return nil, err
	}
	testS, err := sc.Transform(test)
	if err != nil {
		return nil, err
	}
	yScale := sc.YStd * sc.YStd

	run := func(pm core.PredictMode) (*core.Model, float64, error) {
		r, err := newRegHD(train.Features(), o, 8, core.ClusterBinary, pm)
		if err != nil {
			return nil, 0, err
		}
		if _, err := r.m.Fit(trainS); err != nil {
			return nil, 0, err
		}
		clean, err := r.m.Evaluate(testS)
		if err != nil {
			return nil, 0, err
		}
		return r.m, clean * yScale, nil
	}

	// Binary deployment: fresh model per fault rate (faults accumulate
	// otherwise), bit flips in the packed model.
	for _, frac := range res.Fractions {
		m, clean, err := run(core.PredictBinaryBoth)
		if err != nil {
			return nil, err
		}
		res.CleanBinary = clean
		if err := m.FlipModelBits(rand.New(rand.NewSource(o.Seed+31)), frac); err != nil {
			return nil, err
		}
		mse, err := m.Evaluate(testS)
		if err != nil {
			return nil, err
		}
		res.BinaryMSE[frac] = mse * yScale
	}
	// Integer deployment: corrupted dense components.
	for _, frac := range res.Fractions {
		m, clean, err := run(core.PredictBinaryQuery)
		if err != nil {
			return nil, err
		}
		res.CleanInteger = clean
		if err := m.CorruptModelComponents(rand.New(rand.NewSource(o.Seed+37)), frac); err != nil {
			return nil, err
		}
		mse, err := m.Evaluate(testS)
		if err != nil {
			return nil, err
		}
		res.IntegerMSE[frac] = mse * yScale
	}
	return res, nil
}

// Render prints the fault-injection sweep.
func (r *RobustnessResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3 robustness: fault injection on %s (test MSE)\n", r.Dataset)
	fmt.Fprintf(&b, "clean: binary-model %.3f, integer-model %.3f\n", r.CleanBinary, r.CleanInteger)
	fmt.Fprintf(&b, "%-12s %14s %14s\n", "fault frac", "binary model", "integer model")
	for _, f := range r.Fractions {
		fmt.Fprintf(&b, "%-12.3f %14.3f %14.3f\n", f, r.BinaryMSE[f], r.IntegerMSE[f])
	}
	return b.String()
}
