// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic dataset stand-ins and the hardware
// cost model. Each experiment has a structured result type with a Render
// method that prints a paper-style text table; cmd/reghd-bench exposes them
// on the command line and bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"reghd/internal/core"
	"reghd/internal/dataset"
	"reghd/internal/encoding"
	"reghd/internal/learner"
	"reghd/internal/synth"
)

// Options control the scale of the experiment runs.
type Options struct {
	// Seed drives dataset generation, splits, and model initialization.
	Seed int64
	// Dim is the hypervector dimensionality for quality experiments.
	Dim int
	// MaxSamples caps the per-dataset sample count (the largest datasets
	// are subsampled to keep pure-Go runs tractable).
	MaxSamples int
	// Epochs caps RegHD training passes.
	Epochs int
	// Replicates averages Table 1 cells over this many seeds (default 1).
	// Fig. 7 always uses its own 3-seed averaging.
	Replicates int
	// Quick shrinks every knob for smoke tests: tiny dimensionality, few
	// samples, few epochs. Results are structurally complete but not
	// quantitatively meaningful.
	Quick bool
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Dim == 0 {
		// 512 dimensions with the Gaussian-projection encoder is the
		// capacity-equivalent regime of the paper's 4k-dimension bundling
		// encoder: it is where the single-model capacity limit of §2.3
		// binds and the multi-model trend of Table 1 appears.
		o.Dim = 512
	}
	if o.MaxSamples == 0 {
		o.MaxSamples = 2500
	}
	if o.Epochs == 0 {
		o.Epochs = 30
	}
	if o.Replicates == 0 {
		o.Replicates = 1
	}
	if o.Quick {
		o.Dim = 256
		o.MaxSamples = 200
		o.Epochs = 5
	}
	return o
}

// loadSplit generates a synthetic dataset, caps its size, and returns a
// 75/25 train/test split.
func loadSplit(name string, o Options) (train, test *dataset.Dataset, err error) {
	ds, err := synth.Load(name, o.Seed)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(o.Seed + 1000))
	if ds.Len() > o.MaxSamples {
		perm := rng.Perm(ds.Len())[:o.MaxSamples]
		ds = ds.Subset(perm)
	}
	return ds.Split(rng, 0.25)
}

// scaledEval standardizes features and target on the training split, fits
// the learner on standardized data, and returns the test MSE in the
// original target units.
func scaledEval(r learner.Regressor, train, test *dataset.Dataset) (float64, error) {
	sc, err := dataset.FitScaler(train, true)
	if err != nil {
		return 0, err
	}
	trainS, err := sc.Transform(train)
	if err != nil {
		return 0, err
	}
	testS, err := sc.Transform(test)
	if err != nil {
		return 0, err
	}
	if err := r.Fit(trainS); err != nil {
		return 0, fmt.Errorf("experiments: fitting %s: %w", r.Name(), err)
	}
	preds, err := learner.PredictBatch(r, testS.X)
	if err != nil {
		return 0, err
	}
	for i := range preds {
		preds[i] = sc.InverseY(preds[i])
	}
	return dataset.MSE(preds, test.Y)
}

// regHD wraps core.Model as a learner.Regressor.
type regHD struct {
	m    *core.Model
	name string
}

// Name implements learner.Regressor.
func (r *regHD) Name() string { return r.name }

// Fit implements learner.Regressor.
func (r *regHD) Fit(train *dataset.Dataset) error {
	_, err := r.m.Fit(train)
	return err
}

// Predict implements learner.Regressor.
func (r *regHD) Predict(x []float64) (float64, error) { return r.m.Predict(x) }

// encoderBandwidth is the kernel bandwidth used by the HD learners in the
// experiments: 0.6·√n. The evaluation datasets are clustered mixtures, and
// this length-scale resolves within-cluster structure while keeping
// distinct clusters nearly orthogonal in HD space (the default 2·√n is
// tuned for unimodal standardized data and over-smooths these workloads).
func encoderBandwidth(feats int) float64 {
	return 0.6 * math.Sqrt(float64(feats))
}

// newEncoder builds the experiments' standard encoder.
func newEncoder(feats int, o Options) (*encoding.Nonlinear, error) {
	return encoding.NewNonlinearBandwidth(rand.New(rand.NewSource(o.Seed+7)), feats, o.Dim, encoderBandwidth(feats))
}

// newRegHD builds a RegHD learner with the experiment's standard settings.
func newRegHD(feats int, o Options, k int, cm core.ClusterMode, pm core.PredictMode) (*regHD, error) {
	enc, err := newEncoder(feats, o)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Models:      k,
		Epochs:      o.Epochs,
		Seed:        o.Seed + 13,
		ClusterMode: cm,
		PredictMode: pm,
	}
	m, err := core.New(enc, cfg)
	if err != nil {
		return nil, err
	}
	return &regHD{m: m, name: fmt.Sprintf("reghd-%d", k)}, nil
}
