package experiments

import (
	"fmt"
	"strings"
	"time"

	"reghd/internal/core"
	"reghd/internal/dataset"
	"reghd/internal/learner"
	"reghd/internal/mlp"
)

// CPUResult reports *measured* wall-clock training and inference times of
// RegHD against the DNN on the host CPU — the counterpart of the paper's
// optimized C++ CPU implementation on the Raspberry Pi. Unlike fig8/fig9
// (analytical model), these numbers come from actually running the Go
// implementations.
type CPUResult struct {
	// Dataset names the workload; Samples/Features its shape.
	Dataset           string
	Samples, Features int
	// TrainSeconds and InferSeconds per learner ("reghd-8", "dnn").
	TrainSeconds, InferSeconds map[string]float64
	// MSE per learner, to show the speed comparison holds at comparable
	// quality.
	MSE map[string]float64
	// TrainSpeedup and InferSpeedup of RegHD over the DNN.
	TrainSpeedup, InferSpeedup float64
}

// CPUWallClock trains RegHD-8 (quantized clusters, binary query) and the
// MLP on the ccpp stand-in and measures wall-clock time for training and
// for a full test-set prediction pass.
func CPUWallClock(o Options) (*CPUResult, error) {
	o = o.withDefaults()
	train, test, err := loadSplit("ccpp", o)
	if err != nil {
		return nil, err
	}
	res := &CPUResult{
		Dataset:      "ccpp",
		Samples:      train.Len(),
		Features:     train.Features(),
		TrainSeconds: map[string]float64{},
		InferSeconds: map[string]float64{},
		MSE:          map[string]float64{},
	}

	sc, err := dataset.FitScaler(train, true)
	if err != nil {
		return nil, err
	}
	trainS, err := sc.Transform(train)
	if err != nil {
		return nil, err
	}
	testS, err := sc.Transform(test)
	if err != nil {
		return nil, err
	}
	yScale := sc.YStd * sc.YStd

	run := func(name string, r learner.Regressor) error {
		start := time.Now()
		if err := r.Fit(trainS); err != nil {
			return fmt.Errorf("experiments: cpu %s: %w", name, err)
		}
		res.TrainSeconds[name] = time.Since(start).Seconds()
		start = time.Now()
		preds, err := learner.PredictBatch(r, testS.X)
		if err != nil {
			return err
		}
		res.InferSeconds[name] = time.Since(start).Seconds()
		mse, err := dataset.MSE(preds, testS.Y)
		if err != nil {
			return err
		}
		res.MSE[name] = mse * yScale
		return nil
	}

	hd, err := newRegHD(train.Features(), o, 8, core.ClusterBinary, core.PredictBinaryQuery)
	if err != nil {
		return nil, err
	}
	if err := run("reghd-8", hd); err != nil {
		return nil, err
	}
	mcfg := mlp.DefaultConfig()
	mcfg.Seed = o.Seed
	mcfg.Epochs = 120
	if o.Quick {
		mcfg.Epochs = 10
	}
	net, err := mlp.New(train.Features(), mcfg)
	if err != nil {
		return nil, err
	}
	if err := run("dnn", net); err != nil {
		return nil, err
	}

	if res.TrainSeconds["reghd-8"] > 0 {
		res.TrainSpeedup = res.TrainSeconds["dnn"] / res.TrainSeconds["reghd-8"]
	}
	if res.InferSeconds["reghd-8"] > 0 {
		res.InferSpeedup = res.InferSeconds["dnn"] / res.InferSeconds["reghd-8"]
	}
	return res, nil
}

// Render prints the measured comparison.
func (r *CPUResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPU wall-clock (measured, %s: %d train samples, %d features)\n",
		r.Dataset, r.Samples, r.Features)
	fmt.Fprintf(&b, "%-10s %12s %12s %12s\n", "", "train (s)", "infer (s)", "test MSE")
	for _, l := range []string{"dnn", "reghd-8"} {
		fmt.Fprintf(&b, "%-10s %12.3f %12.3f %12.3f\n",
			l, r.TrainSeconds[l], r.InferSeconds[l], r.MSE[l])
	}
	fmt.Fprintf(&b, "RegHD-8 speedup over DNN: %.1fx training, %.1fx inference\n",
		r.TrainSpeedup, r.InferSpeedup)
	return b.String()
}
