package experiments

import (
	"fmt"
	"sort"
)

// Renderer is implemented by every experiment result.
type Renderer interface {
	// Render returns a paper-style text table.
	Render() string
}

// Runner executes one experiment.
type Runner func(Options) (Renderer, error)

// registry maps experiment IDs (the DESIGN.md per-experiment index) to
// their runners.
var registry = map[string]Runner{
	"fig3a":     func(o Options) (Renderer, error) { return Fig3aIterations(o) },
	"fig3b":     func(o Options) (Renderer, error) { return Fig3bSingleVsMulti(o) },
	"table1":    func(o Options) (Renderer, error) { return Table1Quality(o) },
	"fig6":      func(o Options) (Renderer, error) { return Fig6ClusterQuantQuality(o) },
	"fig7":      func(o Options) (Renderer, error) { return Fig7ConfigQuality(o) },
	"fig8":      func(o Options) (Renderer, error) { return Fig8Efficiency(o) },
	"fig9":      func(o Options) (Renderer, error) { return Fig9ConfigEfficiency(o) },
	"table2":    func(o Options) (Renderer, error) { return Table2Dimensionality(o) },
	"cap":       func(o Options) (Renderer, error) { return CapacityAnalysis(o) },
	"robust":    func(o Options) (Renderer, error) { return RobustnessSweep(o) },
	"bitflip":   func(o Options) (Renderer, error) { return BitFlipSweep(o) },
	"ablate":    func(o Options) (Renderer, error) { return AblationSweep(o) },
	"sparse":    func(o Options) (Renderer, error) { return SparsitySweep(o) },
	"dse":       func(o Options) (Renderer, error) { return DesignSpaceExploration(o) },
	"platforms": func(o Options) (Renderer, error) { return PlatformComparison(o) },
	"cpu":       func(o Options) (Renderer, error) { return CPUWallClock(o) },
	"parscale":  func(o Options) (Renderer, error) { return ParScale(o) },
	"replsync":  func(o Options) (Renderer, error) { return ReplSync(o) },
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given ID and returns its rendered
// table.
func Run(id string, o Options) (string, error) {
	r, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	res, err := r(o)
	if err != nil {
		return "", err
	}
	return res.Render(), nil
}
