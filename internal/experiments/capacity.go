package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"reghd/internal/hdc"
)

// CapacityResult reproduces the §2.3 capacity analysis: the Eq. 4 false-
// positive probability of a bundled hypervector, analytic vs Monte-Carlo.
type CapacityResult struct {
	// Dim and Threshold are the analysis parameters.
	Dim       int
	Threshold float64
	// Patterns lists the bundle sizes P swept.
	Patterns []int
	// Analytic and MonteCarlo are the false-positive rates per P.
	Analytic, MonteCarlo map[int]float64
	// PaperPoint is the paper's worked example (D=100k, T=0.5, P=10k →
	// ≈5.7%), evaluated analytically.
	PaperPoint float64
}

// CapacityAnalysis sweeps the bundle size and compares Eq. 4 against
// simulation.
func CapacityAnalysis(o Options) (*CapacityResult, error) {
	o = o.withDefaults()
	res := &CapacityResult{
		Dim:        2000,
		Threshold:  0.5,
		Patterns:   []int{50, 100, 200, 400, 800},
		Analytic:   map[int]float64{},
		MonteCarlo: map[int]float64{},
		PaperPoint: hdc.FalsePositiveRate(100000, 10000, 0.5),
	}
	trials := 2000
	if o.Quick {
		res.Dim = 500
		res.Patterns = []int{20, 50}
		trials = 200
	}
	rng := rand.New(rand.NewSource(o.Seed + 99))
	for _, p := range res.Patterns {
		res.Analytic[p] = hdc.FalsePositiveRate(res.Dim, p, res.Threshold)
		res.MonteCarlo[p] = hdc.MonteCarloFalsePositive(rng, res.Dim, p, trials, res.Threshold)
	}
	return res, nil
}

// Render prints the capacity sweep.
func (r *CapacityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§2.3 capacity: false-positive rate, D=%d, T=%.2f\n", r.Dim, r.Threshold)
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "patterns", "analytic", "monte-carlo")
	for _, p := range r.Patterns {
		fmt.Fprintf(&b, "%-10d %12.4f %12.4f\n", p, r.Analytic[p], r.MonteCarlo[p])
	}
	fmt.Fprintf(&b, "paper example (D=100k, P=10k): %.4f (paper reports ≈0.057)\n", r.PaperPoint)
	return b.String()
}
