package experiments

import (
	"fmt"
	"strings"

	"reghd/internal/core"
	"reghd/internal/hwmodel"
)

// PlatformsResult compares the two embedded targets of the paper's
// experimental setup — the Kintex-7 FPGA and the Raspberry Pi's Cortex-A53
// — on the same RegHD-8 workload, and reports how much of the FPGA's
// advantage the quantized configuration preserves on each.
type PlatformsResult struct {
	// Profiles lists the target names.
	Profiles []string
	// TrainSeconds/TrainJoules/InferSeconds/InferJoules per profile and
	// configuration ("full", "quantized").
	TrainSeconds, TrainJoules map[string]map[string]float64
	InferSeconds, InferJoules map[string]map[string]float64
	// Configs lists the configuration order.
	Configs []string
}

// PlatformComparison estimates RegHD-8 training and inference cost on both
// hardware profiles, full precision vs the fully quantized deployment.
func PlatformComparison(o Options) (*PlatformsResult, error) {
	o = o.withDefaults()
	shape := fig8DefaultShape(o)
	res := &PlatformsResult{
		Configs:      []string{"full", "quantized"},
		TrainSeconds: map[string]map[string]float64{},
		TrainJoules:  map[string]map[string]float64{},
		InferSeconds: map[string]map[string]float64{},
		InferJoules:  map[string]map[string]float64{},
	}
	configs := map[string]hwmodel.RegHDWorkload{
		"full": {
			Dim: shape.dim, Models: 8, Features: shape.features,
			TrainSamples: shape.samples, Epochs: shape.hdEpochs,
			ClusterMode: core.ClusterInteger, PredictMode: core.PredictFull,
		},
		"quantized": {
			Dim: shape.dim, Models: 8, Features: shape.features,
			TrainSamples: shape.samples, Epochs: shape.hdEpochs,
			ClusterMode: core.ClusterBinary, PredictMode: core.PredictBinaryBoth,
		},
	}
	for _, profile := range []hwmodel.Profile{hwmodel.FPGA(), hwmodel.ARM()} {
		res.Profiles = append(res.Profiles, profile.Name)
		res.TrainSeconds[profile.Name] = map[string]float64{}
		res.TrainJoules[profile.Name] = map[string]float64{}
		res.InferSeconds[profile.Name] = map[string]float64{}
		res.InferJoules[profile.Name] = map[string]float64{}
		for _, cfg := range res.Configs {
			w := configs[cfg]
			tc, err := w.TrainCounts()
			if err != nil {
				return nil, err
			}
			ic, err := w.InferCounts(shape.queries)
			if err != nil {
				return nil, err
			}
			trainCost, err := hwmodel.Estimate(tc, profile)
			if err != nil {
				return nil, err
			}
			inferCost, err := hwmodel.Estimate(ic, profile)
			if err != nil {
				return nil, err
			}
			res.TrainSeconds[profile.Name][cfg] = trainCost.Seconds
			res.TrainJoules[profile.Name][cfg] = trainCost.Joules
			res.InferSeconds[profile.Name][cfg] = inferCost.Seconds
			res.InferJoules[profile.Name][cfg] = inferCost.Joules
		}
	}
	return res, nil
}

// Render prints the platform comparison.
func (r *PlatformsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Platforms: RegHD-8 on the paper's two targets (modeled)\n")
	fmt.Fprintf(&b, "%-18s %-10s %14s %14s %14s %14s\n",
		"platform", "config", "train (s)", "train (J)", "infer (s)", "infer (J)")
	for _, p := range r.Profiles {
		for _, c := range r.Configs {
			fmt.Fprintf(&b, "%-18s %-10s %14.4f %14.4f %14.4f %14.4f\n",
				p, c, r.TrainSeconds[p][c], r.TrainJoules[p][c], r.InferSeconds[p][c], r.InferJoules[p][c])
		}
	}
	if len(r.Profiles) == 2 {
		fpga, arm := r.Profiles[0], r.Profiles[1]
		fmt.Fprintf(&b, "FPGA advantage (quantized inference): %.1fx faster, %.1fx less energy\n",
			r.InferSeconds[arm]["quantized"]/r.InferSeconds[fpga]["quantized"],
			r.InferJoules[arm]["quantized"]/r.InferJoules[fpga]["quantized"])
	}
	return b.String()
}
