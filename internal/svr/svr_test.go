package svr

import (
	"math"
	"math/rand"
	"testing"

	"reghd/internal/dataset"
	"reghd/internal/learner"
)

var _ learner.Regressor = (*Model)(nil)

func makeLinear(rng *rand.Rand, n, feats int, noise float64) *dataset.Dataset {
	w := make([]float64, feats)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	d := &dataset.Dataset{Name: "lin", X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, feats)
		y := 0.7
		for j := range x {
			x[j] = rng.NormFloat64()
			y += w[j] * x[j]
		}
		d.X[i] = x
		d.Y[i] = y + noise*rng.NormFloat64()
	}
	return d
}

func makeNonlinear(rng *rand.Rand, n int) *dataset.Dataset {
	d := &dataset.Dataset{Name: "nl", X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := rng.Float64()*4 - 2
		d.X[i] = []float64{x}
		d.Y[i] = math.Sin(2*x) + 0.02*rng.NormFloat64()
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{C: -1},
		{Epsilon: -0.1},
		{Gamma: -1},
		{Components: -5},
		{Epochs: -1},
		{Kernel: Kernel(9)},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	var c Config
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.C == 0 || c.Epsilon == 0 || c.Components == 0 || c.Epochs == 0 {
		t.Fatal("defaults not filled")
	}
}

func TestKernelString(t *testing.T) {
	if Linear.String() != "linear" || RBF.String() != "rbf" {
		t.Fatal("kernel names wrong")
	}
	if Kernel(3).String() == "" {
		t.Fatal("unknown kernel should render")
	}
}

func TestLinearKernelLearnsLinear(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(1)), 800, 4, 0.05)
	train := all.Subset(seq(0, 600))
	test := all.Subset(seq(600, 800))
	cfg := Config{Kernel: Linear, C: 10, Epsilon: 0.05, Epochs: 80, Seed: 2}
	m, _ := New(cfg)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	mse, err := learner.MSE(m, test)
	if err != nil {
		t.Fatal(err)
	}
	// Target variance ≈ 4; an SVR must be far below.
	if mse > 0.3 {
		t.Fatalf("linear SVR test MSE %v too high", mse)
	}
}

func TestRBFKernelLearnsNonlinear(t *testing.T) {
	all := makeNonlinear(rand.New(rand.NewSource(3)), 900)
	train := all.Subset(seq(0, 700))
	test := all.Subset(seq(700, 900))
	cfg := Config{Kernel: RBF, C: 10, Epsilon: 0.02, Gamma: 2, Components: 300, Epochs: 80, Seed: 4}
	m, _ := New(cfg)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	mse, _ := learner.MSE(m, test)
	// Target variance ≈ 0.5; RBF features must capture the sinusoid.
	if mse > 0.1 {
		t.Fatalf("RBF SVR test MSE %v too high", mse)
	}
}

func TestLinearKernelFailsOnNonlinear(t *testing.T) {
	// Sanity: the sinusoid has near-zero linear correlation, so the linear
	// kernel should do clearly worse than RBF.
	all := makeNonlinear(rand.New(rand.NewSource(5)), 600)
	lin, _ := New(Config{Kernel: Linear, C: 10, Epochs: 60, Seed: 6})
	rbf, _ := New(Config{Kernel: RBF, C: 10, Gamma: 2, Components: 300, Epochs: 60, Seed: 6})
	if err := lin.Fit(all); err != nil {
		t.Fatal(err)
	}
	if err := rbf.Fit(all); err != nil {
		t.Fatal(err)
	}
	linMSE, _ := learner.MSE(lin, all)
	rbfMSE, _ := learner.MSE(rbf, all)
	if rbfMSE >= linMSE {
		t.Fatalf("RBF (%v) should beat linear (%v) on sinusoid", rbfMSE, linMSE)
	}
}

func TestEpsilonTubeIgnoresSmallNoise(t *testing.T) {
	// With a wide tube, residuals inside ε produce no updates, so the
	// model stays near zero weights for targets inside the tube.
	d := &dataset.Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []float64{0.01, -0.01, 0.02}}
	m, _ := New(Config{Kernel: Linear, C: 1, Epsilon: 1, Epochs: 10, Seed: 7})
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	y, _ := m.Predict([]float64{2})
	if math.Abs(y) > 0.2 {
		t.Fatalf("wide-tube prediction %v should stay near 0", y)
	}
}

func TestPredictBeforeFit(t *testing.T) {
	m, _ := New(DefaultConfig())
	if _, err := m.Predict([]float64{1}); err != ErrNotTrained {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
}

func TestPredictChecksLength(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(8)), 100, 3, 0.05)
	m, _ := New(DefaultConfig())
	if err := m.Fit(all); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Fatal("wrong input length accepted")
	}
}

func TestFitRejectsBadData(t *testing.T) {
	m, _ := New(DefaultConfig())
	if err := m.Fit(&dataset.Dataset{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestDeterministic(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(9)), 150, 3, 0.05)
	run := func() float64 {
		m, _ := New(Config{Kernel: RBF, Seed: 10, Epochs: 10})
		if err := m.Fit(all); err != nil {
			t.Fatal(err)
		}
		y, _ := m.Predict(all.X[0])
		return y
	}
	if run() != run() {
		t.Fatal("same seed produced different models")
	}
}

func TestName(t *testing.T) {
	m, _ := New(DefaultConfig())
	if m.Name() != "svr" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
