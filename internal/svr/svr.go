// Package svr implements the support-vector-regression baseline of the
// paper's Table 1: ε-insensitive loss with L2 regularization, trained in
// the primal by averaged stochastic subgradient descent (Pegasos-style).
// A random-Fourier-feature variant approximates the RBF kernel, mirroring
// sklearn's kernelized SVR while staying in the primal.
package svr

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"reghd/internal/dataset"
)

// Kernel selects the feature map.
type Kernel int

const (
	// Linear trains on the raw features.
	Linear Kernel = iota
	// RBF trains on random Fourier features approximating the Gaussian
	// kernel exp(−γ‖Δx‖²).
	RBF
)

// String names the kernel.
func (k Kernel) String() string {
	switch k {
	case Linear:
		return "linear"
	case RBF:
		return "rbf"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// Config holds the SVR hyper-parameters.
type Config struct {
	// Kernel selects linear or RBF-approximate features.
	Kernel Kernel
	// C is the inverse regularization strength (sklearn convention).
	C float64
	// Epsilon is the width of the insensitive tube.
	Epsilon float64
	// Gamma is the RBF kernel coefficient (RBF only). Zero means 1/n.
	Gamma float64
	// Components is the number of random Fourier features (RBF only).
	Components int
	// Epochs caps the SGD passes.
	Epochs int
	// Seed drives feature sampling and shuffling.
	Seed int64
}

// DefaultConfig returns the grid-search center used in the evaluation.
func DefaultConfig() Config {
	return Config{Kernel: RBF, C: 1, Epsilon: 0.1, Components: 256, Epochs: 60, Seed: 1}
}

// Validate fills defaults and rejects invalid settings.
func (c *Config) Validate() error {
	//lint:ignore floatcmp zero value selects the documented default
	if c.C == 0 {
		c.C = 1
	}
	//lint:ignore floatcmp zero value selects the documented default
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	if c.Components == 0 {
		c.Components = 256
	}
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	switch {
	case c.C < 0:
		return errors.New("svr: negative C")
	case c.Epsilon < 0:
		return errors.New("svr: negative Epsilon")
	case c.Gamma < 0:
		return errors.New("svr: negative Gamma")
	case c.Components < 0:
		return errors.New("svr: negative Components")
	case c.Epochs < 0:
		return errors.New("svr: negative Epochs")
	}
	switch c.Kernel {
	case Linear, RBF:
	default:
		return fmt.Errorf("svr: unknown kernel %d", c.Kernel)
	}
	return nil
}

// Model is the trained SVR.
type Model struct {
	cfg     Config
	feats   int
	w       []float64 // weights over the feature map
	b       float64
	rffW    []float64 // Components×feats RFF frequencies
	rffB    []float64 // Components phases
	trained bool
}

// New constructs an untrained SVR.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg}, nil
}

// Name implements learner.Regressor.
func (m *Model) Name() string { return "svr" }

// featureDim returns the dimensionality of the feature map.
func (m *Model) featureDim() int {
	if m.cfg.Kernel == RBF {
		return m.cfg.Components
	}
	return m.feats
}

// features maps x through the configured feature map into out.
func (m *Model) features(x []float64, out []float64) {
	if m.cfg.Kernel == Linear {
		copy(out, x)
		return
	}
	scale := math.Sqrt(2 / float64(m.cfg.Components))
	for c := 0; c < m.cfg.Components; c++ {
		row := m.rffW[c*m.feats : (c+1)*m.feats]
		s := m.rffB[c]
		for j, wv := range row {
			s += wv * x[j]
		}
		out[c] = scale * math.Cos(s)
	}
}

// Fit trains by averaged stochastic subgradient descent on
//
//	λ/2‖w‖² + mean_i max(0, |w·φ(x_i)+b − y_i| − ε),  λ = 1/(C·n).
func (m *Model) Fit(train *dataset.Dataset) error {
	if err := train.Validate(); err != nil {
		return err
	}
	m.feats = train.Features()
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	if m.cfg.Kernel == RBF {
		gamma := m.cfg.Gamma
		//lint:ignore floatcmp zero value selects the default kernel width
		if gamma == 0 {
			gamma = 1 / float64(m.feats)
		}
		sigma := math.Sqrt(2 * gamma)
		m.rffW = make([]float64, m.cfg.Components*m.feats)
		m.rffB = make([]float64, m.cfg.Components)
		for i := range m.rffW {
			m.rffW[i] = sigma * rng.NormFloat64()
		}
		for i := range m.rffB {
			m.rffB[i] = rng.Float64() * 2 * math.Pi
		}
	}
	fd := m.featureDim()
	w := make([]float64, fd)
	avgW := make([]float64, fd)
	var b, avgB float64
	phi := make([]float64, fd)
	n := train.Len()
	lambda := 1 / (m.cfg.C * float64(n))
	step := 0
	for ep := 0; ep < m.cfg.Epochs; ep++ {
		order := rng.Perm(n)
		for _, i := range order {
			step++
			eta := 1 / (lambda * float64(step+10))
			m.features(train.X[i], phi)
			pred := b
			for j, v := range phi {
				pred += w[j] * v
			}
			resid := pred - train.Y[i]
			// Subgradient of the ε-insensitive loss.
			var g float64
			switch {
			case resid > m.cfg.Epsilon:
				g = 1
			case resid < -m.cfg.Epsilon:
				g = -1
			}
			decay := 1 - eta*lambda
			if decay < 0 {
				decay = 0
			}
			for j := range w {
				w[j] *= decay
				//lint:ignore floatcmp exact-zero gradient skip: pure optimization, bit-identical result
				if g != 0 {
					w[j] -= eta * g * phi[j]
				}
			}
			//lint:ignore floatcmp exact-zero gradient skip: pure optimization, bit-identical result
			if g != 0 {
				b -= eta * g
			}
			// Polyak averaging for a stable final model.
			inv := 1 / float64(step)
			for j := range avgW {
				avgW[j] += (w[j] - avgW[j]) * inv
			}
			avgB += (b - avgB) * inv
		}
	}
	m.w = avgW
	m.b = avgB
	m.trained = true
	return nil
}

// ErrNotTrained is returned by Predict before Fit.
var ErrNotTrained = errors.New("svr: model has not been trained")

// Predict returns w·φ(x) + b.
func (m *Model) Predict(x []float64) (float64, error) {
	if !m.trained {
		return 0, ErrNotTrained
	}
	if len(x) != m.feats {
		return 0, fmt.Errorf("svr: input has %d features, model expects %d", len(x), m.feats)
	}
	phi := make([]float64, m.featureDim())
	m.features(x, phi)
	y := m.b
	for j, v := range phi {
		y += m.w[j] * v
	}
	return y, nil
}
