package dataset

import (
	"errors"
	"math"
)

// ErrLengthMismatch is returned when prediction and target slices differ in
// length or are empty.
var ErrLengthMismatch = errors.New("dataset: prediction/target length mismatch or empty")

// MSE returns the mean squared error between predictions and targets — the
// quality metric of the paper's Table 1.
func MSE(pred, target []float64) (float64, error) {
	if len(pred) != len(target) || len(pred) == 0 {
		return 0, ErrLengthMismatch
	}
	var s float64
	for i, p := range pred {
		d := p - target[i]
		s += d * d
	}
	return s / float64(len(pred)), nil
}

// RMSE returns the root mean squared error.
func RMSE(pred, target []float64) (float64, error) {
	mse, err := MSE(pred, target)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(mse), nil
}

// MAE returns the mean absolute error.
func MAE(pred, target []float64) (float64, error) {
	if len(pred) != len(target) || len(pred) == 0 {
		return 0, ErrLengthMismatch
	}
	var s float64
	for i, p := range pred {
		s += math.Abs(p - target[i])
	}
	return s / float64(len(pred)), nil
}

// R2 returns the coefficient of determination 1 − SS_res/SS_tot. A constant
// target yields R2 = 0 by convention.
func R2(pred, target []float64) (float64, error) {
	if len(pred) != len(target) || len(pred) == 0 {
		return 0, ErrLengthMismatch
	}
	var mean float64
	for _, y := range target {
		mean += y
	}
	mean /= float64(len(target))
	var ssRes, ssTot float64
	for i, y := range target {
		r := y - pred[i]
		ssRes += r * r
		d := y - mean
		ssTot += d * d
	}
	//lint:ignore floatcmp exact-zero variance guard before division (constant target)
	if ssTot == 0 {
		return 0, nil
	}
	return 1 - ssRes/ssTot, nil
}
