package dataset

import (
	"math"
	"math/rand"
	"testing"
)

func toy() *Dataset {
	return &Dataset{
		Name: "toy",
		X:    [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}},
		Y:    []float64{1, 2, 3, 4, 5},
	}
}

func TestValidate(t *testing.T) {
	if err := toy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Dataset{X: [][]float64{{1}, {2, 3}}, Y: []float64{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Fatal("ragged X accepted")
	}
	bad2 := &Dataset{X: [][]float64{{1}}, Y: []float64{1, 2}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("mismatched Y length accepted")
	}
	if err := (&Dataset{}).Validate(); err == nil {
		t.Fatal("empty dataset accepted")
	}
	bad3 := &Dataset{X: [][]float64{{}}, Y: []float64{1}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("zero-column dataset accepted")
	}
}

func TestLenFeatures(t *testing.T) {
	d := toy()
	if d.Len() != 5 || d.Features() != 2 {
		t.Fatalf("Len/Features = %d/%d", d.Len(), d.Features())
	}
	if (&Dataset{}).Features() != 0 {
		t.Fatal("empty Features should be 0")
	}
}

func TestCloneIsolated(t *testing.T) {
	d := toy()
	c := d.Clone()
	c.X[0][0] = 99
	c.Y[0] = 99
	if d.X[0][0] == 99 || d.Y[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestSubset(t *testing.T) {
	d := toy()
	s := d.Subset([]int{4, 0})
	if s.Len() != 2 || s.Y[0] != 5 || s.Y[1] != 1 {
		t.Fatalf("Subset wrong: %+v", s)
	}
}

func TestSplitSizesAndDisjoint(t *testing.T) {
	d := toy()
	rng := rand.New(rand.NewSource(1))
	train, test, err := d.Split(rng, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != d.Len() {
		t.Fatalf("split sizes %d+%d != %d", train.Len(), test.Len(), d.Len())
	}
	if test.Len() != 2 {
		t.Fatalf("test size = %d, want 2", test.Len())
	}
	seen := map[float64]bool{}
	for _, y := range train.Y {
		seen[y] = true
	}
	for _, y := range test.Y {
		if seen[y] {
			t.Fatalf("sample with y=%v in both splits", y)
		}
	}
}

func TestSplitValidation(t *testing.T) {
	d := toy()
	rng := rand.New(rand.NewSource(2))
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := d.Split(rng, frac); err == nil {
			t.Fatalf("testFrac %v accepted", frac)
		}
	}
	// Tiny dataset still keeps one sample per side.
	tiny := &Dataset{X: [][]float64{{1}, {2}}, Y: []float64{1, 2}}
	tr, te, err := tiny.Split(rng, 0.01)
	if err != nil || tr.Len() != 1 || te.Len() != 1 {
		t.Fatalf("tiny split: %v %d %d", err, tr.Len(), te.Len())
	}
}

func TestShuffleKeepsPairs(t *testing.T) {
	d := toy()
	// Pair invariant: y equals x[0] rank; record mapping before shuffle.
	d.Shuffle(rand.New(rand.NewSource(3)))
	for i, row := range d.X {
		if d.Y[i] != (row[0]+1)/2 {
			t.Fatalf("shuffle broke (x,y) pairing at %d: x=%v y=%v", i, row, d.Y[i])
		}
	}
}

func TestTargetRange(t *testing.T) {
	d := toy()
	lo, hi := d.TargetRange()
	if lo != 1 || hi != 5 {
		t.Fatalf("TargetRange = %v..%v", lo, hi)
	}
	lo, hi = (&Dataset{}).TargetRange()
	if lo != 0 || hi != 0 {
		t.Fatal("empty TargetRange should be 0,0")
	}
}

func TestScalerStandardizes(t *testing.T) {
	d := toy()
	s, err := FitScaler(d, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < out.Features(); j++ {
		var mean, varr float64
		for _, row := range out.X {
			mean += row[j]
		}
		mean /= float64(out.Len())
		for _, row := range out.X {
			varr += (row[j] - mean) * (row[j] - mean)
		}
		varr /= float64(out.Len())
		if math.Abs(mean) > 1e-9 || math.Abs(varr-1) > 1e-9 {
			t.Fatalf("column %d mean %v var %v after scaling", j, mean, varr)
		}
	}
	var ymean float64
	for _, y := range out.Y {
		ymean += y
	}
	if math.Abs(ymean/float64(out.Len())) > 1e-9 {
		t.Fatal("target not centered")
	}
}

func TestScalerInverseYRoundTrip(t *testing.T) {
	d := toy()
	s, _ := FitScaler(d, true)
	for _, y := range []float64{-3, 0, 2.5, 100} {
		if got := s.InverseY(s.ScaleY(y)); math.Abs(got-y) > 1e-9 {
			t.Fatalf("round trip %v -> %v", y, got)
		}
	}
	sNo, _ := FitScaler(d, false)
	if sNo.ScaleY(7) != 7 || sNo.InverseY(7) != 7 {
		t.Fatal("unscaled target should pass through")
	}
}

func TestScalerConstantColumn(t *testing.T) {
	d := &Dataset{
		X: [][]float64{{5, 1}, {5, 2}, {5, 3}},
		Y: []float64{1, 2, 3},
	}
	s, err := FitScaler(d, false)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range out.X {
		if row[0] != 0 {
			t.Fatalf("constant column should map to 0, got %v", row[0])
		}
		if math.IsNaN(row[1]) {
			t.Fatal("NaN in scaled output")
		}
	}
}

func TestScalerErrors(t *testing.T) {
	var s Scaler
	if _, err := s.Transform(toy()); err == nil {
		t.Fatal("unfitted scaler accepted Transform")
	}
	if err := s.TransformRow([]float64{1}); err == nil {
		t.Fatal("unfitted scaler accepted TransformRow")
	}
	f, _ := FitScaler(toy(), false)
	if _, err := f.Transform(&Dataset{X: [][]float64{{1, 2, 3}}, Y: []float64{1}}); err == nil {
		t.Fatal("feature-count mismatch accepted")
	}
	if err := f.TransformRow([]float64{1, 2, 3}); err == nil {
		t.Fatal("row length mismatch accepted")
	}
}

func TestTransformRowMatchesTransform(t *testing.T) {
	d := toy()
	s, _ := FitScaler(d, false)
	out, _ := s.Transform(d)
	row := append([]float64(nil), d.X[2]...)
	if err := s.TransformRow(row); err != nil {
		t.Fatal(err)
	}
	for j := range row {
		if math.Abs(row[j]-out.X[2][j]) > 1e-12 {
			t.Fatal("TransformRow differs from Transform")
		}
	}
}
