package dataset

import (
	"errors"
	"fmt"
	"math"
)

// Scaler standardizes features (and optionally the target) to zero mean and
// unit variance, the preprocessing every learner in the evaluation shares.
// Fit on the training split only, then apply to both splits, as usual.
type Scaler struct {
	Mean []float64
	Std  []float64
	// YMean and YStd standardize the target when ScaleTarget was set.
	YMean, YStd float64
	// ScaleTarget records whether the target is standardized too.
	ScaleTarget bool
}

// fitted reports whether the scaler holds statistics (it round-trips
// through gob, so the check is structural).
func (s *Scaler) fitted() bool { return len(s.Mean) > 0 }

// FitScaler computes feature statistics (and target statistics when
// scaleTarget is set) from d.
func FitScaler(d *Dataset, scaleTarget bool) (*Scaler, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := d.Features()
	s := &Scaler{
		Mean:        make([]float64, n),
		Std:         make([]float64, n),
		ScaleTarget: scaleTarget,
	}
	m := float64(d.Len())
	for _, row := range d.X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= m
	}
	for _, row := range d.X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / m)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1 // constant column: leave centered values at 0
		}
	}
	if scaleTarget {
		for _, y := range d.Y {
			s.YMean += y
		}
		s.YMean /= m
		for _, y := range d.Y {
			dy := y - s.YMean
			s.YStd += dy * dy
		}
		s.YStd = math.Sqrt(s.YStd / m)
		if s.YStd < 1e-12 {
			s.YStd = 1
		}
	} else {
		s.YStd = 1
	}
	return s, nil
}

// Transform returns a standardized copy of d.
func (s *Scaler) Transform(d *Dataset) (*Dataset, error) {
	if !s.fitted() {
		return nil, errors.New("dataset: scaler not fitted")
	}
	if d.Features() != len(s.Mean) {
		return nil, fmt.Errorf("dataset: scaler fitted on %d features, dataset has %d", len(s.Mean), d.Features())
	}
	out := d.Clone()
	for _, row := range out.X {
		for j := range row {
			row[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
	if s.ScaleTarget {
		for i := range out.Y {
			out.Y[i] = (out.Y[i] - s.YMean) / s.YStd
		}
	}
	return out, nil
}

// TransformRow standardizes a single feature row in place.
func (s *Scaler) TransformRow(row []float64) error {
	if !s.fitted() {
		return errors.New("dataset: scaler not fitted")
	}
	if len(row) != len(s.Mean) {
		return fmt.Errorf("dataset: scaler fitted on %d features, row has %d", len(s.Mean), len(row))
	}
	for j := range row {
		row[j] = (row[j] - s.Mean[j]) / s.Std[j]
	}
	return nil
}

// InverseY maps a standardized prediction back to the original target units.
// It is the identity when the target was not scaled.
func (s *Scaler) InverseY(y float64) float64 {
	if !s.ScaleTarget {
		return y
	}
	return y*s.YStd + s.YMean
}

// ScaleY maps an original-unit target into standardized units.
func (s *Scaler) ScaleY(y float64) float64 {
	if !s.ScaleTarget {
		return y
	}
	return (y - s.YMean) / s.YStd
}
