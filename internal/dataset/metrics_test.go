package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{1, 2, 3}, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("MSE = %v, want 4/3", got)
	}
}

func TestMSEPerfect(t *testing.T) {
	got, _ := MSE([]float64{1, 2}, []float64{1, 2})
	if got != 0 {
		t.Fatalf("perfect MSE = %v", got)
	}
}

func TestMetricsLengthErrors(t *testing.T) {
	if _, err := MSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("MSE accepted length mismatch")
	}
	if _, err := MSE(nil, nil); err == nil {
		t.Fatal("MSE accepted empty input")
	}
	if _, err := MAE([]float64{1}, nil); err == nil {
		t.Fatal("MAE accepted mismatch")
	}
	if _, err := R2(nil, nil); err == nil {
		t.Fatal("R2 accepted empty")
	}
	if _, err := RMSE([]float64{1}, nil); err == nil {
		t.Fatal("RMSE accepted mismatch")
	}
}

func TestRMSEIsSqrtMSE(t *testing.T) {
	pred := []float64{0, 0, 0}
	tgt := []float64{3, 4, 0}
	mse, _ := MSE(pred, tgt)
	rmse, _ := RMSE(pred, tgt)
	if math.Abs(rmse-math.Sqrt(mse)) > 1e-12 {
		t.Fatalf("RMSE %v != sqrt(MSE) %v", rmse, math.Sqrt(mse))
	}
}

func TestMAE(t *testing.T) {
	got, _ := MAE([]float64{1, -1}, []float64{2, 1})
	if got != 1.5 {
		t.Fatalf("MAE = %v, want 1.5", got)
	}
}

func TestR2PerfectAndMean(t *testing.T) {
	tgt := []float64{1, 2, 3, 4}
	r2, _ := R2(tgt, tgt)
	if math.Abs(r2-1) > 1e-12 {
		t.Fatalf("perfect R2 = %v", r2)
	}
	meanPred := []float64{2.5, 2.5, 2.5, 2.5}
	r2, _ = R2(meanPred, tgt)
	if math.Abs(r2) > 1e-12 {
		t.Fatalf("mean-prediction R2 = %v, want 0", r2)
	}
}

func TestR2ConstantTarget(t *testing.T) {
	r2, err := R2([]float64{1, 2}, []float64{5, 5})
	if err != nil || r2 != 0 {
		t.Fatalf("constant target R2 = %v err %v, want 0", r2, err)
	}
}

func TestMSENonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(20) + 1
		p := make([]float64, n)
		g := make([]float64, n)
		for i := range p {
			p[i] = r.NormFloat64() * 10
			g[i] = r.NormFloat64() * 10
		}
		mse, err := MSE(p, g)
		mae, err2 := MAE(p, g)
		rmse, err3 := RMSE(p, g)
		if err != nil || err2 != nil || err3 != nil {
			return false
		}
		// MSE >= 0, RMSE >= MAE is false in general, but RMSE >= 0 and
		// RMSE^2 == MSE; also MAE <= RMSE by Jensen.
		return mse >= 0 && mae >= 0 && math.Abs(rmse*rmse-mse) < 1e-9 && mae <= rmse+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
