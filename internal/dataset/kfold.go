package dataset

import (
	"fmt"
	"math/rand"
)

// Fold is one cross-validation split.
type Fold struct {
	// Train and Val partition the dataset.
	Train, Val *Dataset
}

// KFold shuffles d and partitions it into k train/validation folds. Every
// sample appears in exactly one validation set; folds differ in size by at
// most one sample.
func KFold(d *Dataset, k int, rng *rand.Rand) ([]Fold, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, fmt.Errorf("dataset: KFold needs k >= 2, got %d", k)
	}
	if k > d.Len() {
		return nil, fmt.Errorf("dataset: KFold with k=%d exceeds %d samples", k, d.Len())
	}
	perm := rng.Perm(d.Len())
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		lo := f * d.Len() / k
		hi := (f + 1) * d.Len() / k
		val := perm[lo:hi]
		train := make([]int, 0, d.Len()-len(val))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		folds[f] = Fold{Train: d.Subset(train), Val: d.Subset(val)}
	}
	return folds, nil
}
