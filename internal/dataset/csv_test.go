package dataset

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadCSVWithHeader(t *testing.T) {
	in := "a,b,target\n1,2,3\n4,5,6\n"
	d, err := ReadCSV(strings.NewReader(in), "t", true)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Features() != 2 {
		t.Fatalf("parsed %d rows %d features", d.Len(), d.Features())
	}
	if d.FeatureNames[0] != "a" || d.FeatureNames[1] != "b" {
		t.Fatalf("feature names = %v", d.FeatureNames)
	}
	if d.Y[1] != 6 || d.X[1][0] != 4 {
		t.Fatalf("values wrong: %+v", d)
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	d, err := ReadCSV(strings.NewReader("1,2\n3,4\n"), "t", false)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Features() != 1 || d.FeatureNames != nil {
		t.Fatalf("parsed wrong: %+v", d)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
		header   bool
	}{
		{"empty-header", "", true},
		{"one-col-header", "a\n1\n", true},
		{"bad-float", "a,t\nx,1\n", true},
		{"bad-target", "a,t\n1,x\n", true},
		{"no-rows", "a,t\n", true},
		{"one-col-row", "1\n", false},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), c.name, c.header); err == nil {
			t.Fatalf("%s: error expected", c.name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := &Dataset{
		Name:         "rt",
		FeatureNames: []string{"f1", "f2"},
		X:            [][]float64{{1.5, -2.25}, {3.125, 0}},
		Y:            []float64{0.5, -1},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "rt", true)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.Features() != d.Features() {
		t.Fatal("round trip changed shape")
	}
	for i := range d.X {
		for j := range d.X[i] {
			if back.X[i][j] != d.X[i][j] {
				t.Fatalf("X[%d][%d] = %v, want %v", i, j, back.X[i][j], d.X[i][j])
			}
		}
		if back.Y[i] != d.Y[i] {
			t.Fatalf("Y[%d] = %v, want %v", i, back.Y[i], d.Y[i])
		}
	}
}

func TestWriteCSVNameMismatch(t *testing.T) {
	d := &Dataset{
		FeatureNames: []string{"only-one"},
		X:            [][]float64{{1, 2}},
		Y:            []float64{3},
	}
	if err := WriteCSV(&bytes.Buffer{}, d); err == nil {
		t.Fatal("feature-name count mismatch accepted")
	}
}

func TestSaveLoadCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.csv")
	rng := rand.New(rand.NewSource(1))
	d := &Dataset{Name: "f", X: make([][]float64, 10), Y: make([]float64, 10)}
	for i := range d.X {
		d.X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		d.Y[i] = rng.NormFloat64()
	}
	if err := SaveCSV(path, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path, "f", false)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 10 || back.Features() != 2 {
		t.Fatal("file round trip changed shape")
	}
	if _, err := LoadCSV(filepath.Join(dir, "missing.csv"), "m", false); err == nil {
		t.Fatal("missing file accepted")
	}
}
