package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// ReadCSV parses a regression dataset from CSV. When header is true the
// first row supplies feature names. The last column is the target; all
// other columns are features and must parse as floats.
func ReadCSV(r io.Reader, name string, header bool) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	d := &Dataset{Name: name}
	start := 0
	if header {
		if len(rows) == 0 {
			return nil, fmt.Errorf("dataset: csv %q has no header row", name)
		}
		h := rows[0]
		if len(h) < 2 {
			return nil, fmt.Errorf("dataset: csv %q needs at least one feature and one target column", name)
		}
		d.FeatureNames = append([]string(nil), h[:len(h)-1]...)
		start = 1
	}
	for i := start; i < len(rows); i++ {
		row := rows[i]
		if len(row) < 2 {
			return nil, fmt.Errorf("dataset: csv %q row %d has %d columns, need >= 2", name, i+1, len(row))
		}
		feats := make([]float64, len(row)-1)
		for j, cell := range row[:len(row)-1] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv %q row %d col %d: %w", name, i+1, j+1, err)
			}
			feats[j] = v
		}
		y, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: csv %q row %d target: %w", name, i+1, err)
		}
		d.X = append(d.X, feats)
		d.Y = append(d.Y, y)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// LoadCSV reads a dataset from a file path via ReadCSV.
func LoadCSV(path, name string, header bool) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(f, name, header)
}

// WriteCSV serializes d as CSV, emitting a header row when feature names are
// present (the target column is named "target").
func WriteCSV(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if d.FeatureNames != nil {
		if len(d.FeatureNames) != d.Features() {
			return fmt.Errorf("dataset: %d feature names for %d columns", len(d.FeatureNames), d.Features())
		}
		if err := cw.Write(append(append([]string(nil), d.FeatureNames...), "target")); err != nil {
			return fmt.Errorf("dataset: writing header: %w", err)
		}
	}
	rec := make([]string, d.Features()+1)
	for i, row := range d.X {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[len(rec)-1] = strconv.FormatFloat(d.Y[i], 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes d to a file path via WriteCSV.
func SaveCSV(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := WriteCSV(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
