package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV reader never panics and that accepted inputs
// produce structurally valid datasets that survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b,target\n1,2,3\n", true)
	f.Add("1,2\n3,4\n", false)
	f.Add("", true)
	f.Add("x\n", false)
	f.Add("1,2,3\n4,5\n", false)
	f.Add("nan,inf,-inf\n1e308,2,3\n", false)
	f.Add("\"quoted,cell\",2\n", false)
	f.Fuzz(func(t *testing.T, in string, header bool) {
		d, err := ReadCSV(strings.NewReader(in), "fuzz", header)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		var buf strings.Builder
		if err := WriteCSV(&buf, d); err != nil {
			t.Fatalf("accepted dataset fails to serialize: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(buf.String()), "fuzz2", d.FeatureNames != nil)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if back.Len() != d.Len() || back.Features() != d.Features() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				back.Len(), back.Features(), d.Len(), d.Features())
		}
	})
}
