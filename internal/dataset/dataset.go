// Package dataset provides the data plumbing shared by every learner and
// experiment in the repository: an in-memory regression dataset type,
// train/test splitting, feature standardization, regression metrics, and
// CSV import/export so real UCI datasets can be dropped in next to the
// synthetic generators.
package dataset

import (
	"errors"
	"fmt"
	"math/rand"
)

// Dataset is an in-memory supervised regression dataset: X[i] is a feature
// vector, Y[i] the scalar target.
type Dataset struct {
	// Name identifies the dataset in reports ("airfoil", "ccpp", ...).
	Name string
	// FeatureNames optionally labels the columns; may be nil.
	FeatureNames []string
	// X holds one row per sample; all rows have the same length.
	X [][]float64
	// Y holds the regression target for each row of X.
	Y []float64
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Features returns the number of feature columns (0 for an empty dataset).
func (d *Dataset) Features() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks structural invariants: matching X/Y lengths, rectangular
// X, and at least one sample.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return errors.New("dataset: no samples")
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("dataset: %d feature rows but %d targets", len(d.X), len(d.Y))
	}
	n := len(d.X[0])
	if n == 0 {
		return errors.New("dataset: zero feature columns")
	}
	for i, row := range d.X {
		if len(row) != n {
			return fmt.Errorf("dataset: row %d has %d features, want %d", i, len(row), n)
		}
	}
	return nil
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{Name: d.Name}
	if d.FeatureNames != nil {
		c.FeatureNames = append([]string(nil), d.FeatureNames...)
	}
	c.X = make([][]float64, len(d.X))
	for i, row := range d.X {
		c.X[i] = append([]float64(nil), row...)
	}
	c.Y = append([]float64(nil), d.Y...)
	return c
}

// Subset returns a dataset view containing the rows at the given indices.
// The returned dataset shares row storage with d; use Clone for isolation.
func (d *Dataset) Subset(indices []int) *Dataset {
	s := &Dataset{Name: d.Name, FeatureNames: d.FeatureNames}
	s.X = make([][]float64, len(indices))
	s.Y = make([]float64, len(indices))
	for i, idx := range indices {
		s.X[i] = d.X[idx]
		s.Y[i] = d.Y[idx]
	}
	return s
}

// Shuffle permutes the samples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.X), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Split partitions d into train and test sets with the given test fraction
// (0 < testFrac < 1), after a shuffle driven by rng. The split keeps at
// least one sample on each side.
func (d *Dataset) Split(rng *rand.Rand, testFrac float64) (train, test *Dataset, err error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: testFrac must be in (0,1), got %v", testFrac)
	}
	n := d.Len()
	perm := rng.Perm(n)
	nTest := int(float64(n) * testFrac)
	if nTest < 1 {
		nTest = 1
	}
	if nTest >= n {
		nTest = n - 1
	}
	test = d.Subset(perm[:nTest])
	train = d.Subset(perm[nTest:])
	return train, test, nil
}

// TargetRange returns the minimum and maximum of Y.
func (d *Dataset) TargetRange() (lo, hi float64) {
	if len(d.Y) == 0 {
		return 0, 0
	}
	lo, hi = d.Y[0], d.Y[0]
	for _, y := range d.Y[1:] {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	return lo, hi
}
