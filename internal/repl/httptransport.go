package repl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"reghd/internal/core"
)

// HTTP wire shape of a delta exchange: the payload travels as the POST
// body (it is already a self-checking binary frame), the routing fields as
// headers. cmd/reghd-replica mounts DeltaHandler under DeltaPath.
const (
	// DeltaPath is the HTTP route replicas exchange deltas on.
	DeltaPath = "/repl/delta"
	// headerFrom and headerSeq carry Message.From and Message.Seq.
	headerFrom = "X-Reghd-From"
	headerSeq  = "X-Reghd-Seq"
)

// HTTPTransport ships messages as POST requests to peer base URLs — the
// production Transport under cmd/reghd-replica, where each replica is its
// own process. Send honors ctx for the per-attempt timeout; any non-2xx
// status is a failed delivery (the replica's retry path handles it).
type HTTPTransport struct {
	peers  map[int]string
	client *http.Client
}

// NewHTTPTransport builds a transport from a map of replica ID → base URL
// (e.g. {1: "http://127.0.0.1:8082"}). The client is shared; per-send
// deadlines come from the ctx each Send receives.
func NewHTTPTransport(peers map[int]string) *HTTPTransport {
	m := make(map[int]string, len(peers))
	for id, u := range peers {
		m[id] = u
	}
	return &HTTPTransport{peers: m, client: &http.Client{}}
}

// Send POSTs the message to the peer's DeltaPath.
func (t *HTTPTransport) Send(ctx context.Context, to int, msg Message) error {
	base, ok := t.peers[to]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownReplica, to)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+DeltaPath, bytes.NewReader(msg.Payload))
	if err != nil {
		return fmt.Errorf("repl: building delta request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(headerFrom, strconv.Itoa(msg.From))
	req.Header.Set(headerSeq, strconv.FormatUint(msg.Seq, 10))
	resp, err := t.client.Do(req)
	if err != nil {
		return fmt.Errorf("repl: delta POST to %d: %w", to, err)
	}
	defer resp.Body.Close()
	// Drain so the connection is reusable; the body carries only an error
	// message on failure.
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("repl: delta POST to %d: %s: %s", to, resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

// DeltaHandler serves DeltaPath: it parses the routing headers, feeds the
// body into r.Receive, and maps the outcome to a status the sender's retry
// logic understands — 204 for accepted (including idempotent duplicates),
// 400 for corrupt or protocol-violating payloads (the sender resends its
// locally intact copy), 405 for anything but POST.
func DeltaHandler(r *Replica) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		from, err := strconv.Atoi(req.Header.Get(headerFrom))
		if err != nil {
			http.Error(w, "bad "+headerFrom, http.StatusBadRequest)
			return
		}
		seq, err := strconv.ParseUint(req.Header.Get(headerSeq), 10, 64)
		if err != nil {
			http.Error(w, "bad "+headerSeq, http.StatusBadRequest)
			return
		}
		payload, err := io.ReadAll(io.LimitReader(req.Body, 64<<20))
		if err != nil {
			http.Error(w, "reading payload: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := r.Receive(Message{From: from, Seq: seq, Payload: payload}); err != nil {
			status := http.StatusBadRequest
			if !errors.Is(err, core.ErrCorruptDelta) {
				status = http.StatusConflict
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
}
