// Package repl is the fault-tolerant multi-replica delta-sync layer: N
// replicas each own a reghd.Engine, train locally via PartialFit, and
// periodically ship compact wire-encoded core.Delta payloads to their peers
// over a pluggable Transport. A coordinator-free anti-entropy loop folds
// each completed sync round into a merged base via Merge/MergeQuantized
// and republishes it through the existing engine snapshot path.
//
// The protocol is round-based. The fleet has a fixed membership 0..N-1;
// every replica tracks a frontier F — the highest sync round it has folded
// — plus two models: base (the merged state after round F, bit-identical
// across the fleet because the bundling merge folds deltas in a canonical
// content-derived order) and local (a clone of base absorbing this
// replica's round-F+1 training). Sealing round F+1 freezes local's delta,
// ships it to every peer, and queues further samples until the fold;
// folding happens once all N members' round-F+1 deltas are present and
// requires no coordinator — every replica computes the same merge over the
// same multiset. Delta application is idempotent, keyed by (replica,
// sync-seq), so retries and transport duplicates never double-count
// samples. See docs/REPLICATION.md.
package repl

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Message is one replication datagram: the wire-encoded core.Delta sealing
// sender From's sync round Seq.
type Message struct {
	// From is the sending replica's fleet ID.
	From int
	// Seq is the sync round the payload seals (rounds start at 1).
	Seq uint64
	// Payload is the core.Delta wire encoding (core.(*Delta).Encode).
	Payload []byte
}

// Handler consumes one message at its destination (a replica's Receive).
type Handler func(msg Message) error

// Transport ships messages between replicas. Send returns nil only when
// the destination accepted the message — or, for reordering transports
// holding it back, is guaranteed to receive it eventually. Implementations
// must honor ctx cancellation as "not delivered".
type Transport interface {
	Send(ctx context.Context, to int, msg Message) error
}

// ErrUnknownReplica is returned by a transport asked to reach an ID no
// replica is registered under.
var ErrUnknownReplica = errors.New("repl: unknown replica")

// Network is the in-process Transport: a registry of replica handlers
// invoked synchronously. It is the fabric under the chaos tests and the
// replsync experiment; cmd/reghd-replica uses HTTPTransport instead.
type Network struct {
	mu       sync.RWMutex
	handlers map[int]Handler
}

// NewNetwork builds an empty fabric.
func NewNetwork() *Network {
	return &Network{handlers: map[int]Handler{}}
}

// Register installs the handler receiving messages addressed to id.
func (n *Network) Register(id int, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[id] = h
}

// Send delivers the message to the registered handler synchronously.
func (n *Network) Send(ctx context.Context, to int, msg Message) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("repl: send aborted: %w", err)
	}
	n.mu.RLock()
	h := n.handlers[to]
	n.mu.RUnlock()
	if h == nil {
		return fmt.Errorf("%w: id %d", ErrUnknownReplica, to)
	}
	return h(msg)
}
