package repl_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"reghd/internal/core"
	"reghd/internal/encoding"
	"reghd/internal/fault"
	"reghd/internal/repl"
)

// quantizedConfig exercises every merged store: binary clusters, binary
// models, scales, calibration.
func quantizedConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Models = 4
	cfg.Seed = 11
	cfg.ClusterMode = core.ClusterBinary
	cfg.PredictMode = core.PredictBinaryBoth
	return cfg
}

func fullConfig() core.Config {
	cfg := quantizedConfig()
	cfg.ClusterMode = core.ClusterInteger
	cfg.PredictMode = core.PredictFull
	return cfg
}

// newReplModel builds one fleet member's starting model. Every member uses
// the same encoder seed and config, so all replicas start bit-identical —
// the fleet precondition.
func newReplModel(t testing.TB, cfg core.Config) *core.Model {
	t.Helper()
	enc, err := encoding.NewNonlinearProjection(rand.New(rand.NewSource(99)), 4, 256, 1.0, encoding.ProjBipolar)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fastConfig keeps retry cycles short so chaos tests stay quick.
func fastConfig(id, members int) repl.Config {
	return repl.Config{
		ID:          id,
		Members:     members,
		SendTimeout: 200 * time.Millisecond,
		RetryBudget: 2,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		JitterSeed:  7,
	}
}

// synthRows generates the shared deterministic sample stream all fleets
// feed from.
func synthRows(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, 4)
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		xs[i] = x
		ys[i] = 1.5*x[0] - 0.7*x[1] + 0.3*math.Sin(3*x[2]) + 0.1*x[3]
	}
	return xs, ys
}

// fleet is N replicas over one fabric plus the optional chaos wrapper.
type fleet struct {
	replicas []*repl.Replica
	chaos    *repl.Chaos
}

// newFleet builds N replicas over an in-process Network, wrapped in a
// chaos layer when faults is non-nil.
func newFleet(t testing.TB, n int, cfg core.Config, faults *fault.NetFaults) *fleet {
	t.Helper()
	net := repl.NewNetwork()
	f := &fleet{}
	var tr repl.Transport = net
	if faults != nil {
		f.chaos = repl.NewChaos(net, faults)
		tr = f.chaos
	}
	for id := 0; id < n; id++ {
		r, err := repl.New(newReplModel(t, cfg), fastConfig(id, n), tr)
		if err != nil {
			t.Fatal(err)
		}
		net.Register(id, r.Handler())
		f.replicas = append(f.replicas, r)
	}
	return f
}

// feed streams one round's shard to each replica: replica i takes rows
// i, i+N, i+2N, … — the same partitioning on every fleet, so fleets fed
// from the same stream are comparable bit for bit.
func (f *fleet) feed(t testing.TB, xs [][]float64, ys []float64) {
	t.Helper()
	n := len(f.replicas)
	for i, r := range f.replicas {
		for j := i; j < len(xs); j += n {
			if err := r.PartialFit(xs[j], ys[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// pump seals the open round everywhere and drives Flush/Drain until every
// replica folds to the target round. Send errors are expected while chaos
// or partitions are active; the pump only fails if the fleet cannot
// converge within the iteration budget after faults clear.
func (f *fleet) pump(t testing.TB, ctx context.Context, target uint64, heal func(iter int)) {
	t.Helper()
	for _, r := range f.replicas {
		_ = r.Seal(ctx) // errors here are chaos loss; Flush below retries
	}
	for iter := 0; iter < 400; iter++ {
		if heal != nil {
			heal(iter)
		}
		// Flush everyone: a replica that already folded may still hold
		// unacked deltas its laggard peers need.
		for _, r := range f.replicas {
			_ = r.Flush(ctx)
		}
		if f.chaos != nil {
			if err := f.chaos.Drain(ctx); err != nil {
				t.Fatalf("drain: %v", err)
			}
		}
		done := true
		for _, r := range f.replicas {
			if r.Round() < target {
				done = false
			}
		}
		if done {
			return
		}
	}
	for _, r := range f.replicas {
		t.Logf("replica status: %+v", r.Status())
	}
	t.Fatalf("fleet did not reach round %d", target)
}

// fingerprints returns every replica's merged-state digest.
func (f *fleet) fingerprints() []uint64 {
	fps := make([]uint64, len(f.replicas))
	for i, r := range f.replicas {
		fps[i] = r.Fingerprint()
	}
	return fps
}

// TestReplConvergenceChaos is the headline chaos suite: a 3-replica fleet
// under seeded drop/delay/duplicate/reorder faults, with a different full
// partition window per fleet (different heal orderings), must fold every
// round to a Float64bits-identical state — identical across the replicas
// of each fleet, across the two differently-faulted fleets, and identical
// to a fault-free reference fleet fed the same stream. Both merge paths
// (quantized vote and full-precision) are covered. Run under -race by
// `make race` / `make chaos`.
func TestReplConvergenceChaos(t *testing.T) {
	const members, rounds, perRound = 3, 4, 45
	for _, tc := range []struct {
		name string
		cfg  core.Config
	}{
		{"quantized", quantizedConfig()},
		{"full-precision", fullConfig()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			clean := newFleet(t, members, tc.cfg, nil)
			chaosA := mustFaults(t, fault.NetConfig{
				Drop: 0.15, Delay: 0.2, MaxDelay: 2 * time.Millisecond,
				Duplicate: 0.15, Reorder: 0.15, Seed: 31,
			})
			fleetA := newFleet(t, members, tc.cfg, chaosA)
			chaosB := mustFaults(t, fault.NetConfig{
				Drop: 0.25, Delay: 0.1, MaxDelay: time.Millisecond,
				Duplicate: 0.25, Reorder: 0.1, Seed: 77,
			})
			fleetB := newFleet(t, members, tc.cfg, chaosB)

			for round := 1; round <= rounds; round++ {
				xs, ys := synthRows(perRound, int64(round))
				for _, f := range []*fleet{clean, fleetA, fleetB} {
					f.feed(t, xs, ys)
				}
				clean.pump(t, ctx, uint64(round), nil)
				// Fleet A loses replica 0 at the start of even rounds,
				// fleet B loses replica 2 — two different partition/heal
				// orderings over the same stream.
				partition := func(ch *fault.NetFaults, victim int) func(int) {
					if round%2 != 0 {
						return nil
					}
					ch.Isolate(victim)
					return func(iter int) {
						if iter == 5 {
							ch.HealAll()
						}
					}
				}
				fleetA.pump(t, ctx, uint64(round), partition(chaosA, 0))
				fleetB.pump(t, ctx, uint64(round), partition(chaosB, 2))
			}

			want := clean.fingerprints()[0]
			for name, f := range map[string]*fleet{"clean": clean, "chaosA": fleetA, "chaosB": fleetB} {
				for i, fp := range f.fingerprints() {
					if fp != want {
						t.Errorf("%s replica %d fingerprint %#x, want %#x", name, i, fp, want)
					}
				}
				wantSamples := uint64(rounds * perRound)
				for i, r := range f.replicas {
					if got := r.Samples(); got != wantSamples {
						t.Errorf("%s replica %d merged %d samples, want %d", name, i, got, wantSamples)
					}
				}
			}
			// The healed fleet serves the merged state: every engine
			// answers, and identically across replicas.
			probe := []float64{0.2, -0.4, 0.6, 0.1}
			base, err := fleetA.replicas[0].Predict(probe)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range fleetA.replicas[1:] {
				y, err := r.Predict(probe)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(y) != math.Float64bits(base) {
					t.Errorf("replica %d predicts %v, replica 0 predicts %v", i+1, y, base)
				}
			}
		})
	}
}

func mustFaults(t testing.TB, cfg fault.NetConfig) *fault.NetFaults {
	t.Helper()
	nf, err := fault.NewNetFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nf
}

// recordingTransport captures every delivered message for later replay.
type recordingTransport struct {
	next repl.Transport
	msgs []captured
}

type captured struct {
	to  int
	msg repl.Message
}

func (r *recordingTransport) Send(ctx context.Context, to int, msg repl.Message) error {
	if err := r.next.Send(ctx, to, msg); err != nil {
		return err
	}
	r.msgs = append(r.msgs, captured{to: to, msg: msg})
	return nil
}

// TestReplIdempotency pins the (replica, sync-seq) dedup: replaying every
// delivered delta — simulating retries and transport duplicates — changes
// neither the merged state nor the sample census.
func TestReplIdempotency(t *testing.T) {
	ctx := context.Background()
	net := repl.NewNetwork()
	rec := &recordingTransport{next: net}
	replicas := make([]*repl.Replica, 2)
	for id := range replicas {
		r, err := repl.New(newReplModel(t, quantizedConfig()), fastConfig(id, 2), rec)
		if err != nil {
			t.Fatal(err)
		}
		net.Register(id, r.Handler())
		replicas[id] = r
	}
	xs, ys := synthRows(30, 5)
	for i := range xs {
		if err := replicas[i%2].PartialFit(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range replicas {
		if err := r.Seal(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range replicas {
		if r.Round() != 1 {
			t.Fatalf("replica %d at round %d after clean exchange", i, r.Round())
		}
	}
	fpBefore := []uint64{replicas[0].Fingerprint(), replicas[1].Fingerprint()}
	if fpBefore[0] != fpBefore[1] {
		t.Fatalf("fleet diverged before replay: %#x vs %#x", fpBefore[0], fpBefore[1])
	}
	if got := replicas[0].Samples(); got != 30 {
		t.Fatalf("merged %d samples, want 30", got)
	}
	// Replay every captured message three times, straight into Receive.
	for rep := 0; rep < 3; rep++ {
		for _, c := range rec.msgs {
			if err := replicas[c.to].Receive(c.msg); err != nil {
				t.Fatalf("replay rejected: %v", err)
			}
		}
	}
	for i, r := range replicas {
		if fp := r.Fingerprint(); fp != fpBefore[i] {
			t.Errorf("replica %d state changed under duplicate delivery: %#x → %#x", i, fpBefore[i], fp)
		}
		if got := r.Samples(); got != 30 {
			t.Errorf("replica %d sample census inflated to %d by duplicates", i, got)
		}
	}
}

// failingTransport fails every send until healed.
type failingTransport struct {
	next   repl.Transport
	broken bool
}

func (f *failingTransport) Send(ctx context.Context, to int, msg repl.Message) error {
	if f.broken {
		return errors.New("transport down")
	}
	return f.next.Send(ctx, to, msg)
}

// TestReplHealthStates pins the live → suspect → dead ladder and the
// revival on a successful send.
func TestReplHealthStates(t *testing.T) {
	ctx := context.Background()
	net := repl.NewNetwork()
	ft := &failingTransport{next: net, broken: true}
	cfg0 := fastConfig(0, 2)
	cfg0.SuspectAfter = 2
	cfg0.DeadAfter = 5
	cfg0.RetryBudget = 1
	r0, err := repl.New(newReplModel(t, quantizedConfig()), cfg0, ft)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := repl.New(newReplModel(t, quantizedConfig()), fastConfig(1, 2), net)
	if err != nil {
		t.Fatal(err)
	}
	net.Register(0, r0.Handler())
	net.Register(1, r1.Handler())

	xs, ys := synthRows(10, 9)
	for i := range xs {
		if err := r0.PartialFit(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := r0.Seal(ctx); err == nil {
		t.Fatal("Seal over a dead transport reported success")
	}
	if st := r0.Status().Peers[1].State; st != repl.Suspect {
		t.Fatalf("after one failed cycle peer state = %v, want suspect", st)
	}
	for i := 0; i < 3; i++ {
		if err := r0.Flush(ctx); err == nil {
			t.Fatal("Flush over a dead transport reported success")
		}
	}
	if st := r0.Status().Peers[1].State; st != repl.Dead {
		t.Fatalf("after repeated failed cycles peer state = %v, want dead", st)
	}
	// The fleet is stalled but the replica is alive; heal and flush.
	ft.broken = false
	if err := r1.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r0.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if st := r0.Status().Peers[1].State; st != repl.Live {
		t.Fatalf("after successful send peer state = %v, want live", st)
	}
	if r0.Round() != 1 || r1.Round() != 1 {
		t.Fatalf("fleet did not fold after heal: rounds %d/%d", r0.Round(), r1.Round())
	}
}

// TestReplQueueBound pins the sealed-mode admission contract: samples
// queue up to QueueCap, overflow returns ErrQueueFull, and the queue
// replays into the next round at fold time.
func TestReplQueueBound(t *testing.T) {
	ctx := context.Background()
	net := repl.NewNetwork()
	ft := &failingTransport{next: net, broken: true}
	cfg0 := fastConfig(0, 2)
	cfg0.QueueCap = 4
	cfg0.RetryBudget = 0
	r0, err := repl.New(newReplModel(t, quantizedConfig()), cfg0, ft)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := repl.New(newReplModel(t, quantizedConfig()), fastConfig(1, 2), net)
	if err != nil {
		t.Fatal(err)
	}
	net.Register(0, r0.Handler())
	net.Register(1, r1.Handler())

	xs, ys := synthRows(10, 13)
	if err := r0.PartialFit(xs[0], ys[0]); err != nil {
		t.Fatal(err)
	}
	_ = r0.Seal(ctx) // transport down: sealed, delta undelivered
	for i := 1; i <= 4; i++ {
		if err := r0.PartialFit(xs[i], ys[i]); err != nil {
			t.Fatalf("queued sample %d: %v", i, err)
		}
	}
	if err := r0.PartialFit(xs[5], ys[5]); !errors.Is(err, repl.ErrQueueFull) {
		t.Fatalf("overflow sample error = %v, want ErrQueueFull", err)
	}
	if got := r0.Status().QueueLen; got != 4 {
		t.Fatalf("queue length %d, want 4", got)
	}
	ft.broken = false
	if err := r1.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r0.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if r0.Round() != 1 {
		t.Fatalf("round %d after heal, want 1", r0.Round())
	}
	st := r0.Status()
	if st.QueueLen != 0 {
		t.Fatalf("queue not replayed at fold: %d left", st.QueueLen)
	}
	// The replayed samples belong to round 2: seal it and verify they land.
	if err := r0.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r1.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	if got := r0.Samples(); got != 5 {
		t.Fatalf("merged %d samples across two rounds, want 5", got)
	}
}

// TestReplDegradedServing pins degraded-mode availability: while a
// partition stalls folding, every replica keeps serving its last merged
// snapshot; after heal the fold publishes a fresh one.
func TestReplDegradedServing(t *testing.T) {
	ctx := context.Background()
	faults := mustFaults(t, fault.NetConfig{Seed: 3})
	f := newFleet(t, 3, quantizedConfig(), faults)

	xs, ys := synthRows(40, 17)
	f.feed(t, xs, ys)
	f.pump(t, ctx, 1, nil)
	eng := f.replicas[1].Engine()
	if eng == nil {
		t.Fatal("no engine after first trained fold")
	}
	seqBefore := eng.PublishSeq()
	yBefore, err := f.replicas[1].Predict(xs[0])
	if err != nil {
		t.Fatal(err)
	}

	faults.Isolate(1)
	xs2, ys2 := synthRows(40, 18)
	f.feed(t, xs2, ys2)
	for _, r := range f.replicas {
		_ = r.Seal(ctx) // partition: round 2 cannot fold
	}
	for _, r := range f.replicas {
		if r.Round() != 1 {
			t.Fatalf("replica folded through a partition (round %d)", r.Round())
		}
	}
	// Degraded mode: the isolated replica still answers from the round-1
	// snapshot.
	yDuring, err := f.replicas[1].Predict(xs[0])
	if err != nil {
		t.Fatalf("degraded-mode predict failed: %v", err)
	}
	if math.Float64bits(yDuring) != math.Float64bits(yBefore) ||
		f.replicas[1].Engine().PublishSeq() != seqBefore {
		t.Fatal("partition changed the served snapshot")
	}

	faults.HealAll()
	f.pump(t, ctx, 2, nil)
	if f.replicas[1].Engine().PublishSeq() == seqBefore {
		t.Fatal("heal did not publish the merged round")
	}
	fps := f.fingerprints()
	for i, fp := range fps[1:] {
		if fp != fps[0] {
			t.Fatalf("replica %d diverged after heal", i+1)
		}
	}
}

// TestReplStartStop pins the background anti-entropy loop: it seals and
// folds on its own, and the stop function terminates the goroutine (the
// goroleak contract).
func TestReplStartStop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f := newFleet(t, 2, quantizedConfig(), nil)
	xs, ys := synthRows(20, 23)
	f.feed(t, xs, ys)
	var stops []func()
	for _, r := range f.replicas {
		stops = append(stops, r.Start(ctx, 5*time.Millisecond))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, r := range f.replicas {
			if r.Round() < 1 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never folded round 1")
		}
		time.Sleep(time.Millisecond)
	}
	for _, stop := range stops {
		stop()
	}
	fps := f.fingerprints()
	if fps[0] != fps[1] {
		t.Fatalf("fleet diverged under the background loop: %#x vs %#x", fps[0], fps[1])
	}
}

// TestReplHTTPTransport runs a 2-replica fleet over real HTTP — the
// cmd/reghd-replica wire path — and checks convergence plus the corrupt-
// payload rejection status.
func TestReplHTTPTransport(t *testing.T) {
	ctx := context.Background()
	replicas := make([]*repl.Replica, 2)
	urls := map[int]string{}
	for id := range replicas {
		id := id
		mux := http.NewServeMux()
		srv := httptest.NewServer(mux)
		defer srv.Close()
		urls[id] = srv.URL
		// Handler installed after both replicas exist.
		mux.HandleFunc(repl.DeltaPath, func(w http.ResponseWriter, req *http.Request) {
			repl.DeltaHandler(replicas[id]).ServeHTTP(w, req)
		})
	}
	for id := range replicas {
		peers := map[int]string{}
		for pid, u := range urls {
			if pid != id {
				peers[pid] = u
			}
		}
		r, err := repl.New(newReplModel(t, quantizedConfig()), fastConfig(id, 2), repl.NewHTTPTransport(peers))
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = r
	}
	xs, ys := synthRows(24, 29)
	for i := range xs {
		if err := replicas[i%2].PartialFit(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range replicas {
		if err := r.Seal(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if replicas[0].Round() != 1 || replicas[1].Round() != 1 {
		t.Fatalf("HTTP fleet did not fold: rounds %d/%d", replicas[0].Round(), replicas[1].Round())
	}
	if a, b := replicas[0].Fingerprint(), replicas[1].Fingerprint(); a != b {
		t.Fatalf("HTTP fleet diverged: %#x vs %#x", a, b)
	}
	// A corrupt payload must come back as a client error, not an ack.
	resp, err := http.Post(urls[0]+repl.DeltaPath, "application/octet-stream", bytes.NewReader([]byte("garbage")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt payload status %d, want 400", resp.StatusCode)
	}
}
