package repl

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"reghd"
	"reghd/internal/core"
	"reghd/internal/hdc"
	"reghd/internal/obs"
)

// PeerState is a peer's health as seen from one replica: Live while sends
// succeed, Suspect after SuspectAfter consecutive failed attempts, Dead
// after DeadAfter. A single successful send revives the peer to Live. A
// dead peer stalls folding (the round barrier needs every member), so the
// replica keeps serving its last merged snapshot — degraded but available —
// and keeps probing the peer on every Flush.
type PeerState int

const (
	Live PeerState = iota
	Suspect
	Dead
)

// String names the state.
func (s PeerState) String() string {
	switch s {
	case Live:
		return "live"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("peerstate(%d)", int(s))
	}
}

// ErrQueueFull is returned by PartialFit when the replica is sealed
// (awaiting a fold) and the bounded sample queue is at capacity — the
// replication analogue of admission shedding: the caller drops or defers
// the sample instead of the replica buffering without bound through a long
// partition.
var ErrQueueFull = errors.New("repl: sealed and sample queue full")

// Config parameterizes a Replica.
type Config struct {
	// ID is this replica's fleet ID; Members the fixed fleet size. IDs run
	// 0..Members-1.
	ID, Members int
	// QueueCap bounds the samples buffered between seal and fold
	// (default 1024).
	QueueCap int
	// SendTimeout bounds each individual send attempt (default 2s).
	SendTimeout time.Duration
	// RetryBudget is how many times a failed send is retried within one
	// delivery cycle (default 5); between attempts the sender backs off
	// exponentially from BackoffBase to BackoffMax (defaults 10ms, 1s)
	// with ±50% jitter drawn from JitterSeed.
	RetryBudget int
	BackoffBase time.Duration
	BackoffMax  time.Duration
	JitterSeed  int64
	// SuspectAfter and DeadAfter are the consecutive failed-attempt counts
	// demoting a peer live → suspect → dead (defaults 3 and 12).
	SuspectAfter, DeadAfter int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.QueueCap == 0 {
		c.QueueCap = 1024
	}
	if c.SendTimeout == 0 {
		c.SendTimeout = 2 * time.Second
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 5
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = time.Second
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 3
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 12
	}
	return c
}

// Validate rejects impossible fleets.
func (c Config) Validate() error {
	if c.Members < 1 {
		return fmt.Errorf("repl: fleet needs at least 1 member, got %d", c.Members)
	}
	if c.ID < 0 || c.ID >= c.Members {
		return fmt.Errorf("repl: ID %d outside fleet 0..%d", c.ID, c.Members-1)
	}
	if c.QueueCap < 0 || c.RetryBudget < 0 {
		return fmt.Errorf("repl: negative QueueCap/RetryBudget")
	}
	if c.SuspectAfter > c.DeadAfter {
		return fmt.Errorf("repl: SuspectAfter %d exceeds DeadAfter %d", c.SuspectAfter, c.DeadAfter)
	}
	return nil
}

// sample is one queued (x, y) pair buffered while sealed.
type sample struct {
	x []float64
	y float64
}

// outEntry is one sealed round awaiting peer acknowledgements. The outbox
// holds at most two entries: a replica cannot seal round F+2 before
// folding F+1, and folding F+1 proves every peer progressed enough to have
// produced F+1 themselves.
type outEntry struct {
	payload []byte
	acked   map[int]bool
}

// peerHealth tracks one peer's consecutive send failures and derived state.
type peerHealth struct {
	state PeerState
	fails int
}

// Replica is one member of a delta-sync fleet. It owns the merged base
// model, the local training model, and (once trained) a reghd.Engine
// serving the latest merged snapshot. All methods are safe for concurrent
// use; the transport is never called while the replica mutex is held.
type Replica struct {
	cfg       Config
	tr        Transport
	quantized bool

	rngMu sync.Mutex
	rng   *rand.Rand

	mu       sync.Mutex
	base     *core.Model
	local    *core.Model
	engine   *reghd.Engine
	frontier uint64
	sealed   bool
	queue    []sample
	pending  map[uint64]map[int]*core.Delta
	outbox   map[uint64]*outEntry
	peers    map[int]*peerHealth
	lastErr  error
}

// New builds a replica around model (taking ownership of it) talking over
// tr. Every fleet member must start from a bit-identical model state —
// typically the same construction seed, or the same warm-start checkpoint —
// or the round deltas will not be mergeable.
func New(model *core.Model, cfg Config, tr Transport) (*Replica, error) {
	if model == nil {
		return nil, errors.New("repl: nil model")
	}
	if tr == nil {
		return nil, errors.New("repl: nil transport")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mcfg := model.Config()
	r := &Replica{
		cfg:       cfg,
		tr:        tr,
		quantized: mcfg.PredictMode.UsesBinaryModel() || mcfg.ClusterMode == core.ClusterBinary,
		rng:       rand.New(rand.NewSource(cfg.JitterSeed + int64(cfg.ID))),
		base:      model,
		pending:   map[uint64]map[int]*core.Delta{},
		outbox:    map[uint64]*outEntry{},
		peers:     map[int]*peerHealth{},
	}
	for id := 0; id < cfg.Members; id++ {
		if id != cfg.ID {
			r.peers[id] = &peerHealth{}
		}
	}
	r.resetLocalLocked()
	if model.Trained() {
		eng, err := reghd.NewEngine(model.Clone())
		if err != nil {
			return nil, fmt.Errorf("repl: wrapping serving engine: %w", err)
		}
		r.engine = eng
	}
	return r, nil
}

// resetLocalLocked re-clones the training model from base and replays any
// queued samples into it. Callers hold r.mu.
func (r *Replica) resetLocalLocked() {
	r.local = r.base.Clone()
	r.local.TrainCounter = &hdc.Counter{}
	r.local.MarkSync()
	queued := r.queue
	r.queue = nil
	r.sealed = false
	for _, s := range queued {
		if err := r.local.PartialFit(s.x, s.y); err != nil {
			// Queued samples were validated at enqueue; a failure here is a
			// model-level fault, surfaced through LastErr.
			r.lastErr = fmt.Errorf("repl: replaying queued sample: %w", err)
		}
	}
}

// PartialFit streams one training sample into the replica: directly into
// the local model while the current round is open, into the bounded queue
// while sealed (the sample then joins the next round at fold time).
func (r *Replica) PartialFit(x []float64, y float64) error {
	if err := core.ValidateRow(x, r.featuresLocked()); err != nil {
		return err
	}
	if err := core.ValidateTarget(y); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sealed {
		if len(r.queue) >= r.cfg.QueueCap {
			return ErrQueueFull
		}
		r.queue = append(r.queue, sample{x: append([]float64(nil), x...), y: y})
		return nil
	}
	return r.local.PartialFit(x, y)
}

// featuresLocked reads the model's input width (the encoder is immutable,
// so no lock is needed).
func (r *Replica) featuresLocked() int { return r.base.Encoder().Features() }

// Seal closes the current sync round: it captures the local model's delta,
// applies it to this replica's own pending slot, and ships it to every
// peer (with per-send timeout, backoff, and the retry budget). Sealing an
// already-sealed round is a no-op — the round must fold before the next
// one opens. Training continues into the bounded queue while sealed.
func (r *Replica) Seal(ctx context.Context) error {
	r.mu.Lock()
	if r.sealed {
		r.mu.Unlock()
		return r.Flush(ctx)
	}
	seq := r.frontier + 1
	delta, err := r.local.Delta()
	if err != nil {
		r.mu.Unlock()
		return fmt.Errorf("repl: sealing round %d: %w", seq, err)
	}
	payload, err := delta.Encode()
	if err != nil {
		r.mu.Unlock()
		return fmt.Errorf("repl: encoding round %d: %w", seq, err)
	}
	r.sealed = true
	r.addPendingLocked(seq, r.cfg.ID, delta)
	r.outbox[seq] = &outEntry{payload: payload, acked: map[int]bool{}}
	r.foldLocked()
	r.mu.Unlock()
	return r.Flush(ctx)
}

// Flush delivers every unacknowledged outbox entry to its remaining peers
// — the anti-entropy resend path healing drops, partitions, and restarts.
// Each (entry, peer) delivery runs the full retry/backoff cycle; peers
// that stay unreachable keep their entries for the next Flush.
func (r *Replica) Flush(ctx context.Context) error {
	type job struct {
		to  int
		msg Message
	}
	r.mu.Lock()
	var jobs []job
	for seq, e := range r.outbox {
		for id := range r.peers {
			if !e.acked[id] {
				jobs = append(jobs, job{to: id, msg: Message{From: r.cfg.ID, Seq: seq, Payload: e.payload}})
			}
		}
	}
	r.mu.Unlock()
	var firstErr error
	for _, j := range jobs {
		err := r.sendWithRetry(ctx, j.to, j.msg)
		r.mu.Lock()
		if err == nil {
			if e := r.outbox[j.msg.Seq]; e != nil {
				e.acked[j.to] = true
				if len(e.acked) == len(r.peers) {
					delete(r.outbox, j.msg.Seq)
				}
			}
		} else {
			r.lastErr = err
			if firstErr == nil {
				firstErr = err
			}
		}
		r.mu.Unlock()
		if ctx.Err() != nil {
			return fmt.Errorf("repl: flush aborted: %w", ctx.Err())
		}
	}
	return firstErr
}

// sendWithRetry runs one delivery cycle to peer `to`: up to 1+RetryBudget
// attempts, each bounded by SendTimeout, with jittered exponential backoff
// between attempts. Health transitions are recorded per attempt.
func (r *Replica) sendWithRetry(ctx context.Context, to int, msg Message) error {
	var lastErr error
	for attempt := 0; attempt <= r.cfg.RetryBudget; attempt++ {
		if attempt > 0 {
			obs.Repl.Retry()
			if err := r.backoff(ctx, attempt); err != nil {
				return err
			}
		}
		obs.Repl.Send(len(msg.Payload))
		sctx, cancel := context.WithTimeout(ctx, r.cfg.SendTimeout)
		err := r.tr.Send(sctx, to, msg)
		cancel()
		if err == nil {
			r.peerResult(to, true)
			return nil
		}
		lastErr = err
		obs.Repl.SendError()
		r.peerResult(to, false)
	}
	obs.Repl.Drop()
	return fmt.Errorf("repl: delta (from %d, seq %d) to %d undelivered after %d attempts: %w",
		msg.From, msg.Seq, to, r.cfg.RetryBudget+1, lastErr)
}

// backoff sleeps the jittered exponential delay for the given attempt
// (1-based), honoring ctx.
func (r *Replica) backoff(ctx context.Context, attempt int) error {
	d := r.cfg.BackoffBase << uint(attempt-1)
	if d > r.cfg.BackoffMax || d <= 0 {
		d = r.cfg.BackoffMax
	}
	r.rngMu.Lock()
	// ±50% jitter decorrelates a fleet retrying into the same heal.
	d = d/2 + time.Duration(r.rng.Int63n(int64(d)))
	r.rngMu.Unlock()
	t := time.NewTimer(d)
	select {
	case <-ctx.Done():
		t.Stop()
		return fmt.Errorf("repl: backoff aborted: %w", ctx.Err())
	case <-t.C:
		return nil
	}
}

// peerResult folds one send outcome into the peer's health state.
func (r *Replica) peerResult(to int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.peers[to]
	if p == nil {
		return
	}
	if ok {
		p.fails = 0
		p.state = Live
		return
	}
	p.fails++
	if p.fails >= r.cfg.DeadAfter && p.state != Dead {
		p.state = Dead
		obs.Repl.Dead()
	} else if p.fails >= r.cfg.SuspectAfter && p.state == Live {
		p.state = Suspect
		obs.Repl.Suspect()
	}
}

// Receive applies one incoming message: decode, idempotency check, buffer,
// fold if the round completed. It is the Handler side of the protocol —
// wire it to the transport with Handler().
func (r *Replica) Receive(msg Message) error {
	if msg.From < 0 || msg.From >= r.cfg.Members || msg.From == r.cfg.ID {
		return fmt.Errorf("repl: message from invalid member %d", msg.From)
	}
	if msg.Seq == 0 {
		return errors.New("repl: message seals round 0")
	}
	delta, err := core.DecodeDelta(msg.Payload)
	if err != nil {
		obs.Repl.Corrupt()
		return fmt.Errorf("repl: from %d seq %d: %w", msg.From, msg.Seq, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if msg.Seq <= r.frontier || r.pending[msg.Seq][msg.From] != nil {
		// Already folded or already buffered: a retry or a transport
		// duplicate. Acknowledge without applying — this is the
		// (replica, sync-seq) idempotency key at work.
		obs.Repl.Duplicate()
		return nil
	}
	if msg.Seq > r.frontier+2 {
		// A correct peer is at most one fold ahead; anything further is a
		// protocol violation, not congestion.
		return fmt.Errorf("repl: message seals round %d but frontier is %d", msg.Seq, r.frontier)
	}
	obs.Repl.Recv(len(msg.Payload))
	r.addPendingLocked(msg.Seq, msg.From, delta)
	r.foldLocked()
	return nil
}

// Handler adapts Receive to the transport Handler shape.
func (r *Replica) Handler() Handler { return r.Receive }

// addPendingLocked buffers one member's sealed delta for its round.
func (r *Replica) addPendingLocked(seq uint64, from int, d *core.Delta) {
	round := r.pending[seq]
	if round == nil {
		round = map[int]*core.Delta{}
		r.pending[seq] = round
	}
	round[from] = d
}

// foldLocked merges round frontier+1 into base once every member's delta
// is present, advances the frontier, reopens local training (replaying the
// queued samples), and republishes the merged state through the engine
// snapshot path. The merge folds deltas in a canonical content-derived
// order (core.sortDeltas), so every replica folding the same round reaches
// a Float64bits-identical base regardless of arrival order.
func (r *Replica) foldLocked() {
	seq := r.frontier + 1
	round := r.pending[seq]
	if len(round) < r.cfg.Members {
		return
	}
	deltas := make([]*core.Delta, 0, len(round))
	for _, d := range round {
		deltas = append(deltas, d)
	}
	var err error
	if r.quantized {
		err = r.base.MergeQuantized(deltas...)
	} else {
		err = r.base.Merge(deltas...)
	}
	if err != nil {
		// A delta that decoded cleanly but fails the shape check means the
		// fleet disagrees on configuration; surface it and keep serving.
		r.lastErr = fmt.Errorf("repl: folding round %d: %w", seq, err)
		return
	}
	delete(r.pending, seq)
	r.frontier = seq
	obs.Repl.Merge()
	obs.Repl.SetRound(r.frontier)
	r.resetLocalLocked()
	r.republishLocked()
}

// republishLocked pushes base into the serving engine (creating it at the
// first trained fold) and publishes a fresh snapshot.
func (r *Replica) republishLocked() {
	if r.engine == nil {
		if !r.base.Trained() {
			return
		}
		eng, err := reghd.NewEngine(r.base.Clone())
		if err != nil {
			r.lastErr = fmt.Errorf("repl: wrapping serving engine: %w", err)
			return
		}
		r.engine = eng
		obs.Repl.PublishSnapshot()
		return
	}
	if err := r.engine.Update(func(m *reghd.Model) error { return m.AdoptState(r.base) }); err != nil {
		r.lastErr = fmt.Errorf("repl: republishing round %d: %w", r.frontier, err)
		return
	}
	obs.Repl.PublishSnapshot()
}

// Predict serves one prediction from the engine's last merged snapshot —
// during partitions and stalled folds this is degraded-mode serving: stale
// but consistent state stays available. Before the first trained fold it
// returns reghd.ErrNotTrained.
func (r *Replica) Predict(x []float64) (float64, error) {
	r.mu.Lock()
	eng := r.engine
	r.mu.Unlock()
	if eng == nil {
		return 0, reghd.ErrNotTrained
	}
	return eng.Predict(x)
}

// Engine exposes the serving engine (nil before the first trained fold).
func (r *Replica) Engine() *reghd.Engine {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.engine
}

// Round reports the frontier: the highest folded sync round.
func (r *Replica) Round() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frontier
}

// Samples reports the merged base model's training-sample census — the
// quantity the idempotent delta application protects: retries and
// duplicates must never inflate it.
func (r *Replica) Samples() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base.SampleCount()
}

// Fingerprint digests the merged base state (core.Model.StateFingerprint);
// equal fingerprints across the fleet mean bit-identical convergence.
func (r *Replica) Fingerprint() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base.StateFingerprint()
}

// PeerStatus is one peer's health as reported by Status.
type PeerStatus struct {
	State PeerState `json:"state"`
	Fails int       `json:"consecutive_failures"`
}

// Status is a point-in-time view of the replica, served by
// cmd/reghd-replica's /replstatus endpoint.
type Status struct {
	ID          int                `json:"id"`
	Round       uint64             `json:"round"`
	Sealed      bool               `json:"sealed"`
	QueueLen    int                `json:"queue_len"`
	OutboxLen   int                `json:"outbox_len"`
	Fingerprint uint64             `json:"fingerprint"`
	Trained     bool               `json:"trained"`
	Peers       map[int]PeerStatus `json:"peers"`
	LastErr     string             `json:"last_err,omitempty"`
}

// Status snapshots the replica.
func (r *Replica) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Status{
		ID:          r.cfg.ID,
		Round:       r.frontier,
		Sealed:      r.sealed,
		QueueLen:    len(r.queue),
		OutboxLen:   len(r.outbox),
		Fingerprint: r.base.StateFingerprint(),
		Trained:     r.base.Trained(),
		Peers:       map[int]PeerStatus{},
	}
	for id, p := range r.peers {
		s.Peers[id] = PeerStatus{State: p.state, Fails: p.fails}
	}
	if r.lastErr != nil {
		s.LastErr = r.lastErr.Error()
	}
	return s
}

// LastErr reports the most recent background protocol error (nil when the
// replica is healthy).
func (r *Replica) LastErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// Start runs the anti-entropy loop in the background: every interval the
// replica seals the open round (shipping its delta) and flushes unacked
// outbox entries. The loop stops when ctx is canceled or the returned stop
// function is called; stop blocks until the goroutine has exited.
func (r *Replica) Start(ctx context.Context, every time.Duration) (stop func()) {
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-stopCh:
				return
			case <-t.C:
				if err := r.Seal(ctx); err != nil {
					r.mu.Lock()
					r.lastErr = err
					r.mu.Unlock()
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopCh) })
		<-done
	}
}
