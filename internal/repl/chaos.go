package repl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"reghd/internal/fault"
)

// ErrDropped is the transport error surfaced when the chaos layer loses a
// message in flight (random drop or partition). Senders treat it like any
// other send failure: back off and retry within the budget.
var ErrDropped = errors.New("repl: message dropped by chaos transport")

// ErrPartitioned wraps ErrDropped for messages lost to an active partition
// specifically, so tests and logs can tell injected loss from a severed
// link.
var ErrPartitioned = fmt.Errorf("%w: link partitioned", ErrDropped)

// Chaos wraps a Transport with the seeded network fault modes of
// fault.NetFaults: drop, delay, duplication, one-slot-per-link reordering,
// and full partition. The fault decisions are drawn deterministically from
// the NetFaults seed, so a chaos run is reproducible given the same send
// sequence.
//
// Semantics relative to the Transport ack contract:
//
//   - drop / partition: the message is not delivered and Send returns
//     ErrDropped / ErrPartitioned — the sender's retry path handles it.
//   - delay: Send sleeps the injected latency before delivering; if ctx
//     expires first the message is NOT delivered and Send returns the ctx
//     error (the per-send timeout turns injected latency into loss, as on
//     a real network).
//   - duplicate: the message is delivered twice; the receiver's
//     (replica, seq) idempotency check discards the copy.
//   - reorder: the message is held in a one-slot stash for its (from, to)
//     link and Send returns nil — the next message on that link is
//     delivered first, then the held one. Drain flushes every stash, which
//     convergence pumps call so a final held message cannot strand a round.
type Chaos struct {
	next   Transport
	faults *fault.NetFaults

	stashMu sync.Mutex
	stash   map[chaosLink]*stashed
}

type chaosLink struct{ from, to int }

type stashed struct {
	to  int
	msg Message
}

// NewChaos wraps next with the given fault decision source.
func NewChaos(next Transport, faults *fault.NetFaults) *Chaos {
	return &Chaos{next: next, faults: faults, stash: map[chaosLink]*stashed{}}
}

// Faults exposes the decision source (to cut and heal partitions mid-run).
func (c *Chaos) Faults() *fault.NetFaults { return c.faults }

// Send applies one fault decision to the message and forwards whatever
// survives to the wrapped transport.
func (c *Chaos) Send(ctx context.Context, to int, msg Message) error {
	if c.faults.Partitioned(msg.From, to) {
		return ErrPartitioned
	}
	d := c.faults.Decide(msg.From, to)
	if d.Drop {
		return ErrDropped
	}
	if d.Delay > 0 {
		t := time.NewTimer(d.Delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("repl: delayed send aborted: %w", ctx.Err())
		case <-t.C:
		}
	}
	link := chaosLink{from: msg.From, to: to}
	c.stashMu.Lock()
	held := c.stash[link]
	delete(c.stash, link)
	if d.Reorder && held == nil {
		c.stash[link] = &stashed{to: to, msg: msg}
		c.stashMu.Unlock()
		// Held back to swap with the link's next message; the ack stands
		// because Drain guarantees eventual delivery.
		return nil
	}
	c.stashMu.Unlock()
	deliveries := []Message{msg}
	if d.Duplicate {
		deliveries = append(deliveries, msg)
	}
	if held != nil {
		deliveries = append(deliveries, held.msg)
	}
	for _, m := range deliveries {
		if err := c.next.Send(ctx, to, m); err != nil {
			return err
		}
	}
	return nil
}

// Drain delivers every stashed (reorder-held) message. Convergence pumps
// call it between rounds so the last message on a link cannot stay held
// forever.
func (c *Chaos) Drain(ctx context.Context) error {
	c.stashMu.Lock()
	held := c.stash
	c.stash = map[chaosLink]*stashed{}
	c.stashMu.Unlock()
	for _, s := range held {
		if err := c.next.Send(ctx, s.to, s.msg); err != nil {
			return err
		}
	}
	return nil
}
