package obs

import "sync/atomic"

// ReplStats aggregates replication telemetry (internal/repl). It is always
// on: every replica in the process records into the process-global Repl,
// and the reghd.repl expvar serves the aggregate — no opt-in, matching the
// robustness and training counters. All fields are atomics, so replicas,
// transport goroutines, and the metrics handler never contend on a lock.
type ReplStats struct {
	sends      atomic.Uint64
	sendErrors atomic.Uint64
	retries    atomic.Uint64
	drops      atomic.Uint64
	recvs      atomic.Uint64
	duplicates atomic.Uint64
	corrupt    atomic.Uint64
	merges     atomic.Uint64
	publishes  atomic.Uint64
	round      atomic.Uint64 // highest folded sync round in the process (gauge)
	bytesOut   atomic.Uint64
	bytesIn    atomic.Uint64
	suspects   atomic.Uint64
	deads      atomic.Uint64
}

// Repl is the process-global replication aggregate, published under
// ReplVar.
var Repl = &ReplStats{}

func init() {
	Publish(ReplVar, func() any { return Repl.Metrics() })
}

// Send records one delta send attempt of n payload bytes (retries record a
// fresh attempt each).
func (s *ReplStats) Send(n int) {
	s.sends.Add(1)
	s.bytesOut.Add(uint64(n))
}

// SendError records one failed send attempt (the transport returned an
// error or the per-send timeout fired).
func (s *ReplStats) SendError() { s.sendErrors.Add(1) }

// Retry records one backoff-and-resend of a previously failed send.
func (s *ReplStats) Retry() { s.retries.Add(1) }

// Drop records one delta abandoned after its retry budget was exhausted.
func (s *ReplStats) Drop() { s.drops.Add(1) }

// Recv records one delta accepted from a peer (n payload bytes).
func (s *ReplStats) Recv(n int) {
	s.recvs.Add(1)
	s.bytesIn.Add(uint64(n))
}

// Duplicate records one received delta discarded by the (replica, sync-seq)
// idempotency check — a retry or transport duplicate that was already
// applied.
func (s *ReplStats) Duplicate() { s.duplicates.Add(1) }

// Corrupt records one received payload rejected as ErrCorruptDelta.
func (s *ReplStats) Corrupt() { s.corrupt.Add(1) }

// Merge records one anti-entropy fold (a Merge/MergeQuantized over a
// complete round of peer deltas).
func (s *ReplStats) Merge() { s.merges.Add(1) }

// PublishSnapshot records one republish of the merged state through the
// engine snapshot path.
func (s *ReplStats) PublishSnapshot() { s.publishes.Add(1) }

// SetRound records the highest folded sync round of any replica in the
// process (a gauge; monotone under normal operation).
func (s *ReplStats) SetRound(r uint64) {
	for {
		old := s.round.Load()
		if r <= old || s.round.CompareAndSwap(old, r) {
			return
		}
	}
}

// Suspect and Dead record peer health-state transitions (live → suspect,
// suspect → dead).
func (s *ReplStats) Suspect() { s.suspects.Add(1) }
func (s *ReplStats) Dead()    { s.deads.Add(1) }

// Reset zeroes the aggregate (tests).
func (s *ReplStats) Reset() {
	s.sends.Store(0)
	s.sendErrors.Store(0)
	s.retries.Store(0)
	s.drops.Store(0)
	s.recvs.Store(0)
	s.duplicates.Store(0)
	s.corrupt.Store(0)
	s.merges.Store(0)
	s.publishes.Store(0)
	s.round.Store(0)
	s.bytesOut.Store(0)
	s.bytesIn.Store(0)
	s.suspects.Store(0)
	s.deads.Store(0)
}

// ReplMetrics is the JSON served under the reghd.repl expvar; every leaf is
// documented in docs/OBSERVABILITY.md (doclint-pinned).
type ReplMetrics struct {
	// Sends counts delta send attempts; SendErrors the attempts that failed;
	// Retries the backoff-and-resend cycles; Drops the deltas abandoned
	// after the retry budget.
	Sends      uint64 `json:"sends"`
	SendErrors uint64 `json:"send_errors"`
	Retries    uint64 `json:"retries"`
	Drops      uint64 `json:"drops"`
	// Recvs counts deltas accepted from peers; Duplicates the ones the
	// idempotency check discarded; Corrupt the payloads failing DecodeDelta.
	Recvs      uint64 `json:"recvs"`
	Duplicates uint64 `json:"duplicates"`
	Corrupt    uint64 `json:"corrupt"`
	// Merges counts anti-entropy folds; Publishes the snapshot republishes
	// they triggered; Round is the highest folded sync round.
	Merges    uint64 `json:"merges"`
	Publishes uint64 `json:"publishes"`
	Round     uint64 `json:"round"`
	// DeltaBytesOut/DeltaBytesIn total the wire-encoded delta payload bytes
	// shipped and accepted.
	DeltaBytesOut uint64 `json:"delta_bytes_out"`
	DeltaBytesIn  uint64 `json:"delta_bytes_in"`
	// SuspectTransitions/DeadTransitions count peer health downgrades.
	SuspectTransitions uint64 `json:"suspect_transitions"`
	DeadTransitions    uint64 `json:"dead_transitions"`
}

// Metrics snapshots the aggregate.
func (s *ReplStats) Metrics() ReplMetrics {
	return ReplMetrics{
		Sends:              s.sends.Load(),
		SendErrors:         s.sendErrors.Load(),
		Retries:            s.retries.Load(),
		Drops:              s.drops.Load(),
		Recvs:              s.recvs.Load(),
		Duplicates:         s.duplicates.Load(),
		Corrupt:            s.corrupt.Load(),
		Merges:             s.merges.Load(),
		Publishes:          s.publishes.Load(),
		Round:              s.round.Load(),
		DeltaBytesOut:      s.bytesOut.Load(),
		DeltaBytesIn:       s.bytesIn.Load(),
		SuspectTransitions: s.suspects.Load(),
		DeadTransitions:    s.deads.Load(),
	}
}
