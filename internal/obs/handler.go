package obs

import (
	"expvar"
	"net/http"
	"sync"
)

// Variable names the serving stack publishes. cmd/reghd-serve registers
// both; docs/OBSERVABILITY.md documents the JSON under each (enforced by
// make metrics-lint).
const (
	// EngineVar is the expvar name carrying reghd.EngineMetrics.
	EngineVar = "reghd.engine"
	// HWVar is the expvar name carrying the live HWBridge report.
	HWVar = "reghd.hw"
	// RegistryVar is the expvar name carrying reghd.RegistryMetrics — the
	// multi-tenant fleet counters (reghd.NewRegistry publishes it).
	RegistryVar = "reghd.registry"
	// LoadgenVar is the metric namespace of the LoadgenReport emitted by
	// cmd/reghd-loadgen.
	LoadgenVar = "reghd.loadgen"
	// TrainVar is the expvar name carrying obs.TrainMetrics — the always-on
	// sharded-training aggregate (obs publishes it at init).
	TrainVar = "reghd.train"
	// ReplVar is the expvar name carrying obs.ReplMetrics — the always-on
	// replication aggregate (obs publishes it at init).
	ReplVar = "reghd.repl"
)

var (
	pubMu   sync.Mutex
	pubVars = map[string]func() any{}
)

// Publish registers f under name in the process-global expvar registry, so
// its result appears (JSON-marshaled) in the /metrics and /debug/vars
// output. Unlike expvar.Publish, re-publishing an existing name replaces
// the producer instead of panicking — the level of indirection tests and
// restarted engines need.
func Publish(name string, f func() any) {
	pubMu.Lock()
	defer pubMu.Unlock()
	if _, ok := pubVars[name]; !ok {
		n := name
		expvar.Publish(n, expvar.Func(func() any {
			pubMu.Lock()
			g := pubVars[n]
			pubMu.Unlock()
			if g == nil {
				return nil
			}
			return g()
		}))
	}
	pubVars[name] = f
}

// Handler returns the /metrics handler: one JSON object with every
// published expvar variable — the Publish'd metrics producers plus the
// stdlib's built-ins (cmdline, memstats). The output format is identical to
// the stdlib's /debug/vars endpoint; this constructor just lets callers
// mount it on any mux and path without importing expvar for its side
// effects.
func Handler() http.Handler { return expvar.Handler() }
