package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: durations are counted in nanoseconds in log-spaced buckets
// with 8 linear sub-buckets per power of two ("octave"). Values below 8 ns
// get exact buckets; above that, a bucket spans 1/8 of its octave, so any
// quantile read from the histogram is within ±6.25% of the true value
// (the midpoint of a bucket whose width is 12.5% of its lower bound). The
// full range of int64 nanoseconds (≈292 years) fits in 496 buckets, so
// nothing is ever clamped.
const (
	subBuckets    = 8 // per octave; must be a power of two
	subBucketLog2 = 3
	numBuckets    = subBuckets * (64 - subBucketLog2 + 1) // 496
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	major := bits.Len64(v) - 1 // position of the top set bit, ≥ subBucketLog2
	sub := (v >> (major - subBucketLog2)) & (subBuckets - 1)
	return subBuckets*(major-subBucketLog2+1) + int(sub)
}

// bucketMid returns the representative (midpoint) nanosecond value of a
// bucket, used when extracting quantiles.
func bucketMid(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	major := idx/subBuckets + subBucketLog2 - 1
	sub := uint64(idx % subBuckets)
	lo := uint64(1)<<major | sub<<(major-subBucketLog2)
	width := uint64(1) << (major - subBucketLog2)
	return int64(lo + width/2)
}

// Histogram is a lock-free latency histogram: recording is three atomic adds
// plus an atomic max, with no locks and no allocation, so any number of
// goroutines may Record concurrently while others read quantiles. The zero
// value is ready to use.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sumNS  atomic.Int64
	maxNS  atomic.Int64
}

// Record adds one observation. Negative durations count as zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(uint64(v))].Add(1)
	h.count.Add(1)
	h.sumNS.Add(v)
	for {
		cur := h.maxNS.Load()
		if v <= cur || h.maxNS.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot copies the current state into a plain value for quantile
// extraction and merging. Buckets are loaded one at a time, so a snapshot
// taken under concurrent recording is consistent per bucket, not across
// buckets — fine for monitoring, where the error is at most the handful of
// records in flight.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	s.MaxNS = h.maxNS.Load()
	return s
}

// Quantile is a convenience for Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) time.Duration { s := h.Snapshot(); return s.Quantile(q) }

// HistSnapshot is a frozen histogram state: a plain value safe to copy,
// merge, and query without synchronization.
type HistSnapshot struct {
	Counts [numBuckets]uint64
	Count  uint64
	SumNS  int64
	MaxNS  int64
}

// Merge adds another snapshot into s: buckets, counts, and sums accumulate,
// and the max is the larger of the two. Because buckets are fixed and
// identical across all histograms, merging is exact — the merged quantiles
// carry the same ±6.25% bucket error as either input, never more. This is
// how per-shard or per-process histograms aggregate.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.SumNS += o.SumNS
	if o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the recorded durations, to
// bucket resolution: the midpoint of the bucket holding the rank, clamped to
// the exact observed maximum. Returns 0 for an empty histogram.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(s.MaxNS)
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(s.Count-1)) // 0-based nearest rank
	var cum uint64
	for i, n := range s.Counts {
		cum += n
		if cum > rank {
			v := bucketMid(i)
			if v > s.MaxNS {
				v = s.MaxNS
			}
			return time.Duration(v)
		}
	}
	return time.Duration(s.MaxNS)
}

// Mean returns the exact mean of the recorded durations (the sum is kept
// outside the buckets, so the mean has no bucket error).
func (s *HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(uint64(s.SumNS) / s.Count)
}
