package obs_test

// Doc lint: docs/OBSERVABILITY.md and the exported metric structs must
// agree. The metric namespace is derived by reflection over the json tags
// of reghd.EngineMetrics, obs.HWReport, reghd.RegistryMetrics,
// obs.LoadgenReport, obs.TrainMetrics, and obs.ReplMetrics (exactly what
// /metrics and reghd-loadgen serve), so
// adding a field without documenting it — or documenting a metric that no
// longer exists — fails `make metrics-lint` and the ordinary test run.

import (
	"fmt"
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"reghd"
	"reghd/internal/obs"
)

// metricPaths walks a struct/map type and returns every leaf metric as a
// dotted path under prefix. Map keys become a `*` placeholder segment.
func metricPaths(t reflect.Type, prefix string, out map[string]bool) {
	switch t.Kind() {
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			tag := f.Tag.Get("json")
			if tag == "" || tag == "-" {
				continue
			}
			metricPaths(f.Type, prefix+"."+tag, out)
		}
	case reflect.Map:
		metricPaths(t.Elem(), prefix+".*", out)
	default:
		out[prefix] = true
	}
}

func codeMetrics() map[string]bool {
	m := map[string]bool{}
	metricPaths(reflect.TypeOf(reghd.EngineMetrics{}), obs.EngineVar, m)
	metricPaths(reflect.TypeOf(obs.HWReport{}), obs.HWVar, m)
	metricPaths(reflect.TypeOf(reghd.RegistryMetrics{}), obs.RegistryVar, m)
	metricPaths(reflect.TypeOf(obs.LoadgenReport{}), obs.LoadgenVar, m)
	metricPaths(reflect.TypeOf(obs.TrainMetrics{}), obs.TrainVar, m)
	metricPaths(reflect.TypeOf(obs.ReplMetrics{}), obs.ReplVar, m)
	return m
}

var metricNameRE = regexp.MustCompile("`(reghd\\.(?:engine|hw|registry|loadgen|train|repl)(?:\\.[a-z0-9_*]+)+)`")

func TestMetricsDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, m := range metricNameRE.FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}
	code := codeMetrics()
	if len(code) == 0 || len(documented) == 0 {
		t.Fatalf("empty metric sets: %d in code, %d in docs", len(code), len(documented))
	}
	for name := range code {
		if !documented[name] {
			t.Errorf("metric %s exists in code but is not documented in docs/OBSERVABILITY.md", name)
		}
	}
	// A documented name is valid if it is a leaf, or a group reference —
	// a prefix (optionally written with a trailing `.*`) that still has
	// leaves under it.
	isGroup := func(name string) bool {
		prefix := strings.TrimSuffix(name, ".*") + "."
		for leaf := range code {
			if strings.HasPrefix(leaf, prefix) {
				return true
			}
		}
		return false
	}
	for name := range documented {
		if !code[name] && !isGroup(name) {
			t.Errorf("docs/OBSERVABILITY.md documents %s, which no longer exists in code", name)
		}
	}
}

// TestMetricNamespaceShape pins the derived namespace itself: if a rename
// slips through (json tag change), this shows the full diff rather than a
// pile of single-name doclint errors.
func TestMetricNamespaceShape(t *testing.T) {
	code := codeMetrics()
	for _, want := range []string{
		"reghd.engine.predict.p99_ns",
		"reghd.engine.stages.encode.mean_ns",
		"reghd.engine.snapshot.updates_since_publish",
		"reghd.engine.robustness.requests_shed",
		"reghd.engine.robustness.degraded_mode",
		"reghd.engine.robustness.publish_seq",
		"reghd.hw.estimates.*.uj_per_query",
		"reghd.hw.ops.*",
		"reghd.registry.residents",
		"reghd.registry.evictions",
		"reghd.registry.load_errors",
		"reghd.registry.unknown_tenant",
		"reghd.loadgen.p99_ns",
		"reghd.loadgen.slo_violated",
		"reghd.loadgen.tenants.*",
		"reghd.train.runs",
		"reghd.train.shards",
		"reghd.train.merge_ns_total",
		"reghd.train.rows_per_sec",
		"reghd.repl.sends",
		"reghd.repl.retries",
		"reghd.repl.drops",
		"reghd.repl.duplicates",
		"reghd.repl.merges",
		"reghd.repl.delta_bytes_out",
		"reghd.repl.suspect_transitions",
		"reghd.repl.dead_transitions",
	} {
		if !code[want] {
			t.Errorf("expected metric %s missing from derived namespace:\n%s", want, fmt.Sprint(code))
		}
	}
}
