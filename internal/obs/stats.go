package obs

import (
	"sync/atomic"
	"time"
)

// OpStats instruments one operation of the serving surface (for the engine:
// Predict, PredictBatch, PartialFit): a latency histogram plus an error
// counter. Recording is lock-free; Observe costs a few atomic adds on top
// of the two timestamps the caller takes.
type OpStats struct {
	hist Histogram
	errs atomic.Uint64
}

// Observe records one call that took d. Failed calls are recorded in the
// histogram too (their latency is real serving time) and additionally
// counted as errors.
func (s *OpStats) Observe(d time.Duration, err error) {
	s.hist.Record(d)
	if err != nil {
		s.errs.Add(1)
	}
}

// Count reports the number of observed calls.
func (s *OpStats) Count() uint64 { return s.hist.Count() }

// Hist returns a snapshot of the latency histogram, for merging or custom
// quantiles.
func (s *OpStats) Hist() HistSnapshot { return s.hist.Snapshot() }

// OpSummary is the JSON-ready digest of one operation's statistics, the
// unit the /metrics endpoint and Engine.Metrics() report. Latencies are
// nanoseconds; P50/P95/P99 carry the histogram's ±6.25% bucket error while
// MeanNS and MaxNS are exact.
type OpSummary struct {
	// Count is the number of calls observed since metrics were enabled.
	Count uint64 `json:"count"`
	// Errors is how many of those calls returned an error.
	Errors uint64 `json:"errors"`
	// RatePerSec is Count divided by the observation window — the
	// sustained throughput of this operation.
	RatePerSec float64 `json:"rate_per_s"`
	// MeanNS, P50NS, P95NS, P99NS, MaxNS describe the latency
	// distribution, in nanoseconds.
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P95NS  int64 `json:"p95_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// Summary digests the current state. elapsed is the observation window
// (time since the stats were enabled) used for the throughput rate; a
// non-positive window reports a zero rate.
func (s *OpStats) Summary(elapsed time.Duration) OpSummary {
	h := s.hist.Snapshot()
	out := OpSummary{
		Count:  h.Count,
		Errors: s.errs.Load(),
		MeanNS: int64(h.Mean()),
		P50NS:  int64(h.Quantile(0.50)),
		P95NS:  int64(h.Quantile(0.95)),
		P99NS:  int64(h.Quantile(0.99)),
		MaxNS:  h.MaxNS,
	}
	if elapsed > 0 {
		out.RatePerSec = float64(h.Count) / elapsed.Seconds()
	}
	return out
}
