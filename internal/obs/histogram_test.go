package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip: every value lands in a bucket whose representative
// is within the documented ±6.25% (exact below 8 ns), and bucket indices
// are monotone in the value.
func TestBucketRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 5, 7, 8, 9, 15, 16, 100, 1023, 1024, 4096, 1e6, 123456789, 1e12}
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		mid := bucketMid(idx)
		if v < subBuckets {
			if uint64(mid) != v {
				t.Errorf("small value %d: representative %d, want exact", v, mid)
			}
			continue
		}
		lo, hi := float64(v)*(1-0.0625), float64(v)*(1+0.0625)
		if float64(mid) < lo-1 || float64(mid) > hi+1 {
			t.Errorf("value %d: representative %d outside ±6.25%%", v, mid)
		}
	}
	prev := -1
	for v := uint64(0); v < 1<<14; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

// trueQuantile returns the exact nearest-rank quantile of vs.
func trueQuantile(vs []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), vs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(q*float64(len(s)-1))]
}

// checkQuantiles records vs and compares histogram quantiles against exact
// ones within the bucket error bound.
func checkQuantiles(t *testing.T, name string, vs []time.Duration) {
	t.Helper()
	var h Histogram
	for _, v := range vs {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(vs)) {
		t.Fatalf("%s: count %d, want %d", name, s.Count, len(vs))
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		got := float64(s.Quantile(q))
		want := float64(trueQuantile(vs, q))
		// ±6.25% bucket error plus one-rank slack for duplicate-heavy sets.
		if got < want*0.92 || got > want*1.08 {
			t.Errorf("%s: p%.0f = %v, exact %v (off by %.1f%%)",
				name, q*100, time.Duration(int64(got)), time.Duration(int64(want)), 100*(got-want)/want)
		}
	}
	if s.Quantile(1) != trueQuantile(vs, 1) {
		t.Errorf("%s: max %v, exact %v", name, s.Quantile(1), trueQuantile(vs, 1))
	}
	var sum time.Duration
	for _, v := range vs {
		sum += v
	}
	if s.Mean() != sum/time.Duration(len(vs)) {
		t.Errorf("%s: mean %v, exact %v", name, s.Mean(), sum/time.Duration(len(vs)))
	}
}

// TestQuantilesKnownDistributions checks the histogram against exact
// quantiles on uniform, exponential, and heavy-tailed samples.
func TestQuantilesKnownDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	uniform := make([]time.Duration, 20000)
	for i := range uniform {
		uniform[i] = time.Duration(1+rng.Intn(1_000_000)) * time.Microsecond
	}
	checkQuantiles(t, "uniform", uniform)

	exp := make([]time.Duration, 20000)
	for i := range exp {
		exp[i] = time.Duration(1000 + rng.ExpFloat64()*50_000)
	}
	checkQuantiles(t, "exponential", exp)

	// Bimodal with a long tail: the shape a serving hiccup produces.
	tail := make([]time.Duration, 20000)
	for i := range tail {
		if rng.Float64() < 0.95 {
			tail[i] = time.Duration(80_000 + rng.Intn(20_000))
		} else {
			tail[i] = time.Duration(2_000_000 + rng.Intn(8_000_000))
		}
	}
	checkQuantiles(t, "bimodal-tail", tail)
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Count != 0 {
		t.Fatalf("empty histogram not zero: %+v", s)
	}
}

// TestMerge: merging shard snapshots must agree exactly with one histogram
// that recorded everything (buckets are identical across instances).
func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var all, a, b Histogram
	for i := 0; i < 10000; i++ {
		v := time.Duration(rng.Intn(10_000_000))
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged := a.Snapshot()
	bs := b.Snapshot()
	merged.Merge(&bs)
	want := all.Snapshot()
	if merged != want {
		t.Fatal("merged snapshot differs from single-histogram snapshot")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines while
// readers take snapshots — the serving pattern; run under -race by the
// tier-1 flow.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				if s.Quantile(0.99) < 0 {
					t.Error("negative quantile")
					return
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Intn(1_000_000)))
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := h.Count(); got != writers*per {
		t.Fatalf("lost records: %d, want %d", got, writers*per)
	}
}

func TestOpStats(t *testing.T) {
	var s OpStats
	s.Observe(time.Millisecond, nil)
	s.Observe(2*time.Millisecond, errTest)
	s.Observe(3*time.Millisecond, nil)
	sum := s.Summary(3 * time.Second)
	if sum.Count != 3 || sum.Errors != 1 {
		t.Fatalf("count/errors = %d/%d, want 3/1", sum.Count, sum.Errors)
	}
	if sum.RatePerSec < 0.99 || sum.RatePerSec > 1.01 {
		t.Fatalf("rate = %v, want 1/s", sum.RatePerSec)
	}
	if sum.MeanNS != int64(2*time.Millisecond) {
		t.Fatalf("mean = %d", sum.MeanNS)
	}
	if sum.MaxNS != int64(3*time.Millisecond) {
		t.Fatalf("max = %d", sum.MaxNS)
	}
	if zero := (&OpStats{}).Summary(0); zero.RatePerSec != 0 || zero.Count != 0 {
		t.Fatalf("zero stats not zero: %+v", zero)
	}
}

var errTest = errorString("test error")

type errorString string

func (e errorString) Error() string { return string(e) }
