package obs

import "sync/atomic"

// TrainStats aggregates sharded-training telemetry (reghd.(*Pipeline).FitParallel,
// Engine.RetrainParallel). It is always on: the facade records every
// parallel training run into the process-global Train, and the reghd.train
// expvar serves the aggregate — no opt-in, matching the robustness
// counters. All fields are atomics, so concurrent retrains record safely.
type TrainStats struct {
	runs    atomic.Uint64
	workers atomic.Uint64 // last run's worker count (gauge)
	shards  atomic.Uint64 // last run's shard count (gauge)
	epochs  atomic.Uint64
	merges  atomic.Uint64
	mergeNS atomic.Uint64
	wallNS  atomic.Uint64
	rows    atomic.Uint64
}

// Train is the process-global sharded-training aggregate, published under
// TrainVar.
var Train = &TrainStats{}

func init() {
	Publish(TrainVar, func() any { return Train.Metrics() })
}

// TrainRun is one completed parallel training run's telemetry.
type TrainRun struct {
	// Workers is the worker count the run used; Shards the number of data
	// shards (equal to Workers on the multi-worker path).
	Workers, Shards int
	// Epochs and Merges are the passes performed and bundling merges done.
	Epochs, Merges int
	// MergeNS is the wall time spent merging; WallNS the end-to-end wall
	// time; Rows the training updates applied (dataset rows × epochs).
	MergeNS, WallNS int64
	// Rows is the number of training updates the run applied.
	Rows uint64
}

// Record folds one run into the aggregate.
func (s *TrainStats) Record(r TrainRun) {
	s.runs.Add(1)
	s.workers.Store(uint64(r.Workers))
	s.shards.Store(uint64(r.Shards))
	s.epochs.Add(uint64(r.Epochs))
	s.merges.Add(uint64(r.Merges))
	s.mergeNS.Add(uint64(r.MergeNS))
	s.wallNS.Add(uint64(r.WallNS))
	s.rows.Add(r.Rows)
}

// Reset zeroes the aggregate (tests).
func (s *TrainStats) Reset() {
	s.runs.Store(0)
	s.workers.Store(0)
	s.shards.Store(0)
	s.epochs.Store(0)
	s.merges.Store(0)
	s.mergeNS.Store(0)
	s.wallNS.Store(0)
	s.rows.Store(0)
}

// TrainMetrics is the JSON served under the reghd.train expvar; every leaf
// is documented in docs/OBSERVABILITY.md (doclint-pinned).
type TrainMetrics struct {
	// Runs counts completed parallel training runs since process start.
	Runs uint64 `json:"runs"`
	// Workers/Shards describe the most recent run.
	Workers uint64 `json:"workers"`
	Shards  uint64 `json:"shards"`
	// Epochs/Merges/Rows accumulate across runs.
	Epochs uint64 `json:"epochs"`
	Merges uint64 `json:"merges"`
	Rows   uint64 `json:"rows"`
	// MergeNSTotal/MergeNSMean measure time spent inside bundling merges.
	MergeNSTotal uint64 `json:"merge_ns_total"`
	MergeNSMean  uint64 `json:"merge_ns_mean"`
	// WallNSTotal is the end-to-end training wall time across runs;
	// RowsPerSec is Rows divided by it.
	WallNSTotal uint64  `json:"wall_ns_total"`
	RowsPerSec  float64 `json:"rows_per_sec"`
}

// Metrics snapshots the aggregate.
func (s *TrainStats) Metrics() TrainMetrics {
	m := TrainMetrics{
		Runs:         s.runs.Load(),
		Workers:      s.workers.Load(),
		Shards:       s.shards.Load(),
		Epochs:       s.epochs.Load(),
		Merges:       s.merges.Load(),
		Rows:         s.rows.Load(),
		MergeNSTotal: s.mergeNS.Load(),
		WallNSTotal:  s.wallNS.Load(),
	}
	if m.Merges > 0 {
		m.MergeNSMean = m.MergeNSTotal / m.Merges
	}
	if m.WallNSTotal > 0 {
		m.RowsPerSec = float64(m.Rows) / (float64(m.WallNSTotal) / 1e9)
	}
	return m
}
