package obs

import (
	"sync"
	"testing"
)

// TestTrainStatsRecord pins the aggregate semantics: counters accumulate
// across runs, gauges track the latest run, and the derived means divide
// correctly.
func TestTrainStatsRecord(t *testing.T) {
	var s TrainStats
	s.Record(TrainRun{Workers: 4, Shards: 4, Epochs: 10, Merges: 10, MergeNS: 1000, WallNS: 2_000_000_000, Rows: 5000})
	s.Record(TrainRun{Workers: 2, Shards: 2, Epochs: 5, Merges: 5, MergeNS: 500, WallNS: 500_000_000, Rows: 2500})
	m := s.Metrics()
	if m.Runs != 2 || m.Workers != 2 || m.Shards != 2 {
		t.Fatalf("bad run/gauge fields: %+v", m)
	}
	if m.Epochs != 15 || m.Merges != 15 || m.Rows != 7500 {
		t.Fatalf("bad accumulated fields: %+v", m)
	}
	if m.MergeNSTotal != 1500 || m.MergeNSMean != 100 {
		t.Fatalf("bad merge timing: %+v", m)
	}
	if m.WallNSTotal != 2_500_000_000 || m.RowsPerSec != 3000 {
		t.Fatalf("bad throughput: %+v", m)
	}
	s.Reset()
	if m := s.Metrics(); m.Runs != 0 || m.Rows != 0 || m.RowsPerSec != 0 {
		t.Fatalf("Reset left state: %+v", m)
	}
}

// TestTrainStatsConcurrent records from many goroutines under -race; the
// accumulating counters must not lose updates.
func TestTrainStatsConcurrent(t *testing.T) {
	var s TrainStats
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Record(TrainRun{Workers: 2, Shards: 2, Epochs: 1, Merges: 1, MergeNS: 10, WallNS: 100, Rows: 7})
			}
		}()
	}
	wg.Wait()
	m := s.Metrics()
	if m.Runs != 800 || m.Epochs != 800 || m.Rows != 5600 {
		t.Fatalf("lost updates: %+v", m)
	}
}
