package obs

import (
	"math/rand"
	"testing"

	"reghd/internal/core"
	"reghd/internal/dataset"
	"reghd/internal/encoding"
	"reghd/internal/hdc"
	"reghd/internal/hwmodel"
)

// servedFixture trains a small model, serves `queries` predictions from a
// counted snapshot (the live path the bridge observes), and returns the
// counter plus the workload description matching what was served.
func servedFixture(t *testing.T, queries int) (*hdc.AtomicCounter, hwmodel.RegHDWorkload) {
	t.Helper()
	const (
		dim   = 512
		k     = 4
		feats = 6
	)
	rng := rand.New(rand.NewSource(1))
	train := &dataset.Dataset{X: make([][]float64, 64), Y: make([]float64, 64)}
	for i := range train.X {
		x := make([]float64, feats)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		train.X[i] = x
		train.Y[i] = rng.NormFloat64()
	}
	enc, err := encoding.NewNonlinear(rand.New(rand.NewSource(2)), feats, dim)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Models: k, Epochs: 2, Tol: 1e-12, Patience: 1000, Seed: 3,
		ClusterMode: core.ClusterInteger, PredictMode: core.PredictFull}
	m, err := core.New(enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	ctr := &hdc.AtomicCounter{}
	snap.SetCounter(ctr)
	for i := 0; i < queries; i++ {
		if _, err := snap.Predict(train.X[i%len(train.X)]); err != nil {
			t.Fatal(err)
		}
	}
	return ctr, hwmodel.RegHDWorkload{
		Dim: dim, Models: k, Features: feats, TrainSamples: 64, Epochs: 1,
		ClusterMode: core.ClusterInteger, PredictMode: core.PredictFull,
	}
}

// TestBridgeMatchesAnalytic ties the live bridge to the analytic cost
// model: for a fixed served workload, the op counts the bridge reads from
// the serving counter must agree with hwmodel's analytic inference counts
// on the dominant operation classes (same tolerances as the hwmodel
// crosscheck), and the priced estimates must agree to the same degree.
func TestBridgeMatchesAnalytic(t *testing.T) {
	const queries = 50
	ctr, w := servedFixture(t, queries)

	analytic, err := w.InferCounts(queries)
	if err != nil {
		t.Fatal(err)
	}
	measured := ctr.Snapshot()
	for _, op := range []hdc.Op{hdc.OpFloatMul, hdc.OpFloatAdd, hdc.OpExp, hdc.OpMemRead} {
		a, b := float64(analytic[op]), float64(measured[op])
		if a == 0 && b == 0 {
			continue
		}
		ratio := a / b
		if b == 0 || ratio < 0.6 || ratio > 1.7 {
			t.Errorf("%v: analytic %v vs served %v (ratio %.2f)", op, analytic[op], measured[op], ratio)
		}
	}

	profile := hwmodel.FPGA()
	bridge, err := NewHWBridge(ctr, profile)
	if err != nil {
		t.Fatal(err)
	}
	bridge.SetQueries(func() uint64 { return queries })
	rep, err := bridge.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != queries {
		t.Fatalf("queries = %d, want %d", rep.Queries, queries)
	}
	if rep.TotalOps != ctr.Total() {
		t.Fatalf("total ops %d != counter total %d", rep.TotalOps, ctr.Total())
	}
	est, ok := rep.Estimates[profile.Name]
	if !ok {
		t.Fatalf("no estimate for %q in %v", profile.Name, rep.Estimates)
	}
	want, err := hwmodel.Estimate(analytic, profile)
	if err != nil {
		t.Fatal(err)
	}
	if r := est.ModelSeconds / want.Seconds; r < 0.6 || r > 1.7 {
		t.Errorf("live runtime estimate %.3g s vs analytic %.3g s (ratio %.2f)", est.ModelSeconds, want.Seconds, r)
	}
	if r := est.ModelJoules / want.Joules; r < 0.6 || r > 1.7 {
		t.Errorf("live energy estimate %.3g J vs analytic %.3g J (ratio %.2f)", est.ModelJoules, want.Joules, r)
	}
	if est.USPerQuery <= 0 || est.UJPerQuery <= 0 {
		t.Errorf("per-query amortization not populated: %+v", est)
	}
}

func TestBridgeValidation(t *testing.T) {
	if _, err := NewHWBridge(nil, hwmodel.FPGA()); err == nil {
		t.Fatal("nil counter accepted")
	}
	if _, err := NewHWBridge(&hdc.AtomicCounter{}); err == nil {
		t.Fatal("empty profile list accepted")
	}
	bad := hwmodel.FPGA()
	bad.ClockHz = 0
	if _, err := NewHWBridge(&hdc.AtomicCounter{}, bad); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

// TestPublishReplaces exercises the re-publishable expvar indirection.
func TestPublishReplaces(t *testing.T) {
	Publish("obs.test.var", func() any { return 1 })
	Publish("obs.test.var", func() any { return 2 }) // must not panic
}
